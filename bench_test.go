// Package repro's root benchmark harness regenerates every table and
// figure of the paper (experiments E1–E15) and reports the headline
// metrics via b.ReportMetric, plus micro-benchmarks of the substrates
// (corpus generation, CSV codecs, event filtering, distribution fitting,
// the partition allocator and the scheduler).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/sched"
	"repro/internal/sel"
	"repro/internal/serve"
	"repro/internal/sim"
)

// benchDays sizes the shared corpus: 150 days ≈ 26k jobs / 95k events,
// large enough that every analysis is statistically meaningful and every
// bench measures realistic work.
const benchDays = 150

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func sharedEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := sim.DefaultConfig()
		cfg.Days = benchDays
		cfg.NumUsers = 300
		cfg.NumProjects = 120
		benchEnv, benchErr = experiments.NewEnv(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// benchExperiment regenerates one paper artifact per iteration and reports
// selected metrics alongside the timing.
func benchExperiment(b *testing.B, id string, metricKeys ...string) {
	env := sharedEnv(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(env)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for _, k := range metricKeys {
		if v, ok := last.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// One benchmark per table/figure of the evaluation (DESIGN.md §4).

func Benchmark_E1_DatasetSummary(b *testing.B) { benchExperiment(b, "E1", "core_hours_b", "jobs") }
func Benchmark_E2_Concentration(b *testing.B)  { benchExperiment(b, "E2", "gini_jobs_user") }
func Benchmark_E3_JobStructure(b *testing.B)   { benchExperiment(b, "E3", "mean_nodes") }
func Benchmark_E4_FailureBreakdown(b *testing.B) {
	benchExperiment(b, "E4", "failures", "user_share")
}
func Benchmark_E5_ExecLengthCDF(b *testing.B) { benchExperiment(b, "E5", "ks_two_sample") }
func Benchmark_E6_DistributionFits(b *testing.B) {
	benchExperiment(b, "E6", "ks_error", "ks_segfault")
}
func Benchmark_E7_UserCorrelation(b *testing.B) { benchExperiment(b, "E7", "cramers_v_user") }
func Benchmark_E8_StructureTrends(b *testing.B) { benchExperiment(b, "E8", "trend_nodes") }
func Benchmark_E9_RASProfile(b *testing.B)      { benchExperiment(b, "E9", "fatal_share") }
func Benchmark_E10_Locality(b *testing.B)       { benchExperiment(b, "E10", "gini_midplane") }
func Benchmark_E11_FilterSweep(b *testing.B) {
	benchExperiment(b, "E11", "incidents_20m_temporal+spatial+msg")
}
func Benchmark_E12_MTTI(b *testing.B)       { benchExperiment(b, "E12", "mtti_days", "interruptions") }
func Benchmark_E13_IOBehavior(b *testing.B) { benchExperiment(b, "E13", "median_ratio") }
func Benchmark_E14_Temporal(b *testing.B)   { benchExperiment(b, "E14", "diurnal_ratio") }
func Benchmark_E15_Interrupts(b *testing.B) {
	benchExperiment(b, "E15", "pearson_ch_interrupts")
}
func Benchmark_E16_Precursors(b *testing.B) { benchExperiment(b, "E16", "coverage_12h") }
func Benchmark_E17_Scheduling(b *testing.B) { benchExperiment(b, "E17", "pearson_req_used") }
func Benchmark_E18_Bathtub(b *testing.B)    { benchExperiment(b, "E18", "mid_life_mtti") }
func Benchmark_E19_Waste(b *testing.B)      { benchExperiment(b, "E19", "wasted_share") }
func Benchmark_E20_Resubmission(b *testing.B) {
	benchExperiment(b, "E20", "p_fail_after_fail", "lift")
}
func Benchmark_E21_TorusCorrelation(b *testing.B) {
	benchExperiment(b, "E21", "nbr_share_close_1h")
}
func Benchmark_E22_Availability(b *testing.B) {
	benchExperiment(b, "E22", "availability")
}
func Benchmark_E23_Survival(b *testing.B) { benchExperiment(b, "E23", "s_1h") }

// Paired serial/parallel benchmarks of the worker-pool substrates. Each
// parallel variant times one serial pass outside the timer and reports
// "speedup" — serial time over parallel per-iteration time — so a single
// run shows the fan-out win. On a single-core runner the ratio sits near
// 1.0 by construction: the parallel path does identical work, and the
// equivalence tests prove it produces identical output.

func BenchmarkCorpusGenerationSerial(b *testing.B)   { benchGenerate(b, 1) }
func BenchmarkCorpusGenerationParallel(b *testing.B) { benchGenerate(b, 0) }

func benchGenerate(b *testing.B, workers int) {
	cfg := sim.DefaultConfig()
	cfg.Days = benchDays
	serial := timeOnce(b, func() {
		if _, err := sim.GenerateParallel(cfg, 1); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sim.GenerateParallel(cfg, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Jobs) == 0 {
			b.Fatal("empty corpus")
		}
	}
	reportSpeedup(b, serial)
}

func BenchmarkFitAllSerial(b *testing.B)   { benchFitAll(b, 1) }
func BenchmarkFitAllParallel(b *testing.B) { benchFitAll(b, 0) }

func benchFitAll(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(11))
	w, err := dist.NewWeibull(0.62, 2100)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]float64, 20000)
	for i := range data {
		data[i] = w.Rand(rng)
	}
	serial := timeOnce(b, func() { dist.FitAllParallel(data, nil, 1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := dist.FitAllParallel(data, nil, workers)
		if results[0].Err != nil {
			b.Fatal(results[0].Err)
		}
	}
	reportSpeedup(b, serial)
}

func BenchmarkFilterSweepSerial(b *testing.B)   { benchFilterSweep(b, 1) }
func BenchmarkFilterSweepParallel(b *testing.B) { benchFilterSweep(b, 0) }

func benchFilterSweep(b *testing.B, workers int) {
	env := sharedEnv(b)
	base := core.DefaultFilterRule()
	windows := []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
		10 * time.Minute, 20 * time.Minute, 40 * time.Minute, time.Hour,
		2 * time.Hour, 6 * time.Hour,
	}
	serial := timeOnce(b, func() {
		if _, err := core.FilterSweepParallel(env.D.Events, base, windows, 1); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := core.FilterSweepParallel(env.D.Events, base, windows, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != len(windows) {
			b.Fatal("short sweep")
		}
	}
	reportSpeedup(b, serial)
}

func BenchmarkRunAllSerial(b *testing.B)   { benchRunAll(b, 1) }
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, 0) }

// benchRunAll reuses the shared env across iterations, so its memoized
// profiles stay warm — it measures suite overhead on a hot cache. The
// paired Benchmark_RunAll_Legacy/Fused below measure cold runs.
func benchRunAll(b *testing.B, workers int) {
	env := sharedEnv(b)
	// Warm the memoized classifications so neither variant pays the one-off
	// cost inside the timed region.
	env.ClassifyByExit()
	env.ClassifyJoint()
	serial := timeOnce(b, func() {
		if _, err := experiments.RunAll(env, 1); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(env, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(experiments.All()) {
			b.Fatal("short suite")
		}
	}
	reportSpeedup(b, serial)
}

// Paired legacy/fused benchmarks of the full E1–E23 suite. Each iteration
// builds a fresh Env over the shared dataset, so every memoization cache is
// cold and the timing covers the complete cost of regenerating the paper:
// the legacy variant re-walks the corpus per experiment, the fused variant
// runs the single shared scan plus the memoized incident/MTTI passes. Both
// time three back-to-back legacy passes outside the timer and report
// "speedup" relative to the median — back-to-back passes carry the same
// allocation debt as the timed loop, so the reference matches the legacy
// variant's own steady-state ns/op (whose ratio sits near 1.0 by
// construction). The equivalence tests prove the two modes render
// byte-identical output.

func Benchmark_RunAll_Legacy(b *testing.B) { benchRunAllCold(b, true) }
func Benchmark_RunAll_Fused(b *testing.B)  { benchRunAllCold(b, false) }

func benchRunAllCold(b *testing.B, legacy bool) {
	d := sharedEnv(b).D
	run := func(legacy bool) {
		env := experiments.NewEnvFromDataset(d)
		env.Legacy = legacy
		env.Parallelism = 1
		results, err := experiments.RunAll(env, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(experiments.All()) {
			b.Fatal("short suite")
		}
	}
	passes := make([]time.Duration, 3)
	for i := range passes {
		passes[i] = timeOnce(b, func() { run(true) })
	}
	slices.Sort(passes)
	legacyTime := passes[1]
	// One untimed pass of the measured mode builds the dataset's lazy
	// caches (column views, interned filter keys) — the benchmark contract
	// is a cold Env over a warm Dataset, like fatalIdx/warnIdx built at
	// NewDataset. Then collect the warm-up garbage outside the timer.
	run(legacy)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(legacy)
	}
	reportSpeedup(b, legacyTime)
}

// Paired cohort-query benchmarks (DESIGN.md §14). One iteration answers a
// sweep of monthly cohort queries — each window constrains both job submit
// times and event times — either by materializing the filtered dataset and
// scanning it (the pre-index path) or by pushing the compiled bitmap
// selections straight into the fused scan. Both report "speedup" against a
// median materialize reference pass, so the Materialize variant sits near
// 1.0 by construction and the Where variant shows the pushdown win. The
// core equivalence suite proves the two paths produce identical profiles.

func Benchmark_CohortSweep_Materialize(b *testing.B) { benchCohortSweep(b, true) }
func Benchmark_CohortSweep_Where(b *testing.B)       { benchCohortSweep(b, false) }

// cohortSweepExprs builds the monthly submit+time window predicates over
// the shared corpus' span.
func cohortSweepExprs(b *testing.B, d *core.Dataset) []sel.Expr {
	b.Helper()
	start, end := d.Span()
	var exprs []sel.Expr
	for lo := start; lo.Before(end); lo = lo.AddDate(0, 1, 0) {
		hi := lo.AddDate(0, 1, 0)
		a, z := lo.Format("2006-01-02"), hi.Format("2006-01-02")
		e, err := sel.Parse(fmt.Sprintf(
			"submit >= %s and submit < %s and time >= %s and time < %s", a, z, a, z))
		if err != nil {
			b.Fatal(err)
		}
		exprs = append(exprs, e)
	}
	return exprs
}

func benchCohortSweep(b *testing.B, materialize bool) {
	d := sharedEnv(b).D
	exprs := cohortSweepExprs(b, d)
	run := func(materialize bool) {
		for _, e := range exprs {
			var p *core.FusedProfile
			var err error
			if materialize {
				var md *core.Dataset
				if md, err = d.MaterializeWhere(e); err == nil {
					p, err = md.FusedScan(1)
				}
			} else {
				p, err = d.FusedScanWhere(e, 1)
			}
			if err != nil {
				b.Fatal(err)
			}
			if p.Summary.Jobs == 0 {
				b.Fatal("empty cohort window")
			}
		}
	}
	// Median of three materialize passes is the reference; the passes also
	// warm the compiled-selection cache both variants share.
	passes := make([]time.Duration, 3)
	for i := range passes {
		passes[i] = timeOnce(b, func() { run(true) })
	}
	slices.Sort(passes)
	ref := passes[1]
	run(materialize)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(materialize)
	}
	reportSpeedup(b, ref)
}

// Paired serving benchmarks (DESIGN.md §15). One iteration answers the
// monthly cohort sweep through the full mirad request path — router,
// limiter, predicate parse, LRU, JSON body — via direct ServeHTTP calls
// (no sockets, so the numbers isolate the serving layer). The Cold
// variant drops the cache every iteration, paying parse + pushdown scan +
// render per query; the Warm variant primes the cache once and then
// serves rendered bytes. Both report "speedup" against a median cold
// reference pass, so Cold sits near 1.0 by construction and Warm shows
// the cache win (the acceptance floor is 20×). The serve endpoint tests
// prove cold and warm responses are byte-identical.

func Benchmark_CohortServe_Cold(b *testing.B) { benchCohortServe(b, false) }
func Benchmark_CohortServe_Warm(b *testing.B) { benchCohortServe(b, true) }

func benchCohortServe(b *testing.B, warm bool) {
	env := sharedEnv(b)
	srv := serve.New(env, serve.Options{Parallelism: 1})
	if _, err := srv.Warm(); err != nil {
		b.Fatal(err)
	}
	var targets []string
	for _, e := range cohortSweepExprs(b, env.D) {
		targets = append(targets, "/v1/cohort?where="+url.QueryEscape(e.String()))
	}
	h := srv.Handler()
	run := func(cold bool) {
		if cold {
			srv.ResetCache()
		}
		for _, target := range targets {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("%s: %d %s", target, rec.Code, rec.Body.String())
			}
		}
	}
	// Median of three cold passes is the reference; they also leave the
	// cache primed for the warm variant's timed loop.
	passes := make([]time.Duration, 3)
	for i := range passes {
		passes[i] = timeOnce(b, func() { run(true) })
	}
	slices.Sort(passes)
	ref := passes[1]
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(!warm)
	}
	reportSpeedup(b, ref)
}

// timeOnce times a single serial pass outside the benchmark timer, for the
// speedup metric of the parallel variants.
func timeOnce(b *testing.B, fn func()) time.Duration {
	b.Helper()
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// reportSpeedup reports serial-time over per-iteration time.
func reportSpeedup(b *testing.B, serial time.Duration) {
	b.Helper()
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(serial.Nanoseconds())/perIter, "speedup")
	}
}

// Substrate micro-benchmarks.

// BenchmarkCorpusGeneration measures end-to-end synthesis of a 30-day
// corpus (workload + scheduler + faults + logs).
func BenchmarkCorpusGeneration30d(b *testing.B) {
	cfg := sim.SmallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		c, err := sim.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Jobs) == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkJobCSVRoundTrip measures the scheduler-log codec throughput.
func BenchmarkJobCSVRoundTrip(b *testing.B) {
	env := sharedEnv(b)
	jobs := env.Corpus.Jobs[:10000]
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := joblog.WriteCSV(&buf, jobs); err != nil {
			b.Fatal(err)
		}
		back, err := joblog.ReadCSV(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(back) != len(jobs) {
			b.Fatal("row count mismatch")
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkRASCSVRoundTrip measures the RAS-log codec throughput.
func BenchmarkRASCSVRoundTrip(b *testing.B) {
	env := sharedEnv(b)
	n := len(env.Corpus.Events)
	if n > 20000 {
		n = 20000
	}
	events := env.Corpus.Events[:n]
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := raslog.WriteCSV(&buf, events); err != nil {
			b.Fatal(err)
		}
		back, err := raslog.ReadCSV(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(back) != len(events) {
			b.Fatal("row count mismatch")
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkRASDecode contrasts slurp decoding with the streaming Scanner
// (the decode ablation in DESIGN.md §6).
func BenchmarkRASDecode(b *testing.B) {
	env := sharedEnv(b)
	n := len(env.Corpus.Events)
	if n > 20000 {
		n = 20000
	}
	var buf bytes.Buffer
	if err := raslog.WriteCSV(&buf, env.Corpus.Events[:n]); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("slurp", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			events, err := raslog.ReadCSV(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if len(events) != n {
				b.Fatal("count mismatch")
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc, err := raslog.NewScanner(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			count := 0
			for sc.Scan() {
				count++
			}
			if err := sc.Err(); err != nil {
				b.Fatal(err)
			}
			if count != n {
				b.Fatal("count mismatch")
			}
		}
	})
}

// BenchmarkFilterFatal measures similarity filtering over the corpus' RAS
// stream, per rule (the E11 ablation).
func BenchmarkFilterFatal(b *testing.B) {
	env := sharedEnv(b)
	rules := []struct {
		name string
		rule core.FilterRule
	}{
		{"temporal", core.FilterRule{Window: 20 * time.Minute, Spatial: machine.LevelSystem}},
		{"spatial", core.FilterRule{Window: 20 * time.Minute, Spatial: machine.LevelMidplane}},
		{"spatial+msg", core.FilterRule{Window: 20 * time.Minute, Spatial: machine.LevelMidplane, SameMessage: true}},
	}
	for _, r := range rules {
		b.Run(r.name, func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				incidents, err := core.FilterFatal(env.D.Events, r.rule)
				if err != nil {
					b.Fatal(err)
				}
				n = len(incidents)
			}
			b.ReportMetric(float64(n), "incidents")
		})
	}
}

// BenchmarkFitters measures MLE fitting per family on 10k samples.
func BenchmarkFitters(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, err := dist.NewWeibull(0.62, 2100)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]float64, 10000)
	for i := range data {
		data[i] = w.Rand(rng)
	}
	for _, f := range dist.DefaultFitters() {
		b.Run(f.FamilyName(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.Fit(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelSelection measures full KS-ranked model selection.
func BenchmarkModelSelection(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p, err := dist.NewPareto(45, 1.25)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]float64, 5000)
	for i := range data {
		data[i] = p.Rand(rng)
	}
	for i := 0; i < b.N; i++ {
		if _, err := dist.SelectBest(data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocator measures block alloc/free cycles under fragmentation.
func BenchmarkAllocator(b *testing.B) {
	sizes := []int{512, 1024, 2048, 4096, 8192}
	a := machine.NewAllocator()
	rng := rand.New(rand.NewSource(3))
	var live []machine.Block
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			if blk, ok := a.Alloc(sizes[rng.Intn(len(sizes))]); ok {
				live = append(live, blk)
			}
		} else {
			j := rng.Intn(len(live))
			if err := a.Free(live[j]); err != nil {
				b.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
		}
	}
}

// BenchmarkSchedulerPolicies contrasts FCFS and EASY backfill on the same
// synthetic queue (the scheduler ablation in DESIGN.md §6).
func BenchmarkSchedulerPolicies(b *testing.B) {
	for _, policy := range []sched.Policy{sched.FCFS, sched.EASYBackfill} {
		b.Run(policy.String(), func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				makespan = runSchedulerWorkload(b, policy)
			}
			b.ReportMetric(makespan.Hours(), "makespan_h")
		})
	}
}

func runSchedulerWorkload(b *testing.B, policy sched.Policy) time.Duration {
	b.Helper()
	s := sched.New(policy)
	t0 := time.Date(2013, 4, 9, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(4))
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384, 32768}
	type active struct {
		id  int64
		end time.Time
	}
	var running []active
	now := t0
	const jobs = 500
	for id := int64(1); id <= jobs; id++ {
		if err := s.Submit(id, sizes[rng.Intn(len(sizes))], time.Duration(1+rng.Intn(4))*time.Hour, now); err != nil {
			b.Fatal(err)
		}
	}
	for {
		for _, d := range s.Schedule(now) {
			running = append(running, active{id: d.JobID, end: now.Add(time.Duration(30+rng.Intn(90)) * time.Minute)})
		}
		if len(running) == 0 {
			break
		}
		earliest := 0
		for i := range running {
			if running[i].end.Before(running[earliest].end) {
				earliest = i
			}
		}
		now = running[earliest].end
		if err := s.Complete(running[earliest].id); err != nil {
			b.Fatal(err)
		}
		running = append(running[:earliest], running[earliest+1:]...)
	}
	if s.QueueLen() != 0 {
		b.Fatalf("%s left %d queued", policy, s.QueueLen())
	}
	return now.Sub(t0)
}

// BenchmarkTakeaways measures the full 22-takeaway joint analysis.
func BenchmarkTakeaways(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		ts, err := env.D.Takeaways()
		if err != nil {
			b.Fatal(err)
		}
		if len(ts) != 22 {
			b.Fatalf("got %d takeaways", len(ts))
		}
	}
}

// BenchmarkClassification measures both classification strategies.
func BenchmarkClassification(b *testing.B) {
	env := sharedEnv(b)
	b.Run("by-exit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cls := env.D.ClassifyByExit()
			if cls.Failed == 0 {
				b.Fatal("no failures")
			}
		}
	})
	b.Run("joint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cls := env.D.ClassifyJoint(core.DefaultJointOptions())
			if cls.Failed == 0 {
				b.Fatal("no failures")
			}
		}
	})
}
