package tasklog

import (
	"fmt"
	"time"

	"repro/internal/machine"
)

// Columns is the column-major decomposition of a task log, the shape the
// binary corpus snapshot (internal/pack) stores. Blocks are packed machine
// codes (machine.Block.Code), times are unix seconds.
type Columns struct {
	ID    []int64
	JobID []int64
	Block []int64 // machine.Block codes
	Start []int64 // unix seconds
	End   []int64 // unix seconds
	Nodes []int64
	Exit  []int64
}

// Rows returns the number of tasks the columns hold.
func (c *Columns) Rows() int { return len(c.ID) }

// ToColumns decomposes tasks column-major.
func ToColumns(tasks []Task) *Columns {
	n := len(tasks)
	c := &Columns{
		ID:    make([]int64, n),
		JobID: make([]int64, n),
		Block: make([]int64, n),
		Start: make([]int64, n),
		End:   make([]int64, n),
		Nodes: make([]int64, n),
		Exit:  make([]int64, n),
	}
	for i := range tasks {
		t := &tasks[i]
		c.ID[i] = t.ID
		c.JobID[i] = t.JobID
		c.Block[i] = int64(t.Block.Code())
		c.Start[i] = t.Start.Unix()
		c.End[i] = t.End.Unix()
		c.Nodes[i] = int64(t.Nodes)
		c.Exit[i] = int64(t.ExitStatus)
	}
	return c
}

// FromColumns rehydrates tasks row-major. It is the inverse of ToColumns;
// invalid block codes are rejected.
func FromColumns(c *Columns) ([]Task, error) {
	n := c.Rows()
	for name, col := range map[string]int{
		"job_id": len(c.JobID), "block": len(c.Block), "start": len(c.Start),
		"end": len(c.End), "nodes": len(c.Nodes), "exit": len(c.Exit),
	} {
		if col != n {
			return nil, fmt.Errorf("tasklog: column %s has %d rows, want %d", name, col, n)
		}
	}
	tasks := make([]Task, n)
	for i := range tasks {
		code := c.Block[i]
		if code < 0 || code > int64(^uint32(0)) {
			return nil, fmt.Errorf("tasklog: row %d: block code %d out of range", i, code)
		}
		blk, err := machine.BlockFromCode(uint32(code))
		if err != nil {
			return nil, fmt.Errorf("tasklog: row %d: %w", i, err)
		}
		tasks[i] = Task{
			ID:         c.ID[i],
			JobID:      c.JobID[i],
			Block:      blk,
			Start:      time.Unix(c.Start[i], 0).UTC(),
			End:        time.Unix(c.End[i], 0).UTC(),
			Nodes:      int(c.Nodes[i]),
			ExitStatus: int(c.Exit[i]),
		}
	}
	return tasks, nil
}
