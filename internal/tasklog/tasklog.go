// Package tasklog models the physical-execution log of Mira: every job
// consists of one or more tasks (runs), each executed on a specific
// hardware block (partition). The task log is the join key between the
// scheduler's view of a job and the hardware locations RAS events report.
package tasklog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/machine"
)

// Task is one physical execution (run) belonging to a job.
type Task struct {
	ID         int64
	JobID      int64
	Block      machine.Block // hardware partition the run executed on
	Start      time.Time
	End        time.Time
	Nodes      int // nodes used (≤ Block.Nodes())
	ExitStatus int // per-run exit status
}

// Runtime returns the task's wall-clock duration.
func (t *Task) Runtime() time.Duration { return t.End.Sub(t.Start) }

// Validate performs sanity checks.
func (t *Task) Validate() error {
	switch {
	case t.ID <= 0:
		return fmt.Errorf("tasklog: task %d: non-positive id", t.ID)
	case t.JobID <= 0:
		return fmt.Errorf("tasklog: task %d: non-positive job id", t.ID)
	case t.End.Before(t.Start):
		return fmt.Errorf("tasklog: task %d: ends before start", t.ID)
	case t.Nodes <= 0 || t.Nodes > t.Block.Nodes():
		return fmt.Errorf("tasklog: task %d: %d nodes does not fit block %s", t.ID, t.Nodes, t.Block.Name())
	}
	return t.Block.Validate()
}

var header = []string{
	"task_id", "job_id", "block", "start_unix", "end_unix", "nodes", "exit_status",
}

// WriteCSV writes tasks to w, header first.
func WriteCSV(w io.Writer, tasks []Task) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tasklog: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range tasks {
		t := &tasks[i]
		row[0] = strconv.FormatInt(t.ID, 10)
		row[1] = strconv.FormatInt(t.JobID, 10)
		row[2] = t.Block.Name()
		row[3] = strconv.FormatInt(t.Start.Unix(), 10)
		row[4] = strconv.FormatInt(t.End.Unix(), 10)
		row[5] = strconv.Itoa(t.Nodes)
		row[6] = strconv.Itoa(t.ExitStatus)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("tasklog: write task %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a task log written by WriteCSV.
func ReadCSV(r io.Reader) ([]Task, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tasklog: read header: %w", err)
	}
	if len(first) != len(header) || first[0] != header[0] {
		return nil, fmt.Errorf("tasklog: unexpected header %v", first)
	}
	var tasks []Task
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tasklog: line %d: %w", line, err)
		}
		t, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("tasklog: line %d: %w", line, err)
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

func parseRow(rec []string) (Task, error) {
	if len(rec) != len(header) {
		return Task{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var t Task
	var err error
	if t.ID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return Task{}, fmt.Errorf("task_id: %w", err)
	}
	if t.JobID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return Task{}, fmt.Errorf("job_id: %w", err)
	}
	if t.Block, err = machine.ParseBlock(rec[2]); err != nil {
		return Task{}, err
	}
	start, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return Task{}, fmt.Errorf("start_unix: %w", err)
	}
	end, err := strconv.ParseInt(rec[4], 10, 64)
	if err != nil {
		return Task{}, fmt.Errorf("end_unix: %w", err)
	}
	t.Start = time.Unix(start, 0).UTC()
	t.End = time.Unix(end, 0).UTC()
	if t.Nodes, err = strconv.Atoi(rec[5]); err != nil {
		return Task{}, fmt.Errorf("nodes: %w", err)
	}
	if t.ExitStatus, err = strconv.Atoi(rec[6]); err != nil {
		return Task{}, fmt.Errorf("exit_status: %w", err)
	}
	return t, nil
}

// ByJob groups tasks by job ID.
func ByJob(tasks []Task) map[int64][]Task {
	m := make(map[int64][]Task)
	for _, t := range tasks {
		m[t.JobID] = append(m[t.JobID], t)
	}
	return m
}
