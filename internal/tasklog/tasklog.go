// Package tasklog models the physical-execution log of Mira: every job
// consists of one or more tasks (runs), each executed on a specific
// hardware block (partition). The task log is the join key between the
// scheduler's view of a job and the hardware locations RAS events report.
package tasklog

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fastcsv"
	"repro/internal/machine"
)

// Task is one physical execution (run) belonging to a job.
type Task struct {
	ID         int64
	JobID      int64
	Block      machine.Block // hardware partition the run executed on
	Start      time.Time
	End        time.Time
	Nodes      int // nodes used (≤ Block.Nodes())
	ExitStatus int // per-run exit status
}

// Runtime returns the task's wall-clock duration.
func (t *Task) Runtime() time.Duration { return t.End.Sub(t.Start) }

// Validate performs sanity checks.
func (t *Task) Validate() error {
	switch {
	case t.ID <= 0:
		return fmt.Errorf("tasklog: task %d: non-positive id", t.ID)
	case t.JobID <= 0:
		return fmt.Errorf("tasklog: task %d: non-positive job id", t.ID)
	case t.End.Before(t.Start):
		return fmt.Errorf("tasklog: task %d: ends before start", t.ID)
	case t.Nodes <= 0 || t.Nodes > t.Block.Nodes():
		return fmt.Errorf("tasklog: task %d: %d nodes does not fit block %s", t.ID, t.Nodes, t.Block.Name())
	}
	return t.Block.Validate()
}

var header = []string{
	"task_id", "job_id", "block", "start_unix", "end_unix", "nodes", "exit_status",
}

// encoder caches block names: a task log references a small set of blocks
// across millions of rows, so Name() (an fmt.Sprintf) runs once per block.
type encoder struct {
	fw    *fastcsv.Writer
	names map[machine.Block]string
}

func newEncoder(w io.Writer) *encoder {
	fw := fastcsv.NewWriter(w)
	for _, h := range header {
		fw.String(h)
	}
	fw.EndRecord()
	return &encoder{fw: fw, names: make(map[machine.Block]string)}
}

func (enc *encoder) task(t *Task) {
	enc.fw.Int64(t.ID)
	enc.fw.Int64(t.JobID)
	name, ok := enc.names[t.Block]
	if !ok {
		name = t.Block.Name()
		enc.names[t.Block] = name
	}
	enc.fw.String(name)
	enc.fw.Int64(t.Start.Unix())
	enc.fw.Int64(t.End.Unix())
	enc.fw.Int(t.Nodes)
	enc.fw.Int(t.ExitStatus)
	enc.fw.EndRecord()
}

// WriteCSV writes tasks to w, header first.
func WriteCSV(w io.Writer, tasks []Task) error {
	enc := newEncoder(w)
	for i := range tasks {
		enc.task(&tasks[i])
	}
	if err := enc.fw.Flush(); err != nil {
		return fmt.Errorf("tasklog: write tasks: %w", err)
	}
	return nil
}

// headerOK checks field count plus leading column name, the same test the
// encoding/csv codec applied.
func headerOK(first [][]byte) bool {
	return len(first) == len(header) && string(first[0]) == header[0]
}

func headerStrings(rec [][]byte) []string {
	out := make([]string, len(rec))
	for i, f := range rec {
		out[i] = string(f)
	}
	return out
}

// decoder caches parsed blocks so ParseBlock (an fmt.Sscanf) runs once per
// distinct block name rather than once per row.
type decoder struct {
	blocks map[string]machine.Block
}

func newDecoder() *decoder { return &decoder{blocks: make(map[string]machine.Block)} }

func (d *decoder) block(b []byte) (machine.Block, error) {
	if blk, ok := d.blocks[string(b)]; ok { // alloc-free lookup
		return blk, nil
	}
	s := string(b)
	blk, err := machine.ParseBlock(s)
	if err != nil {
		return machine.Block{}, err
	}
	d.blocks[s] = blk
	return blk, nil
}

// ReadCSV reads a task log written by WriteCSV.
func ReadCSV(r io.Reader) ([]Task, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tasklog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("tasklog: unexpected header %v", headerStrings(first))
	}
	dec := newDecoder()
	var tasks []Task
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tasklog: line %d: %w", line, err)
		}
		t, err := dec.parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("tasklog: line %d: %w", line, err)
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

func (d *decoder) parseRow(rec [][]byte) (Task, error) {
	if len(rec) != len(header) {
		return Task{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var t Task
	var err error
	if t.ID, err = fastcsv.Int64(rec[0]); err != nil {
		return Task{}, fmt.Errorf("task_id: %w", err)
	}
	if t.JobID, err = fastcsv.Int64(rec[1]); err != nil {
		return Task{}, fmt.Errorf("job_id: %w", err)
	}
	if t.Block, err = d.block(rec[2]); err != nil {
		return Task{}, err
	}
	start, err := fastcsv.Int64(rec[3])
	if err != nil {
		return Task{}, fmt.Errorf("start_unix: %w", err)
	}
	end, err := fastcsv.Int64(rec[4])
	if err != nil {
		return Task{}, fmt.Errorf("end_unix: %w", err)
	}
	t.Start = time.Unix(start, 0).UTC()
	t.End = time.Unix(end, 0).UTC()
	if t.Nodes, err = fastcsv.Int(rec[5]); err != nil {
		return Task{}, fmt.Errorf("nodes: %w", err)
	}
	if t.ExitStatus, err = fastcsv.Int(rec[6]); err != nil {
		return Task{}, fmt.Errorf("exit_status: %w", err)
	}
	return t, nil
}

// ByJob groups tasks by job ID.
func ByJob(tasks []Task) map[int64][]Task {
	// Cobalt records a job's task partitions consecutively, so group by
	// run: each run becomes a (capped) subslice of the input — one map
	// entry per job, no copying. A job id that reappears later falls back
	// to concatenating, preserving stream order.
	m := make(map[int64][]Task, len(tasks))
	for i := 0; i < len(tasks); {
		id := tasks[i].JobID
		j := i + 1
		for j < len(tasks) && tasks[j].JobID == id {
			j++
		}
		if prev, ok := m[id]; ok {
			m[id] = append(prev, tasks[i:j]...)
		} else {
			m[id] = tasks[i:j:j]
		}
		i = j
	}
	return m
}
