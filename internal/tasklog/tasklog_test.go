package tasklog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

func sampleTask() Task {
	base := time.Date(2015, 2, 3, 10, 0, 0, 0, time.UTC)
	return Task{
		ID: 7, JobID: 3, Block: machine.Block{BaseMidplane: 4, Midplanes: 4},
		Start: base, End: base.Add(time.Hour), Nodes: 2048, ExitStatus: 0,
	}
}

func TestTaskDerived(t *testing.T) {
	task := sampleTask()
	if task.Runtime() != time.Hour {
		t.Errorf("Runtime = %v", task.Runtime())
	}
	if err := task.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
}

func TestTaskValidateErrors(t *testing.T) {
	cases := []func(*Task){
		func(x *Task) { x.ID = 0 },
		func(x *Task) { x.JobID = -1 },
		func(x *Task) { x.End = x.Start.Add(-time.Second) },
		func(x *Task) { x.Nodes = 0 },
		func(x *Task) { x.Nodes = x.Block.Nodes() + 1 },
		func(x *Task) { x.Block = machine.Block{BaseMidplane: 1, Midplanes: 2} },
	}
	for i, mutate := range cases {
		task := sampleTask()
		mutate(&task)
		if err := task.Validate(); err == nil {
			t.Errorf("case %d: invalid task accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	t1 := sampleTask()
	t2 := sampleTask()
	t2.ID = 8
	t2.ExitStatus = 139
	tasks := []Task{t1, t2}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tasks, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", tasks, back)
	}
}

func TestReadCSVErrors(t *testing.T) {
	h := "task_id,job_id,block,start_unix,end_unix,nodes,exit_status"
	cases := map[string]string{
		"empty":      "",
		"bad header": "x\n",
		"bad block":  h + "\n1,1,NOPE,1,2,512,0\n",
		"bad id":     h + "\nx,1,B00-01,1,2,512,0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestByJob(t *testing.T) {
	t1 := sampleTask()
	t2 := sampleTask()
	t2.ID = 8
	t3 := sampleTask()
	t3.ID = 9
	t3.JobID = 42
	m := ByJob([]Task{t1, t2, t3})
	if len(m) != 2 || len(m[3]) != 2 || len(m[42]) != 1 {
		t.Errorf("ByJob = %v", m)
	}
}

func TestScannerMatchesSlurp(t *testing.T) {
	tasks := []Task{sampleTask()}
	t2 := sampleTask()
	t2.ID = 9
	tasks = append(tasks, t2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Task
	for sc.Scan() {
		streamed = append(streamed, sc.Task())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tasks, streamed) {
		t.Error("scanner and slurp disagree")
	}
	if _, err := NewScanner(strings.NewReader("bad\n")); err == nil {
		t.Error("bad header accepted")
	}
}
