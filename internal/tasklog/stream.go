package tasklog

import (
	"fmt"
	"io"

	"repro/internal/fastcsv"
)

// Scanner streams a task CSV log one record at a time.
type Scanner struct {
	cr   *fastcsv.Reader
	dec  *decoder
	cur  Task
	err  error
	line int
	done bool
}

// NewScanner validates the header and returns a streaming reader.
func NewScanner(r io.Reader) (*Scanner, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tasklog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("tasklog: unexpected header %v", headerStrings(first))
	}
	return &Scanner{cr: cr, dec: newDecoder(), line: 1}, nil
}

// Scan advances to the next task; false at EOF or error (check Err).
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return false
	}
	if err != nil {
		s.err = fmt.Errorf("tasklog: line %d: %w", s.line, err)
		return false
	}
	t, err := s.dec.parseRow(rec)
	if err != nil {
		s.err = fmt.Errorf("tasklog: line %d: %w", s.line, err)
		return false
	}
	s.cur = t
	return true
}

// Task returns the current record. Valid after a true Scan.
func (s *Scanner) Task() Task { return s.cur }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }
