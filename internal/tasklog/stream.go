package tasklog

import (
	"encoding/csv"
	"fmt"
	"io"
)

// Scanner streams a task CSV log one record at a time.
type Scanner struct {
	cr   *csv.Reader
	cur  Task
	err  error
	line int
	done bool
}

// NewScanner validates the header and returns a streaming reader.
func NewScanner(r io.Reader) (*Scanner, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tasklog: read header: %w", err)
	}
	if len(first) != len(header) || first[0] != header[0] {
		return nil, fmt.Errorf("tasklog: unexpected header %v", first)
	}
	return &Scanner{cr: cr, line: 1}, nil
}

// Scan advances to the next task; false at EOF or error (check Err).
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return false
	}
	if err != nil {
		s.err = fmt.Errorf("tasklog: line %d: %w", s.line, err)
		return false
	}
	t, err := parseRow(rec)
	if err != nil {
		s.err = fmt.Errorf("tasklog: line %d: %w", s.line, err)
		return false
	}
	s.cur = t
	return true
}

// Task returns the current record. Valid after a true Scan.
func (s *Scanner) Task() Task { return s.cur }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }
