package tasklog

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/machine"
)

// legacyWriteCSV is a verbatim copy of the encoding/csv-based encoder this
// package shipped before the fastcsv migration.
func legacyWriteCSV(w io.Writer, tasks []Task) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tasklog: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range tasks {
		t := &tasks[i]
		row[0] = strconv.FormatInt(t.ID, 10)
		row[1] = strconv.FormatInt(t.JobID, 10)
		row[2] = t.Block.Name()
		row[3] = strconv.FormatInt(t.Start.Unix(), 10)
		row[4] = strconv.FormatInt(t.End.Unix(), 10)
		row[5] = strconv.Itoa(t.Nodes)
		row[6] = strconv.Itoa(t.ExitStatus)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("tasklog: write task %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func goldenTasks() []Task {
	t1 := sampleTask()
	t2 := sampleTask()
	t2.ID = 8
	t2.Block = machine.Block{BaseMidplane: 0, Midplanes: 96}
	t2.Nodes = 49152
	t3 := sampleTask()
	t3.ID = 9
	t3.JobID = 4
	t3.ExitStatus = 137
	return []Task{t1, t2, t3}
}

func TestWriteCSVMatchesLegacy(t *testing.T) {
	tasks := goldenTasks()
	var oldBuf, newBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, tasks); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&newBuf, tasks); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldBuf.Bytes(), newBuf.Bytes()) {
		t.Fatalf("fastcsv encoder output differs from legacy encoding/csv:\n old: %q\n new: %q",
			oldBuf.String(), newBuf.String())
	}
}

func TestReadCSVDecodesLegacyBytes(t *testing.T) {
	tasks := goldenTasks()
	var oldBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, tasks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&oldBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tasks) {
		t.Fatalf("decoding legacy bytes: got %+v, want %+v", got, tasks)
	}
}
