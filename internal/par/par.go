// Package par is the parallel-execution substrate shared by the analysis
// layers: a bounded worker pool with deterministic result placement.
//
// Every helper hands out work by index and writes results to the slot of
// that index, so the output of a parallel run is byte-identical to the
// serial run — parallelism only changes which goroutine computes a slot,
// never the slot's content or order. The hot paths built on top (corpus
// generation, distribution fitting, the filter-window sweep, the
// experiment suite) rely on exactly this property for their
// serial-vs-parallel equivalence guarantees.
//
// Semantics:
//
//   - the worker count is bounded (0 or negative means GOMAXPROCS);
//   - a context cancellation stops the dispatch of new indices and is
//     returned once in-flight work drains;
//   - the first task error cancels the remaining work and is the error
//     returned (later errors are dropped);
//   - a task panic is captured, converted to an error carrying the stack,
//     and propagated like a first error, so one bad task cannot kill the
//     process from a worker goroutine.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values ≤ 0 mean "all
// available parallelism" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers ≤ 0 means GOMAXPROCS). It returns the first error (or captured
// panic) and cancels the remaining work; on cancellation of ctx it stops
// dispatching and returns ctx's error. ForEach always waits for in-flight
// tasks to finish before returning, so fn never runs after ForEach returns.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := protect(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next.Store(-1)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || inner.Err() != nil {
					return
				}
				if err := protect(fn, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map applies fn to every item on at most workers goroutines and returns
// the results in input order. On error (or captured panic) it cancels the
// remaining work and returns nil plus the first error.
func Map[T, R any](ctx context.Context, items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(ctx, len(items), workers, func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// protect runs fn(i), converting a panic into an error that carries the
// panic value and stack trace.
func protect(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: task %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
