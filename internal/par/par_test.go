package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ForEach(context.Background(), 1000, 4, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return fmt.Errorf("task %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	// Cancellation must prevent most of the remaining 1000 tasks.
	if c := calls.Load(); c == 1000 {
		t.Errorf("error did not cancel remaining work (%d calls)", c)
	}
}

func TestForEachPanicCaptured(t *testing.T) {
	err := ForEach(context.Background(), 8, 4, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not propagated as error: %v", err)
	}
	if !strings.Contains(err.Error(), "par_test.go") {
		t.Errorf("error lacks stack trace: %v", err)
	}
}

func TestForEachSerialPanicCaptured(t *testing.T) {
	err := ForEach(context.Background(), 4, 1, func(i int) error {
		panic("serial kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "serial kaboom") {
		t.Fatalf("serial panic not captured: %v", err)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	started := make(chan struct{}, 1)
	go func() {
		<-started
		cancel()
	}()
	err := ForEach(ctx, 1_000_000, 2, func(i int) error {
		if calls.Add(1) == 1 {
			started <- struct{}{}
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if c := calls.Load(); c == 1_000_000 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForEach(ctx, 10, 1, func(i int) error {
		called = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if called {
		t.Error("fn ran under a cancelled context in serial mode")
	}
}

func TestMapOrderAndValues(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i * 3
	}
	out, err := Map(context.Background(), items, 8, func(i, v int) (string, error) {
		return fmt.Sprintf("%d:%d", i, v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if want := fmt.Sprintf("%d:%d", i, i*3); s != want {
			t.Fatalf("slot %d = %q, want %q", i, s, want)
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), []int{1, 2, 3}, 2, func(i, v int) (int, error) {
		if v == 2 {
			return 0, boom
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if out != nil {
		t.Errorf("partial results returned on error: %v", out)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachBoundsWorkers(t *testing.T) {
	// With workers=2 the number of concurrently running tasks must never
	// exceed 2.
	var cur, max atomic.Int32
	err := ForEach(context.Background(), 200, 2, func(i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > 2 {
		t.Errorf("observed %d concurrent tasks, bound is 2", m)
	}
}
