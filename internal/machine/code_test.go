package machine

import "testing"

func TestLocationCodeRoundTrip(t *testing.T) {
	locs := []Location{System()}
	for _, mk := range []func() (Location, error){
		func() (Location, error) { return Rack(0) },
		func() (Location, error) { return Rack(NumRacks - 1) },
		func() (Location, error) { return Midplane(17, 1) },
		func() (Location, error) { return NodeBoard(47, 0, 15) },
		func() (Location, error) { return Node(3, 1, 6, 11) },
		func() (Location, error) { return Node(0, 0, 0, 0) },
		func() (Location, error) { return Node(47, 1, 15, 31) },
	} {
		loc, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	for _, loc := range locs {
		got, err := LocationFromCode(loc.Code())
		if err != nil {
			t.Fatalf("%s (code %#x): %v", loc, loc.Code(), err)
		}
		if got != loc {
			t.Fatalf("round trip of %s: got %s", loc, got)
		}
	}
}

func TestLocationCodeRoundTripExhaustive(t *testing.T) {
	// Every node-level location must survive the round trip.
	for id := 0; id < TotalNodes; id++ {
		loc, err := NodeByID(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LocationFromCode(loc.Code())
		if err != nil {
			t.Fatal(err)
		}
		if got != loc {
			t.Fatalf("node %d: round trip of %s gave %s", id, loc, got)
		}
	}
}

func TestLocationFromCodeRejectsBadCodes(t *testing.T) {
	rack0, _ := Rack(0)
	bad := []uint32{
		0,                          // level 0 does not exist
		uint32(6) << locLevelShift, // unknown level
		uint32(LevelRack)<<locLevelShift | 48<<locRackShift, // rack out of range
		rack0.Code() | 1, // non-canonical: node bits below rack level
		^uint32(0),       // garbage
	}
	for _, c := range bad {
		if _, err := LocationFromCode(c); err == nil {
			t.Errorf("code %#x: want error, got none", c)
		}
	}
}

func TestBlockCodeRoundTrip(t *testing.T) {
	blocks := []Block{
		{BaseMidplane: 0, Midplanes: 1},
		{BaseMidplane: 95, Midplanes: 1},
		{BaseMidplane: 4, Midplanes: 2},
		{BaseMidplane: 32, Midplanes: 64},
		{BaseMidplane: 0, Midplanes: TotalMidplanes},
	}
	for _, b := range blocks {
		got, err := BlockFromCode(b.Code())
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if got != b {
			t.Fatalf("round trip of %s: got %s", b.Name(), got.Name())
		}
	}
}

func TestBlockFromCodeRejectsBadCodes(t *testing.T) {
	bad := []uint32{
		0,         // zero midplanes
		3,         // non-power-of-two size
		95<<8 | 2, // runs past the last midplane
		1<<8 | 96, // full machine must start at 0
		1 << 16,   // out of range
	}
	for _, c := range bad {
		if _, err := BlockFromCode(c); err == nil {
			t.Errorf("code %#x: want error, got none", c)
		}
	}
}
