package machine

import "fmt"

// Mira's compute fabric is a 5D torus of 8×12×16×16×2 nodes (dimensions
// A–E). A midplane spans 4×4×4×4×2 nodes, so at midplane granularity the
// torus is 2×3×4×4×1 midplanes. Spatial-correlation analyses use this
// geometry: incidents that propagate along cables and link chips hit
// midplanes at torus distance 1.

// TorusDims is the midplane-granular torus shape (A, B, C, D, E).
var TorusDims = [5]int{2, 3, 4, 4, 1}

// TorusCoord is a midplane position on the 5D torus.
type TorusCoord [5]int

// MidplaneTorusCoord maps a linear midplane ID (0..95) to its torus
// coordinate, row-major in (A, B, C, D, E).
func MidplaneTorusCoord(id int) (TorusCoord, error) {
	if id < 0 || id >= TotalMidplanes {
		return TorusCoord{}, fmt.Errorf("machine: midplane id %d out of range [0,%d)", id, TotalMidplanes)
	}
	var c TorusCoord
	rem := id
	for dim := 4; dim >= 0; dim-- {
		c[dim] = rem % TorusDims[dim]
		rem /= TorusDims[dim]
	}
	return c, nil
}

// MidplaneIDFromTorus is the inverse of MidplaneTorusCoord.
func MidplaneIDFromTorus(c TorusCoord) (int, error) {
	id := 0
	for dim := 0; dim < 5; dim++ {
		if c[dim] < 0 || c[dim] >= TorusDims[dim] {
			return 0, fmt.Errorf("machine: torus coord %v out of range in dim %d", c, dim)
		}
		id = id*TorusDims[dim] + c[dim]
	}
	return id, nil
}

// TorusDistance returns the wraparound Manhattan (hop) distance between two
// midplanes on the 5D torus.
func TorusDistance(a, b int) (int, error) {
	ca, err := MidplaneTorusCoord(a)
	if err != nil {
		return 0, err
	}
	cb, err := MidplaneTorusCoord(b)
	if err != nil {
		return 0, err
	}
	total := 0
	for dim := 0; dim < 5; dim++ {
		d := ca[dim] - cb[dim]
		if d < 0 {
			d = -d
		}
		if wrap := TorusDims[dim] - d; wrap < d {
			d = wrap
		}
		total += d
	}
	return total, nil
}

// TorusNeighbors returns the midplane IDs at torus distance exactly 1 from
// the given midplane (4–8 neighbors depending on degenerate dimensions).
func TorusNeighbors(id int) ([]int, error) {
	c, err := MidplaneTorusCoord(id)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{id: true}
	var out []int
	for dim := 0; dim < 5; dim++ {
		if TorusDims[dim] < 2 {
			continue // degenerate dimension has no distinct neighbor
		}
		for _, step := range []int{-1, 1} {
			n := c
			n[dim] = ((c[dim]+step)%TorusDims[dim] + TorusDims[dim]) % TorusDims[dim]
			nid, err := MidplaneIDFromTorus(n)
			if err != nil {
				return nil, err
			}
			if !seen[nid] {
				seen[nid] = true
				out = append(out, nid)
			}
		}
	}
	return out, nil
}

// TorusMidplaneID returns the linear midplane ID a location maps to for
// torus-distance purposes: its own midplane when at midplane granularity or
// finer, the rack's first midplane for rack-level locations. System-level
// locations have no torus position.
func TorusMidplaneID(loc Location) (int, bool) {
	switch loc.Level() {
	case LevelSystem:
		return 0, false
	case LevelRack:
		return loc.RackIndex() * MidplanesPerRack, true
	default:
		id, err := loc.MidplaneID()
		if err != nil {
			return 0, false
		}
		return id, true
	}
}
