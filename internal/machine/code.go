package machine

import "fmt"

// Compact numeric codes for locations and blocks. The binary corpus
// snapshot (internal/pack) stores hardware references column-major as
// varint-encoded codes instead of the textual forms ("R17-M0-N06-J11",
// "B04-02") the CSV logs use: packing the hierarchy into a few bits makes
// the column both smaller and free of string parsing on load.
//
// Codes are canonical: bits below a location's level are zero, and decoding
// rejects non-canonical or out-of-range codes so a corrupted column cannot
// alias a different piece of hardware silently.

// Location code bit layout, from the least significant bit up:
//
//	bits 0..4   node   (0..31)
//	bits 5..8   board  (0..15)
//	bit  9      mid    (0..1)
//	bits 10..15 rack   (0..47)
//	bits 16..18 level  (1..5)
const (
	locNodeBits  = 5
	locBoardBits = 4
	locMidBits   = 1
	locRackBits  = 6

	locBoardShift = locNodeBits
	locMidShift   = locBoardShift + locBoardBits
	locRackShift  = locMidShift + locMidBits
	locLevelShift = locRackShift + locRackBits
)

// Code packs the location into a canonical uint32 (19 significant bits).
func (l Location) Code() uint32 {
	return uint32(l.Level())<<locLevelShift |
		uint32(l.rack)<<locRackShift |
		uint32(l.mid)<<locMidShift |
		uint32(l.board)<<locBoardShift |
		uint32(l.node)
}

// LocationFromCode reverses Code. Non-canonical codes (unknown level, field
// out of range, or nonzero bits below the level) are rejected.
func LocationFromCode(c uint32) (Location, error) {
	// Decoded per event row on the snapshot load path, so validate with bit
	// tests instead of the constructor chain: the mid/board/node fields
	// cannot exceed their bit widths, which leaves the rack range, the level
	// and the below-level bits to check explicitly.
	level := Level(c >> locLevelShift)
	rack := int(c >> locRackShift & (1<<locRackBits - 1))
	mid := int(c >> locMidShift & (1<<locMidBits - 1))
	board := int(c >> locBoardShift & (1<<locBoardBits - 1))
	node := int(c & (1<<locNodeBits - 1))

	ok := rack < NumRacks
	switch level {
	case LevelSystem:
		ok = ok && c == uint32(LevelSystem)<<locLevelShift
	case LevelRack:
		ok = ok && c&(1<<locRackShift-1) == 0
	case LevelMidplane:
		ok = ok && c&(1<<locMidShift-1) == 0
	case LevelNodeBoard:
		ok = ok && c&(1<<locBoardShift-1) == 0
	case LevelNode:
	default:
		return Location{}, fmt.Errorf("machine: location code %#x: unknown level %d", c, int(level))
	}
	if !ok {
		return Location{}, fmt.Errorf("machine: location code %#x is not canonical", c)
	}
	return Location{level: level, rack: rack, mid: mid, board: board, node: node}, nil
}

// Code packs the block into a uint32: BaseMidplane in the high byte,
// Midplanes in the low byte.
func (b Block) Code() uint32 {
	return uint32(b.BaseMidplane)<<8 | uint32(b.Midplanes)
}

// BlockFromCode reverses Block.Code, validating the geometry.
func BlockFromCode(c uint32) (Block, error) {
	if c>>16 != 0 {
		return Block{}, fmt.Errorf("machine: block code %#x out of range", c)
	}
	b := Block{BaseMidplane: int(c >> 8), Midplanes: int(c & 0xff)}
	if err := b.Validate(); err != nil {
		return Block{}, fmt.Errorf("machine: block code %#x: %w", c, err)
	}
	return b, nil
}
