package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidBlockNodes(t *testing.T) {
	for _, n := range BlockSizes {
		if !ValidBlockNodes(n) {
			t.Errorf("ValidBlockNodes(%d) = false", n)
		}
	}
	for _, n := range []int{0, 1, 256, 513, 3072, 65536} {
		if ValidBlockNodes(n) {
			t.Errorf("ValidBlockNodes(%d) = true", n)
		}
	}
}

func TestBlockNameRoundTrip(t *testing.T) {
	blocks := []Block{
		{0, 1}, {95, 1}, {4, 4}, {32, 32}, {0, TotalMidplanes},
	}
	for _, b := range blocks {
		back, err := ParseBlock(b.Name())
		if err != nil {
			t.Fatalf("ParseBlock(%q): %v", b.Name(), err)
		}
		if back != b {
			t.Errorf("round trip %v -> %v", b, back)
		}
	}
}

func TestBlockValidate(t *testing.T) {
	good := []Block{{0, 1}, {2, 2}, {64, 32}, {0, 64}, {0, TotalMidplanes}}
	for _, b := range good {
		if err := b.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", b, err)
		}
	}
	// Unaligned but contiguous blocks are valid (fallback placements).
	if err := (Block{1, 2}).Validate(); err != nil {
		t.Errorf("unaligned contiguous block rejected: %v", err)
	}
	bad := []Block{
		{0, 3},              // not power of two
		{0, 0},              // empty
		{94, 4},             // out of range
		{1, TotalMidplanes}, // full machine must start at 0
		{0, -2},             // negative
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%v) succeeded, want error", b)
		}
	}
}

func TestBlockContainsLocation(t *testing.T) {
	b := Block{BaseMidplane: 34, Midplanes: 2} // rack 17, both midplanes
	inNode, _ := Node(17, 0, 3, 5)
	inMid, _ := Midplane(17, 1)
	inRack, _ := Rack(17)
	outMid, _ := Midplane(18, 0)
	outRack, _ := Rack(20)

	if !b.ContainsLocation(inNode) || !b.ContainsLocation(inMid) || !b.ContainsLocation(inRack) {
		t.Error("block should contain locations inside rack 17")
	}
	if b.ContainsLocation(outMid) || b.ContainsLocation(outRack) {
		t.Error("block should not contain rack 18/20 locations")
	}
	if !b.ContainsLocation(System()) {
		t.Error("system location intersects every block")
	}

	// A rack partially covered still intersects.
	half := Block{BaseMidplane: 34, Midplanes: 1}
	if !half.ContainsLocation(inRack) {
		t.Error("half-rack block should intersect its rack")
	}
}

func TestBlockOverlaps(t *testing.T) {
	a := Block{0, 4}
	tests := []struct {
		b    Block
		want bool
	}{
		{Block{0, 4}, true},
		{Block{2, 2}, true},
		{Block{4, 4}, false},
		{Block{0, TotalMidplanes}, true},
	}
	for _, tt := range tests {
		if got := a.Overlaps(tt.b); got != tt.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", a, tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(a); got != tt.want {
			t.Errorf("Overlaps symmetric (%v,%v) = %v, want %v", tt.b, a, got, tt.want)
		}
	}
}

func TestBlocksForNodes(t *testing.T) {
	bs, err := BlocksForNodes(512)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 96 {
		t.Errorf("512-node blocks = %d, want 96", len(bs))
	}
	bs, err = BlocksForNodes(49152)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0].Midplanes != TotalMidplanes {
		t.Errorf("full-machine blocks = %v", bs)
	}
	if _, err := BlocksForNodes(300); err == nil {
		t.Error("BlocksForNodes(300) should fail")
	}
}

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator()
	b1, ok := a.Alloc(512)
	if !ok {
		t.Fatal("alloc 512 failed on empty machine")
	}
	if b1.Nodes() != 512 {
		t.Errorf("block nodes = %d", b1.Nodes())
	}
	b2, ok := a.Alloc(1024)
	if !ok {
		t.Fatal("alloc 1024 failed")
	}
	if b1.Overlaps(b2) {
		t.Error("allocated blocks overlap")
	}
	if a.UsedMidplanes() != 3 {
		t.Errorf("used = %d, want 3", a.UsedMidplanes())
	}
	if err := a.Free(b1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b1); err == nil {
		t.Error("double free should fail")
	}
	if err := a.Free(b2); err != nil {
		t.Fatal(err)
	}
	if a.UsedMidplanes() != 0 {
		t.Errorf("used after frees = %d", a.UsedMidplanes())
	}
}

func TestAllocatorFullMachine(t *testing.T) {
	a := NewAllocator()
	full, ok := a.Alloc(49152)
	if !ok {
		t.Fatal("full machine alloc failed")
	}
	if _, ok := a.Alloc(512); ok {
		t.Error("alloc on busy machine should fail")
	}
	if !a.CanAlloc(49152) == true && a.CanAlloc(49152) {
		t.Error("CanAlloc full on busy machine")
	}
	if err := a.Free(full); err != nil {
		t.Fatal(err)
	}
	if !a.CanAlloc(49152) {
		t.Error("CanAlloc full on empty machine should be true")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator()
	var blocks []Block
	for {
		b, ok := a.Alloc(8192) // 16 midplanes
		if !ok {
			break
		}
		blocks = append(blocks, b)
	}
	if len(blocks) != 6 {
		t.Errorf("allocated %d 8192-node blocks, want 6", len(blocks))
	}
	if a.FreeMidplanes() != 0 {
		t.Errorf("free midplanes = %d, want 0", a.FreeMidplanes())
	}
	for _, b := range blocks {
		if err := a.Free(b); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllocatorNeverOverlapsProperty drives a random alloc/free workload and
// checks the invariant that live blocks never overlap and accounting stays
// exact.
func TestAllocatorNeverOverlapsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator()
		var live []Block
		sizes := []int{512, 1024, 2048, 4096, 8192}
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := sizes[rng.Intn(len(sizes))]
				b, ok := a.Alloc(n)
				if !ok {
					continue
				}
				for _, o := range live {
					if b.Overlaps(o) {
						return false
					}
				}
				live = append(live, b)
			} else {
				i := rng.Intn(len(live))
				if err := a.Free(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			want := 0
			for _, b := range live {
				want += b.Midplanes
			}
			if a.UsedMidplanes() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotMatchesUsage(t *testing.T) {
	a := NewAllocator()
	b, _ := a.Alloc(2048)
	snap := a.Snapshot()
	if len(snap) != b.Midplanes {
		t.Fatalf("snapshot size %d, want %d", len(snap), b.Midplanes)
	}
	for i, id := range snap {
		if id != b.BaseMidplane+i {
			t.Errorf("snapshot[%d] = %d, want %d", i, id, b.BaseMidplane+i)
		}
	}
}

func TestMarkDownUp(t *testing.T) {
	a := NewAllocator()
	if err := a.MarkDown(5); err != nil {
		t.Fatal(err)
	}
	if a.DownMidplanes() != 1 {
		t.Errorf("down = %d", a.DownMidplanes())
	}
	// Allocation must avoid the down midplane.
	for i := 0; i < 96; i++ {
		b, ok := a.Alloc(512)
		if !ok {
			break
		}
		if b.ContainsMidplane(5) {
			t.Fatal("allocated a down midplane")
		}
	}
	// 95 of 96 allocatable.
	if a.UsedMidplanes() != 95 {
		t.Errorf("used = %d, want 95", a.UsedMidplanes())
	}
	if err := a.MarkUp(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Alloc(512); !ok {
		t.Error("midplane 5 not allocatable after MarkUp")
	}
}

func TestMarkDownErrors(t *testing.T) {
	a := NewAllocator()
	if err := a.MarkDown(-1); err == nil {
		t.Error("negative id accepted")
	}
	if err := a.MarkUp(3); err == nil {
		t.Error("MarkUp on up midplane accepted")
	}
	b, _ := a.Alloc(512)
	if err := a.MarkDown(b.BaseMidplane); err == nil {
		t.Error("MarkDown on busy midplane accepted")
	}
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	// Nested downs require matching ups.
	if err := a.MarkDown(7); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkDown(7); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkUp(7); err != nil {
		t.Fatal(err)
	}
	if a.DownMidplanes() != 1 {
		t.Errorf("nested down released early: %d", a.DownMidplanes())
	}
	if err := a.MarkUp(7); err != nil {
		t.Fatal(err)
	}
	if a.DownMidplanes() != 0 {
		t.Errorf("down = %d after full release", a.DownMidplanes())
	}
}

func TestDownBlocksUnalignedFallback(t *testing.T) {
	// Down midplanes must break contiguous runs in the fallback pass too.
	a := NewAllocator()
	// Mark every even-aligned base busy-ish by downing midplanes so that
	// only an unaligned run through a down midplane would fit — it must
	// not be used.
	for id := 0; id < TotalMidplanes; id += 4 {
		if err := a.MarkDown(id); err != nil {
			t.Fatal(err)
		}
	}
	// Largest contiguous free run is 3 midplanes: a 4-midplane (2048-node)
	// block must not fit anywhere.
	if a.CanAlloc(2048) {
		t.Error("allocator found a 4-midplane run through down midplanes")
	}
	if !a.CanAlloc(1024) {
		t.Error("2-midplane block should still fit")
	}
}
