package machine

import (
	"fmt"
	"sort"
)

// Blue Gene/Q jobs run on *blocks* (partitions): contiguous groups of
// midplanes wired into a torus. On Mira the schedulable block sizes are
// powers of two in units of 512 nodes (one midplane), from 512 up to the
// full 49,152-node machine.
//
// We model the allocatable geometry as contiguous runs over the 96
// midplanes: a block of k midplanes (k a power of two, k ≤ 64; plus the
// special 96-midplane full machine) occupies midplanes [base, base+k).
// The allocator prefers k-aligned bases (buddy-style, matching the fixed
// wiring of small BG/Q blocks) and falls back to any contiguous run, which
// models the multiple valid torus shapes larger Mira blocks could take.
// This captures the property the failure analysis needs: blocks are
// spatially contiguous, so localized RAS bursts intersect few blocks.

// BlockSizes lists the schedulable block sizes on Mira, in nodes.
var BlockSizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 49152}

// ValidBlockNodes reports whether n is a schedulable block size in nodes.
func ValidBlockNodes(n int) bool {
	for _, s := range BlockSizes {
		if s == n {
			return true
		}
	}
	return false
}

// MidplanesForNodes returns the number of midplanes a block of n nodes
// occupies.
func MidplanesForNodes(n int) (int, error) {
	if !ValidBlockNodes(n) {
		return 0, fmt.Errorf("machine: %d nodes is not a schedulable block size", n)
	}
	return n / NodesPerMidplane, nil
}

// Block is a contiguous allocation of midplanes hosting one job task.
type Block struct {
	BaseMidplane int // linear midplane ID of the first midplane
	Midplanes    int // number of midplanes (1,2,4,...,64, or 96)
}

// Nodes returns the block's size in compute nodes.
func (b Block) Nodes() int { return b.Midplanes * NodesPerMidplane }

// Name returns the ALCF-style block name, e.g. "MIR-00800-3BFF1-512".
// We use a simplified readable form: "B<base>-<midplanes>".
func (b Block) Name() string { return fmt.Sprintf("B%02d-%02d", b.BaseMidplane, b.Midplanes) }

// ParseBlock parses a block name produced by Name.
func ParseBlock(s string) (Block, error) {
	var base, mids int
	if _, err := fmt.Sscanf(s, "B%d-%d", &base, &mids); err != nil {
		return Block{}, fmt.Errorf("machine: bad block name %q: %w", s, err)
	}
	b := Block{BaseMidplane: base, Midplanes: mids}
	if err := b.Validate(); err != nil {
		return Block{}, err
	}
	return b, nil
}

// Validate checks block geometry: power-of-two midplane count (or the full
// machine), contiguous and in range. Bases need not be size-aligned: the
// allocator prefers aligned placements but may fall back to any contiguous
// run (see the package comment).
func (b Block) Validate() error {
	if b.Midplanes == TotalMidplanes {
		if b.BaseMidplane != 0 {
			return fmt.Errorf("machine: full-machine block must start at midplane 0, got %d", b.BaseMidplane)
		}
		return nil
	}
	if b.Midplanes <= 0 || b.Midplanes > 64 || b.Midplanes&(b.Midplanes-1) != 0 {
		return fmt.Errorf("machine: block of %d midplanes is not schedulable", b.Midplanes)
	}
	if b.BaseMidplane < 0 || b.BaseMidplane+b.Midplanes > TotalMidplanes {
		return fmt.Errorf("machine: block [%d,%d) out of range", b.BaseMidplane, b.BaseMidplane+b.Midplanes)
	}
	return nil
}

// ContainsMidplane reports whether midplane id (linear) lies in the block.
func (b Block) ContainsMidplane(id int) bool {
	return id >= b.BaseMidplane && id < b.BaseMidplane+b.Midplanes
}

// ContainsLocation reports whether the hardware location intersects the
// block. Locations coarser than a midplane intersect if any of their
// midplanes do.
func (b Block) ContainsLocation(loc Location) bool {
	switch loc.Level() {
	case LevelSystem:
		return true
	case LevelRack:
		for m := 0; m < MidplanesPerRack; m++ {
			if b.ContainsMidplane(loc.rack*MidplanesPerRack + m) {
				return true
			}
		}
		return false
	default:
		id, err := loc.MidplaneID()
		if err != nil {
			return false
		}
		return b.ContainsMidplane(id)
	}
}

// Overlaps reports whether two blocks share any midplane.
func (b Block) Overlaps(o Block) bool {
	return b.BaseMidplane < o.BaseMidplane+o.Midplanes && o.BaseMidplane < b.BaseMidplane+b.Midplanes
}

// MidplaneIDs returns the linear midplane IDs covered by the block.
func (b Block) MidplaneIDs() []int {
	out := make([]int, b.Midplanes)
	for i := range out {
		out[i] = b.BaseMidplane + i
	}
	return out
}

// BlocksForNodes enumerates every valid block of the given node count, in
// base order.
func BlocksForNodes(n int) ([]Block, error) {
	mids, err := MidplanesForNodes(n)
	if err != nil {
		return nil, err
	}
	if mids > 64 {
		return []Block{{BaseMidplane: 0, Midplanes: TotalMidplanes}}, nil
	}
	var out []Block
	for base := 0; base+mids <= TotalMidplanes; base += mids {
		out = append(out, Block{BaseMidplane: base, Midplanes: mids})
	}
	return out, nil
}

// Allocator tracks which midplanes are in use and hands out aligned
// contiguous blocks, buddy-system style. It is not safe for concurrent use;
// the scheduler serializes access.
type Allocator struct {
	busy [TotalMidplanes]bool
	// down counts overlapping out-of-service reservations (repairs) per
	// midplane; a midplane is allocatable only when neither busy nor down.
	down [TotalMidplanes]int
	used int
}

// NewAllocator returns an allocator with the whole machine free.
func NewAllocator() *Allocator { return &Allocator{} }

// FreeMidplanes returns the number of midplanes currently unallocated.
func (a *Allocator) FreeMidplanes() int { return TotalMidplanes - a.used }

// UsedMidplanes returns the number of midplanes currently allocated.
func (a *Allocator) UsedMidplanes() int { return a.used }

// Alloc finds and reserves a free block of n nodes. It first scans
// size-aligned candidate bases in ascending order (buddy-style first fit,
// which keeps allocations packed toward low midplane IDs), then falls back
// to any contiguous free run. Returns false if no contiguous free run of
// the needed length exists.
func (a *Allocator) Alloc(n int) (Block, bool) {
	base, mids, ok := a.find(n)
	if !ok {
		return Block{}, false
	}
	b := Block{BaseMidplane: base, Midplanes: mids}
	a.reserve(b)
	return b, true
}

// CanAlloc reports whether a block of n nodes could be allocated right now,
// without reserving it.
func (a *Allocator) CanAlloc(n int) bool {
	_, _, ok := a.find(n)
	return ok
}

// find locates the first-fit base for a block of n nodes.
func (a *Allocator) find(n int) (base, mids int, ok bool) {
	mids, err := MidplanesForNodes(n)
	if err != nil {
		return 0, 0, false
	}
	if mids == TotalMidplanes || mids > 64 {
		if a.used != 0 {
			return 0, 0, false
		}
		return 0, TotalMidplanes, true
	}
	// Pass 1: aligned bases.
	for b := 0; b+mids <= TotalMidplanes; b += mids {
		if a.rangeFree(b, mids) {
			return b, mids, true
		}
	}
	// Pass 2: any contiguous run.
	run := 0
	for i := 0; i < TotalMidplanes; i++ {
		if a.busy[i] || a.down[i] > 0 {
			run = 0
			continue
		}
		run++
		if run == mids {
			return i - mids + 1, mids, true
		}
	}
	return 0, 0, false
}

// Free releases a previously allocated block. Freeing midplanes that are not
// allocated is an error (it indicates scheduler corruption).
func (a *Allocator) Free(b Block) error {
	for _, id := range b.MidplaneIDs() {
		if !a.busy[id] {
			return fmt.Errorf("machine: double free of midplane %d in block %s", id, b.Name())
		}
	}
	for _, id := range b.MidplaneIDs() {
		a.busy[id] = false
	}
	a.used -= b.Midplanes
	return nil
}

func (a *Allocator) rangeFree(base, mids int) bool {
	for i := base; i < base+mids; i++ {
		if a.busy[i] || a.down[i] > 0 {
			return false
		}
	}
	return true
}

// MarkDown takes a midplane out of service (repair/service action). Down
// states nest: overlapping repairs each require their own MarkUp. Marking
// a busy midplane is an error — drain it first.
func (a *Allocator) MarkDown(id int) error {
	if id < 0 || id >= TotalMidplanes {
		return fmt.Errorf("machine: midplane id %d out of range", id)
	}
	if a.busy[id] {
		return fmt.Errorf("machine: midplane %d is busy; cannot mark down", id)
	}
	a.down[id]++
	return nil
}

// MarkUp returns a midplane to service, undoing one MarkDown.
func (a *Allocator) MarkUp(id int) error {
	if id < 0 || id >= TotalMidplanes {
		return fmt.Errorf("machine: midplane id %d out of range", id)
	}
	if a.down[id] == 0 {
		return fmt.Errorf("machine: midplane %d is not down", id)
	}
	a.down[id]--
	return nil
}

// DownMidplanes returns how many midplanes are currently out of service.
func (a *Allocator) DownMidplanes() int {
	n := 0
	for _, d := range a.down {
		if d > 0 {
			n++
		}
	}
	return n
}

func (a *Allocator) reserve(b Block) {
	for _, id := range b.MidplaneIDs() {
		a.busy[id] = true
	}
	a.used += b.Midplanes
}

// Snapshot returns the sorted linear IDs of busy midplanes, for debugging
// and invariant checks in tests.
func (a *Allocator) Snapshot() []int {
	var out []int
	for id, v := range a.busy {
		if v {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
