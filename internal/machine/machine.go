// Package machine models the physical topology of the IBM Blue Gene/Q
// "Mira" system at the Argonne Leadership Computing Facility.
//
// Mira consists of 48 racks arranged in 3 rows of 16 racks. Each rack holds
// two midplanes (M0, M1); each midplane holds 16 node boards (N00..N15);
// each node board carries 32 compute cards (J00..J31), one compute node per
// card. A node has 16 user cores (one 17th core is reserved for the OS), so
// the machine totals 48*2*512 = 49,152 nodes and 786,432 user cores.
//
// RAS events and scheduler blocks reference hardware through hierarchical
// location codes such as
//
//	R17          (rack)
//	R17-M0       (midplane)
//	R17-M0-N06   (node board)
//	R17-M0-N06-J11 (compute card / node)
//
// This package parses, formats, enumerates and relates such locations, and
// exposes the midplane-granular partition geometry used by the scheduler.
package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// Machine geometry constants for Mira.
const (
	NumRacks         = 48                               // R00..R47
	MidplanesPerRack = 2                                // M0, M1
	NodeBoardsPerMid = 16                               // N00..N15
	NodesPerBoard    = 32                               // J00..J31
	NodesPerMidplane = NodeBoardsPerMid * NodesPerBoard // 512
	NodesPerRack     = MidplanesPerRack * NodesPerMidplane
	TotalMidplanes   = NumRacks * MidplanesPerRack // 96
	TotalNodes       = NumRacks * NodesPerRack     // 49,152
	CoresPerNode     = 16
	TotalCores       = TotalNodes * CoresPerNode // 786,432
	RackRows         = 3
	RacksPerRow      = 16
)

// Level identifies the depth of a hardware location in the Mira hierarchy.
type Level int

// Location levels, from coarsest to finest.
const (
	LevelSystem Level = iota + 1
	LevelRack
	LevelMidplane
	LevelNodeBoard
	LevelNode
)

// String returns the human-readable name of the level.
func (l Level) String() string {
	switch l {
	case LevelSystem:
		return "system"
	case LevelRack:
		return "rack"
	case LevelMidplane:
		return "midplane"
	case LevelNodeBoard:
		return "node-board"
	case LevelNode:
		return "node"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Location identifies a piece of Mira hardware at rack, midplane, node-board
// or node granularity. The zero value is the whole system.
//
// Fields below the location's Level are meaningless and must be zero; use
// the accessors and constructors to stay consistent.
type Location struct {
	level Level
	rack  int // 0..47
	mid   int // 0..1
	board int // 0..15
	node  int // 0..31
}

// System returns the whole-system location.
func System() Location { return Location{level: LevelSystem} }

// Rack returns the location of rack r (0..47).
func Rack(r int) (Location, error) {
	if r < 0 || r >= NumRacks {
		return Location{}, fmt.Errorf("machine: rack %d out of range [0,%d)", r, NumRacks)
	}
	return Location{level: LevelRack, rack: r}, nil
}

// Midplane returns the location of midplane m (0..1) of rack r.
func Midplane(r, m int) (Location, error) {
	loc, err := Rack(r)
	if err != nil {
		return Location{}, err
	}
	if m < 0 || m >= MidplanesPerRack {
		return Location{}, fmt.Errorf("machine: midplane %d out of range [0,%d)", m, MidplanesPerRack)
	}
	loc.level = LevelMidplane
	loc.mid = m
	return loc, nil
}

// NodeBoard returns the location of node board n (0..15) of midplane (r, m).
func NodeBoard(r, m, n int) (Location, error) {
	loc, err := Midplane(r, m)
	if err != nil {
		return Location{}, err
	}
	if n < 0 || n >= NodeBoardsPerMid {
		return Location{}, fmt.Errorf("machine: node board %d out of range [0,%d)", n, NodeBoardsPerMid)
	}
	loc.level = LevelNodeBoard
	loc.board = n
	return loc, nil
}

// Node returns the location of compute card j (0..31) on node board (r, m, n).
func Node(r, m, n, j int) (Location, error) {
	loc, err := NodeBoard(r, m, n)
	if err != nil {
		return Location{}, err
	}
	if j < 0 || j >= NodesPerBoard {
		return Location{}, fmt.Errorf("machine: node %d out of range [0,%d)", j, NodesPerBoard)
	}
	loc.level = LevelNode
	loc.node = j
	return loc, nil
}

// MustMidplane is like Midplane but panics on invalid input. It is intended
// for constants and tests.
func MustMidplane(r, m int) Location {
	loc, err := Midplane(r, m)
	if err != nil {
		panic(err)
	}
	return loc
}

// Level reports the granularity of the location.
func (l Location) Level() Level {
	if l.level == 0 {
		return LevelSystem
	}
	return l.level
}

// RackIndex returns the rack number (0..47). Valid for levels at or below
// rack granularity.
func (l Location) RackIndex() int { return l.rack }

// MidplaneOrdinal returns the midplane number within its rack (0 or 1).
func (l Location) MidplaneOrdinal() int { return l.mid }

// BoardIndex returns the node-board number within its midplane (0..15).
func (l Location) BoardIndex() int { return l.board }

// NodeIndex returns the compute-card number within its board (0..31).
func (l Location) NodeIndex() int { return l.node }

// String formats the location as a Mira location code, e.g. "R17-M0-N06-J11".
// The system location formats as "MIR" (the machine prefix used in ALCF logs).
func (l Location) String() string {
	switch l.Level() {
	case LevelSystem:
		return "MIR"
	case LevelRack:
		return fmt.Sprintf("R%02d", l.rack)
	case LevelMidplane:
		return fmt.Sprintf("R%02d-M%d", l.rack, l.mid)
	case LevelNodeBoard:
		return fmt.Sprintf("R%02d-M%d-N%02d", l.rack, l.mid, l.board)
	default:
		return fmt.Sprintf("R%02d-M%d-N%02d-J%02d", l.rack, l.mid, l.board, l.node)
	}
}

// ParseLocation parses a Mira location code at any granularity.
//
// Accepted forms: "MIR", "Rxx", "Rxx-My", "Rxx-My-Nzz", "Rxx-My-Nzz-Jww".
func ParseLocation(s string) (Location, error) {
	if s == "" {
		return Location{}, fmt.Errorf("machine: empty location code")
	}
	if s == "MIR" {
		return System(), nil
	}
	parts := strings.Split(s, "-")
	if len(parts) > 4 {
		return Location{}, fmt.Errorf("machine: location %q has too many components", s)
	}
	r, err := parseComponent(parts[0], 'R', s)
	if err != nil {
		return Location{}, err
	}
	loc, err := Rack(r)
	if err != nil {
		return Location{}, fmt.Errorf("machine: location %q: %w", s, err)
	}
	if len(parts) == 1 {
		return loc, nil
	}
	m, err := parseComponent(parts[1], 'M', s)
	if err != nil {
		return Location{}, err
	}
	loc, err = Midplane(r, m)
	if err != nil {
		return Location{}, fmt.Errorf("machine: location %q: %w", s, err)
	}
	if len(parts) == 2 {
		return loc, nil
	}
	n, err := parseComponent(parts[2], 'N', s)
	if err != nil {
		return Location{}, err
	}
	loc, err = NodeBoard(r, m, n)
	if err != nil {
		return Location{}, fmt.Errorf("machine: location %q: %w", s, err)
	}
	if len(parts) == 3 {
		return loc, nil
	}
	j, err := parseComponent(parts[3], 'J', s)
	if err != nil {
		return Location{}, err
	}
	loc, err = Node(r, m, n, j)
	if err != nil {
		return Location{}, fmt.Errorf("machine: location %q: %w", s, err)
	}
	return loc, nil
}

func parseComponent(part string, prefix byte, whole string) (int, error) {
	if len(part) < 2 || part[0] != prefix {
		return 0, fmt.Errorf("machine: location %q: component %q must start with %q", whole, part, string(prefix))
	}
	v, err := strconv.Atoi(part[1:])
	if err != nil {
		return 0, fmt.Errorf("machine: location %q: component %q: %w", whole, part, err)
	}
	return v, nil
}

// Contains reports whether l contains (or equals) other in the hardware
// hierarchy. The system contains everything; a node contains only itself.
func (l Location) Contains(other Location) bool {
	if l.Level() > other.Level() {
		return false
	}
	switch l.Level() {
	case LevelSystem:
		return true
	case LevelRack:
		return l.rack == other.rack
	case LevelMidplane:
		return l.rack == other.rack && l.mid == other.mid
	case LevelNodeBoard:
		return l.rack == other.rack && l.mid == other.mid && l.board == other.board
	default:
		return l == other
	}
}

// Ancestor returns the location truncated to the given (coarser or equal)
// level. Requesting a level finer than l's is an error.
func (l Location) Ancestor(level Level) (Location, error) {
	if level > l.Level() {
		return Location{}, fmt.Errorf("machine: cannot refine %s (%s) to %s", l, l.Level(), level)
	}
	a := l
	a.level = level
	switch level {
	case LevelSystem:
		a = System()
	case LevelRack:
		a.mid, a.board, a.node = 0, 0, 0
	case LevelMidplane:
		a.board, a.node = 0, 0
	case LevelNodeBoard:
		a.node = 0
	}
	return a, nil
}

// MidplaneID returns the linear midplane index (0..95) of the location.
// Valid for locations at midplane granularity or finer.
func (l Location) MidplaneID() (int, error) {
	if l.Level() < LevelMidplane {
		return 0, fmt.Errorf("machine: %s is coarser than a midplane", l)
	}
	return l.rack*MidplanesPerRack + l.mid, nil
}

// MidplaneByID returns the midplane location with linear index id (0..95).
func MidplaneByID(id int) (Location, error) {
	if id < 0 || id >= TotalMidplanes {
		return Location{}, fmt.Errorf("machine: midplane id %d out of range [0,%d)", id, TotalMidplanes)
	}
	return Midplane(id/MidplanesPerRack, id%MidplanesPerRack)
}

// NodeID returns the machine-wide linear node index (0..49151). Valid only
// for node-level locations.
func (l Location) NodeID() (int, error) {
	if l.Level() != LevelNode {
		return 0, fmt.Errorf("machine: %s is not a node", l)
	}
	mid, _ := l.MidplaneID()
	return mid*NodesPerMidplane + l.board*NodesPerBoard + l.node, nil
}

// NodeByID returns the node location with machine-wide linear index id.
func NodeByID(id int) (Location, error) {
	if id < 0 || id >= TotalNodes {
		return Location{}, fmt.Errorf("machine: node id %d out of range [0,%d)", id, TotalNodes)
	}
	mid := id / NodesPerMidplane
	rem := id % NodesPerMidplane
	return Node(mid/MidplanesPerRack, mid%MidplanesPerRack, rem/NodesPerBoard, rem%NodesPerBoard)
}

// Nodes returns the number of compute nodes contained in the location.
func (l Location) Nodes() int {
	switch l.Level() {
	case LevelSystem:
		return TotalNodes
	case LevelRack:
		return NodesPerRack
	case LevelMidplane:
		return NodesPerMidplane
	case LevelNodeBoard:
		return NodesPerBoard
	default:
		return 1
	}
}

// RackGridPos returns the (row, column) position of the location's rack on
// the machine-room floor (3 rows × 16 columns). Valid for rack granularity
// or finer.
func (l Location) RackGridPos() (row, col int, err error) {
	if l.Level() < LevelRack {
		return 0, 0, fmt.Errorf("machine: %s has no rack", l)
	}
	return l.rack / RacksPerRow, l.rack % RacksPerRow, nil
}

// FloorDistance returns the Manhattan distance between the racks of two
// locations on the machine-room floor grid, a coarse proxy for the cabling
// distance relevant to spatial-correlation analysis. Both locations must be
// at rack granularity or finer.
func FloorDistance(a, b Location) (int, error) {
	ar, ac, err := a.RackGridPos()
	if err != nil {
		return 0, err
	}
	br, bc, err := b.RackGridPos()
	if err != nil {
		return 0, err
	}
	return abs(ar-br) + abs(ac-bc), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// AllMidplanes enumerates every midplane location in linear-ID order.
func AllMidplanes() []Location {
	out := make([]Location, 0, TotalMidplanes)
	for id := 0; id < TotalMidplanes; id++ {
		loc, _ := MidplaneByID(id)
		out = append(out, loc)
	}
	return out
}
