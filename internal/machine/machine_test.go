package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if TotalNodes != 49152 {
		t.Errorf("TotalNodes = %d, want 49152", TotalNodes)
	}
	if TotalCores != 786432 {
		t.Errorf("TotalCores = %d, want 786432", TotalCores)
	}
	if TotalMidplanes != 96 {
		t.Errorf("TotalMidplanes = %d, want 96", TotalMidplanes)
	}
	if NodesPerMidplane != 512 {
		t.Errorf("NodesPerMidplane = %d, want 512", NodesPerMidplane)
	}
}

func TestLocationString(t *testing.T) {
	tests := []struct {
		name string
		loc  func() (Location, error)
		want string
	}{
		{"system", func() (Location, error) { return System(), nil }, "MIR"},
		{"rack", func() (Location, error) { return Rack(17) }, "R17"},
		{"midplane", func() (Location, error) { return Midplane(17, 0) }, "R17-M0"},
		{"board", func() (Location, error) { return NodeBoard(17, 0, 6) }, "R17-M0-N06"},
		{"node", func() (Location, error) { return Node(17, 0, 6, 11) }, "R17-M0-N06-J11"},
		{"rack0", func() (Location, error) { return Rack(0) }, "R00"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			loc, err := tt.loc()
			if err != nil {
				t.Fatalf("constructor: %v", err)
			}
			if got := loc.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseLocationRoundTrip(t *testing.T) {
	codes := []string{"MIR", "R00", "R47", "R21-M1", "R00-M0-N15", "R47-M1-N00-J31"}
	for _, code := range codes {
		loc, err := ParseLocation(code)
		if err != nil {
			t.Fatalf("ParseLocation(%q): %v", code, err)
		}
		if got := loc.String(); got != code {
			t.Errorf("round trip %q -> %q", code, got)
		}
	}
}

func TestParseLocationErrors(t *testing.T) {
	bad := []string{
		"", "X17", "R48", "R-1", "R17-M2", "R17-M0-N16", "R17-M0-N00-J32",
		"R17-M0-N00-J00-K00", "17", "R17-N00", "Rxx",
	}
	for _, code := range bad {
		if _, err := ParseLocation(code); err == nil {
			t.Errorf("ParseLocation(%q) succeeded, want error", code)
		}
	}
}

func TestParseLocationPropertyRoundTrip(t *testing.T) {
	f := func(rr, mm, nn, jj uint8, level uint8) bool {
		r := int(rr) % NumRacks
		m := int(mm) % MidplanesPerRack
		n := int(nn) % NodeBoardsPerMid
		j := int(jj) % NodesPerBoard
		var loc Location
		switch level % 4 {
		case 0:
			loc, _ = Rack(r)
		case 1:
			loc, _ = Midplane(r, m)
		case 2:
			loc, _ = NodeBoard(r, m, n)
		default:
			loc, _ = Node(r, m, n, j)
		}
		back, err := ParseLocation(loc.String())
		return err == nil && back == loc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	node, _ := Node(17, 0, 6, 11)
	board, _ := NodeBoard(17, 0, 6)
	mid, _ := Midplane(17, 0)
	otherMid, _ := Midplane(17, 1)
	rack, _ := Rack(17)
	otherRack, _ := Rack(18)

	if !System().Contains(node) {
		t.Error("system should contain node")
	}
	if !rack.Contains(node) || !mid.Contains(node) || !board.Contains(node) {
		t.Error("ancestors should contain node")
	}
	if !node.Contains(node) {
		t.Error("node should contain itself")
	}
	if node.Contains(board) {
		t.Error("node should not contain its board")
	}
	if otherMid.Contains(node) {
		t.Error("sibling midplane should not contain node")
	}
	if otherRack.Contains(node) {
		t.Error("other rack should not contain node")
	}
}

func TestAncestor(t *testing.T) {
	node, _ := Node(17, 1, 6, 11)
	mid, err := node.Ancestor(LevelMidplane)
	if err != nil {
		t.Fatal(err)
	}
	if mid.String() != "R17-M1" {
		t.Errorf("Ancestor(midplane) = %s, want R17-M1", mid)
	}
	rack, err := node.Ancestor(LevelRack)
	if err != nil {
		t.Fatal(err)
	}
	if rack.String() != "R17" {
		t.Errorf("Ancestor(rack) = %s, want R17", rack)
	}
	if _, err := rack.Ancestor(LevelNode); err == nil {
		t.Error("refining rack to node should fail")
	}
	sys, err := node.Ancestor(LevelSystem)
	if err != nil || sys != System() {
		t.Errorf("Ancestor(system) = %v, %v", sys, err)
	}
}

func TestMidplaneIDRoundTrip(t *testing.T) {
	for id := 0; id < TotalMidplanes; id++ {
		loc, err := MidplaneByID(id)
		if err != nil {
			t.Fatalf("MidplaneByID(%d): %v", id, err)
		}
		back, err := loc.MidplaneID()
		if err != nil {
			t.Fatalf("MidplaneID(%s): %v", loc, err)
		}
		if back != id {
			t.Errorf("midplane id round trip %d -> %d", id, back)
		}
	}
	if _, err := MidplaneByID(TotalMidplanes); err == nil {
		t.Error("MidplaneByID out of range should fail")
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		id := rng.Intn(TotalNodes)
		loc, err := NodeByID(id)
		if err != nil {
			t.Fatalf("NodeByID(%d): %v", id, err)
		}
		back, err := loc.NodeID()
		if err != nil {
			t.Fatalf("NodeID: %v", err)
		}
		if back != id {
			t.Errorf("node id round trip %d -> %d", id, back)
		}
	}
	mid, _ := Midplane(0, 0)
	if _, err := mid.NodeID(); err == nil {
		t.Error("NodeID on midplane should fail")
	}
}

func TestNodesCount(t *testing.T) {
	rack, _ := Rack(3)
	mid, _ := Midplane(3, 1)
	board, _ := NodeBoard(3, 1, 2)
	node, _ := Node(3, 1, 2, 9)
	checks := []struct {
		loc  Location
		want int
	}{
		{System(), 49152}, {rack, 1024}, {mid, 512}, {board, 32}, {node, 1},
	}
	for _, c := range checks {
		if got := c.loc.Nodes(); got != c.want {
			t.Errorf("%s.Nodes() = %d, want %d", c.loc, got, c.want)
		}
	}
}

func TestFloorDistance(t *testing.T) {
	a, _ := Rack(0)  // row 0, col 0
	b, _ := Rack(17) // row 1, col 1
	d, err := FloorDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("FloorDistance(R00,R17) = %d, want 2", d)
	}
	if d2, _ := FloorDistance(a, a); d2 != 0 {
		t.Errorf("self distance = %d, want 0", d2)
	}
	if _, err := FloorDistance(System(), a); err == nil {
		t.Error("FloorDistance with system location should fail")
	}
}

func TestAllMidplanes(t *testing.T) {
	mids := AllMidplanes()
	if len(mids) != TotalMidplanes {
		t.Fatalf("len = %d, want %d", len(mids), TotalMidplanes)
	}
	seen := map[string]bool{}
	for _, m := range mids {
		if m.Level() != LevelMidplane {
			t.Errorf("%s is not a midplane", m)
		}
		if seen[m.String()] {
			t.Errorf("duplicate midplane %s", m)
		}
		seen[m.String()] = true
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelSystem: "system", LevelRack: "rack", LevelMidplane: "midplane",
		LevelNodeBoard: "node-board", LevelNode: "node", Level(99): "Level(99)",
	} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}
