package machine

import (
	"testing"
	"testing/quick"
)

func TestTorusDimsCoverMachine(t *testing.T) {
	prod := 1
	for _, d := range TorusDims {
		prod *= d
	}
	if prod != TotalMidplanes {
		t.Fatalf("torus dims product %d != %d midplanes", prod, TotalMidplanes)
	}
}

func TestTorusCoordRoundTrip(t *testing.T) {
	for id := 0; id < TotalMidplanes; id++ {
		c, err := MidplaneTorusCoord(id)
		if err != nil {
			t.Fatal(err)
		}
		back, err := MidplaneIDFromTorus(c)
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("round trip %d -> %v -> %d", id, c, back)
		}
	}
	if _, err := MidplaneTorusCoord(-1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := MidplaneTorusCoord(TotalMidplanes); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := MidplaneIDFromTorus(TorusCoord{0, 0, 0, 0, 5}); err == nil {
		t.Error("bad coord accepted")
	}
}

func TestTorusDistanceProperties(t *testing.T) {
	// Identity, symmetry, triangle inequality (on a sample), wraparound.
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%TotalMidplanes, int(b)%TotalMidplanes, int(c)%TotalMidplanes
		dxy, err1 := TorusDistance(x, y)
		dyx, err2 := TorusDistance(y, x)
		dxz, err3 := TorusDistance(x, z)
		dzy, err4 := TorusDistance(z, y)
		dxx, err5 := TorusDistance(x, x)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return false
		}
		return dxx == 0 && dxy == dyx && dxy <= dxz+dzy && dxy >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTorusDistanceWraparound(t *testing.T) {
	// Along dim C (size 4): coordinates 0 and 3 are 1 apart via the wrap.
	a, err := MidplaneIDFromTorus(TorusCoord{0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MidplaneIDFromTorus(TorusCoord{0, 0, 3, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	d, err := TorusDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("wraparound distance = %d, want 1", d)
	}
}

func TestTorusNeighbors(t *testing.T) {
	for id := 0; id < TotalMidplanes; id++ {
		ns, err := TorusNeighbors(id)
		if err != nil {
			t.Fatal(err)
		}
		// Dims {2,3,4,4,1}: A has 1 distinct neighbor (size 2 wraps to the
		// same single other), B has 2, C has 2, D has 2, E has 0 → 7.
		if len(ns) != 7 {
			t.Fatalf("midplane %d has %d neighbors, want 7", id, len(ns))
		}
		for _, n := range ns {
			d, err := TorusDistance(id, n)
			if err != nil {
				t.Fatal(err)
			}
			if d != 1 {
				t.Errorf("neighbor %d of %d at distance %d", n, id, d)
			}
			if n == id {
				t.Errorf("midplane %d is its own neighbor", id)
			}
		}
	}
}

func TestTorusMidplaneID(t *testing.T) {
	mid, _ := Midplane(17, 1)
	id, ok := TorusMidplaneID(mid)
	if !ok || id != 35 {
		t.Errorf("midplane id = %d, %v", id, ok)
	}
	node, _ := Node(17, 1, 2, 3)
	if nid, ok := TorusMidplaneID(node); !ok || nid != 35 {
		t.Errorf("node-level id = %d, %v", nid, ok)
	}
	rack, _ := Rack(17)
	if rid, ok := TorusMidplaneID(rack); !ok || rid != 34 {
		t.Errorf("rack-level id = %d, %v", rid, ok)
	}
	if _, ok := TorusMidplaneID(System()); ok {
		t.Error("system location has a torus position")
	}
}
