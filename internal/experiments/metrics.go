package experiments

import (
	"time"

	"repro/internal/core"
)

// Small metric helpers shared across experiments; they used to be
// duplicated near their first call sites in ras.go and extra.go.

// safeDiv returns a/b, or 0 when b is zero — metric maps prefer a sentinel
// over ±Inf.
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// boolMetric encodes a boolean as a 0/1 metric value.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// incidentsAt reads the incident count at one window out of a filter sweep;
// -1 when the sweep does not include the window.
func incidentsAt(sweep []core.SweepPoint, w time.Duration) float64 {
	for _, p := range sweep {
		if p.Window == w {
			return float64(p.Incidents)
		}
	}
	return -1
}
