package experiments

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// renderAll renders every table and figure of a result into one byte
// stream, mirroring what mirareport prints.
func renderAll(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tab := range res.Tables {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for _, fig := range res.Figures {
		if err := fig.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestRunAllFusedMatchesLegacy is the PR's equivalence contract: the full
// E1–E23 suite over the fused scan engine renders byte-identically to the
// pre-fusion per-experiment walks, at several worker counts, over one
// shared dataset. Metrics must match bit-for-bit (NaN equals NaN —
// "undefined" is a deterministic outcome too).
func TestRunAllFusedMatchesLegacy(t *testing.T) {
	cfg := sim.SmallConfig()
	c, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	if err != nil {
		t.Fatal(err)
	}
	legacyEnv := NewEnvFromDataset(d)
	legacyEnv.Legacy = true
	legacyEnv.Parallelism = 1
	legacy, err := RunAll(legacyEnv, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		fusedEnv := NewEnvFromDataset(d)
		fusedEnv.Parallelism = workers
		fused, err := RunAll(fusedEnv, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(fused) != len(legacy) {
			t.Fatalf("workers=%d: %d results, legacy has %d", workers, len(fused), len(legacy))
		}
		for i := range legacy {
			l, f := legacy[i], fused[i]
			if l.ID != f.ID {
				t.Fatalf("workers=%d: result %d is %s, legacy %s", workers, i, f.ID, l.ID)
			}
			if len(f.Metrics) != len(l.Metrics) {
				t.Errorf("workers=%d %s: %d metrics, legacy %d", workers, l.ID, len(f.Metrics), len(l.Metrics))
				continue
			}
			for k, lv := range l.Metrics {
				fv, ok := f.Metrics[k]
				if !ok {
					t.Errorf("workers=%d %s: metric %q missing", workers, l.ID, k)
					continue
				}
				if fv != lv && !(math.IsNaN(fv) && math.IsNaN(lv)) {
					t.Errorf("workers=%d %s: metric %q = %v fused, %v legacy", workers, l.ID, k, fv, lv)
				}
			}
			if got, want := renderAll(t, f), renderAll(t, l); !bytes.Equal(got, want) {
				t.Errorf("workers=%d %s: rendered output differs from legacy", workers, l.ID)
			}
		}
	}
}

// TestFusedAccessorsNilCache pins the constructor-less Env fallback: every
// fused accessor must work (recomputing directly) on an Env literal with no
// cache, matching the cached path.
func TestFusedAccessorsNilCache(t *testing.T) {
	cfg := sim.SmallConfig()
	c, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	if err != nil {
		t.Fatal(err)
	}
	bare := &Env{D: d, Parallelism: 1}
	cached := NewEnvFromDataset(d)
	cached.Parallelism = 1

	bareSum, err := bare.Summary()
	if err != nil {
		t.Fatal(err)
	}
	cachedSum, err := cached.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if bareSum != cachedSum {
		t.Errorf("summary: bare %+v, cached %+v", bareSum, cachedSum)
	}
	bareTally, err := bare.ExitTally()
	if err != nil {
		t.Fatal(err)
	}
	cachedTally, err := cached.ExitTally()
	if err != nil {
		t.Fatal(err)
	}
	if bareTally != cachedTally {
		t.Errorf("exit tally: bare %+v, cached %+v", bareTally, cachedTally)
	}
	bareFatals, err := bare.FatalIncidents()
	if err != nil {
		t.Fatal(err)
	}
	cachedFatals, err := cached.FatalIncidents()
	if err != nil {
		t.Fatal(err)
	}
	if len(bareFatals) != len(cachedFatals) {
		t.Errorf("fatal incidents: bare %d, cached %d", len(bareFatals), len(cachedFatals))
	}
	if again, _ := cached.FatalIncidents(); &again[0] != &cachedFatals[0] {
		t.Error("cached fatal incidents not memoized")
	}
}

// TestMetricsTableHelpers covers the shared metric helpers.
func TestMetricsTableHelpers(t *testing.T) {
	if safeDiv(6, 3) != 2 || safeDiv(1, 0) != 0 {
		t.Error("safeDiv")
	}
	if boolMetric(true) != 1 || boolMetric(false) != 0 {
		t.Error("boolMetric")
	}
	res := &Result{ID: "EX", Metrics: map[string]float64{"b": 2, "a": 1}}
	var buf bytes.Buffer
	tab := MetricsTable(res)
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if tab.Columns[0] != "metric" {
		t.Error("metrics table shape")
	}
}
