package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// The experiments tests run on a 150-day corpus: long enough for per-family
// fitting and MTTI statistics, short enough to generate in a few seconds.
var testEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if testEnv == nil {
		cfg := sim.DefaultConfig()
		cfg.Days = 150
		cfg.NumUsers = 300
		cfg.NumProjects = 120
		e, err := NewEnv(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testEnv = e
	}
	return testEnv
}

func run(t *testing.T, id string) *Result {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	res, err := exp.Run(env(t))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("%s returned id %s", id, res.ID)
	}
	return res
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res := run(t, exp.ID)
			if len(res.Tables) == 0 && len(res.Figures) == 0 {
				t.Fatalf("%s produced no artifacts", exp.ID)
			}
			if len(res.Metrics) == 0 {
				t.Fatalf("%s produced no metrics", exp.ID)
			}
			for _, tab := range res.Tables {
				out := tab.String()
				if len(out) == 0 || !strings.Contains(out, exp.ID) {
					t.Errorf("table render of %s broken:\n%s", exp.ID, out)
				}
			}
			for _, fig := range res.Figures {
				if fig.String() == "" {
					t.Errorf("figure render of %s broken", exp.ID)
				}
				var b strings.Builder
				if err := fig.WriteCSV(&b); err != nil {
					t.Errorf("figure csv of %s: %v", exp.ID, err)
				}
			}
			mt := MetricsTable(res)
			if len(mt.Rows) != len(res.Metrics) {
				t.Errorf("metrics table rows %d != metrics %d", len(mt.Rows), len(res.Metrics))
			}
		})
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("E99"); ok {
		t.Error("unknown id found")
	}
}

// TestByIDCaseInsensitive pins the -exp flag ergonomics: lowercase ids
// resolve to the same experiment as their canonical spelling.
func TestByIDCaseInsensitive(t *testing.T) {
	for _, id := range []string{"e6", "E6"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("ByID(%q) not found", id)
		}
		if e.ID != "E6" {
			t.Fatalf("ByID(%q) = %s, want E6", id, e.ID)
		}
	}
}

// want checks a metric against [lo, hi].
func want(t *testing.T, res *Result, key string, lo, hi float64) {
	t.Helper()
	v, ok := res.Metrics[key]
	if !ok {
		t.Fatalf("%s: missing metric %s", res.ID, key)
	}
	if v < lo || v > hi {
		t.Errorf("%s: %s = %v, want in [%v, %v]", res.ID, key, v, lo, hi)
	}
}

// The bands below are the 150-day scaled versions of the paper's anchors
// (see EXPERIMENTS.md for the full-corpus comparison).

func TestE1Anchors(t *testing.T) {
	res := run(t, "E1")
	days := 150.0
	want(t, res, "days", days-1, days+2)
	// Paper: 32.44B core-hours / 2001 days → ≈2.43B per 150 days.
	want(t, res, "core_hours_b", 2.43*0.9, 2.43*1.15)
	// Paper-scale jobs: ≈347k/2001d → ≈26k per 150 days.
	want(t, res, "jobs", 26000*0.85, 26000*1.15)
}

func TestE4Anchors(t *testing.T) {
	res := run(t, "E4")
	// Paper: 99,245 failures / 2001 days → ≈7,440 per 150 days.
	want(t, res, "failures", 7440*0.8, 7440*1.2)
	// Paper: 99.4% user-caused.
	want(t, res, "user_share", 0.985, 0.999)
	// Joint attribution agrees with exit-based within 20%.
	exitSys := res.Metrics["system_failures"]
	jointSys := res.Metrics["joint_system"]
	if jointSys < exitSys || jointSys > exitSys*1.2 {
		t.Errorf("joint system %v vs exit %v", jointSys, exitSys)
	}
}

func TestE5FailedJobsDieEarly(t *testing.T) {
	res := run(t, "E5")
	if res.Metrics["median_failed_s"] >= res.Metrics["median_success_s"] {
		t.Errorf("failed median %v ≥ success median %v",
			res.Metrics["median_failed_s"], res.Metrics["median_success_s"])
	}
	want(t, res, "ks_two_sample", 0.1, 1)
}

func TestE6FitQuality(t *testing.T) {
	res := run(t, "E6")
	// Every fitted family's KS must be small: the paper's candidate set
	// contains the generating law for each family.
	for k, v := range res.Metrics {
		if strings.HasPrefix(k, "ks_") && v > 0.08 {
			t.Errorf("%s = %v, want < 0.08", k, v)
		}
	}
	// The four paper families must appear among fitted rows.
	tab := res.Tables[0].String()
	for _, fam := range []string{"weibull", "pareto", "inverse-gaussian"} {
		if !strings.Contains(tab, fam) {
			t.Errorf("E6 table missing %s:\n%s", fam, tab)
		}
	}
	// Erlang or exponential must win some family (config/abort injection).
	if !strings.Contains(tab, "erlang") && !strings.Contains(tab, "exponential") {
		t.Errorf("E6 table missing erlang/exponential:\n%s", tab)
	}
}

func TestE7Association(t *testing.T) {
	res := run(t, "E7")
	want(t, res, "cramers_v_user", 0.15, 1)
	want(t, res, "pearson_jobs_failures_user", 0.5, 1)
	want(t, res, "top10_fail_share_user", 0.2, 1)
}

func TestE10Locality(t *testing.T) {
	res := run(t, "E10")
	// Strong locality: top-5 midplanes ≫ uniform share.
	if res.Metrics["top5_share_midplane"] < 3*res.Metrics["uniform_share_midplane"] {
		t.Errorf("locality weak: top5 %v vs uniform %v",
			res.Metrics["top5_share_midplane"], res.Metrics["uniform_share_midplane"])
	}
	want(t, res, "gini_midplane", 0.4, 1)
}

func TestE11FilteringReduction(t *testing.T) {
	res := run(t, "E11")
	// At the default 20-minute window the message+spatial rule must
	// compress the raw stream hard (cascades average ~22 events).
	inc := res.Metrics["incidents_20m_temporal+spatial+msg"]
	if inc <= 0 {
		t.Fatal("no incidents at 20m")
	}
	e9 := run(t, "E9")
	rawFatal := e9.Metrics["fatal_share"] * e9.Metrics["total"]
	if rawFatal/inc < 5 {
		t.Errorf("reduction %v too weak (raw %v, incidents %v)", rawFatal/inc, rawFatal, inc)
	}
	// Looser similarity → fewer incidents (more merging).
	if res.Metrics["incidents_20m_temporal"] > res.Metrics["incidents_20m_temporal+spatial"] {
		t.Error("temporal-only should merge at least as much as +spatial")
	}
}

func TestE12MTTI(t *testing.T) {
	res := run(t, "E12")
	// Paper anchor: 3.5 days, scaled tolerance ±35% on 150-day slice
	// (only ≈43 interruptions expected, so the band is wide).
	want(t, res, "mtti_days", 3.5*0.65, 3.5*1.45)
	// Raw MTBF must be far below MTTI.
	if res.Metrics["mtbf_raw_days"]*10 > res.Metrics["mtti_days"] {
		t.Errorf("raw MTBF %v not ≪ MTTI %v", res.Metrics["mtbf_raw_days"], res.Metrics["mtti_days"])
	}
}

func TestE8StructureTrend(t *testing.T) {
	res := run(t, "E8")
	// The workload model boosts failure probability with scale and task
	// count, as the paper observes; the trends must be clearly positive.
	want(t, res, "trend_nodes", 0.01, 1)
	want(t, res, "trend_tasks", 0.005, 1)
}

func TestE13IOSeparation(t *testing.T) {
	res := run(t, "E13")
	want(t, res, "median_ratio", 1.5, 1e9)
	want(t, res, "ks_bytes", 0.1, 1)
	want(t, res, "spearman_success", 0.01, 1)
}

func TestE14Diurnal(t *testing.T) {
	res := run(t, "E14")
	// Peak must be a working hour, trough at night (cfg.NightFactor).
	want(t, res, "peak_hour", 8, 23)
	want(t, res, "trough_hour", 0, 7)
	want(t, res, "diurnal_ratio", 1.3, 4)
	// Failure rate stays roughly flat across hours.
	want(t, res, "fail_rate_spread", 0, 0.13)
	// Weekend modulation gives the daily series a weekly rhythm.
	want(t, res, "weekly_acf", 0.1, 1)
}

func TestE15InterruptsTrackConsumption(t *testing.T) {
	res := run(t, "E15")
	want(t, res, "pearson_ch_interrupts", 0.2, 1)
	want(t, res, "top_decile_share", 0.15, 1)
}

func TestE16Precursors(t *testing.T) {
	res := run(t, "E16")
	// ≈65% of incidents are injected with precursors inside 6h; the 12h
	// lookback must recover most of them.
	want(t, res, "coverage_12h", 0.45, 1)
	// Coverage grows (weakly) with the lookback.
	if res.Metrics["coverage_24h"] < res.Metrics["coverage_1h"] {
		t.Error("coverage should not shrink with lookback")
	}
	want(t, res, "median_lead_h", 0.1, 12)
	// Raw WARN bursts are a poor alarm (noise dominates): precision ≪ 1.
	want(t, res, "precision_12h", 0, 0.2)
}

func TestE17Scheduling(t *testing.T) {
	res := run(t, "E17")
	want(t, res, "spearman_size_wait", 0.01, 1)
	want(t, res, "pearson_req_used", 0.5, 1)
	// Failed jobs use less of their walltime request than successes.
	if res.Metrics["ratio_failure"] >= res.Metrics["ratio_success"] {
		t.Errorf("failure ratio %v ≥ success ratio %v",
			res.Metrics["ratio_failure"], res.Metrics["ratio_success"])
	}
}

func TestE18Bathtub(t *testing.T) {
	res := run(t, "E18")
	// Burn-in: the first life phase is less reliable than mid-life.
	first := res.Metrics["first_phase_mtti"]
	mid := res.Metrics["mid_life_mtti"]
	if first <= 0 || mid <= 0 {
		t.Skip("not enough interruptions per phase on this corpus")
	}
	if first >= mid {
		t.Errorf("burn-in not visible: first %v ≥ mid %v", first, mid)
	}
}

func TestE19Waste(t *testing.T) {
	res := run(t, "E19")
	want(t, res, "wasted_share", 0.05, 0.6)
	// User failures dominate the waste (system interrupts are rare).
	if res.Metrics["user_waste_ch_b"]*1e3 <= res.Metrics["system_waste_ch_m"] {
		t.Errorf("user waste %vB should exceed system waste %vM",
			res.Metrics["user_waste_ch_b"], res.Metrics["system_waste_ch_m"])
	}
}

func TestE20Resubmission(t *testing.T) {
	res := run(t, "E20")
	// Outcomes repeat within a user's stream: per-user failure propensity
	// plus explicit resubmission chains make P(fail|fail) clearly larger
	// than P(fail|success).
	if res.Metrics["p_fail_after_fail"] <= res.Metrics["p_fail_after_success"] {
		t.Errorf("no outcome repetition: %v vs %v",
			res.Metrics["p_fail_after_fail"], res.Metrics["p_fail_after_success"])
	}
	want(t, res, "lift", 1.1, 5)
	// Users resubmit failures faster than they start fresh work.
	if res.Metrics["median_gap_fail_h"] >= res.Metrics["median_gap_success_h"] {
		t.Errorf("failure gap %vh not below success gap %vh",
			res.Metrics["median_gap_fail_h"], res.Metrics["median_gap_success_h"])
	}
	want(t, res, "fast_resubmit_share", 0.05, 1)
}

func TestE21TorusCorrelation(t *testing.T) {
	res := run(t, "E21")
	// Propagated incidents make close-in-time pairs disproportionately
	// torus-adjacent versus the all-pairs baseline.
	if res.Metrics["nbr_share_close_1h"] < 2*res.Metrics["nbr_share_all_1h"] {
		t.Errorf("no torus correlation: close %v vs all %v",
			res.Metrics["nbr_share_close_1h"], res.Metrics["nbr_share_all_1h"])
	}
	if res.Metrics["mean_dist_close_1h"] >= res.Metrics["mean_dist_all"] {
		t.Errorf("close pairs not closer: %v vs %v",
			res.Metrics["mean_dist_close_1h"], res.Metrics["mean_dist_all"])
	}
}

func TestE22Availability(t *testing.T) {
	res := run(t, "E22")
	// Repairs down a couple of midplanes for hours per incident: the
	// machine stays highly but not perfectly available.
	want(t, res, "availability", 0.990, 0.99999)
	// Injected lognormal(median 4h) repair times.
	want(t, res, "median_repair_h", 2, 8)
	if ks, ok := res.Metrics["repair_fit_ks"]; ok && ks > 0.12 {
		t.Errorf("repair fit KS %v too large", ks)
	}
}

func TestE23Survival(t *testing.T) {
	res := run(t, "E23")
	// S(t) is monotone and bounded by the overall failure floor.
	if res.Metrics["s_10m"] < res.Metrics["s_1h"] || res.Metrics["s_1h"] < res.Metrics["s_24h"] {
		t.Errorf("survival not monotone: %v %v %v",
			res.Metrics["s_10m"], res.Metrics["s_1h"], res.Metrics["s_24h"])
	}
	// Infant mortality keeps early survival high...
	want(t, res, "s_10m", 0.8, 0.99)
	// ...while the KM estimate (which extrapolates past the censoring of
	// completed jobs) accumulates substantial failure probability by 24h.
	// The 24h duration cap can drive S to exactly 0 at the boundary.
	want(t, res, "s_24h", 0, 0.6)
	// Infant mortality: the early hazard dominates, and the censored
	// parametric Weibull fit agrees with shape < 1.
	want(t, res, "hazard_decreasing", 1, 1)
	want(t, res, "weibull_shape", 0.2, 0.999)
}

func TestE2E3Shapes(t *testing.T) {
	e2 := run(t, "E2")
	want(t, e2, "gini_jobs_user", 0.3, 1)
	e3 := run(t, "E3")
	want(t, e3, "mean_tasks", 1.2, 3)
	want(t, e3, "small_job_share", 0.1, 0.6)
}
