package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/machine"
)

// This file is the experiments-side face of the fused scan engine: every
// accessor serves the hot whole-corpus aggregates (E1/E2/E4/E7/E9/E10/E14/
// E15/E16/E18/E19/E21) from one shared core.FusedScan — or, when Legacy is
// set (or the Env has no cache), from the pre-fusion per-experiment walks.
// Both paths are bit-identical; the equivalence tests compare rendered
// output byte for byte.

// fused reports whether the fused engine serves this environment.
func (e *Env) fused() bool { return !e.Legacy && e.cache != nil }

// fusedProfile returns the shared scan profile, running the scan once per
// environment no matter how many experiments (or workers) request it.
func (e *Env) fusedProfile() (*core.FusedProfile, error) {
	c := e.cache
	c.profileOnce.Do(func() { c.profile, c.profileErr = e.D.FusedScan(e.Parallelism) })
	return c.profile, c.profileErr
}

// Summary returns the Table-I dataset summary (E1).
func (e *Env) Summary() (core.Summary, error) {
	if !e.fused() {
		return e.D.Summarize(), nil
	}
	p, err := e.fusedProfile()
	if err != nil {
		return core.Summary{}, err
	}
	return p.Summary, nil
}

// ExitTally returns the exit-status-only failure tally (E4/E19 and the
// family tables).
func (e *Env) ExitTally() (core.FailTally, error) {
	if !e.fused() {
		return core.TallyOf(e.ClassifyByExit()), nil
	}
	p, err := e.fusedProfile()
	if err != nil {
		return core.FailTally{}, err
	}
	return p.Exit, nil
}

// JointTally returns the RAS-correlated failure tally under
// core.DefaultJointOptions (E4).
func (e *Env) JointTally() (core.FailTally, error) {
	if !e.fused() {
		return core.TallyOf(e.ClassifyJoint()), nil
	}
	p, err := e.fusedProfile()
	if err != nil {
		return core.FailTally{}, err
	}
	return p.Joint, nil
}

// Groups returns the per-user or per-project aggregates in Aggregate order
// (E2/E7), with system attribution from the exit-status classification.
func (e *Env) Groups(by core.GroupBy) ([]core.GroupStats, error) {
	if !e.fused() {
		return e.D.Aggregate(by, e.ClassifyByExit()), nil
	}
	p, err := e.fusedProfile()
	if err != nil {
		return nil, err
	}
	return p.Groups(by), nil
}

// Concentration returns the concentration/correlation profile for the
// grouping (E2/E7), computed once per environment and grouping.
func (e *Env) Concentration(by core.GroupBy) (*core.ConcentrationResult, error) {
	if !e.fused() {
		return e.D.Concentration(by, e.ClassifyByExit())
	}
	p, err := e.fusedProfile()
	if err != nil {
		return nil, err
	}
	c := e.cache
	if by == core.ByProject {
		c.concProjOnce.Do(func() { c.concProj, c.concProjErr = p.Concentration(by) })
		return c.concProj, c.concProjErr
	}
	c.concUserOnce.Do(func() { c.concUser, c.concUserErr = p.Concentration(by) })
	return c.concUser, c.concUserErr
}

// Temporal returns the hour/weekday/month activity profile (E14).
func (e *Env) Temporal() (*core.TemporalProfile, error) {
	if !e.fused() {
		return e.D.Temporal(), nil
	}
	p, err := e.fusedProfile()
	if err != nil {
		return nil, err
	}
	return p.Temporal, nil
}

// RASProfile returns the severity/category/component composition (E9).
func (e *Env) RASProfile() (*core.CategoryProfile, error) {
	if !e.fused() {
		return e.D.Profile(), nil
	}
	p, err := e.fusedProfile()
	if err != nil {
		return nil, err
	}
	return p.RAS, nil
}

// Waste returns the wasted core-hours breakdown under the exit-status
// classification (E19).
func (e *Env) Waste() (*core.WasteResult, error) {
	if !e.fused() {
		return e.D.Waste(e.ClassifyByExit())
	}
	p, err := e.fusedProfile()
	if err != nil {
		return nil, err
	}
	return p.Waste, nil
}

// Interrupts returns the interruptions-vs-consumption correlation (E15).
func (e *Env) Interrupts() (*core.InterruptCorrelation, error) {
	if !e.fused() {
		return e.D.InterruptsByUser(e.ClassifyByExit())
	}
	p, err := e.fusedProfile()
	if err != nil {
		return nil, err
	}
	return p.Interrupts, p.InterruptsErr
}

// Locality returns the FATAL spatial-concentration profile at the level
// (E10). Only rack and midplane are served by the fused scan; other levels
// fall through to the direct walk.
func (e *Env) Locality(level machine.Level) (*core.LocalityResult, error) {
	if !e.fused() || (level != machine.LevelRack && level != machine.LevelMidplane) {
		return e.D.Locality(level)
	}
	p, err := e.fusedProfile()
	if err != nil {
		return nil, err
	}
	return p.Locality(level)
}

// FatalIncidents returns the default-rule filtered FATAL incident stream,
// computed once per environment (E16/E21 share it in fused mode).
func (e *Env) FatalIncidents() ([]core.Incident, error) {
	if e.cache == nil {
		return e.D.FilterFatalCached(core.DefaultFilterRule())
	}
	c := e.cache
	c.fatalIncOnce.Do(func() { c.fatalInc, c.fatalIncErr = e.D.FilterFatalCached(core.DefaultFilterRule()) })
	return c.fatalInc, c.fatalIncErr
}

// WarnIncidents returns the default-rule filtered WARN burst stream,
// computed once per environment.
func (e *Env) WarnIncidents() ([]core.Incident, error) {
	if e.cache == nil {
		return e.D.FilterWarnCached(core.DefaultFilterRule())
	}
	c := e.cache
	c.warnIncOnce.Do(func() { c.warnInc, c.warnIncErr = e.D.FilterWarnCached(core.DefaultFilterRule()) })
	return c.warnInc, c.warnIncErr
}

// LeadTimes evaluates the WARN→FATAL precursor analysis for several
// lookbacks (E16). In fused mode the filtering and location indexing happen
// once via core.LeadTimeSweep; in legacy mode each lookback re-filters, as
// the pre-fusion experiment did.
func (e *Env) LeadTimes(lookbacks []time.Duration) ([]*core.LeadTimeResult, error) {
	opts := make([]core.LeadTimeOptions, len(lookbacks))
	for i, lb := range lookbacks {
		opt := core.DefaultLeadTimeOptions()
		opt.Lookback = lb
		opts[i] = opt
	}
	if !e.fused() {
		rs := make([]*core.LeadTimeResult, len(opts))
		for i, opt := range opts {
			r, err := e.D.LeadTime(core.DefaultFilterRule(), opt)
			if err != nil {
				return nil, err
			}
			rs[i] = r
		}
		return rs, nil
	}
	fatals, err := e.FatalIncidents()
	if err != nil {
		return nil, err
	}
	warns, err := e.WarnIncidents()
	if err != nil {
		return nil, err
	}
	return core.LeadTimeSweep(fatals, warns, opts)
}

// LifePhases returns the n-phase reliability trajectory (E18), reusing the
// memoized default-rule MTTI in fused mode.
func (e *Env) LifePhases(n int) ([]core.LifePhase, error) {
	if !e.fused() {
		return e.D.LifePhases(n, core.DefaultFilterRule())
	}
	mtti, err := e.MTTI()
	if err != nil {
		return nil, err
	}
	return e.D.LifePhasesFromMTTI(n, mtti)
}

// SpatialCorr returns the torus spatial-correlation result for one time
// window (E21), reusing the memoized incident stream in fused mode.
func (e *Env) SpatialCorr(window time.Duration) (*core.SpatialCorrResult, error) {
	if !e.fused() {
		return e.D.SpatialCorrelation(core.DefaultFilterRule(), window)
	}
	incidents, err := e.FatalIncidents()
	if err != nil {
		return nil, err
	}
	return core.SpatialCorrelationIncidents(incidents, window)
}
