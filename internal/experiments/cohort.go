package experiments

import (
	"repro/internal/core"
	"repro/internal/sel"
)

// This file is the experiments-side face of the selection layer: cohort
// profiles — the full fused analysis suite restricted to the jobs and
// events a -where predicate selects — memoized per environment under the
// predicate's canonical form, so repeated queries (a report re-rendering a
// cohort, a sweep revisiting a user) cost one scan.

// CohortProfile parses a -where expression and returns the fused profile
// of the cohort it selects (see core.FusedScanWhere and DESIGN.md §14).
func (e *Env) CohortProfile(where string) (*core.FusedProfile, error) {
	expr, err := sel.Parse(where)
	if err != nil {
		return nil, err
	}
	return e.CohortProfileExpr(expr)
}

// UserProfile returns the cohort profile of one user's jobs.
func (e *Env) UserProfile(user string) (*core.FusedProfile, error) {
	return e.CohortProfileExpr(sel.Eq{Col: "user", Val: user})
}

// ProjectProfile returns the cohort profile of one project's jobs.
func (e *Env) ProjectProfile(project string) (*core.FusedProfile, error) {
	return e.CohortProfileExpr(sel.Eq{Col: "project", Val: project})
}

// CohortProfileExpr is CohortProfile for an already-parsed predicate. A nil
// predicate is the whole corpus — the shared FusedScan profile. Results are
// cached under the predicate's canonical String(), so syntactic variants of
// one selection ("a and b" vs "(a) && b") share an entry.
func (e *Env) CohortProfileExpr(expr sel.Expr) (*core.FusedProfile, error) {
	if expr == nil {
		if e.fused() {
			return e.fusedProfile()
		}
		return e.D.FusedScan(e.Parallelism)
	}
	if e.cache == nil {
		return e.cohortScan(expr)
	}
	c := e.cache
	key := expr.String()
	// The lock covers the scan itself: concurrent requests for distinct
	// cohorts serialize, which keeps the cache a plain map and matches how
	// the CLI and report paths issue queries (one at a time).
	c.cohortMu.Lock()
	defer c.cohortMu.Unlock()
	if p, ok := c.cohorts[key]; ok {
		return p, nil
	}
	p, err := e.cohortScan(expr)
	if err != nil {
		return nil, err
	}
	if c.cohorts == nil {
		c.cohorts = make(map[string]*core.FusedProfile)
	}
	c.cohorts[key] = p
	return p, nil
}

// cohortScan computes a cohort profile: predicate pushdown in fused mode,
// materialize-then-scan in legacy mode. Both are bit-identical (the
// equivalence suite in core enforces it); the legacy path exists for the
// paired benchmark and for bisecting pushdown regressions.
func (e *Env) cohortScan(expr sel.Expr) (*core.FusedProfile, error) {
	if e.Legacy {
		md, err := e.D.MaterializeWhere(expr)
		if err != nil {
			return nil, err
		}
		return md.FusedScan(e.Parallelism)
	}
	return e.D.FusedScanWhere(expr, e.Parallelism)
}
