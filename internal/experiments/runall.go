package experiments

import (
	"context"
	"fmt"

	"repro/internal/par"
)

// RunAll runs every experiment of the suite (the All index) against the
// environment on at most workers goroutines (≤ 0 means GOMAXPROCS, 1 is
// fully serial). Results are returned in index order — E1 first — no matter
// which worker finished first, and each Result is identical to a serial
// run: the experiments only read the shared dataset, and the analyses
// memoized on Env are sync.Once-guarded so concurrent experiments compute
// them exactly once.
func RunAll(env *Env, workers int) ([]*Result, error) {
	exps := All()
	results, err := par.Map(context.Background(), exps, workers, func(i int, exp Experiment) (*Result, error) {
		res, err := exp.Run(env)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exp.ID, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
