package experiments

import (
	"fmt"
	"time"

	"repro/internal/report"
)

// E16 regenerates the WARN→FATAL precursor (lead-time) analysis: how often
// fatal incidents are preceded by warning bursts on the same hardware, and
// with what lead time.
func E16(env *Env) (*Result, error) {
	t := &report.Table{
		Title:   "E16: WARN→FATAL precursor analysis by lookback window",
		Columns: []string{"lookback", "incidents", "with precursor", "coverage", "median lead (h)", "warn bursts", "alarm precision"},
	}
	metrics := map[string]float64{}
	lookbacks := []time.Duration{time.Hour, 6 * time.Hour, 12 * time.Hour, 24 * time.Hour}
	results, err := env.LeadTimes(lookbacks)
	if err != nil {
		return nil, err
	}
	for i, lookback := range lookbacks {
		res := results[i]
		t.AddRow(lookback.String(), res.Incidents, res.WithPrecursor, res.Coverage,
			res.MedianLeadH, res.WarnBursts, res.Precision)
		key := fmt.Sprintf("%dh", int(lookback.Hours()))
		metrics["coverage_"+key] = res.Coverage
		metrics["precision_"+key] = res.Precision
		if lookback == 12*time.Hour {
			metrics["median_lead_h"] = res.MedianLeadH
		}
	}
	return &Result{
		ID: "E16", Description: "precursor lead-time analysis",
		Tables: []*report.Table{t}, Metrics: metrics,
	}, nil
}

// E17 regenerates the queue-behaviour analysis: waiting time by job size
// and walltime-request accuracy by outcome.
func E17(env *Env) (*Result, error) {
	res, err := env.D.Scheduling()
	if err != nil {
		return nil, err
	}
	tw := &report.Table{
		Title:   "E17: queue wait by job size",
		Columns: []string{"nodes", "jobs", "median wait", "p95 wait"},
		Notes:   []string{fmt.Sprintf("Spearman(size, wait) = %.3f", res.SpearmanSizeWait)},
	}
	var xs, ys []float64
	for _, b := range res.WaitBySize {
		tw.AddRow(b.Nodes, b.Jobs, b.MedianWait.Round(time.Second).String(), b.P95Wait.Round(time.Second).String())
		xs = append(xs, float64(b.Nodes))
		ys = append(ys, b.MedianWait.Hours())
	}
	ta := &report.Table{
		Title:   "E17: walltime-request accuracy (runtime / requested)",
		Columns: []string{"outcome", "jobs", "median ratio", "p95 ratio", "share < 10%"},
		Notes:   []string{fmt.Sprintf("Pearson(requested, used) over successes = %.3f", res.PearsonReqUsed)},
	}
	metrics := map[string]float64{
		"spearman_size_wait": res.SpearmanSizeWait,
		"pearson_req_used":   res.PearsonReqUsed,
	}
	for _, a := range res.Accuracy {
		ta.AddRow(a.Outcome, a.Jobs, a.MedianRatio, a.P95Ratio, a.UnderTenPct)
		metrics["ratio_"+a.Outcome] = a.MedianRatio
		metrics["under10_"+a.Outcome] = a.UnderTenPct
	}
	fig := &report.Figure{
		Title:  "E17 (Fig): median queue wait vs job size",
		XLabel: "nodes", YLabel: "hours",
		Series: []report.Series{{Name: "median wait", X: xs, Y: ys}},
	}
	return &Result{
		ID: "E17", Description: "queue wait and walltime accuracy",
		Tables: []*report.Table{tw, ta}, Figures: []*report.Figure{fig},
		Metrics: metrics,
	}, nil
}

// E18 regenerates the reliability-over-life analysis: failure rate and
// MTTI per life phase (burn-in, mid-life, wear-out).
func E18(env *Env) (*Result, error) {
	const phases = 8
	life, err := env.LifePhases(phases)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E18: reliability over the system's life",
		Columns: []string{"phase", "days", "jobs", "fail rate", "interruptions", "MTTI (days)"},
		Notes:   []string{"fault injection follows a bathtub hazard: burn-in, stable mid-life, mild wear-out"},
	}
	var xs, mttis, rates []float64
	for _, p := range life {
		t.AddRow(p.Label, fmt.Sprintf("%.0f-%.0f", p.StartDay, p.EndDay), p.Jobs, p.FailRate, p.Interruptions, p.MTTIDays)
		xs = append(xs, (p.StartDay+p.EndDay)/2)
		mttis = append(mttis, p.MTTIDays)
		rates = append(rates, p.FailRate)
	}
	fig := &report.Figure{
		Title:  "E18 (Fig): MTTI per life phase",
		XLabel: "day", YLabel: "MTTI (days)",
		Series: []report.Series{{Name: "mtti", X: xs, Y: mttis}},
	}
	metrics := map[string]float64{
		"first_phase_mtti": life[0].MTTIDays,
		"last_phase_mtti":  life[len(life)-1].MTTIDays,
		"phases":           float64(len(life)),
	}
	// Mid-life MTTI: mean of the middle phases.
	mid := 0.0
	cnt := 0
	for i := 2; i < len(life)-2; i++ {
		if life[i].MTTIDays > 0 {
			mid += life[i].MTTIDays
			cnt++
		}
	}
	if cnt > 0 {
		metrics["mid_life_mtti"] = mid / float64(cnt)
	}
	return &Result{
		ID: "E18", Description: "reliability over system life",
		Tables: []*report.Table{t}, Figures: []*report.Figure{fig},
		Metrics: metrics,
	}, nil
}

// E19 regenerates the failure-cost analysis: core-hours consumed by jobs
// that produced no result, by exit family and by root cause.
func E19(env *Env) (*Result, error) {
	w, err := env.Waste()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E19: compute wasted by failures",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("total core-hours (B)", w.TotalCoreHours/1e9)
	t.AddRow("wasted core-hours (B)", w.WastedCoreHours/1e9)
	t.AddRow("wasted share", w.WastedShare)
	t.AddRow("wasted by user failures (B)", w.UserCoreHours/1e9)
	t.AddRow("wasted by system failures (M)", w.SystemCoreHours/1e6)
	tf := &report.Table{
		Title:   "E19: wasted core-hours by exit family",
		Columns: []string{"family", "jobs", "core-hours (M)", "share of waste"},
	}
	for _, row := range w.ByFamily {
		tf.AddRow(string(row.Family), row.Jobs, row.CoreHours/1e6, row.Share)
	}
	return &Result{
		ID: "E19", Description: "compute cost of failures",
		Tables: []*report.Table{t, tf},
		Metrics: map[string]float64{
			"wasted_share":      w.WastedShare,
			"wasted_ch_b":       w.WastedCoreHours / 1e9,
			"user_waste_ch_b":   w.UserCoreHours / 1e9,
			"system_waste_ch_m": w.SystemCoreHours / 1e6,
		},
	}, nil
}

// E20 regenerates the resubmission-behaviour analysis: outcome repetition
// across a user's consecutive jobs and resubmission latency after failures.
func E20(env *Env) (*Result, error) {
	r, err := env.D.Resubmission()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E20: resubmission behaviour",
		Columns: []string{"measure", "value"},
	}
	t.AddRow("P(fail | prev fail)", r.PFailAfterFail)
	t.AddRow("P(fail | prev success)", r.PFailAfterSuccess)
	t.AddRow("failure lift", r.Lift)
	t.AddRow("pairs after failure", r.PairsAfterFail)
	t.AddRow("pairs after success", r.PairsAfterSuccess)
	t.AddRow("median gap after failure (h)", r.MedianGapAfterFailH)
	t.AddRow("median gap after success (h)", r.MedianGapAfterSuccessH)
	t.AddRow("resubmits within 1h of failure", r.FastResubmitShare)
	return &Result{
		ID: "E20", Description: "resubmission behaviour", Tables: []*report.Table{t},
		Metrics: map[string]float64{
			"p_fail_after_fail":    r.PFailAfterFail,
			"p_fail_after_success": r.PFailAfterSuccess,
			"lift":                 r.Lift,
			"median_gap_fail_h":    r.MedianGapAfterFailH,
			"median_gap_success_h": r.MedianGapAfterSuccessH,
			"fast_resubmit_share":  r.FastResubmitShare,
		},
	}, nil
}

// E21 regenerates the torus spatial-correlation analysis: incidents close
// in time are close on the 5D torus (cable/link propagation).
func E21(env *Env) (*Result, error) {
	t := &report.Table{
		Title:   "E21: torus distance of incident pairs, close-in-time vs baseline",
		Columns: []string{"window", "close pairs", "mean dist (close)", "mean dist (all)", "nbr share (close)", "nbr share (all)", "correlated"},
	}
	metrics := map[string]float64{}
	for _, window := range []time.Duration{time.Hour, 6 * time.Hour, 24 * time.Hour} {
		res, err := env.SpatialCorr(window)
		if err != nil {
			return nil, err
		}
		t.AddRow(window.String(), res.ClosePairs, res.MeanDistClose, res.MeanDistAll,
			res.NeighborShareClose, res.NeighborShareAll, fmt.Sprintf("%v", res.Correlated))
		key := fmt.Sprintf("%dh", int(window.Hours()))
		metrics["nbr_share_close_"+key] = res.NeighborShareClose
		metrics["nbr_share_all_"+key] = res.NeighborShareAll
		if window == time.Hour {
			metrics["mean_dist_close_1h"] = res.MeanDistClose
			metrics["mean_dist_all"] = res.MeanDistAll
		}
	}
	return &Result{
		ID: "E21", Description: "torus spatial correlation", Tables: []*report.Table{t},
		Metrics: metrics,
	}, nil
}

// E22 regenerates the availability analysis: downtime derived from the
// service-action pairs in the RAS log, machine availability, and the
// repair-time distribution, via the shared environment cache.
func E22(env *Env) (*Result, error) {
	a, err := env.Availability()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E22: hardware availability from service actions",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("service actions", a.ServiceActions)
	t.AddRow("unmatched begins", a.UnmatchedBegins)
	t.AddRow("down midplane-hours", a.DownMidplaneHours)
	t.AddRow("span (h)", a.SpanHours)
	t.AddRow("availability", a.Availability)
	t.AddRow("mean repair (h)", a.MeanRepairH)
	t.AddRow("median repair (h)", a.MedianRepairH)
	metrics := map[string]float64{
		"availability":    a.Availability,
		"service_actions": float64(a.ServiceActions),
		"median_repair_h": a.MedianRepairH,
	}
	if a.BestFit.Dist != nil {
		t.AddRow("repair best fit", a.BestFit.Family)
		t.AddRow("repair fit KS", a.BestFit.KS)
		metrics["repair_fit_ks"] = a.BestFit.KS
	}
	return &Result{
		ID: "E22", Description: "availability and repair times",
		Tables: []*report.Table{t}, Metrics: metrics,
	}, nil
}

// E23 regenerates the job-survival analysis: the Kaplan–Meier curve of
// time to user failure with completed/system-killed jobs as censored
// observations.
func E23(env *Env) (*Result, error) {
	sv, err := env.Survival()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E23: Kaplan–Meier survival of jobs vs user failure",
		Columns: []string{"horizon", "S(t)"},
		Notes: []string{
			fmt.Sprintf("%d jobs: %d user-failure events, %d censored; decreasing hazard (infant mortality): %v",
				sv.Jobs, sv.Events, sv.Censored, sv.HazardDecreasing),
			fmt.Sprintf("censored Weibull MLE: shape %.3f scale %.0f (shape < 1 confirms infant mortality parametrically)",
				sv.ParametricWeibull.Shape, sv.ParametricWeibull.Scale),
		},
	}
	horizons := []int{60, 600, 3600, 6 * 3600, 24 * 3600}
	labels := []string{"1m", "10m", "1h", "6h", "24h"}
	var xs, ys []float64
	for i, h := range horizons {
		t.AddRow(labels[i], sv.Horizons[h])
		xs = append(xs, float64(h))
		ys = append(ys, sv.Horizons[h])
	}
	fig := &report.Figure{
		Title:  "E23 (Fig): survival vs user failure",
		XLabel: "seconds", YLabel: "S(t)",
		Series: []report.Series{{Name: "S", X: xs, Y: ys}},
	}
	return &Result{
		ID: "E23", Description: "job survival analysis",
		Tables: []*report.Table{t}, Figures: []*report.Figure{fig},
		Metrics: map[string]float64{
			"s_10m":             sv.Horizons[600],
			"s_1h":              sv.Horizons[3600],
			"s_24h":             sv.Horizons[24*3600],
			"events":            float64(sv.Events),
			"hazard_decreasing": boolMetric(sv.HazardDecreasing),
			"weibull_shape":     sv.ParametricWeibull.Shape,
		},
	}, nil
}
