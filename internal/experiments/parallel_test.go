package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestRunAllMatchesSerial is the end-to-end determinism contract: two
// environments generated at different worker counts, with the full suite
// fanned out at different worker counts, must produce metric-for-metric
// identical results. NaN compares equal to NaN here — "undefined" is a
// deterministic outcome too.
func TestRunAllMatchesSerial(t *testing.T) {
	cfg := sim.SmallConfig()
	serialEnv, err := NewEnvParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallelEnv, err := NewEnvParallel(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunAll(serialEnv, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(parallelEnv, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != len(All()) {
		t.Fatalf("result counts: serial %d, parallel %d, suite %d", len(serial), len(parallel), len(All()))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.ID != p.ID || s.ID != All()[i].ID {
			t.Fatalf("result %d out of order: serial %s, parallel %s, suite %s", i, s.ID, p.ID, All()[i].ID)
		}
		if len(s.Metrics) != len(p.Metrics) {
			t.Errorf("%s: metric counts differ: %d vs %d", s.ID, len(s.Metrics), len(p.Metrics))
			continue
		}
		for k, sv := range s.Metrics {
			pv, ok := p.Metrics[k]
			if !ok {
				t.Errorf("%s: metric %q missing from parallel run", s.ID, k)
				continue
			}
			if sv != pv && !(math.IsNaN(sv) && math.IsNaN(pv)) {
				t.Errorf("%s: metric %q = %v parallel, %v serial", s.ID, k, pv, sv)
			}
		}
		if len(s.Tables) != len(p.Tables) || len(s.Figures) != len(p.Figures) {
			t.Errorf("%s: artifact counts differ (tables %d vs %d, figures %d vs %d)",
				s.ID, len(p.Tables), len(s.Tables), len(p.Figures), len(s.Figures))
		}
	}
}

// TestClassificationMemoized checks the cache hands every caller the same
// computed classification rather than recomputing per experiment.
func TestClassificationMemoized(t *testing.T) {
	e := env(t)
	if e.ClassifyByExit() != e.ClassifyByExit() {
		t.Error("ClassifyByExit recomputed instead of memoized")
	}
	if e.ClassifyJoint() != e.ClassifyJoint() {
		t.Error("ClassifyJoint recomputed instead of memoized")
	}
}
