// Package experiments regenerates every table and figure of the paper's
// evaluation (the E1–E15 index in DESIGN.md) from a synthetic corpus. Each
// experiment returns renderable tables/figures plus a flat metric map that
// EXPERIMENTS.md and the regression tests compare against the paper's
// anchors.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/report"
	"repro/internal/sim"
)

// Env is the shared evaluation environment: one generated corpus and its
// indexed dataset, plus lazily memoized cross-experiment analyses (the
// classifications five experiments would otherwise recompute from scratch).
type Env struct {
	Cfg    sim.Config
	Corpus *sim.Corpus
	D      *core.Dataset
	// Parallelism bounds the workers used by the parallel substrates the
	// experiments call (distribution fitting, the filter-window sweep);
	// ≤ 0 means GOMAXPROCS. Results are identical at any setting.
	Parallelism int

	// Legacy disables the fused scan engine: every accessor recomputes its
	// analysis with the pre-fusion per-experiment walks. Results are
	// bit-identical either way (the equivalence tests enforce it); the
	// switch exists for the paired benchmark and for bisecting regressions.
	// Set it before the first experiment runs.
	Legacy bool

	cache *envCache
}

// envCache memoizes analyses shared across experiments. It lives behind a
// pointer so an Env value can be copied without copying locks; sync.Once
// makes each analysis safe to request from concurrently running
// experiments while computing it exactly once.
//
// Beyond the classifications it holds the derived-series cache: sorted
// job-duration Samples per outcome, the per-job core-hours series, and the
// default-rule MTTI / availability / survival results with their interval
// and repair-time Samples — the series E5/E6/E12/E22/E23 would otherwise
// re-extract and re-sort per experiment.
type envCache struct {
	exitOnce  sync.Once
	exit      *core.Classification
	jointOnce sync.Once
	joint     *core.Classification

	durOnce          sync.Once
	durSucc, durFail *dist.Sample
	coreHoursOnce    sync.Once
	coreHours        []float64
	mttiOnce         sync.Once
	mtti             *core.MTTIResult
	mttiErr          error
	availOnce        sync.Once
	avail            *core.AvailabilityResult
	availErr         error
	survOnce         sync.Once
	surv             *core.SurvivalResult
	survErr          error

	// Fused-scan profile plus the fused-mode memoizations layered on it
	// (see fused.go). profileOnce guards the single shared scan RunAll
	// triggers instead of ~20 private corpus walks.
	profileOnce sync.Once
	profile     *core.FusedProfile
	profileErr  error

	concUserOnce sync.Once
	concUser     *core.ConcentrationResult
	concUserErr  error
	concProjOnce sync.Once
	concProj     *core.ConcentrationResult
	concProjErr  error

	fatalIncOnce sync.Once
	fatalInc     []core.Incident
	fatalIncErr  error
	warnIncOnce  sync.Once
	warnInc      []core.Incident
	warnIncErr   error

	// Cohort profiles keyed by the predicate's canonical form (see
	// cohort.go). A map rather than sync.Once because the key space is
	// open-ended — any -where expression.
	cohortMu sync.Mutex
	cohorts  map[string]*core.FusedProfile
}

// NewEnv generates a corpus and indexes it. Generation uses all cores; use
// NewEnvParallel to bound the worker count.
func NewEnv(cfg sim.Config) (*Env, error) {
	return NewEnvParallel(cfg, 0)
}

// NewEnvParallel generates a corpus with at most workers goroutines (≤ 0
// means GOMAXPROCS) and indexes it. The corpus — and therefore every
// downstream experiment — is identical for any worker count; the bound also
// becomes the environment's Parallelism.
func NewEnvParallel(cfg sim.Config, workers int) (*Env, error) {
	c, err := sim.GenerateParallel(cfg, workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	d, err := core.NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Env{Cfg: cfg, Corpus: c, D: d, Parallelism: workers, cache: &envCache{}}, nil
}

// NewEnvFromDataset wraps an already-loaded dataset (e.g. a CSV corpus read
// back by mirareport) as an evaluation environment.
func NewEnvFromDataset(d *core.Dataset) *Env {
	return &Env{D: d, cache: &envCache{}}
}

// ClassifyByExit returns the exit-status-only classification, computed once
// per environment no matter how many experiments (or workers) request it.
func (e *Env) ClassifyByExit() *core.Classification {
	if e.cache == nil {
		// Env literals built without a constructor have no cache; fall back
		// to direct computation rather than racing to create one.
		return e.D.ClassifyByExit()
	}
	e.cache.exitOnce.Do(func() { e.cache.exit = e.D.ClassifyByExit() })
	return e.cache.exit
}

// ClassifyJoint returns the joint (RAS-correlated) classification under
// core.DefaultJointOptions, computed once per environment.
func (e *Env) ClassifyJoint() *core.Classification {
	if e.cache == nil {
		return e.D.ClassifyJoint(core.DefaultJointOptions())
	}
	e.cache.jointOnce.Do(func() { e.cache.joint = e.D.ClassifyJoint(core.DefaultJointOptions()) })
	return e.cache.joint
}

// DurationSamples returns the per-outcome execution-length Samples
// (seconds, sorted with sufficient statistics): succeeded and failed jobs.
// The extraction and sort happen once per environment no matter how many
// experiments request them.
func (e *Env) DurationSamples() (succeeded, failed *dist.Sample) {
	build := func() (*dist.Sample, *dist.Sample) {
		s, f := e.D.ExecutionLengthCDFs() // already sorted ascending
		return dist.NewSampleSorted(s), dist.NewSampleSorted(f)
	}
	if e.cache == nil {
		return build()
	}
	e.cache.durOnce.Do(func() { e.cache.durSucc, e.cache.durFail = build() })
	return e.cache.durSucc, e.cache.durFail
}

// JobCoreHours returns the per-job core-hours series, aligned with D.Jobs
// (use D.JobPos to index it by job id), computed once per environment.
func (e *Env) JobCoreHours() []float64 {
	build := func() []float64 {
		ch := make([]float64, len(e.D.Jobs))
		for i := range e.D.Jobs {
			ch[i] = e.D.Jobs[i].CoreHours()
		}
		return ch
	}
	if e.cache == nil {
		return build()
	}
	e.cache.coreHoursOnce.Do(func() { e.cache.coreHours = build() })
	return e.cache.coreHours
}

// MTTI returns the default-rule mean-time-to-interruption analysis,
// computed once per environment. Experiments needing a non-default filter
// rule should call D.MTTI directly.
func (e *Env) MTTI() (*core.MTTIResult, error) {
	if e.cache == nil {
		return e.D.MTTI(core.DefaultFilterRule())
	}
	e.cache.mttiOnce.Do(func() { e.cache.mtti, e.cache.mttiErr = e.D.MTTI(core.DefaultFilterRule()) })
	return e.cache.mtti, e.cache.mttiErr
}

// InterruptionIntervals returns the sorted interruption-interval Sample
// (hours) from the memoized default-rule MTTI analysis; nil when there are
// too few incidents to form intervals.
func (e *Env) InterruptionIntervals() (*dist.Sample, error) {
	res, err := e.MTTI()
	if err != nil {
		return nil, err
	}
	return res.IntervalSample, nil
}

// LostCoreHours sums the core-hours of the jobs interrupted in r using the
// memoized per-job core-hours series.
func (e *Env) LostCoreHours(r *core.MTTIResult) float64 {
	ch := e.JobCoreHours()
	total := 0.0
	for _, id := range r.InterruptedJobs() {
		if pos, ok := e.D.JobPos(id); ok {
			total += ch[pos]
		}
	}
	return total
}

// Availability returns the service-action availability analysis (with its
// repair-time Sample), computed once per environment.
func (e *Env) Availability() (*core.AvailabilityResult, error) {
	if e.cache == nil {
		return e.D.Availability()
	}
	e.cache.availOnce.Do(func() { e.cache.avail, e.cache.availErr = e.D.Availability() })
	return e.cache.avail, e.cache.availErr
}

// Survival returns the Kaplan–Meier time-to-user-failure analysis, computed
// once per environment.
func (e *Env) Survival() (*core.SurvivalResult, error) {
	if e.cache == nil {
		return e.D.Survival()
	}
	e.cache.survOnce.Do(func() { e.cache.surv, e.cache.survErr = e.D.Survival() })
	return e.cache.surv, e.cache.survErr
}

// Result is one experiment's regenerated artifact.
type Result struct {
	ID          string
	Description string
	Tables      []*report.Table
	Figures     []*report.Figure
	// Metrics is the flat key→value view used for paper-vs-measured
	// comparison and the regression tests.
	Metrics map[string]float64
}

// Experiment is a runnable table/figure regeneration.
type Experiment struct {
	ID          string
	Description string
	Run         func(*Env) (*Result, error)
}

// experimentList is the canonical experiment registry; All returns copies
// of it and byID indexes it at init.
var experimentList = []Experiment{
	{"E1", "dataset summary (Table I)", E1},
	{"E2", "workload concentration by user/project", E2},
	{"E3", "job structure distributions", E3},
	{"E4", "exit-status breakdown; user vs system share", E4},
	{"E5", "execution-length CDFs by outcome", E5},
	{"E6", "best-fit distributions per exit family", E6},
	{"E7", "failure correlation with users/projects", E7},
	{"E8", "failure rate vs job structure", E8},
	{"E9", "RAS severity/category/component profile", E9},
	{"E10", "spatial locality of FATAL events", E10},
	{"E11", "similarity-filtering sensitivity sweep", E11},
	{"E12", "MTTI and interruption-interval fit", E12},
	{"E13", "I/O behavior vs job outcome", E13},
	{"E14", "temporal patterns of jobs and failures", E14},
	{"E15", "system interruptions vs user consumption", E15},
	{"E16", "WARN→FATAL precursor lead-time analysis", E16},
	{"E17", "queue wait and walltime-request accuracy", E17},
	{"E18", "reliability over the system's life (bathtub)", E18},
	{"E19", "compute cost of failures (wasted core-hours)", E19},
	{"E20", "resubmission behaviour and outcome repetition", E20},
	{"E21", "torus spatial correlation of incidents", E21},
	{"E22", "availability and repair-time distribution", E22},
	{"E23", "Kaplan–Meier survival of jobs vs user failure", E23},
}

// byID indexes the registry once; ByID was previously a linear scan over a
// freshly allocated slice on every call.
var byID = func() map[string]Experiment {
	m := make(map[string]Experiment, len(experimentList))
	for _, e := range experimentList {
		m[e.ID] = e
	}
	return m
}()

// All lists every experiment in index order. The returned slice is a copy;
// callers may reorder it freely.
func All() []Experiment {
	return append([]Experiment(nil), experimentList...)
}

// ByID returns the experiment with the given ID. The lookup is
// case-insensitive, so the -exp flag accepts e6 as well as E6.
func ByID(id string) (Experiment, bool) {
	e, ok := byID[strings.ToUpper(id)]
	return e, ok
}

// sortedMetricKeys returns the metric names in stable order for rendering.
func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MetricsTable renders a result's metrics as a two-column table.
func MetricsTable(r *Result) *report.Table {
	t := &report.Table{Title: r.ID + " metrics", Columns: []string{"metric", "value"}}
	for _, k := range sortedMetricKeys(r.Metrics) {
		t.AddRow(k, r.Metrics[k])
	}
	return t
}
