package experiments

import (
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/joblog"
)

// TestDerivedSeriesMemoized checks every derived-series accessor hands back
// the same computed object instead of re-deriving per caller.
func TestDerivedSeriesMemoized(t *testing.T) {
	e := env(t)
	s1, f1 := e.DurationSamples()
	s2, f2 := e.DurationSamples()
	if s1 != s2 || f1 != f2 {
		t.Error("DurationSamples recomputed instead of memoized")
	}
	ch1, ch2 := e.JobCoreHours(), e.JobCoreHours()
	if len(ch1) == 0 || &ch1[0] != &ch2[0] {
		t.Error("JobCoreHours recomputed instead of memoized")
	}
	m1, err1 := e.MTTI()
	m2, err2 := e.MTTI()
	if err1 != nil || err2 != nil {
		t.Fatalf("MTTI: %v, %v", err1, err2)
	}
	if m1 != m2 {
		t.Error("MTTI recomputed instead of memoized")
	}
	iv1, _ := e.InterruptionIntervals()
	iv2, _ := e.InterruptionIntervals()
	if iv1 != iv2 {
		t.Error("InterruptionIntervals not served from the memoized MTTI result")
	}
	if iv1 != m1.IntervalSample {
		t.Error("InterruptionIntervals does not alias the MTTI interval sample")
	}
	a1, err1 := e.Availability()
	a2, err2 := e.Availability()
	if err1 != nil || err2 != nil {
		t.Fatalf("Availability: %v, %v", err1, err2)
	}
	if a1 != a2 {
		t.Error("Availability recomputed instead of memoized")
	}
	sv1, err1 := e.Survival()
	sv2, err2 := e.Survival()
	if err1 != nil || err2 != nil {
		t.Fatalf("Survival: %v, %v", err1, err2)
	}
	if sv1 != sv2 {
		t.Error("Survival recomputed instead of memoized")
	}
}

// TestDerivedSeriesCacheConcurrent hammers every cached accessor from many
// goroutines at once; the sync.Once guards must hand all of them the same
// object with no data race (run with -race).
func TestDerivedSeriesCacheConcurrent(t *testing.T) {
	e := env(t)
	const goroutines = 16
	type view struct {
		succ, fail *dist.Sample
		coreHours  []float64
		mtti       interface{}
		avail      interface{}
		surv       interface{}
		exit       interface{}
		joint      interface{}
	}
	views := make([]view, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := &views[g]
			v.succ, v.fail = e.DurationSamples()
			v.coreHours = e.JobCoreHours()
			v.mtti, _ = e.MTTI()
			v.avail, _ = e.Availability()
			v.surv, _ = e.Survival()
			v.exit = e.ClassifyByExit()
			v.joint = e.ClassifyJoint()
			if res, _ := e.MTTI(); res != nil {
				_ = e.LostCoreHours(res)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if views[g].succ != views[0].succ || views[g].fail != views[0].fail {
			t.Fatalf("goroutine %d saw a different DurationSamples result", g)
		}
		if &views[g].coreHours[0] != &views[0].coreHours[0] {
			t.Fatalf("goroutine %d saw a different JobCoreHours slice", g)
		}
		if views[g].mtti != views[0].mtti || views[g].avail != views[0].avail ||
			views[g].surv != views[0].surv || views[g].exit != views[0].exit ||
			views[g].joint != views[0].joint {
			t.Fatalf("goroutine %d saw a different memoized analysis", g)
		}
	}
}

// TestEnvCacheNilFallback checks an Env built without a constructor (no
// cache) still serves every derived series by direct computation.
func TestEnvCacheNilFallback(t *testing.T) {
	cached := env(t)
	bare := &Env{D: cached.D}
	s, f := bare.DurationSamples()
	cs, cf := cached.DurationSamples()
	if s.N() != cs.N() || f.N() != cf.N() {
		t.Errorf("fallback DurationSamples sizes (%d,%d) != cached (%d,%d)", s.N(), f.N(), cs.N(), cf.N())
	}
	if len(bare.JobCoreHours()) != len(cached.JobCoreHours()) {
		t.Error("fallback JobCoreHours length mismatch")
	}
	m, err := bare.MTTI()
	if err != nil {
		t.Fatal(err)
	}
	cm, _ := cached.MTTI()
	if m.Interruptions != cm.Interruptions {
		t.Errorf("fallback MTTI interruptions %d != cached %d", m.Interruptions, cm.Interruptions)
	}
	if got, want := bare.LostCoreHours(m), bare.D.LostCoreHours(m); got != want {
		t.Errorf("LostCoreHours via cache = %v, direct = %v", got, want)
	}
	if _, err := bare.Availability(); err != nil {
		t.Errorf("fallback Availability: %v", err)
	}
	if _, err := bare.Survival(); err != nil {
		t.Errorf("fallback Survival: %v", err)
	}
}

// TestLegacySampleEquivalenceOnExperimentSeries pins the compatibility
// contract on the real E6/E12/E22 inputs: the legacy slice entry points and
// the Sample-based cores must agree bit-for-bit on family ranking,
// parameters, and every goodness-of-fit statistic.
func TestLegacySampleEquivalenceOnExperimentSeries(t *testing.T) {
	e := env(t)
	series := map[string][]float64{}

	// E6 input: failed-job runtimes of the largest exit family.
	for _, fam := range joblog.FailureFamilies() {
		if s := samplesOf(e, fam, 5000); len(s) >= 100 {
			series["e6_"+string(fam)] = s
			break
		}
	}
	// E12 input: interruption intervals.
	if m, err := e.MTTI(); err == nil && len(m.Intervals) >= 10 {
		series["e12_intervals"] = m.Intervals
	}
	// E22 input: repair durations.
	if a, err := e.Availability(); err == nil && len(a.RepairHours) >= 30 {
		series["e22_repairs"] = a.RepairHours
	}
	if len(series) < 3 {
		t.Fatalf("expected all three experiment series, got %d", len(series))
	}

	for name, data := range series {
		legacy := dist.FitAll(data, nil)
		viaSample := dist.FitAllSample(dist.NewSample(data), nil)
		if len(legacy) != len(viaSample) {
			t.Fatalf("%s: result counts %d vs %d", name, len(legacy), len(viaSample))
		}
		for i := range legacy {
			a, b := legacy[i], viaSample[i]
			if a.Family != b.Family || a.KS != b.KS || a.AD != b.AD ||
				a.PValue != b.PValue || a.LogL != b.LogL || a.AIC != b.AIC || a.BIC != b.BIC {
				t.Errorf("%s rank %d: legacy %+v != sample %+v", name, i, a, b)
			}
		}
		bestLegacy, err1 := dist.SelectBest(data, nil)
		bestSample, err2 := dist.SelectBestSample(dist.NewSample(data), nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: SelectBest err mismatch: %v vs %v", name, err1, err2)
		}
		if err1 == nil && (bestLegacy.Family != bestSample.Family || bestLegacy.KS != bestSample.KS) {
			t.Errorf("%s: SelectBest %s/%v != SelectBestSample %s/%v",
				name, bestLegacy.Family, bestLegacy.KS, bestSample.Family, bestSample.KS)
		}
		if p, ok := bestLegacy.Dist.(dist.Parametric); ok && err1 == nil {
			_, ks1, e1 := dist.KSPolish(p, data, 10)
			_, ks2, e2 := dist.KSPolishSample(p, dist.NewSample(data), 10)
			if e1 != nil || e2 != nil {
				t.Fatalf("%s: polish errs %v, %v", name, e1, e2)
			}
			if ks1 != ks2 {
				t.Errorf("%s: KSPolish %v != KSPolishSample %v", name, ks1, ks2)
			}
		}
	}
}
