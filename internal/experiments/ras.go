package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/report"
	"repro/internal/stats"
)

// E7 regenerates the failure↔user/project correlation analysis: top
// failing users, identity↔outcome association, jobs↔failures correlation.
func E7(env *Env) (*Result, error) {
	res := &Result{ID: "E7", Description: "failure correlation with users/projects", Metrics: map[string]float64{}}
	for _, by := range []core.GroupBy{core.ByUser, core.ByProject} {
		conc, err := env.Concentration(by)
		if err != nil {
			return nil, err
		}
		res.Metrics["cramers_v_"+by.String()] = conc.CramersV
		res.Metrics["pearson_jobs_failures_"+by.String()] = conc.PearsonJobsFailures
		res.Metrics["top10_fail_share_"+by.String()] = conc.Top10FailShare

		groups, err := env.Groups(by)
		if err != nil {
			return nil, err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("E7: top-10 failing %ss", by),
			Columns: []string{by.String(), "jobs", "failed", "fail rate", "system fails"},
		}
		for _, g := range core.TopFailing(groups, 10) {
			t.AddRow(g.Key, g.Jobs, g.Failed, g.FailRate, g.SystemFails)
		}
		t.Notes = []string{fmt.Sprintf("Cramér's V(%s,outcome) = %.3f; Pearson(jobs,failures) = %.3f",
			by, conc.CramersV, conc.PearsonJobsFailures)}
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// E8 regenerates the failure-rate-vs-structure analysis over scale, task
// count and core-hours.
func E8(env *Env) (*Result, error) {
	res := &Result{ID: "E8", Description: "failure rate vs job structure", Metrics: map[string]float64{}}
	for _, dim := range []core.StructureDim{core.DimNodes, core.DimTasks, core.DimCoreHours} {
		sr, err := env.D.FailureByStructure(dim)
		if err != nil {
			return nil, err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("E8: failure rate by %s", dim),
			Columns: []string{"bucket lo", "bucket hi", "jobs", "failed", "fail rate"},
			Notes:   []string{fmt.Sprintf("Spearman trend = %.3f", sr.SpearmanTrend)},
		}
		var xs, ys []float64
		for _, b := range sr.Buckets {
			if b.Jobs == 0 {
				continue
			}
			t.AddRow(b.Lo, b.Hi, b.Jobs, b.Failed, b.FailRate)
			xs = append(xs, b.Lo)
			ys = append(ys, b.FailRate)
		}
		res.Tables = append(res.Tables, t)
		res.Figures = append(res.Figures, &report.Figure{
			Title:  fmt.Sprintf("E8 (Fig): failure rate vs %s", dim),
			XLabel: dim.String(), YLabel: "failure rate",
			Series: []report.Series{{Name: dim.String(), X: xs, Y: ys}},
		})
		res.Metrics["trend_"+dim.String()] = sr.SpearmanTrend
	}
	return res, nil
}

// E9 regenerates the RAS composition tables: events by severity, category
// and component.
func E9(env *Env) (*Result, error) {
	p, err := env.RASProfile()
	if err != nil {
		return nil, err
	}
	sev := &report.Table{Title: "E9: RAS events by severity", Columns: []string{"severity", "events", "share"}}
	for _, s := range []raslog.Severity{raslog.Fatal, raslog.Warn, raslog.Info} {
		sev.AddRow(s.String(), p.BySeverity[s], float64(p.BySeverity[s])/float64(p.Total))
	}
	cat := &report.Table{Title: "E9: FATAL events by category", Columns: []string{"category", "events"}}
	type kv struct {
		k string
		v int
	}
	var cats []kv
	for c, n := range p.FatalByCategory {
		cats = append(cats, kv{string(c), n})
	}
	sort.Slice(cats, func(i, j int) bool {
		if cats[i].v != cats[j].v {
			return cats[i].v > cats[j].v
		}
		return cats[i].k < cats[j].k
	})
	for _, c := range cats {
		cat.AddRow(c.k, c.v)
	}
	comp := &report.Table{Title: "E9: events by component", Columns: []string{"component", "events"}}
	var comps []kv
	for c, n := range p.ByComponent {
		comps = append(comps, kv{string(c), n})
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].v != comps[j].v {
			return comps[i].v > comps[j].v
		}
		return comps[i].k < comps[j].k
	})
	for _, c := range comps {
		comp.AddRow(c.k, c.v)
	}
	return &Result{
		ID: "E9", Description: "RAS composition",
		Tables: []*report.Table{sev, cat, comp},
		Metrics: map[string]float64{
			"fatal_share": float64(p.BySeverity[raslog.Fatal]) / float64(p.Total),
			"total":       float64(p.Total),
		},
	}, nil
}

// E10 regenerates the spatial-locality analysis of FATAL events.
func E10(env *Env) (*Result, error) {
	res := &Result{ID: "E10", Description: "spatial locality", Metrics: map[string]float64{}}
	for _, level := range []machine.Level{machine.LevelMidplane, machine.LevelRack} {
		loc, err := env.Locality(level)
		if err != nil {
			return nil, err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("E10: worst %ss by FATAL events", level),
			Columns: []string{level.String(), "events"},
			Notes: []string{fmt.Sprintf("gini %.3f, top-5 share %.3f (uniform %.3f), localized=%v",
				loc.Gini, loc.Top5Share, loc.UniformTopShare, loc.Localized)},
		}
		for i, c := range loc.Counts {
			if i >= 10 {
				break
			}
			t.AddRow(c.Loc.String(), c.Count)
		}
		res.Tables = append(res.Tables, t)
		res.Metrics["gini_"+level.String()] = loc.Gini
		res.Metrics["top5_share_"+level.String()] = loc.Top5Share
		res.Metrics["uniform_share_"+level.String()] = loc.UniformTopShare
	}
	return res, nil
}

// filterWindows is the sweep grid for E11.
func filterWindows() []time.Duration {
	return []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
		10 * time.Minute, 20 * time.Minute, 40 * time.Minute, time.Hour,
		2 * time.Hour, 6 * time.Hour,
	}
}

// E11 regenerates the filtering-sensitivity figure: filtered incident
// count vs window, for three similarity rules (the ablation the design
// calls out: temporal-only vs +spatial vs +message).
func E11(env *Env) (*Result, error) {
	rules := []struct {
		name string
		rule core.FilterRule
	}{
		{"temporal", core.FilterRule{Window: time.Minute, Spatial: machine.LevelSystem, SameMessage: false}},
		{"temporal+spatial", core.FilterRule{Window: time.Minute, Spatial: machine.LevelMidplane, SameMessage: false}},
		{"temporal+spatial+msg", core.FilterRule{Window: time.Minute, Spatial: machine.LevelMidplane, SameMessage: true}},
	}
	fig := &report.Figure{
		Title:  "E11 (Fig): filtered FATAL incidents vs window",
		XLabel: "window (minutes)", YLabel: "incidents",
	}
	t := &report.Table{
		Title:   "E11: filtering sweep",
		Columns: []string{"rule", "window", "incidents", "reduction"},
	}
	metrics := map[string]float64{}
	for _, r := range rules {
		sweep, err := core.FilterSweepParallel(env.D.Events, r.rule, filterWindows(), env.Parallelism)
		if err != nil {
			return nil, err
		}
		var xs, ys []float64
		for _, p := range sweep {
			xs = append(xs, p.Window.Minutes())
			ys = append(ys, float64(p.Incidents))
			t.AddRow(r.name, p.Window.String(), p.Incidents, p.Reduction)
		}
		fig.Series = append(fig.Series, report.Series{Name: r.name, X: xs, Y: ys})
		if knee, ok := core.KneeWindow(sweep, 0.05); ok {
			metrics["knee_minutes_"+r.name] = knee.Minutes()
		}
		metrics["incidents_20m_"+r.name] = incidentsAt(sweep, 20*time.Minute)
	}
	return &Result{
		ID: "E11", Description: "filtering sweep",
		Tables: []*report.Table{t}, Figures: []*report.Figure{fig},
		Metrics: metrics,
	}, nil
}

// E12 regenerates the MTTI analysis: filtered job-interrupting incidents,
// MTTI in days, and the best-fit law of interruption intervals. The
// default-rule analysis and the per-job core-hours series come from the
// shared environment cache, and the interval CDF figure reuses the sorted
// interval Sample the best-fit selection already built.
func E12(env *Env) (*Result, error) {
	res, err := env.MTTI()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E12 (Table): mean time to interruption",
		Columns: []string{"quantity", "value"},
		Notes:   []string{"paper anchor: MTTI ≈ 3.5 days"},
	}
	t.AddRow("span (days)", res.SpanDays)
	t.AddRow("raw FATAL events", res.RawFatal)
	t.AddRow("filtered interruptions", res.Interruptions)
	t.AddRow("MTTI (days)", res.MTTIDays)
	t.AddRow("raw MTBF (days)", res.MTBFRawDays)
	t.AddRow("interrupted jobs", len(res.InterruptedJobs()))
	t.AddRow("lost core-hours (M)", env.LostCoreHours(res)/1e6)
	metrics := map[string]float64{
		"mtti_days":     res.MTTIDays,
		"interruptions": float64(res.Interruptions),
		"raw_fatal":     float64(res.RawFatal),
		"mtbf_raw_days": res.MTBFRawDays,
	}
	if res.BestFit.Dist != nil {
		t.AddRow("interval best fit", res.BestFit.Family)
		t.AddRow("interval fit KS", res.BestFit.KS)
		metrics["interval_fit_ks"] = res.BestFit.KS
	}
	out := &Result{ID: "E12", Description: "MTTI", Tables: []*report.Table{t}, Metrics: metrics}
	if res.IntervalSample != nil && res.IntervalSample.N() > 1 {
		// Interval CDF figure, downsampled to 21 quantiles for rendering; the
		// ECDF adopts the Sample's already-sorted view without another sort.
		ecdf, err := stats.NewECDFSorted(res.IntervalSample.Sorted())
		if err != nil {
			return nil, err
		}
		xs, ys := ecdf.Series(21)
		out.Figures = append(out.Figures, &report.Figure{
			Title:  "E12 (Fig): CDF of interruption intervals",
			XLabel: "hours", YLabel: "P(X<=x)",
			Series: []report.Series{{Name: "intervals", X: xs, Y: ys}},
		})
	}
	return out, nil
}

// E13 regenerates the I/O-vs-outcome comparison.
func E13(env *Env) (*Result, error) {
	io, err := env.D.IOBehavior()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E13: I/O behavior by outcome",
		Columns: []string{"outcome", "jobs", "median bytes", "p95 bytes", "median io-s"},
	}
	t.AddRow("succeeded", io.SuccessBytes.N, io.SuccessBytes.Median, io.SuccessBytes.P95, io.SuccessIOSecs.Median)
	t.AddRow("failed", io.FailedBytes.N, io.FailedBytes.Median, io.FailedBytes.P95, io.FailedIOSecs.Median)
	t.Notes = []string{fmt.Sprintf("median ratio %.2f, KS %.3f, Spearman(bytes,success) %.3f",
		io.MedianRatio, io.KSBytes, io.SpearmanBytesOutcome)}
	return &Result{
		ID: "E13", Description: "I/O vs outcome", Tables: []*report.Table{t},
		Metrics: map[string]float64{
			"median_ratio":     io.MedianRatio,
			"ks_bytes":         io.KSBytes,
			"spearman_success": io.SpearmanBytesOutcome,
		},
	}, nil
}

// E14 regenerates the temporal-pattern figures: jobs and failures by hour
// of day and the monthly trend.
func E14(env *Env) (*Result, error) {
	p, err := env.Temporal()
	if err != nil {
		return nil, err
	}
	var hx, hj, hf, hr []float64
	rates := p.FailRateByHour()
	for h := 0; h < 24; h++ {
		hx = append(hx, float64(h))
		hj = append(hj, float64(p.JobsByHour[h]))
		hf = append(hf, float64(p.FailsByHour[h]))
		hr = append(hr, rates[h])
	}
	hourFig := &report.Figure{
		Title:  "E14 (Fig): jobs and failures by hour of day",
		XLabel: "hour", YLabel: "count",
		Series: []report.Series{
			{Name: "jobs", X: hx, Y: hj},
			{Name: "failures", X: hx, Y: hf},
		},
	}
	var mx, mj, mfatal []float64
	for i := range p.Months {
		mx = append(mx, float64(i))
		mj = append(mj, float64(p.JobsByMonth[i]))
		mfatal = append(mfatal, float64(p.FatalByMonth[i]))
	}
	monthFig := &report.Figure{
		Title:  "E14 (Fig): monthly jobs and FATAL events",
		XLabel: "month index", YLabel: "count",
		Series: []report.Series{
			{Name: "jobs", X: mx, Y: mj},
			{Name: "fatal events", X: mx, Y: mfatal},
		},
	}
	peakJobs, troughJobs := 0, 0
	for h := 1; h < 24; h++ {
		if p.JobsByHour[h] > p.JobsByHour[peakJobs] {
			peakJobs = h
		}
		if p.JobsByHour[h] < p.JobsByHour[troughJobs] {
			troughJobs = h
		}
	}
	rateSpread := 0.0
	minRate, maxRate := 1.0, 0.0
	for _, r := range rates {
		if r < minRate {
			minRate = r
		}
		if r > maxRate {
			maxRate = r
		}
	}
	rateSpread = maxRate - minRate
	metrics := map[string]float64{
		"peak_hour":        float64(peakJobs),
		"trough_hour":      float64(troughJobs),
		"diurnal_ratio":    safeDiv(float64(p.JobsByHour[peakJobs]), float64(p.JobsByHour[troughJobs])),
		"fail_rate_spread": rateSpread,
		"months":           float64(len(p.Months)),
	}
	// Weekly rhythm: daily submissions autocorrelate at lag 7.
	if len(p.JobsByDay) > 21 {
		daily := make([]float64, len(p.JobsByDay))
		for i, v := range p.JobsByDay {
			daily[i] = float64(v)
		}
		if ac, err := stats.Autocorrelation(daily, 7); err == nil {
			metrics["weekly_acf"] = ac
		}
		if ac1, err := stats.Autocorrelation(daily, 1); err == nil {
			metrics["daily_acf"] = ac1
		}
	}
	return &Result{
		ID: "E14", Description: "temporal patterns",
		Figures: []*report.Figure{hourFig, monthFig},
		Metrics: metrics,
	}, nil
}

// E15 regenerates the interruption↔consumption correlation: per-user
// core-hours vs system interrupts.
func E15(env *Env) (*Result, error) {
	res, err := env.Interrupts()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E15: system interruptions vs user consumption",
		Columns: []string{"measure", "value"},
	}
	t.AddRow("users", res.Users)
	t.AddRow("users with ≥1 interrupt", res.Interrupted)
	t.AddRow("pearson(core-hours, interrupts)", res.PearsonCHInterrupts)
	t.AddRow("pearson(jobs, interrupts)", res.PearsonJobsInterrupts)
	t.AddRow("top-decile interrupt share", res.TopDecileShare)
	return &Result{
		ID: "E15", Description: "interrupts vs consumption", Tables: []*report.Table{t},
		Metrics: map[string]float64{
			"pearson_ch_interrupts":   res.PearsonCHInterrupts,
			"pearson_jobs_interrupts": res.PearsonJobsInterrupts,
			"top_decile_share":        res.TopDecileShare,
		},
	}, nil
}
