package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/joblog"
	"repro/internal/report"
)

// RenderCohort writes the human-readable cohort report for a fused
// profile: the Table-I summary restricted to the cohort, its exit-family
// breakdown, and the heaviest users inside it. It is the single
// rendering path shared by `mirareport -where` and the mirad /v1/cohort
// endpoint, so the two surfaces are bit-identical by construction for
// the same predicate string.
func RenderCohort(w io.Writer, p *core.FusedProfile, where string) error {
	s := p.Summary
	st := &report.Table{Title: "cohort summary: " + where, Columns: []string{"metric", "value"}}
	st.AddRow("days", fmt.Sprintf("%.1f", s.Days))
	st.AddRow("jobs", s.Jobs)
	st.AddRow("tasks", s.Tasks)
	st.AddRow("users", s.Users)
	st.AddRow("projects", s.Projects)
	st.AddRow("core-hours", fmt.Sprintf("%.0f", s.CoreHours))
	st.AddRow("failed jobs", s.FailedJobs)
	st.AddRow("success jobs", s.SuccessJobs)
	st.AddRow("RAS events", s.RASTotal)
	st.AddRow("RAS fatal", s.RASFatal)
	st.AddRow("RAS warn", s.RASWarn)
	st.AddRow("I/O records", s.IORecords)
	if err := st.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	ft := &report.Table{Title: "cohort exit families", Columns: []string{"family", "failed jobs"}}
	for c := 1; c < joblog.NumFamilies; c++ {
		if n := p.Exit.ByFamily[c]; n > 0 {
			ft.AddRow(string(joblog.FamilyOfCode(uint8(c))), n)
		}
	}
	if err := ft.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	ut := &report.Table{Title: "cohort top users", Columns: []string{"user", "jobs", "failed", "core-hours"}}
	for i, g := range p.UserGroups {
		if i >= 10 {
			break
		}
		ut.AddRow(g.Key, g.Jobs, g.Failed, fmt.Sprintf("%.0f", g.CoreHours))
	}
	return ut.Render(w)
}
