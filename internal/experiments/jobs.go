package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/joblog"
	"repro/internal/report"
	"repro/internal/stats"
)

// E1 regenerates the dataset-summary table (Table I): span, job/task/event
// counts, core-hours, RAS composition.
func E1(env *Env) (*Result, error) {
	s, err := env.Summary()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E1 (Table I): dataset summary",
		Columns: []string{"quantity", "value"},
		Notes:   []string{"paper anchors: 2001 days, 32.44B core-hours"},
	}
	t.AddRow("observation days", s.Days)
	t.AddRow("jobs", s.Jobs)
	t.AddRow("tasks (runs)", s.Tasks)
	t.AddRow("users", s.Users)
	t.AddRow("projects", s.Projects)
	t.AddRow("core-hours (billions)", s.CoreHours/1e9)
	t.AddRow("RAS events", s.RASTotal)
	t.AddRow("RAS FATAL", s.RASFatal)
	t.AddRow("RAS WARN", s.RASWarn)
	t.AddRow("RAS INFO", s.RASInfo)
	t.AddRow("I/O records", s.IORecords)
	t.AddRow("failed jobs", s.FailedJobs)
	return &Result{
		ID: "E1", Description: "dataset summary", Tables: []*report.Table{t},
		Metrics: map[string]float64{
			"days":         s.Days,
			"jobs":         float64(s.Jobs),
			"core_hours_b": s.CoreHours / 1e9,
			"ras_events":   float64(s.RASTotal),
			"ras_fatal":    float64(s.RASFatal),
			"failed_jobs":  float64(s.FailedJobs),
			"users":        float64(s.Users),
			"projects":     float64(s.Projects),
		},
	}, nil
}

// E2 regenerates the workload-concentration analysis: Lorenz/Gini of jobs
// and core-hours over users and projects.
func E2(env *Env) (*Result, error) {
	res := &Result{ID: "E2", Description: "workload concentration", Metrics: map[string]float64{}}
	for _, by := range []core.GroupBy{core.ByUser, core.ByProject} {
		conc, err := env.Concentration(by)
		if err != nil {
			return nil, err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("E2: concentration by %s", by),
			Columns: []string{"measure", "value"},
		}
		t.AddRow("groups", conc.Groups)
		t.AddRow("gini(jobs)", conc.GiniJobs)
		t.AddRow("gini(core-hours)", conc.GiniCoreHours)
		t.AddRow("top-10 job share", conc.Top10JobShare)
		t.AddRow("top-10 core-hour share", conc.Top10CHShare)
		res.Tables = append(res.Tables, t)
		res.Metrics[fmt.Sprintf("gini_jobs_%s", by)] = conc.GiniJobs
		res.Metrics[fmt.Sprintf("top10_job_share_%s", by)] = conc.Top10JobShare
		res.Metrics[fmt.Sprintf("top10_ch_share_%s", by)] = conc.Top10CHShare

		// Lorenz curve figure over jobs.
		groups, err := env.Groups(by)
		if err != nil {
			return nil, err
		}
		jobs := make([]float64, len(groups))
		for i, g := range groups {
			jobs[i] = float64(g.Jobs)
		}
		ps, shares, err := stats.Lorenz(jobs, 20)
		if err != nil {
			return nil, err
		}
		res.Figures = append(res.Figures, &report.Figure{
			Title:  fmt.Sprintf("E2 (Fig): Lorenz curve of jobs per %s", by),
			XLabel: "population share", YLabel: "job share",
			Series: []report.Series{{Name: by.String(), X: ps, Y: shares}},
		})
	}
	return res, nil
}

// E3 regenerates the job-structure distribution figure: jobs per block
// size, tasks per job, runtime distribution.
func E3(env *Env) (*Result, error) {
	s, err := env.D.StructureSummary()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E3: job structure",
		Columns: []string{"attribute", "mean", "median", "p95", "max"},
	}
	t.AddRow("nodes", s.Nodes.Mean, s.Nodes.Median, s.Nodes.P95, s.Nodes.Max)
	t.AddRow("tasks/job", s.Tasks.Mean, s.Tasks.Median, s.Tasks.P95, s.Tasks.Max)
	t.AddRow("runtime (h)", s.RuntimeH.Mean, s.RuntimeH.Median, s.RuntimeH.P95, s.RuntimeH.Max)
	t.AddRow("core-hours", s.CoreHours.Mean, s.CoreHours.Median, s.CoreHours.P95, s.CoreHours.Max)

	sizes := make([]int, 0, len(s.SizeHistogram))
	for k := range s.SizeHistogram {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	var xs, ys []float64
	for _, size := range sizes {
		xs = append(xs, float64(size))
		ys = append(ys, float64(s.SizeHistogram[size]))
	}
	fig := &report.Figure{
		Title:  "E3 (Fig): jobs per block size",
		XLabel: "nodes", YLabel: "jobs",
		Series: []report.Series{{Name: "jobs", X: xs, Y: ys}},
	}
	return &Result{
		ID: "E3", Description: "job structure", Tables: []*report.Table{t},
		Figures: []*report.Figure{fig},
		Metrics: map[string]float64{
			"mean_nodes":     s.Nodes.Mean,
			"mean_tasks":     s.Tasks.Mean,
			"mean_runtime_h": s.RuntimeH.Mean,
			"small_job_share": func() float64 {
				return float64(s.SizeHistogram[512]) / float64(s.Nodes.N)
			}(),
		},
	}, nil
}

// E4 regenerates the headline failure table: failures per exit family and
// the user-vs-system split (paper: 99,245 failures, 99.4% user-caused).
func E4(env *Env) (*Result, error) {
	cls, err := env.ExitTally()
	if err != nil {
		return nil, err
	}
	joint, err := env.JointTally()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E4: job failures by exit family",
		Columns: []string{"family", "jobs", "share of failures"},
		Notes:   []string{"paper anchors: 99,245 failures, 99.4% user-caused"},
	}
	for _, f := range joblog.FailureFamilies() {
		n := cls.FamilyCount(f)
		if n == 0 {
			continue
		}
		t.AddRow(string(f), n, float64(n)/float64(cls.Failed))
	}
	t2 := &report.Table{
		Title:   "E4: failure attribution",
		Columns: []string{"method", "failures", "user-caused", "system-caused", "user share"},
	}
	t2.AddRow("exit-status only", cls.Failed, cls.UserCaused, cls.SystemCause, cls.UserShare())
	t2.AddRow("joint (RAS-correlated)", joint.Failed, joint.UserCaused, joint.SystemCause, joint.UserShare())
	return &Result{
		ID: "E4", Description: "failure breakdown", Tables: []*report.Table{t, t2},
		Metrics: map[string]float64{
			"failures":        float64(cls.Failed),
			"user_share":      cls.UserShare(),
			"system_failures": float64(cls.SystemCause),
			"joint_system":    float64(joint.SystemCause),
			"failure_rate":    float64(cls.Failed) / float64(cls.Total),
		},
	}, nil
}

// E5 regenerates the execution-length CDF comparison of succeeded vs
// failed jobs, reading the per-outcome duration Samples from the shared
// environment cache: the series are extracted and sorted once, and the
// ECDFs and two-sample KS reuse the sorted views without copying.
func E5(env *Env) (*Result, error) {
	succS, failS := env.DurationSamples()
	succ, fail := succS.Sorted(), failS.Sorted()
	se, err := stats.NewECDFSorted(succ)
	if err != nil {
		return nil, err
	}
	fe, err := stats.NewECDFSorted(fail)
	if err != nil {
		return nil, err
	}
	sx, sp := se.Series(21)
	fx, fp := fe.Series(21)
	fig := &report.Figure{
		Title:  "E5 (Fig): execution-length CDF by outcome",
		XLabel: "seconds", YLabel: "P(X<=x)",
		Series: []report.Series{
			{Name: "succeeded", X: sx, Y: sp},
			{Name: "failed", X: fx, Y: fp},
		},
	}
	ks, err := stats.KSTwoSampleSorted(succ, fail)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "E5", Description: "execution-length CDFs",
		Figures: []*report.Figure{fig},
		Metrics: map[string]float64{
			"median_success_s": se.Quantile(0.5),
			"median_failed_s":  fe.Quantile(0.5),
			"ks_two_sample":    ks,
		},
	}, nil
}

// E6 regenerates the best-fit distribution table per exit family — the
// paper's Weibull / Pareto / inverse-Gaussian / Erlang-exponential result.
func E6(env *Env) (*Result, error) {
	fits, err := env.D.FitExecutionLengths(core.FitOptions{MinSamples: 100, MaxSamples: 50000, Parallelism: env.Parallelism})
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "E6 (Table): best-fit execution-length distribution per exit family",
		Columns: []string{"family", "n", "best fit", "params", "KS", "runner-up", "runner KS"},
		Notes:   []string{"paper: best fit includes Weibull, Pareto, inverse Gaussian, Erlang/exponential depending on exit code"},
	}
	metrics := map[string]float64{}
	for _, f := range fits {
		best := f.Best()
		runner := "-"
		runnerKS := 0.0
		if len(f.Results) > 1 && f.Results[1].Err == nil {
			runner = f.Results[1].Family
			runnerKS = f.Results[1].KS
		}
		t.AddRow(string(f.Family), f.N, best.Family, dist.ParamString(best.Dist), best.KS, runner, runnerKS)
		metrics["ks_"+string(f.Family)] = best.KS
		metrics["n_"+string(f.Family)] = float64(f.N)
		metrics["median_s_"+string(f.Family)] = f.Summary.Median
	}
	// Baseline ablation: exponential-only fitting (no model selection).
	tBase := &report.Table{
		Title:   "E6 (ablation): exponential-only baseline vs model selection",
		Columns: []string{"family", "exp KS", "selected KS", "improvement"},
	}
	for _, f := range fits {
		var expKS float64
		for _, r := range f.Results {
			if r.Family == "exponential" && r.Err == nil {
				expKS = r.KS
			}
		}
		if expKS == 0 {
			continue
		}
		tBase.AddRow(string(f.Family), expKS, f.Best().KS, expKS/f.Best().KS)
	}
	// Second ablation: MLE vs KS-minimizing parameter search. Polishing the
	// MLE winner by coordinate descent on the KS statistic buys a slightly
	// smaller KS at much higher cost — quantified here per family.
	tPolish := &report.Table{
		Title:   "E6 (ablation): MLE vs KS-polished parameters",
		Columns: []string{"family", "MLE KS", "polished KS", "gain"},
	}
	for _, f := range fits {
		best := f.Best()
		p, ok := best.Dist.(dist.Parametric)
		if !ok || best.Err != nil {
			continue
		}
		raw := samplesOf(env, f.Family, 5000)
		if len(raw) == 0 {
			continue
		}
		sample := dist.NewSample(raw)
		mleKS := dist.KSStatisticSorted(best.Dist, sample.Sorted())
		_, polishedKS, err := dist.KSPolishSample(p, sample, 20)
		if err != nil {
			return nil, err
		}
		tPolish.AddRow(string(f.Family), mleKS, polishedKS, mleKS/math.Max(polishedKS, 1e-12))
		metrics["polish_gain_"+string(f.Family)] = mleKS / math.Max(polishedKS, 1e-12)
	}
	return &Result{
		ID: "E6", Description: "best-fit distributions",
		Tables:  []*report.Table{t, tBase, tPolish},
		Metrics: metrics,
	}, nil
}

// samplesOf collects up to max execution lengths (seconds) of failed jobs
// in the family, deterministically thinned.
func samplesOf(env *Env, fam joblog.ExitFamily, max int) []float64 {
	var out []float64
	for i := range env.D.Jobs {
		j := &env.D.Jobs[i]
		if j.Outcome() != joblog.OutcomeFailure || joblog.Family(j.ExitStatus) != fam {
			continue
		}
		if sec := j.Runtime().Seconds(); sec > 0 {
			out = append(out, sec)
		}
	}
	if len(out) <= max {
		return out
	}
	step := float64(len(out)) / float64(max)
	thinned := make([]float64, 0, max)
	for i := 0; i < max; i++ {
		thinned = append(thinned, out[int(float64(i)*step)])
	}
	return thinned
}
