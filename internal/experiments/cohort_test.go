package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sel"
)

func mustParse(t *testing.T, where string) sel.Expr {
	t.Helper()
	e, err := sel.Parse(where)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	return e
}

// TestCohortProfileMatchesCore checks the accessor is a cached façade over
// core.FusedScanWhere: same numbers, and the second request returns the
// same profile pointer.
func TestCohortProfileMatchesCore(t *testing.T) {
	e := env(t)
	user := e.D.JobView().Users[0]
	where := fmt.Sprintf("user == %s", user)

	p1, err := e.CohortProfile(where)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.D.FusedScanWhere(mustParse(t, where), e.Parallelism)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Summary, want.Summary) {
		t.Errorf("Summary differs:\n  got  %+v\n  want %+v", p1.Summary, want.Summary)
	}
	if p1.Summary.Jobs == 0 {
		t.Errorf("cohort %q selected no jobs", where)
	}

	// Warm path: same canonical predicate (different surface syntax) must
	// hand back the identical cached profile.
	p2, err := e.CohortProfile(fmt.Sprintf("(user == %q)", user))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cohort profile was not cached under the canonical form")
	}
}

// TestUserProjectProfileHelpers checks the Eq shorthands agree with the
// textual predicates they stand for.
func TestUserProjectProfileHelpers(t *testing.T) {
	e := env(t)
	jv := e.D.JobView()

	up, err := e.UserProfile(jv.Users[1])
	if err != nil {
		t.Fatal(err)
	}
	uw, err := e.CohortProfile(fmt.Sprintf("user == %s", jv.Users[1]))
	if err != nil {
		t.Fatal(err)
	}
	if up != uw {
		t.Error("UserProfile and the equivalent -where predicate did not share a cache entry")
	}

	pp, err := e.ProjectProfile(jv.Projects[0])
	if err != nil {
		t.Fatal(err)
	}
	if pp.Summary.Projects != 1 {
		t.Errorf("project cohort reports %d projects, want 1", pp.Summary.Projects)
	}
}

// TestCohortProfileNilAndErrors pins the degenerate paths: nil predicate
// serves the shared whole-corpus profile; a bad predicate reports the
// parse or compile error.
func TestCohortProfileNilAndErrors(t *testing.T) {
	e := env(t)
	p, err := e.CohortProfileExpr(nil)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := e.fusedProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p != whole {
		t.Error("nil predicate did not serve the shared FusedScan profile")
	}
	if _, err := e.CohortProfile("user =="); err == nil {
		t.Error("syntax error was not reported")
	}
	if _, err := e.CohortProfile("bogus == 1"); err == nil {
		t.Error("unknown column was not reported")
	}
}

// TestCohortProfileLegacyEquivalence checks the legacy (materialize) path
// agrees with pushdown — the experiments-level mirror of the core
// equivalence suite.
func TestCohortProfileLegacyEquivalence(t *testing.T) {
	e := env(t)
	legacy := NewEnvFromDataset(e.D)
	legacy.Legacy = true
	for _, where := range []string{
		"exit != success and nodes >= 1024",
		"sev == FATAL",
	} {
		got, err := e.CohortProfile(where)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacy.CohortProfile(where)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Summary, want.Summary) {
			t.Errorf("%q: Summary differs:\n  got  %+v\n  want %+v", where, got.Summary, want.Summary)
		}
		if !reflect.DeepEqual(got.Exit, want.Exit) {
			t.Errorf("%q: Exit tally differs", where)
		}
	}
}
