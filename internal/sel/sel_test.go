package sel

import (
	"reflect"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Expr
	}{
		{`user == u042`, Eq{Col: "user", Val: "u042"}},
		{`user = "u042"`, Eq{Col: "user", Val: "u042"}},
		{`sev != FATAL`, Not{X: Eq{Col: "sev", Val: "FATAL"}}},
		{`nodes >= 512`, Range{Col: "nodes", Lo: "512", LoIncl: true}},
		{`time < 2013-04-01`, Range{Col: "time", Hi: "2013-04-01"}},
		{`exit in (system, software)`, In{Col: "exit", Vals: []string{"system", "software"}}},
		{
			`sev == FATAL and cat in ('DDR', Cable)`,
			And{L: Eq{Col: "sev", Val: "FATAL"}, R: In{Col: "cat", Vals: []string{"DDR", "Cable"}}},
		},
		{
			`a == 1 or b == 2 and c == 3`, // and binds tighter
			Or{L: Eq{Col: "a", Val: "1"}, R: And{L: Eq{Col: "b", Val: "2"}, R: Eq{Col: "c", Val: "3"}}},
		},
		{
			`(a == 1 or b == 2) && !(c == 3)`,
			And{
				L: Or{L: Eq{Col: "a", Val: "1"}, R: Eq{Col: "b", Val: "2"}},
				R: Not{X: Eq{Col: "c", Val: "3"}},
			},
		},
		{`NOT midplane == R0-M1`, Not{X: Eq{Col: "midplane", Val: "R0-M1"}}},
		{
			`submit >= 2013-01-01 and submit < 2013-02-01`,
			And{
				L: Range{Col: "submit", Lo: "2013-01-01", LoIncl: true},
				R: Range{Col: "submit", Hi: "2013-02-01"},
			},
		},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		``,
		`user ==`,
		`== u042`,
		`user == 'unterminated`,
		`(user == a`,
		`user == a extra`,
		`exit in system`,
		`exit in (a,`,
		`user @ a`,
		`a == 1 and`,
	} {
		if e, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, e)
		}
	}
}

// TestStringRoundTrip checks the canonical form re-parses to an expression
// with the same canonical form — the property the selection cache key
// relies on.
func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		`user == u042`,
		`sev != FATAL`,
		`exit in (system, software) or nodes >= 1024`,
		`not (a == 1 and b < 2)`,
		`cat == 'has space' and comp == "q'd"`,
	} {
		e, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q (canonical %q): %v", in, e.String(), err)
		}
		if e.String() != e2.String() {
			t.Errorf("canonical form unstable: %q -> %q", e.String(), e2.String())
		}
	}
}

// TestQuoteEscapeRoundTrip pins the value-level round trip for hostile
// values: String must emit a form the lexer decodes back to the exact
// same bytes, including embedded quotes, backslashes, newlines, and
// non-UTF-8. (The canonical form doubles as a cache key in the cohort
// caches, so a value must never change across a String→Parse cycle.)
func TestQuoteEscapeRoundTrip(t *testing.T) {
	for _, val := range []string{
		``,
		`plain`,
		`has space`,
		`it's quoted`,
		`double " quote`,
		`both "kinds" of 'quotes'`,
		`back\slash`,
		`trailing backslash\`,
		`\" tricky`,
		"new\nline",
		"\x00\xff raw bytes",
	} {
		e := Eq{Col: "cat", Val: val}
		back, err := Parse(e.String())
		if err != nil {
			t.Errorf("canonical of value %q does not reparse: %v (canonical %q)", val, err, e.String())
			continue
		}
		eq, ok := back.(Eq)
		if !ok || eq.Val != val {
			t.Errorf("value %q round-trips to %#v via canonical %q", val, back, e.String())
		}
	}
}

// TestParseEscapes pins the lexer's escape semantics: a backslash inside
// a quoted string makes the next byte literal.
func TestParseEscapes(t *testing.T) {
	cases := []struct{ in, want string }{
		{`cat == "a\"b"`, `a"b`},
		{`cat == 'a\'b'`, `a'b`},
		{`cat == "a\\b"`, `a\b`},
		{`cat == "a\nb"`, `anb`}, // no C escapes: \n is a literal n
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if eq, ok := e.(Eq); !ok || eq.Val != c.want {
			t.Errorf("Parse(%q) value = %#v, want %q", c.in, e, c.want)
		}
	}
}

// TestParseDepthLimit: pathological nesting is rejected, not recursed.
func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("(", 1000) + "a == 1" + strings.Repeat(")", 1000)
	if _, err := Parse(deep); err == nil {
		t.Error("1000-deep parenthesis nest accepted")
	}
	if _, err := Parse(strings.Repeat("not ", 1000) + "a == 1"); err == nil {
		t.Error("1000-deep not-chain accepted")
	}
	ok := strings.Repeat("(", 50) + "a == 1" + strings.Repeat(")", 50)
	if _, err := Parse(ok); err != nil {
		t.Errorf("50-deep nest rejected: %v", err)
	}
}

func TestColumns(t *testing.T) {
	e, err := Parse(`sev == FATAL and (cat == DDR or sev == WARN) and midplane != R0-M1`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cat", "midplane", "sev"}
	if got := Columns(e); !reflect.DeepEqual(got, want) {
		t.Errorf("Columns = %v, want %v", got, want)
	}
}
