package sel

import (
	"reflect"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Expr
	}{
		{`user == u042`, Eq{Col: "user", Val: "u042"}},
		{`user = "u042"`, Eq{Col: "user", Val: "u042"}},
		{`sev != FATAL`, Not{X: Eq{Col: "sev", Val: "FATAL"}}},
		{`nodes >= 512`, Range{Col: "nodes", Lo: "512", LoIncl: true}},
		{`time < 2013-04-01`, Range{Col: "time", Hi: "2013-04-01"}},
		{`exit in (system, software)`, In{Col: "exit", Vals: []string{"system", "software"}}},
		{
			`sev == FATAL and cat in ('DDR', Cable)`,
			And{L: Eq{Col: "sev", Val: "FATAL"}, R: In{Col: "cat", Vals: []string{"DDR", "Cable"}}},
		},
		{
			`a == 1 or b == 2 and c == 3`, // and binds tighter
			Or{L: Eq{Col: "a", Val: "1"}, R: And{L: Eq{Col: "b", Val: "2"}, R: Eq{Col: "c", Val: "3"}}},
		},
		{
			`(a == 1 or b == 2) && !(c == 3)`,
			And{
				L: Or{L: Eq{Col: "a", Val: "1"}, R: Eq{Col: "b", Val: "2"}},
				R: Not{X: Eq{Col: "c", Val: "3"}},
			},
		},
		{`NOT midplane == R0-M1`, Not{X: Eq{Col: "midplane", Val: "R0-M1"}}},
		{
			`submit >= 2013-01-01 and submit < 2013-02-01`,
			And{
				L: Range{Col: "submit", Lo: "2013-01-01", LoIncl: true},
				R: Range{Col: "submit", Hi: "2013-02-01"},
			},
		},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		``,
		`user ==`,
		`== u042`,
		`user == 'unterminated`,
		`(user == a`,
		`user == a extra`,
		`exit in system`,
		`exit in (a,`,
		`user @ a`,
		`a == 1 and`,
	} {
		if e, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, e)
		}
	}
}

// TestStringRoundTrip checks the canonical form re-parses to an expression
// with the same canonical form — the property the selection cache key
// relies on.
func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		`user == u042`,
		`sev != FATAL`,
		`exit in (system, software) or nodes >= 1024`,
		`not (a == 1 and b < 2)`,
		`cat == 'has space' and comp == "q'd"`,
	} {
		e, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q (canonical %q): %v", in, e.String(), err)
		}
		if e.String() != e2.String() {
			t.Errorf("canonical form unstable: %q -> %q", e.String(), e2.String())
		}
	}
}

func TestColumns(t *testing.T) {
	e, err := Parse(`sev == FATAL and (cat == DDR or sev == WARN) and midplane != R0-M1`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cat", "midplane", "sev"}
	if got := Columns(e); !reflect.DeepEqual(got, want) {
		t.Errorf("Columns = %v, want %v", got, want)
	}
}
