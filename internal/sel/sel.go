// Package sel defines the predicate AST shared by `mirareport -where`,
// `mirafilter -where`, and the programmatic cohort API: a small expression
// language of column comparisons (Eq/In/Range) combined with And/Or/Not.
// Expressions are pure syntax — column names and values are strings; the
// selection compiler in internal/core interprets them against a concrete
// dataset's columns and turns them into bitmap algebra (DESIGN.md §14).
//
// The canonical String form of an expression is deterministic and
// re-parseable, and doubles as the cache key for compiled selections.
package sel

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a predicate over named columns.
type Expr interface {
	fmt.Stringer
	// appendColumns accumulates the column names the expression reads.
	appendColumns(dst []string) []string
}

// Eq selects rows whose column equals a value.
type Eq struct {
	Col, Val string
}

// In selects rows whose column equals any of the listed values.
type In struct {
	Col  string
	Vals []string
}

// Range selects rows whose column lies between Lo and Hi. An empty bound
// is unbounded on that side; LoIncl/HiIncl choose ≤/≥ versus strict
// comparison. How the bounds are ordered (numerically, by timestamp, …)
// is decided per column by the compiler.
type Range struct {
	Col, Lo, Hi    string
	LoIncl, HiIncl bool
}

// And selects rows matched by both operands.
type And struct {
	L, R Expr
}

// Or selects rows matched by either operand.
type Or struct {
	L, R Expr
}

// Not selects rows not matched by the operand.
type Not struct {
	X Expr
}

func (e Eq) String() string { return e.Col + " == " + quote(e.Val) }

func (e In) String() string {
	var sb strings.Builder
	sb.WriteString(e.Col)
	sb.WriteString(" in (")
	for i, v := range e.Vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(quote(v))
	}
	sb.WriteString(")")
	return sb.String()
}

func (e Range) String() string {
	lo, hi := "", ""
	if e.Lo != "" {
		op := " > "
		if e.LoIncl {
			op = " >= "
		}
		lo = e.Col + op + quote(e.Lo)
	}
	if e.Hi != "" {
		op := " < "
		if e.HiIncl {
			op = " <= "
		}
		hi = e.Col + op + quote(e.Hi)
	}
	switch {
	case lo == "":
		return hi
	case hi == "":
		return lo
	default:
		return "(" + lo + " and " + hi + ")"
	}
}

func (e And) String() string { return "(" + e.L.String() + " and " + e.R.String() + ")" }
func (e Or) String() string  { return "(" + e.L.String() + " or " + e.R.String() + ")" }
func (e Not) String() string { return "not " + e.X.String() }

// quote renders a value in the canonical double-quoted form the lexer
// round-trips exactly: only the quote character and the backslash are
// escaped, every other byte (including newlines and non-UTF-8) passes
// through raw. Using Go's %q here would be wrong — the lexer has no
// notion of \n/\uXXXX escapes, so parse→String→reparse would not be a
// fixed point for values containing quotes or backslashes.
func quote(v string) string {
	var sb strings.Builder
	sb.Grow(len(v) + 2)
	sb.WriteByte('"')
	for i := 0; i < len(v); i++ {
		if v[i] == '"' || v[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(v[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

func (e Eq) appendColumns(dst []string) []string    { return append(dst, e.Col) }
func (e In) appendColumns(dst []string) []string    { return append(dst, e.Col) }
func (e Range) appendColumns(dst []string) []string { return append(dst, e.Col) }
func (e And) appendColumns(dst []string) []string   { return e.R.appendColumns(e.L.appendColumns(dst)) }
func (e Or) appendColumns(dst []string) []string    { return e.R.appendColumns(e.L.appendColumns(dst)) }
func (e Not) appendColumns(dst []string) []string   { return e.X.appendColumns(dst) }

// Columns returns the sorted, deduplicated column names e reads. The
// compiler uses it to decide whether a predicate addresses the job or the
// event domain (or illegally mixes them).
func Columns(e Expr) []string {
	cols := e.appendColumns(nil)
	sort.Strings(cols)
	out := cols[:0]
	for i, c := range cols {
		if i == 0 || c != cols[i-1] {
			out = append(out, c)
		}
	}
	return out
}
