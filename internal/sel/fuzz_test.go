package sel

import (
	"strings"
	"testing"
)

// FuzzParse is the predicate-parser robustness target: for arbitrary
// input the parser must never panic, and whenever it accepts an
// expression the canonical form must be a fixed point — String() must
// reparse, and reparse must String() to the same bytes. This is the
// property the selection caches (experiments.Env cohorts, the mirad
// serve LRU, the compiled-selection cache in core) rely on when they key
// entries by canonical form.
//
// Run the smoke locally or in CI with:
//
//	go test -run '^$' -fuzz FuzzParse -fuzztime=10s ./internal/sel
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		// Plain comparisons, every operator, both = spellings.
		"user == u042",
		"user = u042",
		"exit != success",
		"nodes >= 1024",
		"dur < 3600",
		"submit <= 2013-04-01",
		"time > 2016-01-02T15:04:05",
		// Quoting: single, double, embedded quotes and backslashes.
		`user == "u042"`,
		`user == 'u042'`,
		`cat == 'weird "quoted" value'`,
		`cat == "it's quoted"`,
		`cat == "back\\slash"`,
		`cat == "escaped \" quote"`,
		`cat == ''`,
		// C-synonym operators and case-insensitive keywords.
		"sev == FATAL && cat == DDR or not comp == CNK",
		"sev == FATAL AND NOT cat == DDR",
		"!(user == u001) || project == p2",
		// in-lists.
		"user in (u001, u002, u003)",
		"exit in (killed, segfault)",
		`user in ("a", 'b')`,
		// Nesting and mixed domains.
		"(user == u1 and (exit == system or exit == killed)) and sev == FATAL",
		"not not not user == u1",
		"((((nodes > 512))))",
		// Ranges on both sides.
		"submit >= 2013-04-01 and submit < 2013-05-01",
		// Junk that must error, not panic.
		"",
		"user ==",
		"== u042",
		"user in ()",
		"user in (a,",
		"'unterminated",
		`"also unterminated\`,
		"user == u042 extra",
		"(((",
		strings.Repeat("not ", 64) + "user == u1",
		strings.Repeat("(", 300),
		"\x00\xff\xfe",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := Parse(s)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		canon := e.String()
		e2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse:\n  input %q\n  canon %q\n  err   %v", s, canon, err)
		}
		if again := e2.String(); again != canon {
			t.Fatalf("canonical form is not a fixed point:\n  input  %q\n  canon  %q\n  canon² %q", s, canon, again)
		}
		// Columns must be well-defined on anything the parser accepts.
		if cols := Columns(e); len(cols) == 0 {
			t.Fatalf("parsed expression %q reads no columns", canon)
		}
	})
}
