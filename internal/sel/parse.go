package sel

import (
	"fmt"
	"strings"
)

// Parse turns a -where expression into an Expr. The grammar, loosest
// binding first:
//
//	expr    = and { ("or"|"||") and }
//	and     = unary { ("and"|"&&") unary }
//	unary   = ("not"|"!") unary | "(" expr ")" | cmp
//	cmp     = column ("=="|"="|"!="|"<"|"<="|">"|">=") value
//	        | column "in" "(" value { "," value } ")"
//	value   = quoted string | bare word
//
// Keywords and column names are case-insensitive (columns canonicalize
// to lower case); values are case-sensitive. Bare words may contain letters, digits
// and the punctuation that appears in corpus values (`_ - . : /`), so
// midplane names (R0-M1), exit classes and timestamps (2013-04-01) need
// no quoting; anything else takes single or double quotes. Inside a
// quoted string a backslash escapes the next byte (so \" and \\ denote a
// literal quote and backslash); every other byte passes through raw.
//
// Nesting (parentheses and `not`) is bounded by maxDepth, so adversarial
// input cannot drive the recursive-descent parser — or the recursive
// String/compile walks over the resulting tree — arbitrarily deep. The
// -where surface is exposed to untrusted query strings by mirad.
func Parse(s string) (Expr, error) {
	p := &parser{toks: nil}
	if err := p.lex(s); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sel: unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

// maxDepth bounds parser recursion (parens and not-chains).
const maxDepth = 200

type tokKind uint8

const (
	tokEOF    tokKind = iota
	tokWord           // bare word: column name or unquoted value
	tokString         // quoted value
	tokOp             // comparison operator
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
}

type parser struct {
	toks  []token
	pos   int
	depth int
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == ':' || c == '/'
}

func (p *parser) lex(s string) error {
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			p.toks = append(p.toks, token{tokLParen, "("})
			i++
		case c == ')':
			p.toks = append(p.toks, token{tokRParen, ")"})
			i++
		case c == ',':
			p.toks = append(p.toks, token{tokComma, ","})
			i++
		case c == '\'' || c == '"':
			var sb strings.Builder
			j := i + 1
			for j < len(s) && s[j] != c {
				if s[j] == '\\' && j+1 < len(s) {
					j++ // escaped byte: take it literally
				}
				sb.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return fmt.Errorf("sel: unterminated string at offset %d", i)
			}
			p.toks = append(p.toks, token{tokString, sb.String()})
			i = j + 1
		case c == '=' || c == '!' || c == '<' || c == '>' || c == '&' || c == '|':
			j := i + 1
			if j < len(s) && (s[j] == '=' || s[j] == '&' || s[j] == '|') {
				j++
			}
			p.toks = append(p.toks, token{tokOp, s[i:j]})
			i = j
		case isWordChar(c):
			j := i
			for j < len(s) && isWordChar(s[j]) {
				j++
			}
			p.toks = append(p.toks, token{tokWord, s[i:j]})
			i = j
		default:
			return fmt.Errorf("sel: unexpected character %q at offset %d", c, i)
		}
	}
	p.toks = append(p.toks, token{tokEOF, ""})
	return nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword reports whether the next token is the given case-insensitive
// word or symbol, consuming it when it is.
func (p *parser) keyword(words ...string) bool {
	t := p.peek()
	if t.kind != tokWord && t.kind != tokOp {
		return false
	}
	for _, w := range words {
		if strings.EqualFold(t.text, w) {
			p.pos++
			return true
		}
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or", "||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.keyword("and", "&&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxDepth {
		return nil, fmt.Errorf("sel: expression nests deeper than %d levels", maxDepth)
	}
	if p.keyword("not", "!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("sel: expected ')', got %q", p.peek().text)
		}
		p.next()
		return e, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	t := p.next()
	if t.kind != tokWord {
		return nil, fmt.Errorf("sel: expected column name, got %q", t.text)
	}
	// Column names canonicalize to lower case (values stay case-sensitive:
	// severities and dictionary entries are case-significant), so every
	// spelling of one selection shares a canonical form — and therefore one
	// cache entry in every layer keyed by Expr.String().
	col := strings.ToLower(t.text)
	if p.keyword("in") {
		if p.peek().kind != tokLParen {
			return nil, fmt.Errorf("sel: expected '(' after %q in", col)
		}
		p.next()
		var vals []string
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("sel: expected ')', got %q", p.peek().text)
		}
		p.next()
		return In{Col: col, Vals: vals}, nil
	}
	op := p.next()
	if op.kind != tokOp {
		return nil, fmt.Errorf("sel: expected operator after %q, got %q", col, op.text)
	}
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	switch op.text {
	case "==", "=":
		return Eq{Col: col, Val: val}, nil
	case "!=":
		return Not{X: Eq{Col: col, Val: val}}, nil
	}
	// Range bounds: the empty string is Range's "unbounded" sentinel (and
	// no numeric or time column parses it), so reject it as a bound value.
	if val == "" {
		return nil, fmt.Errorf("sel: empty %s bound for %q", op.text, col)
	}
	switch op.text {
	case "<":
		return Range{Col: col, Hi: val}, nil
	case "<=":
		return Range{Col: col, Hi: val, HiIncl: true}, nil
	case ">":
		return Range{Col: col, Lo: val}, nil
	case ">=":
		return Range{Col: col, Lo: val, LoIncl: true}, nil
	}
	return nil, fmt.Errorf("sel: unknown operator %q", op.text)
}

func (p *parser) parseValue() (string, error) {
	t := p.next()
	if t.kind != tokWord && t.kind != tokString {
		return "", fmt.Errorf("sel: expected value, got %q", t.text)
	}
	return t.text, nil
}
