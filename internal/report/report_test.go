package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "T1: demo",
		Columns: []string{"name", "count", "rate"},
		Notes:   []string{"synthetic"},
	}
	tab.AddRow("alpha", 12, 0.25)
	tab.AddRow("beta-long-name", 3, 1.0)
	out := tab.String()
	if !strings.Contains(out, "T1: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "beta-long-name") || !strings.Contains(out, "0.25") {
		t.Errorf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "note: synthetic") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + sep + 2 rows + note
	if len(lines) != 6 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Header and separator aligned to the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator:\n%s", out)
	}
}

func TestTableFloatsFormatting(t *testing.T) {
	tab := Table{Columns: []string{"v"}}
	tab.AddRow(3.0)
	tab.AddRow(0.123456)
	tab.AddRow(1234567.0)
	out := tab.String()
	if !strings.Contains(out, "3\n") {
		t.Errorf("integer float should drop decimals:\n%s", out)
	}
	if !strings.Contains(out, "0.1235") {
		t.Errorf("small float should use 4 significant digits:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Columns: []string{"a", "b"}}
	tab.AddRow("x,y", 1)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",1\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestFigureCSVAndRender(t *testing.T) {
	f := Figure{
		Title:  "F1: demo",
		XLabel: "window",
		YLabel: "count",
		Series: []Series{
			{Name: "filtered", X: []float64{1, 2, 3}, Y: []float64{30, 20, 10}},
			{Name: "raw", X: []float64{1}, Y: []float64{100}},
		},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	if !strings.HasPrefix(csv, "series,window,count\n") {
		t.Errorf("csv header: %q", csv)
	}
	if strings.Count(csv, "\n") != 5 {
		t.Errorf("csv rows: %q", csv)
	}
	text := f.String()
	if !strings.Contains(text, "[filtered]") || !strings.Contains(text, "#") {
		t.Errorf("render: %s", text)
	}
	// Bars scale with max.
	if !strings.Contains(text, strings.Repeat("#", 40)) {
		t.Errorf("max bar should be 40 wide:\n%s", text)
	}
}

func TestEmptyFigure(t *testing.T) {
	f := Figure{Title: "empty"}
	if s := f.String(); !strings.Contains(s, "empty") {
		t.Errorf("empty figure render: %q", s)
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
}
