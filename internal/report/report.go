// Package report renders analysis results as aligned ASCII tables, text
// bar charts and CSV series — the forms in which the benchmark harness
// regenerates the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed under the table (provenance, paper reference).
	Notes []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// values with 4 significant digits.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// Render writes the table to w as an aligned ASCII grid.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		var row strings.Builder
		for i, cell := range cells {
			if i > 0 {
				row.WriteString("  ")
			}
			row.WriteString(pad(cell, widths[i]))
		}
		b.WriteString(strings.TrimRight(row.String(), " "))
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}

// WriteCSV writes the table as CSV (comma-separated, minimal quoting).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(strconv.Quote(c))
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Series is a named (x, y) sequence — one curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a titled collection of series (one paper figure).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteCSV writes the figure in long form: series,x,y per row.
func (f *Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel))
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%s,%s\n", csvEscape(s.Name),
				strconv.FormatFloat(s.X[i], 'g', 8, 64),
				strconv.FormatFloat(s.Y[i], 'g', 8, 64))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return strconv.Quote(s)
	}
	return s
}

// Render draws the figure as aligned text: each series as a bar chart over
// its x values (terminal-friendly stand-in for the paper's plots).
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  [%s]\n", s.Name)
		maxY := 0.0
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
		for i := range s.X {
			barLen := 0
			if maxY > 0 {
				barLen = int(40 * s.Y[i] / maxY)
			}
			fmt.Fprintf(&b, "  %12s |%s %s\n", formatFloat(s.X[i]),
				strings.Repeat("#", barLen), formatFloat(s.Y[i]))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		return ""
	}
	return b.String()
}
