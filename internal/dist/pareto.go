package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Pareto is the Pareto (Type I) distribution with scale x_m > 0 (the
// minimum) and shape α > 0. Heavy upper tails of failed-job durations —
// long-running jobs that eventually die — are Pareto in the paper for some
// exit codes.
type Pareto struct {
	Xm    float64 // scale: minimum value
	Alpha float64 // shape
}

var _ Distribution = Pareto{}

// NewPareto returns a Pareto distribution with scale xm and shape alpha.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if xm <= 0 || alpha <= 0 || math.IsNaN(xm) || math.IsNaN(alpha) {
		return Pareto{}, fmt.Errorf("dist: pareto xm %v / alpha %v must be positive", xm, alpha)
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// Name implements Distribution.
func (Pareto) Name() string { return "pareto" }

// NumParams implements Distribution.
func (Pareto) NumParams() int { return 2 }

// PDF implements Distribution.
func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

// LogPDF implements Distribution.
func (p Pareto) LogPDF(x float64) float64 {
	if x < p.Xm {
		return math.Inf(-1)
	}
	return math.Log(p.Alpha) + p.Alpha*math.Log(p.Xm) - (p.Alpha+1)*math.Log(x)
}

// CDF implements Distribution.
func (p Pareto) CDF(x float64) float64 {
	if x <= p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile implements Distribution.
func (p Pareto) Quantile(q float64) float64 {
	switch {
	case q <= 0:
		return p.Xm
	case q >= 1:
		return math.Inf(1)
	default:
		return p.Xm * math.Pow(1-q, -1/p.Alpha)
	}
}

// Mean implements Distribution. Infinite for α ≤ 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Var implements Distribution. Infinite for α ≤ 2.
func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

// Rand implements Distribution.
func (p Pareto) Rand(rng *rand.Rand) float64 {
	// Inverse transform: x_m · U^{−1/α} with U uniform on (0,1].
	u := 1 - rng.Float64() // in (0,1]
	return p.Xm * math.Pow(u, -1/p.Alpha)
}

// ParetoFitter estimates Pareto parameters by maximum likelihood:
// x̂_m = min(x), α̂ = n / Σ ln(x_i/x̂_m).
type ParetoFitter struct{}

var (
	_ Fitter       = ParetoFitter{}
	_ SampleFitter = ParetoFitter{}
)

// FamilyName implements Fitter.
func (ParetoFitter) FamilyName() string { return "pareto" }

// Fit implements Fitter.
func (f ParetoFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter: both parameters are closed-form in the
// cached minimum and Σln x — Σ ln(x_i/x_m) = Σln x − n·ln x_m.
func (ParetoFitter) FitSample(s *Sample) (Distribution, error) {
	if _, _, _, err := s.moments(true); err != nil {
		return nil, fmt.Errorf("fit pareto: %w", err)
	}
	xm := s.Min()
	n := float64(s.N())
	sumLog := s.SumLog() - n*math.Log(xm)
	if sumLog <= 0 {
		return nil, fmt.Errorf("fit pareto: degenerate sample (all values equal)")
	}
	return NewPareto(xm, n/sumLog)
}
