package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// sampleFrom draws n variates from d with a fixed seed.
func sampleFrom(d Distribution, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Rand(rng)
	}
	return out
}

// TestFitterRecoversParameters draws from a known law and checks the MLE
// recovers the parameters within a few percent.
func TestFitterRecoversParameters(t *testing.T) {
	const n = 50000
	t.Run("exponential", func(t *testing.T) {
		truth, _ := NewExponential(0.3)
		got, err := (ExponentialFitter{}).Fit(sampleFrom(truth, n, 1))
		if err != nil {
			t.Fatal(err)
		}
		e := got.(Exponential)
		if math.Abs(e.Rate-0.3) > 0.01 {
			t.Errorf("rate = %v, want 0.3", e.Rate)
		}
	})
	t.Run("weibull", func(t *testing.T) {
		truth, _ := NewWeibull(0.7, 5)
		got, err := (WeibullFitter{}).Fit(sampleFrom(truth, n, 2))
		if err != nil {
			t.Fatal(err)
		}
		w := got.(Weibull)
		if math.Abs(w.Shape-0.7) > 0.02 || math.Abs(w.Scale-5) > 0.2 {
			t.Errorf("weibull fit = %+v, want shape 0.7 scale 5", w)
		}
	})
	t.Run("weibull-increasing-hazard", func(t *testing.T) {
		truth, _ := NewWeibull(3.2, 1.4)
		got, err := (WeibullFitter{}).Fit(sampleFrom(truth, n, 3))
		if err != nil {
			t.Fatal(err)
		}
		w := got.(Weibull)
		if math.Abs(w.Shape-3.2) > 0.1 || math.Abs(w.Scale-1.4) > 0.05 {
			t.Errorf("weibull fit = %+v, want shape 3.2 scale 1.4", w)
		}
	})
	t.Run("pareto", func(t *testing.T) {
		truth, _ := NewPareto(2, 1.8)
		got, err := (ParetoFitter{}).Fit(sampleFrom(truth, n, 4))
		if err != nil {
			t.Fatal(err)
		}
		p := got.(Pareto)
		if math.Abs(p.Xm-2) > 0.01 || math.Abs(p.Alpha-1.8) > 0.05 {
			t.Errorf("pareto fit = %+v, want xm 2 alpha 1.8", p)
		}
	})
	t.Run("lognormal", func(t *testing.T) {
		truth, _ := NewLogNormal(2, 0.6)
		got, err := (LogNormalFitter{}).Fit(sampleFrom(truth, n, 5))
		if err != nil {
			t.Fatal(err)
		}
		l := got.(LogNormal)
		if math.Abs(l.Mu-2) > 0.02 || math.Abs(l.Sigma-0.6) > 0.02 {
			t.Errorf("lognormal fit = %+v, want mu 2 sigma 0.6", l)
		}
	})
	t.Run("gamma", func(t *testing.T) {
		truth, _ := NewGamma(2.5, 0.8)
		got, err := (GammaFitter{}).Fit(sampleFrom(truth, n, 6))
		if err != nil {
			t.Fatal(err)
		}
		g := got.(Gamma)
		if math.Abs(g.Shape-2.5) > 0.08 || math.Abs(g.Rate-0.8) > 0.03 {
			t.Errorf("gamma fit = %+v, want shape 2.5 rate 0.8", g)
		}
	})
	t.Run("erlang", func(t *testing.T) {
		truth, _ := NewErlang(4, 2)
		got, err := (ErlangFitter{}).Fit(sampleFrom(truth, n, 7))
		if err != nil {
			t.Fatal(err)
		}
		e := got.(Erlang)
		if e.K != 4 || math.Abs(e.Rate-2) > 0.05 {
			t.Errorf("erlang fit = %+v, want k 4 rate 2", e)
		}
	})
	t.Run("inverse-gaussian", func(t *testing.T) {
		truth, _ := NewInverseGaussian(3, 9)
		got, err := (InverseGaussianFitter{}).Fit(sampleFrom(truth, n, 8))
		if err != nil {
			t.Fatal(err)
		}
		ig := got.(InverseGaussian)
		if math.Abs(ig.Mu-3) > 0.05 || math.Abs(ig.Lambda-9) > 0.3 {
			t.Errorf("ig fit = %+v, want mu 3 lambda 9", ig)
		}
	})
	t.Run("normal", func(t *testing.T) {
		truth, _ := NewNormal(-2, 3)
		got, err := (NormalFitter{}).Fit(sampleFrom(truth, n, 9))
		if err != nil {
			t.Fatal(err)
		}
		nn := got.(Normal)
		if math.Abs(nn.Mu+2) > 0.05 || math.Abs(nn.Sigma-3) > 0.05 {
			t.Errorf("normal fit = %+v, want mu -2 sigma 3", nn)
		}
	})
}

func TestFittersRejectBadSamples(t *testing.T) {
	positiveFitters := []Fitter{
		ExponentialFitter{}, WeibullFitter{}, ParetoFitter{},
		LogNormalFitter{}, GammaFitter{}, ErlangFitter{}, InverseGaussianFitter{},
	}
	for _, f := range positiveFitters {
		if _, err := f.Fit([]float64{1, -2, 3}); err == nil {
			t.Errorf("%s: negative value accepted", f.FamilyName())
		}
		if _, err := f.Fit([]float64{1}); err == nil {
			t.Errorf("%s: single point accepted", f.FamilyName())
		}
		if _, err := f.Fit(nil); err == nil {
			t.Errorf("%s: empty sample accepted", f.FamilyName())
		}
		if _, err := f.Fit([]float64{1, math.NaN()}); err == nil {
			t.Errorf("%s: NaN accepted", f.FamilyName())
		}
	}
	// Degenerate constant samples should error, not return garbage.
	constant := []float64{2, 2, 2, 2}
	for _, f := range []Fitter{ParetoFitter{}, LogNormalFitter{}, InverseGaussianFitter{}, GammaFitter{}, NormalFitter{}} {
		if _, err := f.Fit(constant); err == nil {
			t.Errorf("%s: constant sample accepted", f.FamilyName())
		}
	}
	if _, err := (ExponentialFitter{}).Fit([]float64{1, 2}); err != nil {
		t.Errorf("exponential on valid pair: %v", err)
	}
	var tooFew = []float64{3}
	if _, err := (ExponentialFitter{}).Fit(tooFew); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("want ErrTooFewPoints, got %v", err)
	}
}

// TestModelSelectionIdentifiesTrueFamily is the core statistical guarantee
// behind experiment E6: for samples generated from each of the paper's four
// best-fit families, SelectBest must rank the true family first (or an
// equivalent: gamma/erlang/exponential overlap).
func TestModelSelectionIdentifiesTrueFamily(t *testing.T) {
	const n = 8000
	equivalent := map[string][]string{
		"exponential":      {"exponential", "erlang", "gamma", "weibull"},
		"erlang":           {"erlang", "gamma"},
		"weibull":          {"weibull"},
		"pareto":           {"pareto"},
		"inverse-gaussian": {"inverse-gaussian"},
		"lognormal":        {"lognormal", "inverse-gaussian"},
	}
	cases := []Distribution{
		mustAny(NewWeibull(0.6, 3600)),
		mustAny(NewPareto(60, 1.4)),
		mustAny(NewInverseGaussian(3600, 14400)),
		mustAny(NewErlang(3, 1.0/1800)),
		mustAny(NewLogNormal(7, 1.1)),
	}
	for i, truth := range cases {
		data := sampleFrom(truth, n, int64(100+i))
		best, err := SelectBest(data, nil)
		if err != nil {
			t.Fatalf("%s: %v", truth.Name(), err)
		}
		ok := false
		for _, fam := range equivalent[truth.Name()] {
			if best.Family == fam {
				ok = true
			}
		}
		if !ok {
			t.Errorf("true family %s: selected %s (KS=%.4f)", truth.Name(), best.Family, best.KS)
		}
		if best.KS > 0.05 {
			t.Errorf("%s: winning KS %.4f too large", truth.Name(), best.KS)
		}
	}
}

func TestFitAllRanksErrorsLast(t *testing.T) {
	// Sample with a zero: positive-support fitters fail, normal succeeds.
	data := []float64{0, 1, 2, 3, 4, 5}
	results := FitAll(data, []Fitter{ParetoFitter{}, NormalFitter{}})
	if len(results) != 2 {
		t.Fatalf("len = %d", len(results))
	}
	if results[0].Family != "normal" || results[0].Err != nil {
		t.Errorf("normal should rank first, got %+v", results[0])
	}
	if results[1].Err == nil {
		t.Errorf("pareto on zero should have failed")
	}
}

func TestKSStatisticProperties(t *testing.T) {
	e, _ := NewExponential(1)
	if !math.IsNaN(KSStatistic(e, nil)) {
		t.Error("KS of empty sample should be NaN")
	}
	// Perfectly wrong model: all mass below support.
	p, _ := NewPareto(100, 2)
	small := []float64{1, 2, 3}
	if ks := KSStatistic(p, small); ks < 0.99 {
		t.Errorf("KS against disjoint support = %v, want ≈1", ks)
	}
	// KS is in [0,1].
	data := sampleFrom(e, 100, 11)
	if ks := KSStatistic(e, data); ks < 0 || ks > 1 {
		t.Errorf("KS out of range: %v", ks)
	}
}

func TestAICBICOrdering(t *testing.T) {
	truth, _ := NewWeibull(0.6, 10)
	data := sampleFrom(truth, 5000, 21)
	wFit, err := (WeibullFitter{}).Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	eFit, err := (ExponentialFitter{}).Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if AIC(wFit, data) >= AIC(eFit, data) {
		t.Error("true Weibull family should beat exponential by AIC")
	}
	if BIC(wFit, data) >= BIC(eFit, data) {
		t.Error("true Weibull family should beat exponential by BIC")
	}
}

func TestParamString(t *testing.T) {
	for _, d := range []Distribution{
		mustAny(NewExponential(1)), mustAny(NewWeibull(1, 2)), mustAny(NewPareto(1, 2)),
		mustAny(NewLogNormal(0, 1)), mustAny(NewGamma(1, 1)), mustAny(NewErlang(2, 1)),
		mustAny(NewInverseGaussian(1, 1)), mustAny(NewNormal(0, 1)),
	} {
		if s := ParamString(d); s == "" || s == "<nil>" {
			t.Errorf("%s: empty param string", d.Name())
		}
	}
	if ParamString(nil) != "<nil>" {
		t.Error("nil should format as <nil>")
	}
}

func mustAny[D Distribution](d D, err error) Distribution {
	if err != nil {
		panic(err)
	}
	return d
}

func TestADStatistic(t *testing.T) {
	e, _ := NewExponential(0.5)
	if !math.IsNaN(ADStatistic(e, nil)) {
		t.Error("empty AD should be NaN")
	}
	data := sampleFrom(e, 5000, 51)
	ad := ADStatistic(e, data)
	// Under the true model A² concentrates near its asymptotic mean 1; the
	// 1% critical value is ≈3.9.
	if ad < 0 || ad > 3.9 {
		t.Errorf("AD under true model = %v", ad)
	}
	// A wrong model has a much larger A².
	wrong, _ := NewExponential(2.5)
	if adWrong := ADStatistic(wrong, data); adWrong < 10*ad {
		t.Errorf("AD should expose the wrong rate: %v vs %v", adWrong, ad)
	}
	// Support violation: point below Pareto xm → +Inf.
	p, _ := NewPareto(10, 2)
	if !math.IsInf(ADStatistic(p, []float64{5, 20}), 1) {
		t.Error("out-of-support AD should be +Inf")
	}
}

func TestFitAllReportsAD(t *testing.T) {
	truth, _ := NewWeibull(0.62, 2100)
	data := sampleFrom(truth, 4000, 52)
	results := FitAll(data, nil)
	if results[0].Family != "weibull" {
		t.Fatalf("winner %s", results[0].Family)
	}
	if math.IsNaN(results[0].AD) || results[0].AD > 4 {
		t.Errorf("winner AD = %v", results[0].AD)
	}
	// The AD of the winner is below that of a mismatched family.
	for _, r := range results {
		if r.Err == nil && r.Family == "pareto" && r.AD < results[0].AD {
			t.Errorf("pareto AD %v below weibull AD %v", r.AD, results[0].AD)
		}
	}
}
