package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// LogNormal is the log-normal distribution: ln X ~ N(μ, σ²). A standard
// candidate family for job runtimes and a competitor in the paper's model
// selection.
type LogNormal struct {
	Mu    float64 // mean of ln X
	Sigma float64 // std dev of ln X, > 0
}

var _ Distribution = LogNormal{}

// NewLogNormal returns a log-normal distribution with the given log-scale
// parameters.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
		return LogNormal{}, fmt.Errorf("dist: lognormal sigma %v must be positive", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Name implements Distribution.
func (LogNormal) Name() string { return "lognormal" }

// NumParams implements Distribution.
func (LogNormal) NumParams() int { return 2 }

// PDF implements Distribution.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF implements Distribution.
func (l LogNormal) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return -z*z/2 - math.Log(x*l.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF implements Distribution.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * (1 + math.Erf((math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2)))
}

// Quantile implements Distribution.
func (l LogNormal) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	default:
		return math.Exp(l.Mu + l.Sigma*math.Sqrt2*erfInv(2*p-1))
	}
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var implements Distribution.
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// Rand implements Distribution.
func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// LogNormalFitter estimates the log-normal law by MLE — the sample mean and
// standard deviation of ln x.
type LogNormalFitter struct{}

var (
	_ Fitter       = LogNormalFitter{}
	_ SampleFitter = LogNormalFitter{}
)

// FamilyName implements Fitter.
func (LogNormalFitter) FamilyName() string { return "lognormal" }

// Fit implements Fitter.
func (f LogNormalFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter: the MLE is the cached mean and
// variance of ln x — no log pass and no scratch slice per fit.
func (LogNormalFitter) FitSample(s *Sample) (Distribution, error) {
	if _, _, _, err := s.moments(true); err != nil {
		return nil, fmt.Errorf("fit lognormal: %w", err)
	}
	variance := s.VarLog()
	if variance <= 0 {
		return nil, fmt.Errorf("fit lognormal: degenerate sample (all values equal)")
	}
	return NewLogNormal(s.MeanLog(), math.Sqrt(variance))
}

// Normal is the Gaussian distribution N(μ, σ²). Included to complete the
// candidate set and for internal use (CLT-based approximations in tests).
type Normal struct {
	Mu    float64
	Sigma float64 // > 0
}

var _ Distribution = Normal{}

// NewNormal returns a normal distribution with the given mean and standard
// deviation.
func NewNormal(mu, sigma float64) (Normal, error) {
	if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
		return Normal{}, fmt.Errorf("dist: normal sigma %v must be positive", sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Name implements Distribution.
func (Normal) Name() string { return "normal" }

// NumParams implements Distribution.
func (Normal) NumParams() int { return 2 }

// PDF implements Distribution.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF implements Distribution.
func (n Normal) LogPDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return -z*z/2 - math.Log(n.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF implements Distribution.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Quantile implements Distribution.
func (n Normal) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	default:
		return n.Mu + n.Sigma*math.Sqrt2*erfInv(2*p-1)
	}
}

// Mean implements Distribution.
func (n Normal) Mean() float64 { return n.Mu }

// Var implements Distribution.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// Rand implements Distribution.
func (n Normal) Rand(rng *rand.Rand) float64 { return n.Mu + n.Sigma*rng.NormFloat64() }

// NormalFitter estimates a Gaussian by MLE.
type NormalFitter struct{}

var (
	_ Fitter       = NormalFitter{}
	_ SampleFitter = NormalFitter{}
)

// FamilyName implements Fitter.
func (NormalFitter) FamilyName() string { return "normal" }

// Fit implements Fitter.
func (f NormalFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter.
func (NormalFitter) FitSample(s *Sample) (Distribution, error) {
	_, mu, variance, err := s.moments(false)
	if err != nil {
		return nil, fmt.Errorf("fit normal: %w", err)
	}
	if variance <= 0 {
		return nil, fmt.Errorf("fit normal: degenerate sample (all values equal)")
	}
	return NewNormal(mu, math.Sqrt(variance))
}
