package dist

import (
	"fmt"
	"math"
	"sort"
)

// KSPolish refines a fitted distribution by coordinate descent on the
// one-sample KS statistic: each parameter is perturbed multiplicatively
// (or additively when near zero) with a shrinking step until no move
// improves the fit. This is the "KS-minimizing parameter search" baseline
// the design contrasts against plain MLE — it usually buys a slightly
// smaller KS at a much higher cost and with no likelihood guarantees.
//
// The data is sorted once; iters bounds the outer sweeps (0 means 40).
func KSPolish(d Parametric, data []float64, iters int) (Distribution, float64, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("dist: ks polish: %w", ErrTooFewPoints)
	}
	if iters <= 0 {
		iters = 40
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)

	best := Distribution(d)
	bestKS := ksSorted(best, sorted)
	params := d.Params()
	step := 0.25 // 25% multiplicative perturbation, halved on stagnation

	for sweep := 0; sweep < iters; sweep++ {
		improved := false
		for i := range params {
			for _, dir := range []float64{1 + step, 1 / (1 + step)} {
				cand := append([]float64(nil), params...)
				if cand[i] == 0 {
					cand[i] = dir - 1 // escape exact zero additively
				} else {
					cand[i] *= dir
				}
				nd, err := d.WithParams(cand)
				if err != nil {
					continue
				}
				if ks := ksSorted(nd, sorted); ks < bestKS {
					bestKS = ks
					best = nd
					params = cand
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
			if step < 1e-4 {
				break
			}
		}
	}
	return best, bestKS, nil
}

// ksSorted is KSStatistic on pre-sorted data.
func ksSorted(d Distribution, sorted []float64) float64 {
	n := len(sorted)
	maxD := 0.0
	for i, x := range sorted {
		f := d.CDF(x)
		if lo := math.Abs(f - float64(i)/float64(n)); lo > maxD {
			maxD = lo
		}
		if hi := math.Abs(float64(i+1)/float64(n) - f); hi > maxD {
			maxD = hi
		}
	}
	return maxD
}

// KSPolishFitter wraps a base MLE fitter and polishes its result by KS
// coordinate descent. It satisfies Fitter, so it can be dropped into the
// model-selection candidate set for the ablation.
type KSPolishFitter struct {
	Base  Fitter
	Iters int
}

var _ Fitter = KSPolishFitter{}

// FamilyName implements Fitter.
func (f KSPolishFitter) FamilyName() string { return f.Base.FamilyName() + "+kspolish" }

// Fit implements Fitter.
func (f KSPolishFitter) Fit(data []float64) (Distribution, error) {
	d, err := f.Base.Fit(data)
	if err != nil {
		return nil, err
	}
	p, ok := d.(Parametric)
	if !ok {
		return d, nil
	}
	polished, _, err := KSPolish(p, data, f.Iters)
	if err != nil {
		return nil, err
	}
	return polished, nil
}
