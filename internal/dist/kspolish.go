package dist

import (
	"fmt"
)

// KSPolish refines a fitted distribution by coordinate descent on the
// one-sample KS statistic: each parameter is perturbed multiplicatively
// (or additively when near zero) with a shrinking step until no move
// improves the fit. This is the "KS-minimizing parameter search" baseline
// the design contrasts against plain MLE — it usually buys a slightly
// smaller KS at a much higher cost and with no likelihood guarantees.
//
// KSPolish is a compatibility wrapper that sorts the data once (via a
// Sample) and delegates to KSPolishSample; iters bounds the outer sweeps
// (0 means 40).
func KSPolish(d Parametric, data []float64, iters int) (Distribution, float64, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("dist: ks polish: %w", ErrTooFewPoints)
	}
	return KSPolishSample(d, NewSample(data), iters)
}

// KSPolishSample is KSPolish over a precomputed Sample: the coordinate
// descent evaluates every candidate through the sample's memoized collapsed
// ECDF (one CDF evaluation per distinct value rather than per point), with a
// single reusable candidate buffer instead of one allocation per
// perturbation.
func KSPolishSample(d Parametric, s *Sample, iters int) (Distribution, float64, error) {
	if s.N() == 0 {
		return nil, 0, fmt.Errorf("dist: ks polish: %w", ErrTooFewPoints)
	}
	if iters <= 0 {
		iters = 40
	}

	best := Distribution(d)
	bestKS := s.KSStatistic(best)
	params := d.Params()
	cand := make([]float64, len(params))
	step := 0.25 // 25% multiplicative perturbation, halved on stagnation

	for sweep := 0; sweep < iters; sweep++ {
		improved := false
		for i := range params {
			for _, dir := range []float64{1 + step, 1 / (1 + step)} {
				copy(cand, params)
				if cand[i] == 0 {
					cand[i] = dir - 1 // escape exact zero additively
				} else {
					cand[i] *= dir
				}
				nd, err := d.WithParams(cand)
				if err != nil {
					continue
				}
				if ks, ok := s.ksBelow(nd, bestKS); ok {
					bestKS = ks
					best = nd
					// Adopt the candidate by swapping buffers: cand is
					// re-filled from params at the top of each probe, so
					// the old params slice can be recycled.
					params, cand = cand, params
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
			if step < 1e-4 {
				break
			}
		}
	}
	return best, bestKS, nil
}

// KSPolishFitter wraps a base MLE fitter and polishes its result by KS
// coordinate descent. It satisfies Fitter (and SampleFitter), so it can be
// dropped into the model-selection candidate set for the ablation.
type KSPolishFitter struct {
	Base  Fitter
	Iters int
}

var (
	_ Fitter       = KSPolishFitter{}
	_ SampleFitter = KSPolishFitter{}
)

// FamilyName implements Fitter.
func (f KSPolishFitter) FamilyName() string { return f.Base.FamilyName() + "+kspolish" }

// Fit implements Fitter.
func (f KSPolishFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter: the base fit and the polish share one
// sorted sample.
func (f KSPolishFitter) FitSample(s *Sample) (Distribution, error) {
	d, err := fitWith(f.Base, s)
	if err != nil {
		return nil, err
	}
	p, ok := d.(Parametric)
	if !ok {
		return d, nil
	}
	polished, _, err := KSPolishSample(p, s, f.Iters)
	if err != nil {
		return nil, err
	}
	return polished, nil
}
