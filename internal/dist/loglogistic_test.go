package dist

import (
	"math"
	"testing"
)

func TestLogLogisticBasics(t *testing.T) {
	if _, err := NewLogLogistic(0, 1); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := NewLogLogistic(1, -1); err == nil {
		t.Error("negative beta accepted")
	}
	l, err := NewLogLogistic(100, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	// Median equals alpha.
	if q := l.Quantile(0.5); math.Abs(q-100) > 1e-9 {
		t.Errorf("median = %v, want 100", q)
	}
	// CDF/Quantile inverse.
	for _, p := range []float64{0.05, 0.3, 0.5, 0.8, 0.99} {
		if got := l.CDF(l.Quantile(p)); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Q(%v)) = %v", p, got)
		}
	}
	// Support boundaries.
	if l.PDF(-1) != 0 || l.CDF(0) != 0 {
		t.Error("support violation")
	}
	if q := l.Quantile(1); !math.IsInf(q, 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	// Mean finite for beta > 1, infinite below.
	if math.IsInf(l.Mean(), 0) {
		t.Error("mean should be finite for beta=2.5")
	}
	heavy, _ := NewLogLogistic(1, 0.8)
	if !math.IsInf(heavy.Mean(), 1) {
		t.Error("mean should be infinite for beta<1")
	}
}

func TestLogLogisticVar(t *testing.T) {
	l, _ := NewLogLogistic(10, 4)
	if math.IsInf(l.Var(), 0) || l.Var() <= 0 {
		t.Errorf("Var = %v, want positive finite for beta=4", l.Var())
	}
	l2, _ := NewLogLogistic(10, 1.5)
	if !math.IsInf(l2.Var(), 1) {
		t.Error("Var should be infinite for beta=1.5")
	}
}

func TestLogLogisticLogPDFConsistent(t *testing.T) {
	l, _ := NewLogLogistic(50, 1.8)
	for _, p := range []float64{0.1, 0.4, 0.7, 0.95} {
		x := l.Quantile(p)
		want := math.Log(l.PDF(x))
		if got := l.LogPDF(x); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("LogPDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLogLogisticSampleKS(t *testing.T) {
	l, _ := NewLogLogistic(3600, 2.2)
	data := sampleFrom(l, 5000, 41)
	if ks := KSStatistic(l, data); ks > 1.63/math.Sqrt(5000) {
		t.Errorf("KS %v too large for own sample", ks)
	}
}

func TestLogLogisticFitterRecovers(t *testing.T) {
	truth, _ := NewLogLogistic(1800, 1.7)
	data := sampleFrom(truth, 30000, 42)
	got, err := (LogLogisticFitter{}).Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	l := got.(LogLogistic)
	if math.Abs(l.Alpha-1800)/1800 > 0.05 || math.Abs(l.Beta-1.7)/1.7 > 0.05 {
		t.Errorf("fit = %+v, want alpha 1800 beta 1.7", l)
	}
	if ks := KSStatistic(got, data); ks > 0.02 {
		t.Errorf("fitted KS = %v", ks)
	}
}

func TestLogLogisticFitterRejects(t *testing.T) {
	f := LogLogisticFitter{}
	if _, err := f.Fit([]float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := f.Fit([]float64{1, -1}); err == nil {
		t.Error("negative accepted")
	}
	if _, err := f.Fit([]float64{2, 2, 2}); err == nil {
		t.Error("constant accepted")
	}
}

func TestLogLogisticParamsRoundTrip(t *testing.T) {
	l, _ := NewLogLogistic(7, 3)
	back, err := l.WithParams(l.Params())
	if err != nil {
		t.Fatal(err)
	}
	if back.(LogLogistic) != l {
		t.Errorf("round trip %v -> %v", l, back)
	}
	if _, err := l.WithParams([]float64{1}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestLogLogisticInModelSelection(t *testing.T) {
	// When data IS log-logistic, selection with the extended candidate set
	// must pick it (or lognormal, its closest neighbour at small n).
	truth, _ := NewLogLogistic(900, 2.0)
	data := sampleFrom(truth, 8000, 43)
	fitters := append(DefaultFitters(), LogLogisticFitter{})
	best, err := SelectBest(data, fitters)
	if err != nil {
		t.Fatal(err)
	}
	if best.Family != "loglogistic" {
		t.Errorf("selected %s (KS %v), want loglogistic", best.Family, best.KS)
	}
}
