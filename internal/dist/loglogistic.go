package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// LogLogistic is the log-logistic (Fisk) distribution with scale α > 0 and
// shape β > 0: CDF(x) = 1 / (1 + (x/α)^−β). A standard heavy-tailed
// candidate for repair and execution times; included to stress the model
// selection beyond the paper's four winning families.
type LogLogistic struct {
	Alpha float64 // scale (the median)
	Beta  float64 // shape
}

var (
	_ Distribution = LogLogistic{}
	_ Parametric   = LogLogistic{}
)

// NewLogLogistic returns a log-logistic distribution with the given scale
// and shape.
func NewLogLogistic(alpha, beta float64) (LogLogistic, error) {
	if alpha <= 0 || beta <= 0 || math.IsNaN(alpha) || math.IsNaN(beta) {
		return LogLogistic{}, fmt.Errorf("dist: loglogistic alpha %v / beta %v must be positive", alpha, beta)
	}
	return LogLogistic{Alpha: alpha, Beta: beta}, nil
}

// Name implements Distribution.
func (LogLogistic) Name() string { return "loglogistic" }

// NumParams implements Distribution.
func (LogLogistic) NumParams() int { return 2 }

// PDF implements Distribution.
func (l LogLogistic) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case l.Beta < 1:
			return math.Inf(1)
		case l.Beta == 1:
			return 1 / l.Alpha
		default:
			return 0
		}
	}
	z := x / l.Alpha
	zb := math.Pow(z, l.Beta)
	den := 1 + zb
	return l.Beta / l.Alpha * math.Pow(z, l.Beta-1) / (den * den)
}

// LogPDF implements Distribution.
func (l LogLogistic) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := x / l.Alpha
	return math.Log(l.Beta/l.Alpha) + (l.Beta-1)*math.Log(z) - 2*math.Log1p(math.Pow(z, l.Beta))
}

// CDF implements Distribution.
func (l LogLogistic) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 / (1 + math.Pow(x/l.Alpha, -l.Beta))
}

// Quantile implements Distribution: α (p/(1−p))^{1/β}.
func (l LogLogistic) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	default:
		return l.Alpha * math.Pow(p/(1-p), 1/l.Beta)
	}
}

// Mean implements Distribution. Infinite for β ≤ 1.
func (l LogLogistic) Mean() float64 {
	if l.Beta <= 1 {
		return math.Inf(1)
	}
	b := math.Pi / l.Beta
	return l.Alpha * b / math.Sin(b)
}

// Var implements Distribution. Infinite for β ≤ 2.
func (l LogLogistic) Var() float64 {
	if l.Beta <= 2 {
		return math.Inf(1)
	}
	b := math.Pi / l.Beta
	return l.Alpha * l.Alpha * (2*b/math.Sin(2*b) - b*b/(math.Sin(b)*math.Sin(b)))
}

// Rand implements Distribution by inverse transform.
func (l LogLogistic) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 || u == 1 {
		u = rng.Float64()
	}
	return l.Quantile(u)
}

// Params implements Parametric.
func (l LogLogistic) Params() []float64 { return []float64{l.Alpha, l.Beta} }

// WithParams implements Parametric.
func (LogLogistic) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("loglogistic", p, 2); err != nil {
		return nil, err
	}
	return NewLogLogistic(p[0], p[1])
}

// LogLogisticFitter estimates the log-logistic law. ln X is logistic with
// location ln α and scale 1/β; we estimate by the method of moments on
// ln X (exact for the logistic: variance = π²s²/3) followed by a short
// Newton polish of the shape on the profile likelihood.
type LogLogisticFitter struct{}

var (
	_ Fitter       = LogLogisticFitter{}
	_ SampleFitter = LogLogisticFitter{}
)

// FamilyName implements Fitter.
func (LogLogisticFitter) FamilyName() string { return "loglogistic" }

// Fit implements Fitter.
func (f LogLogisticFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter: the moment seed comes straight from the
// cached log-moments; only the likelihood polish still scans the (sorted)
// data.
func (LogLogisticFitter) FitSample(sm *Sample) (Distribution, error) {
	if _, _, _, err := sm.moments(true); err != nil {
		return nil, fmt.Errorf("fit loglogistic: %w", err)
	}
	mu, variance := sm.MeanLog(), sm.VarLog()
	if variance <= 0 {
		return nil, fmt.Errorf("fit loglogistic: degenerate sample (all values equal)")
	}
	s := math.Sqrt(3 * variance / (math.Pi * math.Pi)) // logistic scale
	alpha := math.Exp(mu)
	beta := 1 / s

	// Newton polish of beta on the log-likelihood of ln X ~ logistic.
	// d/ds is messy; a few coordinate-descent steps on the likelihood are
	// robust and cheap.
	best, err := NewLogLogistic(alpha, beta)
	if err != nil {
		return nil, err
	}
	bestLL := sm.LogLikelihood(best)
	step := 0.15
	for iter := 0; iter < 60; iter++ {
		improved := false
		for _, cand := range []LogLogistic{
			{Alpha: best.Alpha * (1 + step), Beta: best.Beta},
			{Alpha: best.Alpha / (1 + step), Beta: best.Beta},
			{Alpha: best.Alpha, Beta: best.Beta * (1 + step)},
			{Alpha: best.Alpha, Beta: best.Beta / (1 + step)},
		} {
			if ll := sm.LogLikelihood(cand); ll > bestLL {
				bestLL = ll
				best = cand
				improved = true
			}
		}
		if !improved {
			step /= 2
			if step < 1e-5 {
				break
			}
		}
	}
	return best, nil
}
