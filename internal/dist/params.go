package dist

import "fmt"

// Parametric exposes a distribution's parameter vector so generic
// optimizers (the KS-polishing fitter, bootstrap refitters) can perturb a
// law without knowing its family.
type Parametric interface {
	Distribution
	// Params returns the parameter vector (a fresh slice).
	Params() []float64
	// WithParams returns a distribution of the same family with the given
	// parameters, validating them.
	WithParams(p []float64) (Distribution, error)
}

// Interface checks: every family is Parametric.
var (
	_ Parametric = Exponential{}
	_ Parametric = Weibull{}
	_ Parametric = Pareto{}
	_ Parametric = LogNormal{}
	_ Parametric = Gamma{}
	_ Parametric = Erlang{}
	_ Parametric = InverseGaussian{}
	_ Parametric = Normal{}
)

func checkArity(name string, p []float64, want int) error {
	if len(p) != want {
		return fmt.Errorf("dist: %s takes %d parameters, got %d", name, want, len(p))
	}
	return nil
}

// Params implements Parametric.
func (e Exponential) Params() []float64 { return []float64{e.Rate} }

// WithParams implements Parametric.
func (Exponential) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("exponential", p, 1); err != nil {
		return nil, err
	}
	return NewExponential(p[0])
}

// Params implements Parametric.
func (w Weibull) Params() []float64 { return []float64{w.Shape, w.Scale} }

// WithParams implements Parametric.
func (Weibull) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("weibull", p, 2); err != nil {
		return nil, err
	}
	return NewWeibull(p[0], p[1])
}

// Params implements Parametric.
func (p Pareto) Params() []float64 { return []float64{p.Xm, p.Alpha} }

// WithParams implements Parametric.
func (Pareto) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("pareto", p, 2); err != nil {
		return nil, err
	}
	return NewPareto(p[0], p[1])
}

// Params implements Parametric.
func (l LogNormal) Params() []float64 { return []float64{l.Mu, l.Sigma} }

// WithParams implements Parametric.
func (LogNormal) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("lognormal", p, 2); err != nil {
		return nil, err
	}
	return NewLogNormal(p[0], p[1])
}

// Params implements Parametric.
func (g Gamma) Params() []float64 { return []float64{g.Shape, g.Rate} }

// WithParams implements Parametric.
func (Gamma) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("gamma", p, 2); err != nil {
		return nil, err
	}
	return NewGamma(p[0], p[1])
}

// Params implements Parametric. The integer shape is exposed as a float;
// WithParams rounds it back, so optimizers effectively tune only the rate.
func (e Erlang) Params() []float64 { return []float64{float64(e.K), e.Rate} }

// WithParams implements Parametric.
func (Erlang) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("erlang", p, 2); err != nil {
		return nil, err
	}
	k := int(p[0] + 0.5)
	return NewErlang(k, p[1])
}

// Params implements Parametric.
func (ig InverseGaussian) Params() []float64 { return []float64{ig.Mu, ig.Lambda} }

// WithParams implements Parametric.
func (InverseGaussian) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("inverse-gaussian", p, 2); err != nil {
		return nil, err
	}
	return NewInverseGaussian(p[0], p[1])
}

// Params implements Parametric.
func (n Normal) Params() []float64 { return []float64{n.Mu, n.Sigma} }

// WithParams implements Parametric.
func (Normal) WithParams(p []float64) (Distribution, error) {
	if err := checkArity("normal", p, 2); err != nil {
		return nil, err
	}
	return NewNormal(p[0], p[1])
}
