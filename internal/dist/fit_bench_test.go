package dist_test

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/joblog"
	"repro/internal/sim"
)

// The paired BenchmarkFitLegacy/BenchmarkFitSample benchmarks measure the
// full model-selection hot path — fit every candidate family, rank by KS,
// KS-polish the winner — over the same 150-day corpus series.
//
// The legacy side composes the slice entry points exactly the way the
// experiments used to: each family pays its own copy+sort for the KS and AD
// statistics, the log-likelihood is rescanned for LogL/AIC/BIC, and the
// Erlang profile search evaluates an O(n) likelihood per candidate shape
// (the pre-Sample cost profile). The Sample side sorts once and reads every
// statistic off the precomputed sufficient statistics. BenchmarkFitSample
// reports "speedup": the median of three legacy runs divided by the
// per-iteration Sample time, following the Serial/Parallel pairing
// convention of the earlier PR benches. Both sides run serially (workers=1)
// so the ratio isolates the algorithmic gain, not parallel fan-out.

var (
	benchSeriesOnce sync.Once
	benchSeriesData []float64
	benchSeriesErr  error
)

// benchSeries extracts the failed-job runtime series of the largest exit
// family from a 150-day corpus, generated once per process.
func benchSeries(b testing.TB) []float64 {
	b.Helper()
	benchSeriesOnce.Do(func() {
		cfg := sim.SmallConfig()
		cfg.Days = 150
		c, err := sim.Generate(cfg)
		if err != nil {
			benchSeriesErr = err
			return
		}
		byFamily := map[joblog.ExitFamily][]float64{}
		for i := range c.Jobs {
			j := &c.Jobs[i]
			if j.Outcome() != joblog.OutcomeFailure {
				continue
			}
			if sec := j.Runtime().Seconds(); sec > 0 {
				fam := joblog.Family(j.ExitStatus)
				byFamily[fam] = append(byFamily[fam], sec)
			}
		}
		for _, s := range byFamily {
			if len(s) > len(benchSeriesData) {
				benchSeriesData = s
			}
		}
		if len(benchSeriesData) > 50000 {
			benchSeriesData = benchSeriesData[:50000]
		}
	})
	if benchSeriesErr != nil {
		b.Fatal(benchSeriesErr)
	}
	if len(benchSeriesData) < 100 {
		b.Fatalf("largest failure family has only %d samples", len(benchSeriesData))
	}
	return benchSeriesData
}

// legacyErlangFit reproduces the pre-Sample Erlang profile search: one full
// O(n) likelihood scan per candidate shape.
func legacyErlangFit(data []float64) (dist.Distribution, error) {
	sum := 0.0
	for _, x := range data {
		if x <= 0 {
			return nil, dist.ErrBadSample
		}
		sum += x
	}
	mean := sum / float64(len(data))
	const maxK = 50
	bestLL := math.Inf(-1)
	var best dist.Erlang
	for k := 1; k <= maxK; k++ {
		e := dist.Erlang{K: k, Rate: float64(k) / mean}
		if ll := dist.LogLikelihood(e, data); ll > bestLL {
			bestLL = ll
			best = e
		}
	}
	return best, nil
}

// legacyWeibullFit reproduces the pre-Sample Weibull estimator: Newton on
// the profile-likelihood shape equation with a numeric derivative — three
// full math.Pow passes over the data per iteration (the Sample path
// precomputes the logs once and uses one analytic-derivative pass).
func legacyWeibullFit(data []float64) (dist.Distribution, error) {
	n := len(data)
	var sum, sumSq, meanLog float64
	for _, x := range data {
		if x <= 0 {
			return nil, dist.ErrBadSample
		}
		sum += x
		sumSq += x * x
		meanLog += math.Log(x)
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	meanLog /= float64(n)

	k := 1.0
	if variance > 0 {
		k = math.Pow(mean/math.Sqrt(variance), 1.086)
	}
	if k <= 0.02 || math.IsNaN(k) {
		k = 0.5
	}
	g := func(k float64) float64 {
		var sxk, sxkl float64
		for _, x := range data {
			xk := math.Pow(x, k)
			sxk += xk
			sxkl += xk * math.Log(x)
		}
		return sxkl/sxk - 1/k - meanLog
	}
	const tol = 1e-10
	for iter := 0; iter < 100; iter++ {
		gk := g(k)
		if math.Abs(gk) < tol {
			break
		}
		h := 1e-6 * math.Max(1, k)
		dg := (g(k+h) - g(k-h)) / (2 * h)
		if dg == 0 || math.IsNaN(dg) {
			break
		}
		next := k - gk/dg
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < tol*math.Max(1, k) {
			k = next
			break
		}
		k = next
	}
	sxk := 0.0
	for _, x := range data {
		sxk += math.Pow(x, k)
	}
	return dist.NewWeibull(k, math.Pow(sxk/float64(n), 1/k))
}

// legacyFitAll composes the slice APIs per family: per-statistic copy+sort
// (KSStatistic, ADStatistic) and per-criterion likelihood scans (LogL, AIC,
// BIC), serially, with the same ranking as FitAll. The Erlang and Weibull
// fits — the two whose estimators the Sample path restructured — use
// faithful reconstructions of the pre-Sample algorithms.
func legacyFitAll(data []float64) []dist.FitResult {
	fitters := dist.DefaultFitters()
	results := make([]dist.FitResult, len(fitters))
	for i, f := range fitters {
		r := dist.FitResult{Family: f.FamilyName()}
		var d dist.Distribution
		var err error
		switch f.(type) {
		case dist.ErlangFitter:
			d, err = legacyErlangFit(data)
		case dist.WeibullFitter:
			d, err = legacyWeibullFit(data)
		default:
			d, err = f.Fit(data)
		}
		if err != nil {
			r.Err = err
			r.KS, r.AD, r.AIC, r.BIC = math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
			r.LogL = math.Inf(-1)
			results[i] = r
			continue
		}
		r.Dist = d
		r.KS = dist.KSStatistic(d, data)
		r.AD = dist.ADStatistic(d, data)
		r.PValue = dist.KolmogorovPValue(r.KS, len(data))
		r.LogL = dist.LogLikelihood(d, data)
		r.AIC = dist.AIC(d, data)
		r.BIC = dist.BIC(d, data)
		results[i] = r
	}
	sort.SliceStable(results, func(i, j int) bool {
		ri, rj := results[i], results[j]
		if ri.Err != nil {
			return false
		}
		if rj.Err != nil {
			return true
		}
		if ri.KS != rj.KS {
			return ri.KS < rj.KS
		}
		return ri.AIC < rj.AIC
	})
	return results
}

// legacyKSPolish reproduces the pre-Sample coordinate descent: its own
// copy+sort of the data, a fresh candidate slice per perturbation, and a
// full KS scan for every candidate (no branch-and-bound abort).
func legacyKSPolish(d dist.Parametric, data []float64, iters int) (dist.Distribution, float64) {
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	best := dist.Distribution(d)
	bestKS := dist.KSStatisticSorted(best, sorted)
	params := d.Params()
	step := 0.25
	for sweep := 0; sweep < iters; sweep++ {
		improved := false
		for i := range params {
			for _, dir := range []float64{1 + step, 1 / (1 + step)} {
				cand := append([]float64(nil), params...)
				if cand[i] == 0 {
					cand[i] = dir - 1
				} else {
					cand[i] *= dir
				}
				nd, err := d.WithParams(cand)
				if err != nil {
					continue
				}
				if ks := dist.KSStatisticSorted(nd, sorted); ks < bestKS {
					bestKS = ks
					best = nd
					params = cand
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
			if step < 1e-4 {
				break
			}
		}
	}
	return best, bestKS
}

func legacySelectAndPolish(b testing.TB, data []float64) float64 {
	results := legacyFitAll(data)
	best := results[0]
	if best.Err != nil {
		b.Fatal(best.Err)
	}
	p, ok := best.Dist.(dist.Parametric)
	if !ok {
		return best.KS
	}
	_, ks := legacyKSPolish(p, data, 20)
	return ks
}

func sampleSelectAndPolish(b testing.TB, data []float64) float64 {
	s := dist.NewSample(data)
	results := dist.FitAllSampleParallel(s, nil, 1)
	best := results[0]
	if best.Err != nil {
		b.Fatal(best.Err)
	}
	p, ok := best.Dist.(dist.Parametric)
	if !ok {
		return best.KS
	}
	_, ks, err := dist.KSPolishSample(p, s, 20)
	if err != nil {
		b.Fatal(err)
	}
	return ks
}

func BenchmarkFitLegacy(b *testing.B) {
	data := benchSeries(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = legacySelectAndPolish(b, data)
	}
}

func BenchmarkFitSample(b *testing.B) {
	data := benchSeries(b)
	// Median of three legacy runs sampled outside the timer: the baseline
	// for the speedup metric, robust to a single scheduling stall.
	var samples []time.Duration
	for i := 0; i < 3; i++ {
		runtime.GC()
		t0 := time.Now()
		_ = legacySelectAndPolish(b, data)
		samples = append(samples, time.Since(t0))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	legacy := samples[1]

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sampleSelectAndPolish(b, data)
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(legacy.Nanoseconds())/perIter, "speedup")
	}
}

// TestLegacyAndSamplePathsAgree guards the benchmark pair itself: both
// sides must select the same family and land on the same polished KS, so
// the speedup compares equal work.
func TestLegacyAndSamplePathsAgree(t *testing.T) {
	data := benchSeries(t)
	legacy := legacyFitAll(data)
	viaSample := dist.FitAllSampleParallel(dist.NewSample(data), nil, 1)
	if legacy[0].Family != viaSample[0].Family {
		t.Fatalf("winners differ: legacy %s, sample %s", legacy[0].Family, viaSample[0].Family)
	}
	// The reconstructed legacy Weibull solves the shape equation with a
	// numeric derivative, so its root can differ from the analytic-derivative
	// path in the last few ulps; the KS statistics must still agree to well
	// below any model-selection margin.
	if d := math.Abs(legacy[0].KS - viaSample[0].KS); d > 1e-9 {
		t.Fatalf("winner KS differs by %v: legacy %v, sample %v", d, legacy[0].KS, viaSample[0].KS)
	}
}
