package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the exponential distribution with rate λ > 0
// (mean 1/λ), the memoryless baseline for interruption intervals.
type Exponential struct {
	Rate float64
}

var _ Distribution = Exponential{}

// NewExponential returns an exponential distribution with the given rate.
func NewExponential(rate float64) (Exponential, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate %v must be positive and finite", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Name implements Distribution.
func (Exponential) Name() string { return "exponential" }

// NumParams implements Distribution.
func (Exponential) NumParams() int { return 1 }

// PDF implements Distribution.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// LogPDF implements Distribution.
func (e Exponential) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Log(e.Rate) - e.Rate*x
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	default:
		return -math.Log1p(-p) / e.Rate
	}
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var implements Distribution.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// Rand implements Distribution.
func (e Exponential) Rand(rng *rand.Rand) float64 { return rng.ExpFloat64() / e.Rate }

// ExponentialFitter estimates an exponential law by MLE (λ̂ = 1/mean).
type ExponentialFitter struct{}

var (
	_ Fitter       = ExponentialFitter{}
	_ SampleFitter = ExponentialFitter{}
)

// FamilyName implements Fitter.
func (ExponentialFitter) FamilyName() string { return "exponential" }

// Fit implements Fitter.
func (f ExponentialFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter: the MLE is closed-form in the cached
// mean, so the fit touches no data.
func (ExponentialFitter) FitSample(s *Sample) (Distribution, error) {
	_, mean, _, err := s.moments(true)
	if err != nil {
		return nil, fmt.Errorf("fit exponential: %w", err)
	}
	return NewExponential(1 / mean)
}
