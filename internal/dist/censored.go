package dist

import (
	"fmt"
	"math"
)

// CensoredObservation is a duration with an event indicator for parametric
// censored fitting (false = right-censored: the event had not happened yet
// when observation stopped).
type CensoredObservation struct {
	Time     float64
	Observed bool
}

// FitCensoredWeibull estimates Weibull parameters by maximum likelihood
// from right-censored data:
//
//	log L = Σ_obs [ln f(x)] + Σ_cens [ln S(x)]
//
// Profiling out the scale gives λ̂^k = Σ_all x_i^k / n_obs, and the shape
// solves
//
//	Σ_all x^k ln x / Σ_all x^k − 1/k − mean_obs(ln x) = 0,
//
// the censored generalization of the uncensored Weibull MLE equation.
// This is the parametric counterpart of the Kaplan–Meier estimator: on
// job-failure data it recovers the infant-mortality shape (k < 1) directly
// from the censored stream.
func FitCensoredWeibull(obs []CensoredObservation) (Weibull, error) {
	var nObs int
	var meanLogObs float64
	for _, o := range obs {
		if o.Time <= 0 || math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
			return Weibull{}, fmt.Errorf("fit censored weibull: %w", ErrBadSample)
		}
		if o.Observed {
			nObs++
			meanLogObs += math.Log(o.Time)
		}
	}
	if len(obs) < 2 {
		return Weibull{}, fmt.Errorf("fit censored weibull: %w", ErrTooFewPoints)
	}
	if nObs < 2 {
		return Weibull{}, fmt.Errorf("fit censored weibull: need ≥2 observed events, have %d", nObs)
	}
	meanLogObs /= float64(nObs)

	g := func(k float64) float64 {
		var sxk, sxkl float64
		for _, o := range obs {
			xk := math.Pow(o.Time, k)
			sxk += xk
			sxkl += xk * math.Log(o.Time)
		}
		return sxkl/sxk - 1/k - meanLogObs
	}

	// Newton with numeric derivative, bisection fallback (g is increasing).
	k := 1.0
	const tol = 1e-10
	converged := false
	for iter := 0; iter < 100; iter++ {
		gk := g(k)
		if math.Abs(gk) < tol {
			converged = true
			break
		}
		h := 1e-6 * math.Max(1, k)
		dg := (g(k+h) - g(k-h)) / (2 * h)
		if dg == 0 || math.IsNaN(dg) {
			break
		}
		next := k - gk/dg
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < tol*math.Max(1, k) {
			k = next
			converged = true
			break
		}
		k = next
	}
	if !converged {
		lo, hi := 1e-3, 100.0
		if g(lo) > 0 || g(hi) < 0 {
			return Weibull{}, fmt.Errorf("fit censored weibull: shape equation has no root in [%g,%g]", lo, hi)
		}
		for iter := 0; iter < 200; iter++ {
			k = (lo + hi) / 2
			if g(k) > 0 {
				hi = k
			} else {
				lo = k
			}
			if hi-lo < tol {
				break
			}
		}
	}

	var sxk float64
	for _, o := range obs {
		sxk += math.Pow(o.Time, k)
	}
	scale := math.Pow(sxk/float64(nObs), 1/k)
	return NewWeibull(k, scale)
}

// CensoredLogLikelihood evaluates the right-censored log-likelihood of d
// on the observations.
func CensoredLogLikelihood(d Distribution, obs []CensoredObservation) float64 {
	ll := 0.0
	for _, o := range obs {
		if o.Observed {
			ll += d.LogPDF(o.Time)
		} else {
			s := 1 - d.CDF(o.Time)
			if s <= 0 {
				return math.Inf(-1)
			}
			ll += math.Log(s)
		}
	}
	return ll
}
