package dist

import (
	"fmt"
	"math"
)

// CensoredObservation is a duration with an event indicator for parametric
// censored fitting (false = right-censored: the event had not happened yet
// when observation stopped).
type CensoredObservation struct {
	Time     float64
	Observed bool
}

// FitCensoredWeibull estimates Weibull parameters by maximum likelihood
// from right-censored data:
//
//	log L = Σ_obs [ln f(x)] + Σ_cens [ln S(x)]
//
// Profiling out the scale gives λ̂^k = Σ_all x_i^k / n_obs, and the shape
// solves
//
//	Σ_all x^k ln x / Σ_all x^k − 1/k − mean_obs(ln x) = 0,
//
// the censored generalization of the uncensored Weibull MLE equation.
// This is the parametric counterpart of the Kaplan–Meier estimator: on
// job-failure data it recovers the infant-mortality shape (k < 1) directly
// from the censored stream.
func FitCensoredWeibull(obs []CensoredObservation) (Weibull, error) {
	// Hoist the times and their logarithms into flat arrays once: the shape
	// equation is evaluated O(iterations) times and ln x does not depend on
	// k, so caching it removes one transcendental per sample per evaluation
	// (and the flat float64 arrays scan with half the stride of the
	// observation structs). The summation order and every arithmetic step of
	// g are unchanged, so the fitted parameters are bit-identical.
	times := make([]float64, len(obs))
	logs := make([]float64, len(obs))
	var nObs int
	var meanLogObs float64
	for i, o := range obs {
		if o.Time <= 0 || math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
			return Weibull{}, fmt.Errorf("fit censored weibull: %w", ErrBadSample)
		}
		times[i] = o.Time
		logs[i] = math.Log(o.Time)
		if o.Observed {
			nObs++
			meanLogObs += logs[i]
		}
	}
	if len(obs) < 2 {
		return Weibull{}, fmt.Errorf("fit censored weibull: %w", ErrTooFewPoints)
	}
	if nObs < 2 {
		return Weibull{}, fmt.Errorf("fit censored weibull: need ≥2 observed events, have %d", nObs)
	}
	meanLogObs /= float64(nObs)

	g := func(k float64) float64 {
		var sxk, sxkl float64
		for i, t := range times {
			xk := math.Pow(t, k)
			sxk += xk
			sxkl += xk * logs[i]
		}
		return sxkl/sxk - 1/k - meanLogObs
	}
	// gTriple evaluates g at k, k+h and k−h in a single sweep of the sample
	// arrays. Each of the six sums has its own accumulator fed in the same
	// element order as three separate g calls, and the final expressions are
	// unchanged, so the results carry the exact same bits — only the two
	// extra array traversals per Newton step disappear.
	gTriple := func(k, h float64) (gk, gp, gm float64) {
		kp, km := k+h, k-h
		var sxk, sxkl, sxkp, sxklp, sxkm, sxklm float64
		for i, t := range times {
			l := logs[i]
			xk := math.Pow(t, k)
			sxk += xk
			sxkl += xk * l
			xp := math.Pow(t, kp)
			sxkp += xp
			sxklp += xp * l
			xm := math.Pow(t, km)
			sxkm += xm
			sxklm += xm * l
		}
		gk = sxkl/sxk - 1/k - meanLogObs
		gp = sxklp/sxkp - 1/kp - meanLogObs
		gm = sxklm/sxkm - 1/km - meanLogObs
		return gk, gp, gm
	}

	// Newton with numeric derivative, bisection fallback (g is increasing).
	k := 1.0
	const tol = 1e-10
	converged := false
	for iter := 0; iter < 100; iter++ {
		h := 1e-6 * math.Max(1, k)
		gk, gp, gm := gTriple(k, h)
		if math.Abs(gk) < tol {
			converged = true
			break
		}
		dg := (gp - gm) / (2 * h)
		if dg == 0 || math.IsNaN(dg) {
			break
		}
		next := k - gk/dg
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < tol*math.Max(1, k) {
			k = next
			converged = true
			break
		}
		k = next
	}
	if !converged {
		lo, hi := 1e-3, 100.0
		if g(lo) > 0 || g(hi) < 0 {
			return Weibull{}, fmt.Errorf("fit censored weibull: shape equation has no root in [%g,%g]", lo, hi)
		}
		for iter := 0; iter < 200; iter++ {
			k = (lo + hi) / 2
			if g(k) > 0 {
				hi = k
			} else {
				lo = k
			}
			if hi-lo < tol {
				break
			}
		}
	}

	var sxk float64
	for _, t := range times {
		sxk += math.Pow(t, k)
	}
	scale := math.Pow(sxk/float64(nObs), 1/k)
	return NewWeibull(k, scale)
}

// CensoredLogLikelihood evaluates the right-censored log-likelihood of d
// on the observations.
func CensoredLogLikelihood(d Distribution, obs []CensoredObservation) float64 {
	ll := 0.0
	for _, o := range obs {
		if o.Observed {
			ll += d.LogPDF(o.Time)
		} else {
			s := 1 - d.CDF(o.Time)
			if s <= 0 {
				return math.Inf(-1)
			}
			ll += math.Log(s)
		}
	}
	return ll
}
