package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Weibull is the Weibull distribution with shape k > 0 and scale λ > 0.
// Shape k < 1 models the "infant mortality" pattern of jobs that crash
// early — the paper's best fit for several user-error exit codes.
type Weibull struct {
	Shape float64 // k
	Scale float64 // λ
}

var _ Distribution = Weibull{}

// NewWeibull returns a Weibull distribution with the given shape and scale.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) || math.IsNaN(scale) {
		return Weibull{}, fmt.Errorf("dist: weibull shape %v / scale %v must be positive", shape, scale)
	}
	return Weibull{Shape: shape, Scale: scale}, nil
}

// Name implements Distribution.
func (Weibull) Name() string { return "weibull" }

// NumParams implements Distribution.
func (Weibull) NumParams() int { return 2 }

// PDF implements Distribution.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if w.Shape < 1 {
			return math.Inf(1)
		}
		if w.Shape == 1 {
			return 1 / w.Scale
		}
		return 0
	}
	z := x / w.Scale
	return w.Shape / w.Scale * math.Pow(z, w.Shape-1) * math.Exp(-math.Pow(z, w.Shape))
}

// LogPDF implements Distribution.
func (w Weibull) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := x / w.Scale
	return math.Log(w.Shape/w.Scale) + (w.Shape-1)*math.Log(z) - math.Pow(z, w.Shape)
}

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

// Quantile implements Distribution.
func (w Weibull) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	default:
		return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
	}
}

// Mean implements Distribution.
func (w Weibull) Mean() float64 {
	return w.Scale * math.Exp(lnGamma(1+1/w.Shape))
}

// Var implements Distribution.
func (w Weibull) Var() float64 {
	g1 := math.Exp(lnGamma(1 + 1/w.Shape))
	g2 := math.Exp(lnGamma(1 + 2/w.Shape))
	return w.Scale * w.Scale * (g2 - g1*g1)
}

// Rand implements Distribution.
func (w Weibull) Rand(rng *rand.Rand) float64 {
	// Inverse transform on an Exp(1) variate: X = λ E^{1/k}.
	return w.Scale * math.Pow(rng.ExpFloat64(), 1/w.Shape)
}

// WeibullFitter estimates Weibull parameters by maximum likelihood. The
// profile-likelihood equation for the shape,
//
//	g(k) = Σ x_i^k ln x_i / Σ x_i^k − 1/k − mean(ln x) = 0,
//
// is solved by Newton–Raphson with a bisection fallback; the scale then has
// the closed form λ̂ = (Σ x_i^k / n)^{1/k}.
type WeibullFitter struct{}

var (
	_ Fitter       = WeibullFitter{}
	_ SampleFitter = WeibullFitter{}
)

// FamilyName implements Fitter.
func (WeibullFitter) FamilyName() string { return "weibull" }

// Fit implements Fitter.
func (f WeibullFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter. The shape equation still needs Σx^k
// per iteration (it is not linear in the sufficient statistics), but the
// Sample engine cuts the cost three ways: ln x is computed once and reused
// so each x^k is one Exp instead of a Pow, the derivative g′ is analytic
// (g, g′ share a single data pass where the numeric derivative needed
// three), and mean/variance/mean-log come from the cached statistics.
func (WeibullFitter) FitSample(s *Sample) (Distribution, error) {
	n, mean, variance, err := s.moments(true)
	if err != nil {
		return nil, fmt.Errorf("fit weibull: %w", err)
	}
	meanLog := s.MeanLog()
	logs := make([]float64, n)
	for i, x := range s.Sorted() {
		logs[i] = math.Log(x)
	}

	// Moment-based starting point: CV relates to shape via
	// CV² = Γ(1+2/k)/Γ(1+1/k)² − 1; the crude inversion k ≈ (mean/sd)^1.086
	// (Justus 1978) is good enough to seed Newton.
	k := 1.0
	if variance > 0 {
		k = math.Pow(mean/math.Sqrt(variance), 1.086)
	}
	if k <= 0.02 || math.IsNaN(k) {
		k = 0.5
	}

	// One pass evaluates g(k) = Σx^k ln x / Σx^k − 1/k − mean(ln x) and its
	// analytic derivative g′(k) = Var-like term + 1/k², with x^k = e^{k·ln x}.
	gAndDeriv := func(k float64) (g, dg float64) {
		var sxk, sxkl, sxkl2 float64
		for _, lx := range logs {
			xk := math.Exp(k * lx)
			xkl := xk * lx
			sxk += xk
			sxkl += xkl
			sxkl2 += xkl * lx
		}
		r := sxkl / sxk
		return r - 1/k - meanLog, sxkl2/sxk - r*r + 1/(k*k)
	}
	g := func(k float64) float64 {
		var sxk, sxkl float64
		for _, lx := range logs {
			xk := math.Exp(k * lx)
			sxk += xk
			sxkl += xk * lx
		}
		return sxkl/sxk - 1/k - meanLog
	}

	const tol = 1e-10
	converged := false
	for iter := 0; iter < 100; iter++ {
		gk, dg := gAndDeriv(k)
		if math.Abs(gk) < tol {
			converged = true
			break
		}
		if dg == 0 || math.IsNaN(dg) {
			break
		}
		next := k - gk/dg
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < tol*math.Max(1, k) {
			k = next
			converged = true
			break
		}
		k = next
	}
	if !converged {
		// Bisection fallback: g is increasing in k for positive samples.
		lo, hi := 1e-3, 100.0
		if g(lo) > 0 || g(hi) < 0 {
			return nil, fmt.Errorf("fit weibull: shape equation has no root in [%g,%g]", lo, hi)
		}
		for iter := 0; iter < 200; iter++ {
			k = (lo + hi) / 2
			if g(k) > 0 {
				hi = k
			} else {
				lo = k
			}
			if hi-lo < tol {
				break
			}
		}
	}

	sxk := 0.0
	for _, lx := range logs {
		sxk += math.Exp(k * lx)
	}
	scale := math.Pow(sxk/float64(n), 1/k)
	return NewWeibull(k, scale)
}
