package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Gamma is the gamma distribution with shape k > 0 and rate β > 0
// (mean k/β). Erlang is its integer-shape special case.
type Gamma struct {
	Shape float64 // k
	Rate  float64 // β
}

var _ Distribution = Gamma{}

// NewGamma returns a gamma distribution with the given shape and rate.
func NewGamma(shape, rate float64) (Gamma, error) {
	if shape <= 0 || rate <= 0 || math.IsNaN(shape) || math.IsNaN(rate) {
		return Gamma{}, fmt.Errorf("dist: gamma shape %v / rate %v must be positive", shape, rate)
	}
	return Gamma{Shape: shape, Rate: rate}, nil
}

// Name implements Distribution.
func (Gamma) Name() string { return "gamma" }

// NumParams implements Distribution.
func (Gamma) NumParams() int { return 2 }

// PDF implements Distribution.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.Shape < 1:
			return math.Inf(1)
		case g.Shape == 1:
			return g.Rate
		default:
			return 0
		}
	}
	return math.Exp(g.LogPDF(x))
}

// LogPDF implements Distribution.
func (g Gamma) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return g.Shape*math.Log(g.Rate) + (g.Shape-1)*math.Log(x) - g.Rate*x - lnGamma(g.Shape)
}

// CDF implements Distribution.
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(g.Shape, g.Rate*x)
}

// Quantile implements Distribution. Solved by bisection on the CDF (the
// incomplete-gamma inverse has no closed form).
func (g Gamma) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	// Bracket: start at mean, expand.
	hi := g.Mean()
	if hi <= 0 || math.IsInf(hi, 0) {
		hi = 1
	}
	for g.CDF(hi) < p {
		hi *= 2
		if hi > 1e300 {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*math.Max(1, hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// Mean implements Distribution.
func (g Gamma) Mean() float64 { return g.Shape / g.Rate }

// Var implements Distribution.
func (g Gamma) Var() float64 { return g.Shape / (g.Rate * g.Rate) }

// Rand implements Distribution. Uses Marsaglia–Tsang for shape ≥ 1 and the
// boost x·U^{1/k} for shape < 1.
func (g Gamma) Rand(rng *rand.Rand) float64 {
	k := g.Shape
	boost := 1.0
	if k < 1 {
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v / g.Rate
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v / g.Rate
		}
	}
}

// GammaFitter estimates gamma parameters by maximum likelihood using the
// Minka (2002) fixed-point/Newton update on the shape:
//
//	1/k_{t+1} = 1/k_t + (ln k̄ − ψ(k_t) − s) / (k_t² (1/k_t − ψ′(k_t)))
//
// where s = ln(mean) − mean(ln x).
type GammaFitter struct{}

var (
	_ Fitter       = GammaFitter{}
	_ SampleFitter = GammaFitter{}
)

// FamilyName implements Fitter.
func (GammaFitter) FamilyName() string { return "gamma" }

// Fit implements Fitter.
func (f GammaFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter: the Minka iteration consumes only the
// cached mean and mean-log, so the fit is O(iterations) with no data pass.
func (GammaFitter) FitSample(sm *Sample) (Distribution, error) {
	_, mean, _, err := sm.moments(true)
	if err != nil {
		return nil, fmt.Errorf("fit gamma: %w", err)
	}
	meanLog := sm.MeanLog()
	s := math.Log(mean) - meanLog
	if s <= 0 {
		return nil, fmt.Errorf("fit gamma: degenerate sample (zero log-spread)")
	}
	// Initial approximation (Minka).
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	if k <= 0 || math.IsNaN(k) {
		k = 0.5
	}
	for iter := 0; iter < 200; iter++ {
		num := math.Log(k) - digamma(k) - s
		den := k * k * (1/k - trigamma(k))
		next := 1 / (1/k + num/den)
		if next <= 0 || math.IsNaN(next) {
			break
		}
		if math.Abs(next-k) < 1e-12*math.Max(1, k) {
			k = next
			break
		}
		k = next
	}
	return NewGamma(k, k/mean)
}

// Erlang is the Erlang distribution: a gamma law with integer shape k ≥ 1.
// The paper reports Erlang/exponential as the best fit for some exit-code
// families; Erlang with k=1 is exactly exponential.
type Erlang struct {
	K    int     // integer shape ≥ 1
	Rate float64 // β > 0
}

var _ Distribution = Erlang{}

// NewErlang returns an Erlang distribution with integer shape k and rate.
func NewErlang(k int, rate float64) (Erlang, error) {
	if k < 1 {
		return Erlang{}, fmt.Errorf("dist: erlang shape %d must be ≥ 1", k)
	}
	if rate <= 0 || math.IsNaN(rate) {
		return Erlang{}, fmt.Errorf("dist: erlang rate %v must be positive", rate)
	}
	return Erlang{K: k, Rate: rate}, nil
}

func (e Erlang) gamma() Gamma { return Gamma{Shape: float64(e.K), Rate: e.Rate} }

// Name implements Distribution.
func (Erlang) Name() string { return "erlang" }

// NumParams implements Distribution.
func (Erlang) NumParams() int { return 2 }

// PDF implements Distribution.
func (e Erlang) PDF(x float64) float64 { return e.gamma().PDF(x) }

// LogPDF implements Distribution.
func (e Erlang) LogPDF(x float64) float64 { return e.gamma().LogPDF(x) }

// CDF implements Distribution.
func (e Erlang) CDF(x float64) float64 { return e.gamma().CDF(x) }

// Quantile implements Distribution.
func (e Erlang) Quantile(p float64) float64 { return e.gamma().Quantile(p) }

// Mean implements Distribution.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// Var implements Distribution.
func (e Erlang) Var() float64 { return float64(e.K) / (e.Rate * e.Rate) }

// Rand implements Distribution. Sum of K exponentials.
func (e Erlang) Rand(rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < e.K; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / e.Rate
}

// ErlangFitter estimates the Erlang law by profile maximum likelihood: for
// each integer shape k in [1, maxK] the rate MLE is k/mean; the k with the
// highest log-likelihood wins.
type ErlangFitter struct {
	// MaxK bounds the shape search; 0 means the default of 50.
	MaxK int
}

var (
	_ Fitter       = ErlangFitter{}
	_ SampleFitter = ErlangFitter{}
)

// FamilyName implements Fitter.
func (ErlangFitter) FamilyName() string { return "erlang" }

// Fit implements Fitter.
func (f ErlangFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter. The Erlang log-likelihood is linear in
// the sufficient statistics (n·k·lnβ + (k−1)Σln x − βΣx − n·lnΓ(k)), so the
// profile search over shapes is O(maxK) instead of the slice path's
// O(maxK·n) — the single largest win of the sorted-sample engine.
func (f ErlangFitter) FitSample(s *Sample) (Distribution, error) {
	_, mean, _, err := s.moments(true)
	if err != nil {
		return nil, fmt.Errorf("fit erlang: %w", err)
	}
	maxK := f.MaxK
	if maxK <= 0 {
		maxK = 50
	}
	bestLL := math.Inf(-1)
	var best Erlang
	for k := 1; k <= maxK; k++ {
		e := Erlang{K: k, Rate: float64(k) / mean}
		ll := s.gammaLogLikelihood(float64(k), e.Rate)
		if ll > bestLL {
			bestLL = ll
			best = e
		}
	}
	if math.IsInf(bestLL, -1) {
		return nil, fmt.Errorf("fit erlang: no finite-likelihood shape in [1,%d]", maxK)
	}
	return best, nil
}
