package dist

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| between the empirical CDF of data and the
// distribution d. The input need not be sorted.
func KSStatistic(d Distribution, data []float64) float64 {
	n := len(data)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, data)
	sort.Float64s(sorted)
	maxD := 0.0
	for i, x := range sorted {
		f := d.CDF(x)
		lo := math.Abs(f - float64(i)/float64(n))
		hi := math.Abs(float64(i+1)/float64(n) - f)
		if lo > maxD {
			maxD = lo
		}
		if hi > maxD {
			maxD = hi
		}
	}
	return maxD
}

// ADStatistic returns the Anderson–Darling statistic A² of the sample
// against d. AD weights the tails more heavily than KS, so the two
// statistics disagreeing flags a tail mismatch. Returns NaN for an empty
// sample or +Inf when a point falls outside d's support (F = 0 or 1).
func ADStatistic(d Distribution, data []float64) float64 {
	n := len(data)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, data)
	sort.Float64s(sorted)
	sum := 0.0
	for i := 0; i < n; i++ {
		fi := d.CDF(sorted[i])
		fj := d.CDF(sorted[n-1-i])
		if fi <= 0 || fj >= 1 {
			return math.Inf(1)
		}
		sum += float64(2*i+1) * (math.Log(fi) + math.Log1p(-fj))
	}
	return -float64(n) - sum/float64(n)
}

// FitResult is the outcome of fitting one candidate family to a sample.
type FitResult struct {
	Family string       // family name, e.g. "weibull"
	Dist   Distribution // the fitted distribution (nil if Err != nil)
	KS     float64      // one-sample KS statistic
	AD     float64      // Anderson–Darling A² (tail-sensitive check)
	PValue float64      // asymptotic KS p-value
	LogL   float64      // log-likelihood
	AIC    float64
	BIC    float64
	Err    error // non-nil if the family could not be fitted
}

// DefaultFitters returns the candidate set the paper's model selection uses:
// exponential, Erlang, gamma, Weibull, Pareto, lognormal, inverse Gaussian.
func DefaultFitters() []Fitter {
	return []Fitter{
		ExponentialFitter{},
		ErlangFitter{},
		GammaFitter{},
		WeibullFitter{},
		ParetoFitter{},
		LogNormalFitter{},
		InverseGaussianFitter{},
	}
}

// FitAll fits every candidate family to data and returns the results ranked
// best-first by KS statistic (the paper's goodness-of-fit criterion), with
// AIC as a tiebreaker. Families that fail to fit sort last and carry Err.
// The candidates are fitted concurrently on all cores; use FitAllParallel
// to bound the worker count.
func FitAll(data []float64, fitters []Fitter) []FitResult {
	return FitAllParallel(data, fitters, 0)
}

// FitAllParallel is FitAll with an explicit worker bound (≤ 0 means
// GOMAXPROCS). Each candidate family's fit + goodness-of-fit statistics are
// independent, so they fan out across the pool; results land in the slot of
// their fitter and the final stable sort is unchanged, making the ranking
// identical to the serial path for any worker count.
func FitAllParallel(data []float64, fitters []Fitter, workers int) []FitResult {
	if len(fitters) == 0 {
		fitters = DefaultFitters()
	}
	results := make([]FitResult, len(fitters))
	if err := par.ForEach(context.Background(), len(fitters), workers, func(i int) error {
		results[i] = fitOne(fitters[i], data)
		return nil
	}); err != nil {
		// fitOne reports failures through FitResult.Err; the only error
		// ForEach can surface here is a captured panic in a fitter.
		panic(err)
	}
	sort.SliceStable(results, func(i, j int) bool {
		ri, rj := results[i], results[j]
		if ri.Err != nil && rj.Err != nil {
			return false
		}
		if ri.Err != nil {
			return false
		}
		if rj.Err != nil {
			return true
		}
		if ri.KS != rj.KS {
			return ri.KS < rj.KS
		}
		return ri.AIC < rj.AIC
	})
	return results
}

// fitOne fits a single candidate family and computes its goodness-of-fit
// statistics.
func fitOne(f Fitter, data []float64) FitResult {
	r := FitResult{Family: f.FamilyName()}
	d, err := f.Fit(data)
	if err != nil {
		r.Err = err
		r.KS = math.Inf(1)
		r.AD = math.Inf(1)
		r.AIC = math.Inf(1)
		r.BIC = math.Inf(1)
		r.LogL = math.Inf(-1)
		return r
	}
	r.Dist = d
	r.KS = KSStatistic(d, data)
	r.AD = ADStatistic(d, data)
	r.PValue = KolmogorovPValue(r.KS, len(data))
	r.LogL = LogLikelihood(d, data)
	r.AIC = AIC(d, data)
	r.BIC = BIC(d, data)
	return r
}

// SelectBest fits every candidate family and returns the winner by KS
// statistic. It errors only if no family fits.
func SelectBest(data []float64, fitters []Fitter) (FitResult, error) {
	results := FitAll(data, fitters)
	if len(results) == 0 || results[0].Err != nil {
		return FitResult{}, fmt.Errorf("dist: no candidate family fits the sample (n=%d)", len(data))
	}
	return results[0], nil
}

// ParamString formats a fitted distribution's parameters for reports.
func ParamString(d Distribution) string {
	switch v := d.(type) {
	case Exponential:
		return fmt.Sprintf("rate=%.4g", v.Rate)
	case Weibull:
		return fmt.Sprintf("shape=%.4g scale=%.4g", v.Shape, v.Scale)
	case Pareto:
		return fmt.Sprintf("xm=%.4g alpha=%.4g", v.Xm, v.Alpha)
	case LogNormal:
		return fmt.Sprintf("mu=%.4g sigma=%.4g", v.Mu, v.Sigma)
	case Gamma:
		return fmt.Sprintf("shape=%.4g rate=%.4g", v.Shape, v.Rate)
	case Erlang:
		return fmt.Sprintf("k=%d rate=%.4g", v.K, v.Rate)
	case InverseGaussian:
		return fmt.Sprintf("mu=%.4g lambda=%.4g", v.Mu, v.Lambda)
	case Normal:
		return fmt.Sprintf("mu=%.4g sigma=%.4g", v.Mu, v.Sigma)
	case nil:
		return "<nil>"
	default:
		return fmt.Sprintf("%v", d)
	}
}
