package dist

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| between the empirical CDF of data and the
// distribution d. The input need not be sorted; it is copied and sorted
// once. Callers that already hold sorted data (or a Sample) should use
// KSStatisticSorted, which allocates nothing.
func KSStatistic(d Distribution, data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return KSStatisticSorted(d, sorted)
}

// KSStatisticSorted is KSStatistic over ascending-sorted data. It is the
// shared zero-allocation core of KSStatistic, KSPolish and the model
// selection in FitAll.
//
//mira:hotpath
func KSStatisticSorted(d Distribution, sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	maxD := 0.0
	for i, x := range sorted {
		f := d.CDF(x)
		if lo := math.Abs(f - float64(i)/float64(n)); lo > maxD {
			maxD = lo
		}
		if hi := math.Abs(float64(i+1)/float64(n) - f); hi > maxD {
			maxD = hi
		}
	}
	return maxD
}

// ADStatistic returns the Anderson–Darling statistic A² of the sample
// against d. AD weights the tails more heavily than KS, so the two
// statistics disagreeing flags a tail mismatch. Returns NaN for an empty
// sample or +Inf when a point falls outside d's support (F = 0 or 1).
// The input need not be sorted; ADStatisticSorted is the allocation-free
// core for pre-sorted data.
func ADStatistic(d Distribution, data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return ADStatisticSorted(d, sorted)
}

// ADStatisticSorted is ADStatistic over ascending-sorted data, with zero
// allocations.
//
//mira:hotpath
func ADStatisticSorted(d Distribution, sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		fi := d.CDF(sorted[i])
		fj := d.CDF(sorted[n-1-i])
		if fi <= 0 || fj >= 1 {
			return math.Inf(1)
		}
		sum += float64(2*i+1) * (math.Log(fi) + math.Log1p(-fj))
	}
	return -float64(n) - sum/float64(n)
}

// FitResult is the outcome of fitting one candidate family to a sample.
type FitResult struct {
	Family string       // family name, e.g. "weibull"
	Dist   Distribution // the fitted distribution (nil if Err != nil)
	KS     float64      // one-sample KS statistic
	AD     float64      // Anderson–Darling A² (tail-sensitive check)
	PValue float64      // asymptotic KS p-value
	LogL   float64      // log-likelihood
	AIC    float64
	BIC    float64
	Err    error // non-nil if the family could not be fitted
}

// DefaultFitters returns the candidate set the paper's model selection uses:
// exponential, Erlang, gamma, Weibull, Pareto, lognormal, inverse Gaussian.
func DefaultFitters() []Fitter {
	return []Fitter{
		ExponentialFitter{},
		ErlangFitter{},
		GammaFitter{},
		WeibullFitter{},
		ParetoFitter{},
		LogNormalFitter{},
		InverseGaussianFitter{},
	}
}

// FitAll fits every candidate family to data and returns the results ranked
// best-first by KS statistic (the paper's goodness-of-fit criterion), with
// AIC as a tiebreaker. Families that fail to fit sort last and carry Err.
// The candidates are fitted concurrently on all cores; use FitAllParallel
// to bound the worker count.
//
// FitAll is a compatibility wrapper: it builds one Sample (copy + sort +
// sufficient statistics) and delegates to FitAllSample, so the data is
// sorted once for all candidates instead of once per statistic.
func FitAll(data []float64, fitters []Fitter) []FitResult {
	return FitAllParallel(data, fitters, 0)
}

// FitAllParallel is FitAll with an explicit worker bound (≤ 0 means
// GOMAXPROCS).
func FitAllParallel(data []float64, fitters []Fitter, workers int) []FitResult {
	return FitAllSampleParallel(NewSample(data), fitters, workers)
}

// FitAllSample fits every candidate family to a precomputed Sample; see
// FitAll for the ranking contract. No candidate copies or re-sorts the
// data, and the KS/AD/likelihood statistics are computed allocation-free
// over the shared sorted view.
func FitAllSample(s *Sample, fitters []Fitter) []FitResult {
	return FitAllSampleParallel(s, fitters, 0)
}

// FitAllSampleParallel is FitAllSample with an explicit worker bound (≤ 0
// means GOMAXPROCS). Each candidate family's fit + goodness-of-fit
// statistics are independent, so they fan out across the pool; results land
// in the slot of their fitter and the final stable sort is unchanged,
// making the ranking identical to the serial path for any worker count.
func FitAllSampleParallel(s *Sample, fitters []Fitter, workers int) []FitResult {
	if len(fitters) == 0 {
		fitters = DefaultFitters()
	}
	results := make([]FitResult, len(fitters))
	if err := par.ForEach(context.Background(), len(fitters), workers, func(i int) error {
		results[i] = fitOne(fitters[i], s)
		return nil
	}); err != nil {
		// fitOne reports failures through FitResult.Err; the only error
		// ForEach can surface here is a captured panic in a fitter.
		panic(err)
	}
	sort.SliceStable(results, func(i, j int) bool {
		ri, rj := results[i], results[j]
		if ri.Err != nil && rj.Err != nil {
			return false
		}
		if ri.Err != nil {
			return false
		}
		if rj.Err != nil {
			return true
		}
		if ri.KS != rj.KS {
			return ri.KS < rj.KS
		}
		return ri.AIC < rj.AIC
	})
	return results
}

// fitOne fits a single candidate family and computes its goodness-of-fit
// statistics from the shared sorted sample. The log-likelihood is computed
// once and reused for AIC and BIC (the slice path recomputed it three
// times).
func fitOne(f Fitter, s *Sample) FitResult {
	r := FitResult{Family: f.FamilyName()}
	d, err := fitWith(f, s)
	if err != nil {
		r.Err = err
		r.KS = math.Inf(1)
		r.AD = math.Inf(1)
		r.AIC = math.Inf(1)
		r.BIC = math.Inf(1)
		r.LogL = math.Inf(-1)
		return r
	}
	r.Dist = d
	r.KS = s.KSStatistic(d)
	r.AD = ADStatisticSorted(d, s.Sorted())
	r.PValue = KolmogorovPValue(r.KS, s.N())
	r.LogL = s.LogLikelihood(d)
	r.AIC = 2*float64(d.NumParams()) - 2*r.LogL
	r.BIC = float64(d.NumParams())*math.Log(float64(s.N())) - 2*r.LogL
	return r
}

// SelectBest fits every candidate family and returns the winner by KS
// statistic. It errors only if no family fits.
func SelectBest(data []float64, fitters []Fitter) (FitResult, error) {
	return SelectBestSample(NewSample(data), fitters)
}

// SelectBestSample is SelectBest over a precomputed Sample.
func SelectBestSample(s *Sample, fitters []Fitter) (FitResult, error) {
	results := FitAllSample(s, fitters)
	if len(results) == 0 || results[0].Err != nil {
		return FitResult{}, fmt.Errorf("dist: no candidate family fits the sample (n=%d)", s.N())
	}
	return results[0], nil
}

// ParamString formats a fitted distribution's parameters for reports.
func ParamString(d Distribution) string {
	switch v := d.(type) {
	case Exponential:
		return fmt.Sprintf("rate=%.4g", v.Rate)
	case Weibull:
		return fmt.Sprintf("shape=%.4g scale=%.4g", v.Shape, v.Scale)
	case Pareto:
		return fmt.Sprintf("xm=%.4g alpha=%.4g", v.Xm, v.Alpha)
	case LogNormal:
		return fmt.Sprintf("mu=%.4g sigma=%.4g", v.Mu, v.Sigma)
	case Gamma:
		return fmt.Sprintf("shape=%.4g rate=%.4g", v.Shape, v.Rate)
	case Erlang:
		return fmt.Sprintf("k=%d rate=%.4g", v.K, v.Rate)
	case InverseGaussian:
		return fmt.Sprintf("mu=%.4g lambda=%.4g", v.Mu, v.Lambda)
	case Normal:
		return fmt.Sprintf("mu=%.4g sigma=%.4g", v.Mu, v.Sigma)
	case nil:
		return "<nil>"
	default:
		return fmt.Sprintf("%v", d)
	}
}
