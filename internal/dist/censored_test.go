package dist

import (
	"math"
	"math/rand"
	"testing"
)

// censoredSample draws Weibull lifetimes censored by an independent
// exponential clock.
func censoredSample(t *testing.T, shape, scale float64, n int, seed int64) ([]CensoredObservation, float64) {
	t.Helper()
	truth, err := NewWeibull(shape, scale)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	censorMean := truth.Mean() * 1.5
	obs := make([]CensoredObservation, n)
	censored := 0
	for i := range obs {
		life := truth.Rand(rng)
		clock := rng.ExpFloat64() * censorMean
		if life <= clock {
			obs[i] = CensoredObservation{Time: life, Observed: true}
		} else {
			obs[i] = CensoredObservation{Time: clock, Observed: false}
			censored++
		}
	}
	return obs, float64(censored) / float64(n)
}

func TestFitCensoredWeibullRecovers(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{
		{0.62, 2100}, // infant mortality (the job-failure regime)
		{1.8, 500},   // increasing hazard
	} {
		obs, censFrac := censoredSample(t, tc.shape, tc.scale, 30000, 17)
		if censFrac < 0.1 {
			t.Fatalf("censoring too light (%v) to exercise the fit", censFrac)
		}
		w, err := FitCensoredWeibull(obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.Shape-tc.shape)/tc.shape > 0.05 {
			t.Errorf("shape = %v, want %v (censored %v)", w.Shape, tc.shape, censFrac)
		}
		if math.Abs(w.Scale-tc.scale)/tc.scale > 0.06 {
			t.Errorf("scale = %v, want %v", w.Scale, tc.scale)
		}
	}
}

// TestNaiveFitIsBiasedCensoredIsNot is the methodological point: fitting
// only the observed events overestimates early failure (censoring removes
// long lifetimes), while the censored MLE stays unbiased.
func TestNaiveFitIsBiasedCensoredIsNot(t *testing.T) {
	const shape, scale = 1.0, 1000.0
	obs, _ := censoredSample(t, shape, scale, 30000, 23)
	var observedOnly []float64
	for _, o := range obs {
		if o.Observed {
			observedOnly = append(observedOnly, o.Time)
		}
	}
	naive, err := (WeibullFitter{}).Fit(observedOnly)
	if err != nil {
		t.Fatal(err)
	}
	censoredFit, err := FitCensoredWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	naiveErr := math.Abs(naive.(Weibull).Scale - scale)
	censErr := math.Abs(censoredFit.Scale - scale)
	if naiveErr < 2*censErr {
		t.Errorf("naive scale error %v not clearly worse than censored %v", naiveErr, censErr)
	}
	if censErr/scale > 0.05 {
		t.Errorf("censored scale error %v too large", censErr/scale)
	}
}

func TestFitCensoredWeibullErrors(t *testing.T) {
	if _, err := FitCensoredWeibull(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FitCensoredWeibull([]CensoredObservation{{1, true}, {-1, true}}); err == nil {
		t.Error("negative time accepted")
	}
	allCensored := []CensoredObservation{{1, false}, {2, false}, {3, false}}
	if _, err := FitCensoredWeibull(allCensored); err == nil {
		t.Error("all-censored accepted")
	}
	if _, err := FitCensoredWeibull([]CensoredObservation{{5, true}}); err == nil {
		t.Error("single point accepted")
	}
}

func TestCensoredLogLikelihood(t *testing.T) {
	w, _ := NewWeibull(1, 100) // exponential(1/100)
	obs := []CensoredObservation{
		{Time: 50, Observed: true},
		{Time: 200, Observed: false},
	}
	// ln f(50) = ln(1/100) − 0.5; ln S(200) = −2.
	want := math.Log(1.0/100) - 0.5 - 2
	if got := CensoredLogLikelihood(w, obs); math.Abs(got-want) > 1e-9 {
		t.Errorf("censored logL = %v, want %v", got, want)
	}
	// The MLE should beat a wrong parameterization in censored likelihood.
	obs2, _ := censoredSample(t, 0.7, 300, 5000, 31)
	fit, err := FitCensoredWeibull(obs2)
	if err != nil {
		t.Fatal(err)
	}
	wrong, _ := NewWeibull(2.0, 300)
	if CensoredLogLikelihood(fit, obs2) <= CensoredLogLikelihood(wrong, obs2) {
		t.Error("MLE not beating a wrong model in censored likelihood")
	}
}
