package dist_test

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
)

// ExampleSelectBest shows the model-selection workflow the paper applies
// to failed-job execution lengths: draw a sample, fit every candidate
// family, and rank by the KS statistic.
func ExampleSelectBest() {
	truth, err := dist.NewWeibull(0.62, 2100)
	if err != nil {
		fmt.Println(err)
		return
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	best, err := dist.SelectBest(data, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("best family: %s\n", best.Family)
	fmt.Printf("KS below 0.02: %v\n", best.KS < 0.02)
	// Output:
	// best family: weibull
	// KS below 0.02: true
}

// ExampleWeibullFitter demonstrates recovering parameters by maximum
// likelihood.
func ExampleWeibullFitter() {
	truth, _ := dist.NewWeibull(0.7, 3600)
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	fitted, err := (dist.WeibullFitter{}).Fit(data)
	if err != nil {
		fmt.Println(err)
		return
	}
	w := fitted.(dist.Weibull)
	fmt.Printf("shape within 5%%: %v\n", w.Shape > 0.665 && w.Shape < 0.735)
	fmt.Printf("scale within 5%%: %v\n", w.Scale > 3420 && w.Scale < 3780)
	// Output:
	// shape within 5%: true
	// scale within 5%: true
}

// ExampleKSPolish shows the KS-minimizing refinement used as the fitting
// ablation in experiment E6.
func ExampleKSPolish() {
	truth, _ := dist.NewExponential(0.001)
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 3000)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	// Deliberately wrong starting point.
	start, _ := dist.NewExponential(0.01)
	startKS := dist.KSStatistic(start, data)
	_, polishedKS, err := dist.KSPolish(start, data, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("polish recovered the law: %v\n", polishedKS < startKS/10)
	// Output:
	// polish recovered the law: true
}
