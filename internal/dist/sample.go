package dist

import (
	"math"
	"sort"
	"sync"
)

// Sample is an immutable, sort-once view of a float64 series. It carries the
// ascending-sorted data plus one-pass sufficient statistics — n, Σx, Σx²,
// Σln x, Σ(ln x)², Σ1/x, min, max — and stable two-pass central moments, so
// the fitting stack can estimate every candidate family and compute
// goodness-of-fit statistics without re-copying, re-sorting, or re-deriving
// moments per family.
//
// A Sample never mutates its data after construction and is safe for
// concurrent use. The slice returned by Sorted is shared, not copied;
// callers must treat it as read-only.
//
// Sufficient-statistics contract: Sum/SumSq/Min/Max/Mean/Variance are valid
// whenever the data is finite (no NaN/±Inf); the log- and reciprocal-based
// statistics (SumLog, SumLogSq, SumInv, MeanLog, VarLog) are valid only when
// every point is strictly positive, and are NaN otherwise. Err reports why a
// sample cannot be fitted (too few points, non-finite values).
type Sample struct {
	sorted []float64 // ascending; shared with Sorted callers

	sum      float64 // Σx
	sumSq    float64 // Σx²
	sumLog   float64 // Σ ln x   (NaN unless all x > 0)
	sumLogSq float64 // Σ (ln x)² (NaN unless all x > 0)
	sumInv   float64 // Σ 1/x    (NaN unless all x > 0)
	min, max float64

	mean, variance  float64 // two-pass population moments
	meanLog, varLog float64 // two-pass moments of ln x (NaN unless all x > 0)

	positive bool  // every point > 0
	err      error // nil, ErrTooFewPoints, or ErrBadSample (NaN/Inf present)

	ecdfOnce sync.Once
	ecdfX    []float64 // distinct sorted values
	ecdfF    []float64 // F_n at each distinct value
}

// NewSample copies data, sorts the copy ascending, and precomputes the
// sufficient statistics. The input is never mutated.
func NewSample(data []float64) *Sample {
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	return newSampleOwned(sorted)
}

// NewSampleSorted builds a Sample around an already-sorted series without
// copying it; the Sample takes ownership and the caller must not mutate the
// slice afterwards. Unsorted input is detected (one O(n) scan) and handled
// by falling back to a private sorted copy, so the constructor is safe
// either way.
func NewSampleSorted(sorted []float64) *Sample {
	if !sort.Float64sAreSorted(sorted) {
		cp := append([]float64(nil), sorted...)
		sort.Float64s(cp)
		sorted = cp
	}
	return newSampleOwned(sorted)
}

// newSampleOwned computes the statistics over a sorted slice the Sample owns.
//
//mira:hotpath
func newSampleOwned(sorted []float64) *Sample {
	s := &Sample{sorted: sorted}
	n := len(sorted)
	if n == 0 {
		s.err = ErrTooFewPoints
		s.min, s.max = math.NaN(), math.NaN()
		s.setLogStatsNaN()
		s.mean, s.variance = math.NaN(), math.NaN()
		return s
	}
	s.min, s.max = sorted[0], sorted[n-1]
	s.positive = true
	finite := true
	for _, x := range sorted {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			finite = false
		}
		if x <= 0 {
			s.positive = false
		}
		s.sum += x
		s.sumSq += x * x
	}
	if !finite {
		s.err = ErrBadSample
		s.setLogStatsNaN()
		s.mean, s.variance = math.NaN(), math.NaN()
		return s
	}
	if n < 2 {
		s.err = ErrTooFewPoints
	}
	s.mean = s.sum / float64(n)
	if s.positive {
		for _, x := range sorted {
			l := math.Log(x)
			s.sumLog += l
			s.sumLogSq += l * l
			s.sumInv += 1 / x
		}
		s.meanLog = s.sumLog / float64(n)
	} else {
		s.setLogStatsNaN()
	}
	// Second pass: centered sums, numerically stable for tight samples
	// (Σx² − n·mean² cancels catastrophically; Σ(x−mean)² does not).
	var ss, ssLog float64
	for _, x := range sorted {
		d := x - s.mean
		ss += d * d
		if s.positive {
			dl := math.Log(x) - s.meanLog
			ssLog += dl * dl
		}
	}
	s.variance = ss / float64(n)
	if s.positive {
		s.varLog = ssLog / float64(n)
	}
	return s
}

func (s *Sample) setLogStatsNaN() {
	nan := math.NaN()
	s.sumLog, s.sumLogSq, s.sumInv = nan, nan, nan
	s.meanLog, s.varLog = nan, nan
}

// N returns the sample size.
func (s *Sample) N() int { return len(s.sorted) }

// Sorted returns the ascending-sorted data. The slice is shared with the
// Sample — callers must not mutate it.
func (s *Sample) Sorted() []float64 { return s.sorted }

// Err reports why the sample cannot be fitted: ErrTooFewPoints for n < 2,
// ErrBadSample when a NaN or ±Inf is present, nil otherwise.
func (s *Sample) Err() error { return s.err }

// Positive reports whether every point is strictly positive (the support
// requirement of all heavy-tailed candidate families).
func (s *Sample) Positive() bool { return s.positive }

// Min returns the smallest point.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest point.
func (s *Sample) Max() float64 { return s.max }

// Sum returns Σx.
func (s *Sample) Sum() float64 { return s.sum }

// SumSq returns Σx².
func (s *Sample) SumSq() float64 { return s.sumSq }

// SumLog returns Σ ln x (NaN unless all points are positive).
func (s *Sample) SumLog() float64 { return s.sumLog }

// SumLogSq returns Σ (ln x)² (NaN unless all points are positive).
func (s *Sample) SumLogSq() float64 { return s.sumLogSq }

// SumInv returns Σ 1/x (NaN unless all points are positive) — the extra
// sufficient statistic the inverse-Gaussian closed-form MLE needs.
func (s *Sample) SumInv() float64 { return s.sumInv }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 { return s.mean }

// Variance returns the population variance (two-pass, stable).
func (s *Sample) Variance() float64 { return s.variance }

// MeanLog returns mean(ln x) (NaN unless all points are positive).
func (s *Sample) MeanLog() float64 { return s.meanLog }

// VarLog returns the population variance of ln x (NaN unless all points are
// positive).
func (s *Sample) VarLog() float64 { return s.varLog }

// moments mirrors the validation the slice-based fitters performed: n ≥ 2,
// finite data, and (when positive is set) a strictly positive support.
func (s *Sample) moments(positive bool) (n int, mean, variance float64, err error) {
	if s.err != nil {
		return 0, 0, 0, s.err
	}
	if positive && !s.positive {
		return 0, 0, 0, ErrBadSample
	}
	return len(s.sorted), s.mean, s.variance, nil
}

// ECDF returns F_n(x) = (#points ≤ x)/n, via binary search on the sorted
// data — zero allocation.
//
//mira:hotpath
func (s *Sample) ECDF(x float64) float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(s.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(s.sorted))
}

// ECDFPoints returns the empirical CDF's step points (x, F_n(x)) at every
// distinct sample value, built lazily on first use and memoized; concurrent
// callers share one build.
func (s *Sample) ECDFPoints() (xs, fs []float64) {
	s.ecdfOnce.Do(func() {
		n := float64(len(s.sorted))
		for i := 0; i < len(s.sorted); i++ {
			if i+1 < len(s.sorted) && s.sorted[i+1] == s.sorted[i] {
				continue // collapse ties to the last occurrence
			}
			s.ecdfX = append(s.ecdfX, s.sorted[i])
			s.ecdfF = append(s.ecdfF, float64(i+1)/n)
		}
	})
	return s.ecdfX, s.ecdfF
}

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic of the
// sample against d, evaluated over the memoized collapsed ECDF: within a run
// of tied points the deviation |F_n − F| is extremal at the run boundaries,
// so only distinct values need a CDF evaluation. The result is bit-identical
// to KSStatisticSorted over the full sorted data (the boundary fractions are
// the same float64(i)/float64(n) quotients), just cheaper whenever the
// series has ties — quantized job runtimes commonly do.
//
//mira:hotpath
func (s *Sample) KSStatistic(d Distribution) float64 {
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	xs, fs := s.ECDFPoints()
	maxD := 0.0
	prev := 0.0 // F_n just below the first distinct value
	for i, x := range xs {
		f := d.CDF(x)
		if lo := math.Abs(f - prev); lo > maxD {
			maxD = lo
		}
		if hi := math.Abs(fs[i] - f); hi > maxD {
			maxD = hi
		}
		prev = fs[i]
	}
	return maxD
}

// ksBelow reports whether the KS statistic of d is strictly below bound,
// returning the exact statistic when it is. The scan aborts as soon as the
// running maximum reaches bound — the final statistic can only be ≥ that
// prefix maximum, so the accept/reject decision (and the exact value on
// accept) is identical to a full KSStatistic evaluation. This is the
// branch-and-bound core of the KS-polish coordinate descent, where nearly
// every candidate is a rejection.
//
//mira:hotpath
func (s *Sample) ksBelow(d Distribution, bound float64) (float64, bool) {
	xs, fs := s.ECDFPoints()
	maxD := 0.0
	prev := 0.0
	for i, x := range xs {
		f := d.CDF(x)
		if lo := math.Abs(f - prev); lo > maxD {
			maxD = lo
		}
		if hi := math.Abs(fs[i] - f); hi > maxD {
			maxD = hi
		}
		if maxD >= bound {
			return maxD, false
		}
		prev = fs[i]
	}
	return maxD, true
}

// Quantile returns the type-7 (R/NumPy default) p-quantile of the sample.
//
//mira:hotpath
func (s *Sample) Quantile(p float64) float64 {
	n := len(s.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 || n == 1 {
		return s.sorted[0]
	}
	if p >= 1 {
		return s.sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return s.sorted[n-1]
	}
	return s.sorted[lo] + frac*(s.sorted[lo+1]-s.sorted[lo])
}

// SampleFitter is a Fitter that can estimate its family directly from a
// precomputed Sample, skipping the per-fit validation and moment passes. All
// families in this package implement it; FitAllSample falls back to
// Fit(sample.Sorted()) for third-party fitters that do not.
type SampleFitter interface {
	Fitter
	// FitSample returns the MLE distribution for the sample.
	FitSample(s *Sample) (Distribution, error)
}

// fitWith dispatches to the Sample-based estimator when the fitter supports
// it and falls back to the slice API (over the sorted view, zero-copy)
// otherwise.
func fitWith(f Fitter, s *Sample) (Distribution, error) {
	if sf, ok := f.(SampleFitter); ok {
		return sf.FitSample(s)
	}
	return f.Fit(s.Sorted())
}

// LogLikelihood returns Σ ln f(x_i) over the sample. For the families whose
// log-density is linear in the precomputed sufficient statistics
// (exponential, gamma/Erlang, Pareto, log-normal, normal, inverse Gaussian)
// it is evaluated in closed form with zero passes over the data; Weibull and
// unknown families fall back to one O(n) scan of the sorted view.
//
//mira:hotpath
func (s *Sample) LogLikelihood(d Distribution) float64 {
	n := float64(len(s.sorted))
	if n == 0 {
		return 0
	}
	if s.err == ErrBadSample {
		// NaN/Inf present: the scan reproduces the slice semantics exactly.
		return LogLikelihood(d, s.sorted)
	}
	switch v := d.(type) {
	case Exponential:
		if s.min < 0 {
			return math.Inf(-1)
		}
		return n*math.Log(v.Rate) - v.Rate*s.sum
	case Pareto:
		if s.min < v.Xm {
			return math.Inf(-1)
		}
		return n*(math.Log(v.Alpha)+v.Alpha*math.Log(v.Xm)) - (v.Alpha+1)*s.sumLog
	case LogNormal:
		if !s.positive {
			return math.Inf(-1)
		}
		// Σz² with z = (ln x − μ)/σ, via the stable centered moments:
		// Σ(ln x − μ)² = n·(VarLog + (MeanLog − μ)²).
		dm := s.meanLog - v.Mu
		zz := n * (s.varLog + dm*dm) / (v.Sigma * v.Sigma)
		return -zz/2 - s.sumLog - n*math.Log(v.Sigma) - 0.5*n*math.Log(2*math.Pi)
	case Gamma:
		return s.gammaLogLikelihood(v.Shape, v.Rate)
	case Erlang:
		return s.gammaLogLikelihood(float64(v.K), v.Rate)
	case InverseGaussian:
		if !s.positive {
			return math.Inf(-1)
		}
		// Σ(x−μ)²/x = Σx − 2nμ + μ²Σ1/x.
		q := s.sum - 2*v.Mu*n + v.Mu*v.Mu*s.sumInv
		return 0.5*n*math.Log(v.Lambda/(2*math.Pi)) - 1.5*s.sumLog - v.Lambda*q/(2*v.Mu*v.Mu)
	case Normal:
		dm := s.mean - v.Mu
		zz := n * (s.variance + dm*dm) / (v.Sigma * v.Sigma)
		return -zz/2 - n*math.Log(v.Sigma) - 0.5*n*math.Log(2*math.Pi)
	default:
		return LogLikelihood(d, s.sorted)
	}
}

// gammaLogLikelihood is the closed-form gamma/Erlang log-likelihood
// n·k·lnβ + (k−1)·Σln x − β·Σx − n·lnΓ(k).
func (s *Sample) gammaLogLikelihood(shape, rate float64) float64 {
	if !s.positive {
		return math.Inf(-1)
	}
	n := float64(len(s.sorted))
	return n*shape*math.Log(rate) + (shape-1)*s.sumLog - rate*s.sum - n*lnGamma(shape)
}

// AIC returns 2k − 2lnL using the closed-form likelihood where available.
func (s *Sample) AIC(d Distribution) float64 {
	return 2*float64(d.NumParams()) - 2*s.LogLikelihood(d)
}

// BIC returns k·ln n − 2lnL using the closed-form likelihood where
// available.
func (s *Sample) BIC(d Distribution) float64 {
	return float64(d.NumParams())*math.Log(float64(len(s.sorted))) - 2*s.LogLikelihood(d)
}
