package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// InverseGaussian is the inverse Gaussian (Wald) distribution with mean
// μ > 0 and shape λ > 0 — the first-passage-time law of Brownian motion
// with drift, and one of the paper's best-fit families for failed-job
// execution lengths (notably walltime-style terminations that cluster
// around a typical duration with a sharp left flank).
type InverseGaussian struct {
	Mu     float64 // μ
	Lambda float64 // λ
}

var _ Distribution = InverseGaussian{}

// NewInverseGaussian returns an inverse Gaussian distribution with the given
// mean and shape.
func NewInverseGaussian(mu, lambda float64) (InverseGaussian, error) {
	if mu <= 0 || lambda <= 0 || math.IsNaN(mu) || math.IsNaN(lambda) {
		return InverseGaussian{}, fmt.Errorf("dist: inverse gaussian mu %v / lambda %v must be positive", mu, lambda)
	}
	return InverseGaussian{Mu: mu, Lambda: lambda}, nil
}

// Name implements Distribution.
func (InverseGaussian) Name() string { return "inverse-gaussian" }

// NumParams implements Distribution.
func (InverseGaussian) NumParams() int { return 2 }

// PDF implements Distribution.
func (ig InverseGaussian) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Exp(ig.LogPDF(x))
}

// LogPDF implements Distribution.
func (ig InverseGaussian) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	d := x - ig.Mu
	return 0.5*math.Log(ig.Lambda/(2*math.Pi*x*x*x)) - ig.Lambda*d*d/(2*ig.Mu*ig.Mu*x)
}

// CDF implements Distribution, using the standard Φ-based closed form.
func (ig InverseGaussian) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	sq := math.Sqrt(ig.Lambda / x)
	phi := func(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }
	v := phi(sq*(x/ig.Mu-1)) + math.Exp(2*ig.Lambda/ig.Mu)*phi(-sq*(x/ig.Mu+1))
	return math.Min(1, math.Max(0, v))
}

// Quantile implements Distribution, by bisection on the CDF.
func (ig InverseGaussian) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	hi := ig.Mu
	for ig.CDF(hi) < p {
		hi *= 2
		if hi > 1e300 {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ig.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*math.Max(1, hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// Mean implements Distribution.
func (ig InverseGaussian) Mean() float64 { return ig.Mu }

// Var implements Distribution.
func (ig InverseGaussian) Var() float64 { return ig.Mu * ig.Mu * ig.Mu / ig.Lambda }

// Rand implements Distribution using the Michael–Schucany–Haas
// transformation-with-rejection method.
func (ig InverseGaussian) Rand(rng *rand.Rand) float64 {
	nu := rng.NormFloat64()
	y := nu * nu
	mu, lam := ig.Mu, ig.Lambda
	x := mu + mu*mu*y/(2*lam) - mu/(2*lam)*math.Sqrt(4*mu*lam*y+mu*mu*y*y)
	if rng.Float64() <= mu/(mu+x) {
		return x
	}
	return mu * mu / x
}

// InverseGaussianFitter estimates the inverse Gaussian law by its closed-form
// MLE: μ̂ = mean, 1/λ̂ = mean(1/x − 1/μ̂).
type InverseGaussianFitter struct{}

var (
	_ Fitter       = InverseGaussianFitter{}
	_ SampleFitter = InverseGaussianFitter{}
)

// FamilyName implements Fitter.
func (InverseGaussianFitter) FamilyName() string { return "inverse-gaussian" }

// Fit implements Fitter.
func (f InverseGaussianFitter) Fit(data []float64) (Distribution, error) {
	return f.FitSample(NewSample(data))
}

// FitSample implements SampleFitter: Σ(1/x − 1/μ̂) = Σ1/x − n/μ̂, so both
// parameters are closed-form in the cached mean and reciprocal sum.
func (InverseGaussianFitter) FitSample(s *Sample) (Distribution, error) {
	n, mean, _, err := s.moments(true)
	if err != nil {
		return nil, fmt.Errorf("fit inverse-gaussian: %w", err)
	}
	recip := s.SumInv() - float64(n)/mean
	if recip <= 0 {
		return nil, fmt.Errorf("fit inverse-gaussian: degenerate sample (all values equal)")
	}
	return NewInverseGaussian(mean, float64(n)/recip)
}
