// Package dist implements the probability distributions the paper fits to
// failed-job execution lengths and interruption intervals — exponential,
// Erlang, gamma, Weibull, Pareto, lognormal, inverse Gaussian and normal —
// together with maximum-likelihood fitters and random sampling.
//
// Go's standard library has no statistics stack, so the special functions
// (regularized incomplete gamma, digamma, Kolmogorov distribution) are
// implemented here from scratch using only package math.
package dist

import (
	"errors"
	"math"
)

// ErrBadSample is returned by fitters when the data does not satisfy the
// distribution's support (e.g. non-positive values for a positive law).
var ErrBadSample = errors.New("dist: sample outside distribution support")

// ErrTooFewPoints is returned by fitters when the sample is too small to
// estimate the parameters.
var ErrTooFewPoints = errors.New("dist: too few data points to fit")

const (
	eps        = 2.220446049250313e-16 // machine epsilon for float64
	maxIterSpc = 500
)

// lnGamma returns ln Γ(x) for x > 0.
func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// digamma returns ψ(x) = d/dx ln Γ(x) for x > 0.
//
// Uses the recurrence ψ(x) = ψ(x+1) − 1/x to push the argument above 6 and
// then the asymptotic expansion.
func digamma(x float64) float64 {
	if x <= 0 && x == math.Floor(x) {
		return math.NaN()
	}
	// Reflection for negative arguments: ψ(1−x) − ψ(x) = π cot(πx).
	if x < 0 {
		return digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic series: ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n}/(2n x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132)))))
	return result
}

// trigamma returns ψ′(x), the derivative of digamma, for x > 0.
func trigamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// ψ′(x) ≈ 1/x + 1/(2x²) + Σ B_{2n}/x^{2n+1}.
	result += inv * (1 + inv*(0.5+inv*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2/30)))))
	return result
}

// regIncGammaLower returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x ≥ 0.
//
// The series representation converges quickly for x < a+1; the continued
// fraction (Lentz's algorithm) is used otherwise. This is the standard
// Numerical-Recipes split.
func regIncGammaLower(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContFrac(a, x)
	}
}

// regIncGammaUpper returns Q(a, x) = 1 − P(a, x).
func regIncGammaUpper(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaContFrac(a, x)
	}
}

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIterSpc; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lnGamma(a))
}

// gammaContFrac evaluates Q(a,x) by its continued fraction using modified
// Lentz's method.
func gammaContFrac(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIterSpc; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGamma(a)) * h
}

// kolmogorovCDF returns the CDF of the Kolmogorov distribution,
// K(x) = P(sup|B(t)| ≤ x) = 1 − 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² x²),
// the asymptotic law of √n·D_n under the null in the one-sample KS test.
func kolmogorovCDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 5 {
		return 1
	}
	// For small x the theta-function form converges faster.
	if x < 1 {
		t := math.Exp(-math.Pi * math.Pi / (8 * x * x))
		// K(x) = √(2π)/x · Σ exp(−(2k−1)²π²/(8x²))
		sum := t * (1 + math.Pow(t, 8) + math.Pow(t, 24))
		return math.Sqrt(2*math.Pi) / x * sum
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*x*x)
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	return 1 - 2*sum
}

// KolmogorovPValue returns the asymptotic p-value of a one-sample KS test
// with statistic d on a sample of size n, using the Marsaglia-style
// continuity correction √n + 0.12 + 0.11/√n.
func KolmogorovPValue(d float64, n int) float64 {
	if n <= 0 {
		return math.NaN()
	}
	sn := math.Sqrt(float64(n))
	x := (sn + 0.12 + 0.11/sn) * d
	p := 1 - kolmogorovCDF(x)
	return math.Min(1, math.Max(0, p))
}

// erfInv returns the inverse error function, used by the normal quantile.
// Implementation follows Giles (2010) with a polishing Newton step.
func erfInv(x float64) float64 {
	if x <= -1 {
		return math.Inf(-1)
	}
	if x >= 1 {
		return math.Inf(1)
	}
	if x == 0 {
		return 0
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 5 {
		w -= 2.5
		p = 2.81022636e-08
		p = 3.43273939e-07 + p*w
		p = -3.5233877e-06 + p*w
		p = -4.39150654e-06 + p*w
		p = 0.00021858087 + p*w
		p = -0.00125372503 + p*w
		p = -0.00417768164 + p*w
		p = 0.246640727 + p*w
		p = 1.50140941 + p*w
	} else {
		w = math.Sqrt(w) - 3
		p = -0.000200214257
		p = 0.000100950558 + p*w
		p = 0.00134934322 + p*w
		p = -0.00367342844 + p*w
		p = 0.00573950773 + p*w
		p = -0.0076224613 + p*w
		p = 0.00943887047 + p*w
		p = 1.00167406 + p*w
		p = 2.83297682 + p*w
	}
	y := p * x
	// One Newton step: f(y) = erf(y) − x.
	y -= (math.Erf(y) - x) / (2 / math.SqrtPi * math.Exp(-y*y))
	return y
}
