package dist

import (
	"math"
	"math/rand"
)

// Distribution is a continuous univariate probability law.
//
// All distributions in this package are immutable value types; methods never
// mutate the receiver and are safe for concurrent use. Rand draws from the
// provided source so callers control determinism.
type Distribution interface {
	// Name returns the family name, e.g. "weibull".
	Name() string
	// NumParams returns the number of free parameters (for AIC/BIC).
	NumParams() int
	// PDF returns the density at x (0 outside the support).
	PDF(x float64) float64
	// LogPDF returns ln PDF(x) (−Inf outside the support).
	LogPDF(x float64) float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Quantile returns the p-quantile for p in [0,1].
	Quantile(p float64) float64
	// Mean returns the expected value (may be +Inf, e.g. Pareto α ≤ 1).
	Mean() float64
	// Var returns the variance (may be +Inf).
	Var() float64
	// Rand draws one variate using rng.
	Rand(rng *rand.Rand) float64
}

// Fitter estimates a distribution's parameters from data by maximum
// likelihood.
type Fitter interface {
	// FamilyName returns the family this fitter estimates, e.g. "pareto".
	FamilyName() string
	// Fit returns the MLE distribution for the sample.
	Fit(data []float64) (Distribution, error)
}

// LogLikelihood returns the sample log-likelihood Σ ln f(x_i) under d.
func LogLikelihood(d Distribution, data []float64) float64 {
	ll := 0.0
	for _, x := range data {
		ll += d.LogPDF(x)
	}
	return ll
}

// AIC returns the Akaike information criterion 2k − 2lnL for distribution d
// on data; lower is better.
func AIC(d Distribution, data []float64) float64 {
	return 2*float64(d.NumParams()) - 2*LogLikelihood(d, data)
}

// BIC returns the Bayesian information criterion k·ln n − 2lnL; lower is
// better.
func BIC(d Distribution, data []float64) float64 {
	n := float64(len(data))
	return float64(d.NumParams())*math.Log(n) - 2*LogLikelihood(d, data)
}
