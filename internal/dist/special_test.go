package dist

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDigamma(t *testing.T) {
	const gammaEuler = 0.5772156649015329
	tests := []struct {
		x, want float64
	}{
		{1, -gammaEuler},
		{2, 1 - gammaEuler},
		{0.5, -gammaEuler - 2*math.Ln2},
		{10, 2.251752589066721},
		{100, 4.600161852738087},
	}
	for _, tt := range tests {
		if got := digamma(tt.x); !almostEqual(got, tt.want, 1e-10) {
			t.Errorf("digamma(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	// Recurrence property: ψ(x+1) = ψ(x) + 1/x.
	for _, x := range []float64{0.3, 1.7, 5.2, 42} {
		if got, want := digamma(x+1), digamma(x)+1/x; !almostEqual(got, want, 1e-10) {
			t.Errorf("digamma recurrence at %v: %v vs %v", x, got, want)
		}
	}
	if !math.IsNaN(digamma(0)) || !math.IsNaN(digamma(-3)) {
		t.Error("digamma at non-positive integers should be NaN")
	}
}

func TestTrigamma(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{1, math.Pi * math.Pi / 6},
		{0.5, math.Pi * math.Pi / 2},
		{2, math.Pi*math.Pi/6 - 1},
	}
	for _, tt := range tests {
		if got := trigamma(tt.x); !almostEqual(got, tt.want, 1e-8) {
			t.Errorf("trigamma(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	// Recurrence: ψ′(x+1) = ψ′(x) − 1/x².
	for _, x := range []float64{0.4, 2.5, 9} {
		if got, want := trigamma(x+1), trigamma(x)-1/(x*x); !almostEqual(got, want, 1e-8) {
			t.Errorf("trigamma recurrence at %v: %v vs %v", x, got, want)
		}
	}
}

func TestRegIncGamma(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	for _, x := range []float64{0.1, 1, 2.5, 10} {
		want := 1 - math.Exp(-x)
		if got := regIncGammaLower(1, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a,0) = 0, P(a,∞) → 1.
	if got := regIncGammaLower(3.3, 0); got != 0 {
		t.Errorf("P(a,0) = %v", got)
	}
	if got := regIncGammaLower(3.3, 1e6); !almostEqual(got, 1, 1e-12) {
		t.Errorf("P(a,huge) = %v", got)
	}
	// Complementarity.
	for _, a := range []float64{0.5, 2, 7.7} {
		for _, x := range []float64{0.2, 1, 5, 20} {
			p, q := regIncGammaLower(a, x), regIncGammaUpper(a, x)
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q at a=%v x=%v = %v", a, x, p+q)
			}
		}
	}
	// P(0.5, x) = erf(√x).
	for _, x := range []float64{0.3, 1.2, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := regIncGammaLower(0.5, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsNaN(regIncGammaLower(-1, 2)) {
		t.Error("P with non-positive a should be NaN")
	}
}

func TestKolmogorovCDF(t *testing.T) {
	// Known values of the Kolmogorov distribution.
	tests := []struct {
		x, want float64
	}{
		{0.5, 0.036055},
		{1.0, 0.730000}, // K(1) ≈ 0.7300
		{1.36, 0.950515},
		{1.63, 0.990034},
	}
	for _, tt := range tests {
		if got := kolmogorovCDF(tt.x); math.Abs(got-tt.want) > 5e-4 {
			t.Errorf("K(%v) = %v, want ≈%v", tt.x, got, tt.want)
		}
	}
	if kolmogorovCDF(0) != 0 || kolmogorovCDF(-1) != 0 {
		t.Error("K(x≤0) should be 0")
	}
	if kolmogorovCDF(10) != 1 {
		t.Error("K(10) should be 1")
	}
	// Monotonicity.
	prev := -1.0
	for x := 0.05; x < 3; x += 0.05 {
		v := kolmogorovCDF(x)
		if v < prev-1e-12 {
			t.Fatalf("K not monotone at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestKolmogorovPValue(t *testing.T) {
	// At the 5% critical value D ≈ 1.358/√n the p-value should be near 0.05.
	n := 1000
	d := 1.358 / math.Sqrt(float64(n))
	p := KolmogorovPValue(d, n)
	if math.Abs(p-0.05) > 0.01 {
		t.Errorf("p-value at critical D = %v, want ≈0.05", p)
	}
	if p := KolmogorovPValue(0.001, n); p < 0.99 {
		t.Errorf("tiny D should give p≈1, got %v", p)
	}
	if p := KolmogorovPValue(0.5, n); p > 1e-6 {
		t.Errorf("huge D should give p≈0, got %v", p)
	}
	if !math.IsNaN(KolmogorovPValue(0.1, 0)) {
		t.Error("n=0 should give NaN")
	}
}

func TestErfInv(t *testing.T) {
	for _, x := range []float64{-0.999, -0.7, -0.2, 0, 0.1, 0.5, 0.9, 0.9999} {
		y := erfInv(x)
		if got := math.Erf(y); math.Abs(got-x) > 1e-10 {
			t.Errorf("erf(erfInv(%v)) = %v", x, got)
		}
	}
	if !math.IsInf(erfInv(1), 1) || !math.IsInf(erfInv(-1), -1) {
		t.Error("erfInv at ±1 should be ±Inf")
	}
}
