package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allDistributions returns one parameterized instance per family for generic
// consistency tests.
func allDistributions(t *testing.T) []Distribution {
	t.Helper()
	exp, err := NewExponential(0.5)
	if err != nil {
		t.Fatal(err)
	}
	wei, err := NewWeibull(0.7, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	wei2, err := NewWeibull(2.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewPareto(1.5, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := NewLogNormal(1.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	gam, err := NewGamma(3.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	erl, err := NewErlang(4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := NewInverseGaussian(2.0, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	nrm, err := NewNormal(-1.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	return []Distribution{exp, wei, wei2, par, ln, gam, erl, ig, nrm}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewExponential(math.NaN()); err == nil {
		t.Error("NaN rate should fail")
	}
	if _, err := NewWeibull(-1, 1); err == nil {
		t.Error("negative shape should fail")
	}
	if _, err := NewPareto(1, 0); err == nil {
		t.Error("zero alpha should fail")
	}
	if _, err := NewLogNormal(0, -0.1); err == nil {
		t.Error("negative sigma should fail")
	}
	if _, err := NewGamma(0, 1); err == nil {
		t.Error("zero shape should fail")
	}
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("zero erlang k should fail")
	}
	if _, err := NewInverseGaussian(1, math.NaN()); err == nil {
		t.Error("NaN lambda should fail")
	}
	if _, err := NewNormal(0, 0); err == nil {
		t.Error("zero sigma should fail")
	}
}

// TestCDFQuantileInverse checks Quantile(CDF(x)) ≈ x and CDF(Quantile(p)) ≈ p
// across the support of every family.
func TestCDFQuantileInverse(t *testing.T) {
	for _, d := range allDistributions(t) {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", d.Name(), p, got)
			}
		}
	}
}

// TestCDFMonotone checks each CDF is non-decreasing and bounded by [0,1].
func TestCDFMonotone(t *testing.T) {
	for _, d := range allDistributions(t) {
		lo, hi := d.Quantile(0.001), d.Quantile(0.999)
		if math.IsInf(lo, 0) {
			lo = -10
		}
		prev := -1.0
		for i := 0; i <= 200; i++ {
			x := lo + (hi-lo)*float64(i)/200
			v := d.CDF(x)
			if v < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone at %v", d.Name(), x)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s: CDF(%v)=%v out of [0,1]", d.Name(), x, v)
			}
			prev = v
		}
	}
}

// TestPDFIntegratesToCDF checks ∫ PDF ≈ ΔCDF by trapezoid rule on a central
// interval of every family.
func TestPDFIntegratesToCDF(t *testing.T) {
	for _, d := range allDistributions(t) {
		a, b := d.Quantile(0.2), d.Quantile(0.8)
		const n = 20000
		h := (b - a) / n
		sum := (d.PDF(a) + d.PDF(b)) / 2
		for i := 1; i < n; i++ {
			sum += d.PDF(a + float64(i)*h)
		}
		got := sum * h
		want := d.CDF(b) - d.CDF(a)
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("%s: ∫pdf=%v, ΔCDF=%v", d.Name(), got, want)
		}
	}
}

// TestLogPDFConsistent checks LogPDF = ln(PDF) where PDF > 0.
func TestLogPDFConsistent(t *testing.T) {
	for _, d := range allDistributions(t) {
		for _, p := range []float64{0.05, 0.3, 0.5, 0.7, 0.95} {
			x := d.Quantile(p)
			pdf := d.PDF(x)
			if pdf <= 0 {
				continue
			}
			if got, want := d.LogPDF(x), math.Log(pdf); math.Abs(got-want) > 1e-8*math.Max(1, math.Abs(want)) {
				t.Errorf("%s: LogPDF(%v)=%v, ln PDF=%v", d.Name(), x, got, want)
			}
		}
	}
}

// TestSampleMomentsMatch draws a large sample from each family and compares
// empirical mean/variance to the analytic values.
func TestSampleMomentsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for _, d := range allDistributions(t) {
		if math.IsInf(d.Mean(), 0) || math.IsInf(d.Var(), 0) {
			continue // Pareto with small alpha etc.
		}
		sum, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := d.Rand(rng)
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		tol := 4 * math.Sqrt(d.Var()/n) * 3 // generous CLT band
		if math.Abs(mean-d.Mean()) > math.Max(tol, 0.02*math.Abs(d.Mean())+1e-3) {
			t.Errorf("%s: sample mean %v, want %v", d.Name(), mean, d.Mean())
		}
		// Sample variance needs a finite 4th moment to converge at CLT
		// rate; Pareto with α < 4 does not have one, so skip it there.
		if p, isPareto := d.(Pareto); isPareto && p.Alpha < 4 {
			continue
		}
		if math.Abs(variance-d.Var()) > 0.1*d.Var()+1e-3 {
			t.Errorf("%s: sample var %v, want %v", d.Name(), variance, d.Var())
		}
	}
}

// TestSamplesPassKS draws from each family and checks the KS statistic
// against the true law is small (sanity of both Rand and CDF).
func TestSamplesPassKS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	for _, d := range allDistributions(t) {
		data := make([]float64, n)
		for i := range data {
			data[i] = d.Rand(rng)
		}
		ks := KSStatistic(d, data)
		// 1% critical value ≈ 1.63/√n ≈ 0.023.
		if ks > 1.63/math.Sqrt(n) {
			t.Errorf("%s: KS=%v too large for its own sample", d.Name(), ks)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	for _, d := range allDistributions(t) {
		if q := d.Quantile(1); !math.IsInf(q, 1) {
			t.Errorf("%s: Quantile(1)=%v, want +Inf", d.Name(), q)
		}
		q0 := d.Quantile(0)
		if math.IsNaN(q0) {
			t.Errorf("%s: Quantile(0)=NaN", d.Name())
		}
	}
}

func TestQuantilePropertyMonotone(t *testing.T) {
	dists := allDistributions(t)
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		if pa == 0 || pb >= 1 || pa == pb {
			return true
		}
		for _, d := range dists {
			if d.Quantile(pa) > d.Quantile(pb)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestErlangMatchesGamma(t *testing.T) {
	e, _ := NewErlang(3, 1.5)
	g, _ := NewGamma(3, 1.5)
	for _, x := range []float64{0.1, 1, 2, 5, 10} {
		if !almostEqual(e.PDF(x), g.PDF(x), 1e-12) {
			t.Errorf("erlang/gamma PDF mismatch at %v", x)
		}
		if !almostEqual(e.CDF(x), g.CDF(x), 1e-12) {
			t.Errorf("erlang/gamma CDF mismatch at %v", x)
		}
	}
}

func TestErlangK1IsExponential(t *testing.T) {
	e, _ := NewErlang(1, 0.25)
	x, _ := NewExponential(0.25)
	for _, v := range []float64{0.5, 2, 8, 20} {
		if !almostEqual(e.CDF(v), x.CDF(v), 1e-12) {
			t.Errorf("Erlang(1) != Exp at %v", v)
		}
	}
}

func TestSupportBoundaries(t *testing.T) {
	w, _ := NewWeibull(0.7, 1)
	if w.PDF(-1) != 0 || w.CDF(-1) != 0 {
		t.Error("weibull support violation")
	}
	if !math.IsInf(w.PDF(0), 1) {
		t.Error("weibull shape<1 PDF(0) should be +Inf")
	}
	p, _ := NewPareto(2, 1)
	if p.PDF(1.9) != 0 || p.CDF(2) != 0 {
		t.Error("pareto support violation")
	}
	if !math.IsInf(p.Mean(), 1) {
		t.Error("pareto alpha≤1 mean should be +Inf")
	}
	g, _ := NewGamma(2, 1)
	if g.PDF(0) != 0 {
		t.Error("gamma shape>1 PDF(0) should be 0")
	}
	g1, _ := NewGamma(1, 3)
	if g1.PDF(0) != 3 {
		t.Errorf("gamma shape=1 PDF(0) = %v, want rate", g1.PDF(0))
	}
}
