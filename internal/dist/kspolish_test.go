package dist

import (
	"math"
	"testing"
)

func TestParamsRoundTrip(t *testing.T) {
	for _, d := range []Parametric{
		mustP(NewExponential(0.4)),
		mustP(NewWeibull(0.7, 3)),
		mustP(NewPareto(2, 1.5)),
		mustP(NewLogNormal(1, 0.5)),
		mustP(NewGamma(2.5, 0.3)),
		mustP(NewErlang(3, 2)),
		mustP(NewInverseGaussian(4, 9)),
		mustP(NewNormal(-1, 2)),
	} {
		p := d.Params()
		back, err := d.WithParams(p)
		if err != nil {
			t.Fatalf("%s: WithParams(Params()): %v", d.Name(), err)
		}
		// Same law: CDF agrees at several quantiles.
		for _, q := range []float64{0.1, 0.5, 0.9} {
			x := d.Quantile(q)
			if math.Abs(back.CDF(x)-q) > 1e-9 {
				t.Errorf("%s: round-trip CDF mismatch at q=%v", d.Name(), q)
			}
		}
		// Wrong arity rejected.
		if _, err := d.WithParams(append(p, 1)); err == nil {
			t.Errorf("%s: extra parameter accepted", d.Name())
		}
		// Invalid values rejected.
		bad := append([]float64(nil), p...)
		bad[len(bad)-1] = -1
		if _, err := d.WithParams(bad); err == nil {
			t.Errorf("%s: negative parameter accepted", d.Name())
		}
	}
}

func mustP[D Parametric](d D, err error) Parametric {
	if err != nil {
		panic(err)
	}
	return d
}

func TestErlangWithParamsRoundsShape(t *testing.T) {
	e := mustP(NewErlang(3, 2))
	nd, err := e.WithParams([]float64{3.4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if nd.(Erlang).K != 3 {
		t.Errorf("K = %d, want 3", nd.(Erlang).K)
	}
	if _, err := e.WithParams([]float64{0.2, 2}); err == nil {
		t.Error("shape rounding to 0 accepted")
	}
}

func TestKSPolishImprovesOrMatchesMLE(t *testing.T) {
	truth, _ := NewWeibull(0.62, 2100)
	data := sampleFrom(truth, 4000, 31)
	mle, err := (WeibullFitter{}).Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	mleKS := KSStatistic(mle, data)
	polished, polishedKS, err := KSPolish(mle.(Parametric), data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if polishedKS > mleKS+1e-12 {
		t.Errorf("polish worsened KS: %v > %v", polishedKS, mleKS)
	}
	// The polished law is still close to the truth.
	w := polished.(Weibull)
	if math.Abs(w.Shape-0.62) > 0.1 || math.Abs(w.Scale-2100) > 300 {
		t.Errorf("polished params drifted: %+v", w)
	}
	// Reported KS matches an independent computation.
	if math.Abs(polishedKS-KSStatistic(polished, data)) > 1e-12 {
		t.Error("reported KS inconsistent")
	}
}

func TestKSPolishFromBadStart(t *testing.T) {
	// Start from deliberately wrong parameters: polish must recover most
	// of the gap to the true law.
	truth, _ := NewExponential(0.001)
	data := sampleFrom(truth, 3000, 32)
	bad, _ := NewExponential(0.01) // 10x off
	badKS := KSStatistic(bad, data)
	_, polishedKS, err := KSPolish(bad, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if polishedKS > badKS/5 {
		t.Errorf("polish stuck: %v (from %v)", polishedKS, badKS)
	}
	if polishedKS > 0.05 {
		t.Errorf("polished KS %v still large", polishedKS)
	}
}

func TestKSPolishEmptyData(t *testing.T) {
	e, _ := NewExponential(1)
	if _, _, err := KSPolish(e, nil, 0); err == nil {
		t.Error("empty data accepted")
	}
}

func TestKSPolishFitter(t *testing.T) {
	truth, _ := NewPareto(45, 1.25)
	data := sampleFrom(truth, 3000, 33)
	f := KSPolishFitter{Base: ParetoFitter{}}
	if got, want := f.FamilyName(), "pareto+kspolish"; got != want {
		t.Errorf("FamilyName = %q", got)
	}
	d, err := f.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	base, err := (ParetoFitter{}).Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if KSStatistic(d, data) > KSStatistic(base, data)+1e-12 {
		t.Error("polished fit worse than base")
	}
	// Propagates base errors.
	if _, err := f.Fit([]float64{-1, 2}); err == nil {
		t.Error("bad sample accepted")
	}
}
