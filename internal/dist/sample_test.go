package dist

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestSampleSufficientStats(t *testing.T) {
	data := []float64{3.5, 0.2, 7.1, 1.0, 2.2, 9.9, 0.8}
	s := NewSample(data)
	if s.Err() != nil {
		t.Fatalf("Err = %v", s.Err())
	}
	if !s.Positive() {
		t.Fatal("Positive = false for all-positive data")
	}
	n := float64(len(data))
	var sum, sumSq, sumLog, sumLogSq, sumInv float64
	for _, x := range data {
		sum += x
		sumSq += x * x
		l := math.Log(x)
		sumLog += l
		sumLogSq += l * l
		sumInv += 1 / x
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"N", float64(s.N()), n},
		{"Min", s.Min(), 0.2},
		{"Max", s.Max(), 9.9},
		{"Sum", s.Sum(), sum},
		{"SumSq", s.SumSq(), sumSq},
		{"SumLog", s.SumLog(), sumLog},
		{"SumLogSq", s.SumLogSq(), sumLogSq},
		{"SumInv", s.SumInv(), sumInv},
		{"Mean", s.Mean(), sum / n},
		{"MeanLog", s.MeanLog(), sumLog / n},
	}
	for _, c := range checks {
		if !almostEqual(c.got, c.want, 1e-12) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	var ss, ssLog float64
	for _, x := range data {
		d := x - sum/n
		ss += d * d
		dl := math.Log(x) - sumLog/n
		ssLog += dl * dl
	}
	if !almostEqual(s.Variance(), ss/n, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), ss/n)
	}
	if !almostEqual(s.VarLog(), ssLog/n, 1e-12) {
		t.Errorf("VarLog = %v, want %v", s.VarLog(), ssLog/n)
	}
	if !sort.Float64sAreSorted(s.Sorted()) {
		t.Error("Sorted() is not ascending")
	}
	if data[0] != 3.5 {
		t.Error("NewSample mutated its input")
	}
}

func TestSampleErrors(t *testing.T) {
	if err := NewSample(nil).Err(); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("empty sample Err = %v, want ErrTooFewPoints", err)
	}
	if err := NewSample([]float64{4}).Err(); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("single-point Err = %v, want ErrTooFewPoints", err)
	}
	bad := NewSample([]float64{1, math.NaN(), 3})
	if !errors.Is(bad.Err(), ErrBadSample) {
		t.Errorf("NaN sample Err = %v, want ErrBadSample", bad.Err())
	}
	inf := NewSample([]float64{1, math.Inf(1), 3})
	if !errors.Is(inf.Err(), ErrBadSample) {
		t.Errorf("Inf sample Err = %v, want ErrBadSample", inf.Err())
	}
	neg := NewSample([]float64{-1, 2, 3})
	if neg.Err() != nil {
		t.Errorf("negative sample Err = %v, want nil", neg.Err())
	}
	if neg.Positive() {
		t.Error("Positive = true with a negative point")
	}
	if !math.IsNaN(neg.SumLog()) || !math.IsNaN(neg.MeanLog()) || !math.IsNaN(neg.SumInv()) {
		t.Error("log statistics should be NaN for non-positive data")
	}
}

func TestNewSampleSortedFallback(t *testing.T) {
	unsorted := []float64{5, 1, 3}
	s := NewSampleSorted(unsorted)
	if !sort.Float64sAreSorted(s.Sorted()) {
		t.Error("Sorted() not ascending after unsorted adoption")
	}
	if unsorted[0] != 5 {
		t.Error("NewSampleSorted mutated unsorted input instead of copying")
	}
	pre := []float64{1, 3, 5}
	s2 := NewSampleSorted(pre)
	if &s2.Sorted()[0] != &pre[0] {
		t.Error("NewSampleSorted copied an already-sorted slice")
	}
}

// testDists is one distribution per family with support covering positive
// reals, used by the statistic-equivalence tests.
func testDists(t *testing.T) []Distribution {
	t.Helper()
	exp, _ := NewExponential(0.4)
	wb, _ := NewWeibull(0.8, 3)
	par, _ := NewPareto(0.05, 1.6)
	ln, _ := NewLogNormal(0.3, 1.1)
	gm, _ := NewGamma(2.2, 0.9)
	er, _ := NewErlang(3, 1.2)
	ig, _ := NewInverseGaussian(2.5, 4)
	nm, _ := NewNormal(3, 2)
	return []Distribution{exp, wb, par, ln, gm, er, ig, nm}
}

// TestKSADSortedEquivalence pins the compatibility contract: the slice APIs
// (copy + sort) and the Sorted cores produce bit-identical statistics.
func TestKSADSortedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 4000)
	for i := range data {
		data[i] = rng.ExpFloat64()*5 + 0.1
	}
	s := NewSample(data)
	for _, d := range testDists(t) {
		if got, want := KSStatisticSorted(d, s.Sorted()), KSStatistic(d, data); got != want {
			t.Errorf("%T: KS sorted %v != slice %v", d, got, want)
		}
		if got, want := ADStatisticSorted(d, s.Sorted()), ADStatistic(d, data); got != want {
			t.Errorf("%T: AD sorted %v != slice %v", d, got, want)
		}
	}
}

// TestKSCollapsedECDFBitIdentical pins that the memoized-ECDF KS — which
// evaluates the CDF only at distinct values — returns the exact bits of the
// full per-point scan, on a heavily tied series.
func TestKSCollapsedECDFBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := make([]float64, 3000)
	for i := range data {
		// Quantized to integers: roughly half the points are ties.
		data[i] = math.Floor(rng.ExpFloat64()*40) + 1
	}
	s := NewSample(data)
	if xs, _ := s.ECDFPoints(); len(xs) == len(data) {
		t.Fatal("test series has no ties; quantize harder")
	}
	for _, d := range testDists(t) {
		if got, want := s.KSStatistic(d), KSStatisticSorted(d, s.Sorted()); got != want {
			t.Errorf("%T: collapsed KS %v != full scan %v", d, got, want)
		}
	}
}

// TestClosedFormLogLikelihood checks the sufficient-statistic likelihoods
// against the generic O(n) scan for every family with a closed form.
func TestClosedFormLogLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.ExpFloat64()*4 + 0.05
	}
	s := NewSample(data)
	for _, d := range testDists(t) {
		got := s.LogLikelihood(d)
		want := LogLikelihood(d, data)
		if !almostEqual(got, want, 1e-8) {
			t.Errorf("%T: closed-form LogL %v, scan %v", d, got, want)
		}
		if !almostEqual(s.AIC(d), AIC(d, data), 1e-8) {
			t.Errorf("%T: AIC mismatch", d)
		}
		if !almostEqual(s.BIC(d), BIC(d, data), 1e-8) {
			t.Errorf("%T: BIC mismatch", d)
		}
	}
}

// TestFitSampleMatchesFit pins bit-identical parameters between the slice
// and Sample fitting paths for every built-in family.
func TestFitSampleMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := make([]float64, 8000)
	for i := range data {
		data[i] = rng.ExpFloat64()*3 + 0.2
	}
	s := NewSample(data)
	fitters := append(DefaultFitters(), LogLogisticFitter{}, NormalFitter{})
	for _, f := range fitters {
		sf, ok := f.(SampleFitter)
		if !ok {
			t.Errorf("%s does not implement SampleFitter", f.FamilyName())
			continue
		}
		viaSlice, err1 := f.Fit(data)
		viaSample, err2 := sf.FitSample(s)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%s: err mismatch slice=%v sample=%v", f.FamilyName(), err1, err2)
			continue
		}
		if err1 != nil {
			continue
		}
		p1, ok1 := viaSlice.(Parametric)
		p2, ok2 := viaSample.(Parametric)
		if !ok1 || !ok2 {
			continue
		}
		a, b := p1.Params(), p2.Params()
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: param %d differs: slice %v, sample %v", f.FamilyName(), i, a[i], b[i])
			}
		}
	}
}

// TestFitAllSampleMatchesFitAll pins the full model-selection output —
// ranking, params, KS/AD/PValue/LogL/AIC/BIC — across the two entry points.
func TestFitAllSampleMatchesFitAll(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	truth, _ := NewWeibull(0.7, 40)
	data := make([]float64, 6000)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	legacy := FitAll(data, nil)
	viaSample := FitAllSample(NewSample(data), nil)
	if len(legacy) != len(viaSample) {
		t.Fatalf("result count %d != %d", len(legacy), len(viaSample))
	}
	for i := range legacy {
		a, b := legacy[i], viaSample[i]
		if a.Family != b.Family {
			t.Fatalf("rank %d: family %s != %s", i, a.Family, b.Family)
		}
		if a.KS != b.KS || a.AD != b.AD || a.PValue != b.PValue ||
			a.LogL != b.LogL || a.AIC != b.AIC || a.BIC != b.BIC {
			t.Errorf("%s: statistics differ: %+v vs %+v", a.Family, a, b)
		}
		if a.Err == nil {
			if pa, ok := a.Dist.(Parametric); ok {
				pb := b.Dist.(Parametric)
				xa, xb := pa.Params(), pb.Params()
				for j := range xa {
					if xa[j] != xb[j] {
						t.Errorf("%s: param %d: %v != %v", a.Family, j, xa[j], xb[j])
					}
				}
			}
		}
	}
}

// TestKSPolishSampleMatchesKSPolish pins the polish path equivalence.
func TestKSPolishSampleMatchesKSPolish(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	truth, _ := NewExponential(0.5)
	data := make([]float64, 3000)
	for i := range data {
		data[i] = truth.Rand(rng)
	}
	start, _ := NewExponential(0.4)
	d1, ks1, err1 := KSPolish(start, data, 15)
	d2, ks2, err2 := KSPolishSample(start, NewSample(data), 15)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if ks1 != ks2 {
		t.Errorf("polished KS %v != %v", ks1, ks2)
	}
	if d1.(Exponential).Rate != d2.(Exponential).Rate {
		t.Errorf("polished rate %v != %v", d1.(Exponential).Rate, d2.(Exponential).Rate)
	}
	if ks2 > KSStatisticSorted(start, NewSample(data).Sorted()) {
		t.Error("polish made the KS statistic worse")
	}
}

// TestSortedStatisticsAllocFree verifies the KS/AD cores allocate nothing —
// the point of the sort-once refactor.
func TestSortedStatisticsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := make([]float64, 2000)
	for i := range data {
		data[i] = rng.ExpFloat64()
	}
	s := NewSample(data)
	exp, _ := NewExponential(1)
	// Convert to the interface once: a per-call conversion would itself
	// allocate and mask what the cores do.
	var d Distribution = exp
	sorted := s.Sorted()
	s.ECDFPoints() // warm the lazily built ECDF outside the counted runs
	var sink float64
	if n := testing.AllocsPerRun(20, func() {
		sink += KSStatisticSorted(d, sorted)
		sink += ADStatisticSorted(d, sorted)
		sink += s.KSStatistic(d)
		sink += s.LogLikelihood(d)
		sink += s.ECDF(1.5)
	}); n != 0 {
		t.Errorf("sorted statistic cores allocate %v per run, want 0", n)
	}
	_ = sink
}

func TestSampleECDFAndQuantile(t *testing.T) {
	s := NewSample([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := s.ECDF(c.x); got != c.want {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	xs, fs := s.ECDFPoints()
	wantX := []float64{1, 2, 3}
	wantF := []float64{0.25, 0.75, 1}
	if len(xs) != len(wantX) {
		t.Fatalf("ECDFPoints: %d distinct values, want %d", len(xs), len(wantX))
	}
	for i := range xs {
		if xs[i] != wantX[i] || fs[i] != wantF[i] {
			t.Errorf("ECDFPoints[%d] = (%v,%v), want (%v,%v)", i, xs[i], fs[i], wantX[i], wantF[i])
		}
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 3 {
		t.Errorf("Quantile(1) = %v, want 3", got)
	}
}

// TestSampleConcurrentUse exercises the lazily built ECDF and the shared
// statistics from many goroutines; run with -race.
func TestSampleConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = rng.ExpFloat64()
	}
	s := NewSample(data)
	exp, _ := NewExponential(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			xs, _ := s.ECDFPoints()
			_ = len(xs)
			_ = s.LogLikelihood(exp)
			_ = KSStatisticSorted(exp, s.Sorted())
			_ = s.Quantile(0.9)
		}()
	}
	wg.Wait()
}
