package dist

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestFitAllParallelMatchesSerial is the determinism contract of concurrent
// model selection: every candidate's statistics and the final ranking are
// identical at any worker count, because each fit writes to its fitter's
// slot and the stable sort runs after the fan-in.
func TestFitAllParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w, err := NewWeibull(0.7, 1800)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 4000)
	for i := range data {
		data[i] = w.Rand(rng)
	}
	want := FitAllParallel(data, nil, 1)
	for _, workers := range []int{0, 2, 8} {
		got := FitAllParallel(data, nil, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			g, s := got[i], want[i]
			if g.Family != s.Family {
				t.Fatalf("workers=%d: rank %d is %s, want %s", workers, i, g.Family, s.Family)
			}
			if g.KS != s.KS || g.AD != s.AD || g.PValue != s.PValue ||
				g.LogL != s.LogL || g.AIC != s.AIC || g.BIC != s.BIC {
				t.Errorf("workers=%d: %s statistics differ: %+v vs %+v", workers, g.Family, g, s)
			}
			if !reflect.DeepEqual(g.Dist, s.Dist) {
				t.Errorf("workers=%d: %s fitted parameters differ", workers, g.Family)
			}
			if (g.Err == nil) != (s.Err == nil) {
				t.Errorf("workers=%d: %s error mismatch: %v vs %v", workers, g.Family, g.Err, s.Err)
			}
		}
	}
}
