package bitmap

import "math/bits"

// Run is a half-open interval [Lo, Hi) of selected row ids. The scan
// engine consumes selections as runs: each run becomes one ProcessBlock
// call on the masked kernels, so a block whose selection is one full run
// costs exactly what the unmasked scan costs.
type Run struct {
	Lo, Hi int32
}

// appendRun appends [lo, hi) to dst, merging with the previous run when
// adjacent.
func appendRun(dst []Run, lo, hi int32) []Run {
	if n := len(dst); n > 0 && dst[n-1].Hi == lo {
		dst[n-1].Hi = hi
		return dst
	}
	return append(dst, Run{lo, hi})
}

// AppendBlockRuns appends the maximal runs of set values within the
// half-open row range [lo, hi) to dst and returns it. The caller owns dst
// and reuses it across blocks, so the warm path allocates nothing. An
// empty result means the block can be skipped; a single run spanning
// [lo, hi) means the block is fully selected.
//
// The scan engine's 2048-row blocks never straddle a 65536-value chunk
// (2048 divides 65536 and blocks start at multiples of 2048), so the
// chunk loop below runs at most once per block; the code still handles
// arbitrary ranges for other callers.
//
//mira:hotpath
func (b *Bitmap) AppendBlockRuns(dst []Run, lo, hi int) []Run {
	if lo >= hi {
		return dst
	}
	loKey := uint16(uint32(lo) >> 16)
	i, _ := b.chunkIndex(loKey)
	for ; i < len(b.keys); i++ {
		base := int(b.keys[i]) << 16
		if base >= hi {
			break
		}
		clo, chi := lo, hi // clip to this chunk
		if clo < base {
			clo = base
		}
		if top := base + 1<<16; chi > top {
			chi = top
		}
		c := &b.ctrs[i]
		l16, h16 := uint16(clo-base), uint16(chi-base-1) // inclusive low bits
		switch c.typ {
		case arrayT:
			j := searchU16(c.arr, l16)
			for ; j < len(c.arr) && c.arr[j] <= h16; j++ {
				v := int32(base) + int32(c.arr[j])
				dst = appendRun(dst, v, v+1)
			}
		case bitsetT:
			dst = appendBitsetRuns(dst, c.bits, int32(base), uint32(l16), uint32(h16))
		default: // runT
			for r := 0; r+1 < len(c.arr); r += 2 {
				rlo, rhi := c.arr[r], c.arr[r+1]
				if rlo > h16 {
					break
				}
				if rhi < l16 {
					continue
				}
				if rlo < l16 {
					rlo = l16
				}
				if rhi > h16 {
					rhi = h16
				}
				dst = appendRun(dst, int32(base)+int32(rlo), int32(base)+int32(rhi)+1)
			}
		}
	}
	return dst
}

// appendBitsetRuns extracts the runs of a bitset payload within the
// inclusive low-bit range [lo, hi].
//
//mira:hotpath
func appendBitsetRuns(dst []Run, bs []uint64, base int32, lo, hi uint32) []Run {
	wlo, whi := lo>>6, hi>>6
	for w := wlo; w <= whi; w++ {
		word := bs[w]
		if w == wlo {
			word &= ^uint64(0) << (lo & 63)
		}
		if w == whi {
			word &= ^uint64(0) >> (63 - hi&63)
		}
		for word != 0 {
			t := bits.TrailingZeros64(word)
			l := bits.TrailingZeros64(^(word >> uint(t)))
			start := base + int32(w<<6) + int32(t)
			dst = appendRun(dst, start, start+int32(l))
			word &^= (uint64(1)<<uint(l) - 1) << uint(t)
		}
	}
	return dst
}
