package bitmap

import "testing"

// The selection hot path — re-evaluating a predicate into warm scratch
// bitmaps and walking blocks — must not allocate. These pins guard the
// container-reuse contracts that //mira:hotpath promises.

func TestWarmOpsAllocFree(t *testing.T) {
	a, b := New(), New()
	for v := uint32(0); v < 200000; v += 3 {
		a.Add(v)
	}
	b.AddRange(50000, 150000)
	b.Optimize()
	dst := New()
	for _, op := range []struct {
		name string
		f    func()
	}{
		{"And", func() { dst.And(a, b) }},
		{"Or", func() { dst.Or(a, b) }},
		{"AndNot", func() { dst.AndNot(a, b) }},
	} {
		op.f() // warm dst's container storage
		if allocs := testing.AllocsPerRun(20, op.f); allocs != 0 {
			t.Errorf("warm %s: %v allocs/op, want 0", op.name, allocs)
		}
	}
}

func TestAppendBlockRunsAllocFree(t *testing.T) {
	b := New()
	for v := uint32(0); v < 1<<17; v += 5 {
		b.Add(v)
	}
	runs := make([]Run, 0, 2048)
	f := func() {
		for lo := 0; lo < 1<<17; lo += 2048 {
			runs = b.AppendBlockRuns(runs[:0], lo, lo+2048)
		}
	}
	f()
	if allocs := testing.AllocsPerRun(10, f); allocs != 0 {
		t.Errorf("warm AppendBlockRuns sweep: %v allocs/op, want 0", allocs)
	}
}
