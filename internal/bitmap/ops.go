package bitmap

import "math/bits"

// And, Or and AndNot write the combination of a and b into the receiver,
// which must be a different bitmap from both operands. The receiver's
// container storage is reused, so evaluating a predicate tree over scratch
// bitmaps is allocation-free once the scratch capacity is warm. Results
// keep canonical container forms: bitset results at or below the array
// cutoff demote to arrays; run containers appear only where both inputs
// were runs (Optimize re-compresses when it pays).

// appendChunk appends a chunk for key (which must exceed every present
// key), reusing a previously truncated container's payload slices.
func (b *Bitmap) appendChunk(key uint16) *container {
	b.keys = append(b.keys, key)
	if n := len(b.ctrs); n < cap(b.ctrs) {
		b.ctrs = b.ctrs[:n+1]
		c := &b.ctrs[n]
		c.typ = arrayT
		c.n = 0
		c.arr = c.arr[:0]
		if c.bits != nil {
			c.bits = c.bits[:0]
		}
		return c
	}
	b.ctrs = append(b.ctrs, container{typ: arrayT})
	return &b.ctrs[len(b.ctrs)-1]
}

// dropLastChunk rolls back an appendChunk whose result came out empty.
func (b *Bitmap) dropLastChunk() {
	b.keys = b.keys[:len(b.keys)-1]
	b.ctrs = b.ctrs[:len(b.ctrs)-1]
}

// copyFrom deep-copies src into dst, reusing dst's payload capacity.
func (dst *container) copyFrom(src *container) {
	dst.typ = src.typ
	dst.n = src.n
	switch src.typ {
	case bitsetT:
		dst.bits = append(dst.bits[:0], src.bits...)
		dst.arr = dst.arr[:0]
	default:
		dst.arr = append(dst.arr[:0], src.arr...)
		if dst.bits != nil {
			dst.bits = dst.bits[:0]
		}
	}
}

// ensureBits resets dst to an all-zero bitset payload.
func (dst *container) ensureBits() {
	if cap(dst.bits) < bitsetWords {
		dst.bits = make([]uint64, bitsetWords)
	} else {
		dst.bits = dst.bits[:bitsetWords]
		clear(dst.bits)
	}
	dst.typ = bitsetT
	dst.arr = dst.arr[:0]
}

// count recomputes a bitset container's cardinality.
func (dst *container) count() {
	n := 0
	for _, w := range dst.bits {
		n += bits.OnesCount64(w)
	}
	dst.n = int32(n)
}

// demote converts a bitset result at or below the array cutoff to the
// canonical array form.
func (dst *container) demote() {
	if dst.typ == bitsetT && dst.n <= arrayCutoff {
		dst.bitsetToArray()
	}
}

// And sets dst = a ∩ b and returns dst.
func (dst *Bitmap) And(a, b *Bitmap) *Bitmap {
	dst.Clear()
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			c := dst.appendChunk(a.keys[i])
			andContainer(c, &a.ctrs[i], &b.ctrs[j])
			if c.n == 0 {
				dst.dropLastChunk()
			}
			i++
			j++
		}
	}
	return dst
}

// Or sets dst = a ∪ b and returns dst.
func (dst *Bitmap) Or(a, b *Bitmap) *Bitmap {
	dst.Clear()
	i, j := 0, 0
	for i < len(a.keys) || j < len(b.keys) {
		switch {
		case j >= len(b.keys) || (i < len(a.keys) && a.keys[i] < b.keys[j]):
			dst.appendChunk(a.keys[i]).copyFrom(&a.ctrs[i])
			i++
		case i >= len(a.keys) || a.keys[i] > b.keys[j]:
			dst.appendChunk(b.keys[j]).copyFrom(&b.ctrs[j])
			j++
		default:
			c := dst.appendChunk(a.keys[i])
			orContainer(c, &a.ctrs[i], &b.ctrs[j])
			i++
			j++
		}
	}
	return dst
}

// AndNot sets dst = a − b and returns dst.
func (dst *Bitmap) AndNot(a, b *Bitmap) *Bitmap {
	dst.Clear()
	j := 0
	for i := 0; i < len(a.keys); i++ {
		for j < len(b.keys) && b.keys[j] < a.keys[i] {
			j++
		}
		c := dst.appendChunk(a.keys[i])
		if j < len(b.keys) && b.keys[j] == a.keys[i] {
			andNotContainer(c, &a.ctrs[i], &b.ctrs[j])
			if c.n == 0 {
				dst.dropLastChunk()
			}
		} else {
			c.copyFrom(&a.ctrs[i])
		}
	}
	return dst
}

// andContainer intersects two containers into dst.
//
//mira:hotpath
func andContainer(dst, a, b *container) {
	// Normalize so the denser representative comes second where it helps.
	switch {
	case a.typ == arrayT && b.typ == arrayT:
		andArrArr(dst, a.arr, b.arr)
	case a.typ == arrayT && b.typ == bitsetT:
		andArrBits(dst, a.arr, b.bits)
	case a.typ == bitsetT && b.typ == arrayT:
		andArrBits(dst, b.arr, a.bits)
	case a.typ == arrayT && b.typ == runT:
		andArrRuns(dst, a.arr, b.arr)
	case a.typ == runT && b.typ == arrayT:
		andArrRuns(dst, b.arr, a.arr)
	case a.typ == bitsetT && b.typ == bitsetT:
		dst.ensureBits()
		for w := range dst.bits {
			dst.bits[w] = a.bits[w] & b.bits[w]
		}
		dst.count()
		dst.demote()
	case a.typ == runT && b.typ == runT:
		andRunsRuns(dst, a.arr, b.arr)
	case a.typ == runT && b.typ == bitsetT:
		andRunsBits(dst, a.arr, b.bits)
	default: // bitsetT ∩ runT
		andRunsBits(dst, b.arr, a.bits)
	}
}

func andArrArr(dst *container, a, b []uint16) {
	out := dst.arr[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	dst.setArr(out)
}

func andArrBits(dst *container, a []uint16, bs []uint64) {
	out := dst.arr[:0]
	for _, v := range a {
		if bs[v>>6]&(uint64(1)<<(v&63)) != 0 {
			out = append(out, v)
		}
	}
	dst.setArr(out)
}

func andArrRuns(dst *container, a, runs []uint16) {
	out := dst.arr[:0]
	r := 0
	for _, v := range a {
		for r+1 < len(runs) && runs[r+1] < v {
			r += 2
		}
		if r+1 < len(runs) && runs[r] <= v {
			out = append(out, v)
		}
	}
	dst.setArr(out)
}

func andRunsRuns(dst *container, a, b []uint16) {
	out := dst.arr[:0]
	n := int32(0)
	i, j := 0, 0
	for i+1 < len(a) && j+1 < len(b) {
		lo := a[i]
		if b[j] > lo {
			lo = b[j]
		}
		hi := a[i+1]
		if b[j+1] < hi {
			hi = b[j+1]
		}
		if lo <= hi {
			out = append(out, lo, hi)
			n += int32(hi) - int32(lo) + 1
		}
		if a[i+1] < b[j+1] {
			i += 2
		} else {
			j += 2
		}
	}
	dst.typ = runT
	dst.arr = out
	dst.n = n
	if dst.bits != nil {
		dst.bits = dst.bits[:0]
	}
}

func andRunsBits(dst *container, runs []uint16, bs []uint64) {
	dst.ensureBits()
	for r := 0; r+1 < len(runs); r += 2 {
		lo, hi := uint32(runs[r]), uint32(runs[r+1])
		wlo, whi := lo>>6, hi>>6
		mlo := ^uint64(0) << (lo & 63)
		mhi := ^uint64(0) >> (63 - hi&63)
		if wlo == whi {
			dst.bits[wlo] |= bs[wlo] & mlo & mhi
			continue
		}
		dst.bits[wlo] |= bs[wlo] & mlo
		for w := wlo + 1; w < whi; w++ {
			dst.bits[w] = bs[w]
		}
		dst.bits[whi] |= bs[whi] & mhi
	}
	dst.count()
	dst.demote()
}

// setArr finalizes an array-typed result.
func (dst *container) setArr(out []uint16) {
	dst.typ = arrayT
	dst.arr = out
	dst.n = int32(len(out))
	if dst.bits != nil {
		dst.bits = dst.bits[:0]
	}
}

// orContainer unions two containers into dst.
//
//mira:hotpath
func orContainer(dst, a, b *container) {
	switch {
	case a.typ == arrayT && b.typ == arrayT:
		orArrArr(dst, a.arr, b.arr)
	case a.typ == runT && b.typ == runT:
		orRunsRuns(dst, a.arr, b.arr)
	default:
		// Mixed or bitset-heavy: materialize into a bitset and demote.
		dst.ensureBits()
		orInto(dst.bits, a)
		orInto(dst.bits, b)
		dst.count()
		dst.demote()
	}
}

// orInto folds one container into a bitset payload.
func orInto(bs []uint64, c *container) {
	switch c.typ {
	case arrayT:
		for _, v := range c.arr {
			bs[v>>6] |= uint64(1) << (v & 63)
		}
	case bitsetT:
		for w := range bs {
			bs[w] |= c.bits[w]
		}
	default: // runT
		for r := 0; r+1 < len(c.arr); r += 2 {
			setRange(bs, uint32(c.arr[r]), uint32(c.arr[r+1]))
		}
	}
}

func orArrArr(dst *container, a, b []uint16) {
	out := dst.arr[:0]
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	dst.setArr(out)
	if dst.n > arrayCutoff {
		dst.toBitset()
	}
}

func orRunsRuns(dst *container, a, b []uint16) {
	out := dst.arr[:0]
	n := int32(0)
	i, j := 0, 0
	var curLo, curHi int32 = -1, -1
	flush := func() {
		if curLo >= 0 {
			out = append(out, uint16(curLo), uint16(curHi))
			n += curHi - curLo + 1
		}
	}
	for i+1 < len(a) || j+1 < len(b) {
		var lo, hi int32
		if j+1 >= len(b) || (i+1 < len(a) && a[i] <= b[j]) {
			lo, hi = int32(a[i]), int32(a[i+1])
			i += 2
		} else {
			lo, hi = int32(b[j]), int32(b[j+1])
			j += 2
		}
		if curLo < 0 {
			curLo, curHi = lo, hi
		} else if lo <= curHi+1 {
			if hi > curHi {
				curHi = hi
			}
		} else {
			flush()
			curLo, curHi = lo, hi
		}
	}
	flush()
	dst.typ = runT
	dst.arr = out
	dst.n = n
	if dst.bits != nil {
		dst.bits = dst.bits[:0]
	}
}

// andNotContainer subtracts b from a into dst.
//
//mira:hotpath
func andNotContainer(dst, a, b *container) {
	switch {
	case a.typ == arrayT && b.typ == arrayT:
		andNotArrArr(dst, a.arr, b.arr)
	case a.typ == arrayT && b.typ == bitsetT:
		out := dst.arr[:0]
		for _, v := range a.arr {
			if b.bits[v>>6]&(uint64(1)<<(v&63)) == 0 {
				out = append(out, v)
			}
		}
		dst.setArr(out)
	case a.typ == arrayT && b.typ == runT:
		out := dst.arr[:0]
		r := 0
		for _, v := range a.arr {
			for r+1 < len(b.arr) && b.arr[r+1] < v {
				r += 2
			}
			if !(r+1 < len(b.arr) && b.arr[r] <= v) {
				out = append(out, v)
			}
		}
		dst.setArr(out)
	default:
		// a is bitset or run: materialize a as a bitset, then clear b.
		dst.ensureBits()
		orInto(dst.bits, a)
		switch b.typ {
		case arrayT:
			for _, v := range b.arr {
				dst.bits[v>>6] &^= uint64(1) << (v & 63)
			}
		case bitsetT:
			for w := range dst.bits {
				dst.bits[w] &^= b.bits[w]
			}
		default: // runT
			for r := 0; r+1 < len(b.arr); r += 2 {
				clearRange(dst.bits, uint32(b.arr[r]), uint32(b.arr[r+1]))
			}
		}
		dst.count()
		dst.demote()
	}
}

func andNotArrArr(dst *container, a, b []uint16) {
	out := dst.arr[:0]
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			out = append(out, v)
		}
	}
	dst.setArr(out)
}

// clearRange clears the inclusive bit range [lo, hi] in a bitset payload.
func clearRange(bs []uint64, lo, hi uint32) {
	wlo, whi := lo>>6, hi>>6
	mlo := ^uint64(0) << (lo & 63)
	mhi := ^uint64(0) >> (63 - hi&63)
	if wlo == whi {
		bs[wlo] &^= mlo & mhi
		return
	}
	bs[wlo] &^= mlo
	for w := wlo + 1; w < whi; w++ {
		bs[w] = 0
	}
	bs[whi] &^= mhi
}
