package bitmap

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet is the reference model: a plain map of set values.
type refSet map[uint32]bool

func (r refSet) sorted() []uint32 {
	out := make([]uint32, 0, len(r))
	for v := range r {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func fromRef(r refSet) *Bitmap {
	b := New()
	for _, v := range r.sorted() {
		b.Add(v)
	}
	return b
}

// checkEqual verifies b against the reference through every read API.
func checkEqual(t *testing.T, name string, b *Bitmap, r refSet) {
	t.Helper()
	want := r.sorted()
	if got := b.Cardinality(); got != len(want) {
		t.Fatalf("%s: Cardinality = %d, want %d", name, got, len(want))
	}
	var got []uint32
	b.Iterate(func(x uint32) bool {
		got = append(got, x)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("%s: Iterate yielded %d values, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: Iterate[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
	if len(want) > 0 {
		if min, ok := b.Minimum(); !ok || min != want[0] {
			t.Fatalf("%s: Minimum = %d,%v, want %d", name, min, ok, want[0])
		}
		if max, ok := b.Maximum(); !ok || max != want[len(want)-1] {
			t.Fatalf("%s: Maximum = %d,%v, want %d", name, max, ok, want[len(want)-1])
		}
	} else if _, ok := b.Minimum(); ok {
		t.Fatalf("%s: Minimum ok on empty bitmap", name)
	}
}

// checkRankContains probes Contains and Rank at and around reference values.
func checkRankContains(t *testing.T, name string, b *Bitmap, r refSet, probes []uint32) {
	t.Helper()
	want := r.sorted()
	for _, p := range probes {
		if got, exp := b.Contains(p), r[p]; got != exp {
			t.Fatalf("%s: Contains(%d) = %v, want %v", name, p, got, exp)
		}
		exp := sort.Search(len(want), func(i int) bool { return want[i] > p })
		if got := b.Rank(p); got != exp {
			t.Fatalf("%s: Rank(%d) = %d, want %d", name, p, got, exp)
		}
	}
}

// boundaryValues are the container-seam cases: chunk 0 start/end, chunk 1
// start, and values around the array→bitset cutoff region.
var boundaryValues = []uint32{0, 1, 63, 64, 65535, 65536, 65537, 131071, 131072, 1<<20 - 1, 1 << 20}

func probesFor(r refSet, rng *rand.Rand) []uint32 {
	probes := append([]uint32(nil), boundaryValues...)
	for v := range r {
		probes = append(probes, v)
		if v > 0 {
			probes = append(probes, v-1)
		}
		probes = append(probes, v+1)
		if len(probes) > 4000 {
			break
		}
	}
	for i := 0; i < 64; i++ {
		probes = append(probes, rng.Uint32()%(1<<21))
	}
	return probes
}

func TestBoundaries(t *testing.T) {
	r := refSet{}
	b := New()
	for _, v := range boundaryValues {
		b.Add(v)
		r[v] = true
	}
	checkEqual(t, "boundaries", b, r)
	checkRankContains(t, "boundaries", b, r, probesFor(r, rand.New(rand.NewSource(1))))
}

// TestPromotionDemotion drives one chunk across all three container types:
// array → bitset (past the cutoff via Add), bitset → run (Optimize over a
// contiguous range), run → bitset (mutation), and bitset → array (Optimize
// after sparsification is impossible here, so a fresh sparse chunk checks
// the array arm).
func TestPromotionDemotion(t *testing.T) {
	b := New()
	r := refSet{}
	// Fill past the cutoff with even values: stays incompressible by runs.
	for v := uint32(0); v < 2*arrayCutoff+10; v += 2 {
		b.Add(v)
		r[v] = true
	}
	if b.ctrs[0].typ != bitsetT {
		t.Fatalf("after %d adds container type = %d, want bitset", arrayCutoff+5, b.ctrs[0].typ)
	}
	checkEqual(t, "promoted", b, r)
	b.Optimize()
	if b.ctrs[0].typ != bitsetT {
		t.Fatalf("Optimize demoted an incompressible bitset to %d", b.ctrs[0].typ)
	}

	// A dense contiguous range optimizes to a run container.
	b2 := New()
	r2 := refSet{}
	b2.AddRange(100, 70000)
	for v := uint32(100); v < 70000; v++ {
		r2[v] = true
	}
	b2.Optimize()
	if b2.ctrs[0].typ != runT || b2.ctrs[1].typ != runT {
		t.Fatalf("contiguous range containers = %d,%d, want run,run", b2.ctrs[0].typ, b2.ctrs[1].typ)
	}
	checkEqual(t, "runrange", b2, r2)

	// Mutating a run container falls back to bitset, preserving contents.
	b2.Add(50)
	r2[50] = true
	checkEqual(t, "runmutate", b2, r2)

	// Optimize demotes a small bitset to an array.
	b3 := New()
	r3 := refSet{}
	for v := uint32(0); v < 300; v += 3 {
		b3.Add(v)
		r3[v] = true
	}
	b3.ctrs[0].toBitset()
	b3.Optimize()
	if b3.ctrs[0].typ != arrayT {
		t.Fatalf("small bitset optimized to %d, want array", b3.ctrs[0].typ)
	}
	checkEqual(t, "demoted", b3, r3)
}

// randomRef builds a reference set from one of several shapes so the
// property tests exercise all container types and their seams.
func randomRef(rng *rand.Rand) refSet {
	r := refSet{}
	switch rng.Intn(4) {
	case 0: // sparse
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			r[rng.Uint32()%(1<<18)] = true
		}
	case 1: // dense chunk (drives bitset)
		base := uint32(rng.Intn(3)) << 16
		n := 3000 + rng.Intn(6000)
		for i := 0; i < n; i++ {
			r[base+rng.Uint32()%(1<<16)] = true
		}
	case 2: // runs (drives run containers)
		for k := 0; k < 5; k++ {
			lo := rng.Uint32() % (1 << 18)
			span := uint32(1 + rng.Intn(5000))
			for v := lo; v < lo+span; v++ {
				r[v] = true
			}
		}
	case 3: // boundary-heavy
		for _, v := range boundaryValues {
			if rng.Intn(2) == 0 {
				r[v] = true
			}
		}
		for i := 0; i < 50; i++ {
			r[65530+rng.Uint32()%12] = true
		}
	}
	return r
}

func refOp(op int, a, b refSet) refSet {
	out := refSet{}
	switch op {
	case 0: // and
		for v := range a {
			if b[v] {
				out[v] = true
			}
		}
	case 1: // or
		for v := range a {
			out[v] = true
		}
		for v := range b {
			out[v] = true
		}
	default: // andnot
		for v := range a {
			if !b[v] {
				out[v] = true
			}
		}
	}
	return out
}

func TestOpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := []string{"and", "or", "andnot"}
	dst := New()
	for trial := 0; trial < 60; trial++ {
		ra, rb := randomRef(rng), randomRef(rng)
		ba, bb := fromRef(ra), fromRef(rb)
		if trial%2 == 1 {
			// Exercise the Optimize'd (run-containing) forms too.
			ba.Optimize()
			bb.Optimize()
		}
		for op := 0; op < 3; op++ {
			want := refOp(op, ra, rb)
			switch op {
			case 0:
				dst.And(ba, bb)
			case 1:
				dst.Or(ba, bb)
			default:
				dst.AndNot(ba, bb)
			}
			name := names[op]
			checkEqual(t, name, dst, want)
			checkRankContains(t, name, dst, want, probesFor(want, rng))
			// Operands must be untouched.
			checkEqual(t, name+"/a", ba, ra)
			checkEqual(t, name+"/b", bb, rb)
		}
	}
}

func TestAddRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		b := New()
		r := refSet{}
		for k := 0; k < 1+rng.Intn(6); k++ {
			lo := rng.Uint32() % (1 << 18)
			hi := lo + 1 + rng.Uint32()%100000
			b.AddRange(lo, hi)
			for v := lo; v < hi; v++ {
				r[v] = true
			}
		}
		if got, want := b.Cardinality(), len(r); got != want {
			t.Fatalf("trial %d: Cardinality = %d, want %d", trial, got, want)
		}
		checkRankContains(t, "addrange", b, r, probesFor(r, rng))
	}
	// The top-of-space wraparound chunk.
	b := New()
	b.AddRange(1<<32-10, 0xFFFFFFFF)
	if got := b.Cardinality(); got != 9 {
		t.Fatalf("top-of-space AddRange cardinality = %d, want 9", got)
	}
	if b.Contains(0xFFFFFFFF) {
		t.Fatal("AddRange hi bound must be exclusive")
	}
	if !b.Contains(0xFFFFFFFE) {
		t.Fatal("missing 0xFFFFFFFE")
	}
}

func TestAppendBlockRunsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const block = 2048
	var runs []Run
	for trial := 0; trial < 50; trial++ {
		r := randomRef(rng)
		b := fromRef(r)
		if trial%2 == 1 {
			b.Optimize()
		}
		max := uint32(1 << 18)
		for lo := 0; lo < int(max); lo += block {
			runs = b.AppendBlockRuns(runs[:0], lo, lo+block)
			// Decode runs back to a membership set for this block.
			got := map[uint32]bool{}
			prev := int32(lo) - 1
			for _, run := range runs {
				if run.Lo >= run.Hi {
					t.Fatalf("empty run %+v", run)
				}
				if run.Lo <= prev {
					t.Fatalf("runs not strictly increasing/merged: %+v after %d", run, prev)
				}
				if run.Lo < int32(lo) || run.Hi > int32(lo+block) {
					t.Fatalf("run %+v escapes block [%d,%d)", run, lo, lo+block)
				}
				for v := run.Lo; v < run.Hi; v++ {
					got[uint32(v)] = true
				}
				prev = run.Hi // adjacency must have been merged
			}
			for v := lo; v < lo+block; v++ {
				if got[uint32(v)] != r[uint32(v)] {
					t.Fatalf("block [%d,%d): value %d got %v want %v", lo, lo+block, v, got[uint32(v)], r[uint32(v)])
				}
			}
		}
	}
}

func TestAppendBlockRunsUnaligned(t *testing.T) {
	b := New()
	b.AddRange(60000, 70000) // crosses the chunk seam at 65536
	runs := b.AppendBlockRuns(nil, 59000, 71000)
	if len(runs) != 1 || runs[0] != (Run{60000, 70000}) {
		t.Fatalf("cross-chunk runs = %+v, want one merged run [60000,70000)", runs)
	}
	runs = b.AppendBlockRuns(runs[:0], 65000, 66000)
	if len(runs) != 1 || runs[0] != (Run{65000, 66000}) {
		t.Fatalf("clipped cross-chunk runs = %+v", runs)
	}
}

func TestSizeBytesAndOptimize(t *testing.T) {
	b := New()
	for v := uint32(0); v < 100000; v++ {
		b.Add(v) // per-value adds land in array/bitset form
	}
	before := b.SizeBytes()
	b.Optimize()
	after := b.SizeBytes()
	if after >= before {
		t.Fatalf("Optimize did not shrink a contiguous range: %d -> %d", before, after)
	}
	// Two chunks, one run each: 2*(2 key bytes) + 2*(4 run bytes).
	if after != 2*2+2*4 {
		t.Fatalf("optimized SizeBytes = %d, want 12", after)
	}
}
