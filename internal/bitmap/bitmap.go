// Package bitmap implements a roaring-style compressed bitmap over uint32
// row ids: the value space is chunked by the high 16 bits, and each chunk
// stores its low 16 bits in whichever container is smallest — a sorted
// uint16 array for sparse chunks, a 65536-bit bitset for dense ones, or a
// run-length list for contiguous ones. The per-dimension selection indexes
// of core.Dataset are bitmaps, predicate evaluation is bitmap algebra
// (And/Or/AndNot), and the fused scan engine consumes selections through
// AppendBlockRuns, which yields the selected row runs of one scan block
// (DESIGN.md §14).
//
// Bitmaps are not safe for concurrent mutation; a built bitmap is safe for
// concurrent readers. The And/Or/AndNot operators write into their receiver
// reusing its container storage, so steady-state predicate evaluation over
// a scratch bitmap allocates nothing.
package bitmap

import "math/bits"

// Container encodings. A chunk's container is chosen by size: an array
// costs 2 bytes per value, a bitset a flat 8 KiB, a run list 4 bytes per
// run. arrayCutoff is the classic roaring crossover: above 4096 values the
// bitset is smaller than the array.
const (
	arrayT = uint8(iota)
	bitsetT
	runT

	arrayCutoff = 4096
	bitsetWords = 1 << 16 / 64 // 1024
)

// container is one 65536-value chunk. The payload lives in arr (arrayT:
// sorted values; runT: [lo0,hi0,lo1,hi1,...] inclusive bounds) or bits
// (bitsetT). Both slices are retained across type changes so reusing a
// container for an operation result never reallocates once warm.
type container struct {
	typ  uint8
	n    int32 // cardinality
	arr  []uint16
	bits []uint64
}

// Bitmap is a compressed set of uint32 values. The zero value is an empty
// bitmap ready for use.
type Bitmap struct {
	keys []uint16 // sorted chunk keys (value >> 16)
	ctrs []container
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// Clear empties the bitmap, retaining container storage for reuse.
func (b *Bitmap) Clear() {
	b.keys = b.keys[:0]
	b.ctrs = b.ctrs[:0]
}

// chunkIndex returns the position of key in b.keys, or (insert-position,
// false) when absent.
func (b *Bitmap) chunkIndex(key uint16) (int, bool) {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.keys) && b.keys[lo] == key
}

// chunkFor returns the container for key, creating it in sorted position.
func (b *Bitmap) chunkFor(key uint16) *container {
	i, ok := b.chunkIndex(key)
	if !ok {
		b.keys = append(b.keys, 0)
		copy(b.keys[i+1:], b.keys[i:])
		b.keys[i] = key
		b.ctrs = append(b.ctrs, container{})
		copy(b.ctrs[i+1:], b.ctrs[i:])
		b.ctrs[i] = container{typ: arrayT}
	}
	return &b.ctrs[i]
}

// Add inserts x. Appending ascending values — the index-build order — is
// O(1) amortized; out-of-order inserts pay a binary search plus a shift.
func (b *Bitmap) Add(x uint32) {
	c := b.chunkFor(uint16(x >> 16))
	low := uint16(x)
	switch c.typ {
	case arrayT:
		if n := len(c.arr); n == 0 || c.arr[n-1] < low {
			c.arr = append(c.arr, low)
			c.n++
		} else {
			i := searchU16(c.arr, low)
			if i < n && c.arr[i] == low {
				return
			}
			c.arr = append(c.arr, 0)
			copy(c.arr[i+1:], c.arr[i:])
			c.arr[i] = low
			c.n++
		}
		if c.n > arrayCutoff {
			c.toBitset()
		}
	case bitsetT:
		w, m := low>>6, uint64(1)<<(low&63)
		if c.bits[w]&m == 0 {
			c.bits[w] |= m
			c.n++
		}
	case runT:
		// Mutating a run container falls back to the bitset form; Optimize
		// re-compresses afterwards.
		c.runToBitset()
		b.Add(x)
	}
}

// AddRange inserts every value in [lo, hi).
func (b *Bitmap) AddRange(lo, hi uint32) {
	for lo < hi {
		key := uint16(lo >> 16)
		chunkEnd := (uint32(key) + 1) << 16 // exclusive; 0 means 1<<32 via uint32 wrap guard below
		end := hi
		if key != uint16((hi-1)>>16) {
			end = chunkEnd
		}
		c := b.chunkFor(key)
		c.addRangeLow(uint16(lo), uint16(end-1))
		if end == 0 || end >= hi {
			return
		}
		lo = end
	}
}

// addRangeLow inserts the inclusive low-bit range [lo, hi] into a container.
func (c *container) addRangeLow(lo, hi uint16) {
	span := int32(hi) - int32(lo) + 1
	if c.n == 0 && c.typ != bitsetT {
		// Fresh chunk: represent the range directly as a run container.
		c.typ = runT
		c.arr = append(c.arr[:0], lo, hi)
		c.n = span
		return
	}
	if c.typ == runT {
		if nr := len(c.arr); nr >= 2 && uint32(c.arr[nr-1])+1 >= uint32(lo) && c.arr[nr-2] <= lo {
			// Extends (or overlaps) the last run.
			if hi > c.arr[nr-1] {
				c.n += int32(hi) - int32(c.arr[nr-1])
				c.arr[nr-1] = hi
			}
			return
		}
		c.runToBitset()
	}
	if c.typ == arrayT {
		c.toBitset()
	}
	for v := uint32(lo); v <= uint32(hi); v++ {
		w, m := v>>6, uint64(1)<<(v&63)
		if c.bits[w]&m == 0 {
			c.bits[w] |= m
			c.n++
		}
	}
}

// Contains reports whether x is set.
func (b *Bitmap) Contains(x uint32) bool {
	i, ok := b.chunkIndex(uint16(x >> 16))
	if !ok {
		return false
	}
	return b.ctrs[i].contains(uint16(x))
}

func (c *container) contains(low uint16) bool {
	switch c.typ {
	case arrayT:
		i := searchU16(c.arr, low)
		return i < len(c.arr) && c.arr[i] == low
	case bitsetT:
		return c.bits[low>>6]&(uint64(1)<<(low&63)) != 0
	default: // runT
		i := searchRuns(c.arr, low)
		return i >= 0
	}
}

// Cardinality returns the number of set values.
func (b *Bitmap) Cardinality() int {
	n := 0
	for i := range b.ctrs {
		n += int(b.ctrs[i].n)
	}
	return n
}

// IsEmpty reports whether no value is set.
func (b *Bitmap) IsEmpty() bool { return b.Cardinality() == 0 }

// Rank returns the number of set values ≤ x.
func (b *Bitmap) Rank(x uint32) int {
	key, low := uint16(x>>16), uint16(x)
	n := 0
	for i := range b.keys {
		if b.keys[i] > key {
			break
		}
		c := &b.ctrs[i]
		if b.keys[i] < key {
			n += int(c.n)
			continue
		}
		switch c.typ {
		case arrayT:
			j := searchU16(c.arr, low)
			if j < len(c.arr) && c.arr[j] == low {
				j++
			}
			n += j
		case bitsetT:
			w := int(low >> 6)
			for k := 0; k < w; k++ {
				n += bits.OnesCount64(c.bits[k])
			}
			mask := uint64(1)<<(low&63+1) - 1
			if low&63 == 63 {
				mask = ^uint64(0)
			}
			n += bits.OnesCount64(c.bits[w] & mask)
		default: // runT
			for r := 0; r+1 < len(c.arr); r += 2 {
				rlo, rhi := c.arr[r], c.arr[r+1]
				if rlo > low {
					break
				}
				if rhi <= low {
					n += int(rhi) - int(rlo) + 1
				} else {
					n += int(low) - int(rlo) + 1
				}
			}
		}
	}
	return n
}

// Iterate calls f on every set value in ascending order until f returns
// false.
func (b *Bitmap) Iterate(f func(x uint32) bool) {
	for i := range b.keys {
		base := uint32(b.keys[i]) << 16
		c := &b.ctrs[i]
		switch c.typ {
		case arrayT:
			for _, v := range c.arr {
				if !f(base | uint32(v)) {
					return
				}
			}
		case bitsetT:
			for w, word := range c.bits {
				for word != 0 {
					t := bits.TrailingZeros64(word)
					if !f(base | uint32(w<<6+t)) {
						return
					}
					word &= word - 1
				}
			}
		default: // runT
			for r := 0; r+1 < len(c.arr); r += 2 {
				for v := uint32(c.arr[r]); v <= uint32(c.arr[r+1]); v++ {
					if !f(base | v) {
						return
					}
				}
			}
		}
	}
}

// Minimum returns the smallest set value; ok is false when empty.
func (b *Bitmap) Minimum() (uint32, bool) {
	for i := range b.keys {
		c := &b.ctrs[i]
		if c.n == 0 {
			continue
		}
		base := uint32(b.keys[i]) << 16
		switch c.typ {
		case arrayT:
			return base | uint32(c.arr[0]), true
		case bitsetT:
			for w, word := range c.bits {
				if word != 0 {
					return base | uint32(w<<6+bits.TrailingZeros64(word)), true
				}
			}
		default:
			return base | uint32(c.arr[0]), true
		}
	}
	return 0, false
}

// Maximum returns the largest set value; ok is false when empty.
func (b *Bitmap) Maximum() (uint32, bool) {
	for i := len(b.keys) - 1; i >= 0; i-- {
		c := &b.ctrs[i]
		if c.n == 0 {
			continue
		}
		base := uint32(b.keys[i]) << 16
		switch c.typ {
		case arrayT:
			return base | uint32(c.arr[len(c.arr)-1]), true
		case bitsetT:
			for w := len(c.bits) - 1; w >= 0; w-- {
				if word := c.bits[w]; word != 0 {
					return base | uint32(w<<6+63-bits.LeadingZeros64(word)), true
				}
			}
		default:
			return base | uint32(c.arr[len(c.arr)-1]), true
		}
	}
	return 0, false
}

// SizeBytes returns the compressed payload size: 2 bytes per array value,
// 8 KiB per bitset, 4 bytes per run, plus 2 bytes per chunk key. It is the
// figure `mirapack -info` reports per index dimension.
func (b *Bitmap) SizeBytes() int {
	n := 2 * len(b.keys)
	for i := range b.ctrs {
		c := &b.ctrs[i]
		switch c.typ {
		case arrayT, runT:
			n += 2 * len(c.arr)
		case bitsetT:
			n += 8 * bitsetWords
		}
	}
	return n
}

// Optimize rewrites every container into its smallest encoding: run when
// the run list is smaller than both alternatives, else array below the
// cutoff, else bitset. Index builders call it once after the build; the
// operators keep results in array/bitset canonical form on their own.
func (b *Bitmap) Optimize() {
	for i := range b.ctrs {
		b.ctrs[i].optimize()
	}
}

func (c *container) optimize() {
	if c.n == 0 {
		return
	}
	runs := c.countRuns()
	runBytes := 4 * runs
	arrBytes := 2 * int(c.n)
	const bitsetBytes = 8 * bitsetWords
	switch {
	case runBytes < arrBytes && runBytes < bitsetBytes:
		c.toRuns(runs)
	case c.n <= arrayCutoff:
		if c.typ == bitsetT {
			c.bitsetToArray()
		} else if c.typ == runT {
			c.runToArray()
		}
	default:
		if c.typ == arrayT {
			c.toBitset()
		} else if c.typ == runT {
			c.runToBitset()
		}
	}
}

// countRuns returns the number of maximal runs of consecutive values.
func (c *container) countRuns() int {
	switch c.typ {
	case runT:
		return len(c.arr) / 2
	case arrayT:
		runs := 0
		for i, v := range c.arr {
			if i == 0 || v != c.arr[i-1]+1 {
				runs++
			}
		}
		return runs
	default: // bitsetT
		runs := 0
		var prev uint64 // bit 63 of the previous word
		for _, w := range c.bits {
			// A run starts at every 0→1 transition; w&^(w<<1) marks bits
			// whose predecessor (within the word) is clear, and prev patches
			// the cross-word seam.
			starts := w &^ (w<<1 | prev)
			runs += bits.OnesCount64(starts)
			prev = w >> 63
		}
		return runs
	}
}

// toRuns rewrites the container as a run list of the given length.
func (c *container) toRuns(runs int) {
	if c.typ == runT {
		return
	}
	out := make([]uint16, 0, 2*runs)
	switch c.typ {
	case arrayT:
		for i, v := range c.arr {
			if i == 0 || v != c.arr[i-1]+1 {
				out = append(out, v, v)
			} else {
				out[len(out)-1] = v
			}
		}
	case bitsetT:
		open := false
		for w, word := range c.bits {
			for word != 0 {
				t := bits.TrailingZeros64(word)
				v := uint16(w<<6 + t)
				if open && out[len(out)-1]+1 == v {
					out[len(out)-1] = v
				} else {
					out = append(out, v, v)
					open = true
				}
				word &= word - 1
			}
		}
	}
	c.typ = runT
	c.arr = out
}

// toBitset promotes an array container to a bitset.
func (c *container) toBitset() {
	bits := c.bits
	if cap(bits) < bitsetWords {
		bits = make([]uint64, bitsetWords)
	} else {
		bits = bits[:bitsetWords]
		clear(bits)
	}
	for _, v := range c.arr {
		bits[v>>6] |= uint64(1) << (v & 63)
	}
	c.typ = bitsetT
	c.bits = bits
	c.arr = c.arr[:0]
}

// runToBitset expands a run container to a bitset.
func (c *container) runToBitset() {
	runs := c.arr
	bits := c.bits
	if cap(bits) < bitsetWords {
		bits = make([]uint64, bitsetWords)
	} else {
		bits = bits[:bitsetWords]
		clear(bits)
	}
	for r := 0; r+1 < len(runs); r += 2 {
		setRange(bits, uint32(runs[r]), uint32(runs[r+1]))
	}
	c.typ = bitsetT
	c.bits = bits
	c.arr = c.arr[:0]
}

// runToArray expands a run container to a sorted array.
func (c *container) runToArray() {
	runs := c.arr
	out := make([]uint16, 0, c.n)
	for r := 0; r+1 < len(runs); r += 2 {
		for v := uint32(runs[r]); v <= uint32(runs[r+1]); v++ {
			out = append(out, uint16(v))
		}
	}
	c.typ = arrayT
	c.arr = out
}

// bitsetToArray demotes a bitset container to a sorted array.
func (c *container) bitsetToArray() {
	arr := c.arr
	if cap(arr) < int(c.n) {
		arr = make([]uint16, 0, c.n)
	} else {
		arr = arr[:0]
	}
	for w, word := range c.bits {
		for word != 0 {
			arr = append(arr, uint16(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.typ = arrayT
	c.arr = arr
	c.bits = c.bits[:0]
}

// setRange sets the inclusive bit range [lo, hi] in a bitset payload.
func setRange(bits []uint64, lo, hi uint32) {
	wlo, whi := lo>>6, hi>>6
	mlo := ^uint64(0) << (lo & 63)
	mhi := ^uint64(0) >> (63 - hi&63)
	if wlo == whi {
		bits[wlo] |= mlo & mhi
		return
	}
	bits[wlo] |= mlo
	for w := wlo + 1; w < whi; w++ {
		bits[w] = ^uint64(0)
	}
	bits[whi] |= mhi
}

// searchU16 returns the first index i with a[i] >= v.
func searchU16(a []uint16, v uint16) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchRuns returns the index of the run pair containing v, or -1.
func searchRuns(runs []uint16, v uint16) int {
	lo, hi := 0, len(runs)/2
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case runs[2*mid+1] < v:
			lo = mid + 1
		case runs[2*mid] > v:
			hi = mid
		default:
			return 2 * mid
		}
	}
	return -1
}
