// Package raslog models the Blue Gene/Q reliability, availability and
// serviceability (RAS) event log: hardware- and system-software events with
// a message ID, component, category, severity, timestamp and hardware
// location, optionally attributed to a job.
//
// The message catalog is a representative reconstruction of the BG/Q RAS
// taxonomy (the real IBM catalog has ~1,500 message IDs across the same
// component/category axes).
package raslog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/machine"
)

// Severity of a RAS event.
type Severity int

// Severities, ordered by increasing seriousness.
const (
	Info Severity = iota + 1
	Warn
	Fatal
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	case Fatal:
		return "FATAL"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// ParseSeverity parses the string form produced by String.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "INFO":
		return Info, nil
	case "WARN":
		return Warn, nil
	case "FATAL":
		return Fatal, nil
	default:
		return 0, fmt.Errorf("raslog: unknown severity %q", s)
	}
}

// Category is the functional area an event belongs to.
type Category string

// Categories of RAS events.
const (
	CatMemory   Category = "Memory"   // DDR correctable/uncorrectable errors
	CatNetwork  Category = "Network"  // 5D torus links, message unit
	CatNode     Category = "Node"     // compute-node hardware (BQC chip)
	CatIO       Category = "IO"       // I/O nodes, CIOS, file-system paths
	CatSoftware Category = "Software" // kernel (CNK), control system
	CatPower    Category = "Power"    // bulk power modules
	CatCooling  Category = "Cooling"  // coolant monitors
	CatInfra    Category = "Infra"    // service infrastructure (MMCS, DB)
)

// Component is the reporting subsystem.
type Component string

// Components reporting RAS events.
const (
	CompCNK   Component = "CNK"   // compute node kernel
	CompMMCS  Component = "MMCS"  // control system
	CompMC    Component = "MC"    // machine controller
	CompDDR   Component = "DDR"   // memory controller
	CompND    Component = "ND"    // network device (torus)
	CompMU    Component = "MU"    // message unit
	CompPCI   Component = "PCI"   // PCIe/I/O path
	CompCIOS  Component = "CIOS"  // I/O services
	CompBPM   Component = "BPM"   // bulk power module
	CompCOOL  Component = "COOL"  // coolant monitor
	CompBAREM Component = "BAREM" // bare-metal diagnostics
)

// Event is one RAS log record.
type Event struct {
	RecID   int64            // unique record id
	MsgID   string           // message id, e.g. "000B0004"
	Comp    Component        // reporting component
	Cat     Category         // functional category
	Sev     Severity         // INFO / WARN / FATAL
	Time    time.Time        // event time
	Loc     machine.Location // hardware location
	JobID   int64            // associated job, 0 if none
	Message string           // human-readable text
	Count   int              // hardware-coalesced repetition count (≥1)
}

// Service-action message IDs: repairs are bracketed by a begin/end pair at
// the affected midplane.
const (
	MsgServiceBegin = "00240001"
	MsgServiceEnd   = "00240002"
)

// CatalogEntry describes one message ID in the reconstructed catalog.
type CatalogEntry struct {
	MsgID   string
	Comp    Component
	Cat     Category
	Sev     Severity
	Message string
	// LocLevel is the hardware granularity this message reports at.
	LocLevel machine.Level
}

// Catalog returns the reconstructed message catalog: a representative set
// of BG/Q-style RAS messages spanning every component/category/severity
// combination the analyses exercise.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		// Memory.
		{"00040001", CompDDR, CatMemory, Info, "DDR correctable error summary", machine.LevelNode},
		{"00040002", CompDDR, CatMemory, Warn, "DDR correctable error threshold exceeded", machine.LevelNode},
		{"00040003", CompDDR, CatMemory, Fatal, "DDR uncorrectable memory error", machine.LevelNode},
		{"00040004", CompDDR, CatMemory, Fatal, "DDR controller initialization failure", machine.LevelNodeBoard},
		// Network.
		{"00080001", CompND, CatNetwork, Info, "torus link retraining", machine.LevelNodeBoard},
		{"00080002", CompND, CatNetwork, Warn, "torus link CRC error rate high", machine.LevelNodeBoard},
		{"00080003", CompND, CatNetwork, Fatal, "torus link failure", machine.LevelNodeBoard},
		{"00080004", CompMU, CatNetwork, Fatal, "message unit ECC fatal", machine.LevelNode},
		// Node hardware.
		{"000C0001", CompBAREM, CatNode, Warn, "BQC chip temperature high", machine.LevelNode},
		{"000C0002", CompBAREM, CatNode, Fatal, "BQC processor machine check", machine.LevelNode},
		{"000C0003", CompMC, CatNode, Fatal, "node board voltage fault", machine.LevelNodeBoard},
		// IO.
		{"00100001", CompCIOS, CatIO, Info, "I/O node heartbeat delayed", machine.LevelRack},
		{"00100002", CompCIOS, CatIO, Warn, "file-system path degraded", machine.LevelRack},
		{"00100003", CompPCI, CatIO, Fatal, "PCIe adapter failure on I/O path", machine.LevelRack},
		{"00100004", CompCIOS, CatIO, Fatal, "I/O node kernel panic", machine.LevelRack},
		// Software.
		{"00140001", CompCNK, CatSoftware, Info, "application RAS event", machine.LevelNode},
		{"00140002", CompCNK, CatSoftware, Warn, "CNK detected stuck thread", machine.LevelNode},
		{"00140003", CompCNK, CatSoftware, Fatal, "kernel internal assertion", machine.LevelNode},
		{"00140004", CompMMCS, CatSoftware, Fatal, "control system lost contact with block", machine.LevelMidplane},
		// Power.
		{"00180001", CompBPM, CatPower, Warn, "bulk power module current imbalance", machine.LevelRack},
		{"00180002", CompBPM, CatPower, Fatal, "bulk power module failure", machine.LevelRack},
		// Cooling.
		{"001C0001", CompCOOL, CatCooling, Warn, "coolant temperature above nominal", machine.LevelRack},
		{"001C0002", CompCOOL, CatCooling, Fatal, "coolant flow loss", machine.LevelRack},
		// Service actions (hardware repair windows). Begin/end pairs at the
		// affected midplane let downtime be derived from the log alone.
		{MsgServiceBegin, CompMMCS, CatInfra, Info, "service action begin", machine.LevelMidplane},
		{MsgServiceEnd, CompMMCS, CatInfra, Info, "service action end", machine.LevelMidplane},
		// Infrastructure.
		{"00200001", CompMMCS, CatInfra, Info, "database reconnect", machine.LevelSystem},
		{"00200002", CompMMCS, CatInfra, Warn, "service node load high", machine.LevelSystem},
		{"00200003", CompMMCS, CatInfra, Fatal, "service node failover", machine.LevelSystem},
	}
}

// CatalogByID returns the catalog indexed by message ID.
func CatalogByID() map[string]CatalogEntry {
	entries := Catalog()
	m := make(map[string]CatalogEntry, len(entries))
	for _, e := range entries {
		m[e.MsgID] = e
	}
	return m
}

var header = []string{
	"rec_id", "msg_id", "component", "category", "severity", "time_unix",
	"location", "job_id", "count", "message",
}

// WriteCSV writes events to w, header first.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("raslog: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range events {
		e := &events[i]
		row[0] = strconv.FormatInt(e.RecID, 10)
		row[1] = e.MsgID
		row[2] = string(e.Comp)
		row[3] = string(e.Cat)
		row[4] = e.Sev.String()
		row[5] = strconv.FormatInt(e.Time.Unix(), 10)
		row[6] = e.Loc.String()
		row[7] = strconv.FormatInt(e.JobID, 10)
		row[8] = strconv.Itoa(e.Count)
		row[9] = e.Message
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("raslog: write event %d: %w", e.RecID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads an event log written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("raslog: read header: %w", err)
	}
	if len(first) != len(header) || first[0] != header[0] {
		return nil, fmt.Errorf("raslog: unexpected header %v", first)
	}
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", line, err)
		}
		e, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	return events, nil
}

func parseRow(rec []string) (Event, error) {
	if len(rec) != len(header) {
		return Event{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var e Event
	var err error
	if e.RecID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return Event{}, fmt.Errorf("rec_id: %w", err)
	}
	e.MsgID = rec[1]
	e.Comp = Component(rec[2])
	e.Cat = Category(rec[3])
	if e.Sev, err = ParseSeverity(rec[4]); err != nil {
		return Event{}, err
	}
	ts, err := strconv.ParseInt(rec[5], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("time_unix: %w", err)
	}
	e.Time = time.Unix(ts, 0).UTC()
	if e.Loc, err = machine.ParseLocation(rec[6]); err != nil {
		return Event{}, err
	}
	if e.JobID, err = strconv.ParseInt(rec[7], 10, 64); err != nil {
		return Event{}, fmt.Errorf("job_id: %w", err)
	}
	if e.Count, err = strconv.Atoi(rec[8]); err != nil {
		return Event{}, fmt.Errorf("count: %w", err)
	}
	e.Message = rec[9]
	return e, nil
}
