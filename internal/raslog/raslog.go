// Package raslog models the Blue Gene/Q reliability, availability and
// serviceability (RAS) event log: hardware- and system-software events with
// a message ID, component, category, severity, timestamp and hardware
// location, optionally attributed to a job.
//
// The message catalog is a representative reconstruction of the BG/Q RAS
// taxonomy (the real IBM catalog has ~1,500 message IDs across the same
// component/category axes).
package raslog

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fastcsv"
	"repro/internal/machine"
)

// Severity of a RAS event.
type Severity int

// Severities, ordered by increasing seriousness.
const (
	Info Severity = iota + 1
	Warn
	Fatal
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	case Fatal:
		return "FATAL"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// ParseSeverity parses the string form produced by String.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "INFO":
		return Info, nil
	case "WARN":
		return Warn, nil
	case "FATAL":
		return Fatal, nil
	default:
		return 0, fmt.Errorf("raslog: unknown severity %q", s)
	}
}

// Category is the functional area an event belongs to.
type Category string

// Categories of RAS events.
const (
	CatMemory   Category = "Memory"   // DDR correctable/uncorrectable errors
	CatNetwork  Category = "Network"  // 5D torus links, message unit
	CatNode     Category = "Node"     // compute-node hardware (BQC chip)
	CatIO       Category = "IO"       // I/O nodes, CIOS, file-system paths
	CatSoftware Category = "Software" // kernel (CNK), control system
	CatPower    Category = "Power"    // bulk power modules
	CatCooling  Category = "Cooling"  // coolant monitors
	CatInfra    Category = "Infra"    // service infrastructure (MMCS, DB)
)

// Component is the reporting subsystem.
type Component string

// Components reporting RAS events.
const (
	CompCNK   Component = "CNK"   // compute node kernel
	CompMMCS  Component = "MMCS"  // control system
	CompMC    Component = "MC"    // machine controller
	CompDDR   Component = "DDR"   // memory controller
	CompND    Component = "ND"    // network device (torus)
	CompMU    Component = "MU"    // message unit
	CompPCI   Component = "PCI"   // PCIe/I/O path
	CompCIOS  Component = "CIOS"  // I/O services
	CompBPM   Component = "BPM"   // bulk power module
	CompCOOL  Component = "COOL"  // coolant monitor
	CompBAREM Component = "BAREM" // bare-metal diagnostics
)

// Event is one RAS log record.
type Event struct {
	RecID   int64            // unique record id
	MsgID   string           // message id, e.g. "000B0004"
	Comp    Component        // reporting component
	Cat     Category         // functional category
	Sev     Severity         // INFO / WARN / FATAL
	Time    time.Time        // event time
	Loc     machine.Location // hardware location
	JobID   int64            // associated job, 0 if none
	Message string           // human-readable text
	Count   int              // hardware-coalesced repetition count (≥1)
}

// Service-action message IDs: repairs are bracketed by a begin/end pair at
// the affected midplane.
const (
	MsgServiceBegin = "00240001"
	MsgServiceEnd   = "00240002"
)

// CatalogEntry describes one message ID in the reconstructed catalog.
type CatalogEntry struct {
	MsgID   string
	Comp    Component
	Cat     Category
	Sev     Severity
	Message string
	// LocLevel is the hardware granularity this message reports at.
	LocLevel machine.Level
}

// Catalog returns the reconstructed message catalog: a representative set
// of BG/Q-style RAS messages spanning every component/category/severity
// combination the analyses exercise.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		// Memory.
		{"00040001", CompDDR, CatMemory, Info, "DDR correctable error summary", machine.LevelNode},
		{"00040002", CompDDR, CatMemory, Warn, "DDR correctable error threshold exceeded", machine.LevelNode},
		{"00040003", CompDDR, CatMemory, Fatal, "DDR uncorrectable memory error", machine.LevelNode},
		{"00040004", CompDDR, CatMemory, Fatal, "DDR controller initialization failure", machine.LevelNodeBoard},
		// Network.
		{"00080001", CompND, CatNetwork, Info, "torus link retraining", machine.LevelNodeBoard},
		{"00080002", CompND, CatNetwork, Warn, "torus link CRC error rate high", machine.LevelNodeBoard},
		{"00080003", CompND, CatNetwork, Fatal, "torus link failure", machine.LevelNodeBoard},
		{"00080004", CompMU, CatNetwork, Fatal, "message unit ECC fatal", machine.LevelNode},
		// Node hardware.
		{"000C0001", CompBAREM, CatNode, Warn, "BQC chip temperature high", machine.LevelNode},
		{"000C0002", CompBAREM, CatNode, Fatal, "BQC processor machine check", machine.LevelNode},
		{"000C0003", CompMC, CatNode, Fatal, "node board voltage fault", machine.LevelNodeBoard},
		// IO.
		{"00100001", CompCIOS, CatIO, Info, "I/O node heartbeat delayed", machine.LevelRack},
		{"00100002", CompCIOS, CatIO, Warn, "file-system path degraded", machine.LevelRack},
		{"00100003", CompPCI, CatIO, Fatal, "PCIe adapter failure on I/O path", machine.LevelRack},
		{"00100004", CompCIOS, CatIO, Fatal, "I/O node kernel panic", machine.LevelRack},
		// Software.
		{"00140001", CompCNK, CatSoftware, Info, "application RAS event", machine.LevelNode},
		{"00140002", CompCNK, CatSoftware, Warn, "CNK detected stuck thread", machine.LevelNode},
		{"00140003", CompCNK, CatSoftware, Fatal, "kernel internal assertion", machine.LevelNode},
		{"00140004", CompMMCS, CatSoftware, Fatal, "control system lost contact with block", machine.LevelMidplane},
		// Power.
		{"00180001", CompBPM, CatPower, Warn, "bulk power module current imbalance", machine.LevelRack},
		{"00180002", CompBPM, CatPower, Fatal, "bulk power module failure", machine.LevelRack},
		// Cooling.
		{"001C0001", CompCOOL, CatCooling, Warn, "coolant temperature above nominal", machine.LevelRack},
		{"001C0002", CompCOOL, CatCooling, Fatal, "coolant flow loss", machine.LevelRack},
		// Service actions (hardware repair windows). Begin/end pairs at the
		// affected midplane let downtime be derived from the log alone.
		{MsgServiceBegin, CompMMCS, CatInfra, Info, "service action begin", machine.LevelMidplane},
		{MsgServiceEnd, CompMMCS, CatInfra, Info, "service action end", machine.LevelMidplane},
		// Infrastructure.
		{"00200001", CompMMCS, CatInfra, Info, "database reconnect", machine.LevelSystem},
		{"00200002", CompMMCS, CatInfra, Warn, "service node load high", machine.LevelSystem},
		{"00200003", CompMMCS, CatInfra, Fatal, "service node failover", machine.LevelSystem},
	}
}

// CatalogByID returns the catalog indexed by message ID.
func CatalogByID() map[string]CatalogEntry {
	entries := Catalog()
	m := make(map[string]CatalogEntry, len(entries))
	for _, e := range entries {
		m[e.MsgID] = e
	}
	return m
}

var header = []string{
	"rec_id", "msg_id", "component", "category", "severity", "time_unix",
	"location", "job_id", "count", "message",
}

// encoder caches the per-column string materializations shared by WriteCSV
// and the streaming Writer: hardware locations repeat heavily, so their
// String() rendering is computed once per distinct location.
type encoder struct {
	fw   *fastcsv.Writer
	locs map[machine.Location]string
}

func newEncoder(w io.Writer) *encoder {
	fw := fastcsv.NewWriter(w)
	for _, h := range header {
		fw.String(h)
	}
	fw.EndRecord()
	return &encoder{fw: fw, locs: make(map[machine.Location]string, 256)}
}

func (enc *encoder) event(e *Event) {
	fw := enc.fw
	fw.Int64(e.RecID)
	fw.String(e.MsgID)
	fw.String(string(e.Comp))
	fw.String(string(e.Cat))
	fw.String(e.Sev.String())
	fw.Int64(e.Time.Unix())
	s, ok := enc.locs[e.Loc]
	if !ok {
		s = e.Loc.String()
		enc.locs[e.Loc] = s
	}
	fw.String(s)
	fw.Int64(e.JobID)
	fw.Int(e.Count)
	fw.String(e.Message)
	fw.EndRecord()
}

// WriteCSV writes events to w, header first.
func WriteCSV(w io.Writer, events []Event) error {
	enc := newEncoder(w)
	for i := range events {
		enc.event(&events[i])
	}
	if err := enc.fw.Flush(); err != nil {
		return fmt.Errorf("raslog: write events: %w", err)
	}
	return nil
}

// decoder caches the per-column parses shared by ReadCSV and the streaming
// Scanner: the categorical columns (message id, component, category,
// message text) intern to a tiny vocabulary, and location strings parse
// once per distinct location instead of once per row.
type decoder struct {
	intern *fastcsv.Interner
	locs   map[string]machine.Location
}

func newDecoder() *decoder {
	return &decoder{intern: fastcsv.NewInterner(), locs: make(map[string]machine.Location, 256)}
}

func (d *decoder) location(b []byte) (machine.Location, error) {
	if loc, ok := d.locs[string(b)]; ok {
		return loc, nil
	}
	loc, err := machine.ParseLocation(string(b))
	if err != nil {
		return machine.Location{}, err
	}
	d.locs[string(b)] = loc
	return loc, nil
}

// headerOK checks the first record the way the encoding/csv codec did:
// field count plus leading column name.
func headerOK(first [][]byte) bool {
	return len(first) == len(header) && string(first[0]) == header[0]
}

// headerStrings materializes a record for error messages only.
func headerStrings(rec [][]byte) []string {
	out := make([]string, len(rec))
	for i, f := range rec {
		out[i] = string(f)
	}
	return out
}

// ReadCSV reads an event log written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("raslog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("raslog: unexpected header %v", headerStrings(first))
	}
	dec := newDecoder()
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", line, err)
		}
		e, err := dec.parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	return events, nil
}

// parseSeverity parses a severity column without materializing a string.
func parseSeverity(b []byte) (Severity, error) {
	switch string(b) {
	case "INFO":
		return Info, nil
	case "WARN":
		return Warn, nil
	case "FATAL":
		return Fatal, nil
	default:
		return 0, fmt.Errorf("raslog: unknown severity %q", b)
	}
}

func (d *decoder) parseRow(rec [][]byte) (Event, error) {
	if len(rec) != len(header) {
		return Event{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var e Event
	var err error
	if e.RecID, err = fastcsv.Int64(rec[0]); err != nil {
		return Event{}, fmt.Errorf("rec_id: %w", err)
	}
	e.MsgID = d.intern.Intern(rec[1])
	e.Comp = Component(d.intern.Intern(rec[2]))
	e.Cat = Category(d.intern.Intern(rec[3]))
	if e.Sev, err = parseSeverity(rec[4]); err != nil {
		return Event{}, err
	}
	ts, err := fastcsv.Int64(rec[5])
	if err != nil {
		return Event{}, fmt.Errorf("time_unix: %w", err)
	}
	e.Time = time.Unix(ts, 0).UTC()
	if e.Loc, err = d.location(rec[6]); err != nil {
		return Event{}, err
	}
	if e.JobID, err = fastcsv.Int64(rec[7]); err != nil {
		return Event{}, fmt.Errorf("job_id: %w", err)
	}
	if e.Count, err = fastcsv.Int(rec[8]); err != nil {
		return Event{}, fmt.Errorf("count: %w", err)
	}
	e.Message = d.intern.Intern(rec[9])
	return e, nil
}
