package raslog

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"testing"
	"time"

	"repro/internal/machine"
)

// legacyReadCSV is a verbatim copy of the encoding/csv-based decoder this
// package shipped before the fastcsv migration, kept for the paired
// allocation benchmarks (legacyWriteCSV lives in golden_test.go).
func legacyReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("raslog: read header: %w", err)
	}
	if len(first) != len(header) || first[0] != header[0] {
		return nil, fmt.Errorf("raslog: unexpected header %v", first)
	}
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", line, err)
		}
		e, err := legacyParseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	return events, nil
}

func legacyParseRow(rec []string) (Event, error) {
	if len(rec) != len(header) {
		return Event{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var e Event
	var err error
	if e.RecID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return Event{}, fmt.Errorf("rec_id: %w", err)
	}
	e.MsgID = rec[1]
	e.Comp = Component(rec[2])
	e.Cat = Category(rec[3])
	if e.Sev, err = ParseSeverity(rec[4]); err != nil {
		return Event{}, err
	}
	ts, err := strconv.ParseInt(rec[5], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("time_unix: %w", err)
	}
	e.Time = time.Unix(ts, 0).UTC()
	if e.Loc, err = machine.ParseLocation(rec[6]); err != nil {
		return Event{}, err
	}
	if e.JobID, err = strconv.ParseInt(rec[7], 10, 64); err != nil {
		return Event{}, fmt.Errorf("job_id: %w", err)
	}
	if e.Count, err = strconv.Atoi(rec[8]); err != nil {
		return Event{}, fmt.Errorf("count: %w", err)
	}
	e.Message = rec[9]
	return e, nil
}

// benchEvents synthesizes a log with the vocabulary repetition of a real RAS
// stream: a handful of message IDs and locations across many rows.
func benchEvents(n int) []Event {
	msgs := []string{"00040003", "00080001", "000A0002", "00100009"}
	base := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	events := make([]Event, n)
	for i := range events {
		loc, err := machine.Node(i%48, i%2, i%16, i%32)
		if err != nil {
			panic(err)
		}
		events[i] = Event{
			RecID: int64(i + 1), MsgID: msgs[i%len(msgs)], Comp: CompDDR,
			Cat: CatMemory, Sev: Severity(1 + i%3),
			Time: base.Add(time.Duration(i) * time.Second), Loc: loc,
			JobID: int64(i % 977), Count: 1 + i%3,
			Message: "DDR correctable error summary",
		}
	}
	return events
}

// BenchmarkEncodeVsLegacy reports bytes/op timing of the fastcsv encoder and
// the allocation reduction versus the legacy encoding/csv encoder as
// "alloc_reduction" (1 − new/old).
func BenchmarkEncodeVsLegacy(b *testing.B) {
	events := benchEvents(20000)
	var sink bytes.Buffer
	oldAllocs := testing.AllocsPerRun(3, func() {
		sink.Reset()
		if err := legacyWriteCSV(&sink, events); err != nil {
			b.Fatal(err)
		}
	})
	newAllocs := testing.AllocsPerRun(3, func() {
		sink.Reset()
		if err := WriteCSV(&sink, events); err != nil {
			b.Fatal(err)
		}
	})
	b.SetBytes(int64(sink.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := WriteCSV(&sink, events); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if oldAllocs > 0 {
		b.ReportMetric(1-newAllocs/oldAllocs, "alloc_reduction")
		b.ReportMetric(newAllocs/float64(len(events)), "allocs/row")
	}
}

// BenchmarkDecodeVsLegacy is the decode-side pair of BenchmarkEncodeVsLegacy.
func BenchmarkDecodeVsLegacy(b *testing.B) {
	events := benchEvents(20000)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	oldAllocs := testing.AllocsPerRun(3, func() {
		if _, err := legacyReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	})
	newAllocs := testing.AllocsPerRun(3, func() {
		if _, err := ReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if oldAllocs > 0 {
		b.ReportMetric(1-newAllocs/oldAllocs, "alloc_reduction")
		b.ReportMetric(newAllocs/float64(len(events)), "allocs/row")
	}
}
