package raslog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

func streamEvents(t *testing.T, n int) []Event {
	t.Helper()
	loc, err := machine.ParseLocation("R05-M1-N02-J07")
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		sev := Info
		switch i % 3 {
		case 1:
			sev = Warn
		case 2:
			sev = Fatal
		}
		events = append(events, Event{
			RecID: int64(i + 1), MsgID: "00140001", Comp: CompCNK, Cat: CatSoftware,
			Sev: sev, Time: base.Add(time.Duration(i) * time.Minute), Loc: loc,
			Count: 1, Message: "application RAS event",
		})
	}
	return events
}

func TestScannerMatchesSlurp(t *testing.T) {
	events := streamEvents(t, 100)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	slurped, err := ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Event
	for sc.Scan() {
		streamed = append(streamed, sc.Event())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slurped, streamed) {
		t.Error("scanner and slurp disagree")
	}
	// Scan after EOF stays false.
	if sc.Scan() {
		t.Error("Scan after EOF returned true")
	}
}

func TestScannerErrors(t *testing.T) {
	if _, err := NewScanner(strings.NewReader("bogus,header\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := NewScanner(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	h := "rec_id,msg_id,component,category,severity,time_unix,location,job_id,count,message"
	sc, err := NewScanner(strings.NewReader(h + "\n1,m,CNK,Software,NOPE,1,MIR,0,1,x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Error("bad row scanned successfully")
	}
	if sc.Err() == nil {
		t.Error("error not reported")
	}
	if sc.Scan() {
		t.Error("Scan after error returned true")
	}
}

func TestStreamingWriter(t *testing.T) {
	events := streamEvents(t, 25)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(events) {
		t.Errorf("count = %d", w.Count())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Error("streaming writer round trip mismatch")
	}
}

func TestCountBySeverityStreaming(t *testing.T) {
	events := streamEvents(t, 99)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	counts, first, last, err := CountBySeverityStreaming(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if counts[Info] != 33 || counts[Warn] != 33 || counts[Fatal] != 33 {
		t.Errorf("counts = %v", counts)
	}
	if !first.Equal(events[0].Time) || !last.Equal(events[98].Time) {
		t.Errorf("range = %v .. %v", first, last)
	}
	if _, _, _, err := CountBySeverityStreaming(strings.NewReader("x\n")); err == nil {
		t.Error("bad input accepted")
	}
}
