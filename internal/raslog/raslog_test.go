package raslog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

func sampleEvent(t *testing.T) Event {
	t.Helper()
	loc, err := machine.ParseLocation("R17-M0-N06-J11")
	if err != nil {
		t.Fatal(err)
	}
	return Event{
		RecID: 1, MsgID: "00040003", Comp: CompDDR, Cat: CatMemory, Sev: Fatal,
		Time: time.Date(2014, 7, 1, 3, 4, 5, 0, time.UTC), Loc: loc,
		JobID: 99, Message: "DDR uncorrectable memory error", Count: 2,
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{Info, Warn, Fatal} {
		back, err := ParseSeverity(s.String())
		if err != nil || back != s {
			t.Errorf("severity round trip %v: %v, %v", s, back, err)
		}
	}
	if _, err := ParseSeverity("BOGUS"); err == nil {
		t.Error("bogus severity accepted")
	}
	if got := Severity(42).String(); got != "Severity(42)" {
		t.Errorf("unknown severity string = %q", got)
	}
}

func TestCatalogConsistency(t *testing.T) {
	cat := Catalog()
	if len(cat) < 20 {
		t.Fatalf("catalog too small: %d", len(cat))
	}
	seen := map[string]bool{}
	fatalCount := 0
	categories := map[Category]bool{}
	for _, e := range cat {
		if seen[e.MsgID] {
			t.Errorf("duplicate msg id %s", e.MsgID)
		}
		seen[e.MsgID] = true
		if e.Message == "" {
			t.Errorf("%s: empty message", e.MsgID)
		}
		if e.Sev == Fatal {
			fatalCount++
		}
		categories[e.Cat] = true
		if e.LocLevel < machine.LevelSystem || e.LocLevel > machine.LevelNode {
			t.Errorf("%s: bad loc level %v", e.MsgID, e.LocLevel)
		}
	}
	if fatalCount < 8 {
		t.Errorf("catalog has only %d FATAL messages", fatalCount)
	}
	if len(categories) != 8 {
		t.Errorf("catalog covers %d categories, want 8", len(categories))
	}
	byID := CatalogByID()
	if len(byID) != len(cat) {
		t.Errorf("CatalogByID size %d != %d", len(byID), len(cat))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	e1 := sampleEvent(t)
	e2 := e1
	e2.RecID = 2
	e2.Sev = Info
	e2.Loc = machine.System()
	e2.JobID = 0
	e2.Message = `quoted "message", with comma`
	events := []Event{e1, e2}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", events, back)
	}
}

func TestReadCSVErrors(t *testing.T) {
	h := "rec_id,msg_id,component,category,severity,time_unix,location,job_id,count,message"
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b\n",
		"bad severity": h + "\n1,m,CNK,Software,NOPE,1,MIR,0,1,x\n",
		"bad location": h + "\n1,m,CNK,Software,INFO,1,R99,0,1,x\n",
		"bad time":     h + "\n1,m,CNK,Software,INFO,zz,MIR,0,1,x\n",
		"bad count":    h + "\n1,m,CNK,Software,INFO,1,MIR,0,zz,x\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestEmptyLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("empty log round trip produced %d events", len(back))
	}
}
