package raslog

import (
	"fmt"
	"time"

	"repro/internal/machine"
)

// Columns is the column-major decomposition of a RAS log, the shape the
// binary corpus snapshot (internal/pack) stores. Locations are packed
// machine codes (machine.Location.Code), times are unix seconds and
// severities their numeric values.
type Columns struct {
	RecID   []int64
	MsgID   []string
	Comp    []string
	Cat     []string
	Sev     []int64
	Time    []int64 // unix seconds
	Loc     []int64 // machine.Location codes
	JobID   []int64
	Count   []int64
	Message []string
}

// Rows returns the number of events the columns hold.
func (c *Columns) Rows() int { return len(c.RecID) }

// ToColumns decomposes events column-major.
func ToColumns(events []Event) *Columns {
	n := len(events)
	c := &Columns{
		RecID:   make([]int64, n),
		MsgID:   make([]string, n),
		Comp:    make([]string, n),
		Cat:     make([]string, n),
		Sev:     make([]int64, n),
		Time:    make([]int64, n),
		Loc:     make([]int64, n),
		JobID:   make([]int64, n),
		Count:   make([]int64, n),
		Message: make([]string, n),
	}
	for i := range events {
		e := &events[i]
		c.RecID[i] = e.RecID
		c.MsgID[i] = e.MsgID
		c.Comp[i] = string(e.Comp)
		c.Cat[i] = string(e.Cat)
		c.Sev[i] = int64(e.Sev)
		c.Time[i] = e.Time.Unix()
		c.Loc[i] = int64(e.Loc.Code())
		c.JobID[i] = e.JobID
		c.Count[i] = int64(e.Count)
		c.Message[i] = e.Message
	}
	return c
}

// FromColumns rehydrates events row-major. It is the inverse of ToColumns;
// invalid location codes and severities are rejected. Locations decode once
// per distinct code (a RAS log references few distinct locations relative
// to its row count).
func FromColumns(c *Columns) ([]Event, error) {
	n := c.Rows()
	for name, col := range map[string]int{
		"msg_id": len(c.MsgID), "component": len(c.Comp), "category": len(c.Cat),
		"severity": len(c.Sev), "time": len(c.Time), "location": len(c.Loc),
		"job_id": len(c.JobID), "count": len(c.Count), "message": len(c.Message),
	} {
		if col != n {
			return nil, fmt.Errorf("raslog: column %s has %d rows, want %d", name, col, n)
		}
	}
	locs := make(map[int64]machine.Location, 256)
	events := make([]Event, n)
	for i := range events {
		sev := Severity(c.Sev[i])
		if sev < Info || sev > Fatal {
			return nil, fmt.Errorf("raslog: row %d: severity %d out of range", i, c.Sev[i])
		}
		loc, ok := locs[c.Loc[i]]
		if !ok {
			code := c.Loc[i]
			if code < 0 || code > int64(^uint32(0)) {
				return nil, fmt.Errorf("raslog: row %d: location code %d out of range", i, code)
			}
			var err error
			if loc, err = machine.LocationFromCode(uint32(code)); err != nil {
				return nil, fmt.Errorf("raslog: row %d: %w", i, err)
			}
			locs[code] = loc
		}
		events[i] = Event{
			RecID:   c.RecID[i],
			MsgID:   c.MsgID[i],
			Comp:    Component(c.Comp[i]),
			Cat:     Category(c.Cat[i]),
			Sev:     sev,
			Time:    time.Unix(c.Time[i], 0).UTC(),
			Loc:     loc,
			JobID:   c.JobID[i],
			Count:   int(c.Count[i]),
			Message: c.Message[i],
		}
	}
	return events, nil
}
