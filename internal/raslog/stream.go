package raslog

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fastcsv"
)

// Scanner streams a RAS CSV log one event at a time without materializing
// the whole slice — RAS logs are the largest of the four sources (the real
// Mira log holds tens of millions of records), and most analyses are
// single-pass. Decoding goes through the fastcsv byte-slice reader plus
// the shared column caches, so a scan allocates only for the first
// occurrence of each categorical value.
//
// Usage:
//
//	sc, err := NewScanner(r)
//	for sc.Scan() {
//	    e := sc.Event()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	cr   *fastcsv.Reader
	dec  *decoder
	cur  Event
	err  error
	line int
	done bool
}

// NewScanner validates the header and returns a streaming reader.
func NewScanner(r io.Reader) (*Scanner, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("raslog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("raslog: unexpected header %v", headerStrings(first))
	}
	return &Scanner{cr: cr, dec: newDecoder(), line: 1}, nil
}

// Scan advances to the next event. It returns false at EOF or on error;
// check Err to distinguish.
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return false
	}
	if err != nil {
		s.err = fmt.Errorf("raslog: line %d: %w", s.line, err)
		return false
	}
	e, err := s.dec.parseRow(rec)
	if err != nil {
		s.err = fmt.Errorf("raslog: line %d: %w", s.line, err)
		return false
	}
	s.cur = e
	return true
}

// Event returns the current event. Valid after a true Scan.
func (s *Scanner) Event() Event { return s.cur }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }

// Writer streams events out one at a time, the counterpart of Scanner for
// generators that do not want to hold the full log in memory.
type Writer struct {
	enc *encoder
	n   int
}

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	enc := newEncoder(w)
	if err := enc.fw.Err(); err != nil {
		return nil, fmt.Errorf("raslog: write header: %w", err)
	}
	return &Writer{enc: enc}, nil
}

// Write appends one event.
func (w *Writer) Write(e *Event) error {
	w.enc.event(e)
	if err := w.enc.fw.Err(); err != nil {
		return fmt.Errorf("raslog: write event %d: %w", e.RecID, err)
	}
	w.n++
	return nil
}

// Flush flushes buffered rows and reports any write error.
func (w *Writer) Flush() error {
	if err := w.enc.fw.Flush(); err != nil {
		return fmt.Errorf("raslog: flush: %w", err)
	}
	return nil
}

// Count returns how many events have been written.
func (w *Writer) Count() int { return w.n }

// CountBySeverityStreaming is a convenience single-pass aggregation used by
// tools that must not slurp the log: it scans r and tallies severities and
// the time range.
func CountBySeverityStreaming(r io.Reader) (counts map[Severity]int, first, last time.Time, err error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, time.Time{}, time.Time{}, err
	}
	counts = map[Severity]int{}
	for sc.Scan() {
		e := sc.Event()
		counts[e.Sev]++
		if first.IsZero() || e.Time.Before(first) {
			first = e.Time
		}
		if e.Time.After(last) {
			last = e.Time
		}
	}
	if err := sc.Err(); err != nil {
		return nil, time.Time{}, time.Time{}, err
	}
	return counts, first, last, nil
}
