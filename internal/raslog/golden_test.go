package raslog

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/machine"
)

// legacyWriteCSV is a verbatim copy of the encoding/csv-based encoder this
// package shipped before the fastcsv migration. The golden tests pin the new
// codec to its exact byte output.
func legacyWriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("raslog: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range events {
		e := &events[i]
		row[0] = strconv.FormatInt(e.RecID, 10)
		row[1] = e.MsgID
		row[2] = string(e.Comp)
		row[3] = string(e.Cat)
		row[4] = e.Sev.String()
		row[5] = strconv.FormatInt(e.Time.Unix(), 10)
		row[6] = e.Loc.String()
		row[7] = strconv.FormatInt(e.JobID, 10)
		row[8] = strconv.Itoa(e.Count)
		row[9] = e.Message
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("raslog: write event %d: %w", e.RecID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// goldenEvents exercises quoting-sensitive messages alongside plain rows.
func goldenEvents(t *testing.T) []Event {
	t.Helper()
	base := sampleEvent(t)
	loc2, err := machine.ParseLocation("R00-M1-N00-J00")
	if err != nil {
		t.Fatal(err)
	}
	e2 := base
	e2.RecID = 2
	e2.Loc = loc2
	e2.Sev = Warn
	e2.Message = `correctable error, count="high"` + "\nsecond line"
	e3 := base
	e3.RecID = 3
	e3.Time = time.Date(2017, 12, 31, 23, 59, 59, 0, time.UTC)
	e3.Message = " leading space"
	return []Event{base, e2, e3}
}

func TestWriteCSVMatchesLegacy(t *testing.T) {
	events := goldenEvents(t)
	var oldBuf, newBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&newBuf, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldBuf.Bytes(), newBuf.Bytes()) {
		t.Fatalf("fastcsv encoder output differs from legacy encoding/csv:\n old: %q\n new: %q",
			oldBuf.String(), newBuf.String())
	}
}

func TestReadCSVDecodesLegacyBytes(t *testing.T) {
	events := goldenEvents(t)
	var oldBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&oldBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("decoding legacy bytes: got %+v, want %+v", got, events)
	}
}
