package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	data := []float64{4, 1, 3, 2, 5}
	s, err := Summarize(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Errorf("summary basics wrong: %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("median = %v", s.Median)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want √2", s.Std)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty should return ErrEmpty")
	}
}

func TestMeanVarianceStd(t *testing.T) {
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(data); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := Variance(data); got != 4 {
		t.Errorf("variance = %v", got)
	}
	if got := Std(data); got != 2 {
		t.Errorf("std = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty mean/variance should be NaN")
	}
}

// TestSortSmallDomainMatchesSort pins the run-reconstruction sort to
// sort.Float64s bit for bit on small-domain samples, and checks that wide,
// NaN and negative-zero inputs decline the fast path untouched.
func TestSortSmallDomainMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	domain := []float64{512, 1024, 2048, 4096, 8192, 16384, 32768, 49152}
	x := make([]float64, 777)
	for i := range x {
		x[i] = domain[rng.Intn(len(domain))]
	}
	want := append([]float64(nil), x...)
	sort.Float64s(want)
	got := append([]float64(nil), x...)
	if !sortSmallDomain(got) {
		t.Fatal("fast path declined an 8-value domain")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	wide := make([]float64, 100)
	for i := range wide {
		wide[i] = rng.NormFloat64()
	}
	seventeen := make([]float64, 17)
	for i := range seventeen {
		seventeen[i] = float64(i)
	}
	for name, bad := range map[string][]float64{
		"nan":      {3, math.NaN(), 2},
		"negzero":  {3, math.Copysign(0, -1), 2},
		"wide":     wide,
		"17values": seventeen,
	} {
		orig := append([]float64(nil), bad...)
		if sortSmallDomain(bad) {
			t.Errorf("%s: fast path accepted the sample", name)
			continue
		}
		for i := range orig {
			same := bad[i] == orig[i] || (math.IsNaN(bad[i]) && math.IsNaN(orig[i]))
			if !same {
				t.Errorf("%s: declined input mutated at %d", name, i)
			}
		}
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.75, 7.75},
	}
	for _, tt := range tests {
		got, err := Quantile(data, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("empty quantile should fail")
	}
	single, err := Quantile([]float64{42}, 0.3)
	if err != nil || single != 42 {
		t.Errorf("single-point quantile = %v, %v", single, err)
	}
}

func TestQuantilesBatch(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	qs, err := Quantiles(data, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("qs[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
}

// TestQuantileMonotoneProperty: quantile is monotone in p and stays in range.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				data = append(data, x)
			}
		}
		if len(data) == 0 {
			return true
		}
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, err1 := Quantile(data, pa)
		qb, err2 := Quantile(data, pb)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, _ := Quantile(data, 0)
		hi, _ := Quantile(data, 1)
		return qa <= qb && qa >= lo && qb <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeQuantileOrder(t *testing.T) {
	data := []float64{9, 3, 7, 1, 12, 0.5, 100, 42, 8, 8, 8}
	s, err := Summarize(data)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
		s.P75 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("quantiles out of order: %+v", s)
	}
}
