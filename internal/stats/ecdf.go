package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from data (copied, then sorted).
func NewECDF(data []float64) (*ECDF, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// NewECDFSorted builds an ECDF around an already-sorted series without
// copying it — the zero-allocation path for sorted derived series (e.g. a
// dist.Sample's sorted view). The ECDF shares the slice and never mutates
// it; the caller must not mutate it either. Unsorted input is detected and
// falls back to a private sorted copy.
func NewECDFSorted(sorted []float64) (*ECDF, error) {
	if len(sorted) == 0 {
		return nil, ErrEmpty
	}
	if !sort.Float64sAreSorted(sorted) {
		cp := append([]float64(nil), sorted...)
		sort.Float64s(cp)
		sorted = cp
	}
	return &ECDF{sorted: sorted}, nil
}

// At returns F_n(x) = (#points ≤ x) / n.
func (e *ECDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Quantile returns the empirical p-quantile (inverse CDF).
func (e *ECDF) Quantile(p float64) float64 { return quantileSorted(e.sorted, p) }

// Points returns (x, F(x)) pairs suitable for plotting the step function,
// evaluated at every distinct sample value.
func (e *ECDF) Points() (xs, fs []float64) {
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); i++ {
		if i+1 < len(e.sorted) && e.sorted[i+1] == e.sorted[i] {
			continue // collapse ties to the last occurrence
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(i+1)/n)
	}
	return xs, fs
}

// Series samples the ECDF at k evenly spaced probabilities and returns the
// (value, probability) pairs — the form used for the paper's CDF figures.
func (e *ECDF) Series(k int) (xs, ps []float64) {
	if k < 2 {
		k = 2
	}
	xs = make([]float64, k)
	ps = make([]float64, k)
	for i := 0; i < k; i++ {
		p := float64(i) / float64(k-1)
		ps[i] = p
		xs[i] = e.Quantile(p)
	}
	return xs, ps
}

// KSTwoSample returns the two-sample Kolmogorov–Smirnov statistic between
// samples a and b: sup_x |F_a(x) − F_b(x)|. The inputs need not be sorted;
// KSTwoSampleSorted is the allocation-free path for pre-sorted series.
func KSTwoSample(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	return KSTwoSampleSorted(sa, sb)
}

// KSTwoSampleSorted is KSTwoSample over ascending-sorted samples, with no
// copies and no re-sorts. The inputs are not mutated.
func KSTwoSampleSorted(sa, sb []float64) (float64, error) {
	if len(sa) == 0 || len(sb) == 0 {
		return 0, ErrEmpty
	}
	var i, j int
	var d float64
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		x := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// Histogram is a fixed-width binned count of a sample.
type Histogram struct {
	Lo, Hi float64   // data range covered
	Edges  []float64 // len = bins+1
	Counts []int     // len = bins
	N      int       // total points (including clamped outliers)
}

// NewHistogram bins data into the given number of equal-width bins spanning
// [min, max]. Values exactly at max land in the last bin.
func NewHistogram(data []float64, bins int) (*Histogram, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if bins < 1 {
		bins = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range data {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), N: len(data)}
	h.Edges = make([]float64, bins+1)
	width := (hi - lo) / float64(bins)
	for i := range h.Edges {
		h.Edges[i] = lo + float64(i)*width
	}
	h.Edges[bins] = hi
	for _, x := range data {
		idx := bins - 1
		if width > 0 {
			idx = int((x - lo) / width)
			if idx >= bins {
				idx = bins - 1
			}
			if idx < 0 {
				idx = 0
			}
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Density returns the normalized bin heights (fraction of points per bin).
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// LogBinnedHistogram bins positive data into logarithmically spaced bins,
// the natural binning for job durations spanning seconds to days.
func LogBinnedHistogram(data []float64, bins int) (*Histogram, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	logs := make([]float64, 0, len(data))
	for _, x := range data {
		if x <= 0 {
			continue
		}
		logs = append(logs, math.Log10(x))
	}
	if len(logs) == 0 {
		return nil, ErrEmpty
	}
	h, err := NewHistogram(logs, bins)
	if err != nil {
		return nil, err
	}
	// Convert edges back to linear scale.
	for i := range h.Edges {
		h.Edges[i] = math.Pow(10, h.Edges[i])
	}
	h.Lo = math.Pow(10, h.Lo)
	h.Hi = math.Pow(10, h.Hi)
	return h, nil
}
