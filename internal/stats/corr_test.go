package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect linear r = %v", r)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative r = %v", r)
	}
	if _, err := Pearson(x, x[:3]); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch should fail")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance should fail")
	}
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Errorf("independent r = %v, want ≈0", r)
	}
}

func TestSpearman(t *testing.T) {
	// Monotone nonlinear relation: Spearman 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("monotone spearman = %v", rho)
	}
	r, _ := Pearson(x, y)
	if r >= 1-1e-9 {
		t.Errorf("pearson should be < 1 for convex relation, got %v", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3}
	y := []float64{1, 1, 2, 2, 3}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("tied identical spearman = %v", rho)
	}
}

func TestRanks(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("ranks = %v, want %v", r, want)
			break
		}
	}
}

// TestRanksSmallDomainMatchesSort pins the O(n) small-domain fast path to
// the sorted general path bit for bit: random samples drawn from small
// value domains (which take the fast path) must rank identically to a
// reference built by sorting indices, and inputs that exceed the domain
// bound or contain NaN must decline the fast path.
func TestRanksSmallDomainMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reference := func(x []float64) []float64 {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
		r := make([]float64, len(x))
		for i := 0; i < len(idx); {
			j := i
			for j+1 < len(idx) && x[idx[j+1]] == x[idx[i]] {
				j++
			}
			avg := (float64(i+1) + float64(j+1)) / 2
			for k := i; k <= j; k++ {
				r[idx[k]] = avg
			}
			i = j + 1
		}
		return r
	}
	domains := [][]float64{
		{0, 1},
		{512, 1024, 2048, 4096, 8192},
		{-1.5, 0, 2.25, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53},
		{42},
	}
	for di, domain := range domains {
		x := make([]float64, 999)
		for i := range x {
			x[i] = domain[rng.Intn(len(domain))]
		}
		fast, ok := ranksSmallDomain(x)
		if !ok {
			t.Fatalf("domain %d: fast path declined %d distinct values", di, len(domain))
		}
		want := reference(x)
		for i := range want {
			if fast[i] != want[i] {
				t.Fatalf("domain %d: rank[%d] = %v, want %v", di, i, fast[i], want[i])
			}
		}
	}
	// A continuous sample exceeds the domain bound; NaN declines outright.
	wide := make([]float64, 100)
	for i := range wide {
		wide[i] = rng.NormFloat64()
	}
	if _, ok := ranksSmallDomain(wide); ok {
		t.Error("fast path accepted a continuous sample")
	}
	if _, ok := ranksSmallDomain([]float64{1, math.NaN(), 2}); ok {
		t.Error("fast path accepted NaN")
	}
	// And the public ranks() agrees with the reference either way.
	for _, x := range [][]float64{wide, {3, 1, 4, 1, 5, 9, 2, 6}} {
		got := ranks(x)
		want := reference(x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ranks[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestKendall(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 2, 3, 4, 5}
	tau, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-1) > 1e-12 {
		t.Errorf("identical kendall = %v", tau)
	}
	rev := []float64{5, 4, 3, 2, 1}
	tau, _ = Kendall(x, rev)
	if math.Abs(tau+1) > 1e-12 {
		t.Errorf("reversed kendall = %v", tau)
	}
	if _, err := Kendall([]float64{1, 1}, []float64{2, 2}); err == nil {
		t.Error("all ties should fail")
	}
	if _, err := Kendall(x, x[:2]); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch should fail")
	}
}

func TestContingencyChiSquare(t *testing.T) {
	// Perfectly associated 2x2.
	a := []string{"u1", "u1", "u2", "u2"}
	b := []string{"fail", "fail", "ok", "ok"}
	tab, err := NewContingencyTable(a, b)
	if err != nil {
		t.Fatal(err)
	}
	chi2, df := tab.ChiSquare()
	if df != 1 {
		t.Errorf("df = %d, want 1", df)
	}
	if math.Abs(chi2-4) > 1e-12 { // n * (phi=1)^2
		t.Errorf("chi2 = %v, want 4", chi2)
	}
	if v := tab.CramersV(); math.Abs(v-1) > 1e-12 {
		t.Errorf("V = %v, want 1", v)
	}
}

func TestCramersVIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 20000
	a := make([]string, n)
	b := make([]string, n)
	users := []string{"u1", "u2", "u3", "u4"}
	outcomes := []string{"ok", "fail"}
	for i := 0; i < n; i++ {
		a[i] = users[rng.Intn(len(users))]
		b[i] = outcomes[rng.Intn(len(outcomes))]
	}
	v, err := CramersV(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.05 {
		t.Errorf("independent V = %v, want ≈0", v)
	}
}

func TestContingencyErrors(t *testing.T) {
	if _, err := NewContingencyTable([]string{"a"}, []string{"x", "y"}); !errors.Is(err, ErrLengthMismatch) {
		t.Error("mismatch should fail")
	}
	if _, err := NewContingencyTable(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty should fail")
	}
}

func TestGini(t *testing.T) {
	// Perfect equality.
	g, err := Gini([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-12 {
		t.Errorf("equal gini = %v", g)
	}
	// Maximal inequality with n=4: G = (n-1)/n = 0.75.
	g, _ = Gini([]float64{0, 0, 0, 10})
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("max gini = %v, want 0.75", g)
	}
	if _, err := Gini(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty gini should fail")
	}
	if g, _ := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("all-zero gini = %v", g)
	}
}

func TestLorenz(t *testing.T) {
	ps, shares, err := Lorenz([]float64{1, 1, 1, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] != 0 || shares[0] != 0 || ps[4] != 1 || math.Abs(shares[4]-1) > 1e-12 {
		t.Errorf("lorenz endpoints: %v %v", ps, shares)
	}
	// Bottom 75% hold 3/10.
	if math.Abs(shares[3]-0.3) > 1e-12 {
		t.Errorf("share at 0.75 = %v, want 0.3", shares[3])
	}
	// Curve must be convex (below diagonal) for unequal data.
	for i := range ps {
		if shares[i] > ps[i]+1e-12 {
			t.Errorf("lorenz above diagonal at %v", ps[i])
		}
	}
}

func TestTopKShare(t *testing.T) {
	data := []float64{1, 2, 3, 4, 90}
	s, err := TopKShare(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.9) > 1e-12 {
		t.Errorf("top-1 share = %v", s)
	}
	if s, _ := TopKShare(data, 10); s != 1 {
		t.Errorf("k>n share = %v", s)
	}
	if s, _ := TopKShare([]float64{0, 0}, 1); s != 0 {
		t.Errorf("zero-total share = %v", s)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 500)
	for i := range data {
		data[i] = 10 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapMeanCI(data, 500, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 10 || hi < 10 {
		t.Errorf("CI [%v,%v] misses true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("CI too wide: [%v,%v]", lo, hi)
	}
	if _, _, err := BootstrapMeanCI(nil, 100, 0.05, rng); !errors.Is(err, ErrEmpty) {
		t.Error("empty bootstrap should fail")
	}
}
