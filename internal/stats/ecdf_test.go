package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECDFBasic(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); got != tt.want {
			t.Errorf("F(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if _, err := NewECDF(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty ECDF should fail")
	}
}

func TestECDFTies(t *testing.T) {
	e, _ := NewECDF([]float64{2, 2, 2, 5})
	if got := e.At(2); got != 0.75 {
		t.Errorf("F(2) = %v, want 0.75", got)
	}
	xs, fs := e.Points()
	if len(xs) != 2 || xs[0] != 2 || fs[0] != 0.75 || xs[1] != 5 || fs[1] != 1 {
		t.Errorf("Points = %v, %v", xs, fs)
	}
}

// TestECDFMonotoneProperty: F is monotone non-decreasing in x.
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		data := cleanFinite(raw)
		if len(data) == 0 {
			return true
		}
		e, err := NewECDF(data)
		if err != nil {
			return false
		}
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func cleanFinite(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, x := range raw {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

func TestECDFSeries(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	e, _ := NewECDF(data)
	xs, ps := e.Series(11)
	if len(xs) != 11 || ps[0] != 0 || ps[10] != 1 {
		t.Fatalf("series shape wrong: %v %v", xs, ps)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Errorf("series not monotone at %d", i)
		}
	}
}

func TestKSTwoSample(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d, err := KSTwoSample(a, a); err != nil || d != 0 {
		t.Errorf("KS(a,a) = %v, %v", d, err)
	}
	b := []float64{101, 102, 103}
	if d, _ := KSTwoSample(a, b); d != 1 {
		t.Errorf("KS disjoint = %v, want 1", d)
	}
	if _, err := KSTwoSample(nil, a); !errors.Is(err, ErrEmpty) {
		t.Error("empty KS should fail")
	}
	// Same law → small statistic.
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 3000)
	y := make([]float64, 3000)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	d, _ := KSTwoSample(x, y)
	if d > 0.05 {
		t.Errorf("KS same law = %v, want small", d)
	}
}

func TestHistogram(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h, err := NewHistogram(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(data) {
		t.Errorf("histogram loses points: %d != %d", total, len(data))
	}
	if len(h.Edges) != 6 {
		t.Errorf("edges = %d", len(h.Edges))
	}
	if h.Counts[4] != 3 { // 8, 9, 10 (max lands in last bin)
		t.Errorf("last bin = %d, want 3", h.Counts[4])
	}
	dens := h.Density()
	sum := 0.0
	for _, d := range dens {
		sum += d
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("density sums to %v", sum)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant data histogram total = %d", total)
	}
	if _, err := NewHistogram(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Error("empty histogram should fail")
	}
}

func TestLogBinnedHistogram(t *testing.T) {
	data := []float64{1, 10, 100, 1000, 10000}
	h, err := LogBinnedHistogram(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Bins cover one decade each; the closed upper edge puts 1000 and
	// 10000 together in the last bin.
	want := []int{1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("log bin counts = %v, want %v", h.Counts, want)
			break
		}
	}
	if math.Abs(h.Edges[0]-1) > 1e-9 || math.Abs(h.Edges[4]-10000) > 1e-6 {
		t.Errorf("edges = %v", h.Edges)
	}
	// Non-positive values are dropped, not fatal.
	h2, err := LogBinnedHistogram([]float64{-1, 0, 10, 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.N != 2 {
		t.Errorf("N = %d, want 2", h2.N)
	}
	if _, err := LogBinnedHistogram([]float64{-1, 0}, 2); !errors.Is(err, ErrEmpty) {
		t.Error("all-nonpositive should fail")
	}
}
