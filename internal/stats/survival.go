package stats

import (
	"fmt"
	"math"
	"slices"
)

// Observation is one subject of a survival analysis: a duration and
// whether the terminal event was observed (false = right-censored).
//
// For job-failure survival, a failed job contributes an observed event at
// its execution length, while a successful job is censored: it ran that
// long without failing, and would have failed at some unknown later time.
type Observation struct {
	Time     float64
	Observed bool
}

// SurvivalPoint is one step of a Kaplan–Meier curve.
type SurvivalPoint struct {
	Time     float64 // event time
	AtRisk   int     // subjects at risk just before Time
	Events   int     // events at Time
	Survival float64 // S(Time)
}

// KaplanMeier estimates the survival function S(t) from right-censored
// data using the product-limit estimator:
//
//	S(t) = Π_{t_i ≤ t} (1 − d_i / n_i)
//
// where d_i are events and n_i subjects at risk at event time t_i.
// Censored subjects leave the risk set without contributing an event.
func KaplanMeier(obs []Observation) ([]SurvivalPoint, error) {
	if len(obs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]Observation(nil), obs...)
	for _, o := range sorted {
		if o.Time < 0 || math.IsNaN(o.Time) {
			return nil, fmt.Errorf("stats: negative or NaN survival time %v", o.Time)
		}
	}
	// Sort by time with the generic sorter (no reflection per swap). The
	// estimator aggregates events and censorings per unique time, so the
	// order equal times land in cannot affect the curve; NaNs were rejected
	// above.
	slices.SortFunc(sorted, func(a, b Observation) int {
		switch {
		case a.Time < b.Time:
			return -1
		case a.Time > b.Time:
			return 1
		default:
			return 0
		}
	})

	var curve []SurvivalPoint
	surv := 1.0
	atRisk := len(sorted)
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		events, censored := 0, 0
		for i < len(sorted) && sorted[i].Time == t {
			if sorted[i].Observed {
				events++
			} else {
				censored++
			}
			i++
		}
		if events > 0 {
			surv *= 1 - float64(events)/float64(atRisk)
			curve = append(curve, SurvivalPoint{Time: t, AtRisk: atRisk, Events: events, Survival: surv})
		}
		atRisk -= events + censored
	}
	if len(curve) == 0 {
		return nil, fmt.Errorf("stats: no observed events (all %d censored)", len(obs))
	}
	return curve, nil
}

// SurvivalAt evaluates a Kaplan–Meier curve at time t (step function;
// S = 1 before the first event).
func SurvivalAt(curve []SurvivalPoint, t float64) float64 {
	s := 1.0
	for _, p := range curve {
		if p.Time > t {
			break
		}
		s = p.Survival
	}
	return s
}

// MedianSurvival returns the earliest time at which S(t) ≤ 0.5, or
// (0, false) when the curve never crosses one half (more than half of the
// subjects are censored late).
func MedianSurvival(curve []SurvivalPoint) (float64, bool) {
	for _, p := range curve {
		if p.Survival <= 0.5 {
			return p.Time, true
		}
	}
	return 0, false
}

// CumulativeHazard returns the Nelson–Aalen cumulative-hazard estimate
// H(t_i) = Σ d_j/n_j aligned with the event times of the KM curve. A
// concave H (decreasing hazard) is the infant-mortality signature.
func CumulativeHazard(curve []SurvivalPoint) []float64 {
	out := make([]float64, len(curve))
	h := 0.0
	for i, p := range curve {
		h += float64(p.Events) / float64(p.AtRisk)
		out[i] = h
	}
	return out
}

// LinearFit returns the least-squares line y = a + b·x and the R²
// coefficient of determination for paired samples. Used for trend tests
// on monthly series.
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("stats: zero variance in x")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2, nil
}

// Autocorrelation returns the sample autocorrelation of the series at the
// given lag (0 < lag < len(series)).
func Autocorrelation(series []float64, lag int) (float64, error) {
	n := len(series)
	if n == 0 {
		return 0, ErrEmpty
	}
	if lag <= 0 || lag >= n {
		return 0, fmt.Errorf("stats: lag %d out of range (0, %d)", lag, n)
	}
	m := Mean(series)
	var num, den float64
	for i := 0; i < n; i++ {
		d := series[i] - m
		den += d * d
	}
	if den == 0 {
		return 0, fmt.Errorf("stats: constant series has no autocorrelation")
	}
	for i := 0; i < n-lag; i++ {
		num += (series[i] - m) * (series[i+lag] - m)
	}
	return num / den, nil
}
