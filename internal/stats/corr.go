package stats

import (
	"errors"
	"math"
	"slices"
)

// ErrLengthMismatch is returned when paired samples differ in length.
var ErrLengthMismatch = errors.New("stats: paired samples have different lengths")

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance in pearson input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks assigns fractional ranks (average rank for ties), 1-based.
//
// The sort runs over flat (value, index) pairs instead of an index slice
// with an indirect comparator: same ordering by value, no pointer chase per
// comparison. Tied values all receive the same average rank, so the rank
// vector is a pure function of the values — the order a sort leaves equal
// elements in cannot affect the output.
func ranks(x []float64) []float64 {
	n := len(x)
	if r, ok := ranksSmallDomain(x); ok {
		return r
	}
	type pair struct {
		v float64
		i int32
	}
	ps := make([]pair, n)
	for i := range ps {
		ps[i] = pair{x[i], int32(i)}
	}
	slices.SortFunc(ps, func(a, b pair) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && ps[j+1].v == ps[i].v {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			r[ps[k].i] = avg
		}
		i = j + 1
	}
	return r
}

// maxRankDomain bounds the small-domain rank fast path: samples drawn from
// at most this many distinct values (0/1 failure indicators, schedulable
// block sizes, task counts) rank in O(n) without sorting.
const maxRankDomain = 16

// ranksSmallDomain ranks a sample with at most maxRankDomain distinct
// values in O(n·domain): it tallies the count of each distinct value, and a
// value whose cnt occurrences would occupy sorted positions
// prefix+1..prefix+cnt gets the average rank (prefix+1 + prefix+cnt)/2 —
// the sorted path's (first+last)/2 formula on the same integers, so the
// output is bit-identical to it. Returns ok=false (falling back to the
// sort) on a larger domain or any NaN, whose grouping the general path
// defines.
func ranksSmallDomain(x []float64) ([]float64, bool) {
	n := len(x)
	if n == 0 {
		return make([]float64, 0), true
	}
	var vals [maxRankDomain]float64
	var cnts [maxRankDomain]int
	nd := 0
collect:
	for _, v := range x {
		if v != v {
			return nil, false
		}
		for j := 0; j < nd; j++ {
			if vals[j] == v {
				cnts[j]++
				continue collect
			}
		}
		if nd == maxRankDomain {
			return nil, false
		}
		vals[nd] = v
		cnts[nd] = 1
		nd++
	}
	// Insertion-sort the distinct values (nd ≤ 16), counts in tow.
	for i := 1; i < nd; i++ {
		v, c := vals[i], cnts[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1], cnts[j+1] = vals[j], cnts[j]
			j--
		}
		vals[j+1], cnts[j+1] = v, c
	}
	var avg [maxRankDomain]float64
	prefix := 0
	for j := 0; j < nd; j++ {
		avg[j] = (float64(prefix+1) + float64(prefix+cnts[j])) / 2
		prefix += cnts[j]
	}
	r := make([]float64, n)
	for i, v := range x {
		for j := 0; j < nd; j++ {
			if vals[j] == v {
				r[i] = avg[j]
				break
			}
		}
	}
	return r, true
}

// Spearman returns Spearman's rank correlation ρ of the paired samples,
// handling ties by average ranks.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, ErrEmpty
	}
	return Pearson(ranks(x), ranks(y))
}

// Kendall returns Kendall's τ-b rank correlation of the paired samples.
// O(n²); fine for the bucketed series it is used on.
func Kendall(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	n := len(x)
	if n < 2 {
		return 0, ErrEmpty
	}
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	den := math.Sqrt((n0 - tiesX) * (n0 - tiesY))
	if den == 0 {
		return 0, errors.New("stats: all pairs tied in kendall input")
	}
	return (concordant - discordant) / den, nil
}

// ContingencyTable is a two-way table of counts over categorical variables.
type ContingencyTable struct {
	rows, cols map[string]int
	counts     [][]float64
	rowNames   []string
	colNames   []string
	total      float64
}

// NewContingencyTable builds a contingency table from paired categorical
// observations.
func NewContingencyTable(a, b []string) (*ContingencyTable, error) {
	if len(a) != len(b) {
		return nil, ErrLengthMismatch
	}
	if len(a) == 0 {
		return nil, ErrEmpty
	}
	t := &ContingencyTable{rows: map[string]int{}, cols: map[string]int{}}
	for i := range a {
		if _, ok := t.rows[a[i]]; !ok {
			t.rows[a[i]] = len(t.rowNames)
			t.rowNames = append(t.rowNames, a[i])
		}
		if _, ok := t.cols[b[i]]; !ok {
			t.cols[b[i]] = len(t.colNames)
			t.colNames = append(t.colNames, b[i])
		}
	}
	t.counts = make([][]float64, len(t.rowNames))
	for i := range t.counts {
		t.counts[i] = make([]float64, len(t.colNames))
	}
	for i := range a {
		t.counts[t.rows[a[i]]][t.cols[b[i]]]++
		t.total++
	}
	return t, nil
}

// ChiSquare returns the Pearson chi-square statistic and degrees of freedom
// of the table's independence test.
func (t *ContingencyTable) ChiSquare() (stat float64, df int) {
	r, c := len(t.rowNames), len(t.colNames)
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			rowSum[i] += t.counts[i][j]
			colSum[j] += t.counts[i][j]
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			expected := rowSum[i] * colSum[j] / t.total
			if expected == 0 {
				continue
			}
			d := t.counts[i][j] - expected
			stat += d * d / expected
		}
	}
	return stat, (r - 1) * (c - 1)
}

// CramersV returns Cramér's V association measure in [0,1] for the table —
// the statistic the paper uses for user↔outcome association.
func (t *ContingencyTable) CramersV() float64 {
	chi2, _ := t.ChiSquare()
	r, c := len(t.rowNames), len(t.colNames)
	k := math.Min(float64(r-1), float64(c-1))
	if k == 0 || t.total == 0 {
		return 0
	}
	return math.Sqrt(chi2 / (t.total * k))
}

// CramersV is a convenience wrapper building the table and returning V.
func CramersV(a, b []string) (float64, error) {
	t, err := NewContingencyTable(a, b)
	if err != nil {
		return 0, err
	}
	return t.CramersV(), nil
}
