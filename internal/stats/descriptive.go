// Package stats provides the descriptive and inferential statistics the
// failure analysis needs: summaries, quantiles, empirical CDFs, histograms,
// rank and product-moment correlation, categorical association, inequality
// measures (Lorenz/Gini) and bootstrap confidence intervals.
//
// Everything is implemented on plain []float64 with no external
// dependencies; functions never mutate their inputs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation receives no data.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Sum    float64
	Median float64
	P25    float64
	P75    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of data. The input need not be sorted; it is
// copied and sorted once. Callers that already hold an ascending series
// should use SummarizeSorted, which skips the defensive copy + sort.
func Summarize(data []float64) (Summary, error) {
	if len(data) == 0 {
		return Summary{}, ErrEmpty
	}
	return SummarizeSorted(sortedCopy(data))
}

// sortedCopy returns an ascending-sorted copy of data. Samples over a small
// value domain (schedulable block sizes, task counts) skip the comparison
// sort: the sorted array is rebuilt as runs of each distinct value, which
// yields the exact same bits as sorting — among equal-comparing float64s
// only ±0 and NaNs differ in representation, and those decline the fast
// path.
func sortedCopy(data []float64) []float64 {
	sorted := append([]float64(nil), data...)
	if !sortSmallDomain(sorted) {
		sort.Float64s(sorted)
	}
	return sorted
}

// sortSmallDomain sorts x in place and reports true when x is drawn from at
// most maxRankDomain distinct values, none NaN or negative zero; otherwise
// it leaves x untouched and reports false.
func sortSmallDomain(x []float64) bool {
	var vals [maxRankDomain]float64
	var cnts [maxRankDomain]int
	nd := 0
collect:
	for _, v := range x {
		if v != v || (v == 0 && math.Signbit(v)) {
			return false
		}
		for j := 0; j < nd; j++ {
			if vals[j] == v {
				cnts[j]++
				continue collect
			}
		}
		if nd == maxRankDomain {
			return false
		}
		vals[nd] = v
		cnts[nd] = 1
		nd++
	}
	for i := 1; i < nd; i++ {
		v, c := vals[i], cnts[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1], cnts[j+1] = vals[j], cnts[j]
			j--
		}
		vals[j+1], cnts[j+1] = v, c
	}
	pos := 0
	for j := 0; j < nd; j++ {
		for k := 0; k < cnts[j]; k++ {
			x[pos] = vals[j]
			pos++
		}
	}
	return true
}

// SummarizeSorted computes a Summary of an ascending-sorted sample without
// copying or re-sorting it. The input is not mutated. Unsorted input yields
// wrong quantiles and min/max; when in doubt, use Summarize.
func SummarizeSorted(sorted []float64) (Summary, error) {
	if len(sorted) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(sorted), Min: sorted[0], Max: sorted[len(sorted)-1]}
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	ss := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	s.Median = quantileSorted(sorted, 0.5)
	s.P25 = quantileSorted(sorted, 0.25)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	return s, nil
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range data {
		sum += x
	}
	return sum / float64(len(data))
}

// Variance returns the population variance, or NaN for samples of size < 1.
func Variance(data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	m := Mean(data)
	ss := 0.0
	for _, x := range data {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(data))
}

// Std returns the population standard deviation.
func Std(data []float64) float64 { return math.Sqrt(Variance(data)) }

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of data using linear
// interpolation between order statistics (type-7, the R/NumPy default).
func Quantile(data []float64, p float64) (float64, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	return quantileSorted(sortedCopy(data), p), nil
}

// quantileSorted computes the type-7 quantile of an already-sorted sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Quantiles returns the quantiles of data at each probability in ps with a
// single sort.
func Quantiles(data []float64, ps []float64) ([]float64, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	sorted := sortedCopy(data)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = quantileSorted(sorted, p)
	}
	return out, nil
}
