package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestKaplanMeierTextbook(t *testing.T) {
	// Classic worked example: events at 1, 3, 4; censored at 2 and 5.
	obs := []Observation{
		{1, true}, {2, false}, {3, true}, {4, true}, {5, false},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// S(1) = 1 - 1/5 = 0.8
	// S(3) = 0.8 * (1 - 1/3) = 0.5333...
	// S(4) = 0.5333 * (1 - 1/2) = 0.2667
	want := []struct {
		time, surv float64
		atRisk     int
	}{
		{1, 0.8, 5}, {3, 0.8 * 2.0 / 3.0, 3}, {4, 0.8 * 2.0 / 3.0 * 0.5, 2},
	}
	if len(curve) != len(want) {
		t.Fatalf("curve has %d points, want %d", len(curve), len(want))
	}
	for i, w := range want {
		p := curve[i]
		if p.Time != w.time || p.AtRisk != w.atRisk || math.Abs(p.Survival-w.surv) > 1e-12 {
			t.Errorf("point %d = %+v, want t=%v n=%d S=%v", i, p, w.time, w.atRisk, w.surv)
		}
	}
	if s := SurvivalAt(curve, 0.5); s != 1 {
		t.Errorf("S(0.5) = %v, want 1", s)
	}
	if s := SurvivalAt(curve, 3.5); math.Abs(s-0.8*2.0/3.0) > 1e-12 {
		t.Errorf("S(3.5) = %v", s)
	}
	med, ok := MedianSurvival(curve)
	if !ok || med != 4 {
		t.Errorf("median = %v, %v; want 4", med, ok)
	}
}

func TestKaplanMeierTies(t *testing.T) {
	// Two events and one censor at the same time.
	obs := []Observation{
		{2, true}, {2, true}, {2, false}, {5, true},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("points = %d", len(curve))
	}
	if curve[0].Events != 2 || curve[0].AtRisk != 4 {
		t.Errorf("tied point = %+v", curve[0])
	}
	if math.Abs(curve[0].Survival-0.5) > 1e-12 {
		t.Errorf("S(2) = %v, want 0.5", curve[0].Survival)
	}
	// Last subject at risk is the one at t=5.
	if curve[1].AtRisk != 1 || curve[1].Survival != 0 {
		t.Errorf("last point = %+v", curve[1])
	}
}

func TestKaplanMeierErrors(t *testing.T) {
	if _, err := KaplanMeier(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	if _, err := KaplanMeier([]Observation{{-1, true}}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := KaplanMeier([]Observation{{1, false}, {2, false}}); err == nil {
		t.Error("all-censored accepted")
	}
}

// TestKaplanMeierNoCensoringMatchesECDF: without censoring, KM reduces to
// 1 − ECDF.
func TestKaplanMeierNoCensoringMatchesECDF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 500)
	obs := make([]Observation, 500)
	for i := range data {
		data[i] = rng.ExpFloat64() * 100
		obs[i] = Observation{Time: data[i], Observed: true}
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	ecdf, err := NewECDF(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{10, 50, 120, 300} {
		km := SurvivalAt(curve, q)
		want := 1 - ecdf.At(q)
		if math.Abs(km-want) > 1e-9 {
			t.Errorf("S(%v) = %v, 1-ECDF = %v", q, km, want)
		}
	}
}

// TestKaplanMeierRecoversCensoredExponential: exponential lifetimes with
// independent censoring — KM at the true median should be ≈0.5 even though
// the naive ECDF of observed events is biased.
func TestKaplanMeierRecoversCensoredExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 20000
	const rate = 0.01 // median ≈ 69.3
	obs := make([]Observation, n)
	for i := range obs {
		life := rng.ExpFloat64() / rate
		censor := rng.ExpFloat64() / rate * 2 // independent censoring
		if life <= censor {
			obs[i] = Observation{Time: life, Observed: true}
		} else {
			obs[i] = Observation{Time: censor, Observed: false}
		}
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	trueMedian := math.Ln2 / rate
	if s := SurvivalAt(curve, trueMedian); math.Abs(s-0.5) > 0.02 {
		t.Errorf("S(true median) = %v, want ≈0.5", s)
	}
	med, ok := MedianSurvival(curve)
	if !ok || math.Abs(med-trueMedian)/trueMedian > 0.05 {
		t.Errorf("KM median %v, want ≈%v", med, trueMedian)
	}
}

func TestCumulativeHazard(t *testing.T) {
	obs := []Observation{{1, true}, {2, true}, {3, true}, {4, true}}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	h := CumulativeHazard(curve)
	// H = 1/4, 1/4+1/3, +1/2, +1.
	want := []float64{0.25, 0.25 + 1.0/3, 0.25 + 1.0/3 + 0.5, 0.25 + 1.0/3 + 0.5 + 1}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-12 {
			t.Errorf("H[%d] = %v, want %v", i, h[i], want[i])
		}
	}
	// Monotone non-decreasing.
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatal("cumulative hazard decreasing")
		}
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = %v + %vx, r2 %v", a, b, r2)
	}
	if _, _, _, err := LinearFit(x, y[:2]); !errors.Is(err, ErrLengthMismatch) {
		t.Error("mismatch accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero x-variance accepted")
	}
	// Noise lowers R².
	_, _, r2n, err := LinearFit(x, []float64{1, 9, 2, 8, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2n >= 0.9 {
		t.Errorf("noisy r2 = %v", r2n)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly periodic series: strong positive ACF at the period.
	series := make([]float64, 140)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 7)
	}
	ac7, err := Autocorrelation(series, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ac7 < 0.9 {
		t.Errorf("ACF at period = %v, want ≈1", ac7)
	}
	ac3, _ := Autocorrelation(series, 3)
	if ac3 > ac7 {
		t.Errorf("off-period ACF %v above on-period %v", ac3, ac7)
	}
	// White noise: near zero.
	rng := rand.New(rand.NewSource(8))
	noise := make([]float64, 5000)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	acn, _ := Autocorrelation(noise, 1)
	if math.Abs(acn) > 0.05 {
		t.Errorf("noise ACF = %v", acn)
	}
	if _, err := Autocorrelation(series, 0); err == nil {
		t.Error("lag 0 accepted")
	}
	if _, err := Autocorrelation(series, len(series)); err == nil {
		t.Error("lag ≥ n accepted")
	}
	if _, err := Autocorrelation(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	if _, err := Autocorrelation([]float64{2, 2, 2}, 1); err == nil {
		t.Error("constant series accepted")
	}
}
