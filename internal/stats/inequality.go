package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Gini returns the Gini coefficient of the non-negative sample — 0 for a
// perfectly even spread, →1 when one unit holds everything. The paper uses
// concentration measures for workload skew (jobs/core-hours per user) and
// for the spatial locality of RAS events.
func Gini(data []float64) (float64, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var cum, total float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0, nil
	}
	return (2*cum)/(n*total) - (n+1)/n, nil
}

// Lorenz returns k+1 points of the Lorenz curve of the sample: share of the
// total held by the bottom fraction p of units, for p = 0, 1/k, ..., 1.
func Lorenz(data []float64, k int) (ps, shares []float64, err error) {
	if len(data) == 0 {
		return nil, nil, ErrEmpty
	}
	if k < 1 {
		k = 10
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	total := 0.0
	for _, x := range sorted {
		total += x
	}
	cum := make([]float64, len(sorted)+1)
	for i, x := range sorted {
		cum[i+1] = cum[i] + x
	}
	ps = make([]float64, k+1)
	shares = make([]float64, k+1)
	for i := 0; i <= k; i++ {
		p := float64(i) / float64(k)
		ps[i] = p
		idx := int(math.Round(p * float64(len(sorted))))
		if total > 0 {
			shares[i] = cum[idx] / total
		}
	}
	return ps, shares, nil
}

// TopKShare returns the fraction of the total held by the largest k units.
func TopKShare(data []float64, k int) (float64, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	if k >= len(data) {
		return 1, nil
	}
	sorted := append([]float64(nil), data...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var top, total float64
	for i, x := range sorted {
		total += x
		if i < k {
			top += x
		}
	}
	if total == 0 {
		return 0, nil
	}
	return top / total, nil
}

// BootstrapMeanCI returns a (1−alpha) percentile-bootstrap confidence
// interval for the mean of data using b resamples drawn with rng.
func BootstrapMeanCI(data []float64, b int, alpha float64, rng *rand.Rand) (lo, hi float64, err error) {
	if len(data) == 0 {
		return 0, 0, ErrEmpty
	}
	if b < 10 {
		b = 10
	}
	means := make([]float64, b)
	n := len(data)
	for i := 0; i < b; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += data[rng.Intn(n)]
		}
		means[i] = sum / float64(n)
	}
	sort.Float64s(means)
	return quantileSorted(means, alpha/2), quantileSorted(means, 1-alpha/2), nil
}
