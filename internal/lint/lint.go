// Package lint is the static-analysis layer enforcing this repository's
// reproducibility invariants: deterministic iteration and accumulation
// order (serial≡parallel and byte-identity guarantees), no ambient
// nondeterminism in analysis packages, allocation-free annotated hot
// paths, and the frozen mirapack v1 layout.
//
// The package provides a small go/analysis-style framework — Analyzer,
// Pass, Diagnostic — built entirely on the standard library (go/ast,
// go/types, go/importer): the golang.org/x/tools module is not a
// dependency of this repository, so the loader in load.go resolves
// imports from compiler export data produced by `go list -export`
// instead of x/tools' packages loader. Analyzer Run functions receive
// the same material a go/analysis pass would (file set, syntax, type
// info) and report position-tagged diagnostics.
//
// Diagnostics are suppressed by an explicit, reviewable comment:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory; a bare //lint:ignore is itself reported. The
// analyzers and their conventions are documented in DESIGN.md §12.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. It is a single lowercase word.
	Name string
	// Doc is the one-paragraph description shown by `miralint -list`.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Pass is the interface between one analyzer and one package being
// analyzed. It mirrors the go/analysis Pass surface this repository
// needs.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path ("" for ad-hoc test packages).
	Path string

	diags *[]Diagnostic
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the `go vet` file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (use or def).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// Run executes every analyzer over the package and returns the
// surviving diagnostics: suppressed ones are dropped, the rest are
// sorted by position. Malformed suppression comments (no reason, or
// naming no analyzer) are themselves reported.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Path:      pkg.Path,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s over %s: %w", a.Name, pkg.Path, err)
		}
	}
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// suppressions indexes //lint:ignore comments by file and line.
type suppressions struct {
	// byLine maps file → line of the ignore comment → analyzer names.
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

const ignorePrefix = "//lint:ignore"

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: want `//lint:ignore <analyzer>[,<analyzer>] <reason>` with a non-empty reason",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				m := s.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					s.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	return s
}

// covers reports whether an ignore comment on the diagnostic's line or
// the line directly above names the diagnostic's analyzer.
func (s *suppressions) covers(d Diagnostic) bool {
	m := s.byLine[d.File]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// parentMap records the enclosing node of every node in a file. It is
// the substitute for x/tools' inspector.WithStack used by analyzers
// that need the syntactic context of a match.
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	pm := make(parentMap)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				pm[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return pm
}

// enclosingFunc returns the innermost function literal or declaration
// containing n, or nil.
func (pm parentMap) enclosingFunc(n ast.Node) ast.Node {
	for p := pm[n]; p != nil; p = pm[p] {
		switch p.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return p
		}
	}
	return nil
}

// isTestFile reports whether the file's position belongs to a _test.go
// file. The loader only feeds non-test sources to the analyzers, but
// the test harness may not, and several analyzers exempt test code.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
