package lint

// All returns every analyzer in the miralint suite, in the order they
// run and report.
func All() []*Analyzer {
	return []*Analyzer{
		FloatSum,
		HotAlloc,
		MapOrder,
		NoDeterm,
		PackFreeze,
	}
}
