package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatSum guards the bit-identity of parallel runs against the one
// numeric hazard worker pools introduce: floating-point addition is not
// associative, so accumulating floats in whatever order goroutines
// happen to finish yields run-dependent results. The par package's
// contract is slot discipline — every task writes only its own indexed
// slot, and any reduction happens serially afterwards.
//
// The analyzer inspects every callback passed to par.ForEach / par.Map
// and the same-package functions reachable from it, and flags:
//
//   - floating-point accumulation (+=, -=, *=, /=, or x = x + v) into a
//     variable captured from outside the callback — shared mutable
//     state, both a data race and an order dependence (writes to an
//     indexed slot, out[i] = v or out[i] += v, are the sanctioned
//     pattern and pass);
//   - floating-point accumulation into a package-level variable
//     anywhere in the reachable set.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc: "flags order-sensitive floating-point accumulation (captured or global " +
		"accumulators) in code reachable from par.ForEach/par.Map callbacks",
	Run: runFloatSum,
}

// parPackageSuffix identifies the worker-pool package whose callbacks
// define the parallel region.
const parPackageSuffix = "internal/par"

func runFloatSum(pass *Pass) error {
	// Map from *types.Func to its declaration, for reachability.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	visited := map[*types.Func]bool{}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				switch cb := arg.(type) {
				case *ast.FuncLit:
					checkCallback(pass, cb)
					reachFrom(pass, cb.Body, decls, visited)
				case *ast.Ident:
					if fn, ok := pass.ObjectOf(cb).(*types.Func); ok {
						reachNamed(pass, fn, decls, visited)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isParCall reports whether the call targets a function of the par
// worker-pool package.
func isParCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), parPackageSuffix)
}

// checkCallback flags captured-accumulator writes inside the callback
// literal itself.
func checkCallback(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range floatAccumTargets(pass, st) {
			// Indexed slots (out[i] op= v, out[i].f op= v) are the
			// sanctioned pattern.
			if hasIndex(lhs) {
				continue
			}
			obj := rootObject(pass, lhs)
			if obj == nil {
				continue
			}
			if declaredOutside(obj, lit) {
				pass.Reportf(st.Pos(), "parallel callback accumulates into %s, captured from outside the callback: reduction order depends on goroutine scheduling (and races); write to an indexed slot and reduce serially", obj.Name())
			}
		}
		return true
	})
}

// reachFrom walks the same-package call graph from a callback body,
// checking every reachable named function for global float
// accumulation.
func reachFrom(pass *Pass, body ast.Node, decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		var callee types.Object
		switch v := n.(type) {
		case *ast.CallExpr:
			switch fun := v.Fun.(type) {
			case *ast.Ident:
				callee = pass.ObjectOf(fun)
			case *ast.SelectorExpr:
				callee = pass.ObjectOf(fun.Sel)
			}
		}
		if fn, ok := callee.(*types.Func); ok {
			reachNamed(pass, fn, decls, visited)
		}
		return true
	})
}

// reachNamed checks a named function (if declared in this package) for
// global float accumulation and recurses into its callees.
func reachNamed(pass *Pass, fn *types.Func, decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool) {
	if visited[fn] {
		return
	}
	visited[fn] = true
	fd, ok := decls[fn]
	if !ok {
		return // other package or no body
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range floatAccumTargets(pass, st) {
			obj := rootObject(pass, lhs)
			if v, ok := obj.(*types.Var); ok && isPackageLevel(pass, v) {
				pass.Reportf(st.Pos(), "%s accumulates into package-level %s and is reachable from a parallel callback: reduction order depends on goroutine scheduling; accumulate locally and reduce serially", fn.Name(), v.Name())
			}
		}
		return true
	})
	reachFrom(pass, fd.Body, decls, visited)
}

// floatAccumTargets returns the floating-point accumulation targets of
// an assignment: lhs of op= with a float type, or x in `x = x + v`.
func floatAccumTargets(pass *Pass, st *ast.AssignStmt) []ast.Expr {
	var out []ast.Expr
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			if isFloat(pass.TypeOf(lhs)) {
				out = append(out, lhs)
			}
		}
	case token.ASSIGN:
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) || !isFloat(pass.TypeOf(lhs)) {
				continue
			}
			bin, ok := st.Rhs[i].(*ast.BinaryExpr)
			if !ok {
				continue
			}
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				obj := rootObject(pass, lhs)
				if obj != nil && (sameRoot(pass, bin.X, obj) || sameRoot(pass, bin.Y, obj)) {
					out = append(out, lhs)
				}
			}
		}
	}
	return out
}

func isPackageLevel(pass *Pass, v *types.Var) bool {
	return v.Parent() == pass.Pkg.Scope()
}

// hasIndex reports whether the lvalue path contains an index step.
func hasIndex(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return false
		}
	}
}
