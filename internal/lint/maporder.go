package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` statements over maps whose bodies have
// order-dependent effects: appending to a slice declared outside the
// loop (unless a later statement in the same block sorts it), writing
// to an outer writer or stream, accumulating into an outer
// floating-point variable, or sending on an outer channel. Go
// randomizes map iteration order, so any of these makes output depend
// on the run — exactly what the serial≡parallel and CSV≡pack
// byte-identity guarantees forbid.
//
// Order-insensitive bodies pass untouched: building another map,
// integer counting, taking a max/min, and the collect-then-sort idiom
// (append keys, sort them after the loop) are all fine.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration with order-dependent effects (appends kept unsorted, " +
		"writes to outer writers, float accumulation, channel sends); sort the keys first",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		pm := buildParents([]*ast.File{file})
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, pm, rs)
			return true
		})
	}
	return nil
}

// checkMapRangeBody reports every order-dependent effect in the body of
// a map-range statement.
func checkMapRangeBody(pass *Pass, pm parentMap, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, pm, rs, st)
		case *ast.SendStmt:
			if obj := rootObject(pass, st.Chan); obj != nil && declaredOutside(obj, rs) {
				pass.Reportf(st.Pos(), "send on %s inside map iteration delivers values in random order; iterate sorted keys", obj.Name())
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, rs, st)
		}
		return true
	})
}

// checkMapRangeAssign flags float accumulation into outer variables and
// appends to outer slices that are never sorted afterwards.
func checkMapRangeAssign(pass *Pass, pm parentMap, rs *ast.RangeStmt, st *ast.AssignStmt) {
	// Compound float accumulation: x += v, x -= v, x *= v, x /= v.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			obj := rootObject(pass, lhs)
			if obj == nil || !declaredOutside(obj, rs) {
				continue
			}
			if isFloat(pass.TypeOf(lhs)) {
				pass.Reportf(st.Pos(), "floating-point accumulation into %s inside map iteration is order-dependent; iterate sorted keys", obj.Name())
			}
		}
	case token.ASSIGN, token.DEFINE:
		// x = x + v (float) and s = append(s, ...).
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) {
				break
			}
			rhs := st.Rhs[i]
			obj := rootObject(pass, lhs)
			if obj == nil || !declaredOutside(obj, rs) {
				continue
			}
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				if len(call.Args) > 0 && sameRoot(pass, call.Args[0], obj) {
					if !sortedAfter(pass, pm, rs, obj) {
						pass.Reportf(st.Pos(), "append to %s inside map iteration accumulates in random order and %s is never sorted afterwards; iterate sorted keys or sort the result", obj.Name(), obj.Name())
					}
				}
				continue
			}
			if bin, ok := rhs.(*ast.BinaryExpr); ok && isFloat(pass.TypeOf(lhs)) {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if sameRoot(pass, bin.X, obj) || sameRoot(pass, bin.Y, obj) {
						pass.Reportf(st.Pos(), "floating-point accumulation into %s inside map iteration is order-dependent; iterate sorted keys", obj.Name())
					}
				}
			}
		}
	}
}

// writerMethods are method names that emit output in call order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"EndRecord": true, // fastcsv.Writer row terminator
}

// checkMapRangeCall flags writes to writers/streams: fmt.Print*/Fprint*
// package calls and Write*-family method calls on outer receivers.
func checkMapRangeCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !writerMethods[sel.Sel.Name] {
		return
	}
	// Package-level fmt.Print* / fmt.Fprint*.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s inside map iteration emits output in random order; iterate sorted keys", sel.Sel.Name)
			}
			return
		}
	}
	// Method call on a receiver declared outside the loop.
	if obj := rootObject(pass, sel.X); obj != nil && declaredOutside(obj, rs) {
		pass.Reportf(call.Pos(), "%s.%s inside map iteration emits output in random order; iterate sorted keys", obj.Name(), sel.Sel.Name)
	}
}

// sortedAfter reports whether a statement after rs in the same
// enclosing block sorts the slice held by obj — a sort/slices package
// call (sort.Strings, sort.Slice, slices.SortFunc, ...) or a
// same-package helper whose name starts with "sort", taking the slice
// as an argument. That is the sanctioned collect-then-sort idiom.
func sortedAfter(pass *Pass, pm parentMap, rs *ast.RangeStmt, obj types.Object) bool {
	var stmts []ast.Stmt
	switch p := pm[rs].(type) {
	case *ast.BlockStmt:
		stmts = p.List
	case *ast.CaseClause:
		stmts = p.Body
	case *ast.CommClause:
		stmts = p.Body
	default:
		return false
	}
	after := false
	for _, st := range stmts {
		if st == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortingCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if sameRoot(pass, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortingCall recognizes calls that order a slice: anything from the
// sort or slices packages, or a function whose own name starts with
// "sort" (package-local helpers like sortJobEvents).
func isSortingCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
				path := pn.Imported().Path()
				return path == "sort" || path == "slices"
			}
		}
		return strings.HasPrefix(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.HasPrefix(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// rootObject resolves the base object of an lvalue-ish expression:
// x → x, x.f → x, x[i] → x, *x → x, (x) → x.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(v)
		case *ast.SelectorExpr:
			// For pkg.Var the root is the var itself, not the package.
			if id, ok := v.X.(*ast.Ident); ok {
				if _, isPkg := pass.ObjectOf(id).(*types.PkgName); isPkg {
					return pass.ObjectOf(v.Sel)
				}
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

func sameRoot(pass *Pass, e ast.Expr, obj types.Object) bool {
	r := rootObject(pass, e)
	return r != nil && r == obj
}

// declaredOutside reports whether obj's declaration lies outside the
// node's source range — i.e. the variable outlives one iteration.
func declaredOutside(obj types.Object, n ast.Node) bool {
	if obj.Pos() == token.NoPos {
		return true // package-level or imported
	}
	return obj.Pos() < n.Pos() || obj.Pos() > n.End()
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}
