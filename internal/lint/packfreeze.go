package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PackFreeze mechanizes the DESIGN §10 format-freeze rule: the
// declarations that define a serialized layout are annotated
// `//mira:frozen`, and the analyzer hashes their printed form. The
// hash must match the package's declared layout-hash constant, and —
// for layouts this analyzer pins, like mirapack version 1 — the
// recorded hash for the declared version. Changing any frozen
// declaration therefore fails the build until the version constant is
// bumped and the new hash recorded, making silent format drift
// impossible.
//
// Contract per package containing //mira:frozen declarations:
//
//   - an integer constant named Version or FormatVersion;
//   - a string constant named LayoutHash or FrozenLayoutHash holding
//     "sha256:<64 hex digits>" over the frozen declarations;
//   - the hash constant itself must not be inside a frozen declaration
//     (updating it would re-change the hash it records).
//
// The hash covers the printed syntax of each frozen declaration (doc
// comments excluded), concatenated in file-name-then-position order.
// A mismatch diagnostic carries the computed hash, so recording a new
// layout after a version bump is copy-paste.
var PackFreeze = &Analyzer{
	Name: "packfreeze",
	Doc: "verifies //mira:frozen layout declarations hash to the declared layout-hash " +
		"constant and that pinned frozen versions (mirapack v1) are never edited without a version bump",
	Run: runPackFreeze,
}

const frozenDirective = "//mira:frozen"

// frozenPins records, per package import path, the layout hash of every
// version whose freeze is final. Editing a frozen declaration in one of
// these packages without bumping the version constant is an error even
// if the in-package hash constant is updated to match.
var frozenPins = map[string]map[int64]string{
	"repro/internal/pack": {
		1: "aaf2950ff3e793569a519303e354cd93f506af29985381b624f8450147884191",
	},
}

func runPackFreeze(pass *Pass) error {
	type frozenDecl struct {
		file string
		pos  token.Pos
		node ast.Decl
	}
	var frozen []frozenDecl
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		for _, decl := range file.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.GenDecl:
				doc = d.Doc
			case *ast.FuncDecl:
				doc = d.Doc
			}
			if hasDirective(doc, frozenDirective) {
				frozen = append(frozen, frozenDecl{file: name, pos: decl.Pos(), node: decl})
			}
		}
	}
	if len(frozen) == 0 {
		return nil
	}
	sort.Slice(frozen, func(i, j int) bool {
		if frozen[i].file != frozen[j].file {
			return frozen[i].file < frozen[j].file
		}
		return frozen[i].pos < frozen[j].pos
	})

	h := sha256.New()
	for _, fd := range frozen {
		// Print the declaration without its doc comment: prose edits
		// must not break a layout freeze.
		node := fd.node
		switch d := node.(type) {
		case *ast.GenDecl:
			cp := *d
			cp.Doc = nil
			node = &cp
		case *ast.FuncDecl:
			cp := *d
			cp.Doc = nil
			node = &cp
		}
		if err := printer.Fprint(h, pass.Fset, node); err != nil {
			return fmt.Errorf("packfreeze: print frozen decl: %w", err)
		}
		h.Write([]byte{'\n', 0})
	}
	computed := hex.EncodeToString(h.Sum(nil))

	version, versionConst := findIntConst(pass, "Version", "FormatVersion")
	declared, hashConst := findStringConst(pass, "LayoutHash", "FrozenLayoutHash")
	if versionConst == nil || hashConst == nil {
		pass.Reportf(frozen[0].node.Pos(),
			"package %s has //mira:frozen declarations but no %s constant; declare an integer Version/FormatVersion and a string LayoutHash/FrozenLayoutHash (\"sha256:<hex>\")",
			pass.Pkg.Name(), missingFreezeAnchors(versionConst, hashConst))
		return nil
	}
	// The hash constant must live outside the frozen set, or recording a
	// new hash would invalidate itself.
	for _, fd := range frozen {
		if hashConst.Pos() >= fd.node.Pos() && hashConst.Pos() <= fd.node.End() {
			pass.Reportf(hashConst.Pos(), "layout-hash constant %s is itself inside a //mira:frozen declaration; move it out (recording a new hash must not change the hashed layout)", hashConst.Name())
			return nil
		}
	}

	declaredHex := strings.TrimPrefix(declared, "sha256:")
	if declaredHex != computed {
		pass.Reportf(hashConst.Pos(),
			"frozen layout changed: %s records sha256:%s but the //mira:frozen declarations hash to sha256:%s — if the layout change is intentional, bump %s (now %d) and record the new hash",
			hashConst.Name(), declaredHex, computed, versionConst.Name(), version)
		return nil
	}
	if pins, ok := frozenPins[pass.Path]; ok {
		if pinned, ok := pins[version]; ok && pinned != computed {
			pass.Reportf(versionConst.Pos(),
				"%s version %d is frozen (DESIGN §10): its layout declarations no longer hash to the recorded freeze (pinned sha256:%s, computed sha256:%s); bump %s and record the new hash",
				pass.Pkg.Name(), version, pinned, computed, versionConst.Name())
		}
	}
	return nil
}

func missingFreezeAnchors(versionConst, hashConst types.Object) string {
	switch {
	case versionConst == nil && hashConst == nil:
		return "Version or LayoutHash"
	case versionConst == nil:
		return "Version"
	default:
		return "LayoutHash"
	}
}

// findIntConst returns the value and object of the first package-level
// integer constant with one of the given names.
func findIntConst(pass *Pass, names ...string) (int64, types.Object) {
	for _, name := range names {
		if obj, ok := pass.Pkg.Scope().Lookup(name).(*types.Const); ok {
			if v, ok := constant.Int64Val(constant.ToInt(obj.Val())); ok {
				return v, obj
			}
		}
	}
	return 0, nil
}

// findStringConst returns the value and object of the first
// package-level string constant with one of the given names.
func findStringConst(pass *Pass, names ...string) (string, types.Object) {
	for _, name := range names {
		if obj, ok := pass.Pkg.Scope().Lookup(name).(*types.Const); ok {
			if obj.Val().Kind() == constant.String {
				return constant.StringVal(obj.Val()), obj
			}
		}
	}
	return "", nil
}
