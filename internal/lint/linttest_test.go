package lint

// The analyzer test harness mirrors golang.org/x/tools' analysistest on
// the standard library: each testdata package under testdata/src/<name>
// is loaded with LoadDir, run through Run (so the //lint:ignore
// suppression path is exercised exactly as in production), and the
// surviving diagnostics are checked against `// want "regexp"`
// expectation comments. Every diagnostic must be wanted and every want
// must be matched, so both false positives and silently weakened
// analyzers fail the suite.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// moduleRoot locates the repository root (the directory holding go.mod)
// above the test's working directory; LoadDir resolves testdata imports
// from there.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// loadTestdata loads one testdata package directory as an ad-hoc
// package.
func loadTestdata(t *testing.T, dir string) *Package {
	t.Helper()
	pkg, err := LoadDir(moduleRoot(t), dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	return pkg
}

// runOn loads a directory and runs the analyzers over it, returning the
// post-suppression diagnostics.
func runOn(t *testing.T, dir string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg := loadTestdata(t, dir)
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("run over %s: %v", dir, err)
	}
	return diags
}

// A want is one expected diagnostic: a regexp that must match
// "analyzer: message" of a diagnostic reported on the comment's line.
type want struct {
	pos     string // file:line, for error messages
	re      *regexp.Regexp
	matched bool
}

const wantMarker = "// want "

var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts the `// want "regexp" ["regexp" ...]` comments of
// a loaded package, keyed by file:line.
func parseWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantMarker)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos.Filename, pos.Line)
				quoted := wantQuoted.FindAllStringSubmatch(c.Text[idx+len(wantMarker):], -1)
				if len(quoted) == 0 {
					t.Errorf("%s: `// want` comment with no quoted regexp", key)
					continue
				}
				for _, q := range quoted {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, q[1], err)
						continue
					}
					wants[key] = append(wants[key], &want{pos: key, re: re})
				}
			}
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// testAnalyzer runs analyzers over testdata/src/<name> and checks the
// diagnostics against the package's want comments.
func testAnalyzer(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg := loadTestdata(t, dir)
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("run over %s: %v", dir, err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		key := posKey(d.File, d.Line)
		got := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(got) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, got)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re.String())
			}
		}
	}
}

func TestMapOrder(t *testing.T) { testAnalyzer(t, "maporder", MapOrder) }
func TestHotAlloc(t *testing.T) { testAnalyzer(t, "hotalloc", HotAlloc) }
func TestFloatSum(t *testing.T) { testAnalyzer(t, "floatsum", FloatSum) }
func TestNoDeterm(t *testing.T) { testAnalyzer(t, "nodeterm", NoDeterm) }
func TestPackFreezeMissingAnchors(t *testing.T) {
	testAnalyzer(t, "packfreeze_missing", PackFreeze)
}
func TestPackFreezeHashInsideFrozen(t *testing.T) {
	testAnalyzer(t, "packfreeze_inside", PackFreeze)
}

// TestNoDetermUnguarded checks that a package with neither a guarded
// import-path suffix nor a //mira:deterministic directive is left
// alone, whatever it calls.
func TestNoDetermUnguarded(t *testing.T) {
	diags := runOn(t, filepath.Join("testdata", "src", "unguarded"), NoDeterm)
	for _, d := range diags {
		t.Errorf("unguarded package flagged: %s", d)
	}
}

// TestSuppression pins the //lint:ignore mechanics end to end: a
// reasoned ignore naming the right analyzer silences the diagnostic
// (same line or line above), a reason-less ignore is itself reported
// and suppresses nothing, and an ignore naming a different analyzer
// does not cover the diagnostic.
func TestSuppression(t *testing.T) {
	diags := runOn(t, filepath.Join("testdata", "src", "suppress"), MapOrder)
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer)
	}
	// One malformed-ignore report, plus the two maporder diagnostics the
	// bad ignores failed to cover; the two well-formed ignores suppress
	// theirs.
	wantAnalyzers := []string{"lint", "maporder", "maporder"}
	if len(got) != len(wantAnalyzers) {
		t.Fatalf("got %d diagnostics %v, want analyzers %v:\n%s",
			len(got), got, wantAnalyzers, diagString(diags))
	}
	counts := map[string]int{}
	for _, a := range got {
		counts[a]++
	}
	if counts["lint"] != 1 || counts["maporder"] != 2 {
		t.Fatalf("got analyzers %v, want one lint + two maporder:\n%s", got, diagString(diags))
	}
	for _, d := range diags {
		if d.Analyzer == "lint" && !strings.Contains(d.Message, "malformed //lint:ignore") {
			t.Errorf("malformed-ignore diagnostic has unexpected message: %s", d.Message)
		}
	}
}

func diagString(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
