package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-allocation discipline of functions
// annotated with a `//mira:hotpath` doc-comment directive: the fastcsv
// record loops, the mirapack column decoders, and the dist sorted-core
// statistics, whose ≈99%-allocation-reduction pins are the product of
// keeping these exact bodies garbage-free. Inside an annotated
// function it flags the constructs that put allocations back:
//
//   - fmt formatting calls (Sprintf and friends allocate their result
//     and box every argument);
//   - string↔[]byte conversions, except in the contexts the compiler
//     compiles allocation-free (map index, comparison, switch, range,
//     len/cap);
//   - append onto a slice that starts empty with no capacity (growth
//     reallocates; pre-size it or reuse a caller buffer);
//   - capturing closures that escape their creating call (each closure
//     value is heap-allocated);
//   - interface boxing: passing or returning a concrete non-pointer
//     value where an interface is expected.
//
// Deliberate exceptions carry a //lint:ignore hotalloc comment with the
// reason, which doubles as documentation at the allocation site.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags allocating constructs (fmt calls, string<->[]byte conversions, " +
		"unbounded append, escaping closures, interface boxing) in //mira:hotpath functions",
	Run: runHotAlloc,
}

const hotpathDirective = "//mira:hotpath"

// hasDirective reports whether a doc comment group contains a comment
// line starting with the directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		pm := buildParents([]*ast.File{file})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			h := &hotChecker{pass: pass, pm: pm, fn: fd}
			h.check()
		}
	}
	return nil
}

type hotChecker struct {
	pass *Pass
	pm   parentMap
	fn   *ast.FuncDecl
}

func (h *hotChecker) check() {
	// sigs tracks the result signature of the innermost function
	// (declaration or literal) while walking, so return statements are
	// judged against the right result types.
	var sigs []*types.Signature
	if obj, ok := h.pass.ObjectOf(h.fn.Name).(*types.Func); ok {
		sigs = append(sigs, obj.Type().(*types.Signature))
	}
	var nodes []ast.Node
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		if n == nil {
			ended := nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
			if _, ok := ended.(*ast.FuncLit); ok && len(sigs) > 1 {
				sigs = sigs[:len(sigs)-1]
			}
			return true
		}
		nodes = append(nodes, n)
		switch v := n.(type) {
		case *ast.FuncLit:
			if sig, ok := h.pass.TypeOf(v).(*types.Signature); ok {
				sigs = append(sigs, sig)
			}
			h.checkFuncLit(v)
		case *ast.CallExpr:
			h.checkCall(v)
		case *ast.ReturnStmt:
			if len(sigs) > 0 {
				h.checkReturn(v, sigs[len(sigs)-1])
			}
		}
		return true
	})
}

// checkCall dispatches the call-shaped checks: fmt calls, conversions,
// unbounded append, and argument boxing.
func (h *hotChecker) checkCall(call *ast.CallExpr) {
	// Type conversion?
	if tv, ok := h.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		h.checkConversion(call)
		return
	}
	// Builtin?
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := h.pass.ObjectOf(id).(*types.Builtin); ok {
			if b.Name() == "append" {
				h.checkAppend(call)
			}
			return
		}
	}
	if fn := h.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		h.pass.Reportf(call.Pos(), "fmt.%s allocates its result and boxes its arguments; hot paths build output with strconv.Append* into a reused buffer", fn.Name())
		return
	}
	h.checkArgBoxing(call)
}

// checkConversion flags string(b []byte) and []byte(s string) except in
// the contexts the compiler keeps allocation-free.
func (h *hotChecker) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	to := h.pass.TypeOf(call.Fun)
	from := h.pass.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	s2b := isString(from) && isByteSlice(to)
	b2s := isByteSlice(from) && isString(to)
	if !s2b && !b2s {
		return
	}
	if h.nonAllocConversionContext(call) {
		return
	}
	if b2s {
		h.pass.Reportf(call.Pos(), "string([]byte) conversion copies the bytes; keep the field as []byte or intern it")
	} else {
		h.pass.Reportf(call.Pos(), "[]byte(string) conversion copies the string; operate on the original bytes")
	}
}

// nonAllocConversionContext recognizes the compiler-optimized uses of a
// string↔[]byte conversion: m[string(b)], comparisons, switch tags and
// case values, range string(b), and len/cap.
func (h *hotChecker) nonAllocConversionContext(call *ast.CallExpr) bool {
	child := ast.Node(call)
	parent := h.pm[child]
	// Unwrap parentheses.
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		child = p
		parent = h.pm[p]
	}
	switch p := parent.(type) {
	case *ast.IndexExpr:
		if p.Index == child {
			if t := h.pass.TypeOf(p.X); t != nil {
				_, isMap := t.Underlying().(*types.Map)
				return isMap
			}
		}
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return true
		}
	case *ast.SwitchStmt:
		return p.Tag == child
	case *ast.CaseClause:
		return true
	case *ast.RangeStmt:
		return p.X == child
	case *ast.CallExpr:
		if id := calleeIdent(p.Fun); id != nil {
			if b, ok := h.pass.ObjectOf(id).(*types.Builtin); ok {
				return b.Name() == "len" || b.Name() == "cap"
			}
		}
	}
	return false
}

// checkAppend flags append onto a slice that was created in this
// function with no capacity: every growth step reallocates and copies.
// Appends onto parameters, struct fields, and capacity-carrying make
// calls are the reuse idiom and pass.
func (h *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := h.pass.ObjectOf(dst).(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	// Declared inside this function?
	if obj.Pos() < h.fn.Pos() || obj.Pos() > h.fn.End() {
		return
	}
	init, isLocalDef := h.localInit(obj)
	if !isLocalDef {
		return // parameter or result: caller-owned buffer
	}
	if freshCapless(init) {
		h.pass.Reportf(call.Pos(), "append grows %s from zero capacity, reallocating as it goes; pre-size it (make with capacity) or append into a reused buffer", obj.Name())
	}
}

// localInit finds the initializer expression of a variable defined in
// the checked function body (nil for `var x T`). The second result is
// false when the object is not body-defined (parameter, receiver,
// named result).
func (h *hotChecker) localInit(obj *types.Var) (ast.Expr, bool) {
	var init ast.Expr
	found := false
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range v.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && h.pass.TypesInfo.Defs[id] == obj {
					found = true
					if len(v.Rhs) == len(v.Lhs) {
						init = v.Rhs[i]
					}
					return false
				}
			}
		case *ast.ValueSpec:
			for i, name := range v.Names {
				if h.pass.TypesInfo.Defs[name] == obj {
					found = true
					if i < len(v.Values) {
						init = v.Values[i]
					}
					return false
				}
			}
		}
		return true
	})
	return init, found
}

// freshCapless reports whether init yields a slice with no spare
// capacity to grow into: nil (`var x []T`), a composite literal, or a
// two-argument make.
func freshCapless(init ast.Expr) bool {
	switch v := init.(type) {
	case nil:
		return true
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" {
			return len(v.Args) < 3
		}
	}
	return false
}

// checkFuncLit flags closures that capture variables and escape their
// creating expression; each such closure is one heap allocation per
// execution of the enclosing function.
func (h *hotChecker) checkFuncLit(lit *ast.FuncLit) {
	captured := h.capturedVars(lit)
	if len(captured) == 0 {
		return
	}
	parent := h.pm[ast.Node(lit)]
	// Immediately invoked: func(){...}() does not escape.
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun == ast.Expr(lit) {
		return
	}
	// Bound to a local that is only ever called directly: the compiler
	// keeps the closure on the stack.
	if asg, ok := parent.(*ast.AssignStmt); ok && asg.Tok == token.DEFINE && len(asg.Lhs) == 1 {
		if id, ok := asg.Lhs[0].(*ast.Ident); ok {
			if obj := h.pass.TypesInfo.Defs[id]; obj != nil && h.onlyCalledDirectly(obj) {
				return
			}
		}
	}
	h.pass.Reportf(lit.Pos(), "closure capturing %s escapes and heap-allocates per call; pass the state explicitly", strings.Join(captured, ", "))
}

// capturedVars lists the names of enclosing-function variables the
// literal reads or writes.
func (h *hotChecker) capturedVars(lit *ast.FuncLit) []string {
	seen := map[types.Object]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := h.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Captured: declared in the enclosing function (including its
		// parameters), outside the literal.
		if v.Pos() >= h.fn.Pos() && v.Pos() <= h.fn.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}

// onlyCalledDirectly reports whether every use of obj in the hot
// function is as the callee of a call expression.
func (h *hotChecker) onlyCalledDirectly(obj types.Object) bool {
	direct := true
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || h.pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if call, ok := h.pm[ast.Node(id)].(*ast.CallExpr); !ok || call.Fun != ast.Expr(id) {
			direct = false
			return false
		}
		return true
	})
	return direct
}

// checkArgBoxing flags concrete non-pointer values passed where the
// callee takes an interface: the conversion stores the value in a
// freshly allocated box (pointer-shaped values are stored directly and
// are exempt).
func (h *hotChecker) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := h.pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		h.checkBox(arg, pt, "passing %s as %s boxes it into a fresh allocation")
	}
}

// checkReturn flags concrete non-pointer values returned as interface
// results.
func (h *hotChecker) checkReturn(ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or comma-ok spread; nothing boxed here
	}
	for i, res := range ret.Results {
		h.checkBox(res, sig.Results().At(i).Type(), "returning %s as %s boxes it into a fresh allocation")
	}
}

func (h *hotChecker) checkBox(e ast.Expr, target types.Type, format string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := h.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	h.pass.Reportf(e.Pos(), format, tv.Type.String(), target.String())
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && e.Kind() == types.Byte
}

// pointerShaped reports whether values of t fit in an interface's data
// word without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func calleeIdent(fun ast.Expr) *ast.Ident {
	switch v := fun.(type) {
	case *ast.Ident:
		return v
	case *ast.ParenExpr:
		return calleeIdent(v.X)
	}
	return nil
}

// calleeFunc resolves the called function object, if it is a named
// function or method.
func (h *hotChecker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := h.pass.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := h.pass.ObjectOf(fun.Sel).(*types.Func)
		return f
	case *ast.ParenExpr:
		inner := *call
		inner.Fun = fun.X
		return h.calleeFunc(&inner)
	}
	return nil
}
