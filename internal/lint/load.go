package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked unit of analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the go-list patterns (e.g. "./...") in dir, parses and
// type-checks every matched package, and returns them ready for
// analysis. Only non-test Go sources are loaded: the invariants guarded
// by this package concern production code, and test files are exempt by
// construction.
//
// Dependencies are not re-parsed; their type information comes from the
// compiler export data `go list -export` leaves in the build cache.
// This keeps the loader self-contained on the standard library — no
// golang.org/x/tools — while type-checking against exactly what the
// compiler built.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single directory of Go files as an ad-hoc package —
// the path the analyzer test harness uses for testdata packages, which
// the go tool deliberately does not list. Imports are resolved through
// `go list -export` run from moduleDir, so testdata may import both the
// standard library and this module's packages.
func LoadDir(moduleDir, pkgDir string) (*Package, error) {
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", pkgDir)
	}
	sort.Strings(goFiles)

	// Parse first to learn the import set, then resolve export data for
	// exactly those imports (and their dependencies).
	fset := token.NewFileSet()
	files, err := parseFiles(fset, pkgDir, goFiles)
	if err != nil {
		return nil, err
	}
	importSet := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return checkParsed(fset, exportDataImporter(fset, exports), pkgDir, files[0].Name.Name, files)
}

// goList runs `go list -export -deps -json` over args in dir and
// decodes the JSON stream.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmdArgs := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// exportDataImporter type-checks imports from the compiler export data
// files recorded by `go list -export`.
func exportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files, err := parseFiles(fset, dir, goFiles)
	if err != nil {
		return nil, err
	}
	return checkParsed(fset, imp, dir, path, files)
}

func checkParsed(fset *token.FileSet, imp types.Importer, dir, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", dir, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: check %s: %w", dir, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
