package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDeterm bans ambient nondeterminism — wall clocks, the global
// math/rand state, and environment reads — inside the deterministic
// analysis packages. Everything those packages compute must be a pure
// function of their inputs (corpus + seed + config), or the
// serial≡parallel equivalence and regenerate-and-compare guarantees
// silently stop meaning anything. Clocks and randomness are injected
// instead: *rand.Rand parameters seeded from Config.Seed, timestamps
// carried by the corpus.
//
// Guarded packages are the built-in deterministic set (see
// deterministicPaths) plus any package containing a
// `//mira:deterministic` directive comment.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "bans time.Now, global math/rand, and os.Getenv in deterministic analysis " +
		"packages; inject seeds, clocks, and config instead",
	Run: runNoDeterm,
}

// deterministicPaths are the import-path suffixes of the packages whose
// outputs must be pure functions of corpus + seed + config.
var deterministicPaths = []string{
	"internal/core",
	"internal/experiments",
	"internal/report",
	"internal/sim",
	"internal/pack",
	"internal/dist",
	"internal/stats",
	"internal/sched",
	"internal/fastcsv",
	"internal/raslog",
	"internal/joblog",
	"internal/tasklog",
	"internal/iolog",
	"internal/machine",
}

const deterministicDirective = "//mira:deterministic"

func runNoDeterm(pass *Pass) error {
	if !deterministicPackage(pass) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on injected values
			// (e.g. (*rand.Rand).Float64) are exactly the sanctioned
			// alternative.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if msg := nondeterministicFunc(fn); msg != "" {
				pass.Reportf(sel.Pos(), "%s", msg)
			}
			return true
		})
	}
	return nil
}

func deterministicPackage(pass *Pass) bool {
	for _, suffix := range deterministicPaths {
		if strings.HasSuffix(pass.Path, suffix) {
			return true
		}
	}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, deterministicDirective) {
					return true
				}
			}
		}
	}
	return false
}

// nondeterministicFunc returns the diagnostic for a banned function, or
// "" when the function is allowed.
func nondeterministicFunc(fn *types.Func) string {
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "time." + name + " in a deterministic package: take the reference time as a parameter (the corpus carries its own timestamps)"
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewZipf, NewPCG, ...) build the
		// injected generators the packages are supposed to use; every
		// other package-level function draws from ambient global state.
		if !strings.HasPrefix(name, "New") {
			return path + "." + name + " draws from the global generator: accept a *rand.Rand seeded from the configuration instead"
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ", "ExpandEnv":
			return "os." + name + " in a deterministic package: thread the setting through explicit configuration"
		}
	}
	return ""
}
