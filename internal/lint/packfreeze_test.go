package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestPackFreezeStaleHash(t *testing.T) { testAnalyzer(t, "packfreeze", PackFreeze) }

// computedHashRe extracts the computed layout hash a mismatch
// diagnostic carries for copy-paste recording.
var computedHashRe = regexp.MustCompile(`hash to sha256:([0-9a-f]{64})`)

const zeroHash = "0000000000000000000000000000000000000000000000000000000000000000"

// copyReplacing copies the non-test Go files of src into a fresh temp
// directory with old replaced by new — the harness's way of "editing" a
// frozen package between analyzer runs. A non-empty only list restricts
// the copy to those file names (for packages with build-constrained
// files).
func copyReplacing(t *testing.T, src, old, new string, only ...string) string {
	t.Helper()
	keep := map[string]bool{}
	for _, name := range only {
		keep[name] = true
	}
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if len(keep) > 0 && !keep[name] {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		out := strings.ReplaceAll(string(data), old, new)
		if err := os.WriteFile(filepath.Join(dst, name), []byte(out), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// mustOneDiag asserts exactly one diagnostic containing substr and
// returns it.
func mustOneDiag(t *testing.T, diags []Diagnostic, substr string) Diagnostic {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly one containing %q:\n%s", len(diags), substr, diagString(diags))
	}
	if !strings.Contains(diags[0].Message, substr) {
		t.Fatalf("diagnostic %q does not contain %q", diags[0].Message, substr)
	}
	return diags[0]
}

// TestPackFreezeLifecycle walks the full freeze protocol: a stale hash
// is reported with the computed hash in the message; recording that
// hash makes the package clean; editing a frozen declaration trips the
// freeze again; re-recording the hash without a version bump still
// fails once the version is pinned; and bumping the version is the
// sanctioned way out.
func TestPackFreezeLifecycle(t *testing.T) {
	src := filepath.Join("testdata", "src", "packfreeze")

	d := mustOneDiag(t, runOn(t, src, PackFreeze), "frozen layout changed")
	m := computedHashRe.FindStringSubmatch(d.Message)
	if m == nil {
		t.Fatalf("mismatch diagnostic carries no computed hash: %s", d.Message)
	}
	hash1 := m[1]

	// Recording the computed hash makes the package clean.
	clean := copyReplacing(t, src, zeroHash, hash1)
	if diags := runOn(t, clean, PackFreeze); len(diags) != 0 {
		t.Fatalf("package with recorded hash still flagged:\n%s", diagString(diags))
	}

	// Editing a frozen declaration trips the freeze again.
	broken := copyReplacing(t, clean, `"MINIPACK"`, `"MAXIPACK"`)
	d = mustOneDiag(t, runOn(t, broken, PackFreeze), "frozen layout changed")
	hash2 := computedHashRe.FindStringSubmatch(d.Message)[1]
	if hash2 == hash1 {
		t.Fatal("editing a frozen declaration did not change the computed hash")
	}

	// Updating the hash constant without bumping Version is caught by
	// the analyzer-side pin.
	rerecorded := copyReplacing(t, broken, hash1, hash2)
	frozenPins["packfreeze"] = map[int64]string{1: hash1}
	defer delete(frozenPins, "packfreeze")
	mustOneDiag(t, runOn(t, rerecorded, PackFreeze), "version 1 is frozen")

	// Bumping the version alongside the new hash is the sanctioned path.
	bumped := copyReplacing(t, rerecorded, "Version = 1", "Version = 2")
	if diags := runOn(t, bumped, PackFreeze); len(diags) != 0 {
		t.Fatalf("version bump with recorded hash still flagged:\n%s", diagString(diags))
	}
}

// TestPackFreezeGuardsMirapackV1 is the acceptance scenario from the
// real tree: editing a mirapack layout constant without a version bump
// must fail the lint run.
func TestPackFreezeGuardsMirapackV1(t *testing.T) {
	root := moduleRoot(t)
	src := filepath.Join(root, "internal", "pack")
	// Copy only the files the go tool selects for this platform: the
	// package has build-constrained variants of its snapshot reader.
	listed, err := goList(root, []string{"./internal/pack"})
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, p := range listed {
		if !p.DepOnly {
			goFiles = p.GoFiles
		}
	}
	if len(goFiles) == 0 {
		t.Fatal("go list returned no files for ./internal/pack")
	}
	broken := copyReplacing(t, src, `"MIRAPACK"`, `"MIRAQACK"`, goFiles...)
	pkg, err := LoadDir(root, broken)
	if err != nil {
		t.Fatalf("load edited pack copy: %v", err)
	}
	diags, err := Run(pkg, []*Analyzer{PackFreeze})
	if err != nil {
		t.Fatal(err)
	}
	mustOneDiag(t, diags, "frozen layout changed")
}

// TestTreeClean runs every analyzer over the whole module: the tree
// must stay lint-clean, and any suppression in it must stay well
// formed. This is `cmd/miralint ./...` as a test.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint: run by cmd/miralint in CI and by the non-short suite")
	}
	pkgs, err := Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
