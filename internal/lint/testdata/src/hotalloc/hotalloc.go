// Package hotalloc exercises the hotalloc analyzer: each allocating
// construct class inside a //mira:hotpath function, its sanctioned
// counterpart, and the exemption for unannotated functions.
package hotalloc

import (
	"fmt"
	"strconv"
)

func consume(v any) { _ = v }

// fmt formatting calls.
//
//mira:hotpath
func formatted(id int64) string {
	return fmt.Sprintf("job-%d", id) // want "hotalloc: fmt.Sprintf allocates its result"
}

// The allocation-free alternative: strconv.Append* into a caller
// buffer.
//
//mira:hotpath
func formattedFast(dst []byte, id int64) []byte {
	return strconv.AppendInt(dst, id, 10)
}

// string↔[]byte conversions, flagged except in the contexts the
// compiler compiles without a copy.
//
//mira:hotpath
func conversions(b []byte, s string, m map[string]int) int {
	k := string(b) // want "hotalloc: string\(\[\]byte\) conversion copies the bytes"
	_ = k
	raw := []byte(s) // want "hotalloc: \[\]byte\(string\) conversion copies the string"
	_ = raw
	n := m[string(b)]   // exempt: map index
	if string(b) == s { // exempt: comparison operand
		n++
	}
	switch string(b) { // exempt: switch tag
	case s:
		n++
	}
	for range string(b) { // exempt: range expression
		n++
	}
	return n + len(string(b)) // exempt: len argument
}

// append growing a capacity-less local reallocates on the way up.
//
//mira:hotpath
func appendGrowth(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "hotalloc: append grows out from zero capacity"
	}
	return out
}

// Pre-sizing the destination is the sanctioned form.
//
//mira:hotpath
func appendPresized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Appending into a caller-owned buffer is the reuse idiom and passes.
//
//mira:hotpath
func appendReuse(dst []int, x int) []int {
	return append(dst, x)
}

// A capturing closure handed to another function escapes and
// heap-allocates.
//
//mira:hotpath
func closureEscapes(register func(func() int)) {
	n := 0
	register(func() int { // want "hotalloc: closure capturing n escapes"
		n++
		return n
	})
}

// Immediately-invoked literals never escape.
//
//mira:hotpath
func closureInvoked() int {
	n := 1
	return func() int { return n * 2 }()
}

// A capturing literal bound to a local that is only ever called stays
// on the stack.
//
//mira:hotpath
func closureLocal(xs []int) int {
	limit := 10
	clamp := func(v int) int {
		if v > limit {
			return limit
		}
		return v
	}
	total := 0
	for _, x := range xs {
		total += clamp(x)
	}
	return total
}

// A capture-free literal is a static value; passing it is free.
//
//mira:hotpath
func closureCapless(register func(func(int) int)) {
	register(func(v int) int { return v + 1 })
}

// Interface boxing: concrete non-pointer arguments and results
// allocate their box; pointers, nil, and interfaces pass through.
//
//mira:hotpath
func boxesArg(n int, p *int, v any) {
	consume(n) // want "hotalloc: passing int as .* boxes it"
	consume(p)
	consume(nil)
	consume(v)
}

//mira:hotpath
func boxesReturn(n int) any {
	return n // want "hotalloc: returning int as .* boxes it"
}

//mira:hotpath
func returnsPointer(n *int) any {
	return n
}

// coldPath has no //mira:hotpath directive: the same constructs pass
// unexamined.
func coldPath(b []byte) string {
	var out []byte
	out = append(out, b...)
	return fmt.Sprintf("%s", string(out))
}

// suppressedConversion documents a deliberate exception in place.
//
//mira:hotpath
func suppressedConversion(b []byte) string {
	//lint:ignore hotalloc one copy per call is the contract here
	return string(b)
}
