// Package maporder exercises the maporder analyzer: order-dependent
// effects inside map iteration are flagged, order-insensitive bodies
// and the collect-then-sort idiom pass.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder: append to keys inside map iteration"
	}
	return keys
}

// keysSorted is the sanctioned collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keysHelperSorted sorts through a package-local helper whose name
// marks it as a sorting function.
func keysHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

func sumCompound(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "maporder: floating-point accumulation into sum"
	}
	return sum
}

func sumExplicit(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "maporder: floating-point accumulation into sum"
	}
	return sum
}

// countInts is order-insensitive: integer addition commutes exactly.
func countInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "maporder: fmt.Println inside map iteration"
	}
}

func buffered(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want "maporder: buf.WriteString inside map iteration"
	}
	return buf.String()
}

func send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "maporder: send on ch inside map iteration"
	}
}

// invert builds another map: insertion order is irrelevant.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// inCase ranges inside a switch case; the sort that follows in the
// case body still counts as collect-then-sort.
func inCase(mode int, m map[string]int) []string {
	var keys []string
	switch mode {
	case 0:
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
	}
	return keys
}

// sliceRange is not a map range; nothing here is flagged.
func sliceRange(xs []float64, ch chan float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
		ch <- v
	}
	return sum
}
