// Package suppress exercises the //lint:ignore mechanism itself; its
// expectations are asserted programmatically in TestSuppression rather
// than with want comments (a malformed ignore cannot share its line
// with one).
package suppress

import "fmt"

// lineAbove is properly suppressed by a reasoned ignore on the line
// directly above the diagnostic.
func lineAbove(m map[string]int) {
	for k := range m {
		//lint:ignore maporder demo of a reasoned suppression
		fmt.Println(k)
	}
}

// sameLine is properly suppressed by a trailing ignore on the
// diagnostic's own line.
func sameLine(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:ignore maporder demo of a same-line suppression
	}
}

// missingReason carries a reason-less ignore: the ignore is reported as
// malformed and the diagnostic it meant to cover survives.
func missingReason(m map[string]int) {
	for k := range m {
		//lint:ignore maporder
		fmt.Println(k)
	}
}

// wrongAnalyzer names an analyzer that did not produce the diagnostic,
// so the diagnostic survives.
func wrongAnalyzer(m map[string]int) {
	for k := range m {
		//lint:ignore hotalloc reasoned, but names the wrong analyzer
		fmt.Println(k)
	}
}
