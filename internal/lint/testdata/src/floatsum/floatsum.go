// Package floatsum exercises the floatsum analyzer against the real
// par worker pool: captured and package-level float accumulators in
// the parallel region are flagged, the indexed-slot discipline passes.
package floatsum

import (
	"context"

	"repro/internal/par"
)

var grandTotal float64

// sharedAccumulator races goroutines on a captured float: the reduction
// order depends on scheduling.
func sharedAccumulator(xs []float64) float64 {
	total := 0.0
	_ = par.ForEach(context.Background(), len(xs), 0, func(i int) error {
		total += xs[i] // want "floatsum: parallel callback accumulates into total"
		return nil
	})
	return total
}

// slotDiscipline is the sanctioned pattern: each task writes only its
// own indexed slot, and the reduction happens serially afterwards.
func slotDiscipline(xs []float64) float64 {
	out := make([]float64, len(xs))
	_ = par.ForEach(context.Background(), len(xs), 0, func(i int) error {
		out[i] = xs[i] * 2
		out[i] += 1
		return nil
	})
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}

// viaHelper reaches the hazard through a same-package call: the helper
// accumulates into a package-level variable.
func viaHelper(xs []float64) {
	_ = par.ForEach(context.Background(), len(xs), 0, func(i int) error {
		bump(xs[i])
		return nil
	})
}

func bump(v float64) {
	grandTotal += v // want "floatsum: bump accumulates into package-level grandTotal"
}

// viaCleanHelper calls a helper whose accumulation is purely local.
func viaCleanHelper(xs, out []float64) {
	_ = par.ForEach(context.Background(), len(xs), 0, func(i int) error {
		out[i] = double(xs[i])
		return nil
	})
}

func double(v float64) float64 {
	s := 0.0
	s += v
	s += v
	return s
}

// named is passed by name rather than as a literal; reachability covers
// it the same way.
func runNamed(n int) {
	_ = par.ForEach(context.Background(), n, 0, named)
}

func named(i int) error {
	grandTotal += 1 // want "floatsum: named accumulates into package-level grandTotal"
	return nil
}

// intCounter captures an int: a data race, but not a float ordering
// hazard, so floatsum leaves it to the race detector.
func intCounter(xs []int) int {
	n := 0
	_ = par.ForEach(context.Background(), len(xs), 0, func(i int) error {
		n += xs[i]
		return nil
	})
	return n
}

// serialSum never enters a parallel region; accumulating into a global
// here is outside floatsum's remit.
func serialSum(xs []float64) {
	for _, v := range xs {
		grandTotal += v
	}
}
