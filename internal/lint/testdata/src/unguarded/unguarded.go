// Package unguarded has no //mira:deterministic directive and an
// import path outside the guarded set, so nodeterm must report nothing
// here despite every banned call appearing.
package unguarded

import (
	"math/rand"
	"os"
	"time"
)

func ambient() (time.Time, int, string) {
	return time.Now(), rand.Intn(6), os.Getenv("HOME")
}
