// Package inside places the layout-hash constant inside a frozen
// declaration — recording a new hash would then change the very layout
// it records, so the analyzer rejects the arrangement outright.
package inside

// Version is the layout version.
const Version = 1

//mira:frozen
const (
	wireMagic = "MINI"
	// LayoutHash must live outside the frozen set.
	LayoutHash = "sha256:0000000000000000000000000000000000000000000000000000000000000000" // want "packfreeze: layout-hash constant LayoutHash is itself inside a //mira:frozen declaration"
)
