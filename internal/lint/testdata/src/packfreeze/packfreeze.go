// Package packfreeze is a miniature layout-bearing package. The
// declared hash below is a deliberately stale placeholder: the analyzer
// must report the mismatch and carry the real computed hash in the
// message (TestPackFreezeLifecycle extracts it, records it, and then
// re-breaks the layout to watch the freeze trip again).
package packfreeze

// Version is the layout version.
const Version = 1

// LayoutHash is stale on purpose.
const LayoutHash = "sha256:0000000000000000000000000000000000000000000000000000000000000000" // want "packfreeze: frozen layout changed: LayoutHash records sha256:0+ but the //mira:frozen declarations hash to sha256:[0-9a-f]{64}"

// Wire constants.
//
//mira:frozen
const (
	wireMagic  = "MINIPACK"
	headerSize = 12
)

// appendHeader writes the fixed header: magic then little-endian count.
//
//mira:frozen
func appendHeader(dst []byte, n uint32) []byte {
	dst = append(dst, wireMagic...)
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return dst
}
