// Package nodeterm exercises the nodeterm analyzer. Its import path
// does not match the built-in deterministic set, so it opts in with the
// directive below.
//
//mira:deterministic
package nodeterm

import (
	"math/rand"
	"os"
	"time"
)

func clock() time.Duration {
	t := time.Now()      // want "nodeterm: time.Now in a deterministic package"
	return time.Since(t) // want "nodeterm: time.Since in a deterministic package"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "nodeterm: time.Until in a deterministic package"
}

func globalRand() int {
	return rand.Intn(6) // want "nodeterm: math/rand.Intn draws from the global generator"
}

// injected is the sanctioned pattern: a constructor builds a generator
// seeded from configuration, and methods on it are free.
func injected(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func env() string {
	home := os.Getenv("HOME")              // want "nodeterm: os.Getenv in a deterministic package"
	if v, ok := os.LookupEnv("MIRA"); ok { // want "nodeterm: os.LookupEnv in a deterministic package"
		return v
	}
	return home
}

// fileIO is deterministic given its inputs; os is only banned for
// environment reads.
func fileIO(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}
