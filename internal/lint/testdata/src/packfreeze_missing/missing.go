// Package missing freezes a declaration but declares neither a Version
// nor a LayoutHash constant, so the analyzer reports the missing
// anchors at the first frozen declaration.
package missing

//mira:frozen
const ( // want "packfreeze: package missing has //mira:frozen declarations but no Version or LayoutHash constant"
	wireMagic = "MINI"
)
