// Package serve turns the analysis substrate into a long-running HTTP
// service: mirad loads one corpus snapshot at startup, pre-warms the
// scan views and per-dimension bitmap indexes, and answers concurrent
// profile/cohort/experiment queries from a sharded LRU of rendered
// responses keyed by the predicate's canonical form, with singleflight
// collapsing so a stampede of identical queries computes each cohort
// exactly once (DESIGN.md §15).
package serve

import (
	"container/list"
	"sync"
)

// Source labels where a cache lookup's bytes came from.
type Source uint8

const (
	// Miss: this call ran the compute function.
	Miss Source = iota
	// Hit: the bytes were already resident in the LRU.
	Hit
	// Collapsed: an identical query was already computing; this call
	// waited for its result instead of recomputing (singleflight).
	Collapsed
)

func (s Source) String() string {
	switch s {
	case Hit:
		return "hit"
	case Collapsed:
		return "collapsed"
	}
	return "miss"
}

// Cache is a sharded LRU of rendered response bodies keyed by canonical
// predicate strings, with per-key singleflight. All methods are safe for
// concurrent use; contention distributes across shards by key hash.
type Cache struct {
	shards   []cacheShard
	perShard int
}

type cacheShard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits, misses, collapsed, evictions uint64
	bytes                              int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// NewCache builds a cache holding at most capacity entries spread over
// nShards shards (both floored to sane minimums). Capacity bounds entry
// count, not bytes: profiles for distinct cohorts have near-identical
// rendered size, so a count bound is a byte bound in practice.
func NewCache(capacity, nShards int) *Cache {
	if nShards < 1 {
		nShards = 1
	}
	if capacity < nShards {
		capacity = nShards
	}
	c := &Cache{
		shards:   make([]cacheShard, nShards),
		perShard: (capacity + nShards - 1) / nShards,
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].inflight = make(map[string]*flight)
	}
	return c
}

// fnv1a is the key→shard hash (FNV-1a 32-bit).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)%uint32(len(c.shards))]
}

// GetOrCompute returns the cached body for key, or runs compute to
// produce it. Concurrent calls for the same key collapse onto one
// compute (the others block until it finishes and share its result).
// Errors are returned to every collapsed caller but never cached, so a
// transient failure does not poison the key.
func (c *Cache) GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, Source, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.ll.MoveToFront(el)
		sh.hits++
		body := el.Value.(*cacheEntry).body
		sh.mu.Unlock()
		return body, Hit, nil
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.collapsed++
		sh.mu.Unlock()
		<-fl.done
		return fl.body, Collapsed, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.misses++
	sh.mu.Unlock()

	fl.body, fl.err = compute()
	close(fl.done)

	sh.mu.Lock()
	delete(sh.inflight, key)
	if fl.err == nil {
		sh.insert(key, fl.body, c.perShard)
	}
	sh.mu.Unlock()
	return fl.body, Miss, fl.err
}

// insert adds (or refreshes) an entry and evicts from the LRU tail past
// capacity. Called with sh.mu held.
func (sh *cacheShard) insert(key string, body []byte, capacity int) {
	if el, ok := sh.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		sh.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		sh.ll.MoveToFront(el)
		return
	}
	sh.entries[key] = sh.ll.PushFront(&cacheEntry{key: key, body: body})
	sh.bytes += int64(len(body))
	for sh.ll.Len() > capacity {
		tail := sh.ll.Back()
		ent := tail.Value.(*cacheEntry)
		sh.ll.Remove(tail)
		delete(sh.entries, ent.key)
		sh.bytes -= int64(len(ent.body))
		sh.evictions++
	}
}

// Reset drops every resident entry; counters are preserved. A compute
// in flight across the Reset still inserts its result when it finishes.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.ll.Init()
		sh.entries = make(map[string]*list.Element)
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// CacheStats is a point-in-time aggregate across shards.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Collapsed uint64 `json:"collapsed"`
	Evictions uint64 `json:"evictions"`
}

// Stats sums the shard counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Capacity: c.perShard * len(c.shards)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += sh.ll.Len()
		st.Bytes += sh.bytes
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Collapsed += sh.collapsed
		st.Evictions += sh.evictions
		sh.mu.Unlock()
	}
	return st
}
