package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func mustGet(t *testing.T, c *Cache, key, val string) Source {
	t.Helper()
	body, src, err := c.GetOrCompute(key, func() ([]byte, error) { return []byte(val), nil })
	if err != nil {
		t.Fatalf("GetOrCompute(%q): %v", key, err)
	}
	if string(body) != val {
		t.Fatalf("GetOrCompute(%q) = %q, want %q", key, body, val)
	}
	return src
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(8, 1)
	if src := mustGet(t, c, "a", "va"); src != Miss {
		t.Errorf("first lookup: %v, want miss", src)
	}
	if src := mustGet(t, c, "a", "va"); src != Hit {
		t.Errorf("second lookup: %v, want hit", src)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes != int64(len("va")) {
		t.Errorf("bytes = %d, want %d", st.Bytes, len("va"))
	}
}

// TestCacheLRUEviction pins least-recently-used order: touching an old
// entry saves it; the untouched one is evicted at capacity.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, 1)
	mustGet(t, c, "a", "va")
	mustGet(t, c, "b", "vb")
	mustGet(t, c, "a", "va") // refresh a: b is now the LRU tail
	mustGet(t, c, "c", "vc") // evicts b
	if src := mustGet(t, c, "a", "va"); src != Hit {
		t.Errorf("a should have survived, got %v", src)
	}
	if src := mustGet(t, c, "b", "vb"); src != Miss {
		t.Errorf("b should have been evicted, got %v", src)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Errorf("stats = %+v, want evictions > 0", st)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(8, 2)
	mustGet(t, c, "a", "va")
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("after Reset: %+v, want empty", st)
	}
	if src := mustGet(t, c, "a", "va"); src != Miss {
		t.Errorf("post-Reset lookup: %v, want miss", src)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8, 1)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if src := mustGet(t, c, "k", "ok"); src != Miss {
		t.Errorf("after failed compute: %v, want miss (errors are not cached)", src)
	}
	if src := mustGet(t, c, "k", "ok"); src != Hit {
		t.Errorf("after successful compute: %v, want hit", src)
	}
}

// TestCacheSingleflight pins the stampede contract: N concurrent
// requests for one cold key run the compute exactly once; everyone gets
// its bytes.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8, 4)
	const n = 32
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]string, n)
	sources := make([]Source, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, src, err := c.GetOrCompute("hot", func() ([]byte, error) {
				computes.Add(1)
				<-gate // hold the flight open until all goroutines queued
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = string(body)
			sources[i] = src
		}(i)
	}
	// Let the other goroutines pile onto the in-flight call, then open
	// the gate. (A short busy-wait via stats keeps this deterministic
	// enough: the key is that compute runs once regardless.)
	for c.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want exactly 1", got)
	}
	var misses, rest int
	for i := 0; i < n; i++ {
		if results[i] != "payload" {
			t.Fatalf("goroutine %d got %q", i, results[i])
		}
		if sources[i] == Miss {
			misses++
		} else {
			rest++
		}
	}
	if misses != 1 {
		t.Errorf("%d goroutines report miss, want exactly 1 (the computing one)", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Collapsed+st.Hits != n-1 {
		t.Errorf("stats = %+v, want 1 miss and %d collapsed+hits", st, n-1)
	}
}

// TestCacheShardDistribution sanity-checks that keys spread over shards
// (the per-shard capacity bound only holds if the hash distributes).
func TestCacheShardDistribution(t *testing.T) {
	c := NewCache(1024, 16)
	for i := 0; i < 512; i++ {
		mustGet(t, c, fmt.Sprintf("key-%d", i), "v")
	}
	used := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		if c.shards[i].ll.Len() > 0 {
			used++
		}
		c.shards[i].mu.Unlock()
	}
	if used < len(c.shards)/2 {
		t.Errorf("512 keys landed on only %d/%d shards", used, len(c.shards))
	}
}
