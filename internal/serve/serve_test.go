package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sel"
	"repro/internal/sim"
)

// Shared deterministic corpus for the endpoint tests (30 days, fixed
// seed: every golden comparison below is reproducible byte for byte).
var (
	corpusOnce sync.Once
	corpusDS   *core.Dataset
	corpusErr  error
)

func testDataset(t *testing.T) *core.Dataset {
	t.Helper()
	corpusOnce.Do(func() {
		c, err := sim.Generate(sim.SmallConfig())
		if err != nil {
			corpusErr = err
			return
		}
		corpusDS, corpusErr = core.NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusDS
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	env := experiments.NewEnvFromDataset(testDataset(t))
	env.Parallelism = 1
	return New(env, Options{Parallelism: 1})
}

// do issues one request straight through the router (no sockets).
func do(t *testing.T, s *Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func cohortURL(where string) string {
	return "/v1/cohort?where=" + url.QueryEscape(where)
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "/healthz")
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// TestCohortGolden is the bit-identity contract: for every predicate of
// the table, the endpoint's report field must equal — byte for byte —
// what `mirareport -where <canonical>` prints for the same predicate.
// The reference is computed through the legacy materialize path on an
// independent Env, so the comparison crosses both the serving layer and
// the pushdown engine.
func TestCohortGolden(t *testing.T) {
	s := newTestServer(t)
	refEnv := experiments.NewEnvFromDataset(testDataset(t))
	refEnv.Parallelism = 1
	refEnv.Legacy = true // reference = materialize + scan, as in DESIGN §14

	for _, where := range []string{
		"exit != success",
		"nodes >= 1024",
		"sev == FATAL",
		"dur > 3600 and exit == system",
		"sev != INFO and exit != success",
	} {
		expr, err := sel.Parse(where)
		if err != nil {
			t.Fatalf("parse %q: %v", where, err)
		}
		canon := expr.String()

		rec := do(t, s, cohortURL(where))
		if rec.Code != http.StatusOK {
			t.Fatalf("cohort %q: %d %s", where, rec.Code, rec.Body.String())
		}
		var resp struct {
			Where  string `json:"where"`
			Report string `json:"report"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("cohort %q: bad JSON: %v", where, err)
		}
		if resp.Where != canon {
			t.Errorf("cohort %q: where = %q, want canonical %q", where, resp.Where, canon)
		}

		// What mirareport -where prints for the canonical predicate.
		p, err := refEnv.CohortProfile(canon)
		if err != nil {
			t.Fatalf("reference cohort %q: %v", canon, err)
		}
		var want bytes.Buffer
		if err := experiments.RenderCohort(&want, p, canon); err != nil {
			t.Fatal(err)
		}
		if resp.Report != want.String() {
			t.Errorf("cohort %q: report differs from mirareport -where output\n got:\n%s\nwant:\n%s",
				where, resp.Report, want.String())
		}
	}
}

func TestCohortBadRequests(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name   string
		target string
	}{
		{"missing where", "/v1/cohort"},
		{"empty where", "/v1/cohort?where="},
		{"parse error", cohortURL("user ==")},
		{"unterminated string", cohortURL("user == 'oops")},
		{"unknown column", cohortURL("flavor == vanilla")},
		{"mixed domains in one conjunct", cohortURL("user == u001 or sev == FATAL")},
		{"bad numeric value", cohortURL("nodes >= many")},
		{"too deep", cohortURL(strings.Repeat("(", 300) + "a == 1" + strings.Repeat(")", 300))},
		{"oversized", cohortURL("user == " + strings.Repeat("x", 5000))},
	}
	for _, c := range cases {
		if rec := do(t, s, c.target); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400 (body %s)", c.name, rec.Code, rec.Body.String())
		}
	}
	// Unknown dictionary values select an empty cohort — a valid query.
	if rec := do(t, s, cohortURL("user == nobody-here")); rec.Code != http.StatusOK {
		t.Errorf("empty cohort: code = %d, want 200 (%s)", rec.Code, rec.Body.String())
	}
}

// TestCacheCountersViaStats drives hits/misses through the HTTP surface
// and asserts them through /v1/stats, the way an operator would.
func TestCacheCountersViaStats(t *testing.T) {
	s := newTestServer(t)
	where := "exit == system"
	variant := "(exit == 'system')" // same canonical form, different spelling

	if got := do(t, s, cohortURL(where)); got.Header().Get("X-Cache") != "miss" {
		t.Errorf("first query X-Cache = %q, want miss", got.Header().Get("X-Cache"))
	}
	if got := do(t, s, cohortURL(where)); got.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat query X-Cache = %q, want hit", got.Header().Get("X-Cache"))
	}
	if got := do(t, s, cohortURL(variant)); got.Header().Get("X-Cache") != "hit" {
		t.Errorf("variant spelling X-Cache = %q, want hit (shared canonical key)", got.Header().Get("X-Cache"))
	}

	rec := do(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 2 {
		t.Errorf("cache counters = %+v, want 1 miss / 2 hits", st.Cache)
	}
	if ep := st.Endpoints["/v1/cohort"]; ep.Requests != 3 || ep.Errors != 0 {
		t.Errorf("cohort endpoint counters = %+v, want 3 requests / 0 errors", ep)
	}
	if len(st.Index) == 0 {
		t.Error("stats carry no index dimensions")
	}
}

// TestCanonicalizationSharedWithEnvCache is the cross-layer
// canonicalization contract: the serve LRU and the experiments.Env
// cohort cache must key by the same canonical form, so a predicate and
// its canonical rendering land on one entry in both layers.
func TestCanonicalizationSharedWithEnvCache(t *testing.T) {
	variants := []string{
		"dur > 1800 and exit != success",
		"(dur > 1800) && (exit != 'success')",
		`DUR > "1800" AND NOT exit == "success"`,
	}
	// All spellings must canonicalize identically...
	canon := ""
	for _, v := range variants {
		e, err := sel.Parse(v)
		if err != nil {
			t.Fatalf("parse %q: %v", v, err)
		}
		if canon == "" {
			canon = e.String()
		} else if e.String() != canon {
			t.Fatalf("canonical drift: %q -> %q, want %q", v, e.String(), canon)
		}
	}
	// ...share one Env cohort-cache entry (same *FusedProfile)...
	env := experiments.NewEnvFromDataset(testDataset(t))
	env.Parallelism = 1
	first, err := env.CohortProfile(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		p, err := env.CohortProfile(v)
		if err != nil {
			t.Fatal(err)
		}
		if p != first {
			t.Errorf("Env cohort cache: %q computed a fresh profile; canonicalization not shared", v)
		}
	}
	// ...and share one serve LRU entry (miss, then hits).
	s := newTestServer(t)
	for i, v := range variants {
		want := "hit"
		if i == 0 {
			want = "miss"
		}
		if got := do(t, s, cohortURL(v)); got.Header().Get("X-Cache") != want {
			t.Errorf("serve LRU: %q X-Cache = %q, want %q", v, got.Header().Get("X-Cache"), want)
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "/v1/profile")
	if rec.Code != http.StatusOK {
		t.Fatalf("profile: %d %s", rec.Code, rec.Body.String())
	}
	var resp cohortResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := testDataset(t).Summarize()
	if resp.Summary != want {
		t.Errorf("profile summary = %+v, want %+v", resp.Summary, want)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "/v1/experiments/E1")
	if rec.Code != http.StatusOK {
		t.Fatalf("E1: %d %s", rec.Code, rec.Body.String())
	}
	var resp experimentResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "E1" || len(resp.Metrics) == 0 || len(resp.Tables) == 0 {
		t.Errorf("E1 response incomplete: %+v", resp)
	}
	// Case-insensitive id, served from the cache.
	if rec := do(t, s, "/v1/experiments/e1"); rec.Code != http.StatusOK {
		t.Errorf("e1: %d", rec.Code)
	}
	if rec := do(t, s, "/v1/experiments/E99"); rec.Code != http.StatusNotFound {
		t.Errorf("E99: %d, want 404", rec.Code)
	}
}

func TestWarm(t *testing.T) {
	s := newTestServer(t)
	ws, err := s.Warm()
	if err != nil {
		t.Fatal(err)
	}
	if ws.IndexDims == 0 || ws.IndexBytes == 0 {
		t.Errorf("warm built nothing: %+v", ws)
	}
	// The whole-corpus profile is resident: first /v1/profile is a hit.
	if rec := do(t, s, "/v1/profile"); rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("profile after Warm: X-Cache = %q, want hit", rec.Header().Get("X-Cache"))
	}
}

// TestMaxInflightShedding floods a server whose limiter admits one
// request while a slow cohort computation holds the only slot; the
// concurrent burst must shed with 429, not queue.
func TestMaxInflightShedding(t *testing.T) {
	env := experiments.NewEnvFromDataset(testDataset(t))
	env.Parallelism = 1
	s := New(env, Options{Parallelism: 1, MaxInflight: 1})

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	// Occupy the single limiter slot with a handler that blocks.
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
		s.limited(&s.epStats, func(w http.ResponseWriter, r *http.Request) {
			once.Do(func() { close(entered) })
			<-release
		})(rec, req)
	}()
	<-entered
	rec := do(t, s, "/v1/stats")
	close(release)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("burst over max-inflight: %d, want 429", rec.Code)
	}
}

// TestConcurrentStampede is the load test: many clients hammer a small
// predicate set concurrently. Every response must be 200 with bytes
// identical to the sequential answer, and the cache must have computed
// each distinct cohort exactly once (singleflight + LRU).
func TestConcurrentStampede(t *testing.T) {
	s := newTestServer(t)
	wheres := []string{
		"exit == system",
		"nodes >= 2048",
		"sev == FATAL",
		"dur > 3600",
	}
	// Sequential reference bodies.
	want := make(map[string]string, len(wheres))
	ref := newTestServer(t)
	for _, wh := range wheres {
		rec := do(t, ref, cohortURL(wh))
		if rec.Code != http.StatusOK {
			t.Fatalf("reference %q: %d", wh, rec.Code)
		}
		want[wh] = rec.Body.String()
	}

	const clients = 32
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients*rounds*len(wheres))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				wh := wheres[(c+r)%len(wheres)]
				rec := do(t, s, cohortURL(wh))
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("%q: status %d", wh, rec.Code)
					continue
				}
				if rec.Body.String() != want[wh] {
					errs <- fmt.Sprintf("%q: body diverged under concurrency", wh)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := s.cache.Stats()
	if st.Misses != uint64(len(wheres)) {
		t.Errorf("distinct cohorts computed %d times, want %d (stats %+v)", st.Misses, len(wheres), st)
	}
	total := clients * rounds
	if st.Hits+st.Collapsed+st.Misses != uint64(total) {
		t.Errorf("hits+collapsed+misses = %d, want %d", st.Hits+st.Collapsed+st.Misses, total)
	}
}
