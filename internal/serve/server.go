package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/joblog"
	"repro/internal/sel"
)

// Options configures a Server. The zero value is usable: every field
// falls back to the documented default.
type Options struct {
	// CacheEntries bounds the rendered-response LRU (default 1024).
	CacheEntries int
	// CacheShards spreads LRU lock contention (default 16).
	CacheShards int
	// MaxInflight bounds concurrently executing /v1 requests; excess
	// requests get 429 instead of queueing without bound (default 256).
	MaxInflight int
	// MaxWhereLen bounds the accepted predicate length (default 4096).
	MaxWhereLen int
	// Parallelism is the worker bound each fused scan runs with
	// (≤ 0 = GOMAXPROCS); results are identical at any setting.
	Parallelism int
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
}

func (o *Options) defaults() {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.MaxWhereLen <= 0 {
		o.MaxWhereLen = 4096
	}
}

// endpointStats counts one route's traffic. All fields are atomics; the
// hot path never takes a lock for accounting.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	totalNs  atomic.Int64
}

// EndpointStats is the JSON view of one route's counters.
type EndpointStats struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	AvgMillis float64 `json:"avg_ms"`
}

// Server answers profile/cohort/experiment queries over one warm
// Dataset. The Dataset and its lazily built views and indexes are
// immutable after construction and safe to share across requests (the
// read-only contract race-tested in core); all per-request mutable state
// lives in the cache and the atomic counters.
type Server struct {
	env   *experiments.Env
	opts  Options
	cache *Cache
	// limiter is a counting semaphore over executing /v1 requests.
	limiter chan struct{}
	mux     *http.ServeMux
	start   time.Time
	warm    time.Duration

	epProfile, epCohort, epExperiments, epStats, epHealth endpointStats
}

// New builds a Server over an evaluation environment (one loaded or
// generated corpus). Call Warm before serving traffic to pay the lazy
// view/index construction once, off the request path.
func New(env *experiments.Env, opts Options) *Server {
	opts.defaults()
	s := &Server{
		env:     env,
		opts:    opts,
		cache:   NewCache(opts.CacheEntries, opts.CacheShards),
		limiter: make(chan struct{}, opts.MaxInflight),
		start:   time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument(&s.epHealth, s.handleHealthz))
	mux.HandleFunc("GET /v1/profile", s.limited(&s.epProfile, s.handleProfile))
	mux.HandleFunc("GET /v1/cohort", s.limited(&s.epCohort, s.handleCohort))
	mux.HandleFunc("GET /v1/experiments/{id}", s.limited(&s.epExperiments, s.handleExperiment))
	mux.HandleFunc("GET /v1/stats", s.limited(&s.epStats, s.handleStats))
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Handler returns the routed handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// WarmStats reports what Warm pre-built.
type WarmStats struct {
	Duration   time.Duration
	IndexDims  int
	IndexBytes int
}

// Warm pre-builds everything the first queries would otherwise pay for
// under traffic: the SoA column views, every per-dimension bitmap index,
// and the whole-corpus fused profile (which also becomes the /v1/profile
// cache entry).
func (s *Server) Warm() (WarmStats, error) {
	t0 := time.Now()
	stats := s.env.D.IndexStats() // builds views + every index dimension
	if _, _, err := s.profileBody(); err != nil {
		return WarmStats{}, err
	}
	ws := WarmStats{Duration: time.Since(t0), IndexDims: len(stats)}
	for _, st := range stats {
		ws.IndexBytes += st.Bytes
	}
	s.warm = ws.Duration
	return ws, nil
}

// ResetCache drops every cached response (benchmarks use it to measure
// the cold path; counters survive).
func (s *Server) ResetCache() { s.cache.Reset() }

// instrument wraps a handler with request/latency accounting.
func (s *Server) instrument(ep *endpointStats, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		ep.requests.Add(1)
		if sw.code >= 400 {
			ep.errors.Add(1)
		}
		ep.totalNs.Add(time.Since(t0).Nanoseconds())
	}
}

// limited stacks the in-flight limiter under the instrumentation: over
// MaxInflight concurrently executing /v1 requests, new ones are shed
// with 429 rather than queued without bound.
func (s *Server) limited(ep *endpointStats, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return s.instrument(ep, func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
			h(w, r)
		default:
			writeError(w, http.StatusTooManyRequests, "server at max in-flight requests; retry")
		}
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(body, '\n'))
}

func writeJSONBody(w http.ResponseWriter, src Source, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", src.String())
	w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// cohortResponse is the /v1/cohort (and /v1/profile) body. Report is the
// rendered text report, bit-identical to `mirareport -where <where>` for
// the same predicate string (both go through experiments.RenderCohort).
type cohortResponse struct {
	Where        string            `json:"where"` // canonical form = cache key
	Summary      core.Summary      `json:"summary"`
	ExitFamilies map[string]int    `json:"exit_families"`
	TopUsers     []core.GroupStats `json:"top_users"`
	Report       string            `json:"report"`
}

// renderCohortBody computes a cohort profile and renders the response
// JSON once; the bytes are what the LRU holds.
func (s *Server) renderCohortBody(expr sel.Expr, where string) ([]byte, error) {
	var p *core.FusedProfile
	var err error
	if expr == nil {
		// Whole corpus: share the Env's memoized fused profile.
		p, err = s.env.CohortProfileExpr(nil)
	} else {
		p, err = s.env.D.FusedScanWhere(expr, s.opts.Parallelism)
	}
	if err != nil {
		return nil, err
	}
	var report bytes.Buffer
	if err := experiments.RenderCohort(&report, p, where); err != nil {
		return nil, err
	}
	resp := cohortResponse{
		Where:        where,
		Summary:      p.Summary,
		ExitFamilies: map[string]int{},
		TopUsers:     p.UserGroups,
		Report:       report.String(),
	}
	for c := 1; c < joblog.NumFamilies; c++ {
		if n := p.Exit.ByFamily[c]; n > 0 {
			resp.ExitFamilies[string(joblog.FamilyOfCode(uint8(c)))] = n
		}
	}
	if len(resp.TopUsers) > 10 {
		resp.TopUsers = resp.TopUsers[:10]
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// profileKey is the whole-corpus entry's key; "*" cannot collide with a
// canonical predicate (those always contain a comparison).
const profileKey = "*"

func (s *Server) profileBody() ([]byte, Source, error) {
	return s.cache.GetOrCompute(profileKey, func() ([]byte, error) {
		return s.renderCohortBody(nil, profileKey)
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	body, src, err := s.profileBody()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONBody(w, src, body)
}

func (s *Server) handleCohort(w http.ResponseWriter, r *http.Request) {
	where := r.URL.Query().Get("where")
	if where == "" {
		writeError(w, http.StatusBadRequest, "missing 'where' query parameter")
		return
	}
	if len(where) > s.opts.MaxWhereLen {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("'where' longer than %d bytes", s.opts.MaxWhereLen))
		return
	}
	expr, err := sel.Parse(where)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The canonical form is the cache key — the same canonicalization the
	// experiments.Env cohort cache keys by, so every syntactic variant of
	// one selection shares a single entry in both layers.
	canon := expr.String()
	body, src, err := s.cache.GetOrCompute(canon, func() ([]byte, error) {
		return s.renderCohortBody(expr, canon)
	})
	if err != nil {
		// Compile errors (unknown column values, mixed-domain conjuncts)
		// are the query's fault, not the server's.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSONBody(w, src, body)
}

// experimentResponse is the /v1/experiments/{id} body: the experiment's
// metric map plus its rendered tables and figures.
type experimentResponse struct {
	ID          string             `json:"id"`
	Description string             `json:"description"`
	Metrics     map[string]float64 `json:"metrics"`
	Tables      []string           `json:"tables"`
	Figures     []string           `json:"figures"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	exp, ok := experiments.ByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q (E1..E23)", id))
		return
	}
	body, src, err := s.cache.GetOrCompute("exp:"+strings.ToUpper(id), func() ([]byte, error) {
		res, err := exp.Run(s.env)
		if err != nil {
			return nil, err
		}
		resp := experimentResponse{
			ID:          res.ID,
			Description: res.Description,
			Metrics:     res.Metrics,
		}
		for _, t := range res.Tables {
			resp.Tables = append(resp.Tables, t.String())
		}
		for _, f := range res.Figures {
			resp.Figures = append(resp.Figures, f.String())
		}
		b, err := json.Marshal(&resp)
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONBody(w, src, body)
}

// statsResponse is the /v1/stats body: cache and endpoint counters, the
// selection-index inventory, and process runtime numbers.
type statsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	WarmMillis    float64                  `json:"warm_ms"`
	Cache         CacheStats               `json:"cache"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	Corpus        corpusStats              `json:"corpus"`
	Index         []core.IndexStat         `json:"index"`
	Runtime       runtimeStats             `json:"runtime"`
}

type corpusStats struct {
	Jobs   int     `json:"jobs"`
	Events int     `json:"events"`
	Days   float64 `json:"days"`
}

type runtimeStats struct {
	Goroutines int    `json:"goroutines"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	HeapBytes  uint64 `json:"heap_bytes"`
}

func epView(ep *endpointStats) EndpointStats {
	n := ep.requests.Load()
	v := EndpointStats{Requests: n, Errors: ep.errors.Load()}
	if n > 0 {
		v.AvgMillis = float64(ep.totalNs.Load()) / float64(n) / 1e6
	}
	return v
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		WarmMillis:    float64(s.warm.Nanoseconds()) / 1e6,
		Cache:         s.cache.Stats(),
		Endpoints: map[string]EndpointStats{
			"/healthz":        epView(&s.epHealth),
			"/v1/profile":     epView(&s.epProfile),
			"/v1/cohort":      epView(&s.epCohort),
			"/v1/experiments": epView(&s.epExperiments),
			"/v1/stats":       epView(&s.epStats),
		},
		Corpus: corpusStats{
			Jobs:   len(s.env.D.Jobs),
			Events: len(s.env.D.Events),
			Days:   s.env.D.Days(),
		},
		Index:   s.env.D.IndexStats(),
		Runtime: runtimeStats{Goroutines: runtime.NumGoroutine(), GOMAXPROCS: runtime.GOMAXPROCS(0), HeapBytes: mem.HeapAlloc},
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
