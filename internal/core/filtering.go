package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/raslog"
)

// FilterRule defines the similarity notion used to coalesce a burst of
// near-duplicate RAS events into one incident (the paper's
// "similarity-based event filtering").
//
// Two consecutive events are similar when all enabled conditions hold:
//   - temporal: they are at most Window apart;
//   - spatial: their locations share an ancestor at Spatial level
//     (LevelSystem disables the spatial condition);
//   - message: same message ID when SameMessage, else same category.
type FilterRule struct {
	Window      time.Duration
	Spatial     machine.Level
	SameMessage bool
}

// DefaultFilterRule is the paper-style rule: 20-minute window, midplane
// spatial scope, message-ID similarity.
func DefaultFilterRule() FilterRule {
	return FilterRule{Window: 20 * time.Minute, Spatial: machine.LevelMidplane, SameMessage: true}
}

// Validate checks the rule.
func (r FilterRule) Validate() error {
	if r.Window <= 0 {
		return fmt.Errorf("core: filter window must be positive")
	}
	if r.Spatial < machine.LevelSystem || r.Spatial > machine.LevelNode {
		return fmt.Errorf("core: bad spatial level %v", r.Spatial)
	}
	return nil
}

// Incident is one coalesced failure event.
type Incident struct {
	First, Last time.Time
	Events      int
	Loc         machine.Location // representative location (first event)
	MsgID       string
	Cat         raslog.Category
	JobIDs      []int64 // distinct nonzero job ids attributed to the burst
}

// Duration returns the incident's burst span.
func (in *Incident) Duration() time.Duration { return in.Last.Sub(in.First) }

// key is the similarity identity of an open incident.
type filterKey struct {
	msg string
	cat raslog.Category
	loc machine.Location
}

// keyOf computes the similarity key of one event. It depends on the rule's
// Spatial and SameMessage settings but NOT on the Window, which is what
// makes keys shareable across the windows of a sweep.
func keyOf(e *raslog.Event, rule FilterRule) filterKey {
	k := filterKey{}
	if rule.SameMessage {
		k.msg = e.MsgID
	} else {
		k.cat = e.Cat
	}
	if rule.Spatial > machine.LevelSystem {
		if e.Loc.Level() >= rule.Spatial {
			anc, err := e.Loc.Ancestor(rule.Spatial)
			if err == nil {
				k.loc = anc
			} else {
				k.loc = e.Loc
			}
		} else {
			k.loc = e.Loc
		}
	}
	return k
}

// keyedEvents is the window-independent part of a filter pass: the
// severity-selected event indices (time order) and their similarity keys.
// Computing it once and coalescing per window turns a sweep's key work from
// O(windows × events) into O(events).
type keyedEvents struct {
	events []raslog.Event
	idx    []int       // indices into events, severity-filtered, time order
	keys   []filterKey // keys[i] belongs to events[idx[i]]
}

// severityIndex lists the indices of the events with the given severity.
func severityIndex(events []raslog.Event, sev raslog.Severity) []int {
	var idx []int
	for i := range events {
		if events[i].Sev == sev {
			idx = append(idx, i)
		}
	}
	return idx
}

// precomputeKeys computes the similarity key of every indexed event.
func precomputeKeys(events []raslog.Event, idx []int, rule FilterRule) keyedEvents {
	keys := make([]filterKey, len(idx))
	for n, i := range idx {
		keys[n] = keyOf(&events[i], rule)
	}
	return keyedEvents{events: events, idx: idx, keys: keys}
}

// coalesce folds the keyed events into incidents for one window. The loop
// body is the original FilterBySeverity coalescing logic, unchanged, so the
// output is bit-identical to the pre-index implementation.
func coalesce(ke keyedEvents, window time.Duration) []Incident {
	open := map[filterKey]int{} // key → index into incidents
	// jobSeen deduplicates job attributions in O(1) per event: one map for
	// the whole pass, keyed by (incident index, job id), replacing the old
	// per-event linear scan of Incident.JobIDs (O(n·m) on bursts that touch
	// many jobs).
	type incidentJob struct {
		incident int
		job      int64
	}
	jobSeen := map[incidentJob]struct{}{}
	var incidents []Incident
	for n, i := range ke.idx {
		e := &ke.events[i]
		k := ke.keys[n]
		if idx, ok := open[k]; ok && e.Time.Sub(incidents[idx].Last) <= window {
			in := &incidents[idx]
			in.Last = e.Time
			in.Events++
			if e.JobID != 0 {
				if _, dup := jobSeen[incidentJob{idx, e.JobID}]; !dup {
					jobSeen[incidentJob{idx, e.JobID}] = struct{}{}
					in.JobIDs = append(in.JobIDs, e.JobID)
				}
			}
			continue
		}
		incidents = append(incidents, Incident{
			First: e.Time, Last: e.Time, Events: 1,
			Loc: e.Loc, MsgID: e.MsgID, Cat: e.Cat,
		})
		if e.JobID != 0 {
			incidents[len(incidents)-1].JobIDs = []int64{e.JobID}
			jobSeen[incidentJob{len(incidents) - 1, e.JobID}] = struct{}{}
		}
		open[k] = len(incidents) - 1
	}
	return incidents
}

// FilterFatal coalesces the FATAL events of the stream into incidents under
// the rule. Events must be sorted by time (Dataset guarantees this).
func FilterFatal(events []raslog.Event, rule FilterRule) ([]Incident, error) {
	return FilterBySeverity(events, raslog.Fatal, rule)
}

// FilterBySeverity coalesces the events of one severity into incidents
// under the rule — FATAL bursts become interruption incidents, WARN bursts
// become the precursor signals the lead-time analysis mines. Events must be
// sorted by time.
func FilterBySeverity(events []raslog.Event, sev raslog.Severity, rule FilterRule) ([]Incident, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	return coalesce(precomputeKeys(events, severityIndex(events, sev), rule), rule.Window), nil
}

// filterIndexed coalesces an already severity-partitioned index list (e.g.
// a Dataset's FATAL view) so Dataset-level analyses skip the severity scan.
func filterIndexed(events []raslog.Event, idx []int, rule FilterRule) ([]Incident, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	return coalesce(precomputeKeys(events, idx, rule), rule.Window), nil
}

// FilterFatal coalesces the dataset's FATAL view into incidents, reusing the
// severity partition built at NewDataset time.
func (d *Dataset) FilterFatal(rule FilterRule) ([]Incident, error) {
	return filterIndexed(d.Events, d.fatalIdx, rule)
}

// FilterWarn coalesces the dataset's WARN view into incidents.
func (d *Dataset) FilterWarn(rule FilterRule) ([]Incident, error) {
	return filterIndexed(d.Events, d.warnIdx, rule)
}

// internedKeys is a severity index's similarity keys interned to dense ids
// in first-appearance order. Keys depend only on the rule's Spatial and
// SameMessage settings — not the window — so one interning pass serves
// every window, and coalescing can track open incidents in a flat array
// indexed by key id instead of a map keyed by (string, Location) structs.
type internedKeys struct {
	ids   []int32 // ids[n] is the key id of events[idx[n]]
	nKeys int
}

// internKeys interns the similarity key of every indexed event.
func internKeys(events []raslog.Event, idx []int, rule FilterRule) internedKeys {
	seen := make(map[filterKey]int32, 64)
	ids := make([]int32, len(idx))
	for n, i := range idx {
		k := keyOf(&events[i], rule)
		id, ok := seen[k]
		if !ok {
			id = int32(len(seen))
			seen[k] = id
		}
		ids[n] = id
	}
	return internedKeys{ids: ids, nKeys: len(seen)}
}

// defaultKeyConfig reports whether the rule's key-relevant settings match
// DefaultFilterRule — the configuration the dataset caches interned keys
// for.
func defaultKeyConfig(rule FilterRule) bool {
	def := DefaultFilterRule()
	return rule.Spatial == def.Spatial && rule.SameMessage == def.SameMessage
}

// coalesceInterned is coalesce with pre-interned keys: the open-incident
// table becomes a flat array indexed by key id, and job attributions
// deduplicate by scanning the incident's (short) JobIDs list. Decisions,
// append order and output are identical to coalesce — only the bookkeeping
// representation changes.
//
//mira:hotpath
func coalesceInterned(events []raslog.Event, idx []int, ik internedKeys, window time.Duration) []Incident {
	// Counting pre-pass: replay just the open/extend decision (key id plus
	// window check against the last event of the key) to size the incident
	// slice exactly, so the fill pass never grows or copies it. The zero
	// time.Time makes the first event of every key read as "gap larger than
	// any window", i.e. a new incident, matching the map version's miss.
	lastOf := make([]time.Time, ik.nKeys)
	count := 0
	for n, i := range idx {
		e := &events[i]
		if e.Time.Sub(lastOf[ik.ids[n]]) > window {
			count++
		}
		lastOf[ik.ids[n]] = e.Time
	}
	open := make([]int32, ik.nKeys)
	for i := range open {
		open[i] = -1
	}
	incidents := make([]Incident, 0, count)
	for n, i := range idx {
		e := &events[i]
		if oi := open[ik.ids[n]]; oi >= 0 && e.Time.Sub(incidents[oi].Last) <= window {
			in := &incidents[oi]
			in.Last = e.Time
			in.Events++
			if e.JobID != 0 {
				dup := false
				for _, id := range in.JobIDs {
					if id == e.JobID {
						dup = true
						break
					}
				}
				if !dup {
					in.JobIDs = append(in.JobIDs, e.JobID)
				}
			}
			continue
		}
		incidents = append(incidents, Incident{
			First: e.Time, Last: e.Time, Events: 1,
			Loc: e.Loc, MsgID: e.MsgID, Cat: e.Cat,
		})
		if e.JobID != 0 {
			incidents[len(incidents)-1].JobIDs = []int64{e.JobID}
		}
		open[ik.ids[n]] = int32(len(incidents) - 1)
	}
	return incidents
}

// FilterFatalCached is FilterFatal through the dataset's interned-key cache:
// the first call interns the FATAL view's similarity keys (for the default
// rule's key configuration), later calls — and calls with other windows —
// only pay the array-indexed coalesce. Output is identical to FilterFatal.
// Rules with a non-default key configuration fall back to the plain pass.
func (d *Dataset) FilterFatalCached(rule FilterRule) ([]Incident, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if !defaultKeyConfig(rule) {
		return d.FilterFatal(rule)
	}
	d.fatalKeyOnce.Do(func() {
		d.fatalKeys = internKeys(d.Events, d.fatalIdx, rule)
	})
	return coalesceInterned(d.Events, d.fatalIdx, d.fatalKeys, rule.Window), nil
}

// FilterWarnCached is the WARN-severity counterpart of FilterFatalCached.
func (d *Dataset) FilterWarnCached(rule FilterRule) ([]Incident, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	if !defaultKeyConfig(rule) {
		return d.FilterWarn(rule)
	}
	d.warnKeyOnce.Do(func() {
		d.warnKeys = internKeys(d.Events, d.warnIdx, rule)
	})
	return coalesceInterned(d.Events, d.warnIdx, d.warnKeys, rule.Window), nil
}

// SweepPoint is one point of the filtering sensitivity sweep.
type SweepPoint struct {
	Window    time.Duration
	Incidents int
	Reduction float64 // 1 − incidents/raw-fatal-count
}

// FilterSweep runs FilterFatal across the given windows (holding the rest
// of the rule fixed) and reports the incident counts — the knee of this
// curve is how the paper picks its filtering window. The window grid is
// evaluated concurrently on all cores; use FilterSweepParallel to bound the
// worker count.
func FilterSweep(events []raslog.Event, base FilterRule, windows []time.Duration) ([]SweepPoint, error) {
	return FilterSweepParallel(events, base, windows, 0)
}

// FilterSweepParallel is FilterSweep with an explicit worker bound (≤ 0
// means GOMAXPROCS). Each window's filter pass is independent and writes
// its SweepPoint to the slot of its window index, so the sweep is identical
// to the serial path for any worker count.
//
// Similarity keys depend on the rule's Spatial/SameMessage settings but not
// on the window, so the sweep interns them once and each window only pays
// for the array-indexed coalesce: O(events) key work total instead of
// O(windows × events), and no per-window hash table.
func FilterSweepParallel(events []raslog.Event, base FilterRule, windows []time.Duration, workers int) ([]SweepPoint, error) {
	idx := severityIndex(events, raslog.Fatal)
	raw := len(idx)
	ik := internKeys(events, idx, base)
	out := make([]SweepPoint, len(windows))
	err := par.ForEach(context.Background(), len(windows), workers, func(i int) error {
		rule := base
		rule.Window = windows[i]
		if err := rule.Validate(); err != nil {
			return err
		}
		incidents := coalesceInterned(events, idx, ik, rule.Window)
		p := SweepPoint{Window: windows[i], Incidents: len(incidents)}
		if raw > 0 {
			p.Reduction = 1 - float64(len(incidents))/float64(raw)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// KneeWindow picks the knee of a sweep: the first window after which
// doubling the window reduces the incident count by less than relTol.
// The sweep must be ordered by increasing window.
func KneeWindow(sweep []SweepPoint, relTol float64) (time.Duration, bool) {
	if len(sweep) < 2 {
		return 0, false
	}
	for i := 1; i < len(sweep); i++ {
		prev, cur := sweep[i-1].Incidents, sweep[i].Incidents
		if prev == 0 {
			return sweep[i-1].Window, true
		}
		if float64(prev-cur)/float64(prev) < relTol {
			return sweep[i-1].Window, true
		}
	}
	return sweep[len(sweep)-1].Window, false
}
