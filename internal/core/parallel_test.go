package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/raslog"
)

// TestFilterSweepParallelMatchesSerial checks that the window grid evaluated
// concurrently yields exactly the serial sweep: each window's pass is
// independent and its SweepPoint lands in the window's slot.
func TestFilterSweepParallelMatchesSerial(t *testing.T) {
	var events []raslog.Event
	msgs := []string{"00040003", "00061001", "0008000A"}
	for i := 0; i < 12; i++ {
		start := filterT0.Add(time.Duration(i) * 37 * time.Minute)
		events = append(events, burst(t, start, 8, 45*time.Second, (i*7)%48, msgs[i%len(msgs)], int64(i))...)
	}
	windows := []time.Duration{
		30 * time.Second, time.Minute, 5 * time.Minute, 20 * time.Minute,
		time.Hour, 6 * time.Hour,
	}
	want, err := FilterSweepParallel(events, DefaultFilterRule(), windows, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := FilterSweepParallel(events, DefaultFilterRule(), windows, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: sweep differs:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}
