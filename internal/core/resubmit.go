package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/joblog"
	"repro/internal/stats"
)

// ResubmitResult quantifies resubmission behaviour: how quickly users
// resubmit after a failure, and how strongly outcomes repeat across a
// user's consecutive jobs.
type ResubmitResult struct {
	// Transition matrix of consecutive same-user jobs:
	// P(next fails | current fails) and P(next fails | current succeeds).
	PFailAfterFail    float64
	PFailAfterSuccess float64
	// Lift = PFailAfterFail / overall failure rate: > 1 means failures
	// cluster in time within a user's stream.
	Lift float64
	// Pairs counted per predecessor outcome.
	PairsAfterFail    int
	PairsAfterSuccess int
	// Inter-submission gap (current submit → next submit) medians, hours.
	MedianGapAfterFailH    float64
	MedianGapAfterSuccessH float64
	// FastResubmitShare is the fraction of post-failure gaps under one
	// hour — the "fix one flag and resubmit" pattern.
	FastResubmitShare float64
}

// Resubmission analyzes consecutive same-user jobs (ordered by submission)
// for outcome repetition and resubmission latency.
func (d *Dataset) Resubmission() (*ResubmitResult, error) {
	byUser := map[string][]*joblog.Job{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		byUser[j.User] = append(byUser[j.User], j)
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	res := &ResubmitResult{}
	var failAfterFail, failAfterSuccess int
	var gapsFail, gapsSuccess []float64
	fastResubs, totalFailGaps := 0, 0
	totalJobs, totalFailed := 0, 0
	for _, u := range users {
		jobs := byUser[u]
		sort.Slice(jobs, func(a, b int) bool {
			if !jobs[a].Submit.Equal(jobs[b].Submit) {
				return jobs[a].Submit.Before(jobs[b].Submit)
			}
			return jobs[a].ID < jobs[b].ID
		})
		for i, j := range jobs {
			totalJobs++
			if j.Outcome() == joblog.OutcomeFailure {
				totalFailed++
			}
			if i == 0 {
				continue
			}
			prev := jobs[i-1]
			nextFails := j.Outcome() == joblog.OutcomeFailure
			// Inter-submission time: robust to pipelined jobs whose next
			// submission precedes the previous job's end.
			gap := j.Submit.Sub(prev.Submit)
			if prev.Outcome() == joblog.OutcomeFailure {
				res.PairsAfterFail++
				if nextFails {
					failAfterFail++
				}
				gapsFail = append(gapsFail, gap.Hours())
				totalFailGaps++
				if gap < time.Hour {
					fastResubs++
				}
			} else {
				res.PairsAfterSuccess++
				if nextFails {
					failAfterSuccess++
				}
				gapsSuccess = append(gapsSuccess, gap.Hours())
			}
		}
	}
	if res.PairsAfterFail == 0 || res.PairsAfterSuccess == 0 {
		return nil, fmt.Errorf("core: not enough consecutive job pairs (fail=%d success=%d)",
			res.PairsAfterFail, res.PairsAfterSuccess)
	}
	res.PFailAfterFail = float64(failAfterFail) / float64(res.PairsAfterFail)
	res.PFailAfterSuccess = float64(failAfterSuccess) / float64(res.PairsAfterSuccess)
	overall := float64(totalFailed) / float64(totalJobs)
	if overall > 0 {
		res.Lift = res.PFailAfterFail / overall
	}
	var err error
	if res.MedianGapAfterFailH, err = stats.Quantile(gapsFail, 0.5); err != nil {
		return nil, err
	}
	if res.MedianGapAfterSuccessH, err = stats.Quantile(gapsSuccess, 0.5); err != nil {
		return nil, err
	}
	if totalFailGaps > 0 {
		res.FastResubmitShare = float64(fastResubs) / float64(totalFailGaps)
	}
	return res, nil
}
