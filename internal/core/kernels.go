package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitmap"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/scan"
)

// JobKernel / EventKernel are the dataset-flavored instantiations of the
// scan engine's kernel contract: analyses over the job columns register
// JobKernels, analyses over the RAS event columns register EventKernels.
type (
	JobKernel   = scan.Kernel[*scan.JobView]
	JobState    = scan.State[*scan.JobView]
	EventKernel = scan.Kernel[*scan.EventView]
	EventState  = scan.State[*scan.EventView]
)

// familySystemCode is the dense code of joblog.FamilySystem, the family
// whose failures the exit-status classification attributes to the system.
var familySystemCode = joblog.FamilyCode(joblog.FamilySystem)

// FailTally is the flat (map-free) failure-classification summary the fused
// kernels produce: corpus totals plus per-family failure counts indexed by
// dense family code. It carries the same numbers as Classification without
// the per-job cause map.
type FailTally struct {
	Total       int
	Failed      int
	UserCaused  int
	SystemCause int
	// ByFamily counts failed jobs per exit family, indexed by
	// joblog.FamilyCode (slot 0, success, stays zero).
	ByFamily [joblog.NumFamilies]int
}

// UserShare returns the fraction of failures attributed to user behavior.
func (t *FailTally) UserShare() float64 {
	if t.Failed == 0 {
		return 0
	}
	return float64(t.UserCaused) / float64(t.Failed)
}

// FamilyCount returns the failed-job count of one exit family.
func (t *FailTally) FamilyCount(f joblog.ExitFamily) int {
	return t.ByFamily[joblog.FamilyCode(f)]
}

// TallyOf flattens a Classification into a FailTally.
func TallyOf(c *Classification) FailTally {
	t := FailTally{
		Total:       c.Total,
		Failed:      c.Failed,
		UserCaused:  c.UserCaused,
		SystemCause: c.SystemCause,
	}
	for _, f := range joblog.FailureFamilies() {
		t.ByFamily[joblog.FamilyCode(f)] = c.ByFamily[f]
	}
	return t
}

// ---------------------------------------------------------------------------
// Job kernels

// summaryKernel feeds Summarize: core-second total plus outcome counts.
type summaryKernel struct{}

func (summaryKernel) Name() string       { return "summary" }
func (summaryKernel) NewState() JobState { return &summaryState{} }

type summaryState struct {
	coreSec         int64
	success, failed int
}

//mira:hotpath
func (s *summaryState) ProcessBlock(v *scan.JobView, lo, hi int) {
	cs, fam := v.CoreSec, v.Family
	var coreSec int64
	var succ, fail int
	for i := lo; i < hi; i++ {
		coreSec += cs[i]
		if fam[i] == 0 {
			succ++
		} else {
			fail++
		}
	}
	s.coreSec += coreSec
	s.success += succ
	s.failed += fail
}

func (s *summaryState) Merge(other JobState) {
	o := other.(*summaryState)
	s.coreSec += o.coreSec
	s.success += o.success
	s.failed += o.failed
}

// exitTallyKernel feeds ClassifyByExit consumers: the exit-status-only
// failure tally (scheduler-reserved statuses are system-caused).
type exitTallyKernel struct{}

func (exitTallyKernel) Name() string       { return "exit-tally" }
func (exitTallyKernel) NewState() JobState { return &exitTallyState{} }

type exitTallyState struct{ t FailTally }

//mira:hotpath
func (s *exitTallyState) ProcessBlock(v *scan.JobView, lo, hi int) {
	fam := v.Family
	for i := lo; i < hi; i++ {
		s.t.Total++
		c := fam[i]
		if c == 0 {
			continue
		}
		s.t.Failed++
		s.t.ByFamily[c]++
		if c == familySystemCode {
			s.t.SystemCause++
		} else {
			s.t.UserCaused++
		}
	}
}

func (s *exitTallyState) Merge(other JobState) {
	o := other.(*exitTallyState)
	s.t.Total += o.t.Total
	s.t.Failed += o.t.Failed
	s.t.UserCaused += o.t.UserCaused
	s.t.SystemCause += o.t.SystemCause
	for i := range s.t.ByFamily {
		s.t.ByFamily[i] += o.t.ByFamily[i]
	}
}

// jointKernel feeds ClassifyJoint consumers: the RAS-correlated tally. The
// kernel precomputes the block-attributable FATAL streams once (locations at
// rack level or finer, their times, and the directly attributed job ids) so
// each shard only binary-searches the times array.
type jointKernel struct {
	d          *Dataset
	locs       []machine.Location // block-attributable FATALs, time order
	timesNs    []int64            // their times, Unix nanoseconds
	attributed map[int64]bool     // job ids named by any FATAL event
	tolNs      int64
}

func newJointKernel(d *Dataset, opt JointOptions) *jointKernel {
	return newJointKernelWhere(d, opt, nil)
}

// newJointKernelWhere restricts the kernel's FATAL streams to the selected
// events (nil = all), so a cohort scan attributes failures exactly as a
// dataset materialized from that selection would.
func newJointKernelWhere(d *Dataset, opt JointOptions, eventSel *bitmap.Bitmap) *jointKernel {
	if opt.Tolerance <= 0 {
		opt = DefaultJointOptions()
	}
	k := &jointKernel{d: d, attributed: map[int64]bool{}, tolNs: int64(opt.Tolerance)}
	for _, i := range d.fatalIdx {
		if eventSel != nil && !eventSel.Contains(uint32(i)) {
			continue
		}
		e := &d.Events[i]
		if e.JobID != 0 {
			k.attributed[e.JobID] = true
		}
		if e.Loc.Level() < machine.LevelRack {
			continue
		}
		k.locs = append(k.locs, e.Loc)
		k.timesNs = append(k.timesNs, e.Time.UnixNano())
	}
	return k
}

func (k *jointKernel) Name() string       { return "joint-tally" }
func (k *jointKernel) NewState() JobState { return &jointState{k: k} }

type jointState struct {
	k *jointKernel
	t FailTally
}

//mira:hotpath
func (s *jointState) ProcessBlock(v *scan.JobView, lo, hi int) {
	k := s.k
	fam, ids, ends := v.Family, v.ID, v.EndUnix
	for i := lo; i < hi; i++ {
		s.t.Total++
		c := fam[i]
		if c == 0 {
			continue
		}
		s.t.Failed++
		s.t.ByFamily[c]++
		if k.attributed[ids[i]] || k.fatalNearEnd(i, ends[i]*int64(time.Second)) {
			s.t.SystemCause++
		} else {
			s.t.UserCaused++
		}
	}
}

// fatalNearEnd mirrors Dataset.fatalNearEnd over the precomputed columns:
// does a FATAL within tol of the job's end hit a block the job ran on?
func (k *jointKernel) fatalNearEnd(row int, endNs int64) bool {
	tasks := k.d.tasksOf[row]
	if len(tasks) == 0 {
		return false
	}
	times := k.timesNs
	lo, hi := 0, len(times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if times[mid] < endNs-k.tolNs {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(times) && times[i] <= endNs+k.tolNs; i++ {
		for t := range tasks {
			if tasks[t].Block.ContainsLocation(k.locs[i]) {
				return true
			}
		}
	}
	return false
}

func (s *jointState) Merge(other JobState) {
	o := other.(*jointState)
	s.t.Total += o.t.Total
	s.t.Failed += o.t.Failed
	s.t.UserCaused += o.t.UserCaused
	s.t.SystemCause += o.t.SystemCause
	for i := range s.t.ByFamily {
		s.t.ByFamily[i] += o.t.ByFamily[i]
	}
}

// groupKernel feeds Aggregate/Concentration/InterruptsByUser: dense per-key
// job, failure, system-failure and core-second tallies over the user or
// project dictionary. System attribution follows the exit-status
// classification (family "system"), matching the classification the
// experiments pass to the legacy aggregators.
type groupKernel struct {
	by GroupBy
	n  int // dictionary size
}

func newGroupKernel(by GroupBy, dictLen int) *groupKernel {
	return &groupKernel{by: by, n: dictLen}
}

func (k *groupKernel) Name() string { return "groups-by-" + k.by.String() }

func (k *groupKernel) NewState() JobState {
	return &groupState{
		by:       k.by,
		jobs:     make([]int32, k.n),
		failed:   make([]int32, k.n),
		sysfails: make([]int32, k.n),
		coreSec:  make([]int64, k.n),
	}
}

type groupState struct {
	by                     GroupBy
	jobs, failed, sysfails []int32
	coreSec                []int64
}

//mira:hotpath
func (s *groupState) ProcessBlock(v *scan.JobView, lo, hi int) {
	ids := v.UserID
	if s.by == ByProject {
		ids = v.ProjectID
	}
	fam, cs := v.Family, v.CoreSec
	for i := lo; i < hi; i++ {
		id := ids[i]
		s.jobs[id]++
		s.coreSec[id] += cs[i]
		if c := fam[i]; c != 0 {
			s.failed[id]++
			if c == familySystemCode {
				s.sysfails[id]++
			}
		}
	}
}

func (s *groupState) Merge(other JobState) {
	o := other.(*groupState)
	for i := range s.jobs {
		s.jobs[i] += o.jobs[i]
		s.failed[i] += o.failed[i]
		s.sysfails[i] += o.sysfails[i]
		s.coreSec[i] += o.coreSec[i]
	}
}

// finish converts the dense tallies into the legacy sorted GroupStats
// view. Keys with no jobs are skipped: a whole-corpus scan never produces
// one (the dictionary is built from the jobs), and in a cohort scan the
// skip makes the group list match a materialized dataset's smaller
// dictionary.
func (s *groupState) finish(keys []string) []GroupStats {
	out := make([]GroupStats, 0, len(keys))
	for i, key := range keys {
		if s.jobs[i] == 0 {
			continue
		}
		g := GroupStats{
			Key:         key,
			Jobs:        int(s.jobs[i]),
			Failed:      int(s.failed[i]),
			SystemFails: int(s.sysfails[i]),
			CoreHours:   float64(s.coreSec[i]) / 3600,
		}
		if g.Jobs > 0 {
			g.FailRate = float64(g.Failed) / float64(g.Jobs)
		}
		out = append(out, g)
	}
	sortGroups(out)
	return out
}

// wasteKernel feeds Waste: total and per-family core-seconds of failed jobs.
type wasteKernel struct{}

func (wasteKernel) Name() string       { return "waste" }
func (wasteKernel) NewState() JobState { return &wasteState{} }

type wasteState struct {
	totalCS int64
	famJobs [joblog.NumFamilies]int32
	famCS   [joblog.NumFamilies]int64
}

//mira:hotpath
func (s *wasteState) ProcessBlock(v *scan.JobView, lo, hi int) {
	fam, cs := v.Family, v.CoreSec
	for i := lo; i < hi; i++ {
		c := cs[i]
		s.totalCS += c
		if f := fam[i]; f != 0 {
			s.famJobs[f]++
			s.famCS[f] += c
		}
	}
}

func (s *wasteState) Merge(other JobState) {
	o := other.(*wasteState)
	s.totalCS += o.totalCS
	for i := range s.famJobs {
		s.famJobs[i] += o.famJobs[i]
		s.famCS[i] += o.famCS[i]
	}
}

// finish assembles the legacy WasteResult. Under the exit-status
// classification system-caused waste is exactly the "system" family's.
func (s *wasteState) finish() *WasteResult {
	res := &WasteResult{TotalCoreHours: float64(s.totalCS) / 3600}
	var wastedCS int64
	for f := 1; f < joblog.NumFamilies; f++ {
		wastedCS += s.famCS[f]
	}
	sysCS := s.famCS[familySystemCode]
	res.WastedCoreHours = float64(wastedCS) / 3600
	res.SystemCoreHours = float64(sysCS) / 3600
	res.UserCoreHours = float64(wastedCS-sysCS) / 3600
	if res.TotalCoreHours > 0 {
		res.WastedShare = res.WastedCoreHours / res.TotalCoreHours
	}
	for f := 1; f < joblog.NumFamilies; f++ {
		if s.famJobs[f] == 0 {
			continue
		}
		row := WasteRow{
			Family:    joblog.FamilyOfCode(uint8(f)),
			Jobs:      int(s.famJobs[f]),
			CoreHours: float64(s.famCS[f]) / 3600,
		}
		if res.WastedCoreHours > 0 {
			row.Share = row.CoreHours / res.WastedCoreHours
		}
		res.ByFamily = append(res.ByFamily, row)
	}
	sort.Slice(res.ByFamily, func(i, j int) bool {
		if res.ByFamily[i].CoreHours != res.ByFamily[j].CoreHours {
			return res.ByFamily[i].CoreHours > res.ByFamily[j].CoreHours
		}
		return res.ByFamily[i].Family < res.ByFamily[j].Family
	})
	return res
}

// temporalJobKernel feeds Temporal's job-side bins: hour-of-day, weekday,
// month and day histograms of submissions and failures. All calendar math is
// integer arithmetic on Unix seconds (UTC), bit-identical to the time.Time
// path (see DESIGN.md §13).
type temporalJobKernel struct {
	startUnix int64
	monthCap  int // months spanned by the dataset, for allocation-free appends
	dayCap    int // days spanned, ditto
}

func newTemporalJobKernel(d *Dataset) *temporalJobKernel {
	start, end := d.Span()
	return newTemporalJobKernelSpan(start, end)
}

// newTemporalJobKernelSpan builds the kernel for an explicit observation
// window — a cohort scan passes the selection's span so its day bins line
// up with a dataset materialized from the same selection.
func newTemporalJobKernelSpan(start, end time.Time) *temporalJobKernel {
	spanSec := end.Unix() - start.Unix()
	if spanSec < 0 {
		spanSec = 0
	}
	return &temporalJobKernel{
		startUnix: start.Unix(),
		monthCap:  int(spanSec/(28*86400)) + 2,
		dayCap:    int(spanSec/86400) + 2,
	}
}

func (k *temporalJobKernel) Name() string { return "temporal-jobs" }

func (k *temporalJobKernel) NewState() JobState {
	return &temporalJobState{
		k:       k,
		months:  make([]int32, 0, k.monthCap),
		mJobs:   make([]int, 0, k.monthCap),
		mFails:  make([]int, 0, k.monthCap),
		jobsDay: make([]int, 0, k.dayCap),
	}
}

type temporalJobState struct {
	k         *temporalJobKernel
	jobsHour  [24]int
	failsHour [24]int
	jobsWd    [7]int
	failsWd   [7]int
	// Monthly bins keyed by year-month code in first-appearance (= submit)
	// order; labels are materialized at finish time.
	months []int32
	mJobs  []int
	mFails []int
	// jobsDay grows to the last day seen, like the legacy profile.
	jobsDay []int
}

// monthSlot returns the bin index of ym, appending a new bin on first
// appearance. The corpus is time-ordered, so the current month is almost
// always the last bin.
func (s *temporalJobState) monthSlot(ym int32) int {
	if n := len(s.months); n > 0 && s.months[n-1] == ym {
		return n - 1
	}
	for i := range s.months {
		if s.months[i] == ym {
			return i
		}
	}
	s.months = append(s.months, ym)
	s.mJobs = append(s.mJobs, 0)
	s.mFails = append(s.mFails, 0)
	return len(s.months) - 1
}

//mira:hotpath
func (s *temporalJobState) ProcessBlock(v *scan.JobView, lo, hi int) {
	sub, fam := v.SubmitUnix, v.Family
	start := s.k.startUnix
	for i := lo; i < hi; i++ {
		u := sub[i]
		h := int(u%86400) / 3600
		w := int((u/86400 + 4) % 7)
		m := s.monthSlot(ymOf(u))
		day := int((u - start) / 86400)
		if day < 0 {
			day = 0
		}
		for len(s.jobsDay) <= day {
			s.jobsDay = append(s.jobsDay, 0)
		}
		s.jobsDay[day]++
		s.jobsHour[h]++
		s.jobsWd[w]++
		s.mJobs[m]++
		if fam[i] != 0 {
			s.failsHour[h]++
			s.failsWd[w]++
			s.mFails[m]++
		}
	}
}

func (s *temporalJobState) Merge(other JobState) {
	o := other.(*temporalJobState)
	for i := 0; i < 24; i++ {
		s.jobsHour[i] += o.jobsHour[i]
		s.failsHour[i] += o.failsHour[i]
	}
	for i := 0; i < 7; i++ {
		s.jobsWd[i] += o.jobsWd[i]
		s.failsWd[i] += o.failsWd[i]
	}
	// Other covers later rows: its new months append after ours, preserving
	// global first-appearance order.
	for i, ym := range o.months {
		m := s.monthSlot(ym)
		s.mJobs[m] += o.mJobs[i]
		s.mFails[m] += o.mFails[i]
	}
	if len(o.jobsDay) > len(s.jobsDay) {
		s.jobsDay = append(s.jobsDay, make([]int, len(o.jobsDay)-len(s.jobsDay))...)
	}
	for i, n := range o.jobsDay {
		s.jobsDay[i] += n
	}
}

// ---------------------------------------------------------------------------
// Event kernels

// profileKernel feeds Profile: dense severity/category/component tallies.
type profileKernel struct {
	nCats, nComps int
}

func (k *profileKernel) Name() string { return "ras-profile" }

func (k *profileKernel) NewState() EventState {
	return &profileState{
		cats:      make([]int, k.nCats),
		comps:     make([]int, k.nComps),
		fatalCats: make([]int, k.nCats),
	}
}

type profileState struct {
	total     int
	sevs      [4]int // indexed by raslog.Severity (1..3)
	cats      []int
	comps     []int
	fatalCats []int
}

//mira:hotpath
func (s *profileState) ProcessBlock(v *scan.EventView, lo, hi int) {
	sev, cat, comp := v.Sev, v.CatID, v.CompID
	for i := lo; i < hi; i++ {
		s.total++
		s.sevs[sev[i]]++
		s.cats[cat[i]]++
		s.comps[comp[i]]++
		if sev[i] == uint8(raslog.Fatal) {
			s.fatalCats[cat[i]]++
		}
	}
}

func (s *profileState) Merge(other EventState) {
	o := other.(*profileState)
	s.total += o.total
	for i := range s.sevs {
		s.sevs[i] += o.sevs[i]
	}
	for i := range s.cats {
		s.cats[i] += o.cats[i]
		s.fatalCats[i] += o.fatalCats[i]
	}
	for i := range s.comps {
		s.comps[i] += o.comps[i]
	}
}

func (s *profileState) finish(v *scan.EventView) *CategoryProfile {
	p := &CategoryProfile{
		BySeverity:      map[raslog.Severity]int{},
		ByCategory:      map[raslog.Category]int{},
		ByComponent:     map[raslog.Component]int{},
		FatalByCategory: map[raslog.Category]int{},
		Total:           s.total,
	}
	for sev, n := range s.sevs {
		if n > 0 {
			p.BySeverity[raslog.Severity(sev)] = n
		}
	}
	for i, n := range s.cats {
		if n > 0 {
			p.ByCategory[raslog.Category(v.Cats[i])] = n
		}
		if fn := s.fatalCats[i]; fn > 0 {
			p.FatalByCategory[raslog.Category(v.Cats[i])] = fn
		}
	}
	for i, n := range s.comps {
		if n > 0 {
			p.ByComponent[raslog.Component(v.Comps[i])] = n
		}
	}
	return p
}

// temporalEventKernel feeds Temporal's FATAL-side bins.
type temporalEventKernel struct {
	monthCap int
}

func (k *temporalEventKernel) Name() string { return "temporal-fatals" }

func (k *temporalEventKernel) NewState() EventState {
	return &temporalEventState{
		months:  make([]int32, 0, k.monthCap),
		mFatals: make([]int, 0, k.monthCap),
	}
}

type temporalEventState struct {
	fatalHour [24]int
	months    []int32
	mFatals   []int
}

func (s *temporalEventState) monthSlot(ym int32) int {
	if n := len(s.months); n > 0 && s.months[n-1] == ym {
		return n - 1
	}
	for i := range s.months {
		if s.months[i] == ym {
			return i
		}
	}
	s.months = append(s.months, ym)
	s.mFatals = append(s.mFatals, 0)
	return len(s.months) - 1
}

//mira:hotpath
func (s *temporalEventState) ProcessBlock(v *scan.EventView, lo, hi int) {
	sev, times := v.Sev, v.TimeUnix
	for i := lo; i < hi; i++ {
		if sev[i] != uint8(raslog.Fatal) {
			continue
		}
		u := times[i]
		s.fatalHour[int(u%86400)/3600]++
		s.mFatals[s.monthSlot(ymOf(u))]++
	}
}

func (s *temporalEventState) Merge(other EventState) {
	o := other.(*temporalEventState)
	for i := 0; i < 24; i++ {
		s.fatalHour[i] += o.fatalHour[i]
	}
	for i, ym := range o.months {
		s.mFatals[s.monthSlot(ym)] += o.mFatals[i]
	}
}

// localityKernel feeds Locality: dense FATAL counts per midplane or rack.
type localityKernel struct {
	level machine.Level
}

func (k *localityKernel) Name() string { return "locality-" + k.level.String() }

func (k *localityKernel) NewState() EventState {
	slots := machine.NumRacks
	if k.level == machine.LevelMidplane {
		slots = machine.TotalMidplanes
	}
	return &localityState{level: k.level, counts: make([]int32, slots)}
}

type localityState struct {
	level  machine.Level
	counts []int32
	total  int
}

//mira:hotpath
func (s *localityState) ProcessBlock(v *scan.EventView, lo, hi int) {
	sev := v.Sev
	ids := v.RackID
	if s.level == machine.LevelMidplane {
		ids = v.MidplaneID
	}
	for i := lo; i < hi; i++ {
		if sev[i] != uint8(raslog.Fatal) {
			continue
		}
		id := ids[i]
		if id < 0 {
			continue
		}
		s.counts[id]++
		s.total++
	}
}

func (s *localityState) Merge(other EventState) {
	o := other.(*localityState)
	s.total += o.total
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
}

func (s *localityState) finish() (*LocalityResult, error) {
	dense := make([]int, len(s.counts))
	for i, n := range s.counts {
		dense[i] = int(n)
	}
	counts, err := locationCounts(s.level, dense)
	if err != nil {
		return nil, err
	}
	return localityFromCounts(s.level, counts, s.total)
}

// ---------------------------------------------------------------------------
// Calendar helpers (integer civil-date math over Unix seconds, UTC)

// ymOf returns the year-month code (year*12 + month-1) of a Unix timestamp,
// using Howard Hinnant's civil-from-days algorithm. Valid for sec ≥ 0.
func ymOf(sec int64) int32 {
	e := sec/86400 + 719468
	era := e / 146097
	doe := e % 146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	m := mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int32(y*12 + m - 1)
}

// ymLabel renders a year-month code the way time.Format("2006-01") does.
func ymLabel(ym int32) string {
	return fmt.Sprintf("%04d-%02d", ym/12, ym%12+1)
}
