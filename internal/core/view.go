package core

import (
	"fmt"

	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/scan"
)

// BuildJobView constructs the SoA column mirror of the hot job columns from
// AoS records. Dictionaries are interned in first-appearance order, which is
// also the order the mirapack encoder assigns, so lazily built and
// pack-decoded views are identical.
func BuildJobView(jobs []joblog.Job) *scan.JobView {
	n := len(jobs)
	v := &scan.JobView{
		N:          n,
		ID:         make([]int64, n),
		SubmitUnix: make([]int64, n),
		StartUnix:  make([]int64, n),
		EndUnix:    make([]int64, n),
		DurSec:     make([]int64, n),
		Nodes:      make([]int32, n),
		CoreSec:    make([]int64, n),
		Exit:       make([]int32, n),
		Family:     make([]uint8, n),
		UserID:     make([]int32, n),
		ProjectID:  make([]int32, n),
	}
	users := map[string]int32{}
	projects := map[string]int32{}
	for i := range jobs {
		j := &jobs[i]
		v.ID[i] = j.ID
		v.SubmitUnix[i] = j.Submit.Unix()
		v.StartUnix[i] = j.Start.Unix()
		v.EndUnix[i] = j.End.Unix()
		v.DurSec[i] = v.EndUnix[i] - v.StartUnix[i]
		v.Nodes[i] = int32(j.Nodes)
		v.CoreSec[i] = j.CoreSeconds()
		v.Exit[i] = int32(j.ExitStatus)
		v.Family[i] = joblog.FamilyCodeOf(j.ExitStatus)
		uid, ok := users[j.User]
		if !ok {
			uid = int32(len(v.Users))
			users[j.User] = uid
			v.Users = append(v.Users, j.User)
		}
		v.UserID[i] = uid
		pid, ok := projects[j.Project]
		if !ok {
			pid = int32(len(v.Projects))
			projects[j.Project] = pid
			v.Projects = append(v.Projects, j.Project)
		}
		v.ProjectID[i] = pid
	}
	return v
}

// BuildEventView constructs the SoA column mirror of the hot RAS event
// columns from AoS records.
func BuildEventView(events []raslog.Event) *scan.EventView {
	n := len(events)
	v := &scan.EventView{
		N:          n,
		TimeUnix:   make([]int64, n),
		Sev:        make([]uint8, n),
		CatID:      make([]int32, n),
		CompID:     make([]int32, n),
		MidplaneID: make([]int32, n),
		RackID:     make([]int32, n),
	}
	cats := map[raslog.Category]int32{}
	comps := map[raslog.Component]int32{}
	for i := range events {
		e := &events[i]
		v.TimeUnix[i] = e.Time.Unix()
		v.Sev[i] = uint8(e.Sev)
		cid, ok := cats[e.Cat]
		if !ok {
			cid = int32(len(v.Cats))
			cats[e.Cat] = cid
			v.Cats = append(v.Cats, string(e.Cat))
		}
		v.CatID[i] = cid
		mid, ok := comps[e.Comp]
		if !ok {
			mid = int32(len(v.Comps))
			comps[e.Comp] = mid
			v.Comps = append(v.Comps, string(e.Comp))
		}
		v.CompID[i] = mid
		v.MidplaneID[i], v.RackID[i] = LocIDs(e.Loc)
	}
	return v
}

// LocIDs maps a location to its dense midplane and rack ids, -1 where the
// location is coarser than the level. The mirapack decoder uses it to fill
// event-view columns straight from the stored location codes.
func LocIDs(loc machine.Location) (midplane, rack int32) {
	midplane, rack = -1, -1
	lvl := loc.Level()
	if lvl >= machine.LevelRack {
		rack = int32(loc.RackIndex())
	}
	if lvl >= machine.LevelMidplane {
		if id, err := loc.MidplaneID(); err == nil {
			midplane = int32(id)
		}
	}
	return midplane, rack
}

// JobView returns the dataset's SoA job-column mirror, building it on first
// use unless one was adopted from pack decode. The view is immutable and
// safe for concurrent use.
func (d *Dataset) JobView() *scan.JobView {
	d.jobViewOnce.Do(func() { d.jobView = BuildJobView(d.Jobs) })
	return d.jobView
}

// EventView returns the dataset's SoA event-column mirror, building it on
// first use unless one was adopted from pack decode. The view is immutable
// and safe for concurrent use.
func (d *Dataset) EventView() *scan.EventView {
	d.eventViewOnce.Do(func() { d.eventView = BuildEventView(d.Events) })
	return d.eventView
}

// AdoptViews installs column views produced elsewhere (mirapack decode
// builds them straight from the stored columns, skipping the AoS re-walk).
// Either argument may be nil to leave that view lazily built. Adoption must
// happen before the first JobView/EventView call; a view that arrives after
// the lazy build is ignored.
func (d *Dataset) AdoptViews(jv *scan.JobView, ev *scan.EventView) error {
	if jv != nil {
		if jv.N != len(d.Jobs) {
			return fmt.Errorf("core: adopt job view: %d rows for %d jobs", jv.N, len(d.Jobs))
		}
		d.jobViewOnce.Do(func() { d.jobView = jv })
	}
	if ev != nil {
		if ev.N != len(d.Events) {
			return fmt.Errorf("core: adopt event view: %d rows for %d events", ev.N, len(d.Events))
		}
		d.eventViewOnce.Do(func() { d.eventView = ev })
	}
	return nil
}
