package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/joblog"
	"repro/internal/stats"
)

// WaitBucket is the queue-wait profile of one job-size class.
type WaitBucket struct {
	Nodes      int // block size
	Jobs       int
	MedianWait time.Duration
	P95Wait    time.Duration
}

// WalltimeAccuracy summarizes how well requested walltimes predict actual
// runtimes for one outcome class. Ratio = runtime / requested walltime.
type WalltimeAccuracy struct {
	Outcome     string
	Jobs        int
	MedianRatio float64
	P95Ratio    float64
	// UnderTenPct is the fraction of jobs using less than 10% of their
	// request — grossly over-requested work.
	UnderTenPct float64
}

// SchedulingResult is the queue-behaviour analysis: waiting time by job
// size and walltime-request accuracy by outcome.
type SchedulingResult struct {
	WaitBySize []WaitBucket
	// SpearmanSizeWait is the rank correlation between a job's size and its
	// queue wait — capability jobs wait longer for machine drains.
	SpearmanSizeWait float64
	Accuracy         []WalltimeAccuracy
	// PearsonReqUsed correlates requested walltime with actual runtime
	// over succeeded jobs.
	PearsonReqUsed float64
}

// Scheduling computes the queue-wait and walltime-accuracy profile.
func (d *Dataset) Scheduling() (*SchedulingResult, error) {
	if len(d.Jobs) == 0 {
		return nil, fmt.Errorf("core: no jobs")
	}
	waits := map[int][]float64{}
	// The paired-sample slices reach one entry per job; sizing them up front
	// avoids repeated growth copies on the hot suite path.
	sizes := make([]float64, 0, len(d.Jobs))
	waitVals := make([]float64, 0, len(d.Jobs))
	var okReq, okUsed []float64
	ratiosByOutcome := map[string][]float64{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		w := j.QueueWait()
		if w < 0 {
			w = 0
		}
		waits[j.Nodes] = append(waits[j.Nodes], w.Seconds())
		sizes = append(sizes, float64(j.Nodes))
		waitVals = append(waitVals, w.Seconds())
		if j.WalltimeReq > 0 {
			ratio := float64(j.Runtime()) / float64(j.WalltimeReq)
			ratiosByOutcome[j.Outcome().String()] = append(ratiosByOutcome[j.Outcome().String()], ratio)
			if j.Outcome() == joblog.OutcomeSuccess {
				okReq = append(okReq, j.WalltimeReq.Seconds())
				okUsed = append(okUsed, j.Runtime().Seconds())
			}
		}
	}
	res := &SchedulingResult{}
	nodes := make([]int, 0, len(waits))
	for n := range waits {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		qs, err := stats.Quantiles(waits[n], []float64{0.5, 0.95})
		if err != nil {
			return nil, err
		}
		res.WaitBySize = append(res.WaitBySize, WaitBucket{
			Nodes:      n,
			Jobs:       len(waits[n]),
			MedianWait: time.Duration(qs[0] * float64(time.Second)),
			P95Wait:    time.Duration(qs[1] * float64(time.Second)),
		})
	}
	trend, err := stats.Spearman(sizes, waitVals)
	if err != nil {
		return nil, fmt.Errorf("core: size-wait trend: %w", err)
	}
	res.SpearmanSizeWait = trend

	for _, outcome := range []string{"success", "failure"} {
		ratios := ratiosByOutcome[outcome]
		if len(ratios) == 0 {
			continue
		}
		qs, err := stats.Quantiles(ratios, []float64{0.5, 0.95})
		if err != nil {
			return nil, err
		}
		under := 0
		for _, r := range ratios {
			if r < 0.1 {
				under++
			}
		}
		res.Accuracy = append(res.Accuracy, WalltimeAccuracy{
			Outcome:     outcome,
			Jobs:        len(ratios),
			MedianRatio: qs[0],
			P95Ratio:    qs[1],
			UnderTenPct: float64(under) / float64(len(ratios)),
		})
	}
	if len(okReq) >= 2 {
		r, err := stats.Pearson(okReq, okUsed)
		if err != nil {
			return nil, fmt.Errorf("core: req-used correlation: %w", err)
		}
		res.PearsonReqUsed = r
	}
	return res, nil
}

// LifePhase is the reliability profile of one slice of the system's life.
type LifePhase struct {
	Label         string
	StartDay      float64
	EndDay        float64
	Jobs          int
	Failed        int
	FailRate      float64
	Interruptions int
	MTTIDays      float64
}

// LifePhases splits the observation window into n equal phases and reports
// how the job failure rate and MTTI evolve over the system's life — the
// burn-in / mid-life / wear-out trajectory.
func (d *Dataset) LifePhases(n int, rule FilterRule) ([]LifePhase, error) {
	mtti, err := d.MTTI(rule)
	if err != nil {
		return nil, err
	}
	return d.LifePhasesFromMTTI(n, mtti)
}

// LifePhasesFromMTTI computes the life-phase profile from an
// already-computed MTTI analysis, letting callers reuse a memoized result
// instead of re-filtering the FATAL stream.
func (d *Dataset) LifePhasesFromMTTI(n int, mtti *MTTIResult) ([]LifePhase, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: need ≥2 phases, got %d", n)
	}
	start, end := d.Span()
	span := end.Sub(start)
	phaseOf := func(t time.Time) int {
		idx := int(float64(n) * float64(t.Sub(start)) / float64(span))
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
	phases := make([]LifePhase, n)
	for i := range phases {
		phases[i].Label = fmt.Sprintf("phase %d/%d", i+1, n)
		phases[i].StartDay = float64(i) * span.Hours() / 24 / float64(n)
		phases[i].EndDay = float64(i+1) * span.Hours() / 24 / float64(n)
	}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		p := &phases[phaseOf(j.Start)]
		p.Jobs++
		if j.Outcome() == joblog.OutcomeFailure {
			p.Failed++
		}
	}
	for i := range mtti.Incidents {
		phases[phaseOf(mtti.Incidents[i].First)].Interruptions++
	}
	for i := range phases {
		p := &phases[i]
		if p.Jobs > 0 {
			p.FailRate = float64(p.Failed) / float64(p.Jobs)
		}
		if p.Interruptions > 0 {
			p.MTTIDays = (p.EndDay - p.StartDay) / float64(p.Interruptions)
		}
	}
	return phases, nil
}
