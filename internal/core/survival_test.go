package core

import (
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/stats"
)

func TestSurvivalScenario(t *testing.T) {
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(id int64, dur time.Duration, exit int) joblog.Job {
		return joblog.Job{
			ID: id, User: "u", Project: "p", Queue: "q",
			Submit: base, Start: base, End: base.Add(dur),
			WalltimeReq: 48 * time.Hour, Nodes: 512, RanksPerNode: 16, NumTasks: 1,
			ExitStatus: exit,
		}
	}
	jobs := []joblog.Job{
		mk(1, 10*time.Minute, 1),                      // user failure at 600s
		mk(2, time.Hour, 0),                           // success: censored at 3600s
		mk(3, 2*time.Hour, joblog.ExitSystemReserved), // system kill: censored
		mk(4, 3*time.Hour, 139),                       // user failure at 10800s
	}
	d, err := NewDataset(jobs, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Survival()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 4 || res.Events != 2 || res.Censored != 2 {
		t.Fatalf("counts = %+v", res)
	}
	// S(600) = 1 - 1/4 = 0.75; S(10800) = 0.75 * (1 - 1/1) = 0.
	if got := stats.SurvivalAt(res.Curve, 600); got != 0.75 {
		t.Errorf("S(600) = %v, want 0.75", got)
	}
	if got := stats.SurvivalAt(res.Curve, 10800); got != 0 {
		t.Errorf("S(10800) = %v, want 0", got)
	}
	if res.Horizons[60] != 1 {
		t.Errorf("S(60) = %v, want 1", res.Horizons[60])
	}
}

func TestSurvivalOnCorpus(t *testing.T) {
	d, c := dataset(t)
	res, err := d.Survival()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != len(c.Jobs) {
		t.Errorf("jobs = %d, want %d", res.Jobs, len(c.Jobs))
	}
	if res.Events+res.Censored != res.Jobs {
		t.Error("events + censored != jobs")
	}
	// Monotone horizons.
	prev := 1.0
	for _, h := range []int{60, 600, 3600, 6 * 3600, 24 * 3600} {
		s := res.Horizons[h]
		if s > prev {
			t.Fatalf("S not monotone at %ds: %v > %v", h, s, prev)
		}
		prev = s
	}
	// The injected Weibull(k<1) user-failure mix gives a decreasing hazard.
	if !res.HazardDecreasing {
		t.Error("infant mortality not detected")
	}
}

func TestSurvivalAllSuccess(t *testing.T) {
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	jobs := []joblog.Job{{
		ID: 1, User: "u", Project: "p", Queue: "q",
		Submit: base, Start: base, End: base.Add(time.Hour),
		WalltimeReq: 2 * time.Hour, Nodes: 512, RanksPerNode: 16, NumTasks: 1,
	}}
	d, err := NewDataset(jobs, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Survival(); err == nil {
		t.Error("all-censored corpus accepted")
	}
}
