package core

import (
	"fmt"
	"time"

	"repro/internal/machine"
)

// SpatialCorrResult quantifies whether incidents that are close in time
// are also close on the 5D torus — the propagation signature of cable and
// link-chip failures.
type SpatialCorrResult struct {
	Incidents  int // incidents with a torus position
	ClosePairs int // incident pairs within the time window
	AllPairs   int // all incident pairs (the independence baseline)
	// Mean torus distance of close-in-time pairs vs all pairs.
	MeanDistClose float64
	MeanDistAll   float64
	// NeighborShare is the fraction of pairs at torus distance ≤ 1.
	NeighborShareClose float64
	NeighborShareAll   float64
	// Correlated reports NeighborShareClose ≫ NeighborShareAll (≥ 2×).
	Correlated bool
}

// SpatialCorrelation filters FATAL events into incidents and compares the
// torus distance of incident pairs that start within window of each other
// against the all-pairs baseline.
func (d *Dataset) SpatialCorrelation(rule FilterRule, window time.Duration) (*SpatialCorrResult, error) {
	incidents, err := d.FilterFatal(rule)
	if err != nil {
		return nil, err
	}
	return SpatialCorrelationIncidents(incidents, window)
}

// SpatialCorrelationIncidents runs the torus-correlation analysis over
// already-filtered incidents, letting callers reuse one filtering pass for
// several windows.
func SpatialCorrelationIncidents(incidents []Incident, window time.Duration) (*SpatialCorrResult, error) {
	if window <= 0 {
		return nil, fmt.Errorf("core: spatial correlation window must be positive")
	}
	type point struct {
		at  time.Time
		mid int
	}
	var pts []point
	for i := range incidents {
		mid, ok := machine.TorusMidplaneID(incidents[i].Loc)
		if !ok {
			continue
		}
		pts = append(pts, point{at: incidents[i].First, mid: mid})
	}
	if len(pts) < 3 {
		return nil, fmt.Errorf("core: only %d localizable incidents", len(pts))
	}
	res := &SpatialCorrResult{Incidents: len(pts)}
	var sumClose, sumAll float64
	var nbrClose, nbrAll int
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dist, err := machine.TorusDistance(pts[i].mid, pts[j].mid)
			if err != nil {
				return nil, err
			}
			res.AllPairs++
			sumAll += float64(dist)
			if dist <= 1 {
				nbrAll++
			}
			gap := pts[j].at.Sub(pts[i].at)
			if gap < 0 {
				gap = -gap
			}
			if gap <= window {
				res.ClosePairs++
				sumClose += float64(dist)
				if dist <= 1 {
					nbrClose++
				}
			}
		}
	}
	if res.AllPairs > 0 {
		res.MeanDistAll = sumAll / float64(res.AllPairs)
		res.NeighborShareAll = float64(nbrAll) / float64(res.AllPairs)
	}
	if res.ClosePairs > 0 {
		res.MeanDistClose = sumClose / float64(res.ClosePairs)
		res.NeighborShareClose = float64(nbrClose) / float64(res.ClosePairs)
	}
	res.Correlated = res.ClosePairs > 0 && res.NeighborShareClose >= 2*res.NeighborShareAll
	return res, nil
}
