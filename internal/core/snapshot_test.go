package core

import (
	"reflect"
	"testing"

	"repro/internal/joblog"
)

// TestSnapshotRebuildEquivalence pins NewDatasetFromSnapshot to NewDataset:
// re-indexing the same logs from an exported snapshot must reproduce the
// dataset exactly, shared event-scan indexes included. The comparison uses
// a freshly built dataset, not the shared one: other tests populate the
// shared dataset's lazy caches (column views, interned filter keys), which
// a from-snapshot rebuild deliberately leaves empty.
func TestSnapshotRebuildEquivalence(t *testing.T) {
	_, c := dataset(t)
	d, err := NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	if err != nil {
		t.Fatal(err)
	}
	back, err := NewDatasetFromSnapshot(d.Jobs, d.Tasks, d.Events, d.IO, d.ExportIndexes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatal("snapshot-built dataset differs from scan-built dataset")
	}
}

func TestSnapshotRejectsMismatch(t *testing.T) {
	d, _ := dataset(t)
	snap := d.ExportIndexes()

	if _, err := NewDatasetFromSnapshot(nil, d.Tasks, d.Events, d.IO, snap); err == nil {
		t.Error("no jobs accepted")
	}

	// A snapshot that does not cover the stream must be rejected: here the
	// stream is truncated but the indexes still reference the full length.
	if _, err := NewDatasetFromSnapshot(d.Jobs, d.Tasks, d.Events[:len(d.Events)/2], d.IO, snap); err == nil {
		t.Error("snapshot/stream length mismatch accepted")
	}

	// Over-attributing per-job indexes must be rejected too.
	bad := snap
	bad.JobEvents = []JobEventIndex{{JobID: 1, Idx: make([]int, len(d.Events)+1)}}
	bad.InfoN = len(d.Events) - len(bad.FatalIdx) - len(bad.WarnIdx)
	if _, err := NewDatasetFromSnapshot(d.Jobs, d.Tasks, d.Events, d.IO, bad); err == nil {
		t.Error("over-attributed snapshot accepted")
	}

	// As must per-job index lists that are out of range or out of order.
	bad = snap
	bad.JobEvents = []JobEventIndex{{JobID: 1, Idx: []int{len(d.Events)}}}
	if _, err := NewDatasetFromSnapshot(d.Jobs, d.Tasks, d.Events, d.IO, bad); err == nil {
		t.Error("out-of-range event index accepted")
	}
	bad.JobEvents = []JobEventIndex{{JobID: 1, Idx: []int{1, 0}}}
	if _, err := NewDatasetFromSnapshot(d.Jobs, d.Tasks, d.Events, d.IO, bad); err == nil {
		t.Error("out-of-order event index accepted")
	}

	// Duplicate job ids are still caught on the snapshot path.
	jobs := append(append([]joblog.Job(nil), d.Jobs...), d.Jobs[0])
	if _, err := NewDatasetFromSnapshot(jobs, d.Tasks, d.Events, d.IO, snap); err == nil {
		t.Error("duplicate job id accepted")
	}
}
