package core

import (
	"testing"

	"repro/internal/joblog"
	"repro/internal/sim"
)

func TestFitExecutionLengths(t *testing.T) {
	d, _ := dataset(t)
	fits, err := d.FitExecutionLengths(FitOptions{MinSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) < 5 {
		t.Fatalf("only %d families fitted", len(fits))
	}
	laws := sim.DurationLaws()
	// Families the injection makes unambiguous. Exponential may be matched
	// by erlang(k=1)/gamma/weibull(k≈1), which are the same law.
	equivalent := map[string][]string{
		"weibull":          {"weibull"},
		"pareto":           {"pareto"},
		"inverse-gaussian": {"inverse-gaussian", "lognormal"},
		"exponential":      {"exponential", "erlang", "gamma", "weibull"},
		"erlang":           {"erlang", "gamma", "weibull"},
		"lognormal":        {"lognormal", "inverse-gaussian"},
	}
	for _, f := range fits {
		if f.Best().Err != nil {
			t.Errorf("family %s: best fit has error %v", f.Family, f.Best().Err)
			continue
		}
		truth, ok := laws[f.Family]
		if !ok {
			continue // "system" family has no injected user law
		}
		want := equivalent[truth.Name()]
		if f.N < 2000 {
			// Small samples cannot reliably separate light-tailed unimodal
			// families; accept the near-equivalent set.
			want = append(append([]string(nil), want...), "erlang", "gamma", "weibull")
		}
		found := false
		for _, w := range want {
			if f.Best().Family == w {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s (injected %s, n=%d): selected %s (KS=%.4f)",
				f.Family, truth.Name(), f.N, f.Best().Family, f.Best().KS)
		}
		if f.Best().KS > 0.08 {
			t.Errorf("family %s: winning KS %.4f too large", f.Family, f.Best().KS)
		}
	}
}

func TestFitOptionsMinSamples(t *testing.T) {
	d, _ := dataset(t)
	fits, err := d.FitExecutionLengths(FitOptions{MinSamples: 1 << 30})
	if err == nil {
		t.Errorf("absurd MinSamples returned %d fits", len(fits))
	}
}

func TestFitMaxSamplesThinning(t *testing.T) {
	d, _ := dataset(t)
	full, err := d.FitExecutionLengths(FitOptions{MinSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	thinned, err := d.FitExecutionLengths(FitOptions{MinSamples: 100, MaxSamples: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(thinned) {
		t.Fatalf("family counts differ: %d vs %d", len(full), len(thinned))
	}
	for i := range thinned {
		if thinned[i].N > 500 {
			t.Errorf("family %s not thinned: n=%d", thinned[i].Family, thinned[i].N)
		}
	}
}

func TestThin(t *testing.T) {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i)
	}
	out := thin(data, 100)
	if len(out) != 100 {
		t.Fatalf("thin returned %d", len(out))
	}
	// Deterministic and order-preserving.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("thin not order-preserving")
		}
	}
}

func TestFamilyFitBestEmpty(t *testing.T) {
	var f FamilyFit
	if f.Best().Dist != nil {
		t.Error("empty FamilyFit should have nil best")
	}
}

func TestSystemFamilyPresent(t *testing.T) {
	// System-killed jobs' execution lengths are interruption-truncated;
	// the family exists in the classification even if not fitted.
	d, _ := dataset(t)
	cls := d.ClassifyByExit()
	if cls.ByFamily[joblog.FamilySystem] == 0 {
		t.Error("no system-family failures in classification")
	}
}
