package core

import (
	"fmt"
	"sort"

	"repro/internal/joblog"
	"repro/internal/stats"
)

// GroupStats aggregates jobs over one grouping key (user or project).
type GroupStats struct {
	Key         string
	Jobs        int
	Failed      int
	SystemFails int
	CoreHours   float64
	FailRate    float64
}

// GroupBy selects the attribute jobs are aggregated over.
type GroupBy int

// Grouping attributes.
const (
	ByUser GroupBy = iota + 1
	ByProject
)

// String implements fmt.Stringer.
func (g GroupBy) String() string {
	if g == ByUser {
		return "user"
	}
	return "project"
}

// Aggregate groups jobs by user or project, using the classification for
// system-failure attribution. Results are sorted by descending job count.
// Core-hours accumulate as integer core-seconds so the totals match the
// fused scan engine's sharded sums bit-for-bit.
func (d *Dataset) Aggregate(by GroupBy, cls *Classification) []GroupStats {
	type accum struct {
		jobs, failed, sysfails int
		coreSec                int64
	}
	m := map[string]*accum{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		key := j.User
		if by == ByProject {
			key = j.Project
		}
		g, ok := m[key]
		if !ok {
			g = &accum{}
			m[key] = g
		}
		g.jobs++
		g.coreSec += j.CoreSeconds()
		if j.Outcome() == joblog.OutcomeFailure {
			g.failed++
			if cls != nil && cls.Causes[j.ID] == CauseSystem {
				g.sysfails++
			}
		}
	}
	out := make([]GroupStats, 0, len(m))
	for key, g := range m {
		gs := GroupStats{
			Key:         key,
			Jobs:        g.jobs,
			Failed:      g.failed,
			SystemFails: g.sysfails,
			CoreHours:   float64(g.coreSec) / 3600,
		}
		if g.jobs > 0 {
			gs.FailRate = float64(g.failed) / float64(g.jobs)
		}
		out = append(out, gs)
	}
	sortGroups(out)
	return out
}

// sortGroups orders group aggregates by descending job count, key ascending
// — the canonical Aggregate order.
func sortGroups(out []GroupStats) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Jobs != out[j].Jobs {
			return out[i].Jobs > out[j].Jobs
		}
		return out[i].Key < out[j].Key
	})
}

// sortGroupsByKey orders group aggregates alphabetically by key.
func sortGroupsByKey(out []GroupStats) {
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
}

// ConcentrationResult quantifies how skewed jobs / failures / core-hours
// are across a grouping — the workload-concentration analysis (E2) and the
// failure-correlation analysis (E7).
type ConcentrationResult struct {
	By             GroupBy
	Groups         int
	GiniJobs       float64
	GiniCoreHours  float64
	GiniFailures   float64
	Top10JobShare  float64 // share of jobs from the 10 busiest groups
	Top10CHShare   float64 // share of core-hours
	Top10FailShare float64 // share of failures from the 10 most-failing groups
	// PearsonJobsFailures correlates per-group job counts with failure
	// counts: high values mean failure volume tracks activity.
	PearsonJobsFailures float64
	// SpearmanJobsFailRate correlates activity with failure *rate*.
	SpearmanJobsFailRate float64
	// CramersV measures the association between group identity and job
	// outcome (success/failure).
	CramersV float64
}

// Concentration computes the concentration/correlation profile for the
// grouping.
func (d *Dataset) Concentration(by GroupBy, cls *Classification) (*ConcentrationResult, error) {
	groups := d.Aggregate(by, cls)
	// Categorical per-job columns for Cramér's V.
	keys := make([]string, len(d.Jobs))
	outcomes := make([]string, len(d.Jobs))
	for i := range d.Jobs {
		if by == ByUser {
			keys[i] = d.Jobs[i].User
		} else {
			keys[i] = d.Jobs[i].Project
		}
		outcomes[i] = d.Jobs[i].Outcome().String()
	}
	return concentrationFromGroups(by, groups, keys, outcomes)
}

// concentrationFromGroups computes the concentration/correlation profile
// from pre-aggregated groups plus the per-job key/outcome columns (aligned
// with the dataset's job order) that feed the categorical association.
func concentrationFromGroups(by GroupBy, groups []GroupStats, keys, outcomes []string) (*ConcentrationResult, error) {
	if len(groups) < 2 {
		return nil, fmt.Errorf("core: need ≥2 groups, have %d", len(groups))
	}
	jobs := make([]float64, len(groups))
	fails := make([]float64, len(groups))
	ch := make([]float64, len(groups))
	rates := make([]float64, len(groups))
	for i, g := range groups {
		jobs[i] = float64(g.Jobs)
		fails[i] = float64(g.Failed)
		ch[i] = g.CoreHours
		rates[i] = g.FailRate
	}
	res := &ConcentrationResult{By: by, Groups: len(groups)}
	var err error
	if res.GiniJobs, err = stats.Gini(jobs); err != nil {
		return nil, err
	}
	if res.GiniCoreHours, err = stats.Gini(ch); err != nil {
		return nil, err
	}
	if res.GiniFailures, err = stats.Gini(fails); err != nil {
		return nil, err
	}
	if res.Top10JobShare, err = stats.TopKShare(jobs, 10); err != nil {
		return nil, err
	}
	if res.Top10CHShare, err = stats.TopKShare(ch, 10); err != nil {
		return nil, err
	}
	if res.Top10FailShare, err = stats.TopKShare(fails, 10); err != nil {
		return nil, err
	}
	if res.PearsonJobsFailures, err = stats.Pearson(jobs, fails); err != nil {
		return nil, err
	}
	if res.SpearmanJobsFailRate, err = stats.Spearman(jobs, rates); err != nil {
		return nil, err
	}
	// Categorical association between the grouping and the outcome.
	if res.CramersV, err = stats.CramersV(keys, outcomes); err != nil {
		return nil, err
	}
	return res, nil
}

// TopGroups returns the k groups with the most jobs.
func TopGroups(groups []GroupStats, k int) []GroupStats {
	if k > len(groups) {
		k = len(groups)
	}
	return groups[:k]
}

// TopFailing returns the k groups with the most failed jobs.
func TopFailing(groups []GroupStats, k int) []GroupStats {
	sorted := append([]GroupStats(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Failed != sorted[j].Failed {
			return sorted[i].Failed > sorted[j].Failed
		}
		return sorted[i].Key < sorted[j].Key
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
