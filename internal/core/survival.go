package core

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/joblog"
	"repro/internal/stats"
)

// SurvivalResult is the censored time-to-user-failure analysis of job
// executions: a Kaplan–Meier curve where user failures are observed events
// and completed or system-killed jobs are right-censored (they ran that
// long without a user failure).
//
// The naive per-failure duration histogram (E5/E6) conditions on failing;
// the survival view answers the operator's question directly: "given a
// running job, what is the chance it user-fails within the next hour?"
type SurvivalResult struct {
	Jobs     int
	Events   int // user failures (observed)
	Censored int // successes + system kills
	Curve    []stats.SurvivalPoint
	// Survival probabilities at fixed horizons (seconds).
	Horizons map[int]float64
	// HazardDecreasing reports whether the average hazard over the first
	// ten minutes exceeds the average hazard over the following hour — the
	// infant-mortality signature in the hazard domain.
	HazardDecreasing bool
	// ParametricWeibull is the censored Weibull MLE over the same
	// observations — the parametric counterpart of the KM curve. A fitted
	// shape below 1 confirms the decreasing hazard model-parametrically.
	ParametricWeibull dist.Weibull
}

// survivalHorizons are the fixed evaluation points (seconds).
var survivalHorizons = []int{60, 600, 3600, 6 * 3600, 24 * 3600}

// Survival runs the Kaplan–Meier analysis of time to user failure.
func (d *Dataset) Survival() (*SurvivalResult, error) {
	obs := make([]stats.Observation, 0, len(d.Jobs))
	res := &SurvivalResult{Horizons: map[int]float64{}}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		sec := j.Runtime().Seconds()
		if sec <= 0 {
			continue
		}
		observed := j.Outcome() == joblog.OutcomeFailure &&
			joblog.Family(j.ExitStatus) != joblog.FamilySystem
		obs = append(obs, stats.Observation{Time: sec, Observed: observed})
		res.Jobs++
		if observed {
			res.Events++
		} else {
			res.Censored++
		}
	}
	curve, err := stats.KaplanMeier(obs)
	if err != nil {
		return nil, fmt.Errorf("core: survival: %w", err)
	}
	res.Curve = curve
	for _, h := range survivalHorizons {
		res.Horizons[h] = stats.SurvivalAt(curve, float64(h))
	}
	// Average hazard ≈ −ΔlnS / Δt over an interval.
	s10m := res.Horizons[600]
	s70m := stats.SurvivalAt(curve, 600+3600)
	earlyHazard := hazardRate(1, s10m, 600)
	lateHazard := hazardRate(s10m, s70m, 3600)
	res.HazardDecreasing = earlyHazard > lateHazard

	cobs := make([]dist.CensoredObservation, len(obs))
	for i, o := range obs {
		cobs[i] = dist.CensoredObservation{Time: o.Time, Observed: o.Observed}
	}
	w, err := dist.FitCensoredWeibull(cobs)
	if err != nil {
		return nil, fmt.Errorf("core: survival: %w", err)
	}
	res.ParametricWeibull = w
	return res, nil
}

// hazardRate converts a survival drop over an interval into an average
// hazard rate (per second).
func hazardRate(sFrom, sTo, dt float64) float64 {
	if sFrom <= 0 || sTo <= 0 || dt <= 0 {
		return 0
	}
	return (logOf(sFrom) - logOf(sTo)) / dt
}

func logOf(x float64) float64 {
	// ln with a guard; survival probabilities are in (0, 1].
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}
