package core

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/joblog"
)

// FamilyFit is the distribution-fitting result for one exit family — one
// row of the paper's best-fit table (E6).
type FamilyFit struct {
	Family  joblog.ExitFamily
	N       int              // failed jobs in the family
	Results []dist.FitResult // ranked best-first by KS
}

// Best returns the winning fit.
func (f *FamilyFit) Best() dist.FitResult {
	if len(f.Results) == 0 {
		return dist.FitResult{}
	}
	return f.Results[0]
}

// FitOptions tunes the per-family fitting.
type FitOptions struct {
	// MinSamples skips families with fewer failed jobs (default 50).
	MinSamples int
	// Fitters overrides the candidate set (default dist.DefaultFitters).
	Fitters []dist.Fitter
	// MaxSamples caps the per-family sample (0 = unlimited). Fitting is
	// O(n) per candidate; the cap keeps interactive runs fast without
	// changing the winner on large corpora.
	MaxSamples int
	// Parallelism bounds the workers fitting the candidate families of one
	// exit family (≤ 0 = GOMAXPROCS). The ranking is identical at any
	// setting.
	Parallelism int
}

// FitExecutionLengths fits the candidate distribution families to the
// execution lengths (seconds) of failed jobs, one fit per exit family,
// reproducing the paper's "best-fit depends on the exit code" analysis.
// Families are returned in joblog.FailureFamilies order; families with too
// few samples are skipped.
func (d *Dataset) FitExecutionLengths(opt FitOptions) ([]FamilyFit, error) {
	if opt.MinSamples <= 0 {
		opt.MinSamples = 50
	}
	samples := map[joblog.ExitFamily][]float64{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if j.Outcome() != joblog.OutcomeFailure {
			continue
		}
		sec := j.Runtime().Seconds()
		if sec <= 0 {
			continue
		}
		fam := joblog.Family(j.ExitStatus)
		samples[fam] = append(samples[fam], sec)
	}
	var out []FamilyFit
	for _, fam := range joblog.FailureFamilies() {
		data := samples[fam]
		if len(data) < opt.MinSamples {
			continue
		}
		if opt.MaxSamples > 0 && len(data) > opt.MaxSamples {
			data = thin(data, opt.MaxSamples)
		}
		results := dist.FitAllParallel(data, opt.Fitters, opt.Parallelism)
		if len(results) == 0 {
			return nil, fmt.Errorf("core: no fit results for family %s", fam)
		}
		out = append(out, FamilyFit{Family: fam, N: len(data), Results: results})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no exit family had ≥%d failed jobs", opt.MinSamples)
	}
	return out, nil
}

// thin deterministically subsamples data down to k points (every n/k-th
// point of the original order), preserving the distribution.
func thin(data []float64, k int) []float64 {
	n := len(data)
	out := make([]float64, 0, k)
	step := float64(n) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, data[int(float64(i)*step)])
	}
	return out
}

// ExecutionLengthCDFs returns the execution-length samples (seconds) of
// succeeded and failed jobs — the data behind the paper's CDF comparison
// figure (E5).
func (d *Dataset) ExecutionLengthCDFs() (succeeded, failed []float64) {
	for i := range d.Jobs {
		j := &d.Jobs[i]
		sec := j.Runtime().Seconds()
		if sec <= 0 {
			continue
		}
		if j.Outcome() == joblog.OutcomeSuccess {
			succeeded = append(succeeded, sec)
		} else {
			failed = append(failed, sec)
		}
	}
	sort.Float64s(succeeded)
	sort.Float64s(failed)
	return succeeded, failed
}
