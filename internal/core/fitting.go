package core

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/joblog"
	"repro/internal/stats"
)

// FamilyFit is the distribution-fitting result for one exit family — one
// row of the paper's best-fit table (E6).
type FamilyFit struct {
	Family  joblog.ExitFamily
	N       int              // failed jobs in the family
	Results []dist.FitResult // ranked best-first by KS
	// Sample is the sorted execution-length sample (seconds) the candidates
	// were fitted against, with its precomputed sufficient statistics.
	Sample *dist.Sample
	// Summary are the descriptive statistics of the same sample, computed
	// from the sorted view without an extra copy.
	Summary stats.Summary
}

// Best returns the winning fit.
func (f *FamilyFit) Best() dist.FitResult {
	if len(f.Results) == 0 {
		return dist.FitResult{}
	}
	return f.Results[0]
}

// FitOptions tunes the per-family fitting.
type FitOptions struct {
	// MinSamples skips families with fewer failed jobs (default 50).
	MinSamples int
	// Fitters overrides the candidate set (default dist.DefaultFitters).
	Fitters []dist.Fitter
	// MaxSamples caps the per-family sample (0 = unlimited). Fitting is
	// O(n) per candidate; the cap keeps interactive runs fast without
	// changing the winner on large corpora.
	MaxSamples int
	// Parallelism bounds the workers fitting the candidate families of one
	// exit family (≤ 0 = GOMAXPROCS). The ranking is identical at any
	// setting.
	Parallelism int
}

// FitExecutionLengths fits the candidate distribution families to the
// execution lengths (seconds) of failed jobs, one fit per exit family,
// reproducing the paper's "best-fit depends on the exit code" analysis.
// Families are returned in joblog.FailureFamilies order; families with too
// few samples are skipped.
func (d *Dataset) FitExecutionLengths(opt FitOptions) ([]FamilyFit, error) {
	if opt.MinSamples <= 0 {
		opt.MinSamples = 50
	}
	samples := map[joblog.ExitFamily][]float64{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if j.Outcome() != joblog.OutcomeFailure {
			continue
		}
		sec := j.Runtime().Seconds()
		if sec <= 0 {
			continue
		}
		fam := joblog.Family(j.ExitStatus)
		samples[fam] = append(samples[fam], sec)
	}
	var out []FamilyFit
	for _, fam := range joblog.FailureFamilies() {
		data := samples[fam]
		if len(data) < opt.MinSamples {
			continue
		}
		if opt.MaxSamples > 0 && len(data) > opt.MaxSamples {
			data = thin(data, opt.MaxSamples)
		}
		// One Sample per family: sorted once, sufficient statistics shared
		// by every candidate fit and goodness-of-fit statistic.
		sample := dist.NewSample(data)
		results := dist.FitAllSampleParallel(sample, opt.Fitters, opt.Parallelism)
		if len(results) == 0 {
			return nil, fmt.Errorf("core: no fit results for family %s", fam)
		}
		summary, err := stats.SummarizeSorted(sample.Sorted())
		if err != nil {
			return nil, fmt.Errorf("core: summarize family %s: %w", fam, err)
		}
		out = append(out, FamilyFit{Family: fam, N: sample.N(), Results: results, Sample: sample, Summary: summary})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no exit family had ≥%d failed jobs", opt.MinSamples)
	}
	return out, nil
}

// thin deterministically subsamples data down to k points (every n/k-th
// point of the original order), preserving the distribution.
func thin(data []float64, k int) []float64 {
	n := len(data)
	out := make([]float64, 0, k)
	step := float64(n) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, data[int(float64(i)*step)])
	}
	return out
}

// ExecutionLengthCDFs returns the execution-length samples (seconds) of
// succeeded and failed jobs, each sorted ascending — the data behind the
// paper's CDF comparison figure (E5). The sorted order lets callers wrap
// the slices in dist.NewSampleSorted / stats.NewECDFSorted without another
// copy or sort.
func (d *Dataset) ExecutionLengthCDFs() (succeeded, failed []float64) {
	for i := range d.Jobs {
		j := &d.Jobs[i]
		sec := j.Runtime().Seconds()
		if sec <= 0 {
			continue
		}
		if j.Outcome() == joblog.OutcomeSuccess {
			succeeded = append(succeeded, sec)
		} else {
			failed = append(failed, sec)
		}
	}
	sort.Float64s(succeeded)
	sort.Float64s(failed)
	return succeeded, failed
}
