package core

import (
	"fmt"
	"sort"

	"repro/internal/joblog"
)

// WasteRow is the compute lost to one exit family.
type WasteRow struct {
	Family    joblog.ExitFamily
	Jobs      int
	CoreHours float64 // core-hours consumed by jobs that ended in this family
	Share     float64 // fraction of all *wasted* core-hours
}

// WasteResult quantifies the compute cost of failures: how many core-hours
// were consumed by jobs that produced no result, split by exit family and
// by root cause.
type WasteResult struct {
	TotalCoreHours  float64 // all jobs
	WastedCoreHours float64 // failed jobs only
	WastedShare     float64 // wasted / total
	UserCoreHours   float64 // wasted by user-caused failures
	SystemCoreHours float64 // wasted by system-caused failures
	ByFamily        []WasteRow
}

// Waste computes the failure-cost breakdown using a classification for the
// user/system attribution.
func (d *Dataset) Waste(cls *Classification) (*WasteResult, error) {
	if cls == nil {
		return nil, fmt.Errorf("core: waste needs a classification")
	}
	res := &WasteResult{}
	byFam := map[joblog.ExitFamily]*WasteRow{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		ch := j.CoreHours()
		res.TotalCoreHours += ch
		if j.Outcome() != joblog.OutcomeFailure {
			continue
		}
		res.WastedCoreHours += ch
		if cls.Causes[j.ID] == CauseSystem {
			res.SystemCoreHours += ch
		} else {
			res.UserCoreHours += ch
		}
		fam := joblog.Family(j.ExitStatus)
		row, ok := byFam[fam]
		if !ok {
			row = &WasteRow{Family: fam}
			byFam[fam] = row
		}
		row.Jobs++
		row.CoreHours += ch
	}
	if res.TotalCoreHours > 0 {
		res.WastedShare = res.WastedCoreHours / res.TotalCoreHours
	}
	for _, row := range byFam {
		if res.WastedCoreHours > 0 {
			row.Share = row.CoreHours / res.WastedCoreHours
		}
		res.ByFamily = append(res.ByFamily, *row)
	}
	sort.Slice(res.ByFamily, func(i, j int) bool {
		if res.ByFamily[i].CoreHours != res.ByFamily[j].CoreHours {
			return res.ByFamily[i].CoreHours > res.ByFamily[j].CoreHours
		}
		return res.ByFamily[i].Family < res.ByFamily[j].Family
	})
	return res, nil
}
