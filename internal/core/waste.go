package core

import (
	"fmt"
	"sort"

	"repro/internal/joblog"
)

// WasteRow is the compute lost to one exit family.
type WasteRow struct {
	Family    joblog.ExitFamily
	Jobs      int
	CoreHours float64 // core-hours consumed by jobs that ended in this family
	Share     float64 // fraction of all *wasted* core-hours
}

// WasteResult quantifies the compute cost of failures: how many core-hours
// were consumed by jobs that produced no result, split by exit family and
// by root cause.
type WasteResult struct {
	TotalCoreHours  float64 // all jobs
	WastedCoreHours float64 // failed jobs only
	WastedShare     float64 // wasted / total
	UserCoreHours   float64 // wasted by user-caused failures
	SystemCoreHours float64 // wasted by system-caused failures
	ByFamily        []WasteRow
}

// Waste computes the failure-cost breakdown using a classification for the
// user/system attribution.
func (d *Dataset) Waste(cls *Classification) (*WasteResult, error) {
	if cls == nil {
		return nil, fmt.Errorf("core: waste needs a classification")
	}
	// All sums accumulate as integer core-seconds (order-insensitive) and
	// convert to core-hours once, matching the fused scan engine's sharded
	// sums bit-for-bit.
	type famAccum struct {
		jobs    int
		coreSec int64
	}
	res := &WasteResult{}
	byFam := map[joblog.ExitFamily]*famAccum{}
	var totalCS, wastedCS, userCS, sysCS int64
	for i := range d.Jobs {
		j := &d.Jobs[i]
		cs := j.CoreSeconds()
		totalCS += cs
		if j.Outcome() != joblog.OutcomeFailure {
			continue
		}
		wastedCS += cs
		if cls.Causes[j.ID] == CauseSystem {
			sysCS += cs
		} else {
			userCS += cs
		}
		fam := joblog.Family(j.ExitStatus)
		row, ok := byFam[fam]
		if !ok {
			row = &famAccum{}
			byFam[fam] = row
		}
		row.jobs++
		row.coreSec += cs
	}
	res.TotalCoreHours = float64(totalCS) / 3600
	res.WastedCoreHours = float64(wastedCS) / 3600
	res.UserCoreHours = float64(userCS) / 3600
	res.SystemCoreHours = float64(sysCS) / 3600
	if res.TotalCoreHours > 0 {
		res.WastedShare = res.WastedCoreHours / res.TotalCoreHours
	}
	for fam, a := range byFam {
		row := WasteRow{Family: fam, Jobs: a.jobs, CoreHours: float64(a.coreSec) / 3600}
		if res.WastedCoreHours > 0 {
			row.Share = row.CoreHours / res.WastedCoreHours
		}
		res.ByFamily = append(res.ByFamily, row)
	}
	sort.Slice(res.ByFamily, func(i, j int) bool {
		if res.ByFamily[i].CoreHours != res.ByFamily[j].CoreHours {
			return res.ByFamily[i].CoreHours > res.ByFamily[j].CoreHours
		}
		return res.ByFamily[i].Family < res.ByFamily[j].Family
	})
	return res, nil
}
