package core

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/raslog"
)

// burst builds n FATAL events with the same message at node-level jitter
// inside one midplane, spaced gap apart starting at t0.
func burst(t *testing.T, start time.Time, n int, gap time.Duration, rack int, msg string, jobID int64) []raslog.Event {
	t.Helper()
	events := make([]raslog.Event, 0, n)
	for i := 0; i < n; i++ {
		loc, err := machine.Node(rack, 0, i%16, i%32)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, raslog.Event{
			RecID: int64(i + 1), MsgID: msg, Comp: raslog.CompDDR, Cat: raslog.CatMemory,
			Sev: raslog.Fatal, Time: start.Add(time.Duration(i) * gap), Loc: loc,
			JobID: jobID, Count: 1, Message: "x",
		})
	}
	return events
}

var filterT0 = time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)

func TestFilterCoalescesBurst(t *testing.T) {
	events := burst(t, filterT0, 50, 10*time.Second, 3, "00040003", 7)
	incidents, err := FilterFatal(events, DefaultFilterRule())
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 1 {
		t.Fatalf("burst coalesced to %d incidents, want 1", len(incidents))
	}
	in := incidents[0]
	if in.Events != 50 {
		t.Errorf("incident events = %d", in.Events)
	}
	if len(in.JobIDs) != 1 || in.JobIDs[0] != 7 {
		t.Errorf("job ids = %v", in.JobIDs)
	}
	if in.Duration() != 49*10*time.Second {
		t.Errorf("duration = %v", in.Duration())
	}
}

func TestFilterSeparatesDistantBursts(t *testing.T) {
	a := burst(t, filterT0, 10, time.Second, 3, "00040003", 0)
	b := burst(t, filterT0.Add(6*time.Hour), 10, time.Second, 3, "00040003", 0)
	events := append(a, b...)
	incidents, err := FilterFatal(events, DefaultFilterRule())
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 2 {
		t.Fatalf("distant bursts gave %d incidents, want 2", len(incidents))
	}
}

func TestFilterSeparatesByLocation(t *testing.T) {
	a := burst(t, filterT0, 10, time.Second, 3, "00040003", 0)
	b := burst(t, filterT0, 10, time.Second, 40, "00040003", 0)
	events := mergeByTime(a, b)
	incidents, err := FilterFatal(events, DefaultFilterRule())
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 2 {
		t.Fatalf("spatially distinct bursts gave %d incidents, want 2", len(incidents))
	}
	// With the spatial condition disabled they merge.
	rule := DefaultFilterRule()
	rule.Spatial = machine.LevelSystem
	incidents, err = FilterFatal(events, rule)
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 1 {
		t.Fatalf("spatial-off filtering gave %d incidents, want 1", len(incidents))
	}
}

func TestFilterSeparatesByMessage(t *testing.T) {
	a := burst(t, filterT0, 10, time.Second, 3, "00040003", 0)
	b := burst(t, filterT0, 10, time.Second, 3, "00080004", 0)
	// Same category? 00080004 is Network/MU in the catalog but burst()
	// hard-codes CatMemory, so same category: message similarity decides.
	events := mergeByTime(a, b)
	rule := DefaultFilterRule() // SameMessage: true
	incidents, err := FilterFatal(events, rule)
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 2 {
		t.Fatalf("distinct messages gave %d incidents, want 2", len(incidents))
	}
	rule.SameMessage = false // category similarity only → one incident
	incidents, err = FilterFatal(events, rule)
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 1 {
		t.Fatalf("category filtering gave %d incidents, want 1", len(incidents))
	}
}

func TestFilterIgnoresNonFatal(t *testing.T) {
	events := burst(t, filterT0, 5, time.Second, 3, "00040003", 0)
	events[2].Sev = raslog.Warn
	events[3].Sev = raslog.Info
	incidents, err := FilterFatal(events, DefaultFilterRule())
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 1 || incidents[0].Events != 3 {
		t.Fatalf("non-fatal events not ignored: %+v", incidents)
	}
}

func TestFilterWindowMonotonicity(t *testing.T) {
	d, _ := dataset(t)
	windows := []time.Duration{
		time.Minute, 5 * time.Minute, 20 * time.Minute, time.Hour, 6 * time.Hour,
	}
	sweep, err := FilterSweep(d.Events, DefaultFilterRule(), windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(windows) {
		t.Fatalf("sweep len %d", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Incidents > sweep[i-1].Incidents {
			t.Errorf("incident count increased with window: %v", sweep)
		}
	}
	for _, p := range sweep {
		if p.Reduction < 0 || p.Reduction > 1 {
			t.Errorf("reduction %v out of range", p.Reduction)
		}
	}
	// The knee exists on the corpus (cascades are ≤ CascadeWindow long).
	knee, ok := KneeWindow(sweep, 0.05)
	if !ok {
		t.Log("no knee found; sweep:", sweep)
	}
	if knee <= 0 {
		t.Errorf("knee = %v", knee)
	}
}

func TestFilterRuleValidate(t *testing.T) {
	bad := []FilterRule{
		{Window: 0, Spatial: machine.LevelMidplane},
		{Window: time.Minute, Spatial: machine.Level(99)},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %+v accepted", r)
		}
		if _, err := FilterFatal(nil, r); err == nil {
			t.Errorf("FilterFatal accepted rule %+v", r)
		}
	}
}

func TestMTTIOnCorpus(t *testing.T) {
	d, c := dataset(t)
	res, err := d.MTTI(DefaultFilterRule())
	if err != nil {
		t.Fatal(err)
	}
	if res.RawFatal == 0 {
		t.Fatal("no FATAL events")
	}
	// Filtered interruptions should approximate the injected killing
	// incidents (the generator's ground truth) within 15%.
	truth := c.Truth.KillingIncidents
	if res.Interruptions < truth*85/100 || res.Interruptions > truth*115/100 {
		t.Errorf("interruptions %d, truth %d", res.Interruptions, truth)
	}
	wantMTTI := float64(c.Config.Days) / float64(truth)
	if res.MTTIDays < wantMTTI*0.8 || res.MTTIDays > wantMTTI*1.2 {
		t.Errorf("MTTI %v days, want ≈%v", res.MTTIDays, wantMTTI)
	}
	// Raw MTBF is much smaller than MTTI (bursts inflate raw counts).
	if res.MTBFRawDays*5 > res.MTTIDays {
		t.Errorf("raw MTBF %v not ≪ MTTI %v", res.MTBFRawDays, res.MTTIDays)
	}
	// Interrupted jobs exist and all are system-killed.
	ids := res.InterruptedJobs()
	if len(ids) == 0 {
		t.Fatal("no interrupted jobs")
	}
	for _, id := range ids {
		j, ok := d.Job(id)
		if !ok {
			t.Fatalf("unknown job %d", id)
		}
		if j.ExitStatus == 0 {
			t.Errorf("interrupted job %d has success exit", id)
		}
	}
	if lost := d.LostCoreHours(res); lost <= 0 {
		t.Errorf("lost core-hours = %v", lost)
	}
}

func TestLocalityOnCorpus(t *testing.T) {
	d, _ := dataset(t)
	for _, level := range []machine.Level{machine.LevelRack, machine.LevelMidplane} {
		res, err := d.Locality(level)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if !res.Localized {
			t.Errorf("%v: locality not detected (top5 %v vs uniform %v)",
				level, res.Top5Share, res.UniformTopShare)
		}
		if res.Gini <= 0.3 {
			t.Errorf("%v: gini %v too low for hot-midplane injection", level, res.Gini)
		}
		for i := 1; i < len(res.Counts); i++ {
			if res.Counts[i].Count > res.Counts[i-1].Count {
				t.Fatalf("%v: counts not sorted", level)
			}
		}
	}
	if _, err := d.Locality(machine.LevelNode); err == nil {
		t.Error("node-level locality should be rejected")
	}
}

func TestProfileSums(t *testing.T) {
	d, c := dataset(t)
	p := d.Profile()
	if p.Total != len(c.Events) {
		t.Errorf("profile total %d", p.Total)
	}
	sevSum := 0
	for _, n := range p.BySeverity {
		sevSum += n
	}
	if sevSum != p.Total {
		t.Error("severity counts do not sum")
	}
	fatalSum := 0
	for _, n := range p.FatalByCategory {
		fatalSum += n
	}
	if fatalSum != p.BySeverity[raslog.Fatal] {
		t.Error("fatal category counts do not sum")
	}
}

// mergeByTime interleaves two already-sorted event slices.
func mergeByTime(a, b []raslog.Event) []raslog.Event {
	out := make([]raslog.Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Time.Before(b[j].Time) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
