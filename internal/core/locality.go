package core

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/stats"
)

// LocationCount is the FATAL event (or incident) count at one location.
type LocationCount struct {
	Loc   machine.Location
	Count int
}

// LocalityResult quantifies the spatial concentration of FATAL events —
// the paper's "strong locality" finding (E10).
type LocalityResult struct {
	Level     machine.Level // aggregation granularity (rack or midplane)
	Counts    []LocationCount
	Gini      float64 // concentration across all locations at Level
	Top5Share float64 // share of events on the 5 worst locations
	// UniformTopShare is the expected top-5 share if events were spread
	// uniformly — the baseline the measured share is compared against.
	UniformTopShare float64
	// Localized reports Top5Share ≫ UniformTopShare (ratio ≥ 2).
	Localized bool
}

// Locality aggregates FATAL events at the given hardware level and measures
// their spatial concentration. Events above the aggregation level (e.g.
// whole-system infra messages) are skipped.
func (d *Dataset) Locality(level machine.Level) (*LocalityResult, error) {
	if level != machine.LevelRack && level != machine.LevelMidplane {
		return nil, fmt.Errorf("core: locality level must be rack or midplane, got %v", level)
	}
	slots := machine.NumRacks
	if level == machine.LevelMidplane {
		slots = machine.TotalMidplanes
	}
	counts := make([]int, slots)
	total := 0
	for _, i := range d.fatalIdx {
		e := &d.Events[i]
		if e.Loc.Level() < level {
			continue
		}
		id := e.Loc.RackIndex()
		if level == machine.LevelMidplane {
			var err error
			if id, err = e.Loc.MidplaneID(); err != nil {
				continue
			}
		}
		counts[id]++
		total++
	}
	list, err := locationCounts(level, counts)
	if err != nil {
		return nil, err
	}
	return localityFromCounts(level, list, total)
}

// locationCounts converts a dense per-location count array (indexed by
// midplane ID or rack index, depending on level) into the sparse
// LocationCount list, omitting zero-count locations.
func locationCounts(level machine.Level, counts []int) ([]LocationCount, error) {
	list := make([]LocationCount, 0, len(counts))
	for id, n := range counts {
		if n == 0 {
			continue
		}
		var loc machine.Location
		var err error
		if level == machine.LevelMidplane {
			loc, err = machine.MidplaneByID(id)
		} else {
			loc, err = machine.Rack(id)
		}
		if err != nil {
			return nil, err
		}
		list = append(list, LocationCount{Loc: loc, Count: n})
	}
	return list, nil
}

// localityFromCounts computes the concentration profile from per-location
// FATAL counts (any order; zero-count locations omitted) at the level.
func localityFromCounts(level machine.Level, counts []LocationCount, total int) (*LocalityResult, error) {
	if total == 0 {
		return nil, fmt.Errorf("core: no FATAL events at or below %v", level)
	}
	slots := machine.NumRacks
	if level == machine.LevelMidplane {
		slots = machine.TotalMidplanes
	}
	out := &LocalityResult{Level: level, Counts: counts}
	sort.Slice(out.Counts, func(i, j int) bool {
		if out.Counts[i].Count != out.Counts[j].Count {
			return out.Counts[i].Count > out.Counts[j].Count
		}
		return out.Counts[i].Loc.String() < out.Counts[j].Loc.String()
	})
	// Include zero-count locations: concentration is relative to all
	// hardware, not just hardware that ever failed.
	vals := make([]float64, 0, slots)
	for _, c := range out.Counts {
		vals = append(vals, float64(c.Count))
	}
	for len(vals) < slots {
		vals = append(vals, 0)
	}
	var err error
	if out.Gini, err = stats.Gini(vals); err != nil {
		return nil, err
	}
	if out.Top5Share, err = stats.TopKShare(vals, 5); err != nil {
		return nil, err
	}
	out.UniformTopShare = 5.0 / float64(slots)
	out.Localized = out.Top5Share >= 2*out.UniformTopShare
	return out, nil
}

// CategoryProfile is the RAS composition table (E9): counts by severity,
// category and component.
type CategoryProfile struct {
	BySeverity  map[raslog.Severity]int
	ByCategory  map[raslog.Category]int
	ByComponent map[raslog.Component]int
	// FatalByCategory restricts the category counts to FATAL events.
	FatalByCategory map[raslog.Category]int
	Total           int
}

// Profile computes the RAS composition table.
func (d *Dataset) Profile() *CategoryProfile {
	p := &CategoryProfile{
		BySeverity:      map[raslog.Severity]int{},
		ByCategory:      map[raslog.Category]int{},
		ByComponent:     map[raslog.Component]int{},
		FatalByCategory: map[raslog.Category]int{},
	}
	for i := range d.Events {
		e := &d.Events[i]
		p.Total++
		p.BySeverity[e.Sev]++
		p.ByCategory[e.Cat]++
		p.ByComponent[e.Comp]++
		if e.Sev == raslog.Fatal {
			p.FatalByCategory[e.Cat]++
		}
	}
	return p
}
