package core

import (
	"fmt"
	"sort"

	"repro/internal/joblog"
	"repro/internal/stats"
)

// IOCorrelation compares the I/O behavior of succeeded and failed jobs
// (experiment E13) over the jobs that have a Darshan-style record.
type IOCorrelation struct {
	SampledJobs   int
	SuccessBytes  stats.Summary // total bytes moved, succeeded jobs
	FailedBytes   stats.Summary // total bytes moved, failed jobs
	SuccessIOSecs stats.Summary
	FailedIOSecs  stats.Summary
	// MedianRatio is median(success bytes) / median(failed bytes): > 1
	// means failed jobs move less data (they die before doing their I/O).
	MedianRatio float64
	// KSBytes is the two-sample KS distance between the two byte
	// distributions; large values mean clearly different I/O behavior.
	KSBytes float64
	// SpearmanBytesOutcome is the rank correlation between bytes moved and
	// success (0/1).
	SpearmanBytesOutcome float64
}

// IOBehavior computes E13's I/O-vs-outcome comparison.
func (d *Dataset) IOBehavior() (*IOCorrelation, error) {
	var okBytes, failBytes, okSecs, failSecs []float64
	var bytesAll, successAll []float64
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if d.ioOf[i] < 0 {
			continue
		}
		rec := d.IO[d.ioOf[i]]
		b := float64(rec.TotalBytes())
		s := rec.IOTime.Seconds()
		bytesAll = append(bytesAll, b)
		if j.Outcome() == joblog.OutcomeSuccess {
			okBytes = append(okBytes, b)
			okSecs = append(okSecs, s)
			successAll = append(successAll, 1)
		} else {
			failBytes = append(failBytes, b)
			failSecs = append(failSecs, s)
			successAll = append(successAll, 0)
		}
	}
	if len(okBytes) == 0 || len(failBytes) == 0 {
		return nil, fmt.Errorf("core: need I/O records for both outcomes (ok=%d fail=%d)", len(okBytes), len(failBytes))
	}
	res := &IOCorrelation{SampledJobs: len(bytesAll)}
	var err error
	if res.SuccessBytes, err = stats.Summarize(okBytes); err != nil {
		return nil, err
	}
	if res.FailedBytes, err = stats.Summarize(failBytes); err != nil {
		return nil, err
	}
	if res.SuccessIOSecs, err = stats.Summarize(okSecs); err != nil {
		return nil, err
	}
	if res.FailedIOSecs, err = stats.Summarize(failSecs); err != nil {
		return nil, err
	}
	if res.FailedBytes.Median > 0 {
		res.MedianRatio = res.SuccessBytes.Median / res.FailedBytes.Median
	}
	if res.KSBytes, err = stats.KSTwoSample(okBytes, failBytes); err != nil {
		return nil, err
	}
	if res.SpearmanBytesOutcome, err = stats.Spearman(bytesAll, successAll); err != nil {
		return nil, err
	}
	return res, nil
}

// InterruptCorrelation quantifies how system interruptions track user
// activity and core-hours (E15): bigger consumers absorb more of the
// machine, so they are interrupted more.
type InterruptCorrelation struct {
	// PearsonCHInterrupts correlates per-user core-hours with per-user
	// system-interrupt counts.
	PearsonCHInterrupts float64
	// PearsonJobsInterrupts correlates per-user job counts with interrupts.
	PearsonJobsInterrupts float64
	// TopDecileShare is the share of interrupts hitting the top 10% of
	// users by core-hours.
	TopDecileShare float64
	Users          int
	Interrupted    int // users with ≥1 system interrupt
}

// InterruptsByUser computes E15 from a classification. Core-hours
// accumulate as integer core-seconds so the per-user values match the fused
// scan engine's sharded sums bit-for-bit.
func (d *Dataset) InterruptsByUser(cls *Classification) (*InterruptCorrelation, error) {
	type agg struct {
		coreSec    int64
		jobs       int
		interrupts int
	}
	m := map[string]*agg{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		a, ok := m[j.User]
		if !ok {
			a = &agg{}
			m[j.User] = a
		}
		a.jobs++
		a.coreSec += j.CoreSeconds()
		if cls.Causes[j.ID] == CauseSystem {
			a.interrupts++
		}
	}
	if len(m) < 3 {
		return nil, fmt.Errorf("core: need ≥3 users, have %d", len(m))
	}
	users := make([]string, 0, len(m))
	for u := range m {
		users = append(users, u)
	}
	// Deterministic order.
	sort.Strings(users)
	ch := make([]float64, len(users))
	jobs := make([]float64, len(users))
	ints := make([]float64, len(users))
	for i, u := range users {
		a := m[u]
		ch[i] = float64(a.coreSec) / 3600
		jobs[i] = float64(a.jobs)
		ints[i] = float64(a.interrupts)
	}
	return interruptCorrelationFrom(ch, jobs, ints)
}

// interruptCorrelationFrom computes the correlation profile from aligned
// per-user series in deterministic (alphabetical) user order.
func interruptCorrelationFrom(ch, jobs, ints []float64) (*InterruptCorrelation, error) {
	res := &InterruptCorrelation{Users: len(ch)}
	for _, n := range ints {
		if n > 0 {
			res.Interrupted++
		}
	}
	var err error
	if res.PearsonCHInterrupts, err = stats.Pearson(ch, ints); err != nil {
		return nil, err
	}
	if res.PearsonJobsInterrupts, err = stats.Pearson(jobs, ints); err != nil {
		return nil, err
	}
	// Top decile by core-hours.
	idx := make([]int, len(ch))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ch[idx[a]] > ch[idx[b]] })
	k := len(idx) / 10
	if k < 1 {
		k = 1
	}
	var top, total float64
	for i, id := range idx {
		total += ints[id]
		if i < k {
			top += ints[id]
		}
	}
	if total > 0 {
		res.TopDecileShare = top / total
	}
	return res, nil
}
