package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/machine"
	"repro/internal/stats"
)

// LeadTimeOptions tunes the WARN→FATAL precursor analysis.
type LeadTimeOptions struct {
	// Lookback is how far before a FATAL incident precursor WARN bursts
	// are searched for (and how far ahead a WARN burst is credited as a
	// true alarm).
	Lookback time.Duration
	// Level is the spatial matching granularity (default midplane).
	Level machine.Level
}

// DefaultLeadTimeOptions matches a practical operator setting: precursors
// within 12 hours on the same midplane.
func DefaultLeadTimeOptions() LeadTimeOptions {
	return LeadTimeOptions{Lookback: 12 * time.Hour, Level: machine.LevelMidplane}
}

// LeadTimeResult quantifies how predictable FATAL incidents are from WARN
// bursts on the same hardware — the correlation-between-events analysis,
// framed as a precursor detector.
type LeadTimeResult struct {
	Incidents     int // localizable FATAL incidents after filtering
	WithPrecursor int // incidents preceded by ≥1 WARN burst in the window
	Coverage      float64
	// LeadHours are the lead times (hours) from the nearest preceding WARN
	// burst to each covered incident.
	LeadHours   []float64
	MedianLeadH float64

	WarnBursts int // WARN bursts at localizable locations
	TrueAlarms int // bursts followed by a FATAL incident within Lookback
	Precision  float64
}

// LeadTime coalesces WARN and FATAL streams into bursts/incidents with the
// filtering rule and measures precursor coverage, lead time and alarm
// precision at the chosen spatial level.
func (d *Dataset) LeadTime(rule FilterRule, opt LeadTimeOptions) (*LeadTimeResult, error) {
	fatals, err := d.FilterFatal(rule)
	if err != nil {
		return nil, err
	}
	warns, err := d.FilterWarn(rule)
	if err != nil {
		return nil, err
	}
	rs, err := LeadTimeSweep(fatals, warns, []LeadTimeOptions{opt})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// LeadTimeSweep evaluates the precursor analysis over pre-filtered FATAL
// incidents and WARN bursts for several lookback windows at once. The
// nearest-preceding-burst search and the per-burst next-incident gap are
// lookback-independent, so they are computed once and each result is just a
// different thresholding — results are identical to calling LeadTime per
// option but the expensive filtering and indexing happen once. All options
// must share a spatial level.
func LeadTimeSweep(fatals, warns []Incident, opts []LeadTimeOptions) ([]*LeadTimeResult, error) {
	if len(opts) == 0 {
		return nil, fmt.Errorf("core: lead time sweep needs ≥1 option")
	}
	norm := make([]LeadTimeOptions, len(opts))
	for i, opt := range opts {
		if opt.Lookback <= 0 || opt.Level < machine.LevelRack || opt.Level > machine.LevelNode {
			opt = DefaultLeadTimeOptions()
		}
		norm[i] = opt
		if opt.Level != norm[0].Level {
			return nil, fmt.Errorf("core: lead time sweep options mix levels %v and %v", norm[0].Level, opt.Level)
		}
	}
	level := norm[0].Level
	locKey := func(loc machine.Location) (machine.Location, bool) {
		if loc.Level() < level {
			return machine.Location{}, false
		}
		anc, err := loc.Ancestor(level)
		if err != nil {
			return machine.Location{}, false
		}
		return anc, true
	}
	// Index WARN bursts by location, sorted by time.
	warnsAt := map[machine.Location][]Incident{}
	localWarns := 0
	for _, w := range warns {
		key, ok := locKey(w.Loc)
		if !ok {
			continue
		}
		warnsAt[key] = append(warnsAt[key], w)
		localWarns++
	}
	rs := make([]*LeadTimeResult, len(norm))
	for i := range rs {
		rs[i] = &LeadTimeResult{WarnBursts: localWarns}
	}

	// Coverage: nearest WARN burst starting before the incident does. The
	// burst index is lookback-independent; each option only thresholds the
	// lead differently.
	fatalsAt := map[machine.Location][]Incident{}
	for _, f := range fatals {
		key, ok := locKey(f.Loc)
		if !ok {
			continue
		}
		fatalsAt[key] = append(fatalsAt[key], f)
		bursts := warnsAt[key]
		// Bursts are time-sorted (events were); find the latest with
		// First < f.First.
		idx := sort.Search(len(bursts), func(i int) bool {
			return !bursts[i].First.Before(f.First)
		})
		var lead time.Duration
		if idx > 0 {
			lead = f.First.Sub(bursts[idx-1].First)
		}
		for oi, opt := range norm {
			rs[oi].Incidents++
			if idx > 0 && lead > 0 && lead <= opt.Lookback {
				rs[oi].WithPrecursor++
				rs[oi].LeadHours = append(rs[oi].LeadHours, lead.Hours())
			}
		}
	}
	for _, res := range rs {
		if res.Incidents > 0 {
			res.Coverage = float64(res.WithPrecursor) / float64(res.Incidents)
		}
		if len(res.LeadHours) > 0 {
			med, err := stats.Quantile(res.LeadHours, 0.5)
			if err != nil {
				return nil, fmt.Errorf("core: lead time median: %w", err)
			}
			res.MedianLeadH = med
		}
	}

	// Precision: does a WARN burst actually precede a FATAL here? The gap to
	// the next incident is lookback-independent too.
	for key, bursts := range warnsAt {
		incidents := fatalsAt[key]
		for _, b := range bursts {
			idx := sort.Search(len(incidents), func(i int) bool {
				return incidents[i].First.After(b.First)
			})
			if idx >= len(incidents) {
				continue
			}
			gap := incidents[idx].First.Sub(b.First)
			for oi, opt := range norm {
				if gap <= opt.Lookback {
					rs[oi].TrueAlarms++
				}
			}
		}
	}
	for _, res := range rs {
		if res.WarnBursts > 0 {
			res.Precision = float64(res.TrueAlarms) / float64(res.WarnBursts)
		}
	}
	return rs, nil
}
