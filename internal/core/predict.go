package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/machine"
	"repro/internal/stats"
)

// LeadTimeOptions tunes the WARN→FATAL precursor analysis.
type LeadTimeOptions struct {
	// Lookback is how far before a FATAL incident precursor WARN bursts
	// are searched for (and how far ahead a WARN burst is credited as a
	// true alarm).
	Lookback time.Duration
	// Level is the spatial matching granularity (default midplane).
	Level machine.Level
}

// DefaultLeadTimeOptions matches a practical operator setting: precursors
// within 12 hours on the same midplane.
func DefaultLeadTimeOptions() LeadTimeOptions {
	return LeadTimeOptions{Lookback: 12 * time.Hour, Level: machine.LevelMidplane}
}

// LeadTimeResult quantifies how predictable FATAL incidents are from WARN
// bursts on the same hardware — the correlation-between-events analysis,
// framed as a precursor detector.
type LeadTimeResult struct {
	Incidents     int // localizable FATAL incidents after filtering
	WithPrecursor int // incidents preceded by ≥1 WARN burst in the window
	Coverage      float64
	// LeadHours are the lead times (hours) from the nearest preceding WARN
	// burst to each covered incident.
	LeadHours   []float64
	MedianLeadH float64

	WarnBursts int // WARN bursts at localizable locations
	TrueAlarms int // bursts followed by a FATAL incident within Lookback
	Precision  float64
}

// LeadTime coalesces WARN and FATAL streams into bursts/incidents with the
// filtering rule and measures precursor coverage, lead time and alarm
// precision at the chosen spatial level.
func (d *Dataset) LeadTime(rule FilterRule, opt LeadTimeOptions) (*LeadTimeResult, error) {
	if opt.Lookback <= 0 || opt.Level < machine.LevelRack || opt.Level > machine.LevelNode {
		opt = DefaultLeadTimeOptions()
	}
	fatals, err := d.FilterFatal(rule)
	if err != nil {
		return nil, err
	}
	warns, err := d.FilterWarn(rule)
	if err != nil {
		return nil, err
	}
	locKey := func(loc machine.Location) (machine.Location, bool) {
		if loc.Level() < opt.Level {
			return machine.Location{}, false
		}
		anc, err := loc.Ancestor(opt.Level)
		if err != nil {
			return machine.Location{}, false
		}
		return anc, true
	}
	// Index WARN bursts by location, sorted by time.
	warnsAt := map[machine.Location][]Incident{}
	localWarns := 0
	for _, w := range warns {
		key, ok := locKey(w.Loc)
		if !ok {
			continue
		}
		warnsAt[key] = append(warnsAt[key], w)
		localWarns++
	}
	res := &LeadTimeResult{WarnBursts: localWarns}

	// Coverage: nearest WARN burst ending before the incident starts.
	fatalsAt := map[machine.Location][]Incident{}
	for _, f := range fatals {
		key, ok := locKey(f.Loc)
		if !ok {
			continue
		}
		fatalsAt[key] = append(fatalsAt[key], f)
		res.Incidents++
		bursts := warnsAt[key]
		// Bursts are time-sorted (events were); find the latest with
		// First < f.First and First ≥ f.First − Lookback.
		idx := sort.Search(len(bursts), func(i int) bool {
			return !bursts[i].First.Before(f.First)
		})
		if idx == 0 {
			continue
		}
		prev := bursts[idx-1]
		lead := f.First.Sub(prev.First)
		if lead > 0 && lead <= opt.Lookback {
			res.WithPrecursor++
			res.LeadHours = append(res.LeadHours, lead.Hours())
		}
	}
	if res.Incidents > 0 {
		res.Coverage = float64(res.WithPrecursor) / float64(res.Incidents)
	}
	if len(res.LeadHours) > 0 {
		med, err := stats.Quantile(res.LeadHours, 0.5)
		if err != nil {
			return nil, fmt.Errorf("core: lead time median: %w", err)
		}
		res.MedianLeadH = med
	}

	// Precision: does a WARN burst actually precede a FATAL here?
	for key, bursts := range warnsAt {
		incidents := fatalsAt[key]
		for _, b := range bursts {
			idx := sort.Search(len(incidents), func(i int) bool {
				return incidents[i].First.After(b.First)
			})
			if idx < len(incidents) && incidents[idx].First.Sub(b.First) <= opt.Lookback {
				res.TrueAlarms++
			}
		}
	}
	if res.WarnBursts > 0 {
		res.Precision = float64(res.TrueAlarms) / float64(res.WarnBursts)
	}
	return res, nil
}
