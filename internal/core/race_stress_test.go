package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sel"
)

func mustParse(t *testing.T, where string) sel.Expr {
	t.Helper()
	e, err := sel.Parse(where)
	if err != nil {
		t.Fatalf("parse %q: %v", where, err)
	}
	return e
}

// This file is the concurrency contract for serving (DESIGN.md §15): a
// Dataset and everything it builds lazily — SoA views, per-dimension
// bitmap indexes, compiled selections, the memoized whole-corpus profile
// — must be safe to hammer from many goroutines, including the very
// first touch, where every sync.Once and the compiled-selection cache
// are under maximal contention. mirad relies on exactly this: N
// concurrent requests over one warm (or still-cold) Dataset.
//
// The tests run under the CI -race job; correctness is pinned by
// comparing every concurrent result against a sequentially computed
// reference on an identical Dataset.

// freshDataset builds a NEW Dataset over the shared test corpus, so all
// lazy state starts cold (the package-level dataset(t) is warm by the
// time most tests run).
func freshDataset(t *testing.T) *Dataset {
	t.Helper()
	_, c := dataset(t)
	d, err := NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRaceColdFirstTouch aims every goroutine at the lazy-construction
// paths of a completely cold Dataset at once: views, dimension indexes,
// full profile, pushdown profiles and index stats all race their first
// build.
func TestRaceColdFirstTouch(t *testing.T) {
	d := freshDataset(t)
	ref := freshDataset(t)

	wheres := equivalencePredicates(t, ref)
	want := make([]*FusedProfile, len(wheres))
	for i, wh := range wheres {
		p, err := ref.FusedScanWhere(mustParse(t, wh), 1)
		if err != nil {
			t.Fatalf("reference %q: %v", wh, err)
		}
		want[i] = p
	}
	wantFull, err := ref.FusedScan(1)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave the access patterns so each lazy structure sees
			// concurrent first touches from several directions.
			switch w % 4 {
			case 0: // full fused scan
				p, err := d.FusedScan(2)
				if err != nil {
					t.Error(err)
					return
				}
				profileFields(t, fmt.Sprintf("worker %d FusedScan", w), p, wantFull)
			case 1: // predicate pushdown over every equivalence predicate
				for i, wh := range wheres {
					p, err := d.FusedScanWhere(mustParse(t, wh), 2)
					if err != nil {
						t.Errorf("worker %d %q: %v", w, wh, err)
						return
					}
					profileFields(t, fmt.Sprintf("worker %d %q", w, wh), p, want[i])
				}
			case 2: // raw bitmap selections (separate cache entries per expr)
				for _, wh := range wheres {
					e := mustParse(t, wh)
					if _, err := d.SelectJobs(e); err != nil {
						// Event-domain (or cross-domain AND) predicates are
						// invalid for the job-only entry point; try the event
						// side, and accept both rejecting — the point here is
						// that errors stay deterministic under contention, not
						// that every predicate fits a single domain.
						d.SelectEvents(e)
					}
				}
			case 3: // views + full index inventory
				jv, ev := d.JobView(), d.EventView()
				if len(jv.Users) == 0 || len(ev.Sev) == 0 {
					t.Errorf("worker %d: empty view", w)
					return
				}
				if st := d.IndexStats(); len(st) == 0 {
					t.Errorf("worker %d: no index stats", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRaceWarmQueryStorm hammers a pre-warmed Dataset with the mirad
// request mix: repeated pushdown scans over a small predicate set (the
// compiled-selection cache hot path), full scans, and stats reads.
// Results must stay bit-stable across goroutines and rounds.
func TestRaceWarmQueryStorm(t *testing.T) {
	d := freshDataset(t)
	d.IndexStats() // warm: builds views and every dimension index

	wheres := []string{
		"exit == system",
		"exit != success",
		"nodes >= 2048",
		"sev == FATAL",
		"dur > 3600 and exit == system",
	}
	want := make(map[string]*FusedProfile, len(wheres))
	for _, wh := range wheres {
		p, err := d.FusedScanWhere(mustParse(t, wh), 1)
		if err != nil {
			t.Fatalf("reference %q: %v", wh, err)
		}
		want[wh] = p
	}

	const workers = 12
	const rounds = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				wh := wheres[(w+r)%len(wheres)]
				p, err := d.FusedScanWhere(mustParse(t, wh), 2)
				if err != nil {
					t.Errorf("worker %d round %d %q: %v", w, r, wh, err)
					return
				}
				profileFields(t, fmt.Sprintf("worker %d round %d %q", w, r, wh), p, want[wh])
				if r%2 == 0 {
					if _, err := d.FusedScan(2); err != nil {
						t.Errorf("worker %d round %d full scan: %v", w, r, err)
						return
					}
				}
				if st := d.IndexStats(); len(st) == 0 {
					t.Errorf("worker %d round %d: no index stats", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestRaceSelectionCacheStampede drives many goroutines through the
// compiled-selection cache for ONE predicate on a cold Dataset: every
// caller must get the same cached bitmap (pointer-stable after the first
// compile) with no duplicate inserts or torn reads.
func TestRaceSelectionCacheStampede(t *testing.T) {
	d := freshDataset(t)
	e := mustParse(t, "exit == system or nodes >= 2048")

	const workers = 24
	bitmaps := make([]interface{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b, err := d.SelectJobs(e)
			if err != nil {
				t.Error(err)
				return
			}
			bitmaps[w] = b
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if bitmaps[w] != bitmaps[0] {
			t.Fatalf("worker %d got a different compiled bitmap than worker 0", w)
		}
	}
}
