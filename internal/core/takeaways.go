package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
)

// Takeaway is one of the paper's numbered findings, re-derived from the
// corpus under analysis.
type Takeaway struct {
	ID   int
	Tag  string // short topic slug
	Text string // the finding with measured values substituted
}

// Takeaways runs the full joint analysis and renders the paper's 22
// takeaways with the corpus' measured values. The wording follows the
// paper's findings; every number is computed, not quoted.
func (d *Dataset) Takeaways() ([]Takeaway, error) {
	sum := d.Summarize()
	cls := d.ClassifyByExit()
	joint := d.ClassifyJoint(DefaultJointOptions())
	userConc, err := d.Concentration(ByUser, cls)
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	projConc, err := d.Concentration(ByProject, cls)
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	fits, err := d.FitExecutionLengths(FitOptions{MaxSamples: 20000})
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	mtti, err := d.MTTI(DefaultFilterRule())
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	locality, err := d.Locality(machine.LevelMidplane)
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	profile := d.Profile()
	temporal := d.Temporal()
	scale, err := d.FailureByStructure(DimNodes)
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	tasks, err := d.FailureByStructure(DimTasks)
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	ioCorr, ioErr := d.IOBehavior()
	interrupts, err := d.InterruptsByUser(cls)
	if err != nil {
		return nil, fmt.Errorf("core: takeaways: %w", err)
	}
	succ, fail := d.ExecutionLengthCDFs()

	pct := func(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
	var ts []Takeaway
	add := func(tag, text string) {
		ts = append(ts, Takeaway{ID: len(ts) + 1, Tag: tag, Text: text})
	}

	// Dataset scale.
	add("scale", fmt.Sprintf(
		"The observation covers %.0f days, %d jobs from %d users / %d projects, %.2f billion core-hours, and %d RAS events (%d FATAL).",
		sum.Days, sum.Jobs, sum.Users, sum.Projects, sum.CoreHours/1e9, sum.RASTotal, sum.RASFatal))
	// Headline failure counts.
	add("failures", fmt.Sprintf(
		"%d job failures appear in the scheduling log — %s of all jobs.",
		cls.Failed, pct(float64(cls.Failed)/float64(cls.Total))))
	add("user-share", fmt.Sprintf(
		"A large majority of job failures (%s) are caused by user behavior (bugs, misconfiguration, misoperation); only %d failures trace back to system events.",
		pct(cls.UserShare()), cls.SystemCause))
	add("joint-agree", fmt.Sprintf(
		"Joining the scheduler log with the RAS log attributes %d failures to the system versus %d from exit statuses alone — the two views agree within %s of failures.",
		joint.SystemCause, cls.SystemCause, pct(absFloat(float64(joint.SystemCause-cls.SystemCause))/float64(cls.Failed))))

	// Workload concentration.
	add("user-skew", fmt.Sprintf(
		"Workload is highly concentrated: the 10 busiest users submit %s of all jobs (Gini %.2f), and the 10 biggest consume %s of core-hours.",
		pct(userConc.Top10JobShare), userConc.GiniJobs, pct(userConc.Top10CHShare)))
	add("fail-skew", fmt.Sprintf(
		"Failures concentrate even more than activity: the 10 most-failing users account for %s of all failed jobs (failure Gini %.2f).",
		pct(userConc.Top10FailShare), userConc.GiniFailures))
	add("user-corr", fmt.Sprintf(
		"Per-user job counts and failure counts correlate strongly (Pearson r = %.2f); identity↔outcome association is Cramér's V = %.2f for users and %.2f for projects.",
		userConc.PearsonJobsFailures, userConc.CramersV, projConc.CramersV))

	// Execution structure.
	add("scale-trend", fmt.Sprintf(
		"Failure rate varies with job scale: %d-node jobs fail at %s versus %s for %d-node jobs (Spearman trend %.2f).",
		int(scale.Buckets[0].Lo), pct(scale.Buckets[0].FailRate),
		pct(lastNonEmpty(scale.Buckets).FailRate), int(lastNonEmpty(scale.Buckets).Lo), scale.SpearmanTrend))
	add("task-trend", fmt.Sprintf(
		"Jobs with more execution tasks fail more often (Spearman trend %.2f across task-count buckets).",
		tasks.SpearmanTrend))
	add("exec-length", fmt.Sprintf(
		"Failed jobs die early: their median execution length is %.0f s versus %.0f s for succeeded jobs.",
		medianOf(fail), medianOf(succ)))

	// Distribution fitting.
	bestByFam := map[joblog.ExitFamily]string{}
	for _, f := range fits {
		bestByFam[f.Family] = f.Best().Family
	}
	add("fit-families", fmt.Sprintf(
		"The best-fitting execution-length distribution depends on the exit code: %s.",
		fitSummary(fits)))
	add("infant", fmt.Sprintf(
		"Generic runtime errors (exit 1) fit a Weibull with shape < 1 (infant mortality): crashes cluster shortly after launch (fitted %s).",
		bestOrNA(bestByFam, joblog.FamilyError)))
	add("heavy-tail", fmt.Sprintf(
		"Segmentation faults show a heavy-tailed (Pareto-like) execution length: some jobs run long before faulting (fitted %s).",
		bestOrNA(bestByFam, joblog.FamilySegfault)))

	// RAS profile.
	add("ras-mix", fmt.Sprintf(
		"FATAL events are only %s of the RAS stream; WARN/INFO noise dominates, so raw event counts wildly overstate failures.",
		pct(float64(sum.RASFatal)/float64(maxInt(sum.RASTotal, 1)))))
	add("ras-cats", fmt.Sprintf(
		"The dominant FATAL categories are %s — hardware subsystems, not system software, drive most fatal events.",
		topCategories(profile, 3)))
	add("filtering", fmt.Sprintf(
		"Similarity-based filtering collapses %d raw FATAL events into %d incidents (%.1fx reduction): fatal events arrive in highly redundant bursts.",
		mtti.RawFatal, mtti.Interruptions, safeRatio(float64(mtti.RawFatal), float64(mtti.Interruptions))))
	add("mtti", fmt.Sprintf(
		"After filtering, the mean time to job interruption is %.1f days — versus a misleading raw-FATAL MTBF of %.2f days.",
		mtti.MTTIDays, mtti.MTBFRawDays))
	if mtti.BestFit.Dist != nil {
		add("interval-fit", fmt.Sprintf(
			"Interruption intervals are best fitted by the %s distribution (KS %.3f).",
			mtti.BestFit.Family, mtti.BestFit.KS))
	} else {
		add("interval-fit", "Too few interruptions to fit an interval distribution on this corpus.")
	}

	// Locality.
	add("locality", fmt.Sprintf(
		"FATAL events exhibit strong spatial locality: the 5 worst midplanes absorb %s of events (uniform would be %s; Gini %.2f).",
		pct(locality.Top5Share), pct(locality.UniformTopShare), locality.Gini))
	add("interrupt-corr", fmt.Sprintf(
		"System interruptions track consumption: per-user core-hours correlate with interrupt counts at r = %.2f, and the top core-hour decile of users absorbs %s of interrupts.",
		interrupts.PearsonCHInterrupts, pct(interrupts.TopDecileShare)))

	// Temporal + I/O.
	peak, trough := peakTrough(temporal.JobsByHour)
	add("diurnal", fmt.Sprintf(
		"Submissions follow a diurnal/weekly rhythm (peak hour %02d:00 has %.1fx the jobs of %02d:00), while the failure *rate* stays roughly flat across hours.",
		peak, safeRatio(float64(temporal.JobsByHour[peak]), float64(maxInt(temporal.JobsByHour[trough], 1))), trough))
	if ioErr == nil {
		add("io", fmt.Sprintf(
			"Failed jobs move far less data than succeeded ones (median ratio %.1fx, two-sample KS %.2f): failures usually strike before the bulk of I/O happens.",
			ioCorr.MedianRatio, ioCorr.KSBytes))
	} else {
		add("io", "No I/O records available for both outcomes on this corpus.")
	}

	return ts, nil
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func medianOf(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)/2]
}

func lastNonEmpty(bs []Bucket) Bucket {
	for i := len(bs) - 1; i >= 0; i-- {
		if bs[i].Jobs > 0 {
			return bs[i]
		}
	}
	return Bucket{}
}

func fitSummary(fits []FamilyFit) string {
	parts := make([]string, 0, len(fits))
	for _, f := range fits {
		parts = append(parts, fmt.Sprintf("%s→%s", f.Family, f.Best().Family))
	}
	return strings.Join(parts, ", ")
}

func bestOrNA(m map[joblog.ExitFamily]string, fam joblog.ExitFamily) string {
	if v, ok := m[fam]; ok {
		return v
	}
	return "n/a"
}

func topCategories(p *CategoryProfile, k int) string {
	type kv struct {
		cat raslog.Category
		n   int
	}
	var list []kv
	for c, n := range p.FatalByCategory {
		list = append(list, kv{c, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].cat < list[j].cat
	})
	if k > len(list) {
		k = len(list)
	}
	parts := make([]string, 0, k)
	for _, e := range list[:k] {
		parts = append(parts, string(e.cat))
	}
	return strings.Join(parts, ", ")
}

func peakTrough(hours [24]int) (peak, trough int) {
	for h := 1; h < 24; h++ {
		if hours[h] > hours[peak] {
			peak = h
		}
		if hours[h] < hours[trough] {
			trough = h
		}
	}
	return peak, trough
}
