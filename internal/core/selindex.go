package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/bitmap"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/scan"
	"repro/internal/sel"
)

// Selection columns. A predicate addresses either the job table or the RAS
// event table; the compiler refuses expressions that mix the two inside one
// conjunct (CompileWhere splits top-level ANDs by domain).
//
//	job columns:   user, project, exit (family name), nodes, dur (seconds),
//	               submit (timestamp)
//	event columns: sev, cat, comp, midplane (Rxx-My), rack (Rxx),
//	               time (timestamp)
//
// Dictionary columns (user, project, exit, sev, cat, comp, midplane, rack)
// are served from per-key bitmap indexes built lazily over the SoA column
// views; submit uses a coarse per-day bucket index with boundary
// refinement; event time exploits the time-sorted stream and compiles to a
// single run container. The numeric columns (nodes, dur) compile by a
// cached column scan. See DESIGN.md §14.

type selDomain uint8

const (
	domJob selDomain = iota
	domEvent
)

func (d selDomain) String() string {
	if d == domEvent {
		return "event"
	}
	return "job"
}

// domainOf resolves a column name to its table.
func domainOf(col string) (selDomain, error) {
	switch col {
	case "user", "project", "exit", "nodes", "dur", "submit":
		return domJob, nil
	case "sev", "cat", "comp", "midplane", "rack", "time":
		return domEvent, nil
	}
	return 0, fmt.Errorf("core: unknown selection column %q", col)
}

// selIndexes is the lazily built selection machinery over one pair of
// column views. Dimension indexes build once under sync.Once; compiled
// selections cache by canonical expression string. Either view may be nil
// when the corresponding domain is never queried (mirafilter compiles
// event predicates without a job view).
type selIndexes struct {
	jv *scan.JobView
	ev *scan.EventView

	jobUniOnce, evtUniOnce sync.Once
	jobUni, evtUni         bitmap.Bitmap

	userOnce, projOnce, famOnce sync.Once
	user, proj, fam             []bitmap.Bitmap
	userID, projID              map[string]int32

	submitOnce  sync.Once
	submitDays  []bitmap.Bitmap
	submitBase  int64 // day number (unix/86400) of bucket 0
	timesSorted bool  // event TimeUnix ascending (checked once)
	timesOnce   sync.Once

	sevOnce, catOnce, compOnce, midOnce, rackOnce sync.Once
	sev, cat, comp, mid, rack                     []bitmap.Bitmap
	catID, compID                                 map[string]int32

	mu    sync.Mutex
	cache map[string]*bitmap.Bitmap
}

func newSelIndexes(jv *scan.JobView, ev *scan.EventView) *selIndexes {
	return &selIndexes{jv: jv, ev: ev, cache: map[string]*bitmap.Bitmap{}}
}

// selIdx returns the dataset's selection machinery, creating it on first
// use. Index dimensions inside build lazily on first touch.
func (d *Dataset) selIdx() *selIndexes {
	d.selOnce.Do(func() { d.selx = newSelIndexes(d.JobView(), d.EventView()) })
	return d.selx
}

// denseIndex builds one bitmap per dictionary slot: bms[idOf(i)] collects
// the rows of key id. Negative ids (events without a location at the
// level) index nowhere.
func denseIndex(n, slots int, idOf func(i int) int32) []bitmap.Bitmap {
	bms := make([]bitmap.Bitmap, slots)
	for i := 0; i < n; i++ {
		if id := idOf(i); id >= 0 {
			bms[id].Add(uint32(i))
		}
	}
	for i := range bms {
		bms[i].Optimize()
	}
	return bms
}

func dictIDs(dict []string) map[string]int32 {
	m := make(map[string]int32, len(dict))
	for i, s := range dict {
		m[s] = int32(i)
	}
	return m
}

func (x *selIndexes) universe(dom selDomain) *bitmap.Bitmap {
	if dom == domEvent {
		x.evtUniOnce.Do(func() {
			x.evtUni.AddRange(0, uint32(x.ev.N))
			x.evtUni.Optimize()
		})
		return &x.evtUni
	}
	x.jobUniOnce.Do(func() {
		x.jobUni.AddRange(0, uint32(x.jv.N))
		x.jobUni.Optimize()
	})
	return &x.jobUni
}

func (x *selIndexes) userIdx() []bitmap.Bitmap {
	x.userOnce.Do(func() {
		x.userID = dictIDs(x.jv.Users)
		x.user = denseIndex(x.jv.N, len(x.jv.Users), func(i int) int32 { return x.jv.UserID[i] })
	})
	return x.user
}

func (x *selIndexes) projIdx() []bitmap.Bitmap {
	x.projOnce.Do(func() {
		x.projID = dictIDs(x.jv.Projects)
		x.proj = denseIndex(x.jv.N, len(x.jv.Projects), func(i int) int32 { return x.jv.ProjectID[i] })
	})
	return x.proj
}

func (x *selIndexes) famIdx() []bitmap.Bitmap {
	x.famOnce.Do(func() {
		x.fam = denseIndex(x.jv.N, joblog.NumFamilies, func(i int) int32 { return int32(x.jv.Family[i]) })
	})
	return x.fam
}

func (x *selIndexes) sevIdx() []bitmap.Bitmap {
	x.sevOnce.Do(func() {
		x.sev = denseIndex(x.ev.N, 4, func(i int) int32 { return int32(x.ev.Sev[i]) })
	})
	return x.sev
}

func (x *selIndexes) catIdx() []bitmap.Bitmap {
	x.catOnce.Do(func() {
		x.catID = dictIDs(x.ev.Cats)
		x.cat = denseIndex(x.ev.N, len(x.ev.Cats), func(i int) int32 { return x.ev.CatID[i] })
	})
	return x.cat
}

func (x *selIndexes) compIdx() []bitmap.Bitmap {
	x.compOnce.Do(func() {
		x.compID = dictIDs(x.ev.Comps)
		x.comp = denseIndex(x.ev.N, len(x.ev.Comps), func(i int) int32 { return x.ev.CompID[i] })
	})
	return x.comp
}

func (x *selIndexes) midIdx() []bitmap.Bitmap {
	x.midOnce.Do(func() {
		x.mid = denseIndex(x.ev.N, machine.TotalMidplanes, func(i int) int32 { return x.ev.MidplaneID[i] })
	})
	return x.mid
}

func (x *selIndexes) rackIdx() []bitmap.Bitmap {
	x.rackOnce.Do(func() {
		x.rack = denseIndex(x.ev.N, machine.NumRacks, func(i int) int32 { return x.ev.RackID[i] })
	})
	return x.rack
}

// submitIdx builds the coarse per-day submit buckets: bucket k holds the
// jobs submitted on day submitBase+k (unix/86400, UTC).
func (x *selIndexes) submitIdx() []bitmap.Bitmap {
	x.submitOnce.Do(func() {
		sub := x.jv.SubmitUnix
		if len(sub) == 0 {
			return
		}
		minDay, maxDay := sub[0]/86400, sub[0]/86400
		for _, u := range sub {
			d := u / 86400
			if d < minDay {
				minDay = d
			}
			if d > maxDay {
				maxDay = d
			}
		}
		x.submitBase = minDay
		x.submitDays = denseIndex(x.jv.N, int(maxDay-minDay)+1,
			func(i int) int32 { return int32(sub[i]/86400 - minDay) })
	})
	return x.submitDays
}

// timeValue parses a timestamp literal: a date, a date-time, an RFC 3339
// string, or raw Unix seconds. Dates and date-times read as UTC.
func timeValue(s string) (int64, error) {
	for _, layout := range []string{"2006-01-02", "2006-01-02T15:04:05", "2006-01-02 15:04:05", time.RFC3339} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.Unix(), nil
		}
	}
	if u, err := strconv.ParseInt(s, 10, 64); err == nil {
		return u, nil
	}
	return 0, fmt.Errorf("core: cannot parse %q as a timestamp", s)
}

// SelectJobs compiles a job-domain predicate to the bitmap of matching job
// rows. The result is cached and shared — callers must not modify it.
func (d *Dataset) SelectJobs(e sel.Expr) (*bitmap.Bitmap, error) {
	return d.selIdx().selectDomain(e, domJob)
}

// SelectEvents compiles an event-domain predicate to the bitmap of
// matching event rows. The result is cached and shared — callers must not
// modify it.
func (d *Dataset) SelectEvents(e sel.Expr) (*bitmap.Bitmap, error) {
	return d.selIdx().selectDomain(e, domEvent)
}

// SelectEventsView compiles an event-domain predicate against a standalone
// event view, without a Dataset — the mirafilter -where path. Indexes are
// transient; repeated queries over one view should reuse a Dataset.
func SelectEventsView(ev *scan.EventView, e sel.Expr) (*bitmap.Bitmap, error) {
	return newSelIndexes(nil, ev).selectDomain(e, domEvent)
}

// CompileWhere splits a predicate into its job- and event-side selections:
// top-level conjuncts apply to whichever table their columns address, and
// a conjunct mixing the two tables is an error. A nil return on either
// side means that table is unconstrained.
func (d *Dataset) CompileWhere(e sel.Expr) (jobSel, eventSel *bitmap.Bitmap, err error) {
	var jobs, events []sel.Expr
	if err := splitConjuncts(e, &jobs, &events); err != nil {
		return nil, nil, err
	}
	x := d.selIdx()
	if len(jobs) > 0 {
		if jobSel, err = x.selectDomain(conjoin(jobs), domJob); err != nil {
			return nil, nil, err
		}
	}
	if len(events) > 0 {
		if eventSel, err = x.selectDomain(conjoin(events), domEvent); err != nil {
			return nil, nil, err
		}
	}
	return jobSel, eventSel, nil
}

// splitConjuncts flattens top-level ANDs and buckets each conjunct by the
// table its columns address.
func splitConjuncts(e sel.Expr, jobs, events *[]sel.Expr) error {
	if and, ok := e.(sel.And); ok {
		if err := splitConjuncts(and.L, jobs, events); err != nil {
			return err
		}
		return splitConjuncts(and.R, jobs, events)
	}
	cols := sel.Columns(e)
	if len(cols) == 0 {
		return fmt.Errorf("core: predicate %s references no columns", e)
	}
	dom, err := domainOf(cols[0])
	if err != nil {
		return err
	}
	for _, c := range cols[1:] {
		d, err := domainOf(c)
		if err != nil {
			return err
		}
		if d != dom {
			return fmt.Errorf("core: predicate %s mixes job and event columns; combine them with a top-level 'and'", e)
		}
	}
	if dom == domEvent {
		*events = append(*events, e)
	} else {
		*jobs = append(*jobs, e)
	}
	return nil
}

func conjoin(es []sel.Expr) sel.Expr {
	e := es[0]
	for _, r := range es[1:] {
		e = sel.And{L: e, R: r}
	}
	return e
}

// selectDomain compiles e for one table, checking every referenced column
// belongs to it, with the whole-expression result cached by canonical form.
func (x *selIndexes) selectDomain(e sel.Expr, dom selDomain) (*bitmap.Bitmap, error) {
	for _, c := range sel.Columns(e) {
		d, err := domainOf(c)
		if err != nil {
			return nil, err
		}
		if d != dom {
			return nil, fmt.Errorf("core: column %q is a %s column, not a %s column", c, d, dom)
		}
	}
	if dom == domJob && x.jv == nil {
		return nil, fmt.Errorf("core: no job view to select over")
	}
	if dom == domEvent && x.ev == nil {
		return nil, fmt.Errorf("core: no event view to select over")
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.compile(e, dom)
}

// compile evaluates the expression tree bottom-up as bitmap algebra. Every
// node's result caches under its canonical string, so shared subtrees and
// repeated queries cost one evaluation. Called with x.mu held.
func (x *selIndexes) compile(e sel.Expr, dom selDomain) (*bitmap.Bitmap, error) {
	key := dom.String() + ":" + e.String()
	if b, ok := x.cache[key]; ok {
		return b, nil
	}
	var b *bitmap.Bitmap
	var err error
	switch v := e.(type) {
	case sel.And:
		b, err = x.binary(v.L, v.R, dom, (*bitmap.Bitmap).And)
	case sel.Or:
		b, err = x.binary(v.L, v.R, dom, (*bitmap.Bitmap).Or)
	case sel.Not:
		var inner *bitmap.Bitmap
		if inner, err = x.compile(v.X, dom); err == nil {
			b = bitmap.New().AndNot(x.universe(dom), inner)
		}
	case sel.Eq:
		b, err = x.leafEq(dom, v.Col, v.Val)
	case sel.In:
		b = bitmap.New() // empty list selects nothing
		for _, val := range v.Vals {
			var one *bitmap.Bitmap
			if one, err = x.leafEq(dom, v.Col, val); err != nil {
				break
			}
			b = bitmap.New().Or(b, one)
		}
	case sel.Range:
		b, err = x.leafRange(dom, v)
	default:
		err = fmt.Errorf("core: unsupported selection expression %T", e)
	}
	if err != nil {
		return nil, err
	}
	x.cache[key] = b
	return b, nil
}

func (x *selIndexes) binary(l, r sel.Expr, dom selDomain, op func(dst, a, b *bitmap.Bitmap) *bitmap.Bitmap) (*bitmap.Bitmap, error) {
	lb, err := x.compile(l, dom)
	if err != nil {
		return nil, err
	}
	rb, err := x.compile(r, dom)
	if err != nil {
		return nil, err
	}
	return op(bitmap.New(), lb, rb), nil
}

// leafEq resolves one column == value comparison to its index bitmap (or a
// scan for the numeric columns). An unknown dictionary value selects
// nothing; a malformed value (bad severity, bad location, bad number) is
// an error.
func (x *selIndexes) leafEq(dom selDomain, col, val string) (*bitmap.Bitmap, error) {
	switch col {
	case "user":
		x.userIdx()
		if id, ok := x.userID[val]; ok {
			return &x.user[id], nil
		}
		return bitmap.New(), nil
	case "project":
		x.projIdx()
		if id, ok := x.projID[val]; ok {
			return &x.proj[id], nil
		}
		return bitmap.New(), nil
	case "exit":
		code := joblog.FamilyCode(joblog.ExitFamily(val))
		if string(joblog.FamilyOfCode(code)) != val {
			return nil, fmt.Errorf("core: unknown exit family %q", val)
		}
		return &x.famIdx()[code], nil
	case "nodes":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: nodes value %q is not a number", val)
		}
		return x.scanJobCol(col, n, n), nil
	case "dur":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: dur value %q is not a number", val)
		}
		return x.scanJobCol(col, n, n), nil
	case "submit":
		u, err := timeValue(val)
		if err != nil {
			return nil, err
		}
		return x.submitRange(u, u), nil
	case "sev":
		s, err := raslog.ParseSeverity(val)
		if err != nil {
			return nil, fmt.Errorf("core: %q is not a severity (INFO, WARN, FATAL)", val)
		}
		return &x.sevIdx()[s], nil
	case "cat":
		x.catIdx()
		if id, ok := x.catID[val]; ok {
			return &x.cat[id], nil
		}
		return bitmap.New(), nil
	case "comp":
		x.compIdx()
		if id, ok := x.compID[val]; ok {
			return &x.comp[id], nil
		}
		return bitmap.New(), nil
	case "midplane":
		loc, err := machine.ParseLocation(val)
		if err != nil {
			return nil, err
		}
		id, err := loc.MidplaneID()
		if err != nil {
			return nil, fmt.Errorf("core: %q is not a midplane (Rxx-My)", val)
		}
		return &x.midIdx()[id], nil
	case "rack":
		loc, err := machine.ParseLocation(val)
		if err != nil {
			return nil, err
		}
		if loc.Level() != machine.LevelRack {
			return nil, fmt.Errorf("core: %q is not a rack (Rxx)", val)
		}
		return &x.rackIdx()[loc.RackIndex()], nil
	case "time":
		u, err := timeValue(val)
		if err != nil {
			return nil, err
		}
		return x.timeRange(u, u), nil
	}
	return nil, fmt.Errorf("core: unknown selection column %q", col)
}

// leafRange resolves a bounded comparison. Bounds normalize to an
// inclusive [lo, hi] over the column's integer form.
func (x *selIndexes) leafRange(dom selDomain, r sel.Range) (*bitmap.Bitmap, error) {
	parse := strconv.ParseInt
	isTime := r.Col == "submit" || r.Col == "time"
	bound := func(s string, missing int64) (int64, error) {
		if s == "" {
			return missing, nil
		}
		if isTime {
			return timeValue(s)
		}
		n, err := parse(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("core: %s value %q is not a number", r.Col, s)
		}
		return n, nil
	}
	const (
		minInt = -1 << 63
		maxInt = 1<<63 - 1
	)
	lo, err := bound(r.Lo, minInt)
	if err != nil {
		return nil, err
	}
	hi, err := bound(r.Hi, maxInt)
	if err != nil {
		return nil, err
	}
	if r.Lo != "" && !r.LoIncl {
		lo++
	}
	if r.Hi != "" && !r.HiIncl {
		hi--
	}
	if lo > hi {
		return bitmap.New(), nil
	}
	switch r.Col {
	case "nodes", "dur":
		return x.scanJobCol(r.Col, lo, hi), nil
	case "submit":
		return x.submitRange(lo, hi), nil
	case "time":
		return x.timeRange(lo, hi), nil
	}
	return nil, fmt.Errorf("core: column %q does not support range comparison", r.Col)
}

// scanJobCol selects jobs whose numeric column lies in [lo, hi] by a
// column sweep. Rows visit in ascending order, so the build hits the
// bitmap's append fast path.
func (x *selIndexes) scanJobCol(col string, lo, hi int64) *bitmap.Bitmap {
	b := bitmap.New()
	switch col {
	case "nodes":
		for i, n := range x.jv.Nodes {
			if v := int64(n); v >= lo && v <= hi {
				b.Add(uint32(i))
			}
		}
	case "dur":
		for i, v := range x.jv.DurSec {
			if v >= lo && v <= hi {
				b.Add(uint32(i))
			}
		}
	}
	b.Optimize()
	return b
}

// submitRange selects jobs with lo ≤ SubmitUnix ≤ hi from the per-day
// buckets: fully covered days union wholesale, the two boundary days
// refine against the column.
func (x *selIndexes) submitRange(lo, hi int64) *bitmap.Bitmap {
	buckets := x.submitIdx()
	res := bitmap.New()
	if len(buckets) == 0 {
		return res
	}
	sub := x.jv.SubmitUnix
	loDay := clampDay(lo, x.submitBase, len(buckets))
	hiDay := clampDay(hi, x.submitBase, len(buckets))
	if lo/86400 > x.submitBase+int64(len(buckets)-1) || hi/86400 < x.submitBase {
		return res
	}
	tmp := bitmap.New()
	for day := loDay; day <= hiDay; day++ {
		bucket := &buckets[day-x.submitBase]
		dayLo, dayHi := day*86400, day*86400+86399
		if dayLo >= lo && dayHi <= hi {
			res, tmp = tmp.Or(res, bucket), res
			continue
		}
		edge := bitmap.New()
		bucket.Iterate(func(row uint32) bool {
			if u := sub[row]; u >= lo && u <= hi {
				edge.Add(row)
			}
			return true
		})
		res, tmp = tmp.Or(res, edge), res
	}
	res.Optimize()
	return res
}

func clampDay(u, base int64, n int) int64 {
	d := u / 86400
	if u < 0 && u%86400 != 0 {
		d-- // floor division for pre-epoch instants
	}
	if d < base {
		d = base
	}
	if max := base + int64(n-1); d > max {
		d = max
	}
	return d
}

// timeRange selects events with lo ≤ TimeUnix ≤ hi. The event stream is
// time-sorted, so the selection is one contiguous run found by binary
// search; an unsorted adopted view falls back to a sweep.
func (x *selIndexes) timeRange(lo, hi int64) *bitmap.Bitmap {
	times := x.ev.TimeUnix
	x.timesOnce.Do(func() {
		x.timesSorted = sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	})
	b := bitmap.New()
	if !x.timesSorted {
		for i, u := range times {
			if u >= lo && u <= hi {
				b.Add(uint32(i))
			}
		}
		b.Optimize()
		return b
	}
	first := sort.Search(len(times), func(i int) bool { return times[i] >= lo })
	last := sort.Search(len(times), func(i int) bool { return times[i] > hi })
	if first < last {
		b.AddRange(uint32(first), uint32(last))
	}
	return b
}

// IndexStat describes one selection-index dimension: how many key bitmaps
// it holds, how many row ids they index in total, and their compressed
// payload size. `mirapack -info` prints these.
type IndexStat struct {
	Domain string // "job" or "event"
	Column string
	Keys   int // dictionary slots with at least one row
	Rows   int // total indexed rows across keys
	Bytes  int // compressed size of all key bitmaps
}

// IndexStats builds every selection-index dimension and reports its
// cardinality and compressed size, in fixed dimension order.
func (d *Dataset) IndexStats() []IndexStat {
	x := d.selIdx()
	stats := []IndexStat{
		{Domain: "job", Column: "user"},
		{Domain: "job", Column: "project"},
		{Domain: "job", Column: "exit"},
		{Domain: "job", Column: "submit"},
		{Domain: "event", Column: "sev"},
		{Domain: "event", Column: "cat"},
		{Domain: "event", Column: "comp"},
		{Domain: "event", Column: "midplane"},
		{Domain: "event", Column: "rack"},
	}
	dims := [][]bitmap.Bitmap{
		x.userIdx(), x.projIdx(), x.famIdx(), x.submitIdx(),
		x.sevIdx(), x.catIdx(), x.compIdx(), x.midIdx(), x.rackIdx(),
	}
	for i := range stats {
		for j := range dims[i] {
			b := &dims[i][j]
			if b.IsEmpty() {
				continue
			}
			stats[i].Keys++
			stats[i].Rows += b.Cardinality()
			stats[i].Bytes += b.SizeBytes()
		}
	}
	return stats
}
