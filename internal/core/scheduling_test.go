package core

import (
	"testing"

	"repro/internal/machine"
)

func TestScheduling(t *testing.T) {
	d, c := dataset(t)
	res, err := d.Scheduling()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WaitBySize) == 0 {
		t.Fatal("no wait buckets")
	}
	totalJobs := 0
	for _, b := range res.WaitBySize {
		totalJobs += b.Jobs
		if !machine.ValidBlockNodes(b.Nodes) {
			t.Errorf("bucket size %d not a block size", b.Nodes)
		}
		if b.P95Wait < b.MedianWait {
			t.Errorf("p95 wait < median for %d nodes", b.Nodes)
		}
		if b.MedianWait < 0 {
			t.Errorf("negative wait for %d nodes", b.Nodes)
		}
	}
	if totalJobs != len(c.Jobs) {
		t.Errorf("wait buckets cover %d of %d jobs", totalJobs, len(c.Jobs))
	}
	// Bigger jobs wait longer on a space-shared machine with backlog.
	if res.SpearmanSizeWait <= 0 {
		t.Errorf("Spearman(size, wait) = %v, want positive", res.SpearmanSizeWait)
	}
	// Walltime accuracy: both outcomes present; ratios in (0, ~1.1].
	if len(res.Accuracy) != 2 {
		t.Fatalf("accuracy rows = %d", len(res.Accuracy))
	}
	for _, a := range res.Accuracy {
		if a.MedianRatio <= 0 || a.MedianRatio > 1.01 {
			t.Errorf("%s: median ratio %v", a.Outcome, a.MedianRatio)
		}
		if a.UnderTenPct < 0 || a.UnderTenPct > 1 {
			t.Errorf("%s: under-10%% share %v", a.Outcome, a.UnderTenPct)
		}
	}
	// Failed jobs use less of their request than succeeded ones (they die
	// early), so their median ratio is lower.
	var okRatio, failRatio float64
	for _, a := range res.Accuracy {
		if a.Outcome == "success" {
			okRatio = a.MedianRatio
		} else {
			failRatio = a.MedianRatio
		}
	}
	if failRatio >= okRatio {
		t.Errorf("failed ratio %v ≥ success ratio %v", failRatio, okRatio)
	}
	// Requested walltime is informative for successes (duration drawn as a
	// fraction of the request).
	if res.PearsonReqUsed < 0.5 {
		t.Errorf("Pearson(req, used) = %v, want strong", res.PearsonReqUsed)
	}
}

func TestLifePhases(t *testing.T) {
	d, c := dataset(t)
	phases, err := d.LifePhases(6, DefaultFilterRule())
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 6 {
		t.Fatalf("phases = %d", len(phases))
	}
	totalJobs, totalInterrupts := 0, 0
	for i, p := range phases {
		totalJobs += p.Jobs
		totalInterrupts += p.Interruptions
		if p.FailRate < 0 || p.FailRate > 1 {
			t.Errorf("phase %d: fail rate %v", i, p.FailRate)
		}
		if p.EndDay <= p.StartDay {
			t.Errorf("phase %d: empty day range", i)
		}
	}
	if totalJobs != len(c.Jobs) {
		t.Errorf("phases cover %d of %d jobs", totalJobs, len(c.Jobs))
	}
	mtti, err := d.MTTI(DefaultFilterRule())
	if err != nil {
		t.Fatal(err)
	}
	if totalInterrupts != mtti.Interruptions {
		t.Errorf("phase interrupts %d != %d", totalInterrupts, mtti.Interruptions)
	}
	// Burn-in: the first phase has a smaller MTTI (more incidents) than the
	// mid-life phases on a 90-day corpus (bathtub injection, ×1.9 → ×1).
	if phases[0].MTTIDays <= 0 {
		t.Skip("no interruptions in first phase on this seed")
	}
	mid := (phases[2].MTTIDays + phases[3].MTTIDays) / 2
	if mid > 0 && phases[0].MTTIDays >= mid {
		t.Errorf("burn-in not visible: first %v vs mid %v", phases[0].MTTIDays, mid)
	}
}

func TestLifePhasesErrors(t *testing.T) {
	d, _ := dataset(t)
	if _, err := d.LifePhases(1, DefaultFilterRule()); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := d.LifePhases(4, FilterRule{}); err == nil {
		t.Error("invalid rule accepted")
	}
}

func TestWaste(t *testing.T) {
	d, c := dataset(t)
	cls := d.ClassifyByExit()
	w, err := d.Waste(cls)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalCoreHours <= 0 || w.WastedCoreHours <= 0 {
		t.Fatalf("degenerate waste: %+v", w)
	}
	if w.WastedCoreHours >= w.TotalCoreHours {
		t.Error("wasted ≥ total")
	}
	if got := w.UserCoreHours + w.SystemCoreHours; got < w.WastedCoreHours*0.999 || got > w.WastedCoreHours*1.001 {
		t.Errorf("cause split %v != wasted %v", got, w.WastedCoreHours)
	}
	var famSum float64
	var famJobs int
	for _, row := range w.ByFamily {
		famSum += row.CoreHours
		famJobs += row.Jobs
	}
	if famSum < w.WastedCoreHours*0.999 || famSum > w.WastedCoreHours*1.001 {
		t.Errorf("family sum %v != wasted %v", famSum, w.WastedCoreHours)
	}
	if famJobs != cls.Failed {
		t.Errorf("family jobs %d != failed %d", famJobs, cls.Failed)
	}
	// Rows sorted by descending core-hours.
	for i := 1; i < len(w.ByFamily); i++ {
		if w.ByFamily[i].CoreHours > w.ByFamily[i-1].CoreHours {
			t.Fatal("waste rows not sorted")
		}
	}
	// Sanity: the corpus wastes a meaningful but bounded share.
	if w.WastedShare < 0.05 || w.WastedShare > 0.6 {
		t.Errorf("wasted share %v implausible", w.WastedShare)
	}
	_ = c
	if _, err := d.Waste(nil); err == nil {
		t.Error("nil classification accepted")
	}
}
