package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/raslog"
)

// referenceFilterBySeverity is a verbatim copy of the pre-index
// implementation: one pass that re-tests severity and recomputes the
// similarity key for every event. The equivalence tests pin the
// key-precomputed path to its exact output.
func referenceFilterBySeverity(events []raslog.Event, sev raslog.Severity, rule FilterRule) ([]Incident, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	open := map[filterKey]int{}
	type incidentJob struct {
		incident int
		job      int64
	}
	jobSeen := map[incidentJob]struct{}{}
	var incidents []Incident
	for i := range events {
		e := &events[i]
		if e.Sev != sev {
			continue
		}
		k := filterKey{}
		if rule.SameMessage {
			k.msg = e.MsgID
		} else {
			k.cat = e.Cat
		}
		if rule.Spatial > machine.LevelSystem {
			if e.Loc.Level() >= rule.Spatial {
				anc, err := e.Loc.Ancestor(rule.Spatial)
				if err == nil {
					k.loc = anc
				} else {
					k.loc = e.Loc
				}
			} else {
				k.loc = e.Loc
			}
		}
		if idx, ok := open[k]; ok && e.Time.Sub(incidents[idx].Last) <= rule.Window {
			in := &incidents[idx]
			in.Last = e.Time
			in.Events++
			if e.JobID != 0 {
				if _, dup := jobSeen[incidentJob{idx, e.JobID}]; !dup {
					jobSeen[incidentJob{idx, e.JobID}] = struct{}{}
					in.JobIDs = append(in.JobIDs, e.JobID)
				}
			}
			continue
		}
		incidents = append(incidents, Incident{
			First: e.Time, Last: e.Time, Events: 1,
			Loc: e.Loc, MsgID: e.MsgID, Cat: e.Cat,
		})
		if e.JobID != 0 {
			incidents[len(incidents)-1].JobIDs = []int64{e.JobID}
			jobSeen[incidentJob{len(incidents) - 1, e.JobID}] = struct{}{}
		}
		open[k] = len(incidents) - 1
	}
	return incidents, nil
}

// equivRules spans the similarity settings the analyses use.
func equivRules() []FilterRule {
	var rules []FilterRule
	for _, w := range []time.Duration{time.Minute, 20 * time.Minute, 2 * time.Hour} {
		for _, sp := range []machine.Level{machine.LevelSystem, machine.LevelRack, machine.LevelMidplane, machine.LevelNode} {
			for _, sm := range []bool{true, false} {
				rules = append(rules, FilterRule{Window: w, Spatial: sp, SameMessage: sm})
			}
		}
	}
	return rules
}

func TestFilterBySeverityMatchesReference(t *testing.T) {
	d, _ := dataset(t)
	for _, rule := range equivRules() {
		for _, sev := range []raslog.Severity{raslog.Fatal, raslog.Warn} {
			want, err := referenceFilterBySeverity(d.Events, sev, rule)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FilterBySeverity(d.Events, sev, rule)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rule %+v sev %v: %d incidents vs %d (or contents differ)",
					rule, sev, len(got), len(want))
			}
		}
	}
}

func TestDatasetFilterMatchesSliceFilter(t *testing.T) {
	d, _ := dataset(t)
	for _, rule := range equivRules() {
		wantF, err := FilterFatal(d.Events, rule)
		if err != nil {
			t.Fatal(err)
		}
		gotF, err := d.FilterFatal(rule)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotF, wantF) {
			t.Fatalf("rule %+v: Dataset.FilterFatal diverges from FilterFatal", rule)
		}
		wantW, err := FilterBySeverity(d.Events, raslog.Warn, rule)
		if err != nil {
			t.Fatal(err)
		}
		gotW, err := d.FilterWarn(rule)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotW, wantW) {
			t.Fatalf("rule %+v: Dataset.FilterWarn diverges from FilterBySeverity", rule)
		}
	}
}

func TestFilterSweepMatchesReference(t *testing.T) {
	d, _ := dataset(t)
	base := DefaultFilterRule()
	windows := []time.Duration{
		30 * time.Second, 5 * time.Minute, 20 * time.Minute, time.Hour, 6 * time.Hour,
	}
	raw := len(d.FatalEvents())
	want := make([]SweepPoint, len(windows))
	for i, w := range windows {
		rule := base
		rule.Window = w
		incidents, err := referenceFilterBySeverity(d.Events, raslog.Fatal, rule)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = SweepPoint{Window: w, Incidents: len(incidents)}
		if raw > 0 {
			want[i].Reduction = 1 - float64(len(incidents))/float64(raw)
		}
	}
	got, err := FilterSweep(d.Events, base, windows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sweep diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestFilterSweepRejectsBadWindow(t *testing.T) {
	d, _ := dataset(t)
	if _, err := FilterSweep(d.Events, DefaultFilterRule(), []time.Duration{time.Minute, 0}); err == nil {
		t.Error("sweep accepted a non-positive window")
	}
}

// TestSeverityViewsPartition checks the index invariants: the views cover
// the stream exactly once, match the severity they claim, and preserve time
// order.
func TestSeverityViewsPartition(t *testing.T) {
	d, _ := dataset(t)
	fatal, warn := d.FatalEvents(), d.WarnEvents()
	seen := make(map[int]bool, len(fatal)+len(warn))
	for _, idx := range [][]int{fatal, warn} {
		for n, i := range idx {
			if seen[i] {
				t.Fatalf("event %d appears in two views", i)
			}
			seen[i] = true
			if n > 0 && d.Events[idx[n-1]].Time.After(d.Events[i].Time) {
				t.Fatalf("view out of time order at position %d", n)
			}
		}
	}
	for _, i := range fatal {
		if d.Events[i].Sev != raslog.Fatal {
			t.Fatalf("event %d in FATAL view has severity %v", i, d.Events[i].Sev)
		}
	}
	for _, i := range warn {
		if d.Events[i].Sev != raslog.Warn {
			t.Fatalf("event %d in WARN view has severity %v", i, d.Events[i].Sev)
		}
	}
	info := 0
	for i := range d.Events {
		if !seen[i] {
			if s := d.Events[i].Sev; s == raslog.Fatal || s == raslog.Warn {
				t.Fatalf("event %d (sev %v) missing from its view", i, s)
			}
			info++
		}
	}
	s := d.Summarize()
	if s.RASFatal != len(fatal) || s.RASWarn != len(warn) || s.RASInfo != info || s.RASTotal != len(d.Events) {
		t.Fatalf("Summarize severity tallies (%d/%d/%d/%d) disagree with views (%d/%d/%d/%d)",
			s.RASFatal, s.RASWarn, s.RASInfo, s.RASTotal, len(fatal), len(warn), info, len(d.Events))
	}
}

func TestEventsBetweenMatchesScan(t *testing.T) {
	d, _ := dataset(t)
	start, end := d.Span()
	spans := []struct{ t0, t1 time.Time }{
		{start, end.Add(time.Second)},                          // everything
		{start.Add(24 * time.Hour), start.Add(48 * time.Hour)}, // one day
		{end.Add(time.Hour), end.Add(2 * time.Hour)},           // past the end
		{start, start}, // empty half-open
	}
	for _, sp := range spans {
		var want []raslog.Event
		for i := range d.Events {
			if !d.Events[i].Time.Before(sp.t0) && d.Events[i].Time.Before(sp.t1) {
				want = append(want, d.Events[i])
			}
		}
		got := d.EventsBetween(sp.t0, sp.t1)
		if len(got) != len(want) {
			t.Fatalf("[%v,%v): %d events vs %d", sp.t0, sp.t1, len(got), len(want))
		}
		for i := range got {
			if got[i].RecID != want[i].RecID {
				t.Fatalf("[%v,%v): event %d differs", sp.t0, sp.t1, i)
			}
		}
	}
}

func TestEventsOfMatchesScan(t *testing.T) {
	d, _ := dataset(t)
	want := map[int64][]int{}
	for i := range d.Events {
		if id := d.Events[i].JobID; id != 0 {
			want[id] = append(want[id], i)
		}
	}
	for id, idx := range want {
		if got := d.EventsOf(id); !reflect.DeepEqual(got, idx) {
			t.Fatalf("EventsOf(%d) = %v, want %v", id, got, idx)
		}
	}
	if got := d.EventsOf(-12345); got != nil {
		t.Fatalf("EventsOf(unknown) = %v, want nil", got)
	}
}
