package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/sim"
)

// The filter-sweep paired benchmark compares the key-precomputed sweep
// against the pre-index reference (severity re-scan + key recomputation per
// window) on the same corpus and reports the ratio as "speedup".

var (
	fbOnce sync.Once
	fbD    *Dataset
	fbErr  error
)

func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	fbOnce.Do(func() {
		cfg := sim.SmallConfig()
		cfg.Days = 90
		cfg.NumUsers = 200
		cfg.NumProjects = 60
		c, err := sim.Generate(cfg)
		if err != nil {
			fbErr = err
			return
		}
		fbD, fbErr = NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	})
	if fbErr != nil {
		b.Fatal(fbErr)
	}
	return fbD
}

func sweepWindows() []time.Duration {
	return []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
		10 * time.Minute, 20 * time.Minute, 40 * time.Minute, time.Hour,
		2 * time.Hour, 6 * time.Hour,
	}
}

// referenceFilterSweep is the pre-index sweep: each window re-runs the full
// severity scan and key computation (the old FilterBySeverity), serially.
func referenceFilterSweep(b *testing.B, events []raslog.Event, base FilterRule, windows []time.Duration) []SweepPoint {
	b.Helper()
	raw := 0
	for i := range events {
		if events[i].Sev == raslog.Fatal {
			raw++
		}
	}
	out := make([]SweepPoint, len(windows))
	for i, w := range windows {
		rule := base
		rule.Window = w
		incidents, err := referenceFilterBySeverity(events, raslog.Fatal, rule)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = SweepPoint{Window: w, Incidents: len(incidents)}
		if raw > 0 {
			out[i].Reduction = 1 - float64(len(incidents))/float64(raw)
		}
	}
	return out
}

// BenchmarkFilterSweepVsReference times the new sweep (single worker, so the
// comparison isolates the algorithmic change from parallelism) and reports
// old-time/new-time as "speedup".
func BenchmarkFilterSweepVsReference(b *testing.B) {
	d := benchDataset(b)
	base := DefaultFilterRule()
	windows := sweepWindows()

	t0 := time.Now()
	ref := referenceFilterSweep(b, d.Events, base, windows)
	refTime := time.Since(t0)

	var got []SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		got, err = FilterSweepParallel(d.Events, base, windows, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for i := range got {
		if got[i] != ref[i] {
			b.Fatalf("sweep point %d diverges from reference", i)
		}
	}
	if b.N > 0 && b.Elapsed() > 0 {
		perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(refTime.Nanoseconds())/perIter, "speedup")
	}
}

// BenchmarkFilterFatalIndexed measures the Dataset-level filter, which skips
// the severity scan entirely via the FATAL view.
func BenchmarkFilterFatalIndexed(b *testing.B) {
	d := benchDataset(b)
	rule := DefaultFilterRule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.FilterFatal(rule); err != nil {
			b.Fatal(err)
		}
	}
}
