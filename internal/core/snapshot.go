package core

import (
	"fmt"
	"time"

	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/tasklog"
)

// JobEventIndex lists the events attributed to one job.
type JobEventIndex struct {
	JobID int64
	Idx   []int // indices into Events, in time order
}

// IndexSnapshot is the serializable form of the derived indexes NewDataset
// builds by scanning the event stream: the severity-partitioned views, the
// per-job event index and the observation-window bounds. The binary corpus
// snapshot (internal/pack) persists it so loading a pack file skips the
// whole event scan.
//
// The slices are shared with the Dataset that exported them (or that a
// load will adopt); treat a snapshot as read-only.
type IndexSnapshot struct {
	FatalIdx   []int           // indices of FATAL events, in time order
	WarnIdx    []int           // indices of WARN events, in time order
	InfoN      int             // events that are neither FATAL nor WARN
	JobEvents  []JobEventIndex // per-job event indices, ascending job id
	Start, End time.Time       // observation-window bounds
}

// ExportIndexes returns the dataset's derived indexes for serialization.
func (d *Dataset) ExportIndexes() IndexSnapshot {
	var jobEvents []JobEventIndex
	for _, p := range d.byID { // ascending job id
		if idx := d.eventsOf[p]; len(idx) > 0 {
			jobEvents = append(jobEvents, JobEventIndex{JobID: d.Jobs[p].ID, Idx: idx})
		}
	}
	// Orphan attributions (ids with no matching job) are rare; merge them in
	// and restore the ascending order.
	if len(d.orphanEvents) > 0 {
		for id, idx := range d.orphanEvents {
			jobEvents = append(jobEvents, JobEventIndex{JobID: id, Idx: idx})
		}
		sortJobEvents(jobEvents)
	}
	return IndexSnapshot{
		FatalIdx:  d.fatalIdx,
		WarnIdx:   d.warnIdx,
		InfoN:     d.infoN,
		JobEvents: jobEvents,
		Start:     d.start,
		End:       d.end,
	}
}

// NewDatasetFromSnapshot indexes the logs like NewDataset but adopts the
// prebuilt event indexes instead of scanning the event stream. Events must
// already be in time order (the order ExportIndexes saw); the snapshot is
// cross-checked against the stream so a mismatched or stale snapshot fails
// loudly instead of yielding a subtly wrong dataset.
func NewDatasetFromSnapshot(jobs []joblog.Job, tasks []tasklog.Task, events []raslog.Event, ioRecs []iolog.Record, snap IndexSnapshot) (*Dataset, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: dataset has no jobs")
	}
	if got := len(snap.FatalIdx) + len(snap.WarnIdx) + snap.InfoN; got != len(events) {
		return nil, fmt.Errorf("core: index snapshot covers %d events, stream has %d", got, len(events))
	}
	d := &Dataset{
		Jobs:     jobs,
		Tasks:    tasks,
		Events:   events,
		IO:       ioRecs,
		fatalIdx: snap.FatalIdx,
		warnIdx:  snap.WarnIdx,
		infoN:    snap.InfoN,
		start:    snap.Start,
		end:      snap.End,
	}
	if err := d.buildJobIndex(); err != nil {
		return nil, err
	}
	d.buildPerJob()
	d.eventsOf = make([][]int, len(jobs))
	attributed := 0
	cur := jobCursor{d: d}
	for _, je := range snap.JobEvents {
		attributed += len(je.Idx)
		if attributed > len(events) {
			return nil, fmt.Errorf("core: index snapshot attributes %d events, stream has %d", attributed, len(events))
		}
		last := -1
		for _, v := range je.Idx {
			if v <= last || v >= len(events) {
				return nil, fmt.Errorf("core: index snapshot: event index %d for job %d out of order or range", v, je.JobID)
			}
			last = v
		}
		if p, ok := cur.pos(je.JobID); ok {
			d.eventsOf[p] = je.Idx
		} else {
			if d.orphanEvents == nil {
				d.orphanEvents = map[int64][]int{}
			}
			d.orphanEvents[je.JobID] = je.Idx
		}
	}
	return d, nil
}

func sortJobEvents(jes []JobEventIndex) {
	// Insertion sort: called only on the export path, on a slice that is
	// already sorted except for the appended orphan tail.
	for i := 1; i < len(jes); i++ {
		for j := i; j > 0 && jes[j].JobID < jes[j-1].JobID; j-- {
			jes[j], jes[j-1] = jes[j-1], jes[j]
		}
	}
}
