package core

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/stats"
)

// AvailabilityResult is the downtime profile derived from service-action
// begin/end pairs in the RAS log: how much hardware was out of service,
// the resulting machine availability, and the repair-time distribution.
type AvailabilityResult struct {
	ServiceActions    int     // matched begin/end pairs
	UnmatchedBegins   int     // actions still open at the end of the window
	DownMidplaneHours float64 // Σ per-midplane out-of-service hours
	SpanHours         float64
	// Availability = 1 − down-midplane-hours / (96 × span).
	Availability float64
	// RepairHours are the matched service-action durations, in match order.
	RepairHours   []float64
	MeanRepairH   float64
	MedianRepairH float64
	// RepairSummary are the descriptive statistics of the repair durations.
	RepairSummary stats.Summary
	// RepairSample is the sorted view of RepairHours with precomputed
	// sufficient statistics (nil when there are no repairs).
	RepairSample *dist.Sample
	// BestFit is the best-fitting law of the repair durations.
	BestFit dist.FitResult
}

// Availability pairs service-action begin/end events per hardware location
// and derives downtime, availability and the repair-time distribution.
func (d *Dataset) Availability() (*AvailabilityResult, error) {
	open := map[machine.Location][]int{} // location → indices of open begins
	var begins []raslog.Event
	res := &AvailabilityResult{}
	_, end := d.Span()
	start, _ := d.Span()
	res.SpanHours = end.Sub(start).Hours()

	for i := range d.Events {
		e := &d.Events[i]
		switch e.MsgID {
		case raslog.MsgServiceBegin:
			begins = append(begins, *e)
			open[e.Loc] = append(open[e.Loc], len(begins)-1)
		case raslog.MsgServiceEnd:
			q := open[e.Loc]
			if len(q) == 0 {
				continue // unmatched end (window-truncated log)
			}
			b := begins[q[0]]
			open[e.Loc] = q[1:]
			dur := e.Time.Sub(b.Time).Hours()
			if dur < 0 {
				continue
			}
			res.ServiceActions++
			res.RepairHours = append(res.RepairHours, dur)
			res.DownMidplaneHours += dur
		}
	}
	for _, q := range open {
		res.UnmatchedBegins += len(q)
	}
	if res.ServiceActions == 0 {
		return nil, fmt.Errorf("core: no service-action pairs in the RAS log")
	}
	if res.SpanHours > 0 {
		res.Availability = 1 - res.DownMidplaneHours/(float64(machine.TotalMidplanes)*res.SpanHours)
	}
	// One sort covers the summary statistics, the median, and — through the
	// Sample's sufficient statistics — the repair-time model selection.
	sorted := append([]float64(nil), res.RepairHours...)
	sort.Float64s(sorted)
	summary, err := stats.SummarizeSorted(sorted)
	if err != nil {
		return nil, err
	}
	res.RepairSummary = summary
	res.MeanRepairH = summary.Mean
	res.MedianRepairH = summary.Median
	res.RepairSample = dist.NewSampleSorted(sorted)
	if len(res.RepairHours) >= 30 {
		best, err := dist.SelectBestSample(res.RepairSample, nil)
		if err != nil {
			return nil, fmt.Errorf("core: fit repair times: %w", err)
		}
		res.BestFit = best
	}
	return res, nil
}
