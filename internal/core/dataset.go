// Package core implements the paper's contribution: the joint
// failure-analysis engine over the four Mira logs. It classifies job
// failures (user- vs system-caused), correlates failures with users,
// projects and job structure, fits candidate distributions to execution
// lengths per exit family, performs similarity-based RAS event filtering,
// and derives the system's mean time to interruption (MTTI), spatial
// locality and temporal patterns.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/tasklog"
)

// Dataset bundles the four logs with the indices the analyses share.
// Build one with NewDataset; the struct is read-only afterwards and safe
// for concurrent use.
type Dataset struct {
	Jobs   []joblog.Job
	Tasks  []tasklog.Task
	Events []raslog.Event // sorted by time
	IO     []iolog.Record

	tasksByJob map[int64][]tasklog.Task
	ioByJob    map[int64]iolog.Record
	jobByID    map[int64]*joblog.Job

	// Severity-partitioned views into Events, built once: indices of FATAL
	// and WARN events in time order. Most analyses touch only these slivers
	// of the stream (FATALs are a tiny fraction of a RAS log), so they scan
	// the index instead of re-walking and re-testing every event.
	fatalIdx []int
	warnIdx  []int
	infoN    int // events that are neither FATAL nor WARN

	// eventsByJob indexes the events attributed to each job (nonzero JobID),
	// in time order.
	eventsByJob map[int64][]int

	start, end time.Time
}

// NewDataset indexes the logs. Events are sorted by time if they are not
// already; jobs and tasks are never reordered.
func NewDataset(jobs []joblog.Job, tasks []tasklog.Task, events []raslog.Event, ioRecs []iolog.Record) (*Dataset, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: dataset has no jobs")
	}
	d := &Dataset{Jobs: jobs, Tasks: tasks, Events: events, IO: ioRecs}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) }) {
		sorted := append([]raslog.Event(nil), events...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
		d.Events = sorted
	}
	d.tasksByJob = tasklog.ByJob(tasks)
	d.ioByJob = iolog.ByJob(ioRecs)
	d.jobByID = make(map[int64]*joblog.Job, len(jobs))
	d.start = jobs[0].Submit
	d.end = jobs[0].End
	for i := range jobs {
		j := &jobs[i]
		if _, dup := d.jobByID[j.ID]; dup {
			return nil, fmt.Errorf("core: duplicate job id %d", j.ID)
		}
		d.jobByID[j.ID] = j
		if j.Submit.Before(d.start) {
			d.start = j.Submit
		}
		if j.End.After(d.end) {
			d.end = j.End
		}
	}
	for i := range events {
		if t := events[i].Time; t.Before(d.start) {
			d.start = t
		} else if t.After(d.end) {
			d.end = t
		}
	}
	d.eventsByJob = map[int64][]int{}
	for i := range d.Events {
		switch d.Events[i].Sev {
		case raslog.Fatal:
			d.fatalIdx = append(d.fatalIdx, i)
		case raslog.Warn:
			d.warnIdx = append(d.warnIdx, i)
		default:
			d.infoN++
		}
		if id := d.Events[i].JobID; id != 0 {
			d.eventsByJob[id] = append(d.eventsByJob[id], i)
		}
	}
	return d, nil
}

// FatalEvents returns the indices (into Events) of the FATAL events, in time
// order. The slice is shared — callers must not modify it.
func (d *Dataset) FatalEvents() []int { return d.fatalIdx }

// WarnEvents returns the indices (into Events) of the WARN events, in time
// order. The slice is shared — callers must not modify it.
func (d *Dataset) WarnEvents() []int { return d.warnIdx }

// EventsBetween returns the events with t0 ≤ Time < t1 as a subslice of
// Events (no copy), found by binary search on the time-sorted stream.
func (d *Dataset) EventsBetween(t0, t1 time.Time) []raslog.Event {
	lo := sort.Search(len(d.Events), func(i int) bool { return !d.Events[i].Time.Before(t0) })
	hi := sort.Search(len(d.Events), func(i int) bool { return !d.Events[i].Time.Before(t1) })
	if lo >= hi {
		return nil
	}
	return d.Events[lo:hi]
}

// EventsOf returns the indices (into Events) of the events attributed to the
// job (nil if none), in time order. The slice is shared — callers must not
// modify it.
func (d *Dataset) EventsOf(id int64) []int { return d.eventsByJob[id] }

// Span returns the observation window covered by the dataset.
func (d *Dataset) Span() (start, end time.Time) { return d.start, d.end }

// Days returns the observation span in (fractional) days.
func (d *Dataset) Days() float64 { return d.end.Sub(d.start).Hours() / 24 }

// Job returns the job with the given ID.
func (d *Dataset) Job(id int64) (*joblog.Job, bool) {
	j, ok := d.jobByID[id]
	return j, ok
}

// TasksOf returns the tasks of a job (nil if none recorded).
func (d *Dataset) TasksOf(id int64) []tasklog.Task { return d.tasksByJob[id] }

// IOOf returns the I/O record of a job if one was captured.
func (d *Dataset) IOOf(id int64) (iolog.Record, bool) {
	r, ok := d.ioByJob[id]
	return r, ok
}

// Summary holds the dataset-level statistics of Table I.
type Summary struct {
	Days        float64
	Jobs        int
	Tasks       int
	Users       int
	Projects    int
	CoreHours   float64
	RASTotal    int
	RASFatal    int
	RASWarn     int
	RASInfo     int
	IORecords   int
	FailedJobs  int
	SuccessJobs int
}

// Summarize computes the Table-I style dataset summary.
func (d *Dataset) Summarize() Summary {
	s := Summary{
		Days:      d.Days(),
		Jobs:      len(d.Jobs),
		Tasks:     len(d.Tasks),
		IORecords: len(d.IO),
	}
	users := map[string]bool{}
	projects := map[string]bool{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		users[j.User] = true
		projects[j.Project] = true
		s.CoreHours += j.CoreHours()
		if j.Outcome() == joblog.OutcomeSuccess {
			s.SuccessJobs++
		} else {
			s.FailedJobs++
		}
	}
	s.Users = len(users)
	s.Projects = len(projects)
	// Severity tallies come straight from the partition indexes; no rescan.
	s.RASTotal = len(d.Events)
	s.RASFatal = len(d.fatalIdx)
	s.RASWarn = len(d.warnIdx)
	s.RASInfo = d.infoN
	return s
}
