// Package core implements the paper's contribution: the joint
// failure-analysis engine over the four Mira logs. It classifies job
// failures (user- vs system-caused), correlates failures with users,
// projects and job structure, fits candidate distributions to execution
// lengths per exit family, performs similarity-based RAS event filtering,
// and derives the system's mean time to interruption (MTTI), spatial
// locality and temporal patterns.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/scan"
	"repro/internal/tasklog"
)

// Dataset bundles the four logs with the indices the analyses share.
// Build one with NewDataset; the struct is read-only afterwards and safe
// for concurrent use.
type Dataset struct {
	Jobs   []joblog.Job
	Tasks  []tasklog.Task
	Events []raslog.Event // sorted by time
	IO     []iolog.Record

	// ids holds the job ids in ascending order and byID maps each ids
	// position back to the Jobs position; Job() binary-searches ids.
	// Compared to a hash map the pair is built with one (usually no-op)
	// sort, costs twelve bytes per job, and needs no rehash or per-entry
	// allocation on the corpus-load hot path. Searching a contiguous int64
	// array keeps the hot upper tree levels in cache, unlike chasing job
	// structs through the permutation.
	ids  []int64
	byID []int32

	// Scheduler job ids are handed out sequentially, so a corpus slice
	// occupies a dense id range: posOf[id-idBase] resolves a job in O(1).
	// It stays nil for sparse id spaces, which fall back to the binary
	// search.
	posOf  []int32
	idBase int64

	// Per-job indexes aligned to Jobs: tasksOf[i] and eventsOf[i] belong to
	// Jobs[i]; ioOf[i] is a position in IO, or -1 if the job has no I/O
	// record.
	tasksOf  [][]tasklog.Task
	eventsOf [][]int
	ioOf     []int32

	// Records referencing a job id that matches no job land in the orphan
	// maps, preserving lookup behavior for inconsistent logs. They stay nil
	// for consistent corpora.
	orphanTasks  map[int64][]tasklog.Task
	orphanEvents map[int64][]int
	orphanIO     map[int64]iolog.Record

	// Severity-partitioned views into Events, built once: indices of FATAL
	// and WARN events in time order. Most analyses touch only these slivers
	// of the stream (FATALs are a tiny fraction of a RAS log), so they scan
	// the index instead of re-walking and re-testing every event.
	fatalIdx []int
	warnIdx  []int
	infoN    int // events that are neither FATAL nor WARN

	// SoA column views of the hot job/event columns for the fused scan
	// engine, built lazily on first use — or adopted straight from mirapack
	// column decode via AdoptViews, skipping the AoS re-walk. The Once pair
	// guards each view so concurrent analyses build it exactly once.
	jobViewOnce   sync.Once
	jobView       *scan.JobView
	eventViewOnce sync.Once
	eventView     *scan.EventView

	// Interned similarity keys of the FATAL/WARN views for the default
	// filter rule's key configuration, built lazily by the *Cached filter
	// entry points. Keys are window-independent, so one interning serves
	// every window an analysis sweeps.
	fatalKeyOnce sync.Once
	fatalKeys    internedKeys
	warnKeyOnce  sync.Once
	warnKeys     internedKeys

	// Selection machinery: per-dimension bitmap indexes over the column
	// views plus the compiled-predicate cache, built lazily on the first
	// SelectJobs/SelectEvents/FusedScanWhere call (selindex.go).
	selOnce sync.Once
	selx    *selIndexes

	start, end time.Time
}

// JobPos returns the position in Jobs of the job with the given id, so
// callers holding per-job derived series (slices aligned with Jobs, e.g.
// the experiments environment's core-hours cache) can index them by job id.
func (d *Dataset) JobPos(id int64) (int, bool) { return d.jobPos(id) }

// jobPos returns the position in Jobs of the job with the given id.
func (d *Dataset) jobPos(id int64) (int, bool) {
	if d.posOf != nil {
		off := id - d.idBase
		if off < 0 || off >= int64(len(d.posOf)) {
			return 0, false
		}
		if p := d.posOf[off]; p >= 0 {
			return int(p), true
		}
		return 0, false
	}
	ids := d.ids
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == id {
		return int(d.byID[lo]), true
	}
	return 0, false
}

// buildJobIndex builds ids/byID and rejects duplicate ids.
func (d *Dataset) buildJobIndex() error {
	jobs := d.Jobs
	d.ids = make([]int64, len(jobs))
	d.byID = make([]int32, len(jobs))
	sorted := true
	for i := range jobs {
		d.ids[i] = jobs[i].ID
		d.byID[i] = int32(i)
		if i > 0 && jobs[i].ID < jobs[i-1].ID {
			sorted = false
		}
	}
	if !sorted {
		byID, ids := d.byID, d.ids
		sort.Slice(byID, func(a, b int) bool { return jobs[byID[a]].ID < jobs[byID[b]].ID })
		for i, p := range byID {
			ids[i] = jobs[p].ID
		}
	}
	for i := 1; i < len(d.ids); i++ {
		if d.ids[i] == d.ids[i-1] {
			return fmt.Errorf("core: duplicate job id %d", d.ids[i])
		}
	}
	if n := len(d.ids); n > 0 {
		if span := d.ids[n-1] - d.ids[0] + 1; span <= int64(4*n+64) {
			d.idBase = d.ids[0]
			d.posOf = make([]int32, span)
			for i := range d.posOf {
				d.posOf[i] = -1
			}
			for i, id := range d.ids {
				d.posOf[id-d.idBase] = d.byID[i]
			}
		}
	}
	return nil
}

// jobCursor resolves an ascending stream of job ids to Jobs positions in
// O(1) amortized, advancing a cursor over the sorted index. An id that
// steps backwards falls back to a binary search without disturbing the
// cursor, so a mostly-sorted stream stays cheap.
type jobCursor struct {
	d *Dataset
	k int
}

func (c *jobCursor) pos(id int64) (int, bool) {
	ids := c.d.ids
	if c.k < len(ids) && ids[c.k] <= id {
		k := c.k
		for k < len(ids) && ids[k] < id {
			k++
		}
		c.k = k
		if k < len(ids) && ids[k] == id {
			return int(c.d.byID[k]), true
		}
		if k == len(ids) || ids[k] > id {
			return 0, false
		}
	}
	return c.d.jobPos(id)
}

// buildPerJob fills the tasksOf and ioOf indexes. A scheduler log records a
// job's tasks consecutively, so tasks group into runs, each adopted as a
// (capped) subslice without copying; a job id split across runs falls back
// to concatenating.
func (d *Dataset) buildPerJob() {
	// Tasks group into contiguous runs (a scheduler log records a job's
	// tasks consecutively) whose job ids follow execution order — close to
	// id order but with local inversions. Each run resolves through the
	// cursor (sequential advance when ascending, binary search over the
	// compact sorted-ids array otherwise) and is adopted as a (capped)
	// subslice without copying; a job id split across runs concatenates.
	d.tasksOf = make([][]tasklog.Task, len(d.Jobs))
	tasks := d.Tasks
	cur := jobCursor{d: d}
	for i := 0; i < len(tasks); {
		id := tasks[i].JobID
		j := i + 1
		for j < len(tasks) && tasks[j].JobID == id {
			j++
		}
		span := tasks[i:j:j]
		if p, ok := cur.pos(id); ok {
			if prev := d.tasksOf[p]; prev == nil {
				d.tasksOf[p] = span
			} else {
				d.tasksOf[p] = append(prev[:len(prev):len(prev)], span...)
			}
		} else {
			if d.orphanTasks == nil {
				d.orphanTasks = map[int64][]tasklog.Task{}
			}
			d.orphanTasks[id] = append(d.orphanTasks[id], span...)
		}
		i = j
	}
	d.ioOf = make([]int32, len(d.Jobs))
	for i := range d.ioOf {
		d.ioOf[i] = -1
	}
	cur = jobCursor{d: d}
	for i := range d.IO {
		id := d.IO[i].JobID
		if p, ok := cur.pos(id); ok {
			d.ioOf[p] = int32(i)
		} else {
			if d.orphanIO == nil {
				d.orphanIO = map[int64]iolog.Record{}
			}
			d.orphanIO[id] = d.IO[i]
		}
	}
}

// NewDataset indexes the logs. Events are sorted by time if they are not
// already; jobs and tasks are never reordered.
func NewDataset(jobs []joblog.Job, tasks []tasklog.Task, events []raslog.Event, ioRecs []iolog.Record) (*Dataset, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: dataset has no jobs")
	}
	d := &Dataset{Jobs: jobs, Tasks: tasks, Events: events, IO: ioRecs}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) }) {
		sorted := append([]raslog.Event(nil), events...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
		d.Events = sorted
	}
	if err := d.buildJobIndex(); err != nil {
		return nil, err
	}
	d.buildPerJob()
	d.start = jobs[0].Submit
	d.end = jobs[0].End
	for i := range jobs {
		j := &jobs[i]
		if j.Submit.Before(d.start) {
			d.start = j.Submit
		}
		if j.End.After(d.end) {
			d.end = j.End
		}
	}
	for i := range events {
		if t := events[i].Time; t.Before(d.start) {
			d.start = t
		} else if t.After(d.end) {
			d.end = t
		}
	}
	d.eventsOf = make([][]int, len(jobs))
	for i := range d.Events {
		switch d.Events[i].Sev {
		case raslog.Fatal:
			d.fatalIdx = append(d.fatalIdx, i)
		case raslog.Warn:
			d.warnIdx = append(d.warnIdx, i)
		default:
			d.infoN++
		}
		if id := d.Events[i].JobID; id != 0 {
			if p, ok := d.jobPos(id); ok {
				d.eventsOf[p] = append(d.eventsOf[p], i)
			} else {
				if d.orphanEvents == nil {
					d.orphanEvents = map[int64][]int{}
				}
				d.orphanEvents[id] = append(d.orphanEvents[id], i)
			}
		}
	}
	return d, nil
}

// FatalEvents returns the indices (into Events) of the FATAL events, in time
// order. The slice is shared — callers must not modify it.
func (d *Dataset) FatalEvents() []int { return d.fatalIdx }

// WarnEvents returns the indices (into Events) of the WARN events, in time
// order. The slice is shared — callers must not modify it.
func (d *Dataset) WarnEvents() []int { return d.warnIdx }

// EventsBetween returns the events with t0 ≤ Time < t1 as a subslice of
// Events (no copy), found by binary search on the time-sorted stream.
func (d *Dataset) EventsBetween(t0, t1 time.Time) []raslog.Event {
	lo := sort.Search(len(d.Events), func(i int) bool { return !d.Events[i].Time.Before(t0) })
	hi := sort.Search(len(d.Events), func(i int) bool { return !d.Events[i].Time.Before(t1) })
	if lo >= hi {
		return nil
	}
	return d.Events[lo:hi]
}

// EventsOf returns the indices (into Events) of the events attributed to the
// job (nil if none), in time order. The slice is shared — callers must not
// modify it.
func (d *Dataset) EventsOf(id int64) []int {
	if p, ok := d.jobPos(id); ok {
		return d.eventsOf[p]
	}
	return d.orphanEvents[id]
}

// Span returns the observation window covered by the dataset.
func (d *Dataset) Span() (start, end time.Time) { return d.start, d.end }

// Days returns the observation span in (fractional) days.
func (d *Dataset) Days() float64 { return d.end.Sub(d.start).Hours() / 24 }

// Job returns the job with the given ID.
func (d *Dataset) Job(id int64) (*joblog.Job, bool) {
	if p, ok := d.jobPos(id); ok {
		return &d.Jobs[p], true
	}
	return nil, false
}

// TasksOf returns the tasks of a job (nil if none recorded).
func (d *Dataset) TasksOf(id int64) []tasklog.Task {
	if p, ok := d.jobPos(id); ok {
		return d.tasksOf[p]
	}
	return d.orphanTasks[id]
}

// IOOf returns the I/O record of a job if one was captured.
func (d *Dataset) IOOf(id int64) (iolog.Record, bool) {
	if p, ok := d.jobPos(id); ok {
		if j := d.ioOf[p]; j >= 0 {
			return d.IO[j], true
		}
		return iolog.Record{}, false
	}
	r, ok := d.orphanIO[id]
	return r, ok
}

// Summary holds the dataset-level statistics of Table I.
type Summary struct {
	Days        float64
	Jobs        int
	Tasks       int
	Users       int
	Projects    int
	CoreHours   float64
	RASTotal    int
	RASFatal    int
	RASWarn     int
	RASInfo     int
	IORecords   int
	FailedJobs  int
	SuccessJobs int
}

// Summarize computes the Table-I style dataset summary.
func (d *Dataset) Summarize() Summary {
	s := Summary{
		Days:      d.Days(),
		Jobs:      len(d.Jobs),
		Tasks:     len(d.Tasks),
		IORecords: len(d.IO),
	}
	users := map[string]bool{}
	projects := map[string]bool{}
	// Core-hours accumulate as exact integer core-seconds (see
	// joblog.Job.CoreSeconds) so the total matches the fused scan engine's
	// sharded sum bit-for-bit regardless of summation order.
	var coreSec int64
	for i := range d.Jobs {
		j := &d.Jobs[i]
		users[j.User] = true
		projects[j.Project] = true
		coreSec += j.CoreSeconds()
		if j.Outcome() == joblog.OutcomeSuccess {
			s.SuccessJobs++
		} else {
			s.FailedJobs++
		}
	}
	s.CoreHours = float64(coreSec) / 3600
	s.Users = len(users)
	s.Projects = len(projects)
	// Severity tallies come straight from the partition indexes; no rescan.
	s.RASTotal = len(d.Events)
	s.RASFatal = len(d.fatalIdx)
	s.RASWarn = len(d.warnIdx)
	s.RASInfo = d.infoN
	return s
}
