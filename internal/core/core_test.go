package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/sim"
)

// corpus/dataset shared across the package tests (90 days: enough failures
// for every analysis, still fast).
var (
	testCorpus  *sim.Corpus
	testDataset *Dataset
)

func dataset(t *testing.T) (*Dataset, *sim.Corpus) {
	t.Helper()
	if testDataset == nil {
		cfg := sim.SmallConfig()
		cfg.Days = 90
		cfg.NumUsers = 200
		cfg.NumProjects = 60
		c, err := sim.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
		if err != nil {
			t.Fatal(err)
		}
		testCorpus = c
		testDataset = d
	}
	return testDataset, testCorpus
}

func TestNewDatasetErrors(t *testing.T) {
	if _, err := NewDataset(nil, nil, nil, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	jobs := []joblog.Job{{ID: 1}, {ID: 1}}
	if _, err := NewDataset(jobs, nil, nil, nil); err == nil {
		t.Error("duplicate job ids accepted")
	}
}

func TestDatasetSortsEvents(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	jobs := []joblog.Job{{ID: 1, User: "u", Project: "p", Submit: base, Start: base, End: base.Add(time.Hour), Nodes: 512, RanksPerNode: 16, NumTasks: 1}}
	events := []raslog.Event{
		{RecID: 1, Time: base.Add(2 * time.Hour), Sev: raslog.Info},
		{RecID: 2, Time: base, Sev: raslog.Info},
	}
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Events[0].RecID != 2 {
		t.Error("events not re-sorted by time")
	}
	// Span covers both jobs and events.
	start, end := d.Span()
	if !start.Equal(base) || !end.Equal(base.Add(2*time.Hour)) {
		t.Errorf("span = %v..%v", start, end)
	}
}

func TestSummarizeConsistent(t *testing.T) {
	d, c := dataset(t)
	s := d.Summarize()
	if s.Jobs != len(c.Jobs) || s.Tasks != len(c.Tasks) || s.RASTotal != len(c.Events) || s.IORecords != len(c.IO) {
		t.Errorf("summary counts wrong: %+v", s)
	}
	if s.FailedJobs+s.SuccessJobs != s.Jobs {
		t.Error("failed+success != jobs")
	}
	if s.RASFatal+s.RASWarn+s.RASInfo != s.RASTotal {
		t.Error("severity counts do not sum")
	}
	if s.Days < 89 || s.Days > 92 {
		t.Errorf("days = %v, want ≈90", s.Days)
	}
	if s.CoreHours <= 0 {
		t.Error("no core-hours")
	}
	if s.Users == 0 || s.Projects == 0 {
		t.Error("no users/projects")
	}
}

func TestClassifyByExitMatchesTruth(t *testing.T) {
	d, c := dataset(t)
	cls := d.ClassifyByExit()
	if cls.Total != len(c.Jobs) {
		t.Errorf("total = %d", cls.Total)
	}
	if cls.Failed != c.Truth.UserFailedJobs+c.Truth.SystemKilledJobs {
		t.Errorf("failed = %d, truth %d", cls.Failed, c.Truth.UserFailedJobs+c.Truth.SystemKilledJobs)
	}
	if cls.SystemCause != c.Truth.SystemKilledJobs {
		t.Errorf("system = %d, truth %d", cls.SystemCause, c.Truth.SystemKilledJobs)
	}
	if cls.UserCaused != c.Truth.UserFailedJobs {
		t.Errorf("user = %d, truth %d", cls.UserCaused, c.Truth.UserFailedJobs)
	}
	if cls.UserShare() < 0.95 {
		t.Errorf("user share = %v", cls.UserShare())
	}
	// The cause map partitions the job set.
	counts := map[Cause]int{}
	for _, cause := range cls.Causes {
		counts[cause]++
	}
	if counts[CauseNone]+counts[CauseUser]+counts[CauseSystem] != cls.Total {
		t.Error("causes do not partition jobs")
	}
}

func TestClassifyJointAgreesWithExit(t *testing.T) {
	d, c := dataset(t)
	exit := d.ClassifyByExit()
	joint := d.ClassifyJoint(DefaultJointOptions())
	if joint.Total != exit.Total || joint.Failed != exit.Failed {
		t.Fatalf("joint totals differ: %+v vs %+v", joint, exit)
	}
	// Joint must find every truth-killed job (they have attributed FATALs
	// or block-matching events at their end) and may add a few
	// coincidental matches (user failure near an idle-hardware event).
	if joint.SystemCause < c.Truth.SystemKilledJobs {
		t.Errorf("joint system %d < truth %d", joint.SystemCause, c.Truth.SystemKilledJobs)
	}
	extra := joint.SystemCause - c.Truth.SystemKilledJobs
	if float64(extra) > 0.02*float64(joint.Failed) {
		t.Errorf("joint over-attributes: %d extra of %d failed", extra, joint.Failed)
	}
	// Every exit-classified system job must be joint-classified system.
	for id, cause := range exit.Causes {
		if cause == CauseSystem && joint.Causes[id] != CauseSystem {
			t.Errorf("job %d: exit says system, joint says %v", id, joint.Causes[id])
		}
	}
}

func TestCauseString(t *testing.T) {
	for c, want := range map[Cause]string{
		CauseNone: "none", CauseUser: "user", CauseSystem: "system", Cause(9): "unknown",
	} {
		if c.String() != want {
			t.Errorf("Cause(%d) = %q", int(c), c.String())
		}
	}
}

func TestAggregateAndConcentration(t *testing.T) {
	d, c := dataset(t)
	cls := d.ClassifyByExit()
	users := d.Aggregate(ByUser, cls)
	if len(users) == 0 {
		t.Fatal("no user groups")
	}
	totJobs, totFailed := 0, 0
	for _, g := range users {
		totJobs += g.Jobs
		totFailed += g.Failed
		if g.FailRate < 0 || g.FailRate > 1 {
			t.Errorf("fail rate %v", g.FailRate)
		}
	}
	if totJobs != len(c.Jobs) {
		t.Errorf("group jobs %d != %d", totJobs, len(c.Jobs))
	}
	if totFailed != cls.Failed {
		t.Errorf("group failed %d != %d", totFailed, cls.Failed)
	}
	// Sorted by job count.
	for i := 1; i < len(users); i++ {
		if users[i].Jobs > users[i-1].Jobs {
			t.Fatal("groups not sorted")
		}
	}
	conc, err := d.Concentration(ByUser, cls)
	if err != nil {
		t.Fatal(err)
	}
	if conc.GiniJobs <= 0.2 {
		t.Errorf("workload should be skewed, gini = %v", conc.GiniJobs)
	}
	if conc.Top10JobShare <= float64(10)/float64(conc.Groups) {
		t.Errorf("top-10 share %v not above uniform", conc.Top10JobShare)
	}
	if conc.PearsonJobsFailures < 0.5 {
		t.Errorf("jobs↔failures correlation %v too weak", conc.PearsonJobsFailures)
	}
	if conc.CramersV <= 0.05 {
		t.Errorf("user↔outcome V = %v, want clearly > 0", conc.CramersV)
	}
	top := TopGroups(users, 5)
	if len(top) != 5 || top[0].Jobs < top[4].Jobs {
		t.Error("TopGroups wrong")
	}
	failTop := TopFailing(users, 5)
	for i := 1; i < len(failTop); i++ {
		if failTop[i].Failed > failTop[i-1].Failed {
			t.Error("TopFailing not sorted")
		}
	}
}

func TestFailureByStructure(t *testing.T) {
	d, c := dataset(t)
	for _, dim := range []StructureDim{DimNodes, DimTasks, DimCoreHours, DimRuntime} {
		res, err := d.FailureByStructure(dim)
		if err != nil {
			t.Fatalf("%v: %v", dim, err)
		}
		tot := 0
		for _, b := range res.Buckets {
			tot += b.Jobs
			if b.Failed > b.Jobs {
				t.Errorf("%v: bucket failed > jobs", dim)
			}
		}
		if tot != len(c.Jobs) {
			t.Errorf("%v: buckets cover %d of %d jobs", dim, tot, len(c.Jobs))
		}
		if math.IsNaN(res.SpearmanTrend) {
			t.Errorf("%v: NaN trend", dim)
		}
	}
	// Node buckets are the block sizes.
	res, _ := d.FailureByStructure(DimNodes)
	if len(res.Buckets) != 8 || res.Buckets[0].Lo != 512 {
		t.Errorf("node buckets = %+v", res.Buckets)
	}
}

func TestStructureSummary(t *testing.T) {
	d, c := dataset(t)
	s, err := d.StructureSummary()
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes.Min < 512 || s.Nodes.Max > 49152 {
		t.Errorf("node range [%v,%v]", s.Nodes.Min, s.Nodes.Max)
	}
	tot := 0
	for size, n := range s.SizeHistogram {
		if !machine.ValidBlockNodes(size) {
			t.Errorf("bad size %d in histogram", size)
		}
		tot += n
	}
	if tot != len(c.Jobs) {
		t.Errorf("size histogram covers %d jobs", tot)
	}
	if s.Tasks.Min < 1 {
		t.Error("tasks < 1")
	}
}

func TestExecutionLengthCDFs(t *testing.T) {
	d, _ := dataset(t)
	succ, fail := d.ExecutionLengthCDFs()
	if len(succ) == 0 || len(fail) == 0 {
		t.Fatal("empty CDFs")
	}
	// Sorted ascending.
	for i := 1; i < len(succ); i++ {
		if succ[i] < succ[i-1] {
			t.Fatal("success CDF unsorted")
		}
	}
	// Failed jobs skew shorter (infant mortality dominates the mix).
	if medianOf(fail) >= medianOf(succ) {
		t.Errorf("failed median %v ≥ success median %v", medianOf(fail), medianOf(succ))
	}
}

func TestTemporalProfile(t *testing.T) {
	d, c := dataset(t)
	p := d.Temporal()
	jobs, fails := 0, 0
	for h := 0; h < 24; h++ {
		jobs += p.JobsByHour[h]
		fails += p.FailsByHour[h]
	}
	if jobs != len(c.Jobs) {
		t.Errorf("hourly jobs %d != %d", jobs, len(c.Jobs))
	}
	cls := d.ClassifyByExit()
	if fails != cls.Failed {
		t.Errorf("hourly fails %d != %d", fails, cls.Failed)
	}
	// Diurnal pattern: night hours (modulated at 0.55) have fewer jobs.
	night := p.JobsByHour[3]
	day := p.JobsByHour[14]
	if night >= day {
		t.Errorf("night %d ≥ day %d, diurnal modulation missing", night, day)
	}
	// Monthly series covers ~3 months and sums correctly.
	if len(p.Months) < 3 || len(p.Months) > 5 {
		t.Errorf("months = %v", p.Months)
	}
	mj := 0
	for _, v := range p.JobsByMonth {
		mj += v
	}
	if mj != len(c.Jobs) {
		t.Errorf("monthly jobs %d != %d", mj, len(c.Jobs))
	}
	rates := p.FailRateByHour()
	for h, r := range rates {
		if r < 0 || r > 1 {
			t.Errorf("rate[%d] = %v", h, r)
		}
	}
}

func TestIOBehavior(t *testing.T) {
	d, _ := dataset(t)
	io, err := d.IOBehavior()
	if err != nil {
		t.Fatal(err)
	}
	if io.SampledJobs == 0 {
		t.Fatal("no sampled jobs")
	}
	// The injected model cuts failed jobs' I/O: success median must exceed
	// failed median clearly.
	if io.MedianRatio < 1.5 {
		t.Errorf("median ratio %v, want > 1.5", io.MedianRatio)
	}
	if io.KSBytes < 0.1 {
		t.Errorf("KS %v, want clear separation", io.KSBytes)
	}
	if io.SpearmanBytesOutcome <= 0 {
		t.Errorf("bytes↔success correlation %v, want positive", io.SpearmanBytesOutcome)
	}
}

func TestInterruptsByUser(t *testing.T) {
	d, _ := dataset(t)
	cls := d.ClassifyByExit()
	res, err := d.InterruptsByUser(cls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Users == 0 || res.Interrupted == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.PearsonCHInterrupts <= 0 {
		t.Errorf("core-hours↔interrupts r = %v, want positive", res.PearsonCHInterrupts)
	}
	if res.TopDecileShare <= 0.1 {
		t.Errorf("top decile share %v, want above uniform", res.TopDecileShare)
	}
}

func TestTakeaways(t *testing.T) {
	d, _ := dataset(t)
	ts, err := d.Takeaways()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 22 {
		t.Fatalf("got %d takeaways, want 22", len(ts))
	}
	seen := map[string]bool{}
	for i, tk := range ts {
		if tk.ID != i+1 {
			t.Errorf("takeaway %d has id %d", i, tk.ID)
		}
		if tk.Text == "" || tk.Tag == "" {
			t.Errorf("takeaway %d empty", tk.ID)
		}
		if seen[tk.Tag] {
			t.Errorf("duplicate tag %s", tk.Tag)
		}
		seen[tk.Tag] = true
	}
}
