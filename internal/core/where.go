package core

import (
	"time"

	"repro/internal/bitmap"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/scan"
	"repro/internal/sel"
)

// FusedScanWhere runs the fused analysis suite over the cohort a predicate
// selects, without materializing a filtered dataset: the compiled job and
// event selections push down into the scan engine, which skips unselected
// blocks and feeds the kernels only the selected row runs. The profile is
// bit-identical to FusedScan over MaterializeWhere(e) — same numbers a
// filter-then-scan would produce — at any worker count (DESIGN.md §14).
//
// A nil predicate profiles the whole corpus.
func (d *Dataset) FusedScanWhere(e sel.Expr, workers int) (*FusedProfile, error) {
	if e == nil {
		return d.FusedScan(workers)
	}
	jobSel, eventSel, err := d.CompileWhere(e)
	if err != nil {
		return nil, err
	}
	return d.fusedScanSel(jobSel, eventSel, workers)
}

// fusedScanSel is FusedScan restricted to the given row selections (nil =
// all rows on that side).
func (d *Dataset) fusedScanSel(jobSel, eventSel *bitmap.Bitmap, workers int) (*FusedProfile, error) {
	if jobSel == nil && eventSel == nil {
		return d.FusedScan(workers)
	}
	jv := d.JobView()
	ev := d.EventView()
	// The temporal kernel and Summary.Days depend on the observation span,
	// which for a cohort is the span NewDataset would derive from the
	// selected records — computed in a cheap pre-pass so day bins line up
	// exactly with a materialized dataset's.
	start, end := d.cohortSpan(jobSel, eventSel)
	tk := newTemporalJobKernelSpan(start, end)
	jobKernels := []JobKernel{
		summaryKernel{},
		exitTallyKernel{},
		newJointKernelWhere(d, DefaultJointOptions(), eventSel),
		newGroupKernel(ByUser, len(jv.Users)),
		newGroupKernel(ByProject, len(jv.Projects)),
		wasteKernel{},
		tk,
	}
	jsts, err := scan.RunWhere(jv, jv.N, jobSel, jobKernels, workers)
	if err != nil {
		return nil, err
	}
	eventKernels := []EventKernel{
		&profileKernel{nCats: len(ev.Cats), nComps: len(ev.Comps)},
		&temporalEventKernel{monthCap: tk.monthCap},
		&localityKernel{level: machine.LevelMidplane},
		&localityKernel{level: machine.LevelRack},
	}
	ests, err := scan.RunWhere(ev, ev.N, eventSel, eventKernels, workers)
	if err != nil {
		return nil, err
	}

	p := &FusedProfile{jv: jv, jobSel: jobSel}
	sum := jsts[0].(*summaryState)
	prof := ests[0].(*profileState)
	nJobs, nTasks, nIO := d.cohortJobCounts(jobSel)
	nEvents := len(d.Events)
	if eventSel != nil {
		nEvents = eventSel.Cardinality()
	}
	p.Exit = jsts[1].(*exitTallyState).t
	p.Joint = jsts[2].(*jointState).t
	p.UserGroups = jsts[3].(*groupState).finish(jv.Users)
	p.ProjectGroups = jsts[4].(*groupState).finish(jv.Projects)
	p.Waste = jsts[5].(*wasteState).finish()
	p.Temporal = finishTemporal(jsts[6].(*temporalJobState), ests[1].(*temporalEventState))
	p.RAS = prof.finish(ev)
	p.localityMid, p.localityMidErr = ests[2].(*localityState).finish()
	p.localityRack, p.localityRackErr = ests[3].(*localityState).finish()
	p.Interrupts, p.InterruptsErr = interruptsFromGroups(p.UserGroups)
	p.Summary = Summary{
		Days:        end.Sub(start).Hours() / 24,
		Jobs:        nJobs,
		Tasks:       nTasks,
		Users:       len(p.UserGroups),
		Projects:    len(p.ProjectGroups),
		CoreHours:   float64(sum.coreSec) / 3600,
		RASTotal:    nEvents,
		RASFatal:    prof.sevs[raslog.Fatal],
		RASWarn:     prof.sevs[raslog.Warn],
		RASInfo:     nEvents - prof.sevs[raslog.Fatal] - prof.sevs[raslog.Warn],
		IORecords:   nIO,
		FailedJobs:  sum.failed,
		SuccessJobs: sum.success,
	}
	return p, nil
}

// cohortJobCounts tallies the selected jobs and their task and I/O record
// counts (the Summary rows a materialized dataset would report).
func (d *Dataset) cohortJobCounts(jobSel *bitmap.Bitmap) (jobs, tasks, io int) {
	if jobSel == nil {
		return len(d.Jobs), len(d.Tasks), len(d.IO)
	}
	jobSel.Iterate(func(row uint32) bool {
		jobs++
		tasks += len(d.tasksOf[row])
		if d.ioOf[row] >= 0 {
			io++
		}
		return true
	})
	return jobs, tasks, io
}

// cohortSpan computes the observation window of the selected records with
// exactly NewDataset's min/max walk — first selected job seeds the bounds,
// jobs widen by Submit/End, then events widen in the same else-if pattern —
// so a cohort profile's calendar math matches a materialized dataset's
// bit for bit. An empty cohort yields the zero span.
func (d *Dataset) cohortSpan(jobSel, eventSel *bitmap.Bitmap) (start, end time.Time) {
	seeded := false
	forEachSelected(jobSel, len(d.Jobs), func(row int) {
		j := &d.Jobs[row]
		if !seeded {
			start, end = j.Submit, j.End
			seeded = true
			return
		}
		if j.Submit.Before(start) {
			start = j.Submit
		}
		if j.End.After(end) {
			end = j.End
		}
	})
	forEachSelected(eventSel, len(d.Events), func(row int) {
		t := d.Events[row].Time
		if !seeded {
			start, end = t, t
			seeded = true
			return
		}
		if t.Before(start) {
			start = t
		} else if t.After(end) {
			end = t
		}
	})
	return start, end
}

// forEachSelected visits the selected rows in ascending order; a nil
// selection visits all n rows.
func forEachSelected(sel *bitmap.Bitmap, n int, f func(row int)) {
	if sel == nil {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	sel.Iterate(func(row uint32) bool {
		f(int(row))
		return true
	})
}

// MaterializeWhere builds the filtered dataset a predicate describes: the
// selected jobs with their tasks and I/O records, and the selected events.
// It is the reference (copy) path FusedScanWhere makes unnecessary — kept
// for the equivalence suite, the cohort benchmarks, and callers that need
// a real Dataset to hand to non-fused analyses.
func (d *Dataset) MaterializeWhere(e sel.Expr) (*Dataset, error) {
	jobSel, eventSel, err := d.CompileWhere(e)
	if err != nil {
		return nil, err
	}
	return d.materializeSel(jobSel, eventSel)
}

func (d *Dataset) materializeSel(jobSel, eventSel *bitmap.Bitmap) (*Dataset, error) {
	jobs := d.Jobs
	tasks := d.Tasks
	io := d.IO
	if jobSel != nil {
		jobs = make([]joblog.Job, 0, jobSel.Cardinality())
		tasks = nil
		io = nil
		jobSel.Iterate(func(row uint32) bool {
			jobs = append(jobs, d.Jobs[row])
			tasks = append(tasks, d.tasksOf[row]...)
			if p := d.ioOf[row]; p >= 0 {
				io = append(io, d.IO[p])
			}
			return true
		})
	}
	events := d.Events
	if eventSel != nil {
		events = make([]raslog.Event, 0, eventSel.Cardinality())
		eventSel.Iterate(func(row uint32) bool {
			events = append(events, d.Events[row])
			return true
		})
	}
	return NewDataset(jobs, tasks, events, io)
}
