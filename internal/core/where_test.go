package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sel"
)

// equivalencePredicates builds the suite of -where expressions the
// pushdown contract is verified against, drawing concrete values (users,
// categories, time windows) from the dataset so every shape selects a
// meaningful cohort.
func equivalencePredicates(t *testing.T, d *Dataset) []string {
	t.Helper()
	jv, ev := d.JobView(), d.EventView()
	start, end := d.Span()
	mid := start.Add(end.Sub(start) / 2)
	day := func(ti interface{ Format(string) string }) string { return ti.Format("2006-01-02") }
	preds := []string{
		// Dictionary equality and disjunction on the job side.
		fmt.Sprintf("user == %s", jv.Users[0]),
		fmt.Sprintf("user == %s or project == %s", jv.Users[1], jv.Projects[0]),
		fmt.Sprintf("user in (%s, %s, %s)", jv.Users[0], jv.Users[2], jv.Users[3]),
		// Exit-family index, including negation against the universe.
		"exit == system",
		"exit in (killed, segfault)",
		"not exit == success",
		// Numeric column scans.
		"nodes >= 1024",
		"dur > 3600 and nodes < 4096",
		// Submit-time day buckets (sub-month window with ragged edges).
		fmt.Sprintf("submit >= %s and submit < %s", day(start.AddDate(0, 0, 10)), day(start.AddDate(0, 0, 41))),
		// Event-side selections: severity, category dictionary, time range.
		"sev == FATAL",
		fmt.Sprintf("cat == %s", ev.Cats[0]),
		fmt.Sprintf("sev != INFO and time < %s", day(mid)),
		// Spatial index (may select few or no events — both legal).
		"midplane == R00-M0 or rack == R01",
		// Mixed job+event cohort via top-level conjunction.
		fmt.Sprintf("project == %s and sev == FATAL", jv.Projects[1]),
		fmt.Sprintf("submit >= %s and time >= %s and exit != success",
			day(start.AddDate(0, 1, 0)), day(start.AddDate(0, 1, 0))),
	}
	return preds
}

// profileFields compares every exported aggregate of two fused profiles.
func profileFields(t *testing.T, label string, got, want *FusedProfile) {
	t.Helper()
	cmp := func(name string, g, w interface{}) {
		t.Helper()
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: %s differs:\n  got  %+v\n  want %+v", label, name, g, w)
		}
	}
	cmp("Summary", got.Summary, want.Summary)
	cmp("Exit", got.Exit, want.Exit)
	cmp("Joint", got.Joint, want.Joint)
	cmp("UserGroups", got.UserGroups, want.UserGroups)
	cmp("ProjectGroups", got.ProjectGroups, want.ProjectGroups)
	cmp("Temporal", got.Temporal, want.Temporal)
	cmp("RAS", got.RAS, want.RAS)
	cmp("Waste", got.Waste, want.Waste)
	cmp("Interrupts", got.Interrupts, want.Interrupts)
	cmp("InterruptsErr", fmt.Sprint(got.InterruptsErr), fmt.Sprint(want.InterruptsErr))
	for _, lvl := range []struct {
		name       string
		g, w       *LocalityResult
		gErr, wErr error
	}{
		{"Locality(mid)", got.localityMid, want.localityMid, got.localityMidErr, want.localityMidErr},
		{"Locality(rack)", got.localityRack, want.localityRack, got.localityRackErr, want.localityRackErr},
	} {
		cmp(lvl.name, lvl.g, lvl.w)
		cmp(lvl.name+" err", fmt.Sprint(lvl.gErr), fmt.Sprint(lvl.wErr))
	}
	for _, by := range []GroupBy{ByUser, ByProject} {
		g, gErr := got.Concentration(by)
		w, wErr := want.Concentration(by)
		cmp("Concentration("+by.String()+")", g, w)
		cmp("Concentration("+by.String()+") err", fmt.Sprint(gErr), fmt.Sprint(wErr))
	}
}

// TestFusedScanWhereEquivalence is the pushdown acceptance suite: for
// every predicate, FusedScanWhere must reproduce filter-then-FusedScan
// exactly, and must itself be identical across worker counts.
func TestFusedScanWhereEquivalence(t *testing.T) {
	d, _ := dataset(t)
	for _, where := range equivalencePredicates(t, d) {
		e, err := sel.Parse(where)
		if err != nil {
			t.Fatalf("parse %q: %v", where, err)
		}
		md, err := d.MaterializeWhere(e)
		if err != nil {
			t.Fatalf("materialize %q: %v", where, err)
		}
		want, err := md.FusedScan(4)
		if err != nil {
			t.Fatalf("reference scan %q: %v", where, err)
		}
		var first *FusedProfile
		for _, workers := range []int{1, 4, 8} {
			got, err := d.FusedScanWhere(e, workers)
			if err != nil {
				t.Fatalf("FusedScanWhere(%q, workers=%d): %v", where, workers, err)
			}
			profileFields(t, fmt.Sprintf("%q workers=%d vs materialized", where, workers), got, want)
			if first == nil {
				first = got
			} else {
				profileFields(t, fmt.Sprintf("%q workers=%d vs workers=1", where, workers), got, first)
			}
		}
	}
}

// TestFusedScanWhereNilPredicate pins the degenerate path: no predicate
// means the plain whole-corpus FusedScan.
func TestFusedScanWhereNilPredicate(t *testing.T) {
	d, _ := dataset(t)
	want, err := d.FusedScan(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.FusedScanWhere(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	profileFields(t, "nil predicate", got, want)
}

// TestSelectionCacheReuse checks repeated queries hand back the same
// compiled bitmap (the warm path the cohort accessors rely on).
func TestSelectionCacheReuse(t *testing.T) {
	d, _ := dataset(t)
	e, err := sel.Parse("exit == system or nodes >= 2048")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := d.SelectJobs(e)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.SelectJobs(e)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("compiled selection was not cached")
	}
	if b1.IsEmpty() {
		t.Error("predicate selected no jobs in the 90-day corpus")
	}
}

// TestCompileWhereErrors pins the compiler's error surface.
func TestCompileWhereErrors(t *testing.T) {
	d, _ := dataset(t)
	for _, bad := range []string{
		"bogus == 1",                   // unknown column
		"user == u000 or sev == FATAL", // cross-domain disjunct
		"sev == BOGUS",                 // bad severity
		"nodes >= abc",                 // bad number
		"midplane == R00",              // rack given for midplane column
		"rack == R00-M0",               // midplane given for rack column
		"submit >= notadate",           // bad timestamp
		"user < u100",                  // dictionary column has no order
	} {
		e, err := sel.Parse(bad)
		if err != nil {
			t.Fatalf("parse %q: %v", bad, err)
		}
		if _, _, err := d.CompileWhere(e); err == nil {
			t.Errorf("CompileWhere(%q) succeeded, want error", bad)
		}
	}
}

// TestSelectEventsMatchesSweep cross-checks a few index-served selections
// against a naive row sweep.
func TestSelectEventsMatchesSweep(t *testing.T) {
	d, _ := dataset(t)
	ev := d.EventView()
	e, err := sel.Parse("sev == FATAL or sev == WARN")
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.SelectEvents(e)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < ev.N; i++ {
		want := ev.Sev[i] == 2 || ev.Sev[i] == 3
		if got := b.Contains(uint32(i)); got != want {
			t.Fatalf("event %d: selected=%v, want %v", i, got, want)
		}
		if want {
			n++
		}
	}
	if b.Cardinality() != n {
		t.Errorf("cardinality %d, want %d", b.Cardinality(), n)
	}
}

func TestIndexStats(t *testing.T) {
	d, _ := dataset(t)
	stats := d.IndexStats()
	byCol := map[string]IndexStat{}
	for _, s := range stats {
		byCol[s.Domain+"."+s.Column] = s
	}
	jv, ev := d.JobView(), d.EventView()
	if s := byCol["job.user"]; s.Keys != len(jv.Users) || s.Rows != jv.N {
		t.Errorf("job.user stat = %+v, want %d keys covering %d rows", s, len(jv.Users), jv.N)
	}
	if s := byCol["event.sev"]; s.Rows != ev.N {
		t.Errorf("event.sev stat = %+v, want %d rows", s, ev.N)
	}
	for _, s := range stats {
		if s.Rows > 0 && s.Bytes == 0 {
			t.Errorf("%s.%s: %d rows but zero compressed bytes", s.Domain, s.Column, s.Rows)
		}
	}
}
