package core

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/raslog"
)

// serviceScenario: two actions on one midplane (2h, 1h), one unmatched
// begin, one unmatched end elsewhere.
func serviceScenario(t *testing.T) []raslog.Event {
	t.Helper()
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	locA := machine.MustMidplane(3, 0)
	locB := machine.MustMidplane(40, 1)
	locC := machine.MustMidplane(10, 0)
	mk := func(id int64, msg string, at time.Time, loc machine.Location) raslog.Event {
		return raslog.Event{
			RecID: id, MsgID: msg, Comp: raslog.CompMMCS, Cat: raslog.CatInfra,
			Sev: raslog.Info, Time: at, Loc: loc, Count: 1, Message: "svc",
		}
	}
	return []raslog.Event{
		mk(1, raslog.MsgServiceBegin, base, locA),
		mk(2, raslog.MsgServiceEnd, base.Add(2*time.Hour), locA),
		mk(3, raslog.MsgServiceBegin, base.Add(5*time.Hour), locA),
		mk(4, raslog.MsgServiceEnd, base.Add(6*time.Hour), locA),
		mk(5, raslog.MsgServiceBegin, base.Add(8*time.Hour), locB), // never ends
		mk(6, raslog.MsgServiceEnd, base.Add(9*time.Hour), locC),   // never began
	}
}

func TestAvailabilityScenario(t *testing.T) {
	events := serviceScenario(t)
	jobs := testJobsForEvents(t, events)
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceActions != 2 {
		t.Fatalf("actions = %d, want 2", res.ServiceActions)
	}
	if res.UnmatchedBegins != 1 {
		t.Errorf("unmatched begins = %d, want 1", res.UnmatchedBegins)
	}
	if res.DownMidplaneHours != 3 {
		t.Errorf("down hours = %v, want 3", res.DownMidplaneHours)
	}
	if res.MeanRepairH != 1.5 || res.MedianRepairH != 1.5 {
		t.Errorf("repair stats = %v/%v, want 1.5/1.5", res.MeanRepairH, res.MedianRepairH)
	}
	if res.Availability <= 0.99 || res.Availability >= 1 {
		t.Errorf("availability = %v", res.Availability)
	}
	if res.BestFit.Dist != nil {
		t.Error("best fit should be skipped below 30 samples")
	}
}

func TestAvailabilityNoActions(t *testing.T) {
	events := precursorScenario(t) // no service messages
	jobs := testJobsForEvents(t, events)
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Availability(); err == nil {
		t.Error("stream without service actions accepted")
	}
}

func TestAvailabilityOnCorpus(t *testing.T) {
	d, c := dataset(t)
	res, err := d.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceActions == 0 || res.UnmatchedBegins > res.ServiceActions {
		t.Fatalf("degenerate: %+v", res)
	}
	// The log-derived downtime matches the generator's ground truth
	// within the window-truncation slack.
	if res.DownMidplaneHours > c.Truth.RepairMidplaneHours*1.01 ||
		res.DownMidplaneHours < c.Truth.RepairMidplaneHours*0.85 {
		t.Errorf("downtime %v vs truth %v", res.DownMidplaneHours, c.Truth.RepairMidplaneHours)
	}
	if res.Availability < 0.99 || res.Availability >= 1 {
		t.Errorf("availability = %v", res.Availability)
	}
	// Injected lognormal(median 4h): median recovered within 30%.
	if res.MedianRepairH < 2.8 || res.MedianRepairH > 5.2 {
		t.Errorf("median repair %vh, want ≈4", res.MedianRepairH)
	}
}
