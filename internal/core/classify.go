package core

import (
	"sort"
	"time"

	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
)

// Cause is the root-cause class of a job failure.
type Cause int

// Causes of job failure.
const (
	CauseNone   Cause = iota // job succeeded
	CauseUser                // bug, misconfiguration, misoperation
	CauseSystem              // hardware/system event interrupted the job
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseUser:
		return "user"
	case CauseSystem:
		return "system"
	default:
		return "unknown"
	}
}

// Classification is the per-job outcome attribution plus corpus totals —
// the paper's headline "99,245 failures, 99.4% user-caused" analysis.
type Classification struct {
	Causes      map[int64]Cause // job id → cause
	Total       int
	Failed      int
	UserCaused  int
	SystemCause int
	// ByFamily counts failed jobs per exit family.
	ByFamily map[joblog.ExitFamily]int
}

// UserShare returns the fraction of failures attributed to user behavior.
func (c *Classification) UserShare() float64 {
	if c.Failed == 0 {
		return 0
	}
	return float64(c.UserCaused) / float64(c.Failed)
}

// ClassifyByExit attributes each failed job by its exit status alone:
// scheduler-reserved statuses are system-caused, everything else
// user-caused. This is the scheduler-log-only view.
func (d *Dataset) ClassifyByExit() *Classification {
	c := &Classification{
		Causes:   make(map[int64]Cause, len(d.Jobs)),
		ByFamily: make(map[joblog.ExitFamily]int),
	}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		c.Total++
		if j.Outcome() == joblog.OutcomeSuccess {
			c.Causes[j.ID] = CauseNone
			continue
		}
		c.Failed++
		c.ByFamily[joblog.Family(j.ExitStatus)]++
		if joblog.Family(j.ExitStatus) == joblog.FamilySystem {
			c.Causes[j.ID] = CauseSystem
			c.SystemCause++
		} else {
			c.Causes[j.ID] = CauseUser
			c.UserCaused++
		}
	}
	return c
}

// JointOptions tunes the joint (RAS-correlated) classification.
type JointOptions struct {
	// Tolerance is the maximum |event time − job end| for a FATAL event to
	// be considered the cause of the job's termination.
	Tolerance time.Duration
}

// DefaultJointOptions matches the paper's methodology: a FATAL event within
// ±5 minutes of the job's end, on hardware the job occupied, marks the
// failure as system-caused.
func DefaultJointOptions() JointOptions {
	return JointOptions{Tolerance: 5 * time.Minute}
}

// ClassifyJoint attributes failures by joining the scheduling log with the
// RAS log: a failed job is system-caused if a FATAL event is directly
// attributed to it (matching job id) or strikes a block the job's tasks
// occupied within the tolerance of the job's end. This is the paper's
// multi-source methodology; on a corpus whose scheduler also reserves an
// exit status for block failures the two classifications should agree
// almost everywhere.
func (d *Dataset) ClassifyJoint(opt JointOptions) *Classification {
	if opt.Tolerance <= 0 {
		opt = DefaultJointOptions()
	}
	c := &Classification{
		Causes:   make(map[int64]Cause, len(d.Jobs)),
		ByFamily: make(map[joblog.ExitFamily]int),
	}
	// FATAL events sorted by time (dataset guarantees order). Events
	// without a hardware location below system level cannot be tied to a
	// block and are excluded from proximity attribution — a service-node
	// failover touches every block "spatially" but kills none of them.
	var fatals []raslog.Event
	attributed := map[int64]bool{}
	for _, i := range d.fatalIdx {
		if id := d.Events[i].JobID; id != 0 {
			attributed[id] = true
		}
		if d.Events[i].Loc.Level() < machine.LevelRack {
			continue
		}
		fatals = append(fatals, d.Events[i])
	}
	times := make([]time.Time, len(fatals))
	for i := range fatals {
		times[i] = fatals[i].Time
	}

	for i := range d.Jobs {
		j := &d.Jobs[i]
		c.Total++
		if j.Outcome() == joblog.OutcomeSuccess {
			c.Causes[j.ID] = CauseNone
			continue
		}
		c.Failed++
		c.ByFamily[joblog.Family(j.ExitStatus)]++
		if attributed[j.ID] || d.fatalNearEnd(fatals, times, j, opt.Tolerance) {
			c.Causes[j.ID] = CauseSystem
			c.SystemCause++
		} else {
			c.Causes[j.ID] = CauseUser
			c.UserCaused++
		}
	}
	return c
}

// fatalNearEnd reports whether a FATAL event within tol of the job's end
// intersects a block the job ran on.
func (d *Dataset) fatalNearEnd(fatals []raslog.Event, times []time.Time, j *joblog.Job, tol time.Duration) bool {
	tasks := d.TasksOf(j.ID)
	if len(tasks) == 0 {
		return false
	}
	lo := sort.Search(len(times), func(i int) bool { return !times[i].Before(j.End.Add(-tol)) })
	for i := lo; i < len(fatals) && !times[i].After(j.End.Add(tol)); i++ {
		for k := range tasks {
			if tasks[k].Block.ContainsLocation(fatals[i].Loc) {
				return true
			}
		}
	}
	return false
}
