package core

import (
	"testing"
	"time"

	"repro/internal/joblog"
)

// chainJobs builds one user's submission stream with a deterministic
// outcome pattern and fixed gaps.
func chainJobs(outcomes []bool, gap time.Duration) []joblog.Job {
	base := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	jobs := make([]joblog.Job, len(outcomes))
	for i, fails := range outcomes {
		exit := 0
		if fails {
			exit = 1
		}
		submit := base.Add(time.Duration(i) * gap)
		jobs[i] = joblog.Job{
			ID: int64(i + 1), User: "u1", Project: "p", Queue: "q",
			Submit: submit, Start: submit, End: submit.Add(10 * time.Minute),
			WalltimeReq: time.Hour, Nodes: 512, RanksPerNode: 16, NumTasks: 1,
			ExitStatus: exit,
		}
	}
	return jobs
}

func TestResubmissionScenario(t *testing.T) {
	// Pattern: F F F S S F F S S S — transitions:
	// after F (4 pairs): F F S F -> wait, enumerate in the assertions below.
	outcomes := []bool{true, true, true, false, false, true, true, false, false, false}
	jobs := chainJobs(outcomes, 2*time.Hour)
	d, err := NewDataset(jobs, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Resubmission()
	if err != nil {
		t.Fatal(err)
	}
	// Pairs after failure: indices (0→1)F, (1→2)F, (2→3)S, (5→6)F, (6→7)S
	// = 5 pairs, 3 fail. Pairs after success: (3→4)S, (4→5)F, (7→8)S,
	// (8→9)S = 4 pairs, 1 fail.
	if r.PairsAfterFail != 5 || r.PairsAfterSuccess != 4 {
		t.Fatalf("pairs = %d/%d, want 5/4", r.PairsAfterFail, r.PairsAfterSuccess)
	}
	if r.PFailAfterFail != 0.6 {
		t.Errorf("P(f|f) = %v, want 0.6", r.PFailAfterFail)
	}
	if r.PFailAfterSuccess != 0.25 {
		t.Errorf("P(f|s) = %v, want 0.25", r.PFailAfterSuccess)
	}
	// Overall fail rate 5/10; lift = 0.6/0.5 = 1.2.
	if r.Lift < 1.199 || r.Lift > 1.201 {
		t.Errorf("lift = %v, want 1.2", r.Lift)
	}
	// All gaps are 2h.
	if r.MedianGapAfterFailH != 2 || r.MedianGapAfterSuccessH != 2 {
		t.Errorf("gaps = %v/%v, want 2/2", r.MedianGapAfterFailH, r.MedianGapAfterSuccessH)
	}
	if r.FastResubmitShare != 0 {
		t.Errorf("fast share = %v, want 0 at 2h gaps", r.FastResubmitShare)
	}
}

func TestResubmissionNeedsBothOutcomes(t *testing.T) {
	jobs := chainJobs([]bool{true, true, true}, time.Hour)
	d, err := NewDataset(jobs, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Resubmission(); err == nil {
		t.Error("all-failure stream accepted (no success pairs)")
	}
}

func TestResubmissionOnCorpus(t *testing.T) {
	d, c := dataset(t)
	r, err := d.Resubmission()
	if err != nil {
		t.Fatal(err)
	}
	if c.Truth.Resubmissions == 0 {
		t.Fatal("corpus has no resubmissions")
	}
	if r.PFailAfterFail <= r.PFailAfterSuccess {
		t.Errorf("no repetition: %v vs %v", r.PFailAfterFail, r.PFailAfterSuccess)
	}
	if r.Lift <= 1 {
		t.Errorf("lift = %v, want > 1", r.Lift)
	}
	if r.MedianGapAfterFailH >= r.MedianGapAfterSuccessH {
		t.Errorf("failure gaps %v not shorter than success gaps %v",
			r.MedianGapAfterFailH, r.MedianGapAfterSuccessH)
	}
}
