package core

import (
	"time"

	"repro/internal/joblog"
)

// TemporalProfile holds the hour-of-day / day-of-week / monthly activity
// patterns of jobs and FATAL events (experiment E14).
type TemporalProfile struct {
	// JobsByHour / FailsByHour index 0..23 by submission hour (UTC).
	JobsByHour  [24]int
	FailsByHour [24]int
	// JobsByWeekday / FailsByWeekday index time.Weekday (Sunday=0).
	JobsByWeekday  [7]int
	FailsByWeekday [7]int
	// FatalByHour counts FATAL RAS events per hour of day.
	FatalByHour [24]int
	// Monthly series: year-month keys in chronological order.
	Months       []string
	JobsByMonth  []int
	FailsByMonth []int
	FatalByMonth []int
	// JobsByDay is the daily submission series (index 0 = first day).
	JobsByDay []int
}

// Temporal computes the activity/failure time patterns.
func (d *Dataset) Temporal() *TemporalProfile {
	p := &TemporalProfile{}
	monthIdx := map[string]int{}
	monthKey := func(t time.Time) int {
		k := t.Format("2006-01")
		idx, ok := monthIdx[k]
		if !ok {
			idx = len(p.Months)
			monthIdx[k] = idx
			p.Months = append(p.Months, k)
			p.JobsByMonth = append(p.JobsByMonth, 0)
			p.FailsByMonth = append(p.FailsByMonth, 0)
			p.FatalByMonth = append(p.FatalByMonth, 0)
		}
		return idx
	}
	start, _ := d.Span()
	dayOf := func(t time.Time) int {
		day := int(t.Sub(start).Hours() / 24)
		if day < 0 {
			day = 0
		}
		return day
	}
	// Jobs/events arrive in time order in both logs, so months appear in
	// chronological order without an extra sort.
	for i := range d.Jobs {
		j := &d.Jobs[i]
		h := j.Submit.Hour()
		w := j.Submit.Weekday()
		m := monthKey(j.Submit)
		day := dayOf(j.Submit)
		for len(p.JobsByDay) <= day {
			p.JobsByDay = append(p.JobsByDay, 0)
		}
		p.JobsByDay[day]++
		p.JobsByHour[h]++
		p.JobsByWeekday[w]++
		p.JobsByMonth[m]++
		if j.Outcome() == joblog.OutcomeFailure {
			p.FailsByHour[h]++
			p.FailsByWeekday[w]++
			p.FailsByMonth[m]++
		}
	}
	for _, i := range d.fatalIdx {
		e := &d.Events[i]
		p.FatalByHour[e.Time.Hour()]++
		p.FatalByMonth[monthKey(e.Time)]++
	}
	return p
}

// FailRateByHour returns the per-hour job failure rate.
func (p *TemporalProfile) FailRateByHour() [24]float64 {
	var out [24]float64
	for h := 0; h < 24; h++ {
		if p.JobsByHour[h] > 0 {
			out[h] = float64(p.FailsByHour[h]) / float64(p.JobsByHour[h])
		}
	}
	return out
}
