package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Example shows the end-to-end analysis workflow: generate a corpus, index
// the four logs, classify failures and derive the MTTI — the two headline
// numbers of the paper.
func Example() {
	cfg := sim.SmallConfig()
	cfg.Days = 60
	corpus, err := sim.Generate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		fmt.Println(err)
		return
	}
	cls := d.ClassifyByExit()
	fmt.Printf("user-caused share above 98%%: %v\n", cls.UserShare() > 0.98)

	mtti, err := d.MTTI(core.DefaultFilterRule())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("filtering compresses the FATAL stream: %v\n",
		mtti.RawFatal > 5*mtti.Interruptions)
	fmt.Printf("MTTI within [1,10] days: %v\n",
		mtti.MTTIDays >= 1 && mtti.MTTIDays <= 10)
	// Output:
	// user-caused share above 98%: true
	// filtering compresses the FATAL stream: true
	// MTTI within [1,10] days: true
}

// ExampleDataset_FitExecutionLengths reproduces the paper's per-exit-code
// distribution fitting on a small corpus.
func ExampleDataset_FitExecutionLengths() {
	cfg := sim.SmallConfig()
	cfg.Days = 90
	corpus, err := sim.Generate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := core.NewDataset(corpus.Jobs, corpus.Tasks, corpus.Events, corpus.IO)
	if err != nil {
		fmt.Println(err)
		return
	}
	fits, err := d.FitExecutionLengths(core.FitOptions{MinSamples: 200})
	if err != nil {
		fmt.Println(err)
		return
	}
	distinct := map[string]bool{}
	for _, f := range fits {
		distinct[f.Best().Family] = true
	}
	fmt.Printf("families fitted: %v\n", len(fits) >= 4)
	fmt.Printf("best fit differs across exit codes: %v\n", len(distinct) >= 3)
	// Output:
	// families fitted: true
	// best fit differs across exit codes: true
}
