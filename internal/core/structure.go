package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/joblog"
	"repro/internal/stats"
)

// StructureDim selects a job-structure attribute for the failure-rate
// bucketing of experiment E8.
type StructureDim int

// Structure dimensions.
const (
	DimNodes     StructureDim = iota + 1 // job scale (block size)
	DimTasks                             // number of physical tasks
	DimCoreHours                         // consumed core-hours
	DimRuntime                           // execution length (hours)
)

// String implements fmt.Stringer.
func (s StructureDim) String() string {
	switch s {
	case DimNodes:
		return "nodes"
	case DimTasks:
		return "tasks"
	case DimCoreHours:
		return "core-hours"
	case DimRuntime:
		return "runtime-h"
	default:
		return fmt.Sprintf("StructureDim(%d)", int(s))
	}
}

func (s StructureDim) value(j *joblog.Job) float64 {
	switch s {
	case DimNodes:
		return float64(j.Nodes)
	case DimTasks:
		return float64(j.NumTasks)
	case DimCoreHours:
		return j.CoreHours()
	default:
		return j.Runtime().Hours()
	}
}

// Bucket is one row of a failure-rate-by-structure table.
type Bucket struct {
	Lo, Hi   float64 // value range [Lo, Hi)
	Jobs     int
	Failed   int
	FailRate float64
}

// StructureResult is the bucketed failure-rate profile for one dimension.
type StructureResult struct {
	Dim     StructureDim
	Buckets []Bucket
	// SpearmanTrend is the rank correlation between the attribute value and
	// job failure (0/1) across all jobs — the monotone-trend statistic.
	SpearmanTrend float64
}

// FailureByStructure buckets jobs by a structure attribute and reports the
// per-bucket failure rate. For DimNodes the buckets are the schedulable
// block sizes; other dimensions use logarithmic buckets.
func (d *Dataset) FailureByStructure(dim StructureDim) (*StructureResult, error) {
	if len(d.Jobs) == 0 {
		return nil, fmt.Errorf("core: no jobs")
	}
	res := &StructureResult{Dim: dim}

	var edges []float64
	if dim == DimNodes {
		for _, n := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 49152} {
			edges = append(edges, float64(n))
		}
		edges = append(edges, float64(49152+1))
	} else {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range d.Jobs {
			v := dim.value(&d.Jobs[i])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo <= 0 {
			lo = math.SmallestNonzeroFloat64
		}
		if hi <= lo {
			hi = lo * 10
		}
		const buckets = 8
		ratio := math.Pow(hi/lo, 1.0/buckets)
		edges = append(edges, lo)
		for i := 1; i <= buckets; i++ {
			edges = append(edges, lo*math.Pow(ratio, float64(i)))
		}
		edges[len(edges)-1] = math.Nextafter(hi, math.Inf(1))
	}

	res.Buckets = make([]Bucket, len(edges)-1)
	for i := range res.Buckets {
		res.Buckets[i].Lo = edges[i]
		res.Buckets[i].Hi = edges[i+1]
	}
	values := make([]float64, len(d.Jobs))
	failed := make([]float64, len(d.Jobs))
	for i := range d.Jobs {
		j := &d.Jobs[i]
		v := dim.value(j)
		values[i] = v
		if j.Outcome() == joblog.OutcomeFailure {
			failed[i] = 1
		}
		idx := sort.SearchFloat64s(edges, v)
		// SearchFloat64s returns the first edge ≥ v; bucket index is idx-1
		// except when v equals an edge exactly.
		if idx < len(edges) && edges[idx] == v {
			idx++
		}
		idx--
		if idx < 0 {
			idx = 0
		}
		if idx >= len(res.Buckets) {
			idx = len(res.Buckets) - 1
		}
		res.Buckets[idx].Jobs++
		if failed[i] == 1 {
			res.Buckets[idx].Failed++
		}
	}
	for i := range res.Buckets {
		if res.Buckets[i].Jobs > 0 {
			res.Buckets[i].FailRate = float64(res.Buckets[i].Failed) / float64(res.Buckets[i].Jobs)
		}
	}
	trend, err := stats.Spearman(values, failed)
	if err != nil {
		return nil, fmt.Errorf("core: structure trend: %w", err)
	}
	res.SpearmanTrend = trend
	return res, nil
}

// JobStructureSummary describes the corpus' job-structure distributions
// (experiment E3): scale, tasks, runtime, core-hours.
type JobStructureSummary struct {
	Nodes     stats.Summary
	Tasks     stats.Summary
	RuntimeH  stats.Summary
	CoreHours stats.Summary
	// SizeHistogram counts jobs per schedulable block size.
	SizeHistogram map[int]int
}

// StructureSummary computes E3's distributions.
func (d *Dataset) StructureSummary() (*JobStructureSummary, error) {
	n := len(d.Jobs)
	nodes := make([]float64, n)
	tasks := make([]float64, n)
	runtime := make([]float64, n)
	ch := make([]float64, n)
	hist := map[int]int{}
	for i := range d.Jobs {
		j := &d.Jobs[i]
		nodes[i] = float64(j.Nodes)
		tasks[i] = float64(j.NumTasks)
		runtime[i] = j.Runtime().Hours()
		ch[i] = j.CoreHours()
		hist[j.Nodes]++
	}
	out := &JobStructureSummary{SizeHistogram: hist}
	var err error
	if out.Nodes, err = stats.Summarize(nodes); err != nil {
		return nil, err
	}
	if out.Tasks, err = stats.Summarize(tasks); err != nil {
		return nil, err
	}
	if out.RuntimeH, err = stats.Summarize(runtime); err != nil {
		return nil, err
	}
	if out.CoreHours, err = stats.Summarize(ch); err != nil {
		return nil, err
	}
	return out, nil
}
