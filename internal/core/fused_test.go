package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/scan"
)

// TestFusedScanMatchesLegacy pins the tentpole equivalence: every aggregate
// the fused single-pass engine produces deep-equals the dedicated
// per-analysis walk, at any worker count.
func TestFusedScanMatchesLegacy(t *testing.T) {
	d, _ := dataset(t)
	cls := d.ClassifyByExit()
	joint := d.ClassifyJoint(DefaultJointOptions())
	for _, workers := range []int{1, 4} {
		p, err := d.FusedScan(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := p.Summary, d.Summarize(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: summary: fused %+v, legacy %+v", workers, got, want)
		}
		if got, want := p.Exit, TallyOf(cls); got != want {
			t.Errorf("workers=%d: exit tally: fused %+v, legacy %+v", workers, got, want)
		}
		if got, want := p.Joint, TallyOf(joint); got != want {
			t.Errorf("workers=%d: joint tally: fused %+v, legacy %+v", workers, got, want)
		}
		for _, by := range []GroupBy{ByUser, ByProject} {
			if got, want := p.Groups(by), d.Aggregate(by, cls); !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d: groups by %s differ", workers, by)
			}
			got, err := p.Concentration(by)
			if err != nil {
				t.Fatal(err)
			}
			want, err := d.Concentration(by, cls)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d: concentration by %s: fused %+v, legacy %+v", workers, by, got, want)
			}
		}
		if got, want := p.Temporal, d.Temporal(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: temporal profile differs", workers)
		}
		if got, want := p.RAS, d.Profile(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: RAS profile differs", workers)
		}
		{
			got := p.Waste
			want, err := d.Waste(cls)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d: waste: fused %+v, legacy %+v", workers, got, want)
			}
		}
		{
			got, gotErr := p.Interrupts, p.InterruptsErr
			want, wantErr := d.InterruptsByUser(cls)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d: interrupts err: fused %v, legacy %v", workers, gotErr, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d: interrupts: fused %+v, legacy %+v", workers, got, want)
			}
		}
		for _, level := range []machine.Level{machine.LevelMidplane, machine.LevelRack} {
			got, gotErr := p.Locality(level)
			want, wantErr := d.Locality(level)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d: locality %v err: fused %v, legacy %v", workers, level, gotErr, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d: locality at %v differs", workers, level)
			}
		}
	}
}

// TestFilterCachedMatchesPlain pins the interned-key coalesce to the plain
// map-based pass: identical incidents for the default rule at several
// windows, for both severities, plus the non-default-key fallback.
func TestFilterCachedMatchesPlain(t *testing.T) {
	// A private dataset, so the lazily interned key cache this test builds
	// does not show up in the shared dataset other tests DeepEqual against
	// fresh rebuilds.
	_, c := dataset(t)
	d, err := NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []time.Duration{time.Minute, 20 * time.Minute, 2 * time.Hour} {
		rule := DefaultFilterRule()
		rule.Window = window
		for _, sev := range []struct {
			name   string
			plain  func(FilterRule) ([]Incident, error)
			cached func(FilterRule) ([]Incident, error)
		}{
			{"fatal", d.FilterFatal, d.FilterFatalCached},
			{"warn", d.FilterWarn, d.FilterWarnCached},
		} {
			want, err := sev.plain(rule)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sev.cached(rule)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s window %v: cached filter differs from plain", sev.name, window)
			}
		}
	}
	odd := FilterRule{Window: 20 * time.Minute, Spatial: machine.LevelRack}
	want, err := d.FilterFatal(odd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.FilterFatalCached(odd)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("non-default key config fallback differs from plain")
	}
	if _, err := d.FilterFatalCached(FilterRule{Window: -1}); err == nil {
		t.Error("invalid rule accepted")
	}
}

// TestLeadTimeSweepMatchesLeadTime pins the E16 sweep: evaluating several
// lookbacks over one filtering pass matches the one-option path exactly.
func TestLeadTimeSweepMatchesLeadTime(t *testing.T) {
	d, _ := dataset(t)
	rule := DefaultFilterRule()
	fatals, err := d.FilterFatal(rule)
	if err != nil {
		t.Fatal(err)
	}
	warns, err := d.FilterWarn(rule)
	if err != nil {
		t.Fatal(err)
	}
	lookbacks := []time.Duration{time.Hour, 6 * time.Hour, 12 * time.Hour, 24 * time.Hour}
	opts := make([]LeadTimeOptions, len(lookbacks))
	for i, lb := range lookbacks {
		opts[i] = DefaultLeadTimeOptions()
		opts[i].Lookback = lb
	}
	swept, err := LeadTimeSweep(fatals, warns, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, opt := range opts {
		want, err := d.LeadTime(rule, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(swept[i], want) {
			t.Errorf("lookback %v: sweep %+v, single %+v", lookbacks[i], swept[i], want)
		}
	}
	if _, err := LeadTimeSweep(fatals, warns, nil); err == nil {
		t.Error("empty option list accepted")
	}
	mixed := []LeadTimeOptions{
		{Lookback: time.Hour, Level: machine.LevelRack},
		{Lookback: time.Hour, Level: machine.LevelNode},
	}
	if _, err := LeadTimeSweep(fatals, warns, mixed); err == nil {
		t.Error("mixed spatial levels accepted")
	}
}

// TestViewBuildersMatchDataset pins the SoA mirrors to the AoS records they
// shadow, column by column, on a few spot rows plus the dictionaries.
func TestViewBuildersMatchDataset(t *testing.T) {
	d, _ := dataset(t)
	jv := d.JobView()
	if jv.N != len(d.Jobs) {
		t.Fatalf("job view has %d rows for %d jobs", jv.N, len(d.Jobs))
	}
	for _, i := range []int{0, 1, jv.N / 2, jv.N - 1} {
		j := &d.Jobs[i]
		if jv.ID[i] != j.ID || jv.StartUnix[i] != j.Start.Unix() || jv.EndUnix[i] != j.End.Unix() {
			t.Fatalf("row %d: id/time columns mismatch", i)
		}
		if jv.CoreSec[i] != j.CoreSeconds() {
			t.Fatalf("row %d: core-seconds %d, job says %d", i, jv.CoreSec[i], j.CoreSeconds())
		}
		if jv.Users[jv.UserID[i]] != j.User || jv.Projects[jv.ProjectID[i]] != j.Project {
			t.Fatalf("row %d: dictionary mismatch", i)
		}
	}
	ev := d.EventView()
	if ev.N != len(d.Events) {
		t.Fatalf("event view has %d rows for %d events", ev.N, len(d.Events))
	}
	for _, i := range []int{0, 1, ev.N / 2, ev.N - 1} {
		e := &d.Events[i]
		if ev.TimeUnix[i] != e.Time.Unix() || ev.Sev[i] != uint8(e.Sev) {
			t.Fatalf("event row %d: time/sev mismatch", i)
		}
		if string(ev.Cats[ev.CatID[i]]) != string(e.Cat) || string(ev.Comps[ev.CompID[i]]) != string(e.Comp) {
			t.Fatalf("event row %d: dictionary mismatch", i)
		}
		wantMid, wantRack := LocIDs(e.Loc)
		if ev.MidplaneID[i] != wantMid || ev.RackID[i] != wantRack {
			t.Fatalf("event row %d: location ids (%d,%d), want (%d,%d)",
				i, ev.MidplaneID[i], ev.RackID[i], wantMid, wantRack)
		}
	}
	// AdoptViews rejects mismatched row counts and is a no-op after the
	// lazy build.
	if err := d.AdoptViews(&scan.JobView{N: jv.N + 1}, nil); err == nil {
		t.Error("adopt accepted wrong job row count")
	}
	if err := d.AdoptViews(&scan.JobView{N: jv.N}, nil); err != nil {
		t.Errorf("late adopt errored: %v", err)
	}
	if d.JobView() != jv {
		t.Error("late adopt replaced the built view")
	}
}

// TestKernelProcessBlockAllocFree pins the steady-state scan loops as
// allocation-free: after the warm-up pass, processing further blocks must
// not allocate for any registered kernel.
func TestKernelProcessBlockAllocFree(t *testing.T) {
	d, _ := dataset(t)
	jv := d.JobView()
	ev := d.EventView()
	tk := newTemporalJobKernel(d)
	jobKernels := []JobKernel{
		summaryKernel{},
		exitTallyKernel{},
		newJointKernel(d, DefaultJointOptions()),
		newGroupKernel(ByUser, len(jv.Users)),
		newGroupKernel(ByProject, len(jv.Projects)),
		wasteKernel{},
		tk,
	}
	blk := scan.BlockRows
	for _, k := range jobKernels {
		st := k.NewState()
		hi := min(blk, jv.N)
		if avg := testing.AllocsPerRun(20, func() { st.ProcessBlock(jv, 0, hi) }); avg != 0 {
			t.Errorf("job kernel %s: %.1f allocs per block", k.Name(), avg)
		}
	}
	eventKernels := []EventKernel{
		&profileKernel{nCats: len(ev.Cats), nComps: len(ev.Comps)},
		&temporalEventKernel{monthCap: tk.monthCap},
		&localityKernel{level: machine.LevelMidplane},
		&localityKernel{level: machine.LevelRack},
	}
	for _, k := range eventKernels {
		st := k.NewState()
		hi := min(blk, ev.N)
		if avg := testing.AllocsPerRun(20, func() { st.ProcessBlock(ev, 0, hi) }); avg != 0 {
			t.Errorf("event kernel %s: %.1f allocs per block", k.Name(), avg)
		}
	}
}
