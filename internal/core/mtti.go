package core

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/raslog"
)

// MTTIResult is the outcome of the mean-time-to-interruption analysis —
// the paper's "MTTI ≈ 3.5 days" headline.
type MTTIResult struct {
	SpanDays      float64
	RawFatal      int        // unfiltered FATAL event count
	Incidents     []Incident // filtered job-interrupting incidents
	Interruptions int        // len(Incidents)
	MTTIDays      float64    // span / interruptions
	MTBFRawDays   float64    // baseline: span / raw FATAL count
	// Intervals are the gaps between consecutive interruptions, in hours,
	// in time order.
	Intervals []float64
	// IntervalSample is the sorted view of Intervals with precomputed
	// sufficient statistics — the series the best-fit selection ran on,
	// reusable for CDF figures without another sort. Nil when there are no
	// intervals.
	IntervalSample *dist.Sample
	// BestFit is the best-fitting distribution of the interruption
	// intervals (hours), per KS model selection.
	BestFit dist.FitResult
}

// MTTI computes the mean time to interruption: FATAL events that affected a
// job (nonzero job attribution) are coalesced by the similarity rule into
// interruption incidents; MTTI is the observation span divided by the
// incident count. The raw-MTBF baseline shows how misleading the
// unfiltered stream is.
func (d *Dataset) MTTI(rule FilterRule) (*MTTIResult, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	// The FATAL view replaces the full-stream scan; it is time-ordered, so
	// jobFatal is built in the same order as before.
	var jobFatal []raslog.Event
	raw := len(d.fatalIdx)
	for _, i := range d.fatalIdx {
		if d.Events[i].JobID != 0 {
			jobFatal = append(jobFatal, d.Events[i])
		}
	}
	// Coalescing job-affecting FATALs: same incident may attribute several
	// events to the same job; a job id is also a similarity witness, so
	// collapse exact (job, msg, window) duplicates via the generic filter.
	incidents, err := FilterFatal(jobFatal, rule)
	if err != nil {
		return nil, err
	}
	res := &MTTIResult{
		SpanDays:  d.Days(),
		RawFatal:  raw,
		Incidents: incidents,
	}
	res.Interruptions = len(incidents)
	if res.Interruptions > 0 {
		res.MTTIDays = res.SpanDays / float64(res.Interruptions)
	}
	if raw > 0 {
		res.MTBFRawDays = res.SpanDays / float64(raw)
	}
	if len(incidents) >= 3 {
		sort.Slice(incidents, func(i, j int) bool { return incidents[i].First.Before(incidents[j].First) })
		res.Intervals = make([]float64, 0, len(incidents)-1)
		for i := 1; i < len(incidents); i++ {
			gap := incidents[i].First.Sub(incidents[i-1].First).Hours()
			if gap > 0 {
				res.Intervals = append(res.Intervals, gap)
			}
		}
		if len(res.Intervals) > 0 {
			res.IntervalSample = dist.NewSample(res.Intervals)
		}
		if len(res.Intervals) >= 10 {
			best, err := dist.SelectBestSample(res.IntervalSample, nil)
			if err != nil {
				return nil, fmt.Errorf("core: fit interruption intervals: %w", err)
			}
			res.BestFit = best
		}
	}
	return res, nil
}

// InterruptedJobs returns the distinct job ids attributed to filtered
// interruption incidents.
func (r *MTTIResult) InterruptedJobs() []int64 {
	seen := map[int64]bool{}
	var out []int64
	for i := range r.Incidents {
		for _, id := range r.Incidents[i].JobIDs {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LostCoreHours estimates the core-hours consumed by jobs that were
// interrupted by the system — work that produced no result.
func (d *Dataset) LostCoreHours(r *MTTIResult) float64 {
	total := 0.0
	for _, id := range r.InterruptedJobs() {
		if j, ok := d.Job(id); ok {
			total += j.CoreHours()
		}
	}
	return total
}
