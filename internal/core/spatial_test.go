package core

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/raslog"
)

// pairScenario: two FATAL bursts minutes apart on torus-adjacent midplanes,
// plus a distant third burst a week later.
func pairScenario(t *testing.T) []raslog.Event {
	t.Helper()
	base := time.Date(2019, 2, 1, 0, 0, 0, 0, time.UTC)
	neighbors, err := machine.TorusNeighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	locA, err := machine.MidplaneByID(0)
	if err != nil {
		t.Fatal(err)
	}
	locB, err := machine.MidplaneByID(neighbors[0])
	if err != nil {
		t.Fatal(err)
	}
	// Pick a midplane far from both for the late burst.
	far := 0
	for id := 0; id < machine.TotalMidplanes; id++ {
		d0, _ := machine.TorusDistance(0, id)
		d1, _ := machine.TorusDistance(neighbors[0], id)
		if d0 >= 3 && d1 >= 3 {
			far = id
			break
		}
	}
	locC, err := machine.MidplaneByID(far)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int64, at time.Time, loc machine.Location) raslog.Event {
		return raslog.Event{
			RecID: id, MsgID: "00140004", Comp: raslog.CompMMCS, Cat: raslog.CatSoftware,
			Sev: raslog.Fatal, Time: at, Loc: loc, Count: 1, Message: "x",
		}
	}
	return []raslog.Event{
		mk(1, base, locA),
		mk(2, base.Add(10*time.Minute), locB),
		mk(3, base.Add(7*24*time.Hour), locC),
	}
}

func TestSpatialCorrelationScenario(t *testing.T) {
	events := pairScenario(t)
	jobs := testJobsForEvents(t, events)
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.SpatialCorrelation(DefaultFilterRule(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incidents != 3 || res.AllPairs != 3 {
		t.Fatalf("incidents=%d pairs=%d, want 3/3", res.Incidents, res.AllPairs)
	}
	if res.ClosePairs != 1 {
		t.Fatalf("close pairs = %d, want 1", res.ClosePairs)
	}
	if res.MeanDistClose != 1 {
		t.Errorf("close mean dist = %v, want 1", res.MeanDistClose)
	}
	if res.NeighborShareClose != 1 {
		t.Errorf("close neighbor share = %v, want 1", res.NeighborShareClose)
	}
	if !res.Correlated {
		t.Error("correlation not detected")
	}
	if res.MeanDistAll <= res.MeanDistClose {
		t.Errorf("baseline %v not above close %v", res.MeanDistAll, res.MeanDistClose)
	}
}

func TestSpatialCorrelationErrors(t *testing.T) {
	events := pairScenario(t)
	jobs := testJobsForEvents(t, events)
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SpatialCorrelation(DefaultFilterRule(), 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := d.SpatialCorrelation(FilterRule{}, time.Hour); err == nil {
		t.Error("bad rule accepted")
	}
	// Too few localizable incidents.
	short, err := NewDataset(jobs, nil, events[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := short.SpatialCorrelation(DefaultFilterRule(), time.Hour); err == nil {
		t.Error("2-incident stream accepted")
	}
}
