package core

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/machine"
	"repro/internal/scan"
)

// FusedProfile is the result of one fused pass over the job and event
// columns: every whole-corpus aggregate the hot experiments consume. One
// FusedScan replaces the private full-corpus walks of Summarize,
// ClassifyByExit/ClassifyJoint tallies, Aggregate (users and projects),
// Profile, Temporal, Waste, Locality and InterruptsByUser.
type FusedProfile struct {
	jv *scan.JobView
	// jobSel is the cohort's job selection when the profile came from
	// FusedScanWhere; nil means the whole corpus.
	jobSel *bitmap.Bitmap

	Summary Summary
	// Exit and Joint are the exit-status-only and RAS-correlated failure
	// tallies (the totals of ClassifyByExit / ClassifyJoint).
	Exit  FailTally
	Joint FailTally
	// UserGroups / ProjectGroups are the per-key aggregates in Aggregate's
	// order (jobs descending, key ascending).
	UserGroups    []GroupStats
	ProjectGroups []GroupStats
	Temporal      *TemporalProfile
	RAS           *CategoryProfile
	Waste         *WasteResult
	Interrupts    *InterruptCorrelation
	InterruptsErr error

	localityMid, localityRack       *LocalityResult
	localityMidErr, localityRackErr error
}

// Groups returns the per-user or per-project aggregates.
func (p *FusedProfile) Groups(by GroupBy) []GroupStats {
	if by == ByProject {
		return p.ProjectGroups
	}
	return p.UserGroups
}

// Locality returns the FATAL spatial-concentration result at the level.
func (p *FusedProfile) Locality(level machine.Level) (*LocalityResult, error) {
	switch level {
	case machine.LevelMidplane:
		return p.localityMid, p.localityMidErr
	case machine.LevelRack:
		return p.localityRack, p.localityRackErr
	default:
		return nil, fmt.Errorf("core: locality level must be rack or midplane, got %v", level)
	}
}

// Concentration computes the concentration/correlation profile for the
// grouping from the fused aggregates; the per-job key and outcome columns
// for Cramér's V come from the scan view instead of a fresh AoS walk.
func (p *FusedProfile) Concentration(by GroupBy) (*ConcentrationResult, error) {
	v := p.jv
	ids := v.UserID
	dict := v.Users
	if by == ByProject {
		ids = v.ProjectID
		dict = v.Projects
	}
	n := v.N
	if p.jobSel != nil {
		n = p.jobSel.Cardinality()
	}
	keys := make([]string, 0, n)
	outcomes := make([]string, 0, n)
	forEachSelected(p.jobSel, v.N, func(i int) {
		keys = append(keys, dict[ids[i]])
		// Matches joblog.Outcome.String for the two possible values.
		if v.Family[i] == 0 {
			outcomes = append(outcomes, "success")
		} else {
			outcomes = append(outcomes, "failure")
		}
	})
	return concentrationFromGroups(by, p.Groups(by), keys, outcomes)
}

// FusedScan runs every registered aggregation kernel over the job and event
// column views in one pass each, fanned out over at most workers goroutines
// (≤ 0 means GOMAXPROCS). Results are bit-identical to the legacy
// per-analysis walks at any worker count.
func (d *Dataset) FusedScan(workers int) (*FusedProfile, error) {
	jv := d.JobView()
	ev := d.EventView()
	tk := newTemporalJobKernel(d)
	jobKernels := []JobKernel{
		summaryKernel{},
		exitTallyKernel{},
		newJointKernel(d, DefaultJointOptions()),
		newGroupKernel(ByUser, len(jv.Users)),
		newGroupKernel(ByProject, len(jv.Projects)),
		wasteKernel{},
		tk,
	}
	jsts, err := scan.Run(jv, jv.N, jobKernels, workers)
	if err != nil {
		return nil, err
	}
	eventKernels := []EventKernel{
		&profileKernel{nCats: len(ev.Cats), nComps: len(ev.Comps)},
		&temporalEventKernel{monthCap: tk.monthCap},
		&localityKernel{level: machine.LevelMidplane},
		&localityKernel{level: machine.LevelRack},
	}
	ests, err := scan.Run(ev, ev.N, eventKernels, workers)
	if err != nil {
		return nil, err
	}

	p := &FusedProfile{jv: jv}
	sum := jsts[0].(*summaryState)
	p.Summary = Summary{
		Days:        d.Days(),
		Jobs:        len(d.Jobs),
		Tasks:       len(d.Tasks),
		Users:       len(jv.Users),
		Projects:    len(jv.Projects),
		CoreHours:   float64(sum.coreSec) / 3600,
		RASTotal:    len(d.Events),
		RASFatal:    len(d.fatalIdx),
		RASWarn:     len(d.warnIdx),
		RASInfo:     d.infoN,
		IORecords:   len(d.IO),
		FailedJobs:  sum.failed,
		SuccessJobs: sum.success,
	}
	p.Exit = jsts[1].(*exitTallyState).t
	p.Joint = jsts[2].(*jointState).t
	p.UserGroups = jsts[3].(*groupState).finish(jv.Users)
	p.ProjectGroups = jsts[4].(*groupState).finish(jv.Projects)
	p.Waste = jsts[5].(*wasteState).finish()
	p.Temporal = finishTemporal(jsts[6].(*temporalJobState), ests[1].(*temporalEventState))
	p.RAS = ests[0].(*profileState).finish(ev)
	p.localityMid, p.localityMidErr = ests[2].(*localityState).finish()
	p.localityRack, p.localityRackErr = ests[3].(*localityState).finish()
	p.Interrupts, p.InterruptsErr = interruptsFromGroups(p.UserGroups)
	return p, nil
}

// finishTemporal combines the job- and event-side temporal states into the
// legacy profile. The legacy walk visits jobs first, then FATAL events, so
// the month list is the job months in first-appearance order followed by
// event-only months.
func finishTemporal(js *temporalJobState, es *temporalEventState) *TemporalProfile {
	p := &TemporalProfile{
		JobsByHour:     js.jobsHour,
		FailsByHour:    js.failsHour,
		JobsByWeekday:  js.jobsWd,
		FailsByWeekday: js.failsWd,
		FatalByHour:    es.fatalHour,
		JobsByDay:      js.jobsDay,
	}
	idx := make(map[int32]int, len(js.months)+len(es.months))
	for i, ym := range js.months {
		idx[ym] = i
		p.Months = append(p.Months, ymLabel(ym))
		p.JobsByMonth = append(p.JobsByMonth, js.mJobs[i])
		p.FailsByMonth = append(p.FailsByMonth, js.mFails[i])
		p.FatalByMonth = append(p.FatalByMonth, 0)
	}
	for i, ym := range es.months {
		j, ok := idx[ym]
		if !ok {
			j = len(p.Months)
			idx[ym] = j
			p.Months = append(p.Months, ymLabel(ym))
			p.JobsByMonth = append(p.JobsByMonth, 0)
			p.FailsByMonth = append(p.FailsByMonth, 0)
			p.FatalByMonth = append(p.FatalByMonth, 0)
		}
		p.FatalByMonth[j] += es.mFatals[i]
	}
	return p
}

// interruptsFromGroups computes the E15 interruption-vs-consumption
// correlation from per-user aggregates (system attribution already folded
// into SystemFails).
func interruptsFromGroups(userGroups []GroupStats) (*InterruptCorrelation, error) {
	if len(userGroups) < 3 {
		return nil, fmt.Errorf("core: need ≥3 users, have %d", len(userGroups))
	}
	sorted := append([]GroupStats(nil), userGroups...)
	sortGroupsByKey(sorted)
	ch := make([]float64, len(sorted))
	jobs := make([]float64, len(sorted))
	ints := make([]float64, len(sorted))
	for i := range sorted {
		ch[i] = sorted[i].CoreHours
		jobs[i] = float64(sorted[i].Jobs)
		ints[i] = float64(sorted[i].SystemFails)
	}
	return interruptCorrelationFrom(ch, jobs, ints)
}
