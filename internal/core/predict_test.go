package core

import (
	"testing"
	"time"

	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
)

// precursorScenario builds a stream with one WARN burst followed by a FATAL
// burst at the same midplane, plus an unrelated WARN burst elsewhere.
func precursorScenario(t *testing.T) []raslog.Event {
	t.Helper()
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	var events []raslog.Event
	id := int64(0)
	add := func(at time.Time, sev raslog.Severity, rack int, msg string) {
		id++
		loc, err := machine.Node(rack, 0, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, raslog.Event{
			RecID: id, MsgID: msg, Comp: raslog.CompDDR, Cat: raslog.CatMemory,
			Sev: sev, Time: at, Loc: loc, Count: 1, Message: "x",
		})
	}
	// Precursor WARN burst on rack 3, two hours before its FATAL.
	for i := 0; i < 4; i++ {
		add(base.Add(time.Duration(i)*time.Minute), raslog.Warn, 3, "00040002")
	}
	// FATAL burst on rack 3.
	for i := 0; i < 6; i++ {
		add(base.Add(2*time.Hour+time.Duration(i)*time.Minute), raslog.Fatal, 3, "00040003")
	}
	// Unrelated WARN burst on rack 40 (false alarm).
	for i := 0; i < 3; i++ {
		add(base.Add(time.Hour+time.Duration(i)*time.Minute), raslog.Warn, 40, "00040002")
	}
	// FATAL on rack 20 with no precursor.
	add(base.Add(30*time.Hour), raslog.Fatal, 20, "00040003")
	return events
}

func TestLeadTimeScenario(t *testing.T) {
	events := precursorScenario(t)
	jobs := testJobsForEvents(t, events)
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.LeadTime(DefaultFilterRule(), DefaultLeadTimeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Incidents != 2 {
		t.Fatalf("incidents = %d, want 2", res.Incidents)
	}
	if res.WithPrecursor != 1 {
		t.Fatalf("with precursor = %d, want 1", res.WithPrecursor)
	}
	if res.Coverage != 0.5 {
		t.Errorf("coverage = %v, want 0.5", res.Coverage)
	}
	if len(res.LeadHours) != 1 || res.LeadHours[0] < 1.9 || res.LeadHours[0] > 2.1 {
		t.Errorf("lead hours = %v, want ≈2", res.LeadHours)
	}
	if res.WarnBursts != 2 {
		t.Errorf("warn bursts = %d, want 2", res.WarnBursts)
	}
	if res.TrueAlarms != 1 {
		t.Errorf("true alarms = %d, want 1", res.TrueAlarms)
	}
	if res.Precision != 0.5 {
		t.Errorf("precision = %v, want 0.5", res.Precision)
	}
}

func TestLeadTimeLookbackTooShort(t *testing.T) {
	events := precursorScenario(t)
	jobs := testJobsForEvents(t, events)
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultLeadTimeOptions()
	opt.Lookback = 30 * time.Minute // precursor is 2h before: missed
	res, err := d.LeadTime(DefaultFilterRule(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithPrecursor != 0 {
		t.Errorf("short lookback found %d precursors", res.WithPrecursor)
	}
	if res.TrueAlarms != 0 {
		t.Errorf("short lookback credited %d alarms", res.TrueAlarms)
	}
}

func TestLeadTimeDefaultsOnBadOptions(t *testing.T) {
	events := precursorScenario(t)
	jobs := testJobsForEvents(t, events)
	d, err := NewDataset(jobs, nil, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.LeadTime(DefaultFilterRule(), LeadTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incidents != 2 {
		t.Errorf("bad options not defaulted: %+v", res)
	}
}

func TestLeadTimeOnCorpus(t *testing.T) {
	d, _ := dataset(t)
	res, err := d.LeadTime(DefaultFilterRule(), DefaultLeadTimeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Incidents == 0 {
		t.Fatal("no incidents")
	}
	// The generator emits precursors for ~65% of incidents within 6h;
	// with a 12h lookback coverage must clearly exceed chance.
	if res.Coverage < 0.4 {
		t.Errorf("coverage = %v, want ≥ 0.4", res.Coverage)
	}
	if res.MedianLeadH <= 0 || res.MedianLeadH > 12 {
		t.Errorf("median lead = %v h", res.MedianLeadH)
	}
	// Precision is low by construction (noise WARNs dominate) but nonzero.
	if res.Precision <= 0 || res.Precision > 0.5 {
		t.Errorf("precision = %v", res.Precision)
	}
}

// testJobsForEvents fabricates a minimal job list so NewDataset accepts the
// stream (the lead-time analysis itself does not use jobs).
func testJobsForEvents(t *testing.T, events []raslog.Event) []joblog.Job {
	t.Helper()
	base := events[0].Time
	return []joblog.Job{{
		ID: 1, User: "u", Project: "p", Queue: "q",
		Submit: base, Start: base, End: base.Add(time.Hour),
		WalltimeReq: 2 * time.Hour, Nodes: 512, RanksPerNode: 16, NumTasks: 1,
	}}
}
