package sched

import (
	"testing"
	"time"
)

var t0 = time.Date(2013, 4, 9, 0, 0, 0, 0, time.UTC)

func TestSubmitValidation(t *testing.T) {
	s := New(FCFS)
	if err := s.Submit(1, 300, time.Hour, t0); err == nil {
		t.Error("unschedulable size accepted")
	}
	if err := s.Submit(1, 512, 0, t0); err == nil {
		t.Error("zero walltime accepted")
	}
	if err := s.Submit(1, 512, time.Hour, t0); err != nil {
		t.Errorf("valid submit rejected: %v", err)
	}
}

func TestFCFSOrdering(t *testing.T) {
	s := New(FCFS)
	// Job 1 takes the whole machine; jobs 2, 3 must wait even though they fit.
	mustSubmit(t, s, 1, 49152, time.Hour)
	mustSubmit(t, s, 2, 512, time.Hour)
	mustSubmit(t, s, 3, 512, time.Hour)
	started := s.Schedule(t0)
	if len(started) != 1 || started[0].JobID != 1 {
		t.Fatalf("started = %v, want only job 1", started)
	}
	if s.QueueLen() != 2 {
		t.Errorf("queue len = %d", s.QueueLen())
	}
	if err := s.Complete(1); err != nil {
		t.Fatal(err)
	}
	started = s.Schedule(t0.Add(time.Hour))
	if len(started) != 2 {
		t.Fatalf("after completion started = %v", started)
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	s := New(FCFS)
	// Fill all but one midplane-pair, then ask for a big job: small job
	// behind it must NOT start under FCFS.
	mustSubmit(t, s, 1, 48*1024, 10*time.Hour) // 96 midplanes? 48*1024 nodes = 49152? no: 48*1024=49152
	started := s.Schedule(t0)
	if len(started) != 1 {
		t.Fatalf("setup: %v", started)
	}
	mustSubmit(t, s, 2, 32768, time.Hour)
	mustSubmit(t, s, 3, 512, time.Minute)
	if got := s.Schedule(t0); len(got) != 0 {
		t.Errorf("FCFS let a job jump the queue: %v", got)
	}
}

func TestEASYBackfill(t *testing.T) {
	s := New(EASYBackfill)
	// Occupy 64 of 96 midplanes until t0+10h.
	mustSubmit(t, s, 1, 32768, 10*time.Hour)
	if got := s.Schedule(t0); len(got) != 1 {
		t.Fatalf("setup: %v", got)
	}
	// Head job needs 64 midplanes -> must wait for job 1 (shadow = t0+10h).
	mustSubmit(t, s, 2, 32768, time.Hour)
	// Short small job fits in the 32 free midplanes and ends before shadow:
	// should backfill.
	mustSubmit(t, s, 3, 512, 2*time.Hour)
	// Long small job would end after shadow: must not backfill.
	mustSubmit(t, s, 4, 512, 20*time.Hour)
	started := s.Schedule(t0)
	if len(started) != 1 || started[0].JobID != 3 {
		t.Fatalf("backfill started = %v, want job 3 only", started)
	}
	// Under FCFS the same scenario starts nothing.
	f := New(FCFS)
	mustSubmit(t, f, 1, 32768, 10*time.Hour)
	f.Schedule(t0)
	mustSubmit(t, f, 2, 32768, time.Hour)
	mustSubmit(t, f, 3, 512, 2*time.Hour)
	if got := f.Schedule(t0); len(got) != 0 {
		t.Errorf("FCFS backfilled: %v", got)
	}
}

func TestBackfillNeverDelaysHead(t *testing.T) {
	s := New(EASYBackfill)
	mustSubmit(t, s, 1, 32768, 4*time.Hour) // 64 midplanes busy
	s.Schedule(t0)
	mustSubmit(t, s, 2, 32768, time.Hour)   // head: needs 64, shadow t0+4h
	mustSubmit(t, s, 3, 16384, 5*time.Hour) // ends after shadow: no backfill
	started := s.Schedule(t0)
	if len(started) != 0 {
		t.Errorf("backfill delayed head: %v", started)
	}
}

func TestCompleteUnknown(t *testing.T) {
	s := New(FCFS)
	if err := s.Complete(99); err == nil {
		t.Error("completing unknown job should fail")
	}
}

func TestRunningBlock(t *testing.T) {
	s := New(FCFS)
	mustSubmit(t, s, 1, 1024, time.Hour)
	started := s.Schedule(t0)
	if len(started) != 1 {
		t.Fatal("job did not start")
	}
	b, ok := s.RunningBlock(1)
	if !ok || b != started[0].Block {
		t.Errorf("RunningBlock = %v, %v", b, ok)
	}
	if _, ok := s.RunningBlock(2); ok {
		t.Error("unknown job has a block")
	}
	if s.BusyMidplanes() != 2 {
		t.Errorf("busy = %d", s.BusyMidplanes())
	}
}

func TestThroughputConservation(t *testing.T) {
	// Drive a synthetic day: every job submitted is eventually started and
	// completed exactly once, and the allocator ends empty.
	s := New(EASYBackfill)
	type active struct {
		id  int64
		end time.Time
	}
	now := t0
	var runningJobs []active
	started := map[int64]bool{}
	const n = 200
	sizes := []int{512, 1024, 2048, 4096, 8192}
	for id := int64(1); id <= n; id++ {
		mustSubmit(t, s, id, sizes[int(id)%len(sizes)], time.Hour)
	}
	for steps := 0; steps < 100000; steps++ {
		for _, d := range s.Schedule(now) {
			if started[d.JobID] {
				t.Fatalf("job %d started twice", d.JobID)
			}
			started[d.JobID] = true
			runningJobs = append(runningJobs, active{id: d.JobID, end: now.Add(30 * time.Minute)})
		}
		if len(runningJobs) == 0 {
			break
		}
		// Advance to earliest completion.
		earliest := 0
		for i, r := range runningJobs {
			if r.end.Before(runningJobs[earliest].end) {
				earliest = i
			}
		}
		now = runningJobs[earliest].end
		if err := s.Complete(runningJobs[earliest].id); err != nil {
			t.Fatal(err)
		}
		runningJobs = append(runningJobs[:earliest], runningJobs[earliest+1:]...)
	}
	if len(started) != n {
		t.Errorf("started %d of %d jobs", len(started), n)
	}
	if s.BusyMidplanes() != 0 || s.RunningCount() != 0 || s.QueueLen() != 0 {
		t.Errorf("scheduler not drained: busy=%d running=%d queued=%d",
			s.BusyMidplanes(), s.RunningCount(), s.QueueLen())
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || EASYBackfill.String() != "easy-backfill" {
		t.Error("policy strings wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy string wrong")
	}
}

func TestBlocksAreValid(t *testing.T) {
	s := New(EASYBackfill)
	for id := int64(1); id <= 20; id++ {
		mustSubmit(t, s, id, 2048, time.Hour)
	}
	for _, d := range s.Schedule(t0) {
		if err := d.Block.Validate(); err != nil {
			t.Errorf("job %d got invalid block: %v", d.JobID, err)
		}
		if d.Block.Nodes() != 2048 {
			t.Errorf("job %d block size %d", d.JobID, d.Block.Nodes())
		}
	}
}

func mustSubmit(t *testing.T, s *Scheduler, id int64, nodes int, wall time.Duration) {
	t.Helper()
	if err := s.Submit(id, nodes, wall, t0); err != nil {
		t.Fatalf("submit %d: %v", id, err)
	}
}

func TestMarkDownSkipsBusy(t *testing.T) {
	s := New(FCFS)
	mustSubmit(t, s, 1, 512, time.Hour)
	started := s.Schedule(t0)
	if len(started) != 1 {
		t.Fatal("setup")
	}
	busyMid := started[0].Block.BaseMidplane
	marked := s.MarkDown([]int{busyMid, busyMid + 1, busyMid + 2})
	if len(marked) != 2 {
		t.Fatalf("marked = %v, want the two idle midplanes", marked)
	}
	for _, id := range marked {
		if id == busyMid {
			t.Error("busy midplane marked down")
		}
	}
	if s.DownMidplanes() != 2 {
		t.Errorf("down = %d", s.DownMidplanes())
	}
	if err := s.MarkUp(marked); err != nil {
		t.Fatal(err)
	}
	if s.DownMidplanes() != 0 {
		t.Errorf("down after MarkUp = %d", s.DownMidplanes())
	}
	// MarkUp of a not-down midplane is an error.
	if err := s.MarkUp([]int{busyMid + 1}); err == nil {
		t.Error("MarkUp on serviced midplane accepted")
	}
}

func TestDownMidplanesBlockScheduling(t *testing.T) {
	s := New(FCFS)
	// Down all but one midplane: only a single 512-node job can start.
	var ids []int
	for id := 1; id < 96; id++ {
		ids = append(ids, id)
	}
	marked := s.MarkDown(ids)
	if len(marked) != 95 {
		t.Fatalf("marked %d", len(marked))
	}
	mustSubmit(t, s, 1, 512, time.Hour)
	mustSubmit(t, s, 2, 512, time.Hour)
	started := s.Schedule(t0)
	if len(started) != 1 || started[0].Block.BaseMidplane != 0 {
		t.Fatalf("started = %v, want one job on midplane 0", started)
	}
	if err := s.MarkUp(marked); err != nil {
		t.Fatal(err)
	}
	if got := s.Schedule(t0); len(got) != 1 {
		t.Fatalf("after MarkUp started = %v", got)
	}
}
