// Package sched implements a Cobalt-style space-sharing scheduler for Mira:
// jobs request a power-of-two block of midplanes and a walltime; the
// scheduler runs FCFS with optional EASY backfill over the machine's buddy
// allocator.
//
// The scheduler is a mechanism, not a clock: the corpus simulator owns
// virtual time and drives it through Submit / Schedule / Complete. This
// mirrors how placement interacts with failures — a job's hardware block is
// decided here, and the block determines which RAS events can hit the job.
package sched

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/machine"
)

// Policy selects the queueing discipline.
type Policy int

// Policies.
const (
	// FCFS starts jobs strictly in submission order; the queue head blocks
	// everything behind it.
	FCFS Policy = iota + 1
	// EASYBackfill lets later jobs jump ahead when they cannot delay the
	// queue head's earliest possible start (estimated from requested
	// walltimes).
	EASYBackfill
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case EASYBackfill:
		return "easy-backfill"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// maxBackfillDepth bounds how many waiting jobs behind the head are
// considered for backfill in one pass.
const maxBackfillDepth = 256

// queued is a job waiting for a block.
type queued struct {
	id       int64
	nodes    int
	walltime time.Duration
	submit   time.Time
}

// running is a job currently holding a block.
type running struct {
	id     int64
	block  machine.Block
	expEnd time.Time // start + requested walltime (for backfill estimates)
}

// StartDecision reports that a queued job was started on a block.
type StartDecision struct {
	JobID int64
	Block machine.Block
}

// Scheduler is the space-sharing scheduler state. Not safe for concurrent
// use; the simulation loop is single-threaded by design.
type Scheduler struct {
	policy  Policy
	alloc   *machine.Allocator
	queue   []queued
	running map[int64]running
}

// New returns an empty scheduler with the given policy.
func New(policy Policy) *Scheduler {
	return &Scheduler{
		policy:  policy,
		alloc:   machine.NewAllocator(),
		running: make(map[int64]running),
	}
}

// Submit enqueues a job request. Nodes must be a schedulable block size.
func (s *Scheduler) Submit(id int64, nodes int, walltime time.Duration, now time.Time) error {
	if !machine.ValidBlockNodes(nodes) {
		return fmt.Errorf("sched: job %d requests unschedulable size %d", id, nodes)
	}
	if walltime <= 0 {
		return fmt.Errorf("sched: job %d requests non-positive walltime", id)
	}
	s.queue = append(s.queue, queued{id: id, nodes: nodes, walltime: walltime, submit: now})
	return nil
}

// Schedule starts every job the policy allows at virtual time now and
// returns the start decisions in start order.
func (s *Scheduler) Schedule(now time.Time) []StartDecision {
	var started []StartDecision
	for {
		n := s.scheduleOnce(now, &started)
		if n == 0 {
			return started
		}
	}
}

// scheduleOnce makes a single pass over the queue and returns how many jobs
// it started.
func (s *Scheduler) scheduleOnce(now time.Time, started *[]StartDecision) int {
	if len(s.queue) == 0 {
		return 0
	}
	// Try the head first.
	head := s.queue[0]
	if block, ok := s.alloc.Alloc(head.nodes); ok {
		s.start(head, block, now, started)
		s.queue = s.queue[1:]
		return 1
	}
	if s.policy != EASYBackfill || len(s.queue) < 2 {
		return 0
	}
	// EASY backfill: a later job may start now only if its requested
	// walltime ends before the head's estimated start (shadow time), so the
	// head is never delayed. Shadow time is estimated by midplane counts —
	// buddy alignment can postpone the head slightly beyond it, which is the
	// standard conservative approximation.
	shadow, ok := s.shadowTime(now, head.nodes)
	if !ok {
		return 0
	}
	// Bound the scan like production backfill schedulers do: only the first
	// maxBackfillDepth waiting jobs are backfill candidates. This keeps
	// scheduling O(depth) under deep backlogs.
	limit := len(s.queue)
	if limit > 1+maxBackfillDepth {
		limit = 1 + maxBackfillDepth
	}
	for i := 1; i < limit; i++ {
		cand := s.queue[i]
		if now.Add(cand.walltime).After(shadow) {
			continue
		}
		block, ok := s.alloc.Alloc(cand.nodes)
		if !ok {
			continue
		}
		s.start(cand, block, now, started)
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		return 1
	}
	return 0
}

func (s *Scheduler) start(q queued, block machine.Block, now time.Time, started *[]StartDecision) {
	s.running[q.id] = running{id: q.id, block: block, expEnd: now.Add(q.walltime)}
	*started = append(*started, StartDecision{JobID: q.id, Block: block})
}

// shadowTime estimates when the queue head (needing the given node count)
// could start: the earliest instant at which enough midplanes will be free,
// assuming running jobs end at their requested walltimes.
func (s *Scheduler) shadowTime(now time.Time, nodes int) (time.Time, bool) {
	needed, err := machine.MidplanesForNodes(nodes)
	if err != nil {
		return time.Time{}, false
	}
	free := s.alloc.FreeMidplanes()
	if free >= needed {
		return now, true
	}
	ends := make([]running, 0, len(s.running))
	for _, r := range s.running {
		ends = append(ends, r)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i].expEnd.Before(ends[j].expEnd) })
	for _, r := range ends {
		free += r.block.Midplanes
		if free >= needed {
			return r.expEnd, true
		}
	}
	return time.Time{}, false
}

// Complete releases the block of a running job.
func (s *Scheduler) Complete(id int64) error {
	r, ok := s.running[id]
	if !ok {
		return fmt.Errorf("sched: complete unknown job %d", id)
	}
	if err := s.alloc.Free(r.block); err != nil {
		return fmt.Errorf("sched: complete job %d: %w", id, err)
	}
	delete(s.running, id)
	return nil
}

// QueueLen returns the number of jobs waiting.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// RunningCount returns the number of jobs holding blocks.
func (s *Scheduler) RunningCount() int { return len(s.running) }

// BusyMidplanes returns the number of allocated midplanes.
func (s *Scheduler) BusyMidplanes() int { return s.alloc.UsedMidplanes() }

// MarkDown takes the given midplanes out of service; busy midplanes are
// skipped (their jobs must be drained first) and the successfully marked
// ids are returned so the caller can MarkUp exactly those later.
func (s *Scheduler) MarkDown(ids []int) []int {
	marked := make([]int, 0, len(ids))
	for _, id := range ids {
		if err := s.alloc.MarkDown(id); err == nil {
			marked = append(marked, id)
		}
	}
	return marked
}

// MarkUp returns midplanes to service.
func (s *Scheduler) MarkUp(ids []int) error {
	for _, id := range ids {
		if err := s.alloc.MarkUp(id); err != nil {
			return fmt.Errorf("sched: %w", err)
		}
	}
	return nil
}

// DownMidplanes returns the number of out-of-service midplanes.
func (s *Scheduler) DownMidplanes() int { return s.alloc.DownMidplanes() }

// RunningBlock returns the block of a running job.
func (s *Scheduler) RunningBlock(id int64) (machine.Block, bool) {
	r, ok := s.running[id]
	return r.block, ok
}
