package iolog

import (
	"fmt"
	"strconv"
	"time"
)

// Columns is the column-major decomposition of an I/O log, the shape the
// binary corpus snapshot (internal/pack) stores. IOTime is kept in
// nanoseconds at the CSV codec's precision (io_time_s rounds to three
// decimals on disk), so a snapshot always agrees exactly with the CSV
// files it sits beside, whatever precision the in-memory record carried.
type Columns struct {
	JobID        []int64
	BytesRead    []int64
	BytesWritten []int64
	FilesRead    []int64
	FilesWritten []int64
	MetaOps      []int64
	IOTimeNanos  []int64
}

// Rows returns the number of records the columns hold.
func (c *Columns) Rows() int { return len(c.JobID) }

// ToColumns decomposes records column-major.
func ToColumns(records []Record) *Columns {
	n := len(records)
	c := &Columns{
		JobID:        make([]int64, n),
		BytesRead:    make([]int64, n),
		BytesWritten: make([]int64, n),
		FilesRead:    make([]int64, n),
		FilesWritten: make([]int64, n),
		MetaOps:      make([]int64, n),
		IOTimeNanos:  make([]int64, n),
	}
	for i := range records {
		r := &records[i]
		c.JobID[i] = r.JobID
		c.BytesRead[i] = r.BytesRead
		c.BytesWritten[i] = r.BytesWritten
		c.FilesRead[i] = int64(r.FilesRead)
		c.FilesWritten[i] = int64(r.FilesWritten)
		c.MetaOps[i] = r.MetaOps
		c.IOTimeNanos[i] = csvGranular(r.IOTime)
	}
	return c
}

// csvGranular returns the duration as the CSV codec round-trips it: written
// as seconds with three decimals, parsed back as float seconds. Idempotent
// for durations that already came from a CSV parse.
func csvGranular(d time.Duration) int64 {
	s := strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return int64(d) // unreachable: s was just formatted
	}
	return int64(time.Duration(v * float64(time.Second)))
}

// FromColumns rehydrates records row-major. It is the inverse of ToColumns.
func FromColumns(c *Columns) ([]Record, error) {
	n := c.Rows()
	for name, col := range map[string]int{
		"bytes_read": len(c.BytesRead), "bytes_written": len(c.BytesWritten),
		"files_read": len(c.FilesRead), "files_written": len(c.FilesWritten),
		"meta_ops": len(c.MetaOps), "io_time": len(c.IOTimeNanos),
	} {
		if col != n {
			return nil, fmt.Errorf("iolog: column %s has %d rows, want %d", name, col, n)
		}
	}
	records := make([]Record, n)
	for i := range records {
		records[i] = Record{
			JobID:        c.JobID[i],
			BytesRead:    c.BytesRead[i],
			BytesWritten: c.BytesWritten[i],
			FilesRead:    int(c.FilesRead[i]),
			FilesWritten: int(c.FilesWritten[i]),
			MetaOps:      c.MetaOps[i],
			IOTime:       time.Duration(c.IOTimeNanos[i]),
		}
	}
	return records, nil
}
