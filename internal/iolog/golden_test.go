package iolog

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// legacyWriteCSV is a verbatim copy of the encoding/csv-based encoder this
// package shipped before the fastcsv migration.
func legacyWriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("iolog: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range records {
		r := &records[i]
		row[0] = strconv.FormatInt(r.JobID, 10)
		row[1] = strconv.FormatInt(r.BytesRead, 10)
		row[2] = strconv.FormatInt(r.BytesWritten, 10)
		row[3] = strconv.Itoa(r.FilesRead)
		row[4] = strconv.Itoa(r.FilesWritten)
		row[5] = strconv.FormatInt(r.MetaOps, 10)
		row[6] = strconv.FormatFloat(r.IOTime.Seconds(), 'f', 3, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("iolog: write job %d: %w", r.JobID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func goldenRecords() []Record {
	r1 := sampleRecord()
	r2 := sampleRecord()
	r2.JobID = 12
	r2.IOTime = 1234 * time.Millisecond // io_time_s keeps 3 decimals
	r3 := sampleRecord()
	r3.JobID = 13
	r3.BytesRead = 0
	r3.IOTime = 0
	return []Record{r1, r2, r3}
}

func TestWriteCSVMatchesLegacy(t *testing.T) {
	records := goldenRecords()
	var oldBuf, newBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, records); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&newBuf, records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldBuf.Bytes(), newBuf.Bytes()) {
		t.Fatalf("fastcsv encoder output differs from legacy encoding/csv:\n old: %q\n new: %q",
			oldBuf.String(), newBuf.String())
	}
}

func TestReadCSVDecodesLegacyBytes(t *testing.T) {
	records := goldenRecords()
	var oldBuf bytes.Buffer
	if err := legacyWriteCSV(&oldBuf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&oldBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("decoding legacy bytes: got %+v, want %+v", got, records)
	}
}
