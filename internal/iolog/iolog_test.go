package iolog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		JobID: 11, BytesRead: 1 << 30, BytesWritten: 1 << 33,
		FilesRead: 12, FilesWritten: 256, MetaOps: 100000,
		IOTime: 90 * time.Second,
	}
}

func TestDerivedAndValidate(t *testing.T) {
	r := sampleRecord()
	if r.TotalBytes() != (1<<30)+(1<<33) {
		t.Errorf("TotalBytes = %d", r.TotalBytes())
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	cases := []func(*Record){
		func(x *Record) { x.JobID = 0 },
		func(x *Record) { x.BytesRead = -1 },
		func(x *Record) { x.FilesWritten = -1 },
		func(x *Record) { x.MetaOps = -1 },
		func(x *Record) { x.IOTime = -time.Second },
	}
	for i, mutate := range cases {
		r := sampleRecord()
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r1 := sampleRecord()
	r2 := sampleRecord()
	r2.JobID = 12
	r2.IOTime = 1500 * time.Millisecond
	records := []Record{r1, r2}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", records, back)
	}
}

func TestReadCSVErrors(t *testing.T) {
	h := "job_id,bytes_read,bytes_written,files_read,files_written,meta_ops,io_time_s"
	cases := map[string]string{
		"empty":      "",
		"bad header": "nope\n",
		"bad job":    h + "\nx,1,2,3,4,5,6\n",
		"bad time":   h + "\n1,1,2,3,4,5,zz\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestByJob(t *testing.T) {
	r1 := sampleRecord()
	r2 := sampleRecord()
	r2.JobID = 42
	m := ByJob([]Record{r1, r2})
	if len(m) != 2 || m[11].JobID != 11 || m[42].JobID != 42 {
		t.Errorf("ByJob = %v", m)
	}
}

func TestScannerMatchesSlurp(t *testing.T) {
	records := []Record{sampleRecord()}
	r2 := sampleRecord()
	r2.JobID = 99
	records = append(records, r2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Record
	for sc.Scan() {
		streamed = append(streamed, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, streamed) {
		t.Error("scanner and slurp disagree")
	}
	if _, err := NewScanner(strings.NewReader("bad\n")); err == nil {
		t.Error("bad header accepted")
	}
}
