package iolog

import (
	"fmt"
	"io"

	"repro/internal/fastcsv"
)

// Scanner streams an I/O CSV log one record at a time.
type Scanner struct {
	cr   *fastcsv.Reader
	cur  Record
	err  error
	line int
	done bool
}

// NewScanner validates the header and returns a streaming reader.
func NewScanner(r io.Reader) (*Scanner, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("iolog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("iolog: unexpected header %v", headerStrings(first))
	}
	return &Scanner{cr: cr, line: 1}, nil
}

// Scan advances to the next record; false at EOF or error (check Err).
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return false
	}
	if err != nil {
		s.err = fmt.Errorf("iolog: line %d: %w", s.line, err)
		return false
	}
	r, err := parseRow(rec)
	if err != nil {
		s.err = fmt.Errorf("iolog: line %d: %w", s.line, err)
		return false
	}
	s.cur = r
	return true
}

// Record returns the current record. Valid after a true Scan.
func (s *Scanner) Record() Record { return s.cur }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }
