// Package iolog models the Darshan-style I/O behavior log of Mira: one
// summary record per instrumented job with aggregate bytes moved, file
// counts and time spent in I/O.
package iolog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Record is one job's I/O summary.
type Record struct {
	JobID        int64
	BytesRead    int64
	BytesWritten int64
	FilesRead    int
	FilesWritten int
	MetaOps      int64         // metadata operations (open/stat/seek)
	IOTime       time.Duration // cumulative time in I/O calls across ranks
}

// TotalBytes returns read+written bytes.
func (r *Record) TotalBytes() int64 { return r.BytesRead + r.BytesWritten }

// Validate performs sanity checks.
func (r *Record) Validate() error {
	switch {
	case r.JobID <= 0:
		return fmt.Errorf("iolog: record for job %d: non-positive job id", r.JobID)
	case r.BytesRead < 0 || r.BytesWritten < 0:
		return fmt.Errorf("iolog: job %d: negative byte counts", r.JobID)
	case r.FilesRead < 0 || r.FilesWritten < 0 || r.MetaOps < 0:
		return fmt.Errorf("iolog: job %d: negative counts", r.JobID)
	case r.IOTime < 0:
		return fmt.Errorf("iolog: job %d: negative io time", r.JobID)
	}
	return nil
}

var header = []string{
	"job_id", "bytes_read", "bytes_written", "files_read", "files_written",
	"meta_ops", "io_time_s",
}

// WriteCSV writes records to w, header first.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("iolog: write header: %w", err)
	}
	row := make([]string, len(header))
	for i := range records {
		r := &records[i]
		row[0] = strconv.FormatInt(r.JobID, 10)
		row[1] = strconv.FormatInt(r.BytesRead, 10)
		row[2] = strconv.FormatInt(r.BytesWritten, 10)
		row[3] = strconv.Itoa(r.FilesRead)
		row[4] = strconv.Itoa(r.FilesWritten)
		row[5] = strconv.FormatInt(r.MetaOps, 10)
		row[6] = strconv.FormatFloat(r.IOTime.Seconds(), 'f', 3, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("iolog: write job %d: %w", r.JobID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads an I/O log written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("iolog: read header: %w", err)
	}
	if len(first) != len(header) || first[0] != header[0] {
		return nil, fmt.Errorf("iolog: unexpected header %v", first)
	}
	var records []Record
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("iolog: line %d: %w", line, err)
		}
		rr, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("iolog: line %d: %w", line, err)
		}
		records = append(records, rr)
	}
	return records, nil
}

func parseRow(rec []string) (Record, error) {
	if len(rec) != len(header) {
		return Record{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var r Record
	var err error
	if r.JobID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return Record{}, fmt.Errorf("job_id: %w", err)
	}
	if r.BytesRead, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return Record{}, fmt.Errorf("bytes_read: %w", err)
	}
	if r.BytesWritten, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
		return Record{}, fmt.Errorf("bytes_written: %w", err)
	}
	if r.FilesRead, err = strconv.Atoi(rec[3]); err != nil {
		return Record{}, fmt.Errorf("files_read: %w", err)
	}
	if r.FilesWritten, err = strconv.Atoi(rec[4]); err != nil {
		return Record{}, fmt.Errorf("files_written: %w", err)
	}
	if r.MetaOps, err = strconv.ParseInt(rec[5], 10, 64); err != nil {
		return Record{}, fmt.Errorf("meta_ops: %w", err)
	}
	secs, err := strconv.ParseFloat(rec[6], 64)
	if err != nil {
		return Record{}, fmt.Errorf("io_time_s: %w", err)
	}
	r.IOTime = time.Duration(secs * float64(time.Second))
	return r, nil
}

// ByJob indexes records by job ID.
func ByJob(records []Record) map[int64]Record {
	m := make(map[int64]Record, len(records))
	for _, r := range records {
		m[r.JobID] = r
	}
	return m
}
