// Package iolog models the Darshan-style I/O behavior log of Mira: one
// summary record per instrumented job with aggregate bytes moved, file
// counts and time spent in I/O.
package iolog

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fastcsv"
)

// Record is one job's I/O summary.
type Record struct {
	JobID        int64
	BytesRead    int64
	BytesWritten int64
	FilesRead    int
	FilesWritten int
	MetaOps      int64         // metadata operations (open/stat/seek)
	IOTime       time.Duration // cumulative time in I/O calls across ranks
}

// TotalBytes returns read+written bytes.
func (r *Record) TotalBytes() int64 { return r.BytesRead + r.BytesWritten }

// Validate performs sanity checks.
func (r *Record) Validate() error {
	switch {
	case r.JobID <= 0:
		return fmt.Errorf("iolog: record for job %d: non-positive job id", r.JobID)
	case r.BytesRead < 0 || r.BytesWritten < 0:
		return fmt.Errorf("iolog: job %d: negative byte counts", r.JobID)
	case r.FilesRead < 0 || r.FilesWritten < 0 || r.MetaOps < 0:
		return fmt.Errorf("iolog: job %d: negative counts", r.JobID)
	case r.IOTime < 0:
		return fmt.Errorf("iolog: job %d: negative io time", r.JobID)
	}
	return nil
}

var header = []string{
	"job_id", "bytes_read", "bytes_written", "files_read", "files_written",
	"meta_ops", "io_time_s",
}

// writeRecord encodes one I/O summary row.
func writeRecord(fw *fastcsv.Writer, r *Record) {
	fw.Int64(r.JobID)
	fw.Int64(r.BytesRead)
	fw.Int64(r.BytesWritten)
	fw.Int(r.FilesRead)
	fw.Int(r.FilesWritten)
	fw.Int64(r.MetaOps)
	fw.Float(r.IOTime.Seconds(), 3)
	fw.EndRecord()
}

// WriteCSV writes records to w, header first.
func WriteCSV(w io.Writer, records []Record) error {
	fw := fastcsv.NewWriter(w)
	for _, h := range header {
		fw.String(h)
	}
	fw.EndRecord()
	for i := range records {
		writeRecord(fw, &records[i])
	}
	if err := fw.Flush(); err != nil {
		return fmt.Errorf("iolog: write records: %w", err)
	}
	return nil
}

// headerOK checks field count plus leading column name, the same test the
// encoding/csv codec applied.
func headerOK(first [][]byte) bool {
	return len(first) == len(header) && string(first[0]) == header[0]
}

func headerStrings(rec [][]byte) []string {
	out := make([]string, len(rec))
	for i, f := range rec {
		out[i] = string(f)
	}
	return out
}

// ReadCSV reads an I/O log written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := fastcsv.NewReader(r)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("iolog: read header: %w", err)
	}
	if !headerOK(first) {
		return nil, fmt.Errorf("iolog: unexpected header %v", headerStrings(first))
	}
	var records []Record
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("iolog: line %d: %w", line, err)
		}
		rr, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("iolog: line %d: %w", line, err)
		}
		records = append(records, rr)
	}
	return records, nil
}

func parseRow(rec [][]byte) (Record, error) {
	if len(rec) != len(header) {
		return Record{}, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var r Record
	var err error
	if r.JobID, err = fastcsv.Int64(rec[0]); err != nil {
		return Record{}, fmt.Errorf("job_id: %w", err)
	}
	if r.BytesRead, err = fastcsv.Int64(rec[1]); err != nil {
		return Record{}, fmt.Errorf("bytes_read: %w", err)
	}
	if r.BytesWritten, err = fastcsv.Int64(rec[2]); err != nil {
		return Record{}, fmt.Errorf("bytes_written: %w", err)
	}
	if r.FilesRead, err = fastcsv.Int(rec[3]); err != nil {
		return Record{}, fmt.Errorf("files_read: %w", err)
	}
	if r.FilesWritten, err = fastcsv.Int(rec[4]); err != nil {
		return Record{}, fmt.Errorf("files_written: %w", err)
	}
	if r.MetaOps, err = fastcsv.Int64(rec[5]); err != nil {
		return Record{}, fmt.Errorf("meta_ops: %w", err)
	}
	secs, err := fastcsv.Float(rec[6])
	if err != nil {
		return Record{}, fmt.Errorf("io_time_s: %w", err)
	}
	r.IOTime = time.Duration(secs * float64(time.Second))
	return r, nil
}

// ByJob indexes records by job ID.
func ByJob(records []Record) map[int64]Record {
	m := make(map[int64]Record, len(records))
	for _, r := range records {
		m[r.JobID] = r
	}
	return m
}
