package pack

import (
	"encoding/binary"
	"fmt"
)

// sectionReader decodes one checksum-verified section payload. Every read
// is bounds-checked so a malformed (but checksum-colliding) payload returns
// a descriptive error instead of panicking or over-allocating.
//
// Errors are sticky: decoders call the primitives unconditionally and check
// err once per column, which keeps the per-value hot path free of error
// plumbing. After the first failure every primitive returns zeros, so a
// bounded loop over a corrupt payload terminates without doing further
// work.
//
// The column decoders (varintsInto, deltasInto, raw64sInto,
// dictIndexesInto) run the whole column as one loop over local variables —
// no per-value method calls — because the snapshot load path decodes about
// a million values per 120 corpus days and the call overhead alone would
// otherwise dominate the load. One-, two- and three-byte varints decode
// inline (delta-coded timestamps and 19-bit location codes cover nearly
// every value); only longer encodings fall back to binary.Uvarint.
type sectionReader struct {
	name string
	b    []byte
	off  int
	err  error
}

func (r *sectionReader) remaining() int { return len(r.b) - r.off }

func (r *sectionReader) errf(format string, args ...any) error {
	return fmt.Errorf("pack: section %s at byte %d: %s", r.name, r.off, fmt.Sprintf(format, args...))
}

// fail records the first error; later failures keep it.
func (r *sectionReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = r.errf(format, args...)
	}
}

// uv decodes one uvarint.
//
//mira:hotpath
func (r *sectionReader) uv() uint64 {
	if i := r.off; i < len(r.b) && r.b[i] < 0x80 {
		r.off = i + 1
		return uint64(r.b[i])
	}
	return r.uvSlow()
}

func (r *sectionReader) uvSlow() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong uvarint")
		return 0
	}
	r.off += n
	return v
}

// v decodes one zigzag varint.
//
//mira:hotpath
func (r *sectionReader) v() int64 {
	ux := r.uv()
	return int64(ux>>1) ^ -int64(ux&1)
}

// count reads a row/element count and sanity-checks it against the bytes
// left (every encoded element occupies at least one byte).
func (r *sectionReader) count(what string) int {
	v := r.uv()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining()) {
		r.fail("%s count %d exceeds remaining %d bytes", what, v, r.remaining())
		return 0
	}
	return int(v)
}

// varintsInto decodes len(dst) zigzag varints into dst.
//
//mira:hotpath
func (r *sectionReader) varintsInto(dst []int64) {
	b, off := r.b, r.off
	for i := range dst {
		var ux uint64
		if off < len(b) && b[off] < 0x80 {
			ux = uint64(b[off])
			off++
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1])<<7
			off += 2
		} else if off+2 < len(b) && b[off+2] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1]&0x7f)<<7 | uint64(b[off+2])<<14
			off += 3
		} else {
			x, n := binary.Uvarint(b[off:])
			if n <= 0 {
				r.off = off
				r.fail("truncated or overlong uvarint")
				return
			}
			ux = x
			off += n
		}
		dst[i] = int64(ux>>1) ^ -int64(ux&1)
	}
	r.off = off
}

// deltasInto decodes len(dst) delta-encoded values into dst, resolving the
// running sums.
//
//mira:hotpath
func (r *sectionReader) deltasInto(dst []int64) {
	b, off := r.b, r.off
	prev := int64(0)
	for i := range dst {
		var ux uint64
		if off < len(b) && b[off] < 0x80 {
			ux = uint64(b[off])
			off++
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1])<<7
			off += 2
		} else if off+2 < len(b) && b[off+2] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1]&0x7f)<<7 | uint64(b[off+2])<<14
			off += 3
		} else {
			x, n := binary.Uvarint(b[off:])
			if n <= 0 {
				r.off = off
				r.fail("truncated or overlong uvarint")
				return
			}
			ux = x
			off += n
		}
		prev += int64(ux>>1) ^ -int64(ux&1)
		dst[i] = prev
	}
	r.off = off
}

// raw64sInto decodes len(dst) raw little-endian int64s into dst.
//
//mira:hotpath
func (r *sectionReader) raw64sInto(dst []int64) {
	if r.remaining() < 8*len(dst) {
		//lint:ignore hotalloc cold corrupt-input path; boxing happens only when the decode already failed
		r.fail("raw column needs %d bytes, %d remain", 8*len(dst), r.remaining())
		return
	}
	b := r.b[r.off:]
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	r.off += 8 * len(dst)
}

// deltaInts decodes len(dst) delta-encoded values into dst.
//
//mira:hotpath
func (r *sectionReader) deltaInts(dst []int) {
	prev := 0
	for i := range dst {
		prev += int(r.v())
		dst[i] = prev
	}
}

// dictTable decodes a dictionary's entry table. Decoded rows share the
// entries' string backing, so a dictionary column interns for free.
func (r *sectionReader) dictTable() []string {
	n := r.count("dictionary")
	entries := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		size := r.uv()
		if size > uint64(r.remaining()) {
			r.fail("dictionary entry of %d bytes exceeds remaining %d", size, r.remaining())
			break
		}
		entries = append(entries, string(r.b[r.off:r.off+int(size)]))
		r.off += int(size)
	}
	return entries
}

// dictIndexesInto decodes len(dst) dictionary row indexes into dst, each
// bounds-checked against a table of n entries. Callers must not use dst to
// index the table if r.err is set afterwards.
//
//mira:hotpath
func (r *sectionReader) dictIndexesInto(dst []int64, n int) {
	b, off := r.b, r.off
	for i := range dst {
		var ux uint64
		if off < len(b) && b[off] < 0x80 {
			ux = uint64(b[off])
			off++
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1])<<7
			off += 2
		} else {
			x, sz := binary.Uvarint(b[off:])
			if sz <= 0 {
				r.off = off
				r.fail("truncated or overlong uvarint")
				return
			}
			ux = x
			off += sz
		}
		if ux >= uint64(n) {
			r.off = off
			//lint:ignore hotalloc cold corrupt-input path; boxing happens only when the decode already failed
			r.fail("dictionary index %d out of range [0,%d)", ux, n)
			return
		}
		dst[i] = int64(ux)
	}
	r.off = off
}

// varints32Into decodes len(dst) zigzag varints into dst, failing on any
// value outside [0, bound). Columns whose values are bounded by
// construction (severities, location codes, dictionary indexes, counts)
// decode through this into int32 scratch: half the scratch bytes of an
// int64 column, which matters because scratch zeroing and cache traffic
// are a large share of a snapshot load.
//
//mira:hotpath
func (r *sectionReader) varints32Into(dst []int32, bound int64, what string) {
	b, off := r.b, r.off
	for i := range dst {
		var ux uint64
		if off < len(b) && b[off] < 0x80 {
			ux = uint64(b[off])
			off++
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1])<<7
			off += 2
		} else if off+2 < len(b) && b[off+2] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1]&0x7f)<<7 | uint64(b[off+2])<<14
			off += 3
		} else {
			x, n := binary.Uvarint(b[off:])
			if n <= 0 {
				r.off = off
				r.fail("truncated or overlong uvarint")
				return
			}
			ux = x
			off += n
		}
		v := int64(ux>>1) ^ -int64(ux&1)
		if v < 0 || v >= bound {
			r.off = off
			//lint:ignore hotalloc cold corrupt-input path; boxing happens only when the decode already failed
			r.fail("%s %d out of range [0,%d)", what, v, bound)
			return
		}
		dst[i] = int32(v)
	}
	r.off = off
}

// dictIndexes32Into is dictIndexesInto with int32 scratch.
//
//mira:hotpath
func (r *sectionReader) dictIndexes32Into(dst []int32, n int) {
	b, off := r.b, r.off
	for i := range dst {
		var ux uint64
		if off < len(b) && b[off] < 0x80 {
			ux = uint64(b[off])
			off++
		} else if off+1 < len(b) && b[off+1] < 0x80 {
			ux = uint64(b[off]&0x7f) | uint64(b[off+1])<<7
			off += 2
		} else {
			x, sz := binary.Uvarint(b[off:])
			if sz <= 0 {
				r.off = off
				r.fail("truncated or overlong uvarint")
				return
			}
			ux = x
			off += sz
		}
		if ux >= uint64(n) {
			r.off = off
			//lint:ignore hotalloc cold corrupt-input path; boxing happens only when the decode already failed
			r.fail("dictionary index %d out of range [0,%d)", ux, n)
			return
		}
		dst[i] = int32(ux)
	}
	r.off = off
}

// done verifies the decode succeeded and consumed the payload exactly.
func (r *sectionReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return r.errf("%d trailing bytes after decode", r.remaining())
	}
	return nil
}
