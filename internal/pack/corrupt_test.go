package pack_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/pack"
)

// corruptSnapshot returns a fresh valid snapshot image for mutation.
func corruptSnapshot(t *testing.T) []byte {
	t.Helper()
	data := pack.Marshal(trickyDataset(t))
	return append([]byte(nil), data...)
}

// expectError asserts Unmarshal fails and mentions the expected phrase; it
// also asserts no partial dataset leaks out.
func expectError(t *testing.T, data []byte, phrase string) {
	t.Helper()
	d, err := pack.Unmarshal(data)
	if err == nil {
		t.Fatalf("want error mentioning %q, got a dataset", phrase)
	}
	if d != nil {
		t.Fatalf("error %v returned alongside a partial dataset", err)
	}
	if !strings.Contains(err.Error(), phrase) {
		t.Fatalf("error %q does not mention %q", err, phrase)
	}
	// Inspect must reject header/section corruption the same way; section
	// payload corruption it also sees via the checksums.
	if _, err := pack.Inspect(data); err == nil && phrase != "" {
		// Inspect only validates the envelope; payload-level phrases that
		// pass checksums (none in these tests) would be acceptable.
		t.Fatalf("Inspect accepted a snapshot Unmarshal rejected (%q)", phrase)
	}
}

func TestTruncatedSnapshot(t *testing.T) {
	data := corruptSnapshot(t)
	for _, tc := range []struct {
		name   string
		keep   int
		phrase string
	}{
		{"empty", 0, "header"},
		{"mid-header", 10, "header"},
		{"mid-table", 30, "section table"},
		{"mid-payload", len(data) - 1, "exceeds file size"},
		{"half", len(data) / 2, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			truncated := data[:tc.keep]
			if _, err := pack.Unmarshal(truncated); err == nil {
				t.Fatal("truncated snapshot decoded without error")
			}
			if tc.phrase != "" {
				expectError(t, truncated, tc.phrase)
			}
		})
	}
}

func TestFlippedByte(t *testing.T) {
	base := corruptSnapshot(t)
	// Flip one byte in every section payload region (past the header and
	// table): each must be caught by that section's checksum.
	headerEnd := 16 + 5*24
	stride := (len(base) - headerEnd) / 16
	if stride == 0 {
		stride = 1
	}
	for off := headerEnd; off < len(base); off += stride {
		data := append([]byte(nil), base...)
		data[off] ^= 0x40
		expectError(t, data, "checksum mismatch")
	}
}

func TestFlippedChecksumByte(t *testing.T) {
	// Flipping a stored checksum (not the payload) must also fail loudly.
	data := corruptSnapshot(t)
	data[16+4] ^= 0x01 // crc32 field of the first section entry
	expectError(t, data, "checksum mismatch")
}

func TestWrongMagic(t *testing.T) {
	data := corruptSnapshot(t)
	copy(data, "NOTAPACK")
	expectError(t, data, "not a mirapack snapshot")
}

func TestWrongVersion(t *testing.T) {
	data := corruptSnapshot(t)
	binary.LittleEndian.PutUint32(data[8:], pack.Version+1)
	expectError(t, data, "supports only version")
}

func TestMissingSection(t *testing.T) {
	// Rewrite the table to claim zero sections: structurally valid, but the
	// decoder must notice the missing logs rather than return empties.
	data := corruptSnapshot(t)
	binary.LittleEndian.PutUint32(data[12:], 0)
	expectError(t, data, "no events section")
}
