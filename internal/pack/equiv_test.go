package pack_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pack"
)

// TestExperimentsEqualCSVvsPack pins the end-to-end guarantee: a corpus
// loaded from the binary snapshot produces bit-identical analysis results
// to the same corpus loaded from CSV, for every experiment in the suite
// (E1–E23).
func TestExperimentsEqualCSVvsPack(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	d := generatedDataset(t)
	dir := t.TempDir()
	jb, tb, rb, ib := writeCSVs(t, d)
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"jobs.csv", jb}, {"tasks.csv", tb}, {"ras.csv", rb}, {"io.csv", ib},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fromCSV, err := pack.LoadDir(dir, pack.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := pack.WriteFile(pack.SnapshotPath(dir), fromCSV); err != nil {
		t.Fatal(err)
	}
	fromPack, err := pack.LoadDir(dir, pack.FormatPack)
	if err != nil {
		t.Fatal(err)
	}

	csvEnv := experiments.NewEnvFromDataset(fromCSV)
	packEnv := experiments.NewEnvFromDataset(fromPack)
	for _, exp := range experiments.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			resCSV, errCSV := exp.Run(csvEnv)
			resPack, errPack := exp.Run(packEnv)
			if (errCSV == nil) != (errPack == nil) {
				t.Fatalf("csv err=%v, pack err=%v", errCSV, errPack)
			}
			if errCSV != nil {
				if errCSV.Error() != errPack.Error() {
					t.Fatalf("different errors: csv %v, pack %v", errCSV, errPack)
				}
				return
			}
			if len(resCSV.Metrics) == 0 {
				t.Fatalf("%s produced no metrics", exp.ID)
			}
			if len(resCSV.Metrics) != len(resPack.Metrics) {
				t.Fatalf("metric count differs: csv %d, pack %d", len(resCSV.Metrics), len(resPack.Metrics))
			}
			for k, v := range resCSV.Metrics {
				pv, ok := resPack.Metrics[k]
				if !ok {
					t.Errorf("metric %s missing from pack run", k)
					continue
				}
				if v != pv && !(math.IsNaN(v) && math.IsNaN(pv)) {
					t.Errorf("metric %s: csv %v, pack %v", k, v, pv)
				}
			}
		})
	}
}
