package pack

// Allocation pins for the //mira:hotpath column decoders: every *Into
// primitive decodes into caller-owned scratch, so the per-value loops
// of a snapshot load allocate nothing. The hotalloc analyzer
// (internal/lint) enforces this statically; this test pins it
// dynamically against the real encoder output.

import (
	"math/rand"
	"testing"
)

func TestDecodeCoresAllocFree(t *testing.T) {
	const n = 4096
	const tableN = 1000
	const bound = int64(1) << 19
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, n)
	sorted := make([]int64, n)
	ints := make([]int, n)
	bounded := make([]int64, n)
	indexes := make([]uint64, n)
	prev := int64(0)
	for i := range vals {
		vals[i] = rng.Int63n(1<<40) - (1 << 39)
		prev += rng.Int63n(4096)
		sorted[i] = prev
		ints[i] = i * 3
		bounded[i] = rng.Int63n(bound)
		indexes[i] = uint64(rng.Intn(tableN))
	}
	var w sectionWriter
	w.varints(vals)
	w.deltaInt64s(sorted)
	w.rawInt64s(vals)
	w.deltaInts(ints)
	w.varints(bounded)
	for _, id := range indexes {
		w.uvarint(id) // dictIndexesInto stream
	}
	for _, id := range indexes {
		w.uvarint(id) // dictIndexes32Into stream
	}
	w.uvarint(42)
	w.varint(-17)
	payload := w.buf

	dst64 := make([]int64, n)
	dst32 := make([]int32, n)
	dstInt := make([]int, n)
	decodeAll := func() {
		r := sectionReader{name: "alloc-test", b: payload}
		r.varintsInto(dst64)
		r.deltasInto(dst64)
		r.raw64sInto(dst64)
		r.deltaInts(dstInt)
		r.varints32Into(dst32, bound, "bounded value")
		r.dictIndexesInto(dst64, tableN)
		r.dictIndexes32Into(dst32, tableN)
		if got := r.uv(); got != 42 {
			t.Fatalf("uv decoded %d, want 42", got)
		}
		if got := r.v(); got != -17 {
			t.Fatalf("v decoded %d, want -17", got)
		}
		if err := r.done(); err != nil {
			t.Fatal(err)
		}
	}
	// Correctness first: the final columns decoded must match the input.
	decodeAll()
	for i := range indexes {
		if dst64[i] != int64(indexes[i]) || dst32[i] != int32(indexes[i]) {
			t.Fatalf("dictionary index %d decoded as %d/%d, want %d", i, dst64[i], dst32[i], indexes[i])
		}
	}
	if n := testing.AllocsPerRun(10, decodeAll); n != 0 {
		t.Errorf("hot decode cores allocate %v per section pass, want 0", n)
	}
}
