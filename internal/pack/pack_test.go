package pack_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/pack"
	"repro/internal/raslog"
	"repro/internal/sim"
	"repro/internal/tasklog"
)

// trickyDataset exercises the quoting- and encoding-sensitive paths: RAS
// messages with embedded quotes/newlines/leading spaces (the PR 2 golden
// corpus cases), unsorted job ids, out-of-order timestamps in jobs, jobs
// without tasks or I/O records, and events without job attribution.
func trickyDataset(t *testing.T) *core.Dataset {
	t.Helper()
	t0 := time.Date(2013, 4, 9, 0, 0, 0, 0, time.UTC)
	jobs := []joblog.Job{
		{
			ID: 7, User: "alice", Project: "climate", Queue: "prod",
			Submit: t0, Start: t0.Add(5 * time.Minute), End: t0.Add(2 * time.Hour),
			WalltimeReq: 3 * time.Hour, Nodes: 512, RanksPerNode: 16, NumTasks: 1,
			ExitStatus: joblog.ExitSuccess,
		},
		{
			ID: 3, User: `bob "the builder"`, Project: "lattice,qcd", Queue: "prod",
			Submit: t0.Add(-time.Hour), Start: t0, End: t0.Add(30 * time.Minute),
			WalltimeReq: time.Hour, Nodes: 1024, RanksPerNode: 32, NumTasks: 2,
			ExitStatus: joblog.ExitSigSegv,
		},
		{
			ID: 12, User: "alice", Project: "climate", Queue: "backfill",
			Submit: t0.Add(time.Hour), Start: t0.Add(90 * time.Minute), End: t0.Add(4 * time.Hour),
			WalltimeReq: 6 * time.Hour, Nodes: 2048, RanksPerNode: 16, NumTasks: 1,
			ExitStatus: joblog.ExitSystemReserved,
		},
	}
	tasks := []tasklog.Task{
		{ID: 1, JobID: 7, Block: machine.Block{BaseMidplane: 0, Midplanes: 1}, Start: jobs[0].Start, End: jobs[0].End, Nodes: 512, ExitStatus: 0},
		{ID: 2, JobID: 3, Block: machine.Block{BaseMidplane: 4, Midplanes: 2}, Start: jobs[1].Start, End: jobs[1].End, Nodes: 1024, ExitStatus: 139},
		{ID: 3, JobID: 12, Block: machine.Block{BaseMidplane: 8, Midplanes: 4}, Start: jobs[2].Start, End: jobs[2].End, Nodes: 2048, ExitStatus: 320},
	}
	mustLoc := func(s string) machine.Location {
		loc, err := machine.ParseLocation(s)
		if err != nil {
			t.Fatal(err)
		}
		return loc
	}
	events := []raslog.Event{
		{RecID: 1, MsgID: "00040001", Comp: raslog.CompDDR, Cat: raslog.CatMemory, Sev: raslog.Info,
			Time: t0.Add(time.Minute), Loc: mustLoc("R02-M0-N03-J07"), JobID: 0, Count: 1,
			Message: "DDR correctable error summary"},
		{RecID: 2, MsgID: "00040003", Comp: raslog.CompDDR, Cat: raslog.CatMemory, Sev: raslog.Fatal,
			Time: t0.Add(10 * time.Minute), Loc: mustLoc("R02-M0-N03-J07"), JobID: 3, Count: 3,
			Message: `uncorrectable error, count="high"` + "\nsecond line"},
		{RecID: 3, MsgID: "00140002", Comp: raslog.CompCNK, Cat: raslog.CatSoftware, Sev: raslog.Warn,
			Time: t0.Add(20 * time.Minute), Loc: mustLoc("R04"), JobID: 12, Count: 1,
			Message: " leading space"},
		{RecID: 4, MsgID: "00200003", Comp: raslog.CompMMCS, Cat: raslog.CatInfra, Sev: raslog.Fatal,
			Time: t0.Add(3 * time.Hour), Loc: machine.System(), JobID: 12, Count: 1,
			Message: "service node failover"},
	}
	ioRecs := []iolog.Record{
		{JobID: 7, BytesRead: 1 << 40, BytesWritten: 123456789, FilesRead: 12, FilesWritten: 3,
			MetaOps: 99999, IOTime: 90*time.Minute + 123*time.Millisecond},
	}
	d, err := core.NewDataset(jobs, tasks, events, ioRecs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// generatedDataset builds a small but realistic corpus via the simulator.
func generatedDataset(t testing.TB) *core.Dataset {
	t.Helper()
	cfg := sim.SmallConfig()
	c, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// csvNormalize round-trips the dataset through the CSV codecs, truncating
// timestamps to the second granularity the corpus files (and the pack
// format) store. The simulator emits sub-second times in memory; on disk
// every corpus is second-granular, which is the precision the round-trip
// guarantees are defined over.
func csvNormalize(t *testing.T, d *core.Dataset) *core.Dataset {
	t.Helper()
	jb, tb, rb, ib := writeCSVs(t, d)
	jobs, err := joblog.ReadCSV(bytes.NewReader(jb))
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := tasklog.ReadCSV(bytes.NewReader(tb))
	if err != nil {
		t.Fatal(err)
	}
	events, err := raslog.ReadCSV(bytes.NewReader(rb))
	if err != nil {
		t.Fatal(err)
	}
	ioRecs, err := iolog.ReadCSV(bytes.NewReader(ib))
	if err != nil {
		t.Fatal(err)
	}
	norm, err := core.NewDataset(jobs, tasks, events, ioRecs)
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

// writeCSVs renders the dataset's four logs as CSV byte images.
func writeCSVs(t *testing.T, d *core.Dataset) (jobs, tasks, ras, io []byte) {
	t.Helper()
	var jb, tb, rb, ib bytes.Buffer
	if err := joblog.WriteCSV(&jb, d.Jobs); err != nil {
		t.Fatal(err)
	}
	if err := tasklog.WriteCSV(&tb, d.Tasks); err != nil {
		t.Fatal(err)
	}
	if err := raslog.WriteCSV(&rb, d.Events); err != nil {
		t.Fatal(err)
	}
	if err := iolog.WriteCSV(&ib, d.IO); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), tb.Bytes(), rb.Bytes(), ib.Bytes()
}

// TestRoundTripCSVByteIdentical pins the headline property: CSV → pack →
// CSV is byte-identical for all four logs, on both a hand-built corpus
// with quoting hazards and a simulator-generated one.
func TestRoundTripCSVByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *core.Dataset
	}{
		{"tricky", trickyDataset(t)},
		{"generated", generatedDataset(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			j1, t1, r1, i1 := writeCSVs(t, tc.d)
			back, err := pack.Unmarshal(pack.Marshal(tc.d))
			if err != nil {
				t.Fatal(err)
			}
			j2, t2, r2, i2 := writeCSVs(t, back)
			for _, cmp := range []struct {
				log  string
				a, b []byte
			}{
				{"jobs", j1, j2}, {"tasks", t1, t2}, {"ras", r1, r2}, {"io", i1, i2},
			} {
				if !bytes.Equal(cmp.a, cmp.b) {
					t.Errorf("%s CSV differs after pack round trip", cmp.log)
				}
			}
		})
	}
}

// TestRoundTripDatasetEqual pins the second property: the dataset loaded
// from a snapshot deep-equals the dataset the snapshot was written from —
// logs, derived indexes and window bounds included.
func TestRoundTripDatasetEqual(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *core.Dataset
	}{
		{"tricky", trickyDataset(t)},
		{"generated", csvNormalize(t, generatedDataset(t))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			back, err := pack.Unmarshal(pack.Marshal(tc.d))
			if err != nil {
				t.Fatal(err)
			}
			// Force the scan column views on both sides: the source builds
			// them lazily from the AoS logs, the decoded side adopted them
			// from the stored columns — the deep-equal then also pins the
			// two construction paths to identical views.
			tc.d.JobView()
			tc.d.EventView()
			back.JobView()
			back.EventView()
			if !reflect.DeepEqual(tc.d, back) {
				t.Fatal("dataset differs after pack round trip")
			}
		})
	}
}

// TestMarshalMatchesCSVGranularity pins the property miragen relies on:
// packing an in-memory dataset (sub-second times and all) produces exactly
// the snapshot of its CSV-granular form, so the file written next to the
// CSVs loads to the same dataset the CSVs parse to.
func TestMarshalMatchesCSVGranularity(t *testing.T) {
	d := generatedDataset(t)
	if !bytes.Equal(pack.Marshal(d), pack.Marshal(csvNormalize(t, d))) {
		t.Fatal("snapshot of in-memory dataset differs from snapshot of its CSV round trip")
	}
}

// TestPackLoadEqualsCSVLoad writes a corpus directory both ways and checks
// the two loaders agree exactly, prebuilt indexes included.
func TestPackLoadEqualsCSVLoad(t *testing.T) {
	d := generatedDataset(t)
	dir := t.TempDir()
	jb, tb, rb, ib := writeCSVs(t, d)
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"jobs.csv", jb}, {"tasks.csv", tb}, {"ras.csv", rb}, {"io.csv", ib},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fromCSV, err := pack.LoadDir(dir, pack.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := pack.WriteFile(pack.SnapshotPath(dir), fromCSV); err != nil {
		t.Fatal(err)
	}
	fromPack, err := pack.LoadDir(dir, pack.FormatPack)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromCSV, fromPack) {
		t.Fatal("pack-loaded dataset differs from CSV-loaded dataset")
	}
	// Auto-detection prefers the snapshot when present.
	auto, err := pack.LoadDir(dir, pack.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, fromPack) {
		t.Fatal("auto-loaded dataset differs from pack-loaded dataset")
	}
	// And falls back to CSV when absent.
	if err := os.Remove(pack.SnapshotPath(dir)); err != nil {
		t.Fatal(err)
	}
	fallback, err := pack.LoadDir(dir, pack.FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fallback, fromCSV) {
		t.Fatal("auto fallback dataset differs from CSV-loaded dataset")
	}
}

// TestReadEventsFile checks the events-only fast path mirafilter uses.
func TestReadEventsFile(t *testing.T) {
	d := trickyDataset(t)
	path := filepath.Join(t.TempDir(), pack.SnapshotName)
	if err := pack.WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	events, err := pack.ReadEventsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, d.Events) {
		t.Fatal("events-only read differs from dataset events")
	}
}

// TestInspect verifies the layout summary of a valid snapshot.
func TestInspect(t *testing.T) {
	data := pack.Marshal(trickyDataset(t))
	info, err := pack.Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != pack.Version {
		t.Fatalf("version %d, want %d", info.Version, pack.Version)
	}
	want := []string{"jobs", "tasks", "events", "io", "indexes"}
	if len(info.Sections) != len(want) {
		t.Fatalf("got %d sections, want %d", len(info.Sections), len(want))
	}
	total := 0
	for i, s := range info.Sections {
		if s.Name != want[i] {
			t.Errorf("section %d: name %q, want %q", i, s.Name, want[i])
		}
		if s.Bytes <= 0 {
			t.Errorf("section %s: empty payload", s.Name)
		}
		total += s.Bytes
	}
	if total >= len(data) {
		t.Fatalf("sections (%d bytes) leave no room for the header in %d", total, len(data))
	}
}
