package pack

import "encoding/binary"

// sectionWriter builds one section payload. Columns are appended with the
// three encodings of the format: delta+varint for sorted-ish integer
// streams (record ids, timestamps), plain zigzag varint for small integers,
// raw little-endian int64 for wide numerics, plus first-appearance-order
// dictionaries for low-cardinality string columns.
//
//mira:frozen
type sectionWriter struct {
	buf []byte
}

//mira:frozen
func (w *sectionWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

//mira:frozen
func (w *sectionWriter) varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// deltaInt64s encodes vals as zigzag varints of consecutive differences.
// For sorted columns the deltas are small and non-negative, so most values
// take one or two bytes; unsorted columns still round-trip, just larger.
//
//mira:frozen
func (w *sectionWriter) deltaInt64s(vals []int64) {
	prev := int64(0)
	for _, v := range vals {
		w.varint(v - prev)
		prev = v
	}
}

// varints encodes vals as independent zigzag varints.
//
//mira:frozen
func (w *sectionWriter) varints(vals []int64) {
	for _, v := range vals {
		w.varint(v)
	}
}

// rawInt64s encodes vals as fixed-width little-endian int64s — for wide
// numerics (byte counters, nanosecond durations) where varints save little.
//
//mira:frozen
func (w *sectionWriter) rawInt64s(vals []int64) {
	for _, v := range vals {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
	}
}

// deltaInts is deltaInt64s for index slices.
//
//mira:frozen
func (w *sectionWriter) deltaInts(vals []int) {
	prev := 0
	for _, v := range vals {
		w.varint(int64(v - prev))
		prev = v
	}
}

// dict encodes a string column as a first-appearance-order dictionary
// (uvarint count, then len-prefixed entries) followed by one uvarint
// dictionary index per row.
//
//mira:frozen
func (w *sectionWriter) dict(vals []string) {
	index := make(map[string]uint64, 64)
	var entries []string
	idx := make([]uint64, len(vals))
	for i, s := range vals {
		id, ok := index[s]
		if !ok {
			id = uint64(len(entries))
			index[s] = id
			entries = append(entries, s)
		}
		idx[i] = id
	}
	w.uvarint(uint64(len(entries)))
	for _, s := range entries {
		w.uvarint(uint64(len(s)))
		w.buf = append(w.buf, s...)
	}
	for _, id := range idx {
		w.uvarint(id)
	}
}
