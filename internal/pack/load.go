package pack

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/tasklog"
)

// Format selects how a corpus directory is loaded.
type Format int

// Corpus formats.
const (
	// FormatAuto prefers the binary snapshot when corpus.mirapack exists
	// and falls back to the CSVs otherwise.
	FormatAuto Format = iota
	// FormatCSV forces the four CSV files.
	FormatCSV
	// FormatPack requires the binary snapshot.
	FormatPack
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatCSV:
		return "csv"
	case FormatPack:
		return "pack"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat parses a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "auto":
		return FormatAuto, nil
	case "csv":
		return FormatCSV, nil
	case "pack":
		return FormatPack, nil
	default:
		return 0, fmt.Errorf("pack: unknown corpus format %q (want auto, csv or pack)", s)
	}
}

// SnapshotPath returns the conventional snapshot path inside a corpus
// directory.
func SnapshotPath(dir string) string { return filepath.Join(dir, SnapshotName) }

// IsSnapshotFile reports whether the file at path begins with the snapshot
// magic — a cheap sniff for tools whose input may be either a CSV log or a
// snapshot. Unreadable or too-short files report false.
func IsSnapshotFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [len(magic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return string(head[:]) == magic
}

// LoadDir loads a corpus directory written by miragen into a fully indexed
// dataset. With FormatAuto it prefers the corpus.mirapack snapshot (one
// read, no parse) and falls back to the four CSVs.
func LoadDir(dir string, format Format) (*core.Dataset, error) {
	snapshot := SnapshotPath(dir)
	switch format {
	case FormatPack:
		return ReadFile(snapshot)
	case FormatCSV:
		return LoadCSVDir(dir)
	case FormatAuto:
		if _, err := os.Stat(snapshot); err == nil {
			return ReadFile(snapshot)
		}
		return LoadCSVDir(dir)
	default:
		return nil, fmt.Errorf("pack: unknown corpus format %v", format)
	}
}

// LoadCSVDir loads the four CSV logs from a corpus directory and indexes
// them the slow way (full parse plus index construction).
func LoadCSVDir(dir string) (*core.Dataset, error) {
	var jobs []joblog.Job
	var tasks []tasklog.Task
	var events []raslog.Event
	var ioRecs []iolog.Record
	for _, part := range []struct {
		file string
		read func(*os.File) error
	}{
		{"jobs.csv", func(f *os.File) (err error) { jobs, err = joblog.ReadCSV(f); return }},
		{"tasks.csv", func(f *os.File) (err error) { tasks, err = tasklog.ReadCSV(f); return }},
		{"ras.csv", func(f *os.File) (err error) { events, err = raslog.ReadCSV(f); return }},
		{"io.csv", func(f *os.File) (err error) { ioRecs, err = iolog.ReadCSV(f); return }},
	} {
		f, err := os.Open(filepath.Join(dir, part.file))
		if err != nil {
			return nil, err
		}
		err = part.read(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	d, err := core.NewDataset(jobs, tasks, events, ioRecs)
	if err != nil {
		return nil, err
	}
	// Build the scan column views eagerly so CSV- and snapshot-loaded
	// datasets are interchangeable (the snapshot decoder fills them from the
	// stored columns); the builders intern in the same first-appearance
	// order, so both paths produce identical views.
	d.JobView()
	d.EventView()
	return d, nil
}
