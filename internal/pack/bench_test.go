package pack_test

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/pack"
	"repro/internal/raslog"
	"repro/internal/sim"
	"repro/internal/tasklog"
)

// The paired LoadCSV/LoadPack benchmarks measure the full corpus-load hot
// path — disk to fully indexed core.Dataset — over the same corpus
// directory. LoadPack reports "speedup": one CSV load timed outside the
// benchmark timer divided by the per-iteration pack load, following the
// Serial/Parallel pairing convention of the PR 1/2 benches. The corpus is
// 120 days (≈22k jobs / ≈75k events): large enough that per-row parsing
// dominates and the ratio transfers to the 2001-day corpus.

const benchCorpusDays = 120

var (
	benchDirOnce sync.Once
	benchDir     string
	benchDirErr  error
)

// benchCorpusDir generates the benchmark corpus once per process and
// writes both representations into a temp directory.
func benchCorpusDir(b *testing.B) string {
	b.Helper()
	benchDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mirapack-bench-")
		if err != nil {
			benchDirErr = err
			return
		}
		cfg := sim.SmallConfig()
		cfg.Days = benchCorpusDays
		c, err := sim.Generate(cfg)
		if err != nil {
			benchDirErr = err
			return
		}
		d, err := core.NewDataset(c.Jobs, c.Tasks, c.Events, c.IO)
		if err != nil {
			benchDirErr = err
			return
		}
		for _, part := range []struct {
			file  string
			write func(*os.File) error
		}{
			{"jobs.csv", func(f *os.File) error { return joblog.WriteCSV(f, d.Jobs) }},
			{"tasks.csv", func(f *os.File) error { return tasklog.WriteCSV(f, d.Tasks) }},
			{"ras.csv", func(f *os.File) error { return raslog.WriteCSV(f, d.Events) }},
			{"io.csv", func(f *os.File) error { return iolog.WriteCSV(f, d.IO) }},
		} {
			f, err := os.Create(filepath.Join(dir, part.file))
			if err != nil {
				benchDirErr = err
				return
			}
			if err := part.write(f); err != nil {
				f.Close()
				benchDirErr = err
				return
			}
			if err := f.Close(); err != nil {
				benchDirErr = err
				return
			}
		}
		benchDirErr = pack.WriteFile(pack.SnapshotPath(dir), d)
		benchDir = dir
	})
	if benchDirErr != nil {
		b.Fatal(benchDirErr)
	}
	return benchDir
}

func BenchmarkLoadCSV(b *testing.B) {
	dir := benchCorpusDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	// Drop and collect the previous dataset outside the timer before each
	// load: a consumer loads into a fresh heap, and paying the collection of
	// the previous iteration's corpus inside the timed region would charge
	// the load for work the benchmark loop created.
	var d *core.Dataset
	var err error
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d = nil
		runtime.GC()
		b.StartTimer()
		d, err = pack.LoadDir(dir, pack.FormatCSV)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Jobs) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

func BenchmarkLoadPack(b *testing.B) {
	dir := benchCorpusDir(b)
	// Median of three CSV loads: the baseline is sampled outside the timer,
	// and a single sample on a shared machine can absorb a scheduling stall
	// that would swing the reported ratio by 2x.
	var samples []time.Duration
	for i := 0; i < 3; i++ {
		runtime.GC()
		t0 := time.Now()
		if _, err := pack.LoadDir(dir, pack.FormatCSV); err != nil {
			b.Fatal(err)
		}
		samples = append(samples, time.Since(t0))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	csvLoad := samples[1]
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	var d *core.Dataset
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d = nil
		runtime.GC()
		b.StartTimer()
		d, err = pack.LoadDir(dir, pack.FormatPack)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Jobs) == 0 {
			b.Fatal("empty dataset")
		}
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(csvLoad.Nanoseconds())/perIter, "speedup")
	}
}

// BenchmarkLoadPackEventsOnly measures the mirafilter fast path: decoding
// just the RAS events section of the snapshot.
func BenchmarkLoadPackEventsOnly(b *testing.B) {
	dir := benchCorpusDir(b)
	path := pack.SnapshotPath(dir)
	b.ReportAllocs()
	b.ResetTimer()
	var events []raslog.Event
	var err error
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		events = nil
		runtime.GC()
		b.StartTimer()
		events, err = pack.ReadEventsFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(events) == 0 {
			b.Fatal("no events")
		}
	}
}
