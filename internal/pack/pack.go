// Package pack implements the mirapack binary columnar corpus snapshot: a
// single versioned file holding the four Mira logs (job, task, RAS, I/O)
// column-major, plus the derived indexes core.NewDataset would otherwise
// rebuild by scanning the event stream. Loading a snapshot is one file
// read and a varint sweep — no CSV parsing, no string interning hash
// lookups, no index construction — which is what makes repeated
// mirareport/mirafilter/calibrate invocations over a 2001-day corpus
// cheap.
//
// # Layout (version 1)
//
//	[8]byte  magic "MIRAPACK"
//	uint32le version (1)
//	uint32le section count
//	per section (24 bytes each):
//	    uint32le id, uint32le crc32(IEEE) of the payload,
//	    uint64le absolute offset, uint64le length
//	section payloads, in table order
//
// Sections: jobs (1), tasks (2), events (3), io (4), indexes (5). Each
// log payload starts with a uvarint row count followed by its columns in a
// fixed order. Low-cardinality string columns (user, project, queue,
// message id, component, category, message text) are dictionary-encoded;
// record ids and timestamps are delta+varint; wide numerics (I/O byte
// counters, durations) are raw little-endian; everything else is a zigzag
// varint. The indexes payload serializes core.IndexSnapshot: the fatal and
// warn views (count + delta varints each), the info count, then the
// per-job event index — job count, total attributed-event count, and per
// job a delta-encoded job id (strictly ascending; decoding fails
// otherwise), its event count and delta-encoded event indexes — and
// finally the observation-window bounds as unix-second varints. Every
// section checksum is verified before decoding, and each decoded value is
// checked against its column's bound, so a truncated or corrupted snapshot
// fails loudly rather than yielding a partial dataset.
//
// DESIGN.md §10 specifies the format and its stability rules.
package pack

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/raslog"
	"repro/internal/scan"
	"repro/internal/tasklog"
)

// Format identity.
//
//mira:frozen
const (
	magic = "MIRAPACK"
	// Version is the current format version. Readers reject any other
	// version: the format promises compatibility only between identical
	// versions, and a version bump is the only sanctioned way to change
	// the layout (see DESIGN.md §10).
	Version = 1
)

// LayoutHash records the sha256 over the printed form of every
// //mira:frozen declaration in this package — the section table shape,
// the section order, and the column encodings. The packfreeze analyzer
// (internal/lint) recomputes the hash on every lint run: editing any
// frozen declaration without bumping Version and re-recording the hash
// fails `miralint`, and version 1 is additionally pinned inside the
// analyzer itself, so v1's layout can never change at all.
const LayoutHash = "sha256:aaf2950ff3e793569a519303e354cd93f506af29985381b624f8450147884191"

// SnapshotName is the conventional snapshot filename inside a corpus
// directory, next to the four CSVs.
const SnapshotName = "corpus.mirapack"

// Section ids.
//
//mira:frozen
const (
	secJobs uint32 = iota + 1
	secTasks
	secEvents
	secIO
	secIndexes
)

var sectionNames = map[uint32]string{
	secJobs:    "jobs",
	secTasks:   "tasks",
	secEvents:  "events",
	secIO:      "io",
	secIndexes: "indexes",
}

//mira:frozen
const (
	headerSize       = 8 + 4 + 4
	sectionEntrySize = 4 + 4 + 8 + 8
)

// Marshal serializes the dataset — logs and derived indexes — into a
// snapshot byte image. The section table it writes (ids, checksums,
// offsets) and the section order are part of the frozen v1 layout.
//
//mira:frozen
func Marshal(d *core.Dataset) []byte {
	sections := []struct {
		id      uint32
		payload []byte
	}{
		{secJobs, encodeJobs(d.Jobs)},
		{secTasks, encodeTasks(d.Tasks)},
		{secEvents, encodeEvents(d.Events)},
		{secIO, encodeIO(d.IO)},
		{secIndexes, encodeIndexes(d.ExportIndexes())},
	}
	total := headerSize + len(sections)*sectionEntrySize
	offset := uint64(total)
	for _, s := range sections {
		total += len(s.payload)
	}
	out := make([]byte, 0, total)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sections)))
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint32(out, s.id)
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(s.payload))
		out = binary.LittleEndian.AppendUint64(out, offset)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		offset += uint64(len(s.payload))
	}
	for _, s := range sections {
		out = append(out, s.payload...)
	}
	return out
}

// Write serializes the dataset to w.
func Write(w io.Writer, d *core.Dataset) error {
	if _, err := w.Write(Marshal(d)); err != nil {
		return fmt.Errorf("pack: write snapshot: %w", err)
	}
	return nil
}

// WriteFile writes the dataset snapshot to path.
func WriteFile(path string, d *core.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pack: %w", err)
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pack: close %s: %w", path, err)
	}
	return nil
}

// section is one verified, named payload.
type section struct {
	id      uint32
	payload []byte
}

// parseHeader validates magic, version and the section table, and verifies
// every section checksum. It returns sections in table order.
func parseHeader(data []byte) ([]section, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("pack: file of %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("pack: bad magic %q (want %q): not a mirapack snapshot", data[:8], magic)
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version != Version {
		return nil, fmt.Errorf("pack: snapshot version %d, this reader supports only version %d — regenerate the snapshot", version, Version)
	}
	count := binary.LittleEndian.Uint32(data[12:])
	tableEnd := headerSize + int(count)*sectionEntrySize
	if count > 64 || tableEnd > len(data) {
		return nil, fmt.Errorf("pack: truncated snapshot: section table of %d entries does not fit in %d bytes", count, len(data))
	}
	sections := make([]section, 0, count)
	for i := 0; i < int(count); i++ {
		entry := data[headerSize+i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(entry)
		sum := binary.LittleEndian.Uint32(entry[4:])
		off := binary.LittleEndian.Uint64(entry[8:])
		length := binary.LittleEndian.Uint64(entry[16:])
		name := sectionName(id)
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("pack: truncated snapshot: section %s [%d, +%d) exceeds file size %d", name, off, length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("pack: section %s checksum mismatch (stored %08x, computed %08x): snapshot is corrupt", name, sum, got)
		}
		sections = append(sections, section{id: id, payload: payload})
	}
	return sections, nil
}

func sectionName(id uint32) string {
	if n, ok := sectionNames[id]; ok {
		return n
	}
	return fmt.Sprintf("#%d", id)
}

// findSection returns the payload of the section with the given id.
func findSection(sections []section, id uint32) ([]byte, error) {
	for _, s := range sections {
		if s.id == id {
			return s.payload, nil
		}
	}
	return nil, fmt.Errorf("pack: snapshot has no %s section", sectionName(id))
}

// Unmarshal decodes a snapshot byte image into a fully indexed dataset.
func Unmarshal(data []byte) (*core.Dataset, error) {
	sections, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	var jobs []joblog.Job
	var tasks []tasklog.Task
	var events []raslog.Event
	var ioRecs []iolog.Record
	var snap core.IndexSnapshot
	var jv *scan.JobView
	var ev *scan.EventView
	// Events first: it needs the widest scratch, so every later section
	// decodes inside the arena the events pass already paid for.
	var a arena
	for _, dec := range []struct {
		id  uint32
		run func(payload []byte) error
	}{
		{secEvents, func(p []byte) (err error) { events, ev, err = decodeEvents(p, &a, true); return }},
		{secJobs, func(p []byte) (err error) { jobs, jv, err = decodeJobs(p, &a); return }},
		{secTasks, func(p []byte) (err error) { tasks, err = decodeTasks(p, &a); return }},
		{secIO, func(p []byte) (err error) { ioRecs, err = decodeIO(p, &a); return }},
		{secIndexes, func(p []byte) (err error) { snap, err = decodeIndexes(p); return }},
	} {
		payload, err := findSection(sections, dec.id)
		if err != nil {
			return nil, err
		}
		if err := dec.run(payload); err != nil {
			return nil, err
		}
	}
	d, err := core.NewDatasetFromSnapshot(jobs, tasks, events, ioRecs, snap)
	if err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	if err := d.AdoptViews(jv, ev); err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	return d, nil
}

// ReadFile loads a snapshot file into a fully indexed dataset: one read,
// one decode sweep, no index construction.
func ReadFile(path string) (*core.Dataset, error) {
	data, release, err := readSnapshot(path)
	if err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	defer release()
	d, err := Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("pack: %s: %w", path, err)
	}
	return d, nil
}

// UnmarshalEvents decodes only the RAS events section of a snapshot — the
// streaming tools (mirafilter) need nothing else.
func UnmarshalEvents(data []byte) ([]raslog.Event, error) {
	sections, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	payload, err := findSection(sections, secEvents)
	if err != nil {
		return nil, err
	}
	events, _, err := decodeEvents(payload, &arena{}, false)
	return events, err
}

// ReadEventsFile loads only the RAS events from a snapshot file.
func ReadEventsFile(path string) ([]raslog.Event, error) {
	data, release, err := readSnapshot(path)
	if err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	defer release()
	events, err := UnmarshalEvents(data)
	if err != nil {
		return nil, fmt.Errorf("pack: %s: %w", path, err)
	}
	return events, nil
}

// SectionInfo describes one section of an inspected snapshot.
type SectionInfo struct {
	Name  string
	Bytes int
	CRC   uint32
}

// Info is the verified header summary of a snapshot.
type Info struct {
	Version  uint32
	Sections []SectionInfo
}

// Inspect validates a snapshot's header, every section checksum and the
// presence of all five sections, and returns the layout summary, without
// decoding the columns.
func Inspect(data []byte) (*Info, error) {
	sections, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	for _, id := range []uint32{secJobs, secTasks, secEvents, secIO, secIndexes} {
		if _, err := findSection(sections, id); err != nil {
			return nil, err
		}
	}
	info := &Info{Version: Version}
	for _, s := range sections {
		info.Sections = append(info.Sections, SectionInfo{
			Name:  sectionName(s.id),
			Bytes: len(s.payload),
			CRC:   crc32.ChecksumIEEE(s.payload),
		})
	}
	return info, nil
}
