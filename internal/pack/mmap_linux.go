//go:build linux

package pack

import (
	"os"
	"syscall"
)

// readSnapshot maps the snapshot into memory instead of reading it into a
// fresh buffer: the pages come straight from the page cache, skipping the
// copy and the allocate-and-zero of a read buffer — which is measurable,
// because a snapshot load allocates little else besides the decoded rows.
// The returned release func unmaps; callers must not retain data (or
// anything aliasing it) past the call. Decoding copies everything it keeps,
// so Unmarshal output never aliases the mapping.
func readSnapshot(path string) (data []byte, release func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		// Empty (or absurd) files fall back to a plain read, which produces
		// the right "shorter than header" error downstream.
		data, err := os.ReadFile(path)
		return data, func() {}, err
	}
	// MAP_POPULATE prefaults the mapping in one batch; without it every
	// ~4KiB of the snapshot costs a soft page fault mid-decode.
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE|syscall.MAP_POPULATE)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, func() {}, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
