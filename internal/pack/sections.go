package pack

import (
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/scan"
	"repro/internal/tasklog"
)

// Per-log section payloads. Each starts with a uvarint row count and then
// the columns in the fixed order below; the column order is part of the
// format (DESIGN.md §10) and may only change with a version bump.
//
// The decoders write straight into the final row structs, one column pass
// at a time: no intermediate column slices, no string hashing (dictionary
// rows share the table's backing), and the one-byte varint fast path
// inlined — this loop is the whole point of the format, so it is kept
// allocation-free beyond the output itself.

// arena hands out scratch column space shared across section decodes: the
// transient decode buffers are allocated (and zeroed) once per load rather
// than once per section. Scratch never outlives its decoder — every value
// is copied into the output structs before the next take. Columns with
// bounded values use the int32 pool, halving their scratch footprint.
type arena struct {
	buf   []int64
	buf32 []int32
}

func (a *arena) take(n int) []int64 {
	if cap(a.buf) < n {
		a.buf = make([]int64, n)
	}
	return a.buf[:n]
}

func (a *arena) take32(n int) []int32 {
	if cap(a.buf32) < n {
		a.buf32 = make([]int32, n)
	}
	return a.buf32[:n]
}

// epoch-relative construction: time.Unix(sec, 0).UTC() stores a location
// pointer twice per call (write-barriered during GC); Add on a UTC base
// produces the identical Time value with plain integer arithmetic. The
// decoders build a few hundred thousand timestamps per load.
var epoch = time.Unix(0, 0).UTC()

func unixTime(sec int64) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }

//mira:frozen
func encodeJobs(jobs []joblog.Job) []byte {
	c := joblog.ToColumns(jobs)
	w := &sectionWriter{}
	w.uvarint(uint64(c.Rows()))
	w.deltaInt64s(c.ID)
	w.dict(c.User)
	w.dict(c.Project)
	w.dict(c.Queue)
	w.deltaInt64s(c.Submit)
	w.deltaInt64s(c.Start)
	w.deltaInt64s(c.End)
	w.varints(c.Walltime)
	w.varints(c.Nodes)
	w.varints(c.Ranks)
	w.varints(c.NumTasks)
	w.varints(c.Exit)
	return w.buf
}

// decodeJobs decodes the jobs section and, as a by-product of the same
// column pass, the scan.JobView column mirror: the stored dictionaries
// assign ids in first-appearance order — exactly the order the lazy
// core.BuildJobView interning would — so the dict indexes and tables are
// reused as the view's id columns verbatim. The view copies every column it
// keeps (scratch is arena-shared across sections).
//
//mira:hotpath
func decodeJobs(payload []byte, a *arena) ([]joblog.Job, *scan.JobView, error) {
	r := &sectionReader{name: "jobs", b: payload}
	n := r.count("row")
	scratch := a.take(5 * n)
	column := func(k int) []int64 { return scratch[k*n : (k+1)*n : (k+1)*n] }
	id, submit, start, end, exit := column(0), column(1), column(2), column(3), column(4)
	scratch32 := a.take32(7 * n)
	column32 := func(k int) []int32 { return scratch32[k*n : (k+1)*n : (k+1)*n] }
	user, project, queue := column32(0), column32(1), column32(2)
	wall, nodes, ranks, numTasks := column32(3), column32(4), column32(5), column32(6)

	r.deltasInto(id)
	users := r.dictTable()
	r.dictIndexes32Into(user, len(users))
	projects := r.dictTable()
	r.dictIndexes32Into(project, len(projects))
	queues := r.dictTable()
	r.dictIndexes32Into(queue, len(queues))
	r.deltasInto(submit)
	r.deltasInto(start)
	r.deltasInto(end)
	r.varints32Into(wall, 1<<31, "walltime")
	r.varints32Into(nodes, 1<<31, "node count")
	r.varints32Into(ranks, 1<<31, "ranks-per-node")
	r.varints32Into(numTasks, 1<<31, "task count")
	r.varintsInto(exit)
	if err := r.done(); err != nil {
		return nil, nil, err
	}

	var v *scan.JobView
	if n > 0 {
		v = &scan.JobView{
			N:          n,
			ID:         make([]int64, n),
			SubmitUnix: make([]int64, n),
			StartUnix:  make([]int64, n),
			EndUnix:    make([]int64, n),
			DurSec:     make([]int64, n),
			Nodes:      make([]int32, n),
			CoreSec:    make([]int64, n),
			Exit:       make([]int32, n),
			Family:     make([]uint8, n),
			UserID:     make([]int32, n),
			ProjectID:  make([]int32, n),
			Users:      users,
			Projects:   projects,
		}
	}
	jobs := make([]joblog.Job, n)
	for i := range jobs {
		j := &jobs[i]
		j.ID = id[i]
		j.User = users[user[i]]
		j.Project = projects[project[i]]
		j.Queue = queues[queue[i]]
		j.Submit = unixTime(submit[i])
		j.Start = unixTime(start[i])
		j.End = unixTime(end[i])
		j.WalltimeReq = time.Duration(wall[i]) * time.Second
		j.Nodes = int(nodes[i])
		j.RanksPerNode = int(ranks[i])
		j.NumTasks = int(numTasks[i])
		j.ExitStatus = int(exit[i])
		if v != nil {
			dur := end[i] - start[i]
			v.ID[i] = id[i]
			v.SubmitUnix[i] = submit[i]
			v.StartUnix[i] = start[i]
			v.EndUnix[i] = end[i]
			v.DurSec[i] = dur
			v.Nodes[i] = nodes[i]
			v.CoreSec[i] = int64(nodes[i]) * 16 * dur
			v.Exit[i] = int32(exit[i])
			v.Family[i] = joblog.FamilyCodeOf(int(exit[i]))
			v.UserID[i] = user[i]
			v.ProjectID[i] = project[i]
		}
	}
	return jobs, v, nil
}

//mira:frozen
func encodeTasks(tasks []tasklog.Task) []byte {
	c := tasklog.ToColumns(tasks)
	w := &sectionWriter{}
	w.uvarint(uint64(c.Rows()))
	w.deltaInt64s(c.ID)
	w.deltaInt64s(c.JobID)
	w.varints(c.Block)
	w.deltaInt64s(c.Start)
	w.deltaInt64s(c.End)
	w.varints(c.Nodes)
	w.varints(c.Exit)
	return w.buf
}

//mira:hotpath
func decodeTasks(payload []byte, a *arena) ([]tasklog.Task, error) {
	r := &sectionReader{name: "tasks", b: payload}
	n := r.count("row")
	scratch := a.take(5 * n)
	column := func(k int) []int64 { return scratch[k*n : (k+1)*n : (k+1)*n] }
	id, jobID, start, end, exit := column(0), column(1), column(2), column(3), column(4)
	scratch32 := a.take32(2 * n)
	block, nodes := scratch32[0*n:1*n:1*n], scratch32[1*n:2*n:2*n]

	r.deltasInto(id)
	r.deltasInto(jobID)
	// Block codes pack two bytes (base midplane, extent), so 1<<16 bounds
	// every valid code; BlockFromCode still validates the geometry.
	r.varints32Into(block, 1<<16, "block code")
	r.deltasInto(start)
	r.deltasInto(end)
	r.varints32Into(nodes, 1<<31, "node count")
	r.varintsInto(exit)
	if err := r.done(); err != nil {
		return nil, err
	}

	// Block codes repeat heavily (few hundred distinct blocks), so decode
	// each distinct code once.
	lastCode := int32(-1)
	var lastBlock machine.Block
	tasks := make([]tasklog.Task, n)
	for i := range tasks {
		if code := block[i]; code != lastCode {
			b, err := machine.BlockFromCode(uint32(code))
			if err != nil {
				return nil, r.errf("%v", err)
			}
			lastBlock = b
			lastCode = code
		}
		t := &tasks[i]
		t.ID = id[i]
		t.JobID = jobID[i]
		t.Block = lastBlock
		t.Start = unixTime(start[i])
		t.End = unixTime(end[i])
		t.Nodes = int(nodes[i])
		t.ExitStatus = int(exit[i])
	}
	return tasks, nil
}

//mira:frozen
func encodeEvents(events []raslog.Event) []byte {
	c := raslog.ToColumns(events)
	w := &sectionWriter{}
	w.uvarint(uint64(c.Rows()))
	w.deltaInt64s(c.RecID)
	w.dict(c.MsgID)
	w.dict(c.Comp)
	w.dict(c.Cat)
	w.varints(c.Sev)
	w.deltaInt64s(c.Time)
	w.varints(c.Loc)
	w.varints(c.JobID)
	w.varints(c.Count)
	w.dict(c.Message)
	return w.buf
}

// decodeEvents decodes the events section; with wantView it also fills the
// scan.EventView column mirror in the same materialization pass, reusing
// the first-appearance dict indexes as category/component ids and the
// cached per-code location decode for the dense midplane/rack id columns.
//
//mira:hotpath
func decodeEvents(payload []byte, a *arena, wantView bool) ([]raslog.Event, *scan.EventView, error) {
	r := &sectionReader{name: "events", b: payload}
	n := r.count("row")

	// Decode every column into scratch first, then materialize each event
	// with a single row-major pass: the struct stream is written exactly
	// once instead of once per column, which matters because the events
	// slice is by far the largest thing a load touches.
	scratch := a.take(3 * n)
	column := func(k int) []int64 { return scratch[k*n : (k+1)*n : (k+1)*n] }
	recID, when, jobID := column(0), column(1), column(2)
	scratch32 := a.take32(7 * n)
	column32 := func(k int) []int32 { return scratch32[k*n : (k+1)*n : (k+1)*n] }
	msgID, comp, cat, sev := column32(0), column32(1), column32(2), column32(3)
	loc, count, msg := column32(4), column32(5), column32(6)

	r.deltasInto(recID)
	msgIDs := r.dictTable()
	r.dictIndexes32Into(msgID, len(msgIDs))
	comps := r.dictTable()
	r.dictIndexes32Into(comp, len(comps))
	cats := r.dictTable()
	r.dictIndexes32Into(cat, len(cats))
	r.varints32Into(sev, int64(raslog.Fatal)+1, "severity")
	for _, v := range sev {
		if v < int32(raslog.Info) {
			//lint:ignore hotalloc cold corrupt-input path; boxing happens only when the decode already failed
			r.fail("severity %d out of range", v)
			break
		}
	}
	r.deltasInto(when)
	// Location codes use 19 significant bits (see machine.Location.Code);
	// LocationFromCode still rejects non-canonical codes inside the bound.
	r.varints32Into(loc, 1<<19, "location code")
	r.varintsInto(jobID)
	r.varints32Into(count, 1<<31, "event count")
	msgs := r.dictTable()
	r.dictIndexes32Into(msg, len(msgs))
	if err := r.done(); err != nil {
		return nil, nil, err
	}

	var v *scan.EventView
	if wantView && n > 0 {
		v = &scan.EventView{
			N:          n,
			TimeUnix:   make([]int64, n),
			Sev:        make([]uint8, n),
			CatID:      make([]int32, n),
			CompID:     make([]int32, n),
			MidplaneID: make([]int32, n),
			RackID:     make([]int32, n),
			Cats:       cats,
			Comps:      comps,
		}
	}
	// Location codes are high-cardinality (events land on any of 49k
	// nodes), so a decoded-code cache would miss more than it hits; the
	// bit-field decode is cheap enough to run per changed code.
	lastCode := int32(-1)
	var lastLoc machine.Location
	lastMid, lastRack := int32(-1), int32(-1)
	events := make([]raslog.Event, n)
	for i := range events {
		if code := loc[i]; code != lastCode {
			l, err := machine.LocationFromCode(uint32(code))
			if err != nil {
				return nil, nil, r.errf("%v", err)
			}
			lastLoc = l
			lastCode = code
			if v != nil {
				lastMid, lastRack = core.LocIDs(l)
			}
		}
		e := &events[i]
		e.RecID = recID[i]
		e.MsgID = msgIDs[msgID[i]]
		e.Comp = raslog.Component(comps[comp[i]])
		e.Cat = raslog.Category(cats[cat[i]])
		e.Sev = raslog.Severity(sev[i])
		e.Time = unixTime(when[i])
		e.Loc = lastLoc
		e.JobID = jobID[i]
		e.Count = int(count[i])
		e.Message = msgs[msg[i]]
		if v != nil {
			v.TimeUnix[i] = when[i]
			v.Sev[i] = uint8(sev[i])
			v.CatID[i] = cat[i]
			v.CompID[i] = comp[i]
			v.MidplaneID[i] = lastMid
			v.RackID[i] = lastRack
		}
	}
	return events, v, nil
}

//mira:frozen
func encodeIO(records []iolog.Record) []byte {
	c := iolog.ToColumns(records)
	w := &sectionWriter{}
	w.uvarint(uint64(c.Rows()))
	w.deltaInt64s(c.JobID)
	w.rawInt64s(c.BytesRead)
	w.rawInt64s(c.BytesWritten)
	w.varints(c.FilesRead)
	w.varints(c.FilesWritten)
	w.varints(c.MetaOps)
	w.rawInt64s(c.IOTimeNanos)
	return w.buf
}

//mira:hotpath
func decodeIO(payload []byte, a *arena) ([]iolog.Record, error) {
	r := &sectionReader{name: "io", b: payload}
	n := r.count("row")
	scratch := a.take(7 * n)
	column := func(k int) []int64 { return scratch[k*n : (k+1)*n : (k+1)*n] }
	jobID, bytesR, bytesW := column(0), column(1), column(2)
	filesR, filesW, meta, ioTime := column(3), column(4), column(5), column(6)

	r.deltasInto(jobID)
	r.raw64sInto(bytesR)
	r.raw64sInto(bytesW)
	r.varintsInto(filesR)
	r.varintsInto(filesW)
	r.varintsInto(meta)
	r.raw64sInto(ioTime)
	if err := r.done(); err != nil {
		return nil, err
	}

	recs := make([]iolog.Record, n)
	for i := range recs {
		rec := &recs[i]
		rec.JobID = jobID[i]
		rec.BytesRead = bytesR[i]
		rec.BytesWritten = bytesW[i]
		rec.FilesRead = int(filesR[i])
		rec.FilesWritten = int(filesW[i])
		rec.MetaOps = meta[i]
		rec.IOTime = time.Duration(ioTime[i])
	}
	return recs, nil
}

// encodeIndexes serializes the dataset's derived indexes: the severity
// views and per-job event lists are sorted integer streams, so they
// delta-encode tightly; map entries are written in ascending job-id order
// so the payload is deterministic. The total attributed-event count
// precedes the per-job lists so the decoder can carve every list out of a
// single backing allocation.
//
//mira:frozen
func encodeIndexes(snap core.IndexSnapshot) []byte {
	w := &sectionWriter{}
	w.uvarint(uint64(len(snap.FatalIdx)))
	w.deltaInts(snap.FatalIdx)
	w.uvarint(uint64(len(snap.WarnIdx)))
	w.deltaInts(snap.WarnIdx)
	w.uvarint(uint64(snap.InfoN))
	total := 0
	for _, je := range snap.JobEvents {
		total += len(je.Idx)
	}
	w.uvarint(uint64(len(snap.JobEvents)))
	w.uvarint(uint64(total))
	prev := int64(0)
	for _, je := range snap.JobEvents {
		w.varint(je.JobID - prev)
		prev = je.JobID
		w.uvarint(uint64(len(je.Idx)))
		w.deltaInts(je.Idx)
	}
	w.varint(snap.Start.Unix())
	w.varint(snap.End.Unix())
	return w.buf
}

func decodeIndexes(payload []byte) (core.IndexSnapshot, error) {
	r := &sectionReader{name: "indexes", b: payload}
	var snap core.IndexSnapshot
	snap.FatalIdx = make([]int, r.count("fatal index"))
	r.deltaInts(snap.FatalIdx)
	snap.WarnIdx = make([]int, r.count("warn index"))
	r.deltaInts(snap.WarnIdx)
	snap.InfoN = int(r.uv())
	jobs := r.count("job-index")
	total := r.count("attributed-event")
	snap.JobEvents = make([]core.JobEventIndex, 0, jobs)
	backing := make([]int, total)
	off := 0
	prev := int64(0)
	for i := 0; i < jobs && r.err == nil; i++ {
		delta := r.v()
		if i > 0 && delta <= 0 {
			r.fail("job ids not strictly ascending")
			break
		}
		prev += delta
		count := r.count("per-job event")
		if count > total-off {
			r.fail("per-job event count %d exceeds attributed total %d", count, total)
			break
		}
		idx := backing[off : off+count : off+count]
		off += count
		r.deltaInts(idx)
		snap.JobEvents = append(snap.JobEvents, core.JobEventIndex{JobID: prev, Idx: idx})
	}
	if r.err == nil && off != total {
		r.fail("per-job event lists hold %d indexes, header promised %d", off, total)
	}
	snap.Start = time.Unix(r.v(), 0).UTC()
	snap.End = time.Unix(r.v(), 0).UTC()
	if err := r.done(); err != nil {
		return core.IndexSnapshot{}, err
	}
	return snap, nil
}
