package pack_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/pack"
	"repro/internal/sel"
)

// whereProfileEqual compares the exported aggregates of two fused
// profiles (the pack-side mirror of the core equivalence helper).
func whereProfileEqual(t *testing.T, label string, got, want *core.FusedProfile) {
	t.Helper()
	cmp := func(name string, g, w interface{}) {
		t.Helper()
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: %s differs:\n  got  %+v\n  want %+v", label, name, g, w)
		}
	}
	cmp("Summary", got.Summary, want.Summary)
	cmp("Exit", got.Exit, want.Exit)
	cmp("Joint", got.Joint, want.Joint)
	cmp("UserGroups", got.UserGroups, want.UserGroups)
	cmp("ProjectGroups", got.ProjectGroups, want.ProjectGroups)
	cmp("Temporal", got.Temporal, want.Temporal)
	cmp("RAS", got.RAS, want.RAS)
	cmp("Waste", got.Waste, want.Waste)
	cmp("Interrupts", got.Interrupts, want.Interrupts)
	cmp("InterruptsErr", fmt.Sprint(got.InterruptsErr), fmt.Sprint(want.InterruptsErr))
	for _, lvl := range []machine.Level{machine.LevelMidplane, machine.LevelRack} {
		g, gErr := got.Locality(lvl)
		w, wErr := want.Locality(lvl)
		cmp("Locality("+lvl.String()+")", g, w)
		cmp("Locality("+lvl.String()+") err", fmt.Sprint(gErr), fmt.Sprint(wErr))
	}
}

// TestFusedScanWhereCSVvsPack closes the acceptance loop on the loader
// side: for each predicate, the pushdown profile must be identical on a
// CSV-loaded and a pack-loaded corpus, and each must equal its own
// materialize-then-scan reference, across worker counts.
func TestFusedScanWhereCSVvsPack(t *testing.T) {
	d := generatedDataset(t)
	dir := t.TempDir()
	jb, tb, rb, ib := writeCSVs(t, d)
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"jobs.csv", jb}, {"tasks.csv", tb}, {"ras.csv", rb}, {"io.csv", ib},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fromCSV, err := pack.LoadDir(dir, pack.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := pack.WriteFile(pack.SnapshotPath(dir), fromCSV); err != nil {
		t.Fatal(err)
	}
	fromPack, err := pack.LoadDir(dir, pack.FormatPack)
	if err != nil {
		t.Fatal(err)
	}

	jv := fromPack.JobView()
	preds := []string{
		fmt.Sprintf("user == %s", jv.Users[0]),
		"exit != success and nodes >= 1024",
		"sev == FATAL",
		fmt.Sprintf("project == %s and sev != INFO", jv.Projects[0]),
	}
	for _, where := range preds {
		e, err := sel.Parse(where)
		if err != nil {
			t.Fatalf("parse %q: %v", where, err)
		}
		md, err := fromPack.MaterializeWhere(e)
		if err != nil {
			t.Fatalf("materialize %q: %v", where, err)
		}
		ref, err := md.FusedScan(4)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			pCSV, err := fromCSV.FusedScanWhere(e, workers)
			if err != nil {
				t.Fatalf("csv FusedScanWhere(%q): %v", where, err)
			}
			pPack, err := fromPack.FusedScanWhere(e, workers)
			if err != nil {
				t.Fatalf("pack FusedScanWhere(%q): %v", where, err)
			}
			whereProfileEqual(t, fmt.Sprintf("%q workers=%d csv-vs-pack", where, workers), pCSV, pPack)
			whereProfileEqual(t, fmt.Sprintf("%q workers=%d pack-vs-materialized", where, workers), pPack, ref)
		}
	}
}
