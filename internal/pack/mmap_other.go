//go:build !linux

package pack

import "os"

// readSnapshot reads the whole snapshot; the linux build maps it instead.
func readSnapshot(path string) (data []byte, release func(), err error) {
	data, err = os.ReadFile(path)
	return data, func() {}, err
}
