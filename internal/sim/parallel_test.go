package sim

import (
	"reflect"
	"testing"
)

// TestGenerateParallelMatchesSerial is the determinism contract of the
// sharded generator: for a fixed seed the corpus is bit-identical whether
// it is built by one worker or many, because shard boundaries and per-shard
// RNG seeds depend only on the configuration, never on the worker count.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	cfg := SmallConfig() // 30 days → two day shards
	want, err := GenerateParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		got, err := GenerateParallel(cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Config, want.Config) {
			t.Errorf("workers=%d: Config differs", workers)
		}
		if !reflect.DeepEqual(got.Jobs, want.Jobs) {
			t.Errorf("workers=%d: Jobs differ (%d vs %d rows)", workers, len(got.Jobs), len(want.Jobs))
		}
		if !reflect.DeepEqual(got.Tasks, want.Tasks) {
			t.Errorf("workers=%d: Tasks differ (%d vs %d rows)", workers, len(got.Tasks), len(want.Tasks))
		}
		if !reflect.DeepEqual(got.Events, want.Events) {
			t.Errorf("workers=%d: Events differ (%d vs %d rows)", workers, len(got.Events), len(want.Events))
		}
		if !reflect.DeepEqual(got.IO, want.IO) {
			t.Errorf("workers=%d: IO differs (%d vs %d rows)", workers, len(got.IO), len(want.IO))
		}
		if got.Truth != want.Truth {
			t.Errorf("workers=%d: Truth = %+v, want %+v", workers, got.Truth, want.Truth)
		}
	}
}

// TestGenerateIsGenerateParallel pins the convenience wrapper to the
// parallel path so the two entry points can never drift apart.
func TestGenerateIsGenerateParallel(t *testing.T) {
	cfg := SmallConfig()
	cfg.Days = 10
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate and GenerateParallel(4) disagree for the same config")
	}
}

// TestDayShards checks the shard partition covers the day range exactly
// once regardless of how the range divides.
func TestDayShards(t *testing.T) {
	for _, days := range []int{1, 24, 25, 26, 50, 99, 150, 2001} {
		shards := dayShards(days)
		next := 0
		for _, sh := range shards {
			if sh.Lo != next {
				t.Fatalf("days=%d: shard starts at %d, want %d", days, sh.Lo, next)
			}
			if sh.Hi <= sh.Lo {
				t.Fatalf("days=%d: empty shard [%d,%d)", days, sh.Lo, sh.Hi)
			}
			next = sh.Hi
		}
		if next != days {
			t.Fatalf("days=%d: shards cover [0,%d)", days, next)
		}
	}
}

// TestShardSeedsDistinct guards against stream collisions: every
// (salt, shard) pair must get its own RNG seed for a fixed config seed.
func TestShardSeedsDistinct(t *testing.T) {
	seen := map[int64][2]int{}
	for salt := int64(1); salt <= 6; salt++ {
		for idx := 0; idx < 100; idx++ {
			s := shardSeed(1, salt, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (salt=%d, idx=%d) and (salt=%d, idx=%d)", salt, idx, prev[0], prev[1])
			}
			seen[s] = [2]int{int(salt), idx}
		}
	}
}
