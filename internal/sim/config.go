// Package sim generates the synthetic 2001-day Mira corpus: the job
// scheduling log, task execution log, RAS event log and I/O behavior log
// the analyses consume.
//
// The real ALCF logs are proprietary; the simulator substitutes a
// calibrated workload + fault model whose corpus-level statistics match the
// paper's abstract anchors (observation span, total core-hours, failure
// counts and shares, per-exit-code duration laws, RAS locality and burst
// structure, and the ≈3.5-day mean time to interruption). See DESIGN.md §2.
package sim

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// DefaultStart is the first day of the observed window (Mira's production
// start, matching the paper's 2013-04-09 … 2018-09-30 span).
var DefaultStart = time.Date(2013, 4, 9, 0, 0, 0, 0, time.UTC)

// Config parameterizes corpus generation. The zero value is not valid; use
// DefaultConfig or SmallConfig and override fields.
type Config struct {
	Seed  int64     // RNG seed; corpora are reproducible given (Seed, Config)
	Start time.Time // first instant of the observation window
	Days  int       // observation span in days (paper: 2001)

	// Workload model.
	NumUsers      int     // distinct users (paper-scale: ~900)
	NumProjects   int     // distinct projects (~350)
	JobsPerDay    float64 // mean arrival rate before diurnal modulation
	WeekendFactor float64 // arrival multiplier on Sat/Sun
	NightFactor   float64 // arrival multiplier 0:00–8:00
	MeanFailProb  float64 // mean per-user probability a job fails for user reasons
	Policy        sched.Policy

	// Fault model.
	IncidentsPerYear  float64       // fatal hardware incidents per 365 days
	CascadeMeanEvents float64       // mean FATAL events per incident burst
	CascadeWindow     time.Duration // span of one incident's event burst
	NoisePerDay       float64       // background INFO/WARN RAS events per day
	HotMidplanes      int           // midplanes with elevated hazard (locality)
	HotHazardShare    float64       // fraction of incidents landing on hot midplanes
	PrecursorProb     float64       // probability an incident emits WARN precursors
	PrecursorLead     time.Duration // window before an incident its precursors land in
	NeighborSpread    float64       // probability an incident propagates to a torus neighbor
	RepairMedian      time.Duration // median service-action (repair) duration

	// Resubmission model: probability a user-failed job is resubmitted
	// (chains bounded at 3).
	ResubmitProb float64

	// MaxQueue caps the backlog: users stop submitting into a queue this
	// deep (closed-loop workload elasticity). 0 disables throttling.
	MaxQueue int

	// I/O model.
	IOSampling float64 // fraction of jobs with a Darshan record (0..1]
}

// Validate checks the configuration for obvious inconsistencies.
func (c *Config) Validate() error {
	switch {
	case c.Days <= 0:
		return fmt.Errorf("sim: days %d must be positive", c.Days)
	case c.Start.IsZero():
		return fmt.Errorf("sim: start time is zero")
	case c.NumUsers <= 0 || c.NumProjects <= 0:
		return fmt.Errorf("sim: users %d / projects %d must be positive", c.NumUsers, c.NumProjects)
	case c.JobsPerDay <= 0:
		return fmt.Errorf("sim: jobs per day %v must be positive", c.JobsPerDay)
	case c.MeanFailProb <= 0 || c.MeanFailProb >= 1:
		return fmt.Errorf("sim: mean fail prob %v must be in (0,1)", c.MeanFailProb)
	case c.IncidentsPerYear < 0:
		return fmt.Errorf("sim: incidents per year %v must be non-negative", c.IncidentsPerYear)
	case c.CascadeMeanEvents < 1:
		return fmt.Errorf("sim: cascade mean %v must be ≥ 1", c.CascadeMeanEvents)
	case c.CascadeWindow <= 0:
		return fmt.Errorf("sim: cascade window must be positive")
	case c.HotMidplanes < 0 || c.HotMidplanes > 96:
		return fmt.Errorf("sim: hot midplanes %d out of range", c.HotMidplanes)
	case c.HotHazardShare < 0 || c.HotHazardShare > 1:
		return fmt.Errorf("sim: hot hazard share %v out of [0,1]", c.HotHazardShare)
	case c.PrecursorProb < 0 || c.PrecursorProb > 1:
		return fmt.Errorf("sim: precursor prob %v out of [0,1]", c.PrecursorProb)
	case c.PrecursorProb > 0 && c.PrecursorLead <= 0:
		return fmt.Errorf("sim: precursor lead must be positive when precursors enabled")
	case c.IncidentsPerYear > 0 && c.RepairMedian <= 0:
		return fmt.Errorf("sim: repair median must be positive when incidents enabled")
	case c.NeighborSpread < 0 || c.NeighborSpread > 1:
		return fmt.Errorf("sim: neighbor spread %v out of [0,1]", c.NeighborSpread)
	case c.ResubmitProb < 0 || c.ResubmitProb > 1:
		return fmt.Errorf("sim: resubmit prob %v out of [0,1]", c.ResubmitProb)
	case c.MaxQueue < 0:
		return fmt.Errorf("sim: max queue %d must be non-negative", c.MaxQueue)
	case c.IOSampling <= 0 || c.IOSampling > 1:
		return fmt.Errorf("sim: io sampling %v out of (0,1]", c.IOSampling)
	case c.Policy != sched.FCFS && c.Policy != sched.EASYBackfill:
		return fmt.Errorf("sim: unknown policy %v", c.Policy)
	}
	return nil
}

// DefaultConfig is calibrated to the paper's anchors: 2001 days,
// ≈32.4B core-hours, ≈99k user-dominated job failures, ≈570
// job-interrupting incidents (MTTI ≈ 3.5 days).
func DefaultConfig() Config {
	return Config{
		Seed:  1,
		Start: DefaultStart,
		Days:  2001,

		NumUsers:      900,
		NumProjects:   360,
		JobsPerDay:    246,
		WeekendFactor: 0.72,
		NightFactor:   0.55,
		MeanFailProb:  0.2145,
		Policy:        sched.EASYBackfill,

		IncidentsPerYear:  114, // ≈663 incidents over 2001 days; ~86% hit a job
		CascadeMeanEvents: 22,
		CascadeWindow:     8 * time.Minute,
		NoisePerDay:       620,
		HotMidplanes:      10,
		HotHazardShare:    0.55,
		PrecursorProb:     0.65,
		PrecursorLead:     6 * time.Hour,
		NeighborSpread:    0.15,
		RepairMedian:      4 * time.Hour,

		ResubmitProb: 0.55,
		MaxQueue:     400,

		IOSampling: 0.42,
	}
}

// SmallConfig is a fast corpus for tests and examples: 30 days at the same
// per-day rates.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Days = 30
	c.NumUsers = 80
	c.NumProjects = 30
	return c
}
