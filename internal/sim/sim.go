package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/iolog"
	"repro/internal/joblog"
	"repro/internal/machine"
	"repro/internal/raslog"
	"repro/internal/sched"
	"repro/internal/tasklog"
)

// Corpus is a complete synthetic observation window: the four logs plus the
// generator's ground truth for validation.
type Corpus struct {
	Config Config
	Jobs   []joblog.Job
	Tasks  []tasklog.Task
	Events []raslog.Event
	IO     []iolog.Record
	Truth  GroundTruth
}

// GroundTruth records what the generator actually injected, so tests and
// EXPERIMENTS.md can compare analysis output against reality.
type GroundTruth struct {
	Incidents        int // fatal incidents injected
	KillingIncidents int // incidents that interrupted ≥1 job
	SystemKilledJobs int // jobs ended by an incident
	UserFailedJobs   int // jobs ended by a user-caused failure
	SucceededJobs    int // jobs that completed cleanly
	DroppedArrivals  int // submissions never started inside the window
	Throttled        int // arrivals suppressed by queue-depth back-pressure
	Resubmissions    int // jobs created by resubmitting a failed job
	Repairs          int // service actions performed after incidents
	// RepairMidplaneHours is the total out-of-service time summed over
	// midplanes.
	RepairMidplaneHours float64
}

// jobPlan is a job's pre-drawn fate: size, walltime, natural duration and
// natural exit status. The incident timeline may override the ending.
type jobPlan struct {
	id       int64
	u        *user
	submit   time.Time
	nodes    int
	ranks    int
	walltime time.Duration
	duration time.Duration
	exit     int
	tasks    int
	chain    int   // resubmission depth (0 = fresh submission)
	resubOf  int64 // id of the failed job this resubmits (0 = none)
}

// runState tracks a started job.
type runState struct {
	plan  *jobPlan
	block machine.Block
	start time.Time
}

// Event kinds for the simulation heap.
const (
	evArrival = iota + 1
	evCompletion
	evIncident
	evRepairEnd
)

type simEvent struct {
	at   time.Time
	kind int
	seq  int64 // deterministic tiebreak
	idx  int   // arrival/incident index
	job  int64 // completion job id
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Generate produces a corpus from the configuration. The same (Config,
// Seed) always yields the identical corpus.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Independent sub-streams per generation phase keep the phases
	// decoupled: tuning the workload does not perturb the fault timeline
	// and vice versa.
	subRNG := func(salt int64) *rand.Rand {
		return rand.New(rand.NewSource(cfg.Seed<<20 ^ salt))
	}
	pop := buildPopulation(&cfg, subRNG(1))
	laws := DurationLaws()

	plans := buildArrivals(&cfg, pop, laws, subRNG(2))
	incidents := buildIncidents(&cfg, subRNG(3))
	rng := subRNG(4) // tasks + I/O records during the loop
	noiseRNG := subRNG(5)
	cascadeRNG := subRNG(6)

	c := &Corpus{Config: cfg}
	c.Truth.Incidents = len(incidents)

	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	s := sched.New(cfg.Policy)

	var h eventHeap
	var seq int64
	push := func(at time.Time, kind, idx int, job int64) {
		seq++
		heap.Push(&h, simEvent{at: at, kind: kind, seq: seq, idx: idx, job: job})
	}
	for i := range plans {
		push(plans[i].submit, evArrival, 0, plans[i].id)
	}
	for i := range incidents {
		push(incidents[i].at, evIncident, i, 0)
	}

	planByID := make(map[int64]*jobPlan, len(plans))
	nextID := int64(0)
	for i := range plans {
		planByID[plans[i].id] = &plans[i]
		if plans[i].id > nextID {
			nextID = plans[i].id
		}
	}
	running := make(map[int64]*runState)
	var taskID int64

	// Service actions: each incident takes its midplanes out of service for
	// a lognormal repair window, bracketed by begin/end RAS records so the
	// availability analysis can recover downtime from the log alone.
	type repair struct {
		marked []int
		end    time.Time
	}
	var repairs []repair
	var serviceEvents []raslog.Event

	finalize := func(r *runState, endAt time.Time, exit int, now time.Time) error {
		p := r.plan
		job := joblog.Job{
			ID: p.id, User: p.u.name, Project: p.u.project, Queue: queueFor(p.nodes),
			Submit: p.submit, Start: r.start, End: endAt,
			WalltimeReq: p.walltime, Nodes: p.nodes, RanksPerNode: p.ranks,
			NumTasks: p.tasks, ExitStatus: exit,
		}
		c.Jobs = append(c.Jobs, job)
		c.Tasks = append(c.Tasks, makeTasks(rng, &taskID, &job, r.block)...)
		if rng.Float64() < cfg.IOSampling {
			c.IO = append(c.IO, makeIO(rng, &job, p.u))
		}
		if err := s.Complete(p.id); err != nil {
			return err
		}
		delete(running, p.id)
		// Failed work comes back: users resubmit user-failed jobs after a
		// short think time, up to a bounded chain — the resubmission
		// behaviour the E20 analysis measures.
		if exit != joblog.ExitSuccess && exit != joblog.ExitSystemReserved &&
			p.chain < maxResubChain && rng.Float64() < cfg.ResubmitProb {
			delay := time.Duration(math.Exp(math.Log(480)+0.9*rng.NormFloat64())) * time.Second
			if at := endAt.Add(delay); at.Before(end) {
				nextID++
				resub := *p
				resub.id = nextID
				resub.chain = p.chain + 1
				resub.resubOf = p.id
				resub.submit = at
				drawFate(&cfg, p.u, laws, rng, &resub)
				planByID[resub.id] = &resub
				c.Truth.Resubmissions++
				push(at, evArrival, 0, resub.id)
			}
		}
		return nil
	}

	trySchedule := func(now time.Time) {
		if now.After(end) {
			return
		}
		for _, d := range s.Schedule(now) {
			p := planByID[d.JobID]
			r := &runState{plan: p, block: d.Block, start: now}
			running[p.id] = r
			push(now.Add(p.duration), evCompletion, 0, p.id)
		}
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(simEvent)
		now := e.at
		switch e.kind {
		case evArrival:
			p := planByID[e.job]
			if now.After(end) {
				c.Truth.DroppedArrivals++
				continue
			}
			// Closed-loop elasticity: users seeing a deep backlog hold
			// their submissions, so the queue (and with it the waiting
			// time) stays bounded even at saturation.
			if cfg.MaxQueue > 0 && s.QueueLen() >= cfg.MaxQueue {
				c.Truth.Throttled++
				continue
			}
			if err := s.Submit(p.id, p.nodes, p.walltime, now); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			trySchedule(now)
		case evIncident:
			inc := &incidents[e.idx]
			killed := 0
			// Deterministic victim order: ascending job id.
			ids := make([]int64, 0, 4)
			for id, r := range running {
				if r.block.ContainsLocation(inc.loc) {
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			for _, id := range ids {
				r := running[id]
				if inc.killedJob == 0 {
					inc.killedJob = id
				}
				if err := finalize(r, now, joblog.ExitSystemReserved, now); err != nil {
					return nil, fmt.Errorf("sim: %w", err)
				}
				killed++
			}
			if killed > 0 {
				c.Truth.KillingIncidents++
				c.Truth.SystemKilledJobs += killed
			}
			// Begin the service action: the incident's midplanes leave
			// service until the repair completes.
			if mids := incidentMidplanes(inc.loc); len(mids) > 0 {
				dur := time.Duration(math.Exp(math.Log(cfg.RepairMedian.Hours())+0.8*rng.NormFloat64())*3600) * time.Second
				if dur < 10*time.Minute {
					dur = 10 * time.Minute
				}
				marked := s.MarkDown(mids)
				if len(marked) > 0 {
					r := repair{marked: marked, end: now.Add(dur)}
					repairs = append(repairs, r)
					c.Truth.Repairs++
					c.Truth.RepairMidplaneHours += dur.Hours() * float64(len(marked))
					for _, id := range marked {
						loc, err := machine.MidplaneByID(id)
						if err != nil {
							continue
						}
						serviceEvents = append(serviceEvents,
							serviceEvent(raslog.MsgServiceBegin, now.Add(30*time.Second), loc),
							serviceEvent(raslog.MsgServiceEnd, r.end, loc))
					}
					push(r.end, evRepairEnd, len(repairs)-1, 0)
				}
			}
			trySchedule(now)
		case evRepairEnd:
			if err := s.MarkUp(repairs[e.idx].marked); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			trySchedule(now)
		case evCompletion:
			r, ok := running[e.job]
			if !ok {
				continue // job was killed by an incident; stale event
			}
			if err := finalize(r, now, r.plan.exit, now); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			trySchedule(now)
		}
	}

	for _, j := range c.Jobs {
		switch {
		case j.ExitStatus == joblog.ExitSuccess:
			c.Truth.SucceededJobs++
		case j.ExitStatus == joblog.ExitSystemReserved:
			// counted during the loop
		default:
			c.Truth.UserFailedJobs++
		}
	}

	// Render the RAS stream: incident cascades (with job attribution fixed
	// during the loop) plus background noise, sorted by time.
	var recID int64
	events := buildNoise(&cfg, noiseRNG, &recID)
	for i := range incidents {
		events = append(events, expandIncident(&cfg, cascadeRNG, &incidents[i], &recID)...)
	}
	events = append(events, serviceEvents...)
	sort.Slice(events, func(i, j int) bool {
		if !events[i].Time.Equal(events[j].Time) {
			return events[i].Time.Before(events[j].Time)
		}
		return events[i].RecID < events[j].RecID
	})
	for i := range events {
		events[i].RecID = int64(i + 1)
	}
	c.Events = events

	sort.Slice(c.Jobs, func(i, j int) bool { return c.Jobs[i].ID < c.Jobs[j].ID })
	sort.Slice(c.Tasks, func(i, j int) bool { return c.Tasks[i].ID < c.Tasks[j].ID })
	sort.Slice(c.IO, func(i, j int) bool { return c.IO[i].JobID < c.IO[j].JobID })
	return c, nil
}

// buildArrivals draws the submission stream: a nonhomogeneous Poisson
// process (diurnal + weekly modulation) with per-user job fates.
func buildArrivals(cfg *Config, pop *population, laws map[joblog.ExitFamily]dist.Distribution, rng *rand.Rand) []jobPlan {
	baseRate := cfg.JobsPerDay / (24 * 3600) // per second at factor 1
	maxFactor := 1.0
	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	var plans []jobPlan
	var id int64
	t := cfg.Start
	for {
		// Thinning with the max-rate envelope.
		gap := rng.ExpFloat64() / (baseRate * maxFactor)
		t = t.Add(time.Duration(gap * float64(time.Second)))
		if !t.Before(end) {
			break
		}
		if rng.Float64() > arrivalFactor(cfg, t)/maxFactor {
			continue
		}
		id++
		plans = append(plans, drawJob(cfg, pop, laws, rng, id, t))
	}
	return plans
}

// arrivalFactor modulates the arrival rate by hour of day and weekday.
func arrivalFactor(cfg *Config, t time.Time) float64 {
	f := 1.0
	if h := t.Hour(); h < 8 {
		f *= cfg.NightFactor
	}
	if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
		f *= cfg.WeekendFactor
	}
	return f
}

// drawJob draws one job's user, size, walltime, natural duration and exit.
func drawJob(cfg *Config, pop *population, laws map[joblog.ExitFamily]dist.Distribution, rng *rand.Rand, id int64, submit time.Time) jobPlan {
	u := pop.pickUser(rng)
	p := jobPlan{id: id, u: u, submit: submit, nodes: u.pickSize(rng), ranks: pickRanks(rng)}
	p.tasks = 1
	for rng.Float64() < 0.35 && p.tasks < 12 {
		p.tasks++
	}
	drawFate(cfg, u, laws, rng, &p)
	return p
}

// drawFate draws (or redraws, for a resubmission) a job's walltime,
// natural duration and exit status given its structure. Failure
// probability grows with execution structure, as the paper observes:
// larger allocations expose scale bugs, and multi-task scripts multiply
// the chances that one run trips.
func drawFate(cfg *Config, u *user, laws map[joblog.ExitFamily]dist.Distribution, rng *rand.Rand, p *jobPlan) {
	walltime := math.Exp(u.walltimeMu + 0.6*rng.NormFloat64())
	walltime = clamp(walltime, 600, 86400)
	scaleBoost := 1 + 0.40*math.Log2(float64(p.nodes)/512)/6.5
	taskBoost := 1 + 0.06*float64(p.tasks-1)
	failProb := clamp(u.failProb*scaleBoost*taskBoost, 0.01, 0.95)
	if rng.Float64() < failProb {
		family, exit := u.pickFailure(rng)
		d := laws[family].Rand(rng)
		d = clamp(d, 1, 86400)
		p.duration = time.Duration(math.Round(d)) * time.Second
		p.exit = exit
		if need := 1.1 * d; walltime < need {
			walltime = need
		}
	} else {
		frac := 0.35 + 0.6*math.Pow(rng.Float64(), 0.8)
		p.duration = time.Duration(math.Round(walltime*frac)) * time.Second
		p.exit = joblog.ExitSuccess
	}
	if p.duration < time.Second {
		p.duration = time.Second
	}
	p.walltime = time.Duration(math.Round(walltime)) * time.Second
}

// pickRanks draws the BG/Q execution mode (ranks per node).
func pickRanks(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.70:
		return 16
	case r < 0.85:
		return 32
	case r < 0.93:
		return 8
	case r < 0.98:
		return 64
	default:
		return 4
	}
}

// queueFor names the submission queue by job size, Mira-style.
func queueFor(nodes int) string {
	switch {
	case nodes >= 8192:
		return "prod-capability"
	case nodes >= 4096:
		return "prod-long"
	default:
		return "prod-short"
	}
}

// makeTasks splits a job's execution into its physical runs: contiguous
// segments on the job's block; the final run carries the job's exit status.
func makeTasks(rng *rand.Rand, taskID *int64, j *joblog.Job, block machine.Block) []tasklog.Task {
	n := j.NumTasks
	total := j.End.Sub(j.Start)
	if total <= 0 {
		n = 1
	}
	// Random cut points produce uneven task lengths, like real run scripts.
	cuts := make([]float64, 0, n+1)
	cuts = append(cuts, 0)
	for i := 0; i < n-1; i++ {
		cuts = append(cuts, rng.Float64())
	}
	cuts = append(cuts, 1)
	sort.Float64s(cuts)
	tasks := make([]tasklog.Task, 0, n)
	for i := 0; i < n; i++ {
		*taskID++
		start := j.Start.Add(time.Duration(cuts[i] * float64(total)))
		end := j.Start.Add(time.Duration(cuts[i+1] * float64(total)))
		exit := 0
		if i == n-1 {
			exit = j.ExitStatus
		}
		tasks = append(tasks, tasklog.Task{
			ID: *taskID, JobID: j.ID, Block: block,
			Start: start, End: end, Nodes: j.Nodes, ExitStatus: exit,
		})
	}
	return tasks
}

// makeIO draws a Darshan-style record for the job. Volume scales sublinearly
// with core-hours and is cut by early termination, so failed jobs move less
// data — the correlation experiment E13 measures exactly this.
func makeIO(rng *rand.Rand, j *joblog.Job, u *user) iolog.Record {
	ch := j.CoreHours()
	if ch < 1 {
		ch = 1
	}
	scale := math.Pow(ch/1e4, 0.6) * u.ioScale
	total := math.Exp(math.Log(2e9)+1.3*rng.NormFloat64()) * scale
	if j.ExitStatus != joblog.ExitSuccess {
		// Interrupted work: proportional to the fraction of walltime used.
		frac := float64(j.Runtime()) / float64(j.WalltimeReq)
		total *= clamp(frac, 0.02, 1)
	}
	readFrac := clamp(0.15+0.5*rng.Float64(), 0, 1)
	read := total * readFrac
	written := total - read
	bw := 0.5e9 + 4.5e9*rng.Float64() // aggregate file-system bandwidth
	ioTime := time.Duration(total / bw * float64(time.Second))
	return iolog.Record{
		JobID:        j.ID,
		BytesRead:    int64(read),
		BytesWritten: int64(written),
		FilesRead:    1 + rng.Intn(64),
		FilesWritten: 1 + rng.Intn(512),
		MetaOps:      int64(1000 + rng.Intn(500000)),
		IOTime:       ioTime,
	}
}

// maxResubChain bounds how many times one failing job is resubmitted.
const maxResubChain = 3

// incidentMidplanes returns the linear midplane IDs an incident's root
// location covers (1 for midplane-level, 2 for rack-level, none for
// system-level).
func incidentMidplanes(loc machine.Location) []int {
	switch loc.Level() {
	case machine.LevelRack:
		base := loc.RackIndex() * machine.MidplanesPerRack
		return []int{base, base + 1}
	case machine.LevelSystem:
		return nil
	default:
		id, err := loc.MidplaneID()
		if err != nil {
			return nil
		}
		return []int{id}
	}
}

// serviceEvent builds a service-action RAS record; record IDs are assigned
// when the full stream is sorted.
func serviceEvent(msgID string, at time.Time, loc machine.Location) raslog.Event {
	entry, ok := raslog.CatalogByID()[msgID]
	if !ok {
		entry = raslog.CatalogEntry{Comp: raslog.CompMMCS, Cat: raslog.CatInfra, Sev: raslog.Info, Message: "service action"}
	}
	return raslog.Event{
		MsgID:   msgID,
		Comp:    entry.Comp,
		Cat:     entry.Cat,
		Sev:     raslog.Info,
		Time:    at,
		Loc:     loc,
		Message: entry.Message,
		Count:   1,
	}
}
